#!/usr/bin/env bash
# clang-tidy gate: runs the project .clang-tidy profile over src/ using the
# compilation database the CMake configure step exports.
#
# Usage: scripts/tidy.sh [build-dir] [-- extra clang-tidy args]
#   BUILD_DIR=...   build directory holding compile_commands.json
#                   (default: build; configured automatically if missing)
#   CLANG_TIDY=...  clang-tidy binary (default: first of clang-tidy,
#                   clang-tidy-18..14 on PATH)
#
# If no clang-tidy binary exists (e.g. the minimal local container), the
# gate is skipped with exit 0 so local workflows are not blocked; CI
# installs clang-tidy and runs the real thing. Findings exit nonzero
# (WarningsAsErrors: '*' in .clang-tidy).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-${1:-build}}"

TIDY="${CLANG_TIDY:-}"
if [[ -z "$TIDY" ]]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" > /dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "tidy: clang-tidy not found on PATH; skipping (install clang-tidy to run the gate)" >&2
  exit 0
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "tidy: configuring $BUILD_DIR to produce compile_commands.json"
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

mapfile -t sources < <(find src -name '*.cpp' | sort)

echo "tidy: $TIDY over ${#sources[@]} files (profile: .clang-tidy)"
"$TIDY" -p "$BUILD_DIR" --quiet "${sources[@]}"
echo "tidy: OK"
