#!/usr/bin/env python3
"""Validates the machine-readable outputs of an instrumented run.

Usage: scripts/validate_report.py METRICS.json [--trace TRACE.json]

Checks three things, stdlib only (CI runs this with no third-party deps):

1. Shape: METRICS.json matches scripts/report_schema.json (the checked-in
   contract for schema "cni-run-report"; see src/obs/report.cpp).
2. Consistency: per point, the "totals" section equals the per-name sum of
   the node counters it claims to aggregate.
3. Legacy parity: every legacy NodeStats account ("legacy" section) has a
   matching entry in "totals" with the exact same value. The obs counters
   are bound views over the legacy fields, so any drift here means an
   instrumentation bug, not measurement noise.

With --trace, also validates the Chrome trace_event JSON emitted via
--trace-out= (envelope, event phases, span durations).

Exits non-zero and prints every violation on failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent / "report_schema.json"

PRIMITIVES = {
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    # bool is a subclass of int in Python; reject it explicitly.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
}


class Checker:
    def __init__(self, types: dict):
        self.types = types
        self.errors: list[str] = []

    def fail(self, where: str, msg: str) -> None:
        self.errors.append(f"{where}: {msg}")

    def check(self, value, type_name: str, where: str) -> None:
        if type_name in PRIMITIVES:
            if not PRIMITIVES[type_name](value):
                self.fail(where, f"expected {type_name}, got {type(value).__name__}")
        elif type_name.startswith("object<"):
            inner = type_name[len("object<") : -1]
            if not isinstance(value, dict):
                self.fail(where, f"expected object, got {type(value).__name__}")
                return
            for k, v in value.items():
                self.check(v, inner, f"{where}.{k}")
        elif type_name.startswith("nullable<"):
            if value is not None:
                self.check(value, type_name[len("nullable<") : -1], where)
        elif type_name.startswith("array<"):
            inner = type_name[len("array<") : -1]
            if not isinstance(value, list):
                self.fail(where, f"expected array, got {type(value).__name__}")
                return
            for i, v in enumerate(value):
                self.check(v, inner, f"{where}[{i}]")
        elif type_name in self.types:
            spec = self.types[type_name]
            if not isinstance(value, dict):
                self.fail(where, f"expected {type_name} object, got {type(value).__name__}")
                return
            for k, t in spec["required"].items():
                if k not in value:
                    self.fail(where, f"missing required key '{k}'")
                else:
                    self.check(value[k], t, f"{where}.{k}")
            known = set(spec["required"]) | set(spec["optional"])
            for k in value:
                if k not in known:
                    self.fail(where, f"unknown key '{k}' (schema drift? bump report_schema.json)")
                elif k in spec["optional"]:
                    self.check(value[k], spec["optional"][k], f"{where}.{k}")
        else:
            self.fail(where, f"schema bug: unknown type '{type_name}'")


def validate_metrics(report: dict, schema: dict) -> list[str]:
    checker = Checker(schema["types"])
    checker.check(report, "report", "report")
    if checker.errors:
        return checker.errors  # deep checks below assume the shape holds

    errors = []
    if report["schema"] != schema["schema"]:
        errors.append(f"schema name '{report['schema']}' != '{schema['schema']}'")
    if report["version"] != schema["version"]:
        errors.append(f"report version {report['version']} != schema version {schema['version']}")

    for i, pt in enumerate(report["points"]):
        where = f"points[{i}] ({pt['label']!r})"

        # Totals must be exactly the per-name sum of the node counters.
        summed: dict[str, int] = {}
        for node in pt["nodes"]:
            for name, v in node["counters"].items():
                summed[name] = summed.get(name, 0) + v
        if summed != pt["totals"]:
            for name in sorted(set(summed) | set(pt["totals"])):
                a, b = summed.get(name), pt["totals"].get(name)
                if a != b:
                    errors.append(f"{where}: totals[{name}]={b} but node counters sum to {a}")

        # Legacy parity: the metrics layer mirrors every NodeStats account.
        for name, legacy_v in pt["legacy"].items():
            if name not in pt["totals"]:
                errors.append(f"{where}: legacy account '{name}' missing from totals")
            elif pt["totals"][name] != legacy_v:
                errors.append(
                    f"{where}: totals[{name}]={pt['totals'][name]} != legacy {legacy_v}"
                )

        # trace_truncated honesty: the per-point flag must match the per-node
        # drop counters, and the top-level flag must OR the points.
        dropped = any(node["trace"]["dropped"] > 0 for node in pt["nodes"])
        if pt["trace_truncated"] != dropped:
            errors.append(
                f"{where}: trace_truncated={pt['trace_truncated']} but node "
                f"rings report dropped={'>0' if dropped else '0'}"
            )

        # Critpath internal consistency: buckets must sum to attributed_ps and
        # cover the window (end - start == total).
        cp = pt["critpath"]
        if cp is not None:
            if cp["end_ps"] - cp["start_ps"] != cp["total_ps"]:
                errors.append(f"{where}: critpath total_ps != end_ps - start_ps")
            if sum(cp["stages"].values()) != cp["attributed_ps"]:
                errors.append(f"{where}: critpath stage buckets do not sum to attributed_ps")

    truncated = any(pt["trace_truncated"] for pt in report["points"])
    if report["trace_truncated"] != truncated:
        errors.append(
            f"report: trace_truncated={report['trace_truncated']} but points say {truncated}"
        )
    return errors


TRACE_PHASES = {"M", "X", "i", "C"}


def validate_trace(trace: dict) -> list[str]:
    errors = []
    for key in ("displayTimeUnit", "traceEvents", "otherData"):
        if key not in trace:
            errors.append(f"trace: missing top-level key '{key}'")
    if errors:
        return errors
    if trace["otherData"].get("schema") != "cni-chrome-trace":
        errors.append(f"trace: otherData.schema is {trace['otherData'].get('schema')!r}")
    for i, ev in enumerate(trace["traceEvents"]):
        where = f"traceEvents[{i}]"
        for key in ("ph", "pid", "name"):
            if key not in ev:
                errors.append(f"{where}: missing '{key}'")
        ph = ev.get("ph")
        if ph not in TRACE_PHASES:
            errors.append(f"{where}: unexpected phase {ph!r}")
        if ph in ("X", "i", "C"):
            if "ts" not in ev or "tid" not in ev:
                errors.append(f"{where}: {ph} event needs 'ts' and 'tid'")
        if ph == "X" and "dur" not in ev:
            errors.append(f"{where}: span without 'dur'")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("metrics", help="run report JSON (from --metrics-out=)")
    ap.add_argument("--trace", help="Chrome trace JSON (from --trace-out=)")
    args = ap.parse_args()

    schema = json.loads(SCHEMA_PATH.read_text())
    report = json.loads(Path(args.metrics).read_text())
    errors = validate_metrics(report, schema)

    n_events = None
    if args.trace:
        trace = json.loads(Path(args.trace).read_text())
        errors += validate_trace(trace)
        n_events = len(trace.get("traceEvents", []))

    for e in errors:
        print(f"FAIL {e}", file=sys.stderr)
    if errors:
        print(f"validate_report: {len(errors)} violation(s)", file=sys.stderr)
        return 1

    if report.get("trace_truncated"):
        dropped_points = [
            pt["label"] for pt in report["points"] if pt.get("trace_truncated")
        ]
        print("=" * 64, file=sys.stderr)
        print(
            "WARNING: TRACE TRUNCATED — a trace ring dropped records on "
            f"{len(dropped_points)} point(s):",
            file=sys.stderr,
        )
        for label in dropped_points:
            print(f"  - {label}", file=sys.stderr)
        print(
            "Causal chains and critpath attribution may be incomplete. "
            "Re-run with a larger --trace-capacity=.",
            file=sys.stderr,
        )
        print("=" * 64, file=sys.stderr)

    n_points = len(report["points"])
    n_accounts = len(report["points"][0]["legacy"]) if n_points else 0
    msg = (
        f"validate_report: OK — {n_points} point(s), "
        f"{n_accounts} legacy accounts all matched by totals"
    )
    if n_events is not None:
        msg += f", {n_events} trace events"
    print(msg)
    return 0


if __name__ == "__main__":
    sys.exit(main())
