#!/usr/bin/env python3
"""Regenerates BENCH_engine.json, BENCH_datapath.json, BENCH_obs.json,
BENCH_parsim.json, BENCH_topology.json and BENCH_collectives.json.

Usage: scripts/bench_engine.py [build-dir]
       scripts/bench_engine.py --trajectory

With --trajectory no benchmark runs: the script aggregates the current
payload plus the history blocks of every BENCH_*.json into one cross-PR
perf-trajectory table (TRAJECTORY.md + BENCH_trajectory.json, also printed
to stdout) so the headline numbers' drift across sessions is visible in one
place instead of scattered over five files.

Captures the machine-readable throughput numbers the PR/README quote:
events/sec from micro_engine, lookups/sec from micro_mcache, the
zero-copy-vs-legacy data-path comparison from micro_datapath (throughput,
speedup ratios, and the steady-state heap-allocation count), the
observability overhead ladder from micro_obs (compiled-out reference vs
runtime-off residue vs live metrics vs full tracing), the sharded-engine
scaling points from micro_parsim (wall clock plus the machine-independent
event-parallelism bound per shard count), and the fabric-topology scaling
grid from micro_topology (banyan/Clos/torus at 256/1024/4096 nodes under
incast, permutation and hot-spot traffic, with each topology's exported
per-shard-pair lookahead range), and the collective scaling grid from
fig_barrier_scaling (barrier/reduce latency per episode for the NIC-resident
combining tree vs the centralized baselines, all three fabrics).

Every context block records CNI_BENCH_JOBS / CNI_SIM_SHARDS and the resolved
sweep worker count so runs taken under different fan-out settings are never
compared apples-to-oranges.
"""
import datetime
import json
import os
import platform
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
_ARGS = [a for a in sys.argv[1:] if not a.startswith("--")]
BUILD = Path(_ARGS[0]) if _ARGS else ROOT / "build"

# How many prior payloads each BENCH file keeps. Wall numbers are host-bound
# (a cores_limited run on a narrow VM understates real speedup), so a re-run
# on a wider host should sit next to the old point, not erase it.
HISTORY_DEPTH = 4


def load_history(path: Path) -> list:
    """Prior payloads of `path`, newest first: the current file (minus its own
    history block) is pushed onto its history list before being overwritten.
    This is what --trajectory later walks to chart the cross-PR drift."""
    if not path.exists():
        return []
    try:
        prev = json.loads(path.read_text())
    except ValueError:
        return []
    history = prev.get("history", [])
    snapshot = {k: v for k, v in prev.items() if k != "history"}
    if snapshot:
        history.insert(0, snapshot)
    return history[:HISTORY_DEPTH]


def run(binary: str) -> dict:
    out = subprocess.run(
        [str(BUILD / "bench" / binary), "--benchmark_format=json", "--benchmark_min_time=0.5"],
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    return json.loads(out)


def sweep_jobs() -> int:
    """Worker count the sweep runner would use — mirrors apps::parallel_indexed."""
    env = os.environ.get("CNI_BENCH_JOBS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def env_context() -> dict:
    """Knobs that shape how a run executes, recorded so two BENCH files can be
    compared apples-to-apples: the sweep fan-out and the in-run shard count."""
    return {
        "cni_bench_jobs": os.environ.get("CNI_BENCH_JOBS"),
        "cni_sim_shards": os.environ.get("CNI_SIM_SHARDS"),
        "sweep_workers": sweep_jobs(),
    }


def context_of(report: dict) -> dict:
    return {
        "host": report["context"]["host_name"],
        "num_cpus": report["context"]["num_cpus"],
        "mhz_per_cpu": report["context"]["mhz_per_cpu"],
        "date": report["context"]["date"],
        **env_context(),
    }


# (pooled benchmark, legacy benchmark) pairs micro_datapath reports.
DATAPATH_PAIRS = {
    "page_round_trip": ("BM_PageRoundTripPooled", "BM_PageRoundTripLegacy"),
    "diff_create": ("BM_DiffCreateWordWise", "BM_DiffCreateByteWise"),
    "diff_apply": ("BM_DiffApplyPooled", "BM_DiffApplyLegacy"),
}


def write_datapath() -> None:
    report = run("micro_datapath")
    by_name = {b["name"]: b for b in report["benchmarks"]}
    result = {"context": context_of(report)}
    for key, (pooled, legacy) in DATAPATH_PAIRS.items():
        series = {}
        for size in (1024, 2048, 4096, 8192):
            p = by_name[f"{pooled}/{size}"]
            l = by_name[f"{legacy}/{size}"]
            entry = {
                "pooled_bytes_per_sec": round(p["bytes_per_second"]),
                "legacy_bytes_per_sec": round(l["bytes_per_second"]),
                "speedup": round(p["bytes_per_second"] / l["bytes_per_second"], 2),
            }
            if "heap_allocs_per_op" in p:
                entry["heap_allocs_per_op"] = round(p["heap_allocs_per_op"], 4)
                entry["pool_hits_per_op"] = round(p["pool_hits_per_op"], 2)
            series[str(size)] = entry
        result[key] = series

    path = ROOT / "BENCH_datapath.json"
    result["history"] = load_history(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {path}")


def write_obs() -> None:
    report = run("micro_obs")
    by_name = {b["name"]: b for b in report["benchmarks"]}

    NS_PER = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

    def ns(name: str) -> float:
        b = by_name[name]
        return b["real_time"] * NS_PER[b.get("time_unit", "ns")]

    base = ns("BM_ProbeCompiledOut")

    def pct_over_base(name: str) -> float:
        return round(100.0 * (ns(name) - base) / base, 2)

    jac_off = ns("BM_JacobiRuntimeOff")
    jac_on = ns("BM_JacobiTracingOn")
    result = {
        "context": context_of(report),
        "probe": {
            # The kill-switch reference: the same operation with every emit
            # macro removed by the preprocessor. The runtime-off delta is the
            # shipped default's entire cost (one pointer test per site) and
            # must stay in the noise.
            "compiled_out_ns": round(base, 2),
            "runtime_off_ns": round(ns("BM_ProbeRuntimeOff"), 2),
            "runtime_off_overhead_pct": pct_over_base("BM_ProbeRuntimeOff"),
            "metrics_on_ns": round(ns("BM_ProbeMetricsOn"), 2),
            "metrics_on_overhead_pct": pct_over_base("BM_ProbeMetricsOn"),
            # Trace ring live, metrics handles null: the span + instant +
            # causal record sites alone — the cost added per hot-path op by
            # causal span propagation when tracing is actually on.
            "causal_on_ns": round(ns("BM_ProbeCausalOn"), 2),
            "causal_on_overhead_pct": pct_over_base("BM_ProbeCausalOn"),
            "tracing_on_ns": round(ns("BM_ProbeTracingOn"), 2),
            "tracing_on_overhead_pct": pct_over_base("BM_ProbeTracingOn"),
        },
        "jacobi_end_to_end": {
            # Whole-simulation cost of the *runtime* switch (trace rings +
            # snapshot materialization). Tracing is opt-in via --trace-out.
            "runtime_off_ms": round(jac_off / 1e6, 3),
            "tracing_on_ms": round(jac_on / 1e6, 3),
            "tracing_on_overhead_pct": round(100.0 * (jac_on - jac_off) / jac_off, 2),
        },
    }

    path = ROOT / "BENCH_obs.json"
    result["history"] = load_history(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {path}")


PARSIM_SCHEMA_VERSION = 4

# Per-mode fields micro_parsim --json must emit. The epoch statistics are
# null (not 0) in legacy mode — a single-engine run has no epochs, and the
# v1 report's `"epochs": 0` next to `"wall_speedup_vs_k1": 0.8` read like a
# regression instead of a non-measurement. Schema v3 extends the same rule to
# wall_vs_k1: on a host with fewer cores than shard threads the ratio
# measures scheduler thrash, so the emitter writes null and sets
# cores_limited — a quotable number and the flag that disqualifies it can
# never coexist. Schema v4 adds shard_profile: per-shard wall-time phase
# attribution (idle/busy/drain/barrier_wait/fused_window) from the shard
# execution profiler — null in legacy mode, one entry per shard otherwise —
# so the wall_vs_k1-vs-event_parallelism gap finally has a breakdown.
PARSIM_EPOCH_FIELDS = ("epochs", "events_total", "critical_path_events",
                       "fused_epochs", "barriers", "event_parallelism")
PARSIM_MODE_FIELDS = ("wall_ms", "elapsed_cycles", "wall_vs_k1",
                      "cores_limited", "shard_profile") + PARSIM_EPOCH_FIELDS
PARSIM_PROFILE_FIELDS = ("shard", "idle_ms", "busy_ms", "drain_ms",
                         "barrier_wait_ms", "fused_window_ms", "transitions")


def validate_parsim(report: dict) -> None:
    """Shape contract for BENCH_parsim.json points (schema v3): every point
    carries num_cpus, every mode wall_vs_k1 + cores_limited, the epoch stats
    are null exactly in legacy mode, and wall_vs_k1 is null exactly when the
    run was cores_limited. Raises ValueError on violation so a drifting
    micro_parsim emitter can't silently corrupt the pinned file."""
    for pname, point in report["points"].items():
        where = f"points.{pname}"
        if not isinstance(point.get("num_cpus"), int):
            raise ValueError(f"{where}: missing integer num_cpus")
        for mname, mode in point["modes"].items():
            mwhere = f"{where}.modes.{mname}"
            if "wall_speedup_vs_k1" in mode:
                raise ValueError(f"{mwhere}: stale v1 field wall_speedup_vs_k1")
            for field in PARSIM_MODE_FIELDS:
                if field not in mode:
                    raise ValueError(f"{mwhere}: missing {field}")
            if not isinstance(mode["cores_limited"], bool):
                raise ValueError(f"{mwhere}: cores_limited must be boolean")
            if mode["cores_limited"] and mode["wall_vs_k1"] is not None:
                raise ValueError(
                    f"{mwhere}: wall_vs_k1 must be null when cores_limited "
                    "(the ratio measures thread thrash, not speedup)")
            if not mode["cores_limited"] and mode["wall_vs_k1"] is None:
                raise ValueError(
                    f"{mwhere}: wall_vs_k1 missing on a full-width run")
            is_legacy = mname == "legacy"
            for field in PARSIM_EPOCH_FIELDS:
                if is_legacy and mode[field] is not None:
                    raise ValueError(
                        f"{mwhere}: {field} must be null in legacy mode")
                if not is_legacy and mode[field] is None:
                    raise ValueError(
                        f"{mwhere}: {field} must be measured in sharded mode")
            profile = mode["shard_profile"]
            if is_legacy:
                if profile is not None:
                    raise ValueError(
                        f"{mwhere}: shard_profile must be null in legacy mode")
            else:
                if not isinstance(profile, list) or not profile:
                    raise ValueError(
                        f"{mwhere}: shard_profile must be a non-empty list")
                # Mode names encode the shard count ("k4-nofuse" -> 4): one
                # profile entry per shard, indexed densely from 0.
                want = int(mname[1:].split("-")[0]) if mname[1:2].isdigit() else None
                if want is not None and len(profile) != want:
                    raise ValueError(
                        f"{mwhere}: shard_profile has {len(profile)} entries, "
                        f"expected {want}")
                for idx, slot in enumerate(profile):
                    for field in PARSIM_PROFILE_FIELDS:
                        if field not in slot:
                            raise ValueError(
                                f"{mwhere}.shard_profile[{idx}]: missing {field}")
                    if slot["shard"] != idx:
                        raise ValueError(
                            f"{mwhere}.shard_profile[{idx}]: shard index "
                            f"{slot['shard']} out of order")


def warn_cores_limited(report: dict, what: str) -> None:
    """Prints a loud banner when any point in `report` ran with fewer host
    cores than shard threads: those wall numbers are excluded from headline
    speedups, and the machine-independent stats (event_parallelism, barrier
    counts) are the only figures worth quoting from such a run."""
    limited = sorted(
        f"{pname}/{mname}"
        for pname, point in report["points"].items()
        for mname, mode in point["modes"].items()
        if mode.get("cores_limited")
    )
    if limited:
        print(f"WARNING: {what}: {len(limited)} mode(s) ran cores_limited "
              "(host cores < shard threads).", file=sys.stderr)
        print("WARNING: their wall_vs_k1 is null and MUST NOT be quoted as "
              "speedup; cite event_parallelism instead.", file=sys.stderr)
        print(f"WARNING: affected: {', '.join(limited)}", file=sys.stderr)


def write_parsim() -> None:
    # micro_parsim is a plain binary (no google-benchmark), so the context
    # block is assembled here. It also CNI_CHECKs in-process that every
    # sharded mode produced the same simulated-cycle count.
    out = subprocess.run(
        [str(BUILD / "bench" / "micro_parsim"), "--json"],
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    report = json.loads(out)
    validate_parsim(report)
    warn_cores_limited(report, "BENCH_parsim")

    path = ROOT / "BENCH_parsim.json"
    result = {
        "schema_version": PARSIM_SCHEMA_VERSION,
        "context": {
            "host": platform.node(),
            "num_cpus": os.cpu_count(),
            "date": datetime.datetime.now().astimezone().isoformat(timespec="seconds"),
            **env_context(),
        },
        **report,
        "history": load_history(path),
    }

    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {path}")


TOPOLOGY_SCHEMA_VERSION = 1

TOPOLOGY_MODE_FIELDS = ("wall_ms", "elapsed_cycles", "events_total",
                        "events_per_sec", "epochs", "barriers",
                        "event_parallelism", "wall_vs_k1", "cores_limited")
TOPOLOGY_LOOKAHEAD_FIELDS = ("uniform_ns", "matrix_min_ns", "matrix_max_ns",
                             "shards")
TOPOLOGIES = ("banyan", "clos", "torus")
SCENARIOS = ("incast", "permutation", "hotspot")
TOPOLOGY_NODE_COUNTS = (256, 1024, 4096)


def validate_topology(report: dict) -> None:
    """Shape contract for BENCH_topology.json (schema v1): the full
    topology x scenario x node-count grid is present, every point carries
    the lookahead block (uniform floor plus matrix off-diagonal range), each
    mode has the parsim honesty fields (wall_vs_k1 null iff cores_limited),
    and K=1/K=4 agree on simulated elapsed cycles."""
    points = report["points"]
    for topo in TOPOLOGIES:
        for sc in SCENARIOS:
            for nodes in TOPOLOGY_NODE_COUNTS:
                key = f"{topo}/{sc}/{nodes}"
                if key not in points:
                    raise ValueError(f"missing point {key}")
    for pname, point in points.items():
        where = f"points.{pname}"
        for field in TOPOLOGY_LOOKAHEAD_FIELDS:
            if field not in point.get("lookahead", {}):
                raise ValueError(f"{where}: lookahead missing {field}")
        la = point["lookahead"]
        if la["matrix_min_ns"] < la["uniform_ns"] - 2 * 150:
            raise ValueError(
                f"{where}: matrix floor below the topology's own bound")
        cycles = set()
        for mname, mode in point["modes"].items():
            mwhere = f"{where}.modes.{mname}"
            for field in TOPOLOGY_MODE_FIELDS:
                if field not in mode:
                    raise ValueError(f"{mwhere}: missing {field}")
            if mode["cores_limited"] and mode["wall_vs_k1"] is not None:
                raise ValueError(
                    f"{mwhere}: wall_vs_k1 must be null when cores_limited")
            cycles.add(mode["elapsed_cycles"])
        if len(cycles) != 1:
            raise ValueError(f"{where}: elapsed_cycles diverged across K")


def write_topology() -> None:
    # micro_topology is a plain binary (no google-benchmark); the full sweep
    # covers 256/1024/4096 nodes for all three topologies, so this is the
    # slowest bench here (~a minute on one core).
    out = subprocess.run(
        [str(BUILD / "bench" / "micro_topology"), "--json"],
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    report = json.loads(out)
    validate_topology(report)
    warn_cores_limited(report, "BENCH_topology")

    result = {
        "schema_version": TOPOLOGY_SCHEMA_VERSION,
        "context": {
            "host": platform.node(),
            "num_cpus": os.cpu_count(),
            "date": datetime.datetime.now().astimezone().isoformat(timespec="seconds"),
            **env_context(),
        },
        **report,
    }

    path = ROOT / "BENCH_topology.json"
    result["history"] = load_history(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {path}")


COLLECTIVES_SCHEMA_VERSION = 1

COLLECTIVE_MODES = ("cni_tree", "cni_host", "standard_host")
COLLECTIVE_MODE_FIELDS = ("barrier_ps", "reduce_ps", "elapsed_cycles",
                          "fanin", "depth")
COLLECTIVE_NODE_COUNTS = (256, 1024, 4096)


def validate_collectives(report: dict) -> None:
    """Shape contract for BENCH_collectives.json (schema v1): the full
    topology x node-count grid is present, every point carries all three
    modes with their latency/tree-shape fields, and the NIC combining tree
    beats both centralized baselines once the O(N) manager serialization
    dominates (>= 1024 nodes) — the fig_barrier_scaling acceptance bar."""
    points = report["points"]
    for topo in TOPOLOGIES:
        for nodes in COLLECTIVE_NODE_COUNTS:
            key = f"{topo}/{nodes}"
            if key not in points:
                raise ValueError(f"missing point {key}")
    for pname, point in points.items():
        where = f"points.{pname}"
        modes = point["modes"]
        for mname in COLLECTIVE_MODES:
            if mname not in modes:
                raise ValueError(f"{where}: missing mode {mname}")
            for field in COLLECTIVE_MODE_FIELDS:
                if field not in modes[mname]:
                    raise ValueError(f"{where}.modes.{mname}: missing {field}")
        tree = modes["cni_tree"]
        if point["nodes"] >= 1024:
            for base in ("cni_host", "standard_host"):
                if tree["barrier_ps"] >= modes[base]["barrier_ps"]:
                    raise ValueError(
                        f"{where}: cni_tree barrier lost to {base}")
        if tree["fanin"] < 1 or tree["depth"] < 1:
            raise ValueError(f"{where}: degenerate combining tree")


def write_collectives() -> None:
    # fig_barrier_scaling sweeps 256/1024/4096 nodes for all three fabrics in
    # all three collective modes; the 4096-node centralized baselines make it
    # the slowest artifact here (several minutes on one core).
    out = subprocess.run(
        [str(BUILD / "bench" / "fig_barrier_scaling"), "--json"],
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    report = json.loads(out)
    validate_collectives(report)

    result = {
        "schema_version": COLLECTIVES_SCHEMA_VERSION,
        "context": {
            "host": platform.node(),
            "num_cpus": os.cpu_count(),
            "date": datetime.datetime.now().astimezone().isoformat(timespec="seconds"),
            **env_context(),
        },
        **report,
    }

    path = ROOT / "BENCH_collectives.json"
    result["history"] = load_history(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {path}")


def _num(d, *path):
    """Digs `path` out of nested dicts, returning None on any missing key —
    history blocks written by older schema versions may lack newer fields."""
    cur = d
    for key in path:
        if not isinstance(cur, dict) or key not in cur:
            return None
        cur = cur[key]
    return cur


def _headline_engine(s: dict) -> dict:
    rates = s.get("engine_events_per_sec") or {}
    mcache = s.get("mcache_lookups_per_sec") or {}
    return {
        "peak_engine_events_per_sec": max(rates.values(), default=None),
        "peak_mcache_lookups_per_sec": max(mcache.values(), default=None),
    }


def _headline_datapath(s: dict) -> dict:
    return {
        "page_round_trip_4096_speedup": _num(s, "page_round_trip", "4096", "speedup"),
        "diff_apply_4096_speedup": _num(s, "diff_apply", "4096", "speedup"),
        "heap_allocs_per_op": _num(s, "page_round_trip", "4096", "heap_allocs_per_op"),
    }


def _headline_obs(s: dict) -> dict:
    return {
        "probe_runtime_off_pct": _num(s, "probe", "runtime_off_overhead_pct"),
        "probe_tracing_on_pct": _num(s, "probe", "tracing_on_overhead_pct"),
        "jacobi_tracing_pct": _num(s, "jacobi_end_to_end", "tracing_on_overhead_pct"),
    }


def _headline_parsim(s: dict) -> dict:
    points = s.get("points") or {}
    k4 = _num(points, "jacobi", "modes", "k4") or {}
    limited = sum(1 for p in points.values()
                  for m in (p.get("modes") or {}).values()
                  if m.get("cores_limited"))
    return {
        "jacobi_k4_event_parallelism": k4.get("event_parallelism"),
        "jacobi_k4_wall_vs_k1": k4.get("wall_vs_k1"),
        "cores_limited_modes": limited,
    }


def _headline_topology(s: dict) -> dict:
    best_rate = None
    best_par = None
    for p in (s.get("points") or {}).values():
        k4 = (p.get("modes") or {}).get("k4") or {}
        rate = k4.get("events_per_sec")
        par = k4.get("event_parallelism")
        if rate is not None and (best_rate is None or rate > best_rate):
            best_rate = rate
        if par is not None and (best_par is None or par > best_par):
            best_par = par
    return {
        "peak_k4_events_per_sec": best_rate,
        "peak_k4_event_parallelism": best_par,
    }


def _headline_collectives(s: dict) -> dict:
    points = s.get("points") or {}

    def speedup(key):
        modes = (points.get(key) or {}).get("modes") or {}
        tree = (modes.get("cni_tree") or {}).get("barrier_ps")
        host = (modes.get("standard_host") or {}).get("barrier_ps")
        if not tree or not host:
            return None
        return round(host / tree, 2)

    return {
        "banyan_1024_barrier_speedup": speedup("banyan/1024"),
        "banyan_4096_barrier_speedup": speedup("banyan/4096"),
        "torus_4096_barrier_speedup": speedup("torus/4096"),
    }


TRAJECTORY_BENCHES = (
    ("engine", "BENCH_engine.json", _headline_engine),
    ("datapath", "BENCH_datapath.json", _headline_datapath),
    ("obs", "BENCH_obs.json", _headline_obs),
    ("parsim", "BENCH_parsim.json", _headline_parsim),
    ("topology", "BENCH_topology.json", _headline_topology),
    ("collectives", "BENCH_collectives.json", _headline_collectives),
)


def write_trajectory() -> None:
    """Aggregates the current payload plus the history blocks of every
    BENCH_*.json into one cross-PR perf trajectory: BENCH_trajectory.json for
    machines, TRAJECTORY.md for humans, and the markdown echoed to stdout so
    the CI bench job surfaces it in the log."""
    benches = {}
    for name, fname, headline in TRAJECTORY_BENCHES:
        path = ROOT / fname
        if not path.exists():
            continue
        try:
            current = json.loads(path.read_text())
        except ValueError:
            continue
        snapshots = [{k: v for k, v in current.items() if k != "history"}]
        snapshots += [s for s in current.get("history", []) if isinstance(s, dict)]
        rows = []
        for snap in snapshots:
            ctx = snap.get("context") or {}
            rows.append({
                "date": (ctx.get("date") or "")[:10] or None,
                "host": ctx.get("host"),
                "num_cpus": ctx.get("num_cpus"),
                **headline(snap),
            })
        benches[name] = rows

    out_json = ROOT / "BENCH_trajectory.json"
    out_json.write_text(json.dumps({"schema_version": 1, "benches": benches},
                                   indent=2) + "\n")

    lines = [
        "# Performance trajectory",
        "",
        "Headline numbers per benchmark family, newest row first; older rows",
        f"come from each BENCH file's history block (capped at {HISTORY_DEPTH}",
        "entries). Wall-clock columns are host-bound — compare rows only when",
        "host/num_cpus match. Regenerated by `scripts/bench_engine.py",
        "--trajectory` (and automatically after a full bench run).",
        "",
    ]
    for name, rows in benches.items():
        lines.append(f"## {name}")
        lines.append("")
        if not rows:
            lines.extend(["(no data)", ""])
            continue
        cols = list(rows[0].keys())
        lines.append("| " + " | ".join(cols) + " |")
        lines.append("|" + "|".join(" --- " for _ in cols) + "|")
        for row in rows:
            cells = ["-" if row.get(c) is None else str(row[c]) for c in cols]
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    md = "\n".join(lines)
    (ROOT / "TRAJECTORY.md").write_text(md)
    print(md)
    print(f"wrote {out_json}")
    print(f"wrote {ROOT / 'TRAJECTORY.md'}")


def main() -> None:
    if "--trajectory" in sys.argv[1:]:
        write_trajectory()
        return

    engine = run("micro_engine")
    mcache = run("micro_mcache")

    result = {
        "context": context_of(engine),
        "engine_events_per_sec": {},
        "mcache_lookups_per_sec": {},
    }
    for b in engine["benchmarks"]:
        if b.get("items_per_second"):
            result["engine_events_per_sec"][b["name"]] = round(b["items_per_second"])
    for b in mcache["benchmarks"]:
        # mcache benches report one lookup/insert per iteration.
        result["mcache_lookups_per_sec"][b["name"]] = round(1e9 / b["real_time"])

    path = ROOT / "BENCH_engine.json"
    result["history"] = load_history(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {path}")

    write_datapath()
    write_obs()
    write_parsim()
    write_topology()
    write_collectives()
    write_trajectory()


if __name__ == "__main__":
    main()
