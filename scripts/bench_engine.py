#!/usr/bin/env python3
"""Regenerates BENCH_engine.json from the engine and message-cache microbenches.

Usage: scripts/bench_engine.py [build-dir]

Captures the machine-readable throughput numbers the PR/README quote:
events/sec from micro_engine and lookups/sec from micro_mcache.
"""
import json
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BUILD = Path(sys.argv[1]) if len(sys.argv) > 1 else ROOT / "build"


def run(binary: str) -> dict:
    out = subprocess.run(
        [str(BUILD / "bench" / binary), "--benchmark_format=json", "--benchmark_min_time=0.5"],
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    return json.loads(out)


def main() -> None:
    engine = run("micro_engine")
    mcache = run("micro_mcache")

    result = {
        "context": {
            "host": engine["context"]["host_name"],
            "num_cpus": engine["context"]["num_cpus"],
            "mhz_per_cpu": engine["context"]["mhz_per_cpu"],
            "date": engine["context"]["date"],
        },
        "engine_events_per_sec": {},
        "mcache_lookups_per_sec": {},
    }
    for b in engine["benchmarks"]:
        if b.get("items_per_second"):
            result["engine_events_per_sec"][b["name"]] = round(b["items_per_second"])
    for b in mcache["benchmarks"]:
        # mcache benches report one lookup/insert per iteration.
        result["mcache_lookups_per_sec"][b["name"]] = round(1e9 / b["real_time"])

    path = ROOT / "BENCH_engine.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
