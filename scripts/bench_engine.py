#!/usr/bin/env python3
"""Regenerates BENCH_engine.json and BENCH_datapath.json from the microbenches.

Usage: scripts/bench_engine.py [build-dir]

Captures the machine-readable throughput numbers the PR/README quote:
events/sec from micro_engine, lookups/sec from micro_mcache, and the
zero-copy-vs-legacy data-path comparison from micro_datapath (throughput,
speedup ratios, and the steady-state heap-allocation count).
"""
import json
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BUILD = Path(sys.argv[1]) if len(sys.argv) > 1 else ROOT / "build"


def run(binary: str) -> dict:
    out = subprocess.run(
        [str(BUILD / "bench" / binary), "--benchmark_format=json", "--benchmark_min_time=0.5"],
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    return json.loads(out)


def context_of(report: dict) -> dict:
    return {
        "host": report["context"]["host_name"],
        "num_cpus": report["context"]["num_cpus"],
        "mhz_per_cpu": report["context"]["mhz_per_cpu"],
        "date": report["context"]["date"],
    }


# (pooled benchmark, legacy benchmark) pairs micro_datapath reports.
DATAPATH_PAIRS = {
    "page_round_trip": ("BM_PageRoundTripPooled", "BM_PageRoundTripLegacy"),
    "diff_create": ("BM_DiffCreateWordWise", "BM_DiffCreateByteWise"),
    "diff_apply": ("BM_DiffApplyPooled", "BM_DiffApplyLegacy"),
}


def write_datapath() -> None:
    report = run("micro_datapath")
    by_name = {b["name"]: b for b in report["benchmarks"]}
    result = {"context": context_of(report)}
    for key, (pooled, legacy) in DATAPATH_PAIRS.items():
        series = {}
        for size in (1024, 2048, 4096, 8192):
            p = by_name[f"{pooled}/{size}"]
            l = by_name[f"{legacy}/{size}"]
            entry = {
                "pooled_bytes_per_sec": round(p["bytes_per_second"]),
                "legacy_bytes_per_sec": round(l["bytes_per_second"]),
                "speedup": round(p["bytes_per_second"] / l["bytes_per_second"], 2),
            }
            if "heap_allocs_per_op" in p:
                entry["heap_allocs_per_op"] = round(p["heap_allocs_per_op"], 4)
                entry["pool_hits_per_op"] = round(p["pool_hits_per_op"], 2)
            series[str(size)] = entry
        result[key] = series

    path = ROOT / "BENCH_datapath.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {path}")


def main() -> None:
    engine = run("micro_engine")
    mcache = run("micro_mcache")

    result = {
        "context": context_of(engine),
        "engine_events_per_sec": {},
        "mcache_lookups_per_sec": {},
    }
    for b in engine["benchmarks"]:
        if b.get("items_per_second"):
            result["engine_events_per_sec"][b["name"]] = round(b["items_per_second"])
    for b in mcache["benchmarks"]:
        # mcache benches report one lookup/insert per iteration.
        result["mcache_lookups_per_sec"][b["name"]] = round(1e9 / b["real_time"])

    path = ROOT / "BENCH_engine.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {path}")

    write_datapath()


if __name__ == "__main__":
    main()
