#!/usr/bin/env python3
"""Pretty-prints and checks cni-critpath JSON (from --critpath-out=).

Usage:
  scripts/critpath.py CRITPATH.json            # human-readable breakdown
  scripts/critpath.py CRITPATH.json --check    # CI acceptance gate

The file is written by obs::Reporter when a figure binary runs with
--critpath-out= (src/obs/critpath.cpp). Per sweep point it holds the
extracted critical path: the chain of causal spans from the widest tree's
root to its latest leaf, plus per-stage picosecond buckets that partition
the end-to-end window.

--check enforces, per point where a path was found:
  * coverage: the stage buckets sum to >= 95% of the end-to-end window
    (end_ps - start_ps) — i.e. the attribution accounts for the span;
  * consistency: attributed_ps equals the sum of the stages object, and
    the chain's attr_ps entries sum to the chain steps' share of it;
  * monotonicity: chain steps are sorted by start_ps.
Exits non-zero listing every violation. Stdlib only; CI has no third-party
Python dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

COVERAGE_FLOOR = 0.95


def fmt_ps(ps: int) -> str:
    """Picoseconds as a human-readable nanosecond/microsecond figure."""
    if ps >= 1_000_000:
        return f"{ps / 1_000_000:.2f} us"
    if ps >= 1_000:
        return f"{ps / 1_000:.1f} ns"
    return f"{ps} ps"


def print_point(pt: dict) -> None:
    print(f"== {pt['label']} ==")
    if pt.get("trace_truncated"):
        print("   !! trace truncated: a ring dropped records; chains may be cut")
    if not pt["found"]:
        print("   (no causal spans recorded)")
        return
    cp = pt["critpath"]
    total = cp["total_ps"]
    cov = cp["attributed_ps"] / total * 100 if total else 100.0
    print(
        f"   root {cp['root']}  window {fmt_ps(total)}  "
        f"attributed {cov:.1f}%  chain {cp['steps']} step(s)"
    )
    width = max((len(name) for name in cp["stages"]), default=0)
    for name, ps in cp["stages"].items():
        if ps == 0:
            continue
        share = ps / total * 100 if total else 0.0
        bar = "#" * int(round(share / 2))
        print(f"   {name:<{width}}  {fmt_ps(ps):>12}  {share:5.1f}%  {bar}")
    chain = pt.get("chain", [])
    if chain:
        hops = " -> ".join(f"{st['stage']}@n{st['node']}" for st in chain)
        print(f"   path: {hops}")


def check_point(pt: dict) -> list[str]:
    label = pt["label"]
    errors = []
    if not pt["found"]:
        # A sweep point with tracing on but no causal spans means the probes
        # never fired — that is a wiring regression, not an empty workload.
        errors.append(f"{label}: no causal spans found")
        return errors
    cp = pt["critpath"]
    total = cp["total_ps"]
    if cp["end_ps"] - cp["start_ps"] != total:
        errors.append(f"{label}: total_ps != end_ps - start_ps")
    if sum(cp["stages"].values()) != cp["attributed_ps"]:
        errors.append(f"{label}: stages do not sum to attributed_ps")
    if total > 0:
        cov = cp["attributed_ps"] / total
        if cov < COVERAGE_FLOOR:
            errors.append(
                f"{label}: attribution covers {cov * 100:.2f}% of the window "
                f"(< {COVERAGE_FLOOR * 100:.0f}%)"
            )
    chain = pt.get("chain", [])
    if len(chain) != cp["steps"]:
        errors.append(f"{label}: chain length {len(chain)} != steps {cp['steps']}")
    starts = [st["start_ps"] for st in chain]
    if starts != sorted(starts):
        errors.append(f"{label}: chain steps not sorted by start_ps")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("critpath", help="cni-critpath JSON (from --critpath-out=)")
    ap.add_argument(
        "--check",
        action="store_true",
        help="validate coverage/consistency instead of pretty-printing",
    )
    args = ap.parse_args()

    data = json.loads(Path(args.critpath).read_text())
    if data.get("schema") != "cni-critpath":
        print(f"critpath: schema is {data.get('schema')!r}, "
              "expected 'cni-critpath'", file=sys.stderr)
        return 1

    if args.check:
        errors = []
        for pt in data["points"]:
            errors += check_point(pt)
        for e in errors:
            print(f"FAIL {e}", file=sys.stderr)
        if errors:
            print(f"critpath: {len(errors)} violation(s)", file=sys.stderr)
            return 1
        n = len(data["points"])
        print(f"critpath: OK — {n} point(s), all attributed >= "
              f"{COVERAGE_FLOOR * 100:.0f}% of their windows")
        return 0

    for pt in data["points"]:
        print_point(pt)
    return 0


if __name__ == "__main__":
    sys.exit(main())
