#!/usr/bin/env bash
# Smoke test: configure, build, run the tier-1 suite, then exercise one
# figure sweep and one microbenchmark in fast mode. Anything here failing
# means the tree is not shippable; CI runs exactly this script.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

# CMAKE_ARGS is a space-separated flag list (e.g. "-DCNI_SANITIZE=address");
# word splitting is intentional.
# shellcheck disable=SC2086
cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# One end-to-end figure (fast mode trims the sweep) and two microbenches, so
# a perf-infrastructure regression (bench harness, parallel runner, engine,
# pooled data path) shows up even when the unit suite is green. The datapath
# bench also runs under the sanitizer jobs, exercising the buffer pool's
# cross-thread release and the allocation interposer under ASan/UBSan/TSan.
CNI_BENCH_FAST=1 "$BUILD_DIR/bench/fig02_jacobi_speedup_128"
"$BUILD_DIR/bench/micro_engine" --benchmark_min_time=0.05
"$BUILD_DIR/bench/micro_datapath" --benchmark_min_time=0.05

echo "smoke: OK"
