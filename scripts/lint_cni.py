#!/usr/bin/env python3
"""CNI-specific lint: machine-enforces invariants the codebase keeps by design.

Off-the-shelf tools cannot know this project's contracts, so this linter
checks the three that matter most (see DESIGN.md section 9):

  determinism     The simulator must be bit-reproducible. All randomness
                  flows through the seeded streams in src/util/rng.hpp;
                  wall-clock and libc RNG calls are banned everywhere else
                  in src/.
  hot-path-alloc  src/sim, src/core, src/atm, src/nic, src/dsm and src/obs
                  are the per-event hot paths. Node containers
                  (std::unordered_map/set) are banned there; use
                  util::U64FlatMap (DESIGN.md §8). The std::function and
                  raw-new halves of this rule moved to the AST-grounded
                  scripts/analyze_cni.py (same rule name, so allow()
                  comments carry over), which flags the actual allocating
                  expressions instead of the tokens.
  payload-copy    Frame/diff payloads live in pooled util::Buf storage and
                  travel by refcount (DESIGN.md §10). Declaring a
                  std::vector<std::byte> in a data-path directory almost
                  always reintroduces a per-hop copy; hold a util::Buf or a
                  std::span view instead.
  bare-assert     assert() vanishes under NDEBUG, silently downgrading an
                  invariant to undefined behaviour in release sweeps. Use
                  CNI_CHECK (always on) or CNI_DCHECK (debug-only).
  functionref-param
                  A `const std::function<...>&` parameter forces every call
                  site to materialize a heap-backed owning callable even
                  when the callee only invokes it and never stores it.
                  Non-owning callable parameters take util::FunctionRef
                  (two words, no allocation — DESIGN.md §12); keep
                  std::function for callables that are *stored*.
  sharded-wall-clock
                  The epoch crew (src/sim/sharded.*) must never consult host
                  time: no timed waits, sleeps, std::chrono, or TSC reads.
                  The barrier protocol is correct purely through the
                  generation/arrival/progress words — a timeout or timed
                  backoff would paper over a lost wakeup instead of
                  deadlocking loudly, and would couple the epoch schedule to
                  host timing jitter. This is stricter than `determinism`
                  (which only bans the clock types that read wall time):
                  here even reading a duration type is suspect.

Plus an include-hygiene pass (skipped by --fast): every header under src/
must compile on its own, verified by generating a one-line TU per header
and running the compiler in syntax-only mode, under the include/define/std
flags of the real build read from compile_commands.json (fallback: -I src).

Suppression: a finding is silenced by an annotation on the same line or in
the contiguous comment block immediately above it, with a reason:

    // cni-lint: allow(hot-path-alloc): cold path, runs once per setup

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Self-test: `lint_cni.py --self-test` runs the linter against the fixture
tree in tests/lint_fixtures (files annotated with `// lint-expect: <rule>`)
and verifies every expected finding fires and nothing else does. Wired into
ctest so the linter itself is tier-1 tested.
"""

import argparse
import json
import os
import re
import shlex
import shutil
import subprocess
import sys
import tempfile

# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

# determinism: wall-clock / libc RNG / unseeded std RNG. src/util/rng.hpp is
# the one sanctioned home for raw generator code.
DETERMINISM_PATTERNS = [
    (re.compile(r"(?<![\w.:])s?rand\s*\("), "libc rand()/srand()"),
    (re.compile(r"(?<![\w.:])[lmd]rand48\s*\("), "libc *rand48()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937 (use util::SplitMix64)"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"std::\s*time\s*\("), "std::time()"),
    (re.compile(r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0|&)"), "libc time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "std::chrono wall clocks"),
]

# Token-level hot-path bans only. The std::function and raw-new rules moved
# to scripts/analyze_cni.py, which checks the actual AST expressions
# (constructions and new-expressions, seeing through aliases and macros)
# under the same rule name "hot-path-alloc" — existing cni-lint allow()
# comments keep working there unchanged.
HOT_PATH_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*unordered_(?:map|set)\b"),
     "std::unordered_map/set (use util::U64FlatMap)"),
]

PAYLOAD_COPY_PATTERN = re.compile(r"\bstd\s*::\s*vector\s*<\s*std\s*::\s*byte\s*>")

# A const-ref std::function parameter: greedy `<.*>` spans nested template
# arguments on the line; the trailing `&` is what distinguishes a borrowed
# parameter (should be util::FunctionRef) from a stored member or alias.
FUNCTIONREF_PARAM_PATTERN = re.compile(
    r"\bconst\s+std\s*::\s*function\s*<.*>\s*&")

BARE_ASSERT_PATTERN = re.compile(r"(?<![\w.:])assert\s*\(")

# sharded-wall-clock: anything that reads or waits on host time inside the
# epoch-crew implementation. Deliberately broader than DETERMINISM_PATTERNS:
# std::chrono durations, timed waits and sleeps don't read a wall clock
# directly but exist only to couple control flow to one.
SHARDED_WALL_CLOCK_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*chrono\b"), "std::chrono"),
    (re.compile(r"\bsleep_(?:for|until)\b"), "std::this_thread timed sleep"),
    (re.compile(r"\bwait_(?:for|until)\b"), "timed wait (use untimed atomic wait)"),
    (re.compile(r"(?<![\w.:])(?:nanosleep|usleep|sleep)\s*\("), "libc sleep"),
    (re.compile(r"(?<![\w.:])clock\s*\("), "libc clock()"),
    (re.compile(r"\b__?rdtscp?\b"), "TSC read"),
]
SHARDED_WALL_CLOCK_FILES = ("src/sim/sharded.cpp", "src/sim/sharded.hpp")

# Paths (relative, forward slashes) where determinism primitives may live.
DETERMINISM_EXEMPT = {"src/util/rng.hpp"}
HOT_PATH_DIRS = ("src/sim/", "src/core/", "src/atm/", "src/nic/", "src/dsm/",
                 "src/obs/")

ALLOW_RE = re.compile(r"cni-lint:\s*allow\(([a-z-]+)\)\s*:?\s*(.*)")
EXPECT_RE = re.compile(r"lint-expect:\s*([a-z-]+)")

SOURCE_EXTS = {".hpp", ".cpp", ".h", ".cc"}


class Finding:
    def __init__(self, path, line, rule, detail):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.detail}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line structure
    so findings keep their true line numbers. Comment *text* is preserved
    separately by the caller for allow/expect annotations."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
                if m:
                    state = "raw"
                    raw_delim = ")" + m.group(1) + '"'
                    out.append(" " * (m.end()))
                    i += m.end()
                    continue
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            elif c == "\n":  # unterminated; recover
                state = "code"
                out.append("\n")
                i += 1
            else:
                out.append(" ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def collect_allows(lines):
    """Maps line number (1-based) -> set of allowed rules. An allow annotation
    covers its own line and, when it sits in a comment block, the first code
    line after that block."""
    allowed = {}
    pending = set()
    for idx, line in enumerate(lines, start=1):
        stripped = line.strip()
        is_comment = stripped.startswith("//") or stripped.startswith("*") or \
            stripped.startswith("/*")
        for m in ALLOW_RE.finditer(line):
            rule, reason = m.group(1), m.group(2).strip()
            if not reason:
                # A reasonless allow is itself a finding; record under a
                # reserved key checked later.
                allowed.setdefault(idx, set()).add("__missing_reason__" + rule)
                continue
            if is_comment:
                pending.add(rule)
            allowed.setdefault(idx, set()).add(rule)
        if not is_comment and stripped:
            if pending:
                allowed.setdefault(idx, set()).update(pending)
                pending = set()
    return allowed


def lint_file(root, rel, findings):
    path = os.path.join(root, rel)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        findings.append(Finding(rel, 0, "io", str(e)))
        return
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_strings(text).splitlines()
    allows = collect_allows(raw_lines)

    for lineno, allowset in allows.items():
        for entry in allowset:
            if entry.startswith("__missing_reason__"):
                findings.append(Finding(
                    rel, lineno, "lint-usage",
                    "cni-lint allow() without a reason — justify the suppression"))

    def check(lineno, rule, detail):
        if rule in allows.get(lineno, set()):
            return
        findings.append(Finding(rel, lineno, rule, detail))

    rel_fs = rel.replace(os.sep, "/")
    in_hot_path = rel_fs.startswith(HOT_PATH_DIRS)
    in_epoch_crew = rel_fs in SHARDED_WALL_CLOCK_FILES
    determinism_exempt = rel_fs in DETERMINISM_EXEMPT

    for lineno, line in enumerate(code_lines, start=1):
        if "#include" in line:
            continue
        if not determinism_exempt:
            for pat, what in DETERMINISM_PATTERNS:
                if pat.search(line):
                    check(lineno, "determinism",
                          f"{what} — all randomness/time must come from "
                          "util/rng.hpp seeded streams or sim::SimTime")
        if in_epoch_crew:
            for pat, what in SHARDED_WALL_CLOCK_PATTERNS:
                if pat.search(line):
                    check(lineno, "sharded-wall-clock",
                          f"{what} — the epoch crew must not read or wait on "
                          "host time; the barrier protocol is untimed by "
                          "design (DESIGN.md §12)")
        if in_hot_path:
            for pat, what in HOT_PATH_PATTERNS:
                if pat.search(line):
                    check(lineno, "hot-path-alloc", what)
            if PAYLOAD_COPY_PATTERN.search(line):
                check(lineno, "payload-copy",
                      "std::vector<std::byte> payload copy — hold a "
                      "util::Buf (pooled, refcounted) or a std::span view")
        if FUNCTIONREF_PARAM_PATTERN.search(line):
            check(lineno, "functionref-param",
                  "const std::function<...>& parameter — take "
                  "util::FunctionRef (non-owning, no allocation) for "
                  "call-and-forget callables; std::function is for storage")
        if BARE_ASSERT_PATTERN.search(line):
            check(lineno, "bare-assert",
                  "bare assert() compiles out under NDEBUG — use CNI_CHECK "
                  "or CNI_DCHECK (util/check.hpp)")


def iter_source_files(root, subdir="src"):
    base = os.path.join(root, subdir)
    for dirpath, _dirnames, filenames in os.walk(base):
        for name in sorted(filenames):
            if os.path.splitext(name)[1] in SOURCE_EXTS:
                yield os.path.relpath(os.path.join(dirpath, name), root)


def find_compiler():
    cxx = os.environ.get("CXX")
    if cxx and shutil.which(cxx):
        return cxx
    for cand in ("c++", "g++", "clang++"):
        if shutil.which(cand):
            return cand
    return None


def compile_db_flags(root, build_dir=None):
    """Include/define/standard flags for the hygiene TUs, read from the
    build's compile_commands.json so the pass checks headers under the same
    -I/-isystem/-D/-std the real build uses. Falls back to the historical
    `-std=c++20 -I <root>/src` when no database exists (fresh checkout,
    fixture trees)."""
    candidates = []
    if build_dir:
        candidates.append(os.path.join(build_dir, "compile_commands.json"))
    elif os.path.isdir(root):
        for name in sorted(os.listdir(root)):
            candidates.append(os.path.join(root, name, "compile_commands.json"))
    for db_path in candidates:
        if not os.path.isfile(db_path):
            continue
        try:
            with open(db_path, encoding="utf-8") as f:
                db = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue
        for entry in db:
            path = os.path.normpath(os.path.join(entry.get("directory", "."),
                                                 entry.get("file", "")))
            if os.sep + "src" + os.sep not in path:
                continue
            argv = entry.get("arguments") or shlex.split(entry.get("command", ""))
            cwd = entry.get("directory", ".")
            flags = []
            i = 1
            while i < len(argv):
                a = argv[i]
                if a in ("-I", "-isystem", "-iquote"):
                    if i + 1 < len(argv):
                        flags += [a, os.path.normpath(
                            os.path.join(cwd, argv[i + 1]))]
                    i += 2
                elif a.startswith("-I") and len(a) > 2:
                    flags.append("-I" + os.path.normpath(
                        os.path.join(cwd, a[2:])))
                    i += 1
                elif a.startswith(("-D", "-U", "-std=")):
                    flags.append(a)
                    i += 1
                else:
                    i += 1
            if flags:
                return flags
    return ["-std=c++20", "-I", os.path.join(root, "src")]


def check_include_hygiene(root, findings, headers=None, build_dir=None):
    """Every header must be self-sufficient: a TU containing only that
    #include must compile. Catches headers leaning on transitive includes."""
    cxx = find_compiler()
    if cxx is None:
        print("lint_cni: no C++ compiler found; skipping include-hygiene",
              file=sys.stderr)
        return
    if headers is None:
        headers = [f for f in iter_source_files(root)
                   if f.endswith((".hpp", ".h"))]
    flags = compile_db_flags(root, build_dir)
    with tempfile.TemporaryDirectory() as tmp:
        for rel in headers:
            rel_fs = rel.replace(os.sep, "/")
            include_name = rel_fs[len("src/"):] if rel_fs.startswith("src/") else rel_fs
            tu = os.path.join(tmp, "tu.cpp")
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{include_name}"\n')
            proc = subprocess.run(
                [cxx, *flags, "-fsyntax-only", tu],
                capture_output=True, text=True, check=False)
            if proc.returncode != 0:
                first_err = next(
                    (l for l in proc.stderr.splitlines() if "error" in l), "")
                findings.append(Finding(
                    rel, 1, "include-hygiene",
                    "header does not compile standalone: " + first_err.strip()))


# ---------------------------------------------------------------------------
# Self-test against the fixture tree
# ---------------------------------------------------------------------------

def collect_expectations(root):
    expected = set()
    for rel in iter_source_files(root):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            for m in EXPECT_RE.finditer(f.read()):
                expected.add((rel.replace(os.sep, "/"), m.group(1)))
    return expected


def run_self_test(fixture_root):
    if not os.path.isdir(os.path.join(fixture_root, "src")):
        print(f"lint_cni: fixture tree not found at {fixture_root}",
              file=sys.stderr)
        return 2
    findings = []
    for rel in iter_source_files(fixture_root):
        lint_file(fixture_root, rel, findings)
    check_include_hygiene(fixture_root, findings)

    expected = collect_expectations(fixture_root)
    got = {(f.path.replace(os.sep, "/"), f.rule) for f in findings}

    ok = True
    for miss in sorted(expected - got):
        print(f"self-test FAIL: expected finding did not fire: {miss}")
        ok = False
    for extra in sorted(got - expected):
        print(f"self-test FAIL: unexpected finding: {extra}")
        for f in findings:
            if (f.path.replace(os.sep, "/"), f.rule) == extra:
                print(f"    {f}")
        ok = False
    if ok:
        print(f"lint_cni self-test: OK ({len(expected)} expected findings, "
              f"{len(findings)} fired)")
        return 0
    return 1


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--fast", action="store_true",
                    help="skip the include-hygiene compile pass")
    ap.add_argument("--build-dir", default=None,
                    help="build dir whose compile_commands.json supplies the "
                         "include-hygiene flags (default: any "
                         "<root>/*/compile_commands.json; fallback -I src)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the fixture tree and check expected findings")
    args = ap.parse_args()

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root) if args.root else os.path.dirname(script_dir)

    if args.self_test:
        sys.exit(run_self_test(os.path.join(root, "tests", "lint_fixtures")))

    findings = []
    for rel in iter_source_files(root):
        lint_file(root, rel, findings)
    if not args.fast:
        check_include_hygiene(root, findings, build_dir=args.build_dir)

    for f in findings:
        print(f)
    if findings:
        print(f"lint_cni: {len(findings)} finding(s)")
        sys.exit(1)
    print("lint_cni: OK")
    sys.exit(0)


if __name__ == "__main__":
    main()
