#!/usr/bin/env bash
# clang-format wrapper for the project style (.clang-format).
#
# Usage:
#   scripts/format.sh          reformat src/ tests/ bench/ examples/ in place
#   scripts/format.sh --check  report violations, exit 1 if any (CI mode;
#                              non-blocking first step in the workflow)
#
# If clang-format is missing (minimal local container), both modes skip with
# exit 0; CI installs clang-format and runs the real check.
set -euo pipefail

cd "$(dirname "$0")/.."

FMT="${CLANG_FORMAT:-}"
if [[ -z "$FMT" ]]; then
  for cand in clang-format clang-format-18 clang-format-17 clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$cand" > /dev/null 2>&1; then
      FMT="$cand"
      break
    fi
  done
fi
if [[ -z "$FMT" ]]; then
  echo "format: clang-format not found on PATH; skipping" >&2
  exit 0
fi

mapfile -t files < <(find src tests bench examples \
  \( -name '*.cpp' -o -name '*.hpp' \) ! -path 'tests/lint_fixtures/*' | sort)

if [[ "${1:-}" == "--check" ]]; then
  echo "format: checking ${#files[@]} files with $FMT"
  "$FMT" --dry-run --Werror "${files[@]}"
  echo "format: OK"
else
  echo "format: reformatting ${#files[@]} files with $FMT"
  "$FMT" -i "${files[@]}"
fi
