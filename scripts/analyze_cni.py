#!/usr/bin/env python3
"""AST-grounded CNI analyzer: checks the regex linter cannot do.

lint_cni.py matches tokens; this analyzer reads the program. It drives
`clang -Xclang -ast-dump=json -fsyntax-only` over the compilation database
(compile_commands.json) and walks the real AST, so it sees through macros,
type aliases and formatting — a `DeliveryHook` IS a std::function here, a
defaulted memory_order argument IS seq_cst, a field with a guarded_by
attribute IS guarded regardless of how the line is wrapped.

Checks (rule names are the suppression keys):

  hot-path-alloc        Actual allocation expressions in the per-event hot
                        directories (src/sim|core|atm|nic|dsm|obs): non-
                        placement new-expressions, std::function
                        constructions that can allocate (from a callable, or
                        a copy — default/move construction is free and not
                        flagged), and std::make_unique/make_shared calls.
                        Same rule name as the old regex rule, so existing
                        cni-lint allow() comments keep working.
  hot-path-growth       push_back/emplace_back on a local std::vector inside
                        a loop, in a hot directory, in a function that never
                        calls reserve(): unreserved growth reallocates —
                        reserve first, or justify with an allow.
  atomic-implicit-order A std::atomic operation relying on the defaulted
                        memory_order (silent seq_cst), or an operator-form
                        access (=, ++, implicit load) which is always
                        seq_cst. Audited in src/sim, src/atm, src/util.
                        Every ordering must be a choice, not a default.
  atomic-rationale      An explicit atomic operation with no adjacent
                        comment (same line or the four lines above): the
                        chosen memory_order must carry its pairing rationale
                        next to the code. Audited in src/sim|atm|util.
  shard-ownership       A write to a CNI_GUARDED_BY field from a function
                        that neither carries a capability attribute
                        (CNI_REQUIRES/CNI_ACQUIRE/...) nor acquires/asserts
                        a util::Capability in its body. Catches per-shard
                        state escaping its owner even where Clang's own
                        thread-safety analysis is not running.
  functionref-escape    A class/struct field of util::FunctionRef type:
                        FunctionRef is a borrowed view; storing one beyond
                        the borrow is a use-after-free factory. Fields need
                        an allow() stating the lifetime argument.
  virtual-hot           A virtual member function declared in the event-
                        dispatch core (src/sim, src/core): per-event virtual
                        dispatch defeats inlining on the hottest paths; use
                        InlineFn/FunctionRef or CRTP instead.

Suppression syntax is shared with lint_cni.py: an annotation on the same
line or in the comment block immediately above, with a reason:

    // cni-lint: allow(hot-path-alloc): installed once at setup

Requirements and graceful degradation: the tree scan needs clang and a
compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is on). When either is
missing the scan prints a SKIP notice and exits 0 — the `analyze` CI job is
where enforcement happens. `--self-test` always runs its clang-free
synthetic-AST unit tests, and additionally analyzes the fixture tree in
tests/analyze_fixtures (files annotated `// analyze-expect: <rule>`) when
clang is available.

Exit status: 0 clean/skipped, 1 findings or self-test failure, 2 usage.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shlex
import shutil
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lint_cni import collect_allows  # noqa: E402  (shared suppression rules)

HOT_PATH_DIRS = ("src/sim/", "src/core/", "src/atm/", "src/nic/", "src/dsm/",
                 "src/obs/")
ATOMIC_AUDIT_DIRS = ("src/sim/", "src/atm/", "src/util/")
VIRTUAL_HOT_DIRS = ("src/sim/", "src/core/")

EXPECT_RE = re.compile(r"analyze-expect:\s*([a-z-]+)")

FUNC_KINDS = {"FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
              "CXXDestructorDecl", "CXXConversionDecl"}
LOOP_KINDS = {"ForStmt", "WhileStmt", "DoStmt", "CXXForRangeStmt"}
WRAPPER_KINDS = {"ImplicitCastExpr", "ParenExpr", "ExprWithCleanups",
                 "MaterializeTemporaryExpr", "CXXBindTemporaryExpr",
                 "ConstantExpr", "FullExpr", "CXXFunctionalCastExpr",
                 "CXXStaticCastExpr"}

# Thread-safety attributes that mark a function as capability-aware: holding
# one of these means the ownership contract is declared (and, under the
# Clang thread-safety CI job, checked).
TSA_FUNC_ATTRS = {"RequiresCapabilityAttr", "AcquireCapabilityAttr",
                  "ReleaseCapabilityAttr", "AssertCapabilityAttr",
                  "TryAcquireCapabilityAttr", "NoThreadSafetyAnalysisAttr"}
GUARDED_ATTRS = {"GuardedByAttr", "PtGuardedByAttr"}
# util::Capability protocol methods: a call to any of these in a function
# body declares the role for the enclosing scope.
CAP_METHODS = {"acquire", "acquire_shared", "release", "release_shared",
               "assert_held", "assert_shared"}

# Atomic member operations that take a memory_order parameter.
ATOMIC_ORDERED_OPS = {"load", "store", "exchange", "compare_exchange_weak",
                      "compare_exchange_strong", "fetch_add", "fetch_sub",
                      "fetch_and", "fetch_or", "fetch_xor", "wait",
                      "test_and_set", "clear", "test"}


class Finding:
    def __init__(self, path, line, rule, detail):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.detail}"


# ---------------------------------------------------------------------------
# Location resolution
#
# clang's JSON dump encodes locations differentially: "file" and "line" are
# omitted whenever they equal the previously *printed* location. Decoding
# therefore requires one pass over the document in print order, threading
# the last-seen file/line through every loc object (including the nested
# spellingLoc/expansionLoc pairs of macro expansions).
# ---------------------------------------------------------------------------

LOC_KEYS = {"loc", "begin", "end", "spellingLoc", "expansionLoc"}


def resolve_locations(root):
    state = {"file": None, "line": None}

    def fill(loc):
        if "spellingLoc" in loc or "expansionLoc" in loc:
            # Printed spelling-first; decode in the same order.
            if "spellingLoc" in loc:
                fill(loc["spellingLoc"])
            if "expansionLoc" in loc:
                fill(loc["expansionLoc"])
            return
        if not loc:
            return  # invalid/compiler-generated: no update, no inheritance
        if "file" in loc:
            state["file"] = loc["file"]
        else:
            loc["file"] = state["file"]
        if "line" in loc:
            state["line"] = loc["line"]
        else:
            loc["line"] = state["line"]

    def visit(obj):
        if isinstance(obj, dict):
            for key, val in obj.items():
                if key in LOC_KEYS and isinstance(val, dict):
                    fill(val)
                    # expansionLocs can themselves carry range-like nesting;
                    # plain recursion below would double-count, so stop here.
                elif key == "range" and isinstance(val, dict):
                    for sub in ("begin", "end"):
                        if isinstance(val.get(sub), dict):
                            fill(val[sub])
                else:
                    visit(val)
        elif isinstance(obj, list):
            for item in obj:
                visit(item)

    visit(root)


def effective_loc(loc):
    """(file, line) of a resolved loc, preferring the macro expansion site."""
    if loc is None:
        return (None, None)
    if "expansionLoc" in loc:
        return effective_loc(loc["expansionLoc"])
    return (loc.get("file"), loc.get("line"))


def node_loc(node):
    file, line = effective_loc(node.get("loc"))
    if file is None or line is None:
        rng = node.get("range") or {}
        file, line = effective_loc(rng.get("begin"))
    return (file, line)


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------

def inner(node):
    return node.get("inner") or []


def unwrap(expr):
    while isinstance(expr, dict) and expr.get("kind") in WRAPPER_KINDS:
        kids = inner(expr)
        if not kids:
            return expr
        expr = kids[0]
    return expr


def type_strings(node):
    t = node.get("type") or {}
    return (t.get("qualType") or "", t.get("desugaredQualType") or "")


def squash(s):
    return re.sub(r"\s+", "", s)


def is_std_function_type(node):
    for t in type_strings(node):
        s = squash(t).removeprefix("const")
        if s.startswith("std::function<"):
            return True
    return False


def mentions(node, needle):
    return any(needle in t for t in type_strings(node))


def member_callee(call):
    kids = inner(call)
    if kids and kids[0].get("kind") == "MemberExpr":
        return kids[0]
    return None


def member_base(member_expr):
    kids = inner(member_expr)
    return unwrap(kids[0]) if kids else None


def callee_name(call):
    """Name of a CallExpr's callee through DeclRefExpr, or None."""
    kids = inner(call)
    if not kids:
        return None
    cal = unwrap(kids[0])
    if cal.get("kind") == "DeclRefExpr":
        ref = cal.get("referencedDecl") or {}
        return ref.get("name")
    return None


def lhs_guarded_field(expr, guarded_ids):
    """Descends an assignment LHS to a MemberExpr naming a guarded field."""
    expr = unwrap(expr)
    for _ in range(8):  # bounded: a[i].b.c chains are shallow in practice
        kind = expr.get("kind")
        if kind == "MemberExpr":
            ref = expr.get("referencedMemberDecl")
            if ref in guarded_ids:
                return guarded_ids[ref]
            expr = member_base(expr)
        elif kind == "ArraySubscriptExpr":
            kids = inner(expr)
            expr = unwrap(kids[0]) if kids else None
        elif kind == "CXXOperatorCallExpr":
            kids = inner(expr)  # operator[] — object is the second child
            expr = unwrap(kids[1]) if len(kids) > 1 else None
        else:
            return None
        if not isinstance(expr, dict):
            return None
    return None


def subtree_any(node, pred):
    if pred(node):
        return True
    return any(isinstance(k, dict) and subtree_any(k, pred) for k in inner(node))


def calls_member_named(node, names):
    def pred(n):
        if n.get("kind") not in ("CXXMemberCallExpr",):
            return False
        cal = member_callee(n)
        return cal is not None and cal.get("name") in names
    return subtree_any(node, pred)


def has_capability_call(node):
    def pred(n):
        if n.get("kind") != "CXXMemberCallExpr":
            return False
        cal = member_callee(n)
        if cal is None or cal.get("name") not in CAP_METHODS:
            return False
        base = member_base(cal)
        return base is not None and mentions(base, "Capability")
    return subtree_any(node, pred)


def func_tsa_attrs(fn_node):
    return {k.get("kind") for k in inner(fn_node)
            if k.get("kind") in TSA_FUNC_ATTRS}


# ---------------------------------------------------------------------------
# Rules engine (pure: AST in, findings out — unit-testable without clang)
# ---------------------------------------------------------------------------

class Analyzer:
    """Analyzes one resolved AST. `to_rel` maps a loc file string to a
    repo-relative forward-slash path (or None to ignore the location);
    `get_source` maps such a rel path to its source text lines."""

    def __init__(self, to_rel, get_source):
        self.to_rel = to_rel
        self.get_source = get_source
        self.findings = []
        self.guarded_ids = {}
        self._allows = {}
        self._sources = {}

    # -- infrastructure ----------------------------------------------------

    def _lines(self, rel):
        if rel not in self._sources:
            self._sources[rel] = self.get_source(rel) or []
        return self._sources[rel]

    def _allowed(self, rel, line, rule):
        if rel not in self._allows:
            self._allows[rel] = collect_allows(self._lines(rel))
        return rule in self._allows[rel].get(line, set())

    def report(self, node, rule, detail, dirs=None):
        file, line = node_loc(node)
        rel = self.to_rel(file) if file else None
        if rel is None or line is None:
            return
        if dirs is not None and not rel.startswith(dirs):
            return
        if self._allowed(rel, line, rule):
            return
        self.findings.append(Finding(rel, line, rule, detail))

    def _has_adjacent_comment(self, rel, line):
        lines = self._lines(rel)
        lo = max(0, line - 5)  # same line plus up to four lines above
        for text in lines[lo:line]:
            if "//" in text or "/*" in text or text.lstrip().startswith("*"):
                return True
        return False

    # -- entry point -------------------------------------------------------

    def run(self, tu_node):
        # Pre-pass: guarded fields are usually declared after the methods
        # that write them (private members last), so collect every
        # GuardedByAttr field id before the rules walk.
        self._collect_guarded(tu_node)
        self._walk(tu_node, None, 0)
        return self.findings

    def _collect_guarded(self, node):
        if not isinstance(node, dict):
            return
        if node.get("kind") == "FieldDecl":
            for kid in inner(node):
                if kid.get("kind") in GUARDED_ATTRS:
                    self.guarded_ids[node.get("id")] = node.get("name", "?")
        for kid in inner(node):
            self._collect_guarded(kid)

    # -- walk --------------------------------------------------------------

    def _walk(self, node, fn, loop_depth):
        if not isinstance(node, dict):
            return
        kind = node.get("kind")

        if kind in FUNC_KINDS:
            new_fn = {
                "attrs": func_tsa_attrs(node),
                "has_cap_call": has_capability_call(node),
                "has_reserve": calls_member_named(node, {"reserve"}),
                "name": node.get("name", "?"),
            }
            self._check_virtual(node)
            for kid in inner(node):
                self._walk(kid, new_fn, 0)
            return

        if kind == "FieldDecl":
            self._check_field(node)
        elif kind == "CXXNewExpr":
            self._check_new(node)
        elif kind in ("CXXConstructExpr", "CXXTemporaryObjectExpr"):
            self._check_construct(node)
        elif kind == "CallExpr":
            self._check_call(node)
        elif kind == "CXXMemberCallExpr":
            self._check_member_call(node, fn, loop_depth)
        elif kind == "CXXOperatorCallExpr":
            self._check_operator_call(node)
        elif kind in ("BinaryOperator", "CompoundAssignOperator"):
            self._check_assign(node, fn)
        elif kind == "UnaryOperator" and node.get("opcode") in ("++", "--"):
            self._check_incdec(node, fn)

        if kind in LOOP_KINDS:
            loop_depth += 1
        for kid in inner(node):
            self._walk(kid, fn, loop_depth)

    # -- individual rules --------------------------------------------------

    def _check_field(self, node):
        if mentions(node, "FunctionRef"):
            self.report(node, "functionref-escape",
                        f"field '{node.get('name', '?')}' stores a borrowed "
                        "util::FunctionRef — document the lifetime contract "
                        "with an allow(), or own the callable")

    def _check_virtual(self, node):
        if node.get("kind") == "CXXMethodDecl" and node.get("virtual"):
            self.report(node, "virtual-hot",
                        f"virtual method '{node.get('name', '?')}' on an "
                        "event-dispatch path — per-event virtual dispatch "
                        "defeats inlining; use InlineFn/FunctionRef or CRTP",
                        dirs=VIRTUAL_HOT_DIRS)

    def _check_new(self, node):
        # Non-allocating placement new (operator new(size_t, void*)) is the
        # InlineFn small-buffer mechanism, not an allocation: skip it.
        op = node.get("operatorNewDecl") or {}
        sig = squash((op.get("type") or {}).get("qualType") or "")
        if ",void*" in sig:
            return
        self.report(node, "hot-path-alloc",
                    "new-expression on the per-event path (pool or InlineFn "
                    "instead)", dirs=HOT_PATH_DIRS)

    def _check_construct(self, node):
        if not is_std_function_type(node):
            return
        args = inner(node)
        if not args:
            return  # default construction: empty target, no allocation
        if len(args) == 1:
            arg = args[0]
            if arg.get("valueCategory") == "xvalue" and \
                    is_std_function_type(unwrap(arg)):
                return  # move construction: steals, never allocates
        self.report(node, "hot-path-alloc",
                    "std::function construction can heap-allocate the "
                    "target (use sim::InlineFn / util::FunctionRef)",
                    dirs=HOT_PATH_DIRS)

    def _check_call(self, node):
        name = callee_name(node)
        if name in ("make_unique", "make_shared"):
            self.report(node, "hot-path-alloc",
                        f"std::{name} on the per-event path",
                        dirs=HOT_PATH_DIRS)

    def _check_member_call(self, node, fn, loop_depth):
        cal = member_callee(node)
        if cal is None:
            return
        name = cal.get("name")
        base = member_base(cal)
        if base is None:
            return

        if mentions(base, "atomic"):
            if name in ATOMIC_ORDERED_OPS:
                if any(k.get("kind") == "CXXDefaultArgExpr"
                       for k in inner(node)[1:]):
                    self.report(cal, "atomic-implicit-order",
                                f"atomic {name}() relies on the defaulted "
                                "memory_order (silent seq_cst) — name the "
                                "ordering explicitly",
                                dirs=ATOMIC_AUDIT_DIRS)
                else:
                    self._check_rationale(cal, name)
            elif name and name.startswith("operator"):
                self.report(cal, "atomic-implicit-order",
                            f"atomic {name} is seq_cst by definition — use "
                            "load()/store() with an explicit memory_order",
                            dirs=ATOMIC_AUDIT_DIRS)
            return

        if name in ("push_back", "emplace_back") and loop_depth > 0 \
                and fn is not None and not fn["has_reserve"] \
                and base.get("kind") == "DeclRefExpr" \
                and mentions(base, "vector"):
            self.report(cal, "hot-path-growth",
                        f"{name} on a local vector inside a loop with no "
                        "reserve() in the function — unreserved growth "
                        "reallocates on the hot path",
                        dirs=HOT_PATH_DIRS)

    def _check_rationale(self, cal, name):
        file, line = node_loc(cal)
        rel = self.to_rel(file) if file else None
        if rel is None or line is None or not rel.startswith(ATOMIC_AUDIT_DIRS):
            return
        if self._has_adjacent_comment(rel, line):
            return
        if self._allowed(rel, line, "atomic-rationale"):
            return
        self.findings.append(Finding(
            rel, line, "atomic-rationale",
            f"atomic {name}() without an adjacent rationale comment — state "
            "which release/acquire (or why relaxed is enough) next to the op"))

    def _check_operator_call(self, node):
        kids = inner(node)
        if len(kids) < 2:
            return
        obj = unwrap(kids[1])
        if mentions(obj, "atomic"):
            self.report(node, "atomic-implicit-order",
                        "operator-form atomic access is seq_cst by "
                        "definition — use load()/store()/fetch_*() with an "
                        "explicit memory_order", dirs=ATOMIC_AUDIT_DIRS)

    def _guarded_write(self, node, lhs, fn):
        field = lhs_guarded_field(lhs, self.guarded_ids)
        if field is None or fn is None:
            return
        if fn["attrs"] or fn["has_cap_call"]:
            return
        self.report(node, "shard-ownership",
                    f"write to guarded field '{field}' from '{fn['name']}', "
                    "which neither declares a capability (CNI_REQUIRES/"
                    "CNI_ACQUIRE) nor asserts one in its body")

    def _check_assign(self, node, fn):
        if node.get("kind") == "BinaryOperator" and node.get("opcode") != "=":
            return
        kids = inner(node)
        if kids:
            self._guarded_write(node, kids[0], fn)

    def _check_incdec(self, node, fn):
        kids = inner(node)
        if kids:
            self._guarded_write(node, kids[0], fn)


# ---------------------------------------------------------------------------
# Driving clang
# ---------------------------------------------------------------------------

def find_clang():
    env = os.environ.get("CNI_CLANG")
    if env and shutil.which(env):
        return env
    for ver in range(21, 13, -1):
        cand = f"clang++-{ver}"
        if shutil.which(cand):
            return cand
    for cand in ("clang++", "clang"):
        if shutil.which(cand):
            return cand
    return None


def find_compile_db(root, build_dir):
    candidates = []
    if build_dir:
        candidates.append(os.path.join(build_dir, "compile_commands.json"))
    else:
        for name in sorted(os.listdir(root)):
            p = os.path.join(root, name, "compile_commands.json")
            if os.path.isfile(p):
                candidates.append(p)
    for p in candidates:
        if os.path.isfile(p):
            return p
    return None


def ast_command(clang, entry):
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        args = shlex.split(entry["command"])
    out = [clang]
    i = 1
    while i < len(args):
        a = args[i]
        if a in ("-o", "-MF", "-MT", "-MQ"):
            i += 2
            continue
        if a in ("-c", "-MD", "-MMD") or a.startswith("-o"):
            i += 1
            continue
        out.append(a)
        i += 1
    out += ["-fsyntax-only", "-Wno-everything", "-Xclang", "-ast-dump=json"]
    return out


def dump_ast(clang, entry):
    cmd = ast_command(clang, entry)
    proc = subprocess.run(cmd, cwd=entry.get("directory", "."),
                          capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        raise RuntimeError(
            f"clang failed on {entry['file']}: "
            f"{proc.stderr.strip().splitlines()[:3]}")
    return json.loads(proc.stdout)


def make_to_rel(root):
    root = os.path.abspath(root)

    def to_rel(file):
        if not file:
            return None
        path = file if os.path.isabs(file) else os.path.join(root, file)
        path = os.path.normpath(path)
        if not path.startswith(root + os.sep):
            return None
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        return rel if rel.startswith("src/") else None
    return to_rel


def make_get_source(root):
    def get_source(rel):
        try:
            with open(os.path.join(root, rel), encoding="utf-8",
                      errors="replace") as f:
                return f.read().splitlines()
        except OSError:
            return []
    return get_source


def analyze_tu(clang, entry, root):
    ast = dump_ast(clang, entry)
    resolve_locations(ast)
    analyzer = Analyzer(make_to_rel(root), make_get_source(root))
    return analyzer.run(ast)


def scan_tree(root, build_dir, jobs):
    clang = find_clang()
    if clang is None:
        print("analyze_cni: SKIP — no clang available (the analyzer needs "
              "clang's JSON AST dump; the CI analyze job enforces this gate)")
        return 0
    db_path = find_compile_db(root, build_dir)
    if db_path is None:
        print("analyze_cni: SKIP — no compile_commands.json found (configure "
              "with CMake first, or pass --build-dir)")
        return 0
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)

    src_root = os.path.join(os.path.abspath(root), "src") + os.sep
    entries, seen = [], set()
    for entry in db:
        path = os.path.normpath(os.path.join(entry.get("directory", "."),
                                             entry["file"]))
        if path.startswith(src_root) and path not in seen:
            seen.add(path)
            entries.append(entry)
    if not entries:
        print("analyze_cni: SKIP — compile database has no src/ entries")
        return 0

    findings, errors = {}, []
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = {pool.submit(analyze_tu, clang, e, root): e for e in entries}
        for fut in concurrent.futures.as_completed(futures):
            try:
                for f in fut.result():
                    findings[f.key()] = f
            except (RuntimeError, json.JSONDecodeError) as e:
                errors.append(str(e))

    for err in errors:
        print(f"analyze_cni: ERROR {err}", file=sys.stderr)
    for f in sorted(findings.values(), key=Finding.key):
        print(f)
    if findings or errors:
        print(f"analyze_cni: {len(findings)} finding(s), {len(errors)} "
              f"error(s) over {len(entries)} TU(s)")
        return 1
    print(f"analyze_cni: OK ({len(entries)} TU(s), {len(db)} db entries)")
    return 0


# ---------------------------------------------------------------------------
# Self-test tier 1: synthetic ASTs (no clang needed)
#
# Each case hand-writes the minimal JSON clang would emit, so the rules
# engine is exercised on every platform — including the differential
# location decoding, which is the subtlest part of the loader.
# ---------------------------------------------------------------------------

def _syn_loc(file=None, line=None):
    loc = {"offset": 0, "col": 1, "tokLen": 1}
    if file is not None:
        loc["file"] = file
    if line is not None:
        loc["line"] = line
    return loc


def _syn_tu(*decls):
    return {"kind": "TranslationUnitDecl", "inner": list(decls)}


def _syn_fn(name, body_stmts, attrs=(), loc=None, kind="FunctionDecl",
            virtual=False):
    node = {"kind": kind, "name": name, "loc": loc or {},
            "inner": [{"kind": a} for a in attrs] +
                     [{"kind": "CompoundStmt", "inner": list(body_stmts)}]}
    if virtual:
        node["virtual"] = True
    return node


def _syn_atomic_call(op, line, explicit=True, file=None):
    args = [] if explicit else [{"kind": "CXXDefaultArgExpr"}]
    return {"kind": "CXXMemberCallExpr", "inner": [
        {"kind": "MemberExpr", "name": op, "loc": _syn_loc(file, line),
         "inner": [{"kind": "DeclRefExpr",
                    "type": {"qualType": "std::atomic<unsigned long>"}}]},
    ] + args}


def run_synthetic_tests():
    failures = []
    src = {}

    def check(name, ast, expect, sources=None):
        analyzer = Analyzer(
            lambda f: f if f and f.startswith("src/") else None,
            lambda rel: (sources or src).get(rel, [""] * 200))
        resolve_locations(ast)
        got = sorted((f.rule, f.path, f.line) for f in analyzer.run(ast))
        want = sorted(expect)
        if got != want:
            failures.append(f"{name}: expected {want}, got {got}")

    # Differential locations: the second node inherits file and line.
    ast = _syn_tu(_syn_fn("f", [
        {"kind": "CXXNewExpr", "loc": _syn_loc("src/sim/a.cpp", 10)},
        {"kind": "CXXNewExpr", "loc": _syn_loc()},  # inherits a.cpp:10
    ]))
    check("differential-loc", ast,
          [("hot-path-alloc", "src/sim/a.cpp", 10),
           ("hot-path-alloc", "src/sim/a.cpp", 10)])

    # Placement new (operator new(size_t, void*)) is exempt.
    ast = _syn_tu(_syn_fn("f", [
        {"kind": "CXXNewExpr", "loc": _syn_loc("src/sim/a.cpp", 3),
         "operatorNewDecl": {"type": {"qualType": "void *(unsigned long, void *)"}}},
    ]))
    check("placement-new-exempt", ast, [])

    # Hot-dir scoping: new in src/apps is fine.
    ast = _syn_tu(_syn_fn("f", [
        {"kind": "CXXNewExpr", "loc": _syn_loc("src/apps/a.cpp", 3)},
    ]))
    check("hot-dir-scope", ast, [])

    # Suppression via cni-lint allow on the same line.
    allowed_src = {"src/sim/a.cpp": [""] * 4 +
                   ["x = new T;  // cni-lint: allow(hot-path-alloc): setup"]}
    ast = _syn_tu(_syn_fn("f", [
        {"kind": "CXXNewExpr", "loc": _syn_loc("src/sim/a.cpp", 5)},
    ]))
    check("allow-suppresses", ast, [], sources=allowed_src)

    # std::function: conversion flagged, move exempt, default exempt.
    ast = _syn_tu(_syn_fn("f", [
        {"kind": "CXXConstructExpr", "loc": _syn_loc("src/nic/b.cpp", 7),
         "type": {"qualType": "Handler",
                  "desugaredQualType": "std::function<void (int)>"},
         "inner": [{"kind": "LambdaExpr", "type": {"qualType": "(lambda)"}}]},
        {"kind": "CXXConstructExpr", "loc": _syn_loc("src/nic/b.cpp", 8),
         "type": {"qualType": "std::function<void (int)>"},
         "inner": [{"kind": "DeclRefExpr", "valueCategory": "xvalue",
                    "type": {"qualType": "std::function<void (int)>"}}]},
        {"kind": "CXXConstructExpr", "loc": _syn_loc("src/nic/b.cpp", 9),
         "type": {"qualType": "std::function<void (int)>"}, "inner": []},
    ]))
    check("std-function", ast, [("hot-path-alloc", "src/nic/b.cpp", 7)])

    # make_unique flagged in hot dirs.
    ast = _syn_tu(_syn_fn("f", [
        {"kind": "CallExpr", "loc": _syn_loc("src/obs/c.cpp", 4), "inner": [
            {"kind": "ImplicitCastExpr", "inner": [
                {"kind": "DeclRefExpr",
                 "referencedDecl": {"name": "make_unique"}}]}]},
    ]))
    check("make-unique", ast, [("hot-path-alloc", "src/obs/c.cpp", 4)])

    # Atomics: defaulted order flagged; explicit order with comment is clean;
    # explicit order without comment needs a rationale.
    commented = {"src/sim/d.cpp":
                 ["" for _ in range(30)]}
    commented["src/sim/d.cpp"][18] = "  // release: pairs with the acquire"
    ast = _syn_tu(_syn_fn("f", [
        _syn_atomic_call("load", 10, explicit=False, file="src/sim/d.cpp"),
        _syn_atomic_call("store", 20, explicit=True),   # comment on line 19
        _syn_atomic_call("fetch_add", 28, explicit=True),  # no comment
    ]))
    check("atomics", ast,
          [("atomic-implicit-order", "src/sim/d.cpp", 10),
           ("atomic-rationale", "src/sim/d.cpp", 28)], sources=commented)

    # Operator-form atomic access.
    ast = _syn_tu(_syn_fn("f", [
        {"kind": "CXXOperatorCallExpr", "loc": _syn_loc("src/atm/e.cpp", 6),
         "inner": [{"kind": "ImplicitCastExpr", "inner": [
                       {"kind": "DeclRefExpr",
                        "referencedDecl": {"name": "operator="}}]},
                   {"kind": "DeclRefExpr",
                    "type": {"qualType": "std::atomic<int>"}}]},
    ]))
    check("atomic-operator", ast,
          [("atomic-implicit-order", "src/atm/e.cpp", 6)])

    # shard-ownership: a guarded write from an unannotated function fires;
    # with a RequiresCapabilityAttr, or an assert in the body, it is clean.
    field = {"kind": "FieldDecl", "id": "0x1", "name": "cmd_",
             "loc": _syn_loc("src/sim/g.cpp", 2),
             "inner": [{"kind": "GuardedByAttr"}]}
    write = {"kind": "BinaryOperator", "opcode": "=",
             "loc": _syn_loc("src/sim/g.cpp", 12),
             "inner": [{"kind": "MemberExpr", "name": "cmd_",
                        "referencedMemberDecl": "0x1"},
                       {"kind": "IntegerLiteral"}]}
    cap_assert = {"kind": "CXXMemberCallExpr", "inner": [
        {"kind": "MemberExpr", "name": "assert_held",
         "inner": [{"kind": "DeclRefExpr",
                    "type": {"qualType": "const cni::util::Capability"}}]}]}
    # Field declared AFTER the writing function (private-members-last
    # style): the guarded pre-pass must still see it.
    check("guarded-write-bad",
          _syn_tu(_syn_fn("rogue", [dict(write)]), field),
          [("shard-ownership", "src/sim/g.cpp", 12)])
    check("guarded-write-attr",
          _syn_tu(field, _syn_fn("ok", [dict(write)],
                                 attrs=("RequiresCapabilityAttr",))), [])
    check("guarded-write-assert",
          _syn_tu(field, _syn_fn("ok2", [cap_assert, dict(write)])), [])

    # functionref-escape on fields; virtual-hot in src/sim only.
    ast = _syn_tu(
        {"kind": "FieldDecl", "name": "hook",
         "loc": _syn_loc("src/sim/h.cpp", 3),
         "type": {"qualType": "util::FunctionRef<void ()>"}},
        _syn_fn("dispatch", [], loc=_syn_loc("src/sim/h.cpp", 9),
                kind="CXXMethodDecl", virtual=True),
        _syn_fn("fine", [], loc=_syn_loc("src/nic/h.cpp", 9),
                kind="CXXMethodDecl", virtual=True))
    check("escape-and-virtual", ast,
          [("functionref-escape", "src/sim/h.cpp", 3),
           ("virtual-hot", "src/sim/h.cpp", 9)])

    # hot-path-growth: unreserved loop growth on a local vector fires; a
    # reserve() anywhere in the function clears it.
    grow = {"kind": "ForStmt", "inner": [
        {"kind": "CXXMemberCallExpr", "inner": [
            {"kind": "MemberExpr", "name": "push_back",
             "loc": _syn_loc("src/dsm/i.cpp", 22),
             "inner": [{"kind": "DeclRefExpr",
                        "type": {"qualType": "std::vector<int>"}}]}]}]}
    reserve = {"kind": "CXXMemberCallExpr", "inner": [
        {"kind": "MemberExpr", "name": "reserve",
         "inner": [{"kind": "DeclRefExpr",
                    "type": {"qualType": "std::vector<int>"}}]}]}
    check("growth-bad", _syn_tu(_syn_fn("f", [dict(grow)])),
          [("hot-path-growth", "src/dsm/i.cpp", 22)])
    check("growth-reserved", _syn_tu(_syn_fn("f", [reserve, dict(grow)])), [])

    if failures:
        for f in failures:
            print(f"synthetic self-test FAIL: {f}")
        return False
    print("analyze_cni synthetic self-test: OK (14 cases)")
    return True


# ---------------------------------------------------------------------------
# Self-test tier 2: fixture tree under real clang
# ---------------------------------------------------------------------------

def fixture_expectations(fixture_root):
    expected = set()
    for dirpath, _dirs, files in os.walk(os.path.join(fixture_root, "src")):
        for name in sorted(files):
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, fixture_root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                for m in EXPECT_RE.finditer(f.read()):
                    expected.add((rel, m.group(1)))
    return expected


def run_fixture_test(repo_root, fixture_root):
    clang = find_clang()
    if clang is None:
        print("analyze_cni fixture self-test: SKIP — clang not available "
              "(synthetic tier already ran; CI runs this tier)")
        return True
    got = set()
    all_findings = []

    files = []
    for dirpath, _dirs, names in os.walk(os.path.join(fixture_root, "src")):
        for name in sorted(names):
            if os.path.splitext(name)[1] in (".hpp", ".cpp", ".h", ".cc"):
                files.append(os.path.join(dirpath, name))
    if not files:
        print(f"analyze_cni: fixture tree not found at {fixture_root}")
        return False

    with tempfile.TemporaryDirectory() as tmp:
        for path in files:
            rel = os.path.relpath(path, fixture_root).replace(os.sep, "/")
            if path.endswith((".hpp", ".h")):
                tu = os.path.join(tmp, "tu.cpp")
                with open(tu, "w", encoding="utf-8") as f:
                    f.write(f'#include "{rel[len("src/"):]}"\n')
            else:
                tu = path
            entry = {"file": tu, "directory": fixture_root,
                     "arguments": [clang, "-std=c++20",
                                   "-I", os.path.join(fixture_root, "src"),
                                   "-I", os.path.join(repo_root, "src"), tu]}
            try:
                ast = dump_ast(clang, entry)
            except RuntimeError as e:
                print(f"fixture self-test FAIL: {e}")
                return False
            resolve_locations(ast)
            analyzer = Analyzer(make_to_rel(fixture_root),
                                make_get_source(fixture_root))
            for f in analyzer.run(ast):
                got.add((f.path, f.rule))
                all_findings.append(f)

    expected = fixture_expectations(fixture_root)
    ok = True
    for miss in sorted(expected - got):
        print(f"fixture self-test FAIL: expected finding did not fire: {miss}")
        ok = False
    for extra in sorted(got - expected):
        print(f"fixture self-test FAIL: unexpected finding: {extra}")
        for f in all_findings:
            if (f.path, f.rule) == extra:
                print(f"    {f}")
        ok = False
    if ok:
        print(f"analyze_cni fixture self-test: OK ({len(expected)} expected "
              f"findings under {os.path.basename(clang)})")
    return ok


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--build-dir", default=None,
                    help="build dir containing compile_commands.json "
                         "(default: any <root>/*/compile_commands.json)")
    ap.add_argument("--jobs", type=int, default=min(4, os.cpu_count() or 1),
                    help="parallel clang invocations (ASTs are large)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the synthetic-AST unit tests, then the fixture "
                         "tree when clang is available")
    args = ap.parse_args()

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root) if args.root else os.path.dirname(script_dir)

    if args.self_test:
        ok = run_synthetic_tests()
        ok = run_fixture_test(
            root, os.path.join(root, "tests", "analyze_fixtures")) and ok
        sys.exit(0 if ok else 1)

    sys.exit(scan_tree(root, args.build_dir, args.jobs))


if __name__ == "__main__":
    main()
