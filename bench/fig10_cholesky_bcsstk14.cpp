// Figure 10: Cholesky speedup and network cache hit ratio, matrix bcsstk14.
//
// Paper: fine-grained; modest speedups; receive caching pays off because
// "pages tend to move from the releaser to the acquirer".
// Substitution: synthetic banded SPD stand-in for bcsstk14 (see DESIGN.md).
#include "apps/cholesky.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "fig10_cholesky_bcsstk14");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("figure", "fig10");
  reporter.add_config("app", "cholesky");
  apps::CholeskyConfig cfg = apps::CholeskyConfig::bcsstk14();
  if (cni::bench::fast_mode()) cfg = apps::CholeskyConfig{256, 16, 2, 3, 1024, 2000};
  const auto pts = bench::speedup_sweep(apps::run_cholesky, cfg);
  bench::print_speedup_series("Figure 10: Cholesky bcsstk14 speedup / hit ratio", pts);
  bench::report_speedup_series(reporter, pts);
  return reporter.finish() ? 0 : 1;
}
