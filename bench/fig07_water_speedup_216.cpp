// Figure 7: Water speedup and network cache hit ratio, 216 molecules.
#include "apps/water.hpp"
#include "bench_common.hpp"

int main() {
  using namespace cni;
  apps::WaterConfig cfg{216, 2};
  const auto pts = bench::speedup_sweep(apps::run_water, cfg);
  bench::print_speedup_series("Figure 7: Water 216 molecules speedup / hit ratio", pts);
  return 0;
}
