// Figure 12: page-size sensitivity, 8-processor Cholesky, bcsstk14.
//
// Paper: "very sensitive to the size of the shared memory page because of
// large page migration overhead... reduced a lot in CNI due to transmit and
// receive caching" (x: 2..8 KB).
#include "apps/cholesky.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "fig12_cholesky_pagesize");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("figure", "fig12");
  reporter.add_config("app", "cholesky");
  apps::CholeskyConfig cfg = apps::CholeskyConfig::bcsstk14();
  if (cni::bench::fast_mode()) cfg = apps::CholeskyConfig{256, 16, 2, 3, 1024, 2000};
  bench::print_pagesize_series("Figure 12: Cholesky page-size sensitivity (p=8)",
                               apps::run_cholesky, cfg, 8, {2048, 4096, 8192}, &reporter);
  return reporter.finish() ? 0 : 1;
}
