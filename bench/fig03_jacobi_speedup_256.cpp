// Figure 3: Jacobi speedup and network cache hit ratio, 256x256 matrix.
//
// Paper: intermediate input size — higher hit ratios and better scaling
// than the 128x128 run (Figure 2), still network-bound at 32 processors.
#include "apps/jacobi.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "fig03_jacobi_speedup_256");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("figure", "fig03");
  reporter.add_config("app", "jacobi");
  apps::JacobiConfig cfg{256, bench::fast_mode() ? 6u : 40u, 16};
  const auto pts = bench::speedup_sweep(apps::run_jacobi, cfg);
  bench::print_speedup_series("Figure 3: Jacobi 256x256 speedup / hit ratio", pts);
  bench::report_speedup_series(reporter, pts);
  return reporter.finish() ? 0 : 1;
}
