// Ablation (beyond the paper): isolate the contribution of each CNI
// mechanism. The paper presents three techniques as a package; this bench
// switches the Message Cache and the Application Interrupt Handlers off
// independently (Application Device Channels are the board substrate and
// stay on) and compares against the full CNI and the standard NIC.
#include "apps/water.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "abl_mechanisms");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("table", "ablation");
  reporter.add_config("app", "water");
  apps::WaterConfig cfg{bench::fast_mode() ? 64u : 216u, 2};
  const std::uint32_t procs = 8;

  struct Variant {
    const char* name;
    cluster::BoardKind kind;
    bool mcache;
    bool aih;
  };
  const Variant variants[] = {
      {"standard NIC", cluster::BoardKind::kStandard, false, false},
      {"ADC only", cluster::BoardKind::kCni, false, false},
      {"ADC + Message Cache", cluster::BoardKind::kCni, true, false},
      {"ADC + AIH", cluster::BoardKind::kCni, false, true},
      {"full CNI", cluster::BoardKind::kCni, true, true},
  };

  util::Table t("Ablation: mechanism contributions (Water 216, p=8)");
  t.set_header({"configuration", "time (ms)", "vs standard (%)", "hit ratio (%)",
                "host interrupts"});
  double base = 0;
  for (const Variant& v : variants) {
    cluster::SimParams params = apps::make_params(v.kind, procs);
    params.cni.enable_message_cache = v.mcache;
    params.cni.enable_aih = v.aih;
    const apps::RunResult r = apps::run_water(params, cfg, nullptr);
    const double ms = static_cast<double>(r.elapsed) / 1e9;
    if (base == 0) base = ms;
    t.add_row(v.name,
              {ms, 100.0 * (base - ms) / base,
               v.kind == cluster::BoardKind::kCni && v.mcache ? r.hit_ratio_pct : 0.0,
               static_cast<double>(r.totals.host_interrupts)},
              2);
    if (reporter.active()) {
      reporter.add_point(bench::run_point(
          v.name, {{"variant", v.name}},
          {{"elapsed_ms", ms}, {"improvement_pct", 100.0 * (base - ms) / base}}, r));
    }
  }
  t.print();
  return reporter.finish() ? 0 : 1;
}
