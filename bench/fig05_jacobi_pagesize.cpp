// Figure 5: page-size sensitivity, 8-processor Jacobi, 1024x1024 matrix.
//
// Paper: "the CNI network interface is less sensitive to page size
// variations because of the lower cost of page transfers" (x: 2..16 KB).
#include "apps/jacobi.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "fig05_jacobi_pagesize");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("figure", "fig05");
  reporter.add_config("app", "jacobi");
  apps::JacobiConfig cfg = bench::fast_mode() ? apps::JacobiConfig{256, 5, 16}
                                              : apps::JacobiConfig{1024, 20, 16};
  bench::print_pagesize_series("Figure 5: Jacobi page-size sensitivity (p=8)",
                               apps::run_jacobi, cfg, 8,
                               {2048, 4096, 8192, 16384}, &reporter);
  return reporter.finish() ? 0 : 1;
}
