// Instrumented probe variant: built like the rest of the tree, emit macros
// live. See obs_probe.hpp.
#include "obs_probe.hpp"

namespace cni::bench {

#define PROBE_STEP_NAME probe_step_on
#include "obs_probe_body.inc"
#undef PROBE_STEP_NAME

}  // namespace cni::bench
