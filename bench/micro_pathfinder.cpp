// Ablation: PATHFINDER classification cost (host-side wall time of the
// model, plus the modelled comparison counts that drive simulated time).
#include <benchmark/benchmark.h>

#include <cstring>

#include "core/pathfinder.hpp"

namespace {

using namespace cni::core;

std::vector<std::byte> header_of(std::uint16_t type) {
  std::vector<std::byte> h(24, std::byte{0});
  std::memcpy(h.data(), &type, 2);
  return h;
}

Pattern type_pattern(std::uint16_t type) {
  Pattern p;
  p.comparisons.push_back(Comparison{0, 0xFFFF, type});
  p.target = type;
  return p;
}

void BM_ClassifyFirstMatch(benchmark::State& state) {
  Pathfinder pf;
  const auto n = static_cast<std::uint16_t>(state.range(0));
  for (std::uint16_t i = 0; i < n; ++i) pf.add_pattern(type_pattern(0x200 + i));
  const auto h = header_of(0x200);
  std::uint32_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf.classify(h, FlowKey{0, 1, seq++}, 1));
  }
}
BENCHMARK(BM_ClassifyFirstMatch)->Arg(1)->Arg(8)->Arg(32);

void BM_ClassifyLastMatch(benchmark::State& state) {
  Pathfinder pf;
  const auto n = static_cast<std::uint16_t>(state.range(0));
  for (std::uint16_t i = 0; i < n; ++i) pf.add_pattern(type_pattern(0x200 + i));
  const auto h = header_of(0x200 + n - 1);
  std::uint32_t seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf.classify(h, FlowKey{0, 1, seq++}, 1));
  }
}
BENCHMARK(BM_ClassifyLastMatch)->Arg(8)->Arg(32);

void BM_ClassifyFragmentedPage(benchmark::State& state) {
  Pathfinder pf;
  for (std::uint16_t i = 0; i < 10; ++i) pf.add_pattern(type_pattern(0x200 + i));
  const auto h = header_of(0x205);
  std::uint32_t seq = 0;
  for (auto _ : state) {
    // An 86-cell 4 KB page: one full match plus dynamic-pattern fragments.
    benchmark::DoNotOptimize(pf.classify(h, FlowKey{0, 1, seq++}, 86));
  }
}
BENCHMARK(BM_ClassifyFragmentedPage);

}  // namespace
