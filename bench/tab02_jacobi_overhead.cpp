// Table 2: overhead breakdown for 8-processor Jacobi, 1024x1024 matrix,
// 2 KB shared-memory pages.
//
// Paper: CNI 0.054/0.086/1.164 vs standard 0.063/0.099/1.165 (10^9 cycles):
// equal computation, lower synch overhead and substantially less delay.
#include "apps/jacobi.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "tab02_jacobi_overhead");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("table", "tab02");
  reporter.add_config("app", "jacobi");
  apps::JacobiConfig cfg = bench::fast_mode() ? apps::JacobiConfig{256, 5, 16}
                                              : apps::JacobiConfig{1024, 20, 16};
  const auto cni = apps::run_jacobi(
      apps::make_params(cluster::BoardKind::kCni, 8, 2048), cfg, nullptr);
  const auto std_ = apps::run_jacobi(
      apps::make_params(cluster::BoardKind::kStandard, 8, 2048), cfg, nullptr);
  bench::print_overhead_table(
      "Table 2: overhead, 8-processor Jacobi 1024x1024 (2 KB pages)", cni, std_);
  bench::report_overhead_table(reporter, cni, std_);
  return reporter.finish() ? 0 : 1;
}
