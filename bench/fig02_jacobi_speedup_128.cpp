// Figure 2: Jacobi speedup and network cache hit ratio, 128x128 matrix.
//
// Paper: "Both the configurations show mediocre performance for a small
// matrix size (128x128) and a large number of processors (32) but the level
// of degradation is less in the CNI" — hit ratios 96.5..99.5 %.
#include "apps/jacobi.hpp"
#include "bench_common.hpp"

int main() {
  using namespace cni;
  apps::JacobiConfig cfg{128, bench::fast_mode() ? 6u : 40u, 16};
  const auto pts = bench::speedup_sweep(apps::run_jacobi, cfg);
  bench::print_speedup_series("Figure 2: Jacobi 128x128 speedup / hit ratio", pts);
  return 0;
}
