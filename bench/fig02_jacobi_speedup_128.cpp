// Figure 2: Jacobi speedup and network cache hit ratio, 128x128 matrix.
//
// Paper: "Both the configurations show mediocre performance for a small
// matrix size (128x128) and a large number of processors (32) but the level
// of degradation is less in the CNI" — hit ratios 96.5..99.5 %.
#include "apps/jacobi.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "fig02_jacobi_speedup_128");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("figure", "fig02");
  reporter.add_config("app", "jacobi");
  apps::JacobiConfig cfg{128, bench::fast_mode() ? 6u : 40u, 16};
  const auto pts = bench::speedup_sweep(apps::run_jacobi, cfg);
  bench::print_speedup_series("Figure 2: Jacobi 128x128 speedup / hit ratio", pts);
  bench::report_speedup_series(reporter, pts);
  return reporter.finish() ? 0 : 1;
}
