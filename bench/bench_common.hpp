// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure from the paper's §3 and
// prints the same rows/series. `CNI_BENCH_FAST=1` (or --fast) shrinks the
// sweep for smoke runs; the default matches paper scale.
//
// Sweeps run their points on a thread pool (`CNI_BENCH_JOBS`, defaulting to
// hardware_concurrency): every (procs, board-kind, page-size) point is an
// independent simulation with its own cluster, each point's result is
// bit-identical to a sequential run, and results land in per-point slots so
// the printed ordering never depends on completion order.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "apps/runner.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"

namespace cni::bench {

inline bool fast_mode() {
  const char* env = std::getenv("CNI_BENCH_FAST");
  return env != nullptr && env[0] != '0';
}

/// Processor counts along the paper's x-axis (figures run 1..32).
inline std::vector<std::uint32_t> processor_sweep() {
  if (fast_mode()) return {1, 2, 4, 8};
  return {1, 2, 4, 8, 16, 24, 32};
}

// ---------------------------------------------------------------------------
// Run-report plumbing. Every figure/table binary owns an obs::Reporter; these
// helpers turn finished runs into ReportPoints carrying the figure numbers,
// the legacy NodeStats accounts (for the metrics-vs-legacy diff in
// scripts/validate_report.py) and the per-node metrics/trace snapshot.
// ---------------------------------------------------------------------------

/// Copies the legacy NodeStats accounts into the point, one entry per
/// NodeStats field, in fields() order.
inline void fill_legacy(obs::ReportPoint& pt, const sim::NodeStats& totals) {
  for (const sim::NodeStats::Field& f : sim::NodeStats::fields()) {
    pt.legacy.emplace_back(f.name, totals.*f.member);
  }
}

/// Builds one ReportPoint from a finished run. Always records elapsed
/// simulated time and the hit ratio next to the caller's figure values.
inline obs::ReportPoint run_point(
    std::string label, std::vector<std::pair<std::string, std::string>> config,
    std::vector<std::pair<std::string, double>> values, const apps::RunResult& r) {
  obs::ReportPoint pt;
  pt.label = std::move(label);
  pt.config = std::move(config);
  pt.values = std::move(values);
  pt.values.emplace_back("elapsed_ps", static_cast<double>(r.elapsed));
  pt.values.emplace_back("hit_ratio_pct", r.hit_ratio_pct);
  fill_legacy(pt, r.totals);
  pt.snapshot = r.snapshot;
  return pt;
}

/// One (CNI, standard) pair of runs at a processor count.
struct SpeedupPoint {
  std::uint32_t procs = 0;
  apps::RunResult cni;
  apps::RunResult standard;
};

/// Prints the paper's speedup-figure series: CNI-speedup, Standard-speedup
/// and the CNI network cache hit ratio, with T(1) of each configuration as
/// its own baseline.
inline void print_speedup_series(const std::string& title,
                                 const std::vector<SpeedupPoint>& points) {
  util::Table t(title);
  t.set_header({"procs", "CNI-speedup", "Standard-speedup", "NetCacheHitRatio(%)"});
  const double cni1 = static_cast<double>(points.front().cni.elapsed);
  const double std1 = static_cast<double>(points.front().standard.elapsed);
  for (const SpeedupPoint& pt : points) {
    t.add_row(std::to_string(pt.procs),
              {cni1 / static_cast<double>(pt.cni.elapsed),
               std1 / static_cast<double>(pt.standard.elapsed),
               pt.cni.hit_ratio_pct},
              2);
  }
  t.print();
}

/// Reports a speedup sweep: one ReportPoint per (procs, board kind) run,
/// carrying the same speedup numbers the printed series shows.
inline void report_speedup_series(obs::Reporter& rep,
                                  const std::vector<SpeedupPoint>& points) {
  if (!rep.active() || points.empty()) return;
  const double cni1 = static_cast<double>(points.front().cni.elapsed);
  const double std1 = static_cast<double>(points.front().standard.elapsed);
  for (const SpeedupPoint& pt : points) {
    const std::string procs = std::to_string(pt.procs);
    rep.add_point(run_point(
        "procs=" + procs + " system=cni",
        {{"procs", procs}, {"system", "cni"}},
        {{"speedup", cni1 / static_cast<double>(pt.cni.elapsed)}}, pt.cni));
    rep.add_point(run_point(
        "procs=" + procs + " system=standard",
        {{"procs", procs}, {"system", "standard"}},
        {{"speedup", std1 / static_cast<double>(pt.standard.elapsed)}}, pt.standard));
  }
}

/// Runs one app config over the processor sweep on both board kinds. The
/// 2 × |sweep| simulations are independent, so they run as parallel jobs.
template <typename Config, typename RunFn>
std::vector<SpeedupPoint> speedup_sweep(RunFn run, const Config& cfg,
                                        std::uint64_t page_size = 4096) {
  const std::vector<std::uint32_t> procs = processor_sweep();
  std::vector<SpeedupPoint> out(procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) out[i].procs = procs[i];
  apps::parallel_indexed(procs.size() * 2, [&](std::size_t job) {
    const std::size_t i = job / 2;
    const bool is_cni = (job % 2) == 0;
    const auto kind = is_cni ? cluster::BoardKind::kCni : cluster::BoardKind::kStandard;
    apps::RunResult r = run(apps::make_params(kind, procs[i], page_size), cfg, nullptr);
    (is_cni ? out[i].cni : out[i].standard) = std::move(r);
  });
  return out;
}

/// Page-size sensitivity at a fixed processor count: speedup(p) against the
/// same-page-size single-processor run, per configuration (Figures 5/9/12).
template <typename Config, typename RunFn>
void print_pagesize_series(const std::string& title, RunFn run, const Config& cfg,
                           std::uint32_t procs,
                           const std::vector<std::uint64_t>& page_sizes,
                           obs::Reporter* rep = nullptr) {
  // Four independent runs per page size: {CNI, standard} × {1, procs}.
  std::vector<apps::RunResult> results(page_sizes.size() * 4);
  apps::parallel_indexed(results.size(), [&](std::size_t job) {
    const std::uint64_t ps = page_sizes[job / 4];
    const auto kind =
        (job % 4) < 2 ? cluster::BoardKind::kCni : cluster::BoardKind::kStandard;
    const std::uint32_t p = (job % 2) == 0 ? 1 : procs;
    results[job] = run(apps::make_params(kind, p, ps), cfg, nullptr);
  });
  util::Table t(title);
  t.set_header({"page bytes", "CNI speedup", "Standard speedup", "HitRatio(%)"});
  for (std::size_t i = 0; i < page_sizes.size(); ++i) {
    const apps::RunResult& cni1 = results[i * 4 + 0];
    const apps::RunResult& cnip = results[i * 4 + 1];
    const apps::RunResult& std1 = results[i * 4 + 2];
    const apps::RunResult& stdp = results[i * 4 + 3];
    const double cni_speedup =
        static_cast<double>(cni1.elapsed) / static_cast<double>(cnip.elapsed);
    const double std_speedup =
        static_cast<double>(std1.elapsed) / static_cast<double>(stdp.elapsed);
    t.add_row(std::to_string(page_sizes[i]),
              {cni_speedup, std_speedup, cnip.hit_ratio_pct}, 2);
    if (rep != nullptr && rep->active()) {
      const std::string pb = std::to_string(page_sizes[i]);
      rep->add_point(run_point("page_bytes=" + pb + " system=cni",
                               {{"page_bytes", pb},
                                {"system", "cni"},
                                {"procs", std::to_string(procs)}},
                               {{"speedup", cni_speedup}}, cnip));
      rep->add_point(run_point("page_bytes=" + pb + " system=standard",
                               {{"page_bytes", pb},
                                {"system", "standard"},
                                {"procs", std::to_string(procs)}},
                               {{"speedup", std_speedup}}, stdp));
    }
  }
  t.print();
}

/// Prints a Tables 2-4 style overhead breakdown (units: 1e9 CPU cycles,
/// per-processor averages; Total = sum of the categories, as in the paper).
inline void print_overhead_table(const std::string& title, const apps::RunResult& cni,
                                 const apps::RunResult& standard) {
  util::Table t(title);
  t.set_header({"Category", "Time-CNI (10^9 cycles)", "Time-standard (10^9 cycles)"});
  t.add_row("Synch overhead", {cni.overhead_e9, standard.overhead_e9}, 4);
  t.add_row("Synch delay", {cni.delay_e9, standard.delay_e9}, 4);
  t.add_row("Computation", {cni.compute_e9, standard.compute_e9}, 4);
  t.add_row("Total", {cni.total_sum_e9(), standard.total_sum_e9()}, 4);
  t.print();
}

/// Reports an overhead-table pair: one ReportPoint per board kind carrying
/// the table's per-category breakdown.
inline void report_overhead_table(obs::Reporter& rep, const apps::RunResult& cni,
                                  const apps::RunResult& standard) {
  if (!rep.active()) return;
  const auto values = [](const apps::RunResult& r) {
    return std::vector<std::pair<std::string, double>>{
        {"synch_overhead_e9", r.overhead_e9},
        {"synch_delay_e9", r.delay_e9},
        {"compute_e9", r.compute_e9},
        {"total_e9", r.total_sum_e9()}};
  };
  rep.add_point(run_point("system=cni", {{"system", "cni"}}, values(cni), cni));
  rep.add_point(
      run_point("system=standard", {{"system", "standard"}}, values(standard), standard));
}

}  // namespace cni::bench
