// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure from the paper's §3 and
// prints the same rows/series. `CNI_BENCH_FAST=1` (or --fast) shrinks the
// sweep for smoke runs; the default matches paper scale.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "util/table.hpp"

namespace cni::bench {

inline bool fast_mode() {
  const char* env = std::getenv("CNI_BENCH_FAST");
  return env != nullptr && env[0] != '0';
}

/// Processor counts along the paper's x-axis (figures run 1..32).
inline std::vector<std::uint32_t> processor_sweep() {
  if (fast_mode()) return {1, 2, 4, 8};
  return {1, 2, 4, 8, 16, 24, 32};
}

/// One (CNI, standard) pair of runs at a processor count.
struct SpeedupPoint {
  std::uint32_t procs = 0;
  apps::RunResult cni;
  apps::RunResult standard;
};

/// Prints the paper's speedup-figure series: CNI-speedup, Standard-speedup
/// and the CNI network cache hit ratio, with T(1) of each configuration as
/// its own baseline.
inline void print_speedup_series(const std::string& title,
                                 const std::vector<SpeedupPoint>& points) {
  util::Table t(title);
  t.set_header({"procs", "CNI-speedup", "Standard-speedup", "NetCacheHitRatio(%)"});
  const double cni1 = static_cast<double>(points.front().cni.elapsed);
  const double std1 = static_cast<double>(points.front().standard.elapsed);
  for (const SpeedupPoint& pt : points) {
    t.add_row(std::to_string(pt.procs),
              {cni1 / static_cast<double>(pt.cni.elapsed),
               std1 / static_cast<double>(pt.standard.elapsed),
               pt.cni.hit_ratio_pct},
              2);
  }
  t.print();
}

/// Runs one app config over the processor sweep on both board kinds.
template <typename Config, typename RunFn>
std::vector<SpeedupPoint> speedup_sweep(RunFn run, const Config& cfg,
                                        std::uint64_t page_size = 4096) {
  std::vector<SpeedupPoint> out;
  for (std::uint32_t p : processor_sweep()) {
    SpeedupPoint pt;
    pt.procs = p;
    pt.cni = run(apps::make_params(cluster::BoardKind::kCni, p, page_size), cfg, nullptr);
    pt.standard =
        run(apps::make_params(cluster::BoardKind::kStandard, p, page_size), cfg, nullptr);
    out.push_back(std::move(pt));
  }
  return out;
}

/// Page-size sensitivity at a fixed processor count: speedup(p) against the
/// same-page-size single-processor run, per configuration (Figures 5/9/12).
template <typename Config, typename RunFn>
void print_pagesize_series(const std::string& title, RunFn run, const Config& cfg,
                           std::uint32_t procs,
                           const std::vector<std::uint64_t>& page_sizes) {
  util::Table t(title);
  t.set_header({"page bytes", "CNI speedup", "Standard speedup", "HitRatio(%)"});
  for (std::uint64_t ps : page_sizes) {
    const auto cni1 = run(apps::make_params(cluster::BoardKind::kCni, 1, ps), cfg, nullptr);
    const auto cnip =
        run(apps::make_params(cluster::BoardKind::kCni, procs, ps), cfg, nullptr);
    const auto std1 =
        run(apps::make_params(cluster::BoardKind::kStandard, 1, ps), cfg, nullptr);
    const auto stdp =
        run(apps::make_params(cluster::BoardKind::kStandard, procs, ps), cfg, nullptr);
    t.add_row(std::to_string(ps),
              {static_cast<double>(cni1.elapsed) / static_cast<double>(cnip.elapsed),
               static_cast<double>(std1.elapsed) / static_cast<double>(stdp.elapsed),
               cnip.hit_ratio_pct},
              2);
  }
  t.print();
}

/// Prints a Tables 2-4 style overhead breakdown (units: 1e9 CPU cycles,
/// per-processor averages; Total = sum of the categories, as in the paper).
inline void print_overhead_table(const std::string& title, const apps::RunResult& cni,
                                 const apps::RunResult& standard) {
  util::Table t(title);
  t.set_header({"Category", "Time-CNI (10^9 cycles)", "Time-standard (10^9 cycles)"});
  t.add_row("Synch overhead", {cni.overhead_e9, standard.overhead_e9}, 4);
  t.add_row("Synch delay", {cni.delay_e9, standard.delay_e9}, 4);
  t.add_row("Computation", {cni.compute_e9, standard.compute_e9}, 4);
  t.add_row("Total", {cni.total_sum_e9(), standard.total_sum_e9()}, 4);
  t.print();
}

}  // namespace cni::bench
