// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure from the paper's §3 and
// prints the same rows/series. `CNI_BENCH_FAST=1` (or --fast) shrinks the
// sweep for smoke runs; the default matches paper scale.
//
// Sweeps run their points on a thread pool (`CNI_BENCH_JOBS`, defaulting to
// hardware_concurrency): every (procs, board-kind, page-size) point is an
// independent simulation with its own cluster, each point's result is
// bit-identical to a sequential run, and results land in per-point slots so
// the printed ordering never depends on completion order.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "util/table.hpp"

namespace cni::bench {

inline bool fast_mode() {
  const char* env = std::getenv("CNI_BENCH_FAST");
  return env != nullptr && env[0] != '0';
}

/// Processor counts along the paper's x-axis (figures run 1..32).
inline std::vector<std::uint32_t> processor_sweep() {
  if (fast_mode()) return {1, 2, 4, 8};
  return {1, 2, 4, 8, 16, 24, 32};
}

/// One (CNI, standard) pair of runs at a processor count.
struct SpeedupPoint {
  std::uint32_t procs = 0;
  apps::RunResult cni;
  apps::RunResult standard;
};

/// Prints the paper's speedup-figure series: CNI-speedup, Standard-speedup
/// and the CNI network cache hit ratio, with T(1) of each configuration as
/// its own baseline.
inline void print_speedup_series(const std::string& title,
                                 const std::vector<SpeedupPoint>& points) {
  util::Table t(title);
  t.set_header({"procs", "CNI-speedup", "Standard-speedup", "NetCacheHitRatio(%)"});
  const double cni1 = static_cast<double>(points.front().cni.elapsed);
  const double std1 = static_cast<double>(points.front().standard.elapsed);
  for (const SpeedupPoint& pt : points) {
    t.add_row(std::to_string(pt.procs),
              {cni1 / static_cast<double>(pt.cni.elapsed),
               std1 / static_cast<double>(pt.standard.elapsed),
               pt.cni.hit_ratio_pct},
              2);
  }
  t.print();
}

/// Runs one app config over the processor sweep on both board kinds. The
/// 2 × |sweep| simulations are independent, so they run as parallel jobs.
template <typename Config, typename RunFn>
std::vector<SpeedupPoint> speedup_sweep(RunFn run, const Config& cfg,
                                        std::uint64_t page_size = 4096) {
  const std::vector<std::uint32_t> procs = processor_sweep();
  std::vector<SpeedupPoint> out(procs.size());
  for (std::size_t i = 0; i < procs.size(); ++i) out[i].procs = procs[i];
  apps::parallel_indexed(procs.size() * 2, [&](std::size_t job) {
    const std::size_t i = job / 2;
    const bool is_cni = (job % 2) == 0;
    const auto kind = is_cni ? cluster::BoardKind::kCni : cluster::BoardKind::kStandard;
    apps::RunResult r = run(apps::make_params(kind, procs[i], page_size), cfg, nullptr);
    (is_cni ? out[i].cni : out[i].standard) = std::move(r);
  });
  return out;
}

/// Page-size sensitivity at a fixed processor count: speedup(p) against the
/// same-page-size single-processor run, per configuration (Figures 5/9/12).
template <typename Config, typename RunFn>
void print_pagesize_series(const std::string& title, RunFn run, const Config& cfg,
                           std::uint32_t procs,
                           const std::vector<std::uint64_t>& page_sizes) {
  // Four independent runs per page size: {CNI, standard} × {1, procs}.
  std::vector<apps::RunResult> results(page_sizes.size() * 4);
  apps::parallel_indexed(results.size(), [&](std::size_t job) {
    const std::uint64_t ps = page_sizes[job / 4];
    const auto kind =
        (job % 4) < 2 ? cluster::BoardKind::kCni : cluster::BoardKind::kStandard;
    const std::uint32_t p = (job % 2) == 0 ? 1 : procs;
    results[job] = run(apps::make_params(kind, p, ps), cfg, nullptr);
  });
  util::Table t(title);
  t.set_header({"page bytes", "CNI speedup", "Standard speedup", "HitRatio(%)"});
  for (std::size_t i = 0; i < page_sizes.size(); ++i) {
    const apps::RunResult& cni1 = results[i * 4 + 0];
    const apps::RunResult& cnip = results[i * 4 + 1];
    const apps::RunResult& std1 = results[i * 4 + 2];
    const apps::RunResult& stdp = results[i * 4 + 3];
    t.add_row(std::to_string(page_sizes[i]),
              {static_cast<double>(cni1.elapsed) / static_cast<double>(cnip.elapsed),
               static_cast<double>(std1.elapsed) / static_cast<double>(stdp.elapsed),
               cnip.hit_ratio_pct},
              2);
  }
  t.print();
}

/// Prints a Tables 2-4 style overhead breakdown (units: 1e9 CPU cycles,
/// per-processor averages; Total = sum of the categories, as in the paper).
inline void print_overhead_table(const std::string& title, const apps::RunResult& cni,
                                 const apps::RunResult& standard) {
  util::Table t(title);
  t.set_header({"Category", "Time-CNI (10^9 cycles)", "Time-standard (10^9 cycles)"});
  t.add_row("Synch overhead", {cni.overhead_e9, standard.overhead_e9}, 4);
  t.add_row("Synch delay", {cni.delay_e9, standard.delay_e9}, 4);
  t.add_row("Computation", {cni.compute_e9, standard.compute_e9}, 4);
  t.add_row("Total", {cni.total_sum_e9(), standard.total_sum_e9()}, 4);
  t.print();
}

}  // namespace cni::bench
