// Figure 9: page-size sensitivity, 8-processor Water, 216 molecules.
//
// Paper: "The CNI is also less sensitive to page size... even though there
// is some false sharing with larger page sizes" (x: 2..8 KB).
#include "apps/water.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "fig09_water_pagesize");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("figure", "fig09");
  reporter.add_config("app", "water");
  apps::WaterConfig cfg{216, 2};
  bench::print_pagesize_series("Figure 9: Water page-size sensitivity (p=8)",
                               apps::run_water, cfg, 8, {2048, 4096, 8192}, &reporter);
  return reporter.finish() ? 0 : 1;
}
