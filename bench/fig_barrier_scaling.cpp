// Barrier/collective scaling: NIC-resident combining tree vs host baseline.
//
// The tentpole claim behind --collective=nic (DESIGN.md §16): the seed's
// centralized barrier serializes O(N) arrive/release messages through one
// manager NIC, so barrier latency grows linearly with node count, while the
// topology-derived combining tree runs the same episode in O(log N) —
// combine handlers fold child contributions on the NIC processor as packets
// arrive, and the down-sweep fans the release out over the same tree. This
// benchmark plots that crossover: simulated barrier and reduce latency per
// episode against node count, for
//
//   * cni_tree       — CNI board, --collective=nic (the AIH combining tree)
//   * cni_host       — CNI board, --collective=host (centralized manager;
//                      isolates the protocol change from the board change)
//   * standard_host  — standard NIC, host collectives (the full baseline)
//
// across all three fabric topologies. The tree shape itself is printed per
// point (fanin/depth) — the banyan and the multi-stage fabrics pick
// different fan-in from their zero-load distances at 1024 nodes.
//
// The sharded engine is honored through the ambient CNI_SIM_SHARDS /
// CNI_SIM_FUSION / CNI_SIM_PAIR_LOOKAHEAD knobs, so the parsim-identity CI
// row can diff this binary's artifacts across K and fusion settings. Every
// simulated number is shard-count independent.
//
// Usage: fig_barrier_scaling [--json] [--fast] [--nodes=N] [--rounds=N]
//                            [--topology=banyan|clos|torus] [report flags]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/runner.hpp"
#include "atm/topology.hpp"
#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "dsm/context.hpp"
#include "dsm/system.hpp"
#include "obs/report.hpp"
#include "util/check.hpp"

namespace {

using cni::atm::TopologyKind;
using cni::cluster::BoardKind;
using cni::cluster::CollectiveMode;

struct Mode {
  const char* name;
  BoardKind board;
  CollectiveMode collective;
};

constexpr Mode kModes[] = {
    {"cni_tree", BoardKind::kCni, CollectiveMode::kNic},
    {"cni_host", BoardKind::kCni, CollectiveMode::kHost},
    {"standard_host", BoardKind::kStandard, CollectiveMode::kHost},
};

struct ModeResult {
  const char* name = "";
  std::uint64_t barrier_ps = 0;  ///< simulated latency per barrier episode
  std::uint64_t reduce_ps = 0;   ///< simulated latency per reduce episode
  std::uint64_t elapsed_cycles = 0;  ///< barrier phase, host CPU cycles
  std::uint32_t fanin = 0;
  std::uint32_t depth = 0;
  cni::obs::Snapshot snapshot;       ///< barrier phase
  cni::sim::NodeStats totals;        ///< barrier phase
};

struct Point {
  std::string name;
  const char* topology = "";
  std::uint32_t nodes = 0;
  std::vector<ModeResult> modes;
};

cni::cluster::SimParams point_params(TopologyKind kind, const Mode& mode,
                                     std::uint32_t nodes) {
  cni::cluster::SimParams params = cni::apps::make_params(mode.board, nodes);
  std::uint32_t ports = 32;
  while (ports < nodes) ports *= 2;
  params.fabric.switch_ports = ports;
  params.fabric.topology = kind;
  // Barrier-only node bodies touch almost no stack; the default 512 KiB
  // fiber would cost 2 GiB of host address space at 4096 nodes.
  params.thread_stack_bytes = 64 * 1024;
  return params;
}

/// One phase = one fresh cluster running `rounds` episodes of `body`.
/// Returns the cluster's simulated elapsed time.
template <typename Body>
cni::sim::SimTime run_phase(const cni::cluster::SimParams& params,
                            const cni::dsm::DsmParams& dp, std::uint32_t rounds,
                            Body body, ModeResult* out) {
  using namespace cni;
  cluster::Cluster cl(params);
  dsm::DsmSystem sys(cl, dp);
  const sim::SimTime elapsed = cl.run([&](std::size_t i, sim::SimThread& t) {
    dsm::DsmContext ctx(sys, i, t);
    for (std::uint32_t r = 0; r < rounds; ++r) body(ctx, r);
  });
  if (out != nullptr) {
    out->elapsed_cycles = cl.elapsed_cpu_cycles();
    out->fanin = sys.collective_tree().fanin;
    out->depth = sys.collective_tree().depth;
    out->snapshot = cl.snapshot();
    out->totals = cl.stats().total();
  }
  return elapsed;
}

ModeResult run_mode(TopologyKind kind, const Mode& mode, std::uint32_t nodes,
                    std::uint32_t rounds) {
  using namespace cni;
  const cluster::SimParams params = point_params(kind, mode, nodes);
  dsm::DsmParams dp;
  dp.collective = mode.collective;

  ModeResult m;
  m.name = mode.name;
  const sim::SimTime bar = run_phase(
      params, dp, rounds,
      [](dsm::DsmContext& ctx, std::uint32_t) { ctx.barrier(); }, &m);
  const sim::SimTime red = run_phase(
      params, dp, rounds,
      [](dsm::DsmContext& ctx, std::uint32_t r) {
        ctx.reduce_u64(dsm::ReduceOp::kSum, ctx.self() + r);
      },
      nullptr);
  m.barrier_ps = bar / rounds;
  m.reduce_ps = red / rounds;
  return m;
}

void print_json(const std::vector<Point>& points, std::uint32_t rounds) {
  std::printf("{\n  \"rounds\": %u,\n  \"points\": {\n", rounds);
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    const Point& p = points[pi];
    std::printf("    \"%s\": {\n", p.name.c_str());
    std::printf("      \"topology\": \"%s\", \"nodes\": %u,\n", p.topology, p.nodes);
    std::printf("      \"modes\": {\n");
    for (std::size_t i = 0; i < p.modes.size(); ++i) {
      const ModeResult& m = p.modes[i];
      std::printf(
          "        \"%s\": {\"barrier_ps\": %llu, \"reduce_ps\": %llu, "
          "\"elapsed_cycles\": %llu, \"fanin\": %u, \"depth\": %u}%s\n",
          m.name, static_cast<unsigned long long>(m.barrier_ps),
          static_cast<unsigned long long>(m.reduce_ps),
          static_cast<unsigned long long>(m.elapsed_cycles), m.fanin, m.depth,
          i + 1 < p.modes.size() ? "," : "");
    }
    std::printf("      }\n    }%s\n", pi + 1 < points.size() ? "," : "");
  }
  std::printf("  }\n}\n");
}

void print_table(const Point& p) {
  std::printf("\n%s\n", p.name.c_str());
  std::printf("%-14s %16s %16s %8s %8s\n", "mode", "barrier_us", "reduce_us",
              "fanin", "depth");
  for (const ModeResult& m : p.modes) {
    std::printf("%-14s %16.2f %16.2f %8u %8u\n", m.name,
                static_cast<double>(m.barrier_ps) / 1e6,
                static_cast<double>(m.reduce_ps) / 1e6, m.fanin, m.depth);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "fig_barrier_scaling");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("figure", "fig_barrier_scaling");
  reporter.add_config("app", "barrier");

  bool json = false;
  bool fast = bench::fast_mode();
  bool topo_pinned = false;
  std::uint32_t nodes_arg = 0;
  std::uint32_t rounds_arg = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
    if (std::strncmp(argv[i], "--topology=", 11) == 0) topo_pinned = true;
    if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      nodes_arg = static_cast<std::uint32_t>(std::atoi(argv[i] + 8));
    }
    if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds_arg = static_cast<std::uint32_t>(std::atoi(argv[i] + 9));
    }
  }

  std::vector<std::uint32_t> node_counts;
  if (nodes_arg != 0) {
    node_counts = {nodes_arg};
  } else if (fast) {
    node_counts = {64, 256};
  } else {
    node_counts = {256, 1024, 4096};
  }
  const std::uint32_t rounds = rounds_arg != 0 ? rounds_arg : (fast ? 4 : 8);

  // --topology pins the sweep to one fabric (apply_fabric_cli already made
  // it the default); otherwise cover all three.
  std::vector<TopologyKind> kinds = {TopologyKind::kBanyan, TopologyKind::kClos,
                                     TopologyKind::kTorus};
  if (topo_pinned) kinds = {atm::default_topology()};

  std::vector<Point> points;
  for (const TopologyKind kind : kinds) {
    for (const std::uint32_t nodes : node_counts) {
      Point p;
      p.topology = atm::topology_name(kind);
      p.nodes = nodes;
      p.name = std::string(p.topology) + "/" + std::to_string(nodes);
      for (const Mode& mode : kModes) {
        p.modes.push_back(run_mode(kind, mode, nodes, rounds));
      }
      // The tree must beat the centralized protocols once the O(N) manager
      // serialization dominates — the acceptance bar for this figure.
      if (nodes >= 1024) {
        CNI_CHECK_MSG(p.modes[0].barrier_ps < p.modes[1].barrier_ps &&
                          p.modes[0].barrier_ps < p.modes[2].barrier_ps,
                      "NIC tree barrier lost to the centralized baseline");
      }
      if (!json) print_table(p);
      if (reporter.active()) {
        for (const ModeResult& m : p.modes) {
          obs::ReportPoint pt;
          pt.label = p.name + " mode=" + m.name;
          pt.config = {{"topology", p.topology},
                       {"nodes", std::to_string(p.nodes)},
                       {"mode", m.name}};
          pt.values = {{"barrier_ps", static_cast<double>(m.barrier_ps)},
                       {"reduce_ps", static_cast<double>(m.reduce_ps)},
                       {"fanin", static_cast<double>(m.fanin)},
                       {"depth", static_cast<double>(m.depth)}};
          bench::fill_legacy(pt, m.totals);
          pt.snapshot = m.snapshot;
          reporter.add_point(std::move(pt));
        }
      }
      points.push_back(std::move(p));
    }
  }
  if (json) print_json(points, rounds);
  return reporter.finish() ? 0 : 1;
}
