// Figure 4: Jacobi speedup and network cache hit ratio, 1024x1024 matrix.
//
// Paper: large input, near-linear CNI scaling (~18x at 32), hit ratio 93-99%.
#include "apps/jacobi.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "fig04_jacobi_speedup_1024");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("figure", "fig04");
  reporter.add_config("app", "jacobi");
  apps::JacobiConfig cfg = bench::fast_mode() ? apps::JacobiConfig{256, 5, 16}
                                              : apps::JacobiConfig{1024, 20, 16};
  const auto pts = bench::speedup_sweep(apps::run_jacobi, cfg);
  bench::print_speedup_series("Figure 4: Jacobi 1024x1024 speedup / hit ratio", pts);
  bench::report_speedup_series(reporter, pts);
  return reporter.finish() ? 0 : 1;
}
