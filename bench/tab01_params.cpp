// Table 1: the simulation parameters in force (defaults of this build).
#include "cluster/params.hpp"

int main() {
  cni::cluster::SimParams params;
  params.to_table().print();
  return 0;
}
