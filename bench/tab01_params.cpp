// Table 1: the simulation parameters in force (defaults of this build).
#include "cluster/params.hpp"
#include "obs/report.hpp"

int main(int argc, char** argv) {
  // No simulation runs here, but the binary still honors the obs flags so
  // tooling can treat every fig/tab target uniformly (empty points list).
  cni::obs::Reporter reporter(argc, argv, "tab01_params");
  cni::cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("table", "tab01");
  cni::cluster::SimParams params;
  params.to_table().print();
  return reporter.finish() ? 0 : 1;
}
