// Figure 6: Water speedup and network cache hit ratio, 64 molecules.
#include "apps/water.hpp"
#include "bench_common.hpp"

int main() {
  using namespace cni;
  apps::WaterConfig cfg{64, 2};
  const auto pts = bench::speedup_sweep(apps::run_water, cfg);
  bench::print_speedup_series("Figure 6: Water 64 molecules speedup / hit ratio", pts);
  return 0;
}
