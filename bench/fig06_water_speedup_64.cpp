// Figure 6: Water speedup and network cache hit ratio, 64 molecules.
#include "apps/water.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "fig06_water_speedup_64");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("figure", "fig06");
  reporter.add_config("app", "water");
  apps::WaterConfig cfg{64, 2};
  const auto pts = bench::speedup_sweep(apps::run_water, cfg);
  bench::print_speedup_series("Figure 6: Water 64 molecules speedup / hit ratio", pts);
  bench::report_speedup_series(reporter, pts);
  return reporter.finish() ? 0 : 1;
}
