// Table 3: overhead breakdown for 8-processor Water, 216 molecules.
//
// Paper: CNI 0.17/2.24/2.95 vs standard 0.30/2.45/2.95 (10^9 cycles).
#include "apps/water.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "tab03_water_overhead");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("table", "tab03");
  reporter.add_config("app", "water");
  apps::WaterConfig cfg{216, 2};
  const auto cni =
      apps::run_water(apps::make_params(cluster::BoardKind::kCni, 8), cfg, nullptr);
  const auto std_ =
      apps::run_water(apps::make_params(cluster::BoardKind::kStandard, 8), cfg, nullptr);
  bench::print_overhead_table("Table 3: overhead, 8-processor Water 216 molecules",
                              cni, std_);
  bench::report_overhead_table(reporter, cni, std_);
  return reporter.finish() ? 0 : 1;
}
