// Figure 13: network cache hit ratio vs Message Cache size (8-processor
// Jacobi, Water and Cholesky).
//
// Paper: "For Water and Jacobi, a slight increase beyond 32KB brings the hit
// ratio to its optimal limit... In Cholesky the ratio saturates at 90% for a
// Message Cache size of 512 KB" — so the OSIRIS board's 1 MB suffices.
#include "apps/cholesky.hpp"
#include "apps/jacobi.hpp"
#include "apps/water.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "fig13_mcache_size");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("figure", "fig13");
  const bool fast = bench::fast_mode();
  apps::JacobiConfig jac = fast ? apps::JacobiConfig{128, 5, 16}
                                : apps::JacobiConfig{512, 15, 16};
  apps::WaterConfig wat{fast ? 64u : 216u, 2};
  apps::CholeskyConfig cho = apps::CholeskyConfig::bcsstk14();
  if (fast) cho = apps::CholeskyConfig{256, 16, 2, 3, 1024, 2000};

  util::Table t("Figure 13: hit ratio vs Message Cache size (p=8)");
  t.set_header({"cache KB", "Jacobi (%)", "Water (%)", "Cholesky (%)"});
  for (std::uint64_t kb : {32ull, 64ull, 128ull, 256ull, 512ull, 1024ull}) {
    auto params = [&](std::uint64_t cache_kb) {
      return apps::make_params(cluster::BoardKind::kCni, 8, 4096, cache_kb * 1024);
    };
    const auto j = apps::run_jacobi(params(kb), jac, nullptr);
    const auto w = apps::run_water(params(kb), wat, nullptr);
    const auto c = apps::run_cholesky(params(kb), cho, nullptr);
    t.add_row(std::to_string(kb),
              {j.hit_ratio_pct, w.hit_ratio_pct, c.hit_ratio_pct}, 1);
    if (reporter.active()) {
      const std::string cache_kb = std::to_string(kb);
      const auto point = [&](const char* app, const apps::RunResult& r) {
        reporter.add_point(bench::run_point(
            "cache_kb=" + cache_kb + " app=" + app,
            {{"cache_kb", cache_kb}, {"app", app}}, {}, r));
      };
      point("jacobi", j);
      point("water", w);
      point("cholesky", c);
    }
  }
  t.print();
  return reporter.finish() ? 0 : 1;
}
