// Ablation: Application Device Channel descriptor-ring operations — the
// user-level send path the CNI substitutes for a kernel trap.
#include <benchmark/benchmark.h>

#include "core/adc.hpp"

namespace {

using namespace cni::core;

void BM_RingPushPop(benchmark::State& state) {
  DescriptorRing ring(256);
  const AdcDescriptor d{0x10000, 4096, 1, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.push(d));
    benchmark::DoNotOptimize(ring.pop());
  }
}
BENCHMARK(BM_RingPushPop);

void BM_EnqueueWithProtectionCheck(benchmark::State& state) {
  DualPortMemory mem(1 << 20);
  auto ch = AdcChannel::open(mem, 1, 0x10000, 1 << 20, 256);
  const AdcDescriptor d{0x14000, 4096, 1, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch->enqueue_tx(d));
    benchmark::DoNotOptimize(ch->dequeue_tx());
  }
}
BENCHMARK(BM_EnqueueWithProtectionCheck);

void BM_ProtectionReject(benchmark::State& state) {
  DualPortMemory mem(1 << 20);
  auto ch = AdcChannel::open(mem, 1, 0x10000, 0x1000, 256);
  const AdcDescriptor outside{0x90000, 4096, 1, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch->enqueue_tx(outside));
  }
}
BENCHMARK(BM_ProtectionReject);

}  // namespace
