// Table 5: performance improvement with ATM of unrestricted cell size.
//
// Paper: "we experimented with a mythical networking technology having the
// same characteristics as ATM but with unlimited cell size... Jacobi 5.69%,
// Water 13.31%, Cholesky 25.29%" (8 processors) — the 53-byte cell's
// fragmentation/reassembly tax is a major detriment.
#include "apps/cholesky.hpp"
#include "apps/jacobi.hpp"
#include "apps/water.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "tab05_cellsize");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("table", "tab05");
  const bool fast = bench::fast_mode();
  apps::JacobiConfig jac = fast ? apps::JacobiConfig{256, 5, 16}
                                : apps::JacobiConfig{1024, 20, 16};
  apps::WaterConfig wat{343, 2};
  apps::CholeskyConfig cho = apps::CholeskyConfig::bcsstk14();
  if (fast) cho = apps::CholeskyConfig{256, 16, 2, 3, 1024, 2000};

  auto improvement = [&](const char* app, auto run, const auto& cfg) {
    auto p_std = apps::make_params(cluster::BoardKind::kCni, 8);
    auto p_unr = p_std;
    p_unr.fabric.cell_mode = atm::CellMode::kUnrestricted;
    const auto base = run(p_std, cfg, nullptr);
    const auto unr = run(p_unr, cfg, nullptr);
    const double pct =
        100.0 * (static_cast<double>(base.elapsed) - static_cast<double>(unr.elapsed)) /
        static_cast<double>(base.elapsed);
    if (reporter.active()) {
      const std::string name(app);
      reporter.add_point(bench::run_point("app=" + name + " cells=atm53",
                                          {{"app", name}, {"cells", "atm53"}},
                                          {{"improvement_pct", pct}}, base));
      reporter.add_point(bench::run_point("app=" + name + " cells=unrestricted",
                                          {{"app", name}, {"cells", "unrestricted"}},
                                          {}, unr));
    }
    return pct;
  };

  util::Table t("Table 5: improvement with unrestricted ATM cell size (p=8, CNI)");
  t.set_header({"Application", "% improvement"});
  t.add_row("Jacobi 1024x1024", {improvement("jacobi", apps::run_jacobi, jac)}, 2);
  t.add_row("Water 343 molecules", {improvement("water", apps::run_water, wat)}, 2);
  t.add_row("Cholesky bcsstk14", {improvement("cholesky", apps::run_cholesky, cho)}, 2);
  t.print();
  return reporter.finish() ? 0 : 1;
}
