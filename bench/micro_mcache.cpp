// Ablation: Message Cache operation costs (buffer-map probe, bind, snoop).
#include <benchmark/benchmark.h>

#include "core/message_cache.hpp"

namespace {

using namespace cni::core;
constexpr std::uint64_t kPage = 4096;

void BM_LookupHit(benchmark::State& state) {
  MessageCache mc(cni::mem::PageGeometry(kPage),
                  static_cast<std::uint64_t>(state.range(0)) * 1024);
  for (std::uint64_t i = 0; i < mc.buffer_count(); ++i) mc.insert(i * kPage, kPage);
  std::uint64_t va = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.lookup_tx(va, kPage));
    va = (va + kPage) % (mc.buffer_count() * kPage);
  }
}
BENCHMARK(BM_LookupHit)->Arg(32)->Arg(512)->Arg(1024);

void BM_LookupMiss(benchmark::State& state) {
  MessageCache mc(cni::mem::PageGeometry(kPage), 32 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.lookup_tx(0x4000'0000, kPage));
  }
}
BENCHMARK(BM_LookupMiss);

void BM_InsertWithEviction(benchmark::State& state) {
  MessageCache mc(cni::mem::PageGeometry(kPage), 32 * 1024);
  std::uint64_t va = 0;
  for (auto _ : state) {
    mc.insert(va, kPage);
    va += kPage;  // always a fresh page: every insert past 8 evicts
  }
  state.counters["evictions"] = static_cast<double>(mc.evictions());
}
BENCHMARK(BM_InsertWithEviction);

void BM_SnoopBound(benchmark::State& state) {
  MessageCache mc(cni::mem::PageGeometry(kPage), 512 * 1024);
  for (std::uint64_t i = 0; i < mc.buffer_count(); ++i) mc.insert(i * kPage, kPage);
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.snoop_write(line, 32));
    line = (line + 32) % (mc.buffer_count() * kPage);
  }
}
BENCHMARK(BM_SnoopBound);

void BM_SnoopUnbound(benchmark::State& state) {
  MessageCache mc(cni::mem::PageGeometry(kPage), 32 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.snoop_write(0x7000'0000, 32));
  }
}
BENCHMARK(BM_SnoopUnbound);

}  // namespace
