// Probe kernel for micro_obs: one representative instrumented hot-path
// operation (a Message Cache transmit lookup plus the emit macros CniBoard
// wraps around it), compiled twice:
//
//   obs_probe_on.cpp   -> probe_step_on()   normal build, macros live
//   obs_probe_off.cpp  -> probe_step_off()  -DCNI_OBS_DISABLED, macros vanish
//
// Same body (obs_probe_body.inc), different preprocessor state — so the
// pair measures exactly what the compile-time kill switch removes, and the
// on-variant with null/quiet handles measures the runtime-off residue (one
// pointer test per site).
#pragma once

#include <cstdint>

#include "core/message_cache.hpp"
#include "obs/obs.hpp"

namespace cni::bench {

struct ProbeCtx {
  explicit ProbeCtx(std::uint64_t cache_bytes = 512 * 1024)
      : mcache(mem::PageGeometry(4096), cache_bytes) {
    for (std::uint64_t i = 0; i < mcache.buffer_count(); ++i) mcache.insert(i * 4096, 4096);
  }

  core::MessageCache mcache;
  std::uint64_t va = 0;
  std::uint64_t t = 0;    ///< synthetic sim-time cursor, ps
  std::uint32_t seq = 0;  ///< causality-token sequence cursor

  // Null by default: the on-variant then measures emit sites whose runtime
  // switch is off. Point them at real handles to measure live recording.
  obs::NodeObs* node = nullptr;
  obs::Hist* hist = nullptr;
  obs::Gauge* gauge = nullptr;
};

/// One probe step with the instrumentation macros compiled in.
std::uint64_t probe_step_on(ProbeCtx& ctx);

/// The identical step compiled under CNI_OBS_DISABLED (macros expand to
/// nothing) — the uninstrumented reference cost.
std::uint64_t probe_step_off(ProbeCtx& ctx);

}  // namespace cni::bench
