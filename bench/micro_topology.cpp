// Fabric-topology scaling benchmark (DESIGN.md §14).
//
// Sweeps the three fabric topologies (single-stage banyan, folded Clos,
// 3D torus) across 256 / 1024 / 4096 nodes under three traffic scenarios:
//
//   * incast — every node fires at node 0: the adversarial case for the
//     destination downlink and, in the Clos, for the links into node 0's
//     leaf block. Contention shows up as simulated elapsed time, never as
//     nondeterminism.
//   * permutation — bit-reversal partner (self-inverse), the classic
//     banyan-adversarial pattern: every path crosses the full fabric, so
//     the multi-stage topologies pay their whole diameter.
//   * hotspot — deterministic hashed all-to-all with every fourth frame
//     aimed at one hot node: mixed background plus a moving contention spot.
//
// Each point runs the sharded engine at K = 1 and K = 4 and records wall
// clock, events/sec, the machine-independent event-parallelism bound, and
// the per-shard-pair lookahead the topology exported (matrix min/max beside
// the uniform single-bound floor) — the distance-aware slack is the whole
// reason the torus points barrier less than the banyan ones. Simulated
// elapsed cycles are CNI_CHECKed identical across K per point, extending
// the byte-identity claim to every topology at every scale.
//
// Wall numbers follow the BENCH_parsim honesty rule: on a host with fewer
// cores than shards, wall_vs_k1 is null and cores_limited is true.
//
// Usage: micro_topology [--json] [--fast] [--nodes=N] [--rounds=N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/runner.hpp"
#include "atm/topology.hpp"
#include "cluster/cluster.hpp"
#include "nic/wire.hpp"
#include "sim/sharded.hpp"
#include "util/check.hpp"

namespace {

using cni::atm::TopologyKind;

constexpr cni::nic::MsgType kSink = cni::nic::kTypeHandlerBase + 61;

struct Scenario {
  const char* name;
  /// Destination for `self`'s `k`-th frame.
  std::uint32_t (*partner)(std::uint32_t self, std::uint32_t k, std::uint32_t nodes);
};

std::uint32_t incast_partner(std::uint32_t self, std::uint32_t, std::uint32_t) {
  return self == 0 ? 1u : 0u;
}

std::uint32_t bit_reverse(std::uint32_t v, std::uint32_t bits) {
  std::uint32_t r = 0;
  for (std::uint32_t i = 0; i < bits; ++i) r |= ((v >> i) & 1u) << (bits - 1 - i);
  return r;
}

std::uint32_t permutation_partner(std::uint32_t self, std::uint32_t, std::uint32_t nodes) {
  std::uint32_t bits = 0;
  while ((1u << bits) < nodes) ++bits;
  const std::uint32_t dst = bit_reverse(self, bits);
  return dst == self ? (self ^ 1u) : dst;
}

std::uint32_t hotspot_partner(std::uint32_t self, std::uint32_t k, std::uint32_t nodes) {
  const std::uint32_t hot = nodes / 2;
  std::uint32_t dst = k % 4 == 3 ? hot : (self * 2654435761u + k * 40503u) % nodes;
  if (dst == self) dst = (dst + 1) % nodes;
  return dst;
}

constexpr Scenario kScenarios[] = {
    {"incast", incast_partner},
    {"permutation", permutation_partner},
    {"hotspot", hotspot_partner},
};

struct ModeResult {
  std::string name;
  std::uint32_t shards = 0;
  double wall_ms = 0;
  std::uint64_t elapsed_cycles = 0;
  cni::sim::EpochStats stats;
};

/// Off-diagonal range of the topology's exported lookahead matrix at K = 4,
/// beside the uniform single-bound floor it improves on.
struct LookaheadSummary {
  double uniform_ns = 0;
  double matrix_min_ns = 0;
  double matrix_max_ns = 0;
  std::uint32_t shards = 0;
};

struct Point {
  std::string name;
  const char* topology;
  const char* scenario;
  std::uint32_t nodes = 0;
  LookaheadSummary lookahead;
  std::vector<ModeResult> modes;
};

cni::cluster::SimParams point_params(TopologyKind kind, std::uint32_t nodes,
                                     std::uint32_t shards) {
  cni::cluster::SimParams params =
      cni::apps::make_params(cni::cluster::BoardKind::kCni, nodes);
  params.fabric.switch_ports = nodes;
  params.fabric.topology = kind;
  params.sim_shards = shards;
  return params;
}

ModeResult run_mode(TopologyKind kind, const Scenario& sc, std::uint32_t nodes,
                    std::uint32_t shards, std::uint32_t rounds,
                    LookaheadSummary* lookahead) {
  using namespace cni;
  cluster::Cluster cl(point_params(kind, nodes, shards));

  if (lookahead != nullptr) {
    const sim::ShardPlan plan = sim::ShardPlan::balanced(nodes, shards);
    const sim::LookaheadMatrix m = cl.fabric().lookahead_matrix(plan);
    sim::SimDuration lo = sim::LookaheadMatrix::kUnbounded;
    sim::SimDuration hi = 0;
    for (std::uint32_t r = 0; r < plan.shards; ++r) {
      for (std::uint32_t c = 0; c < plan.shards; ++c) {
        if (r == c) continue;
        const sim::SimDuration e = m.at(r, c);
        if (e < lo) lo = e;
        if (e > hi) hi = e;
      }
    }
    lookahead->uniform_ns =
        static_cast<double>(cl.fabric().min_lookahead()) / sim::kNanosecond;
    lookahead->matrix_min_ns = static_cast<double>(lo) / sim::kNanosecond;
    lookahead->matrix_max_ns = static_cast<double>(hi) / sim::kNanosecond;
    lookahead->shards = plan.shards;
  }

  // Sink service: charge a small fixed cost, no reply. The benchmark load is
  // the *fabric* traversal; the handler just gives each delivery a footprint
  // on the receiving NIC.
  for (std::uint32_t n = 0; n < nodes; ++n) {
    cl.node(n).board().install_handler(
        kSink,
        [](nic::NicBoard::RxContext& ctx, const atm::Frame&) { ctx.charge(80); },
        /*code_bytes=*/1024);
  }

  const auto t0 = std::chrono::steady_clock::now();
  cl.run([&](std::size_t i, sim::SimThread& t) {
    const auto self = static_cast<std::uint32_t>(i);
    for (std::uint32_t k = 0; k < rounds; ++k) {
      // Deterministic per-(node, round) jitter so sends decorrelate instead
      // of arriving as one lock-step convoy (same scheme as micro_parsim).
      cl.node(i).cpu().compute(300 + (self * 2654435761u + k * 40503u) % 2048);
      cl.node(i).cpu().sync(t);
      nic::MsgHeader h;
      h.type = kSink;
      h.src_node = self;
      h.seq = cl.node(i).board().next_seq();
      h.aux = k;
      const std::uint32_t dst = sc.partner(self, k, nodes);
      cl.node(i).board().send_from_host(t, atm::Frame::make(self, dst, 1, h), {});
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  ModeResult m;
  m.name = "k" + std::to_string(shards);
  m.shards = shards;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.elapsed_cycles = cl.elapsed_cpu_cycles();
  m.stats = cl.epoch_stats();
  return m;
}

double event_parallelism(const ModeResult& m) {
  return m.stats.critical_path_events == 0
             ? 1.0
             : static_cast<double>(m.stats.events_total) /
                   static_cast<double>(m.stats.critical_path_events);
}

void print_json(const std::vector<Point>& points) {
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("{\n  \"points\": {\n");
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    const Point& p = points[pi];
    std::printf("    \"%s\": {\n", p.name.c_str());
    std::printf("      \"topology\": \"%s\", \"scenario\": \"%s\", "
                "\"nodes\": %u, \"num_cpus\": %u,\n",
                p.topology, p.scenario, p.nodes, hw);
    std::printf("      \"lookahead\": {\"uniform_ns\": %.0f, "
                "\"matrix_min_ns\": %.0f, \"matrix_max_ns\": %.0f, "
                "\"shards\": %u},\n",
                p.lookahead.uniform_ns, p.lookahead.matrix_min_ns,
                p.lookahead.matrix_max_ns, p.lookahead.shards);
    std::printf("      \"modes\": {\n");
    const ModeResult& k1 = p.modes.front();
    for (std::size_t i = 0; i < p.modes.size(); ++i) {
      const ModeResult& m = p.modes[i];
      const bool cores_limited = hw < m.shards;
      const double secs = m.wall_ms / 1e3;
      char speedup[32];
      if (cores_limited) {
        std::snprintf(speedup, sizeof speedup, "null");
      } else {
        std::snprintf(speedup, sizeof speedup, "%.2f", k1.wall_ms / m.wall_ms);
      }
      std::printf(
          "        \"%s\": {\"wall_ms\": %.2f, \"elapsed_cycles\": %llu, "
          "\"events_total\": %llu, \"events_per_sec\": %.0f, "
          "\"epochs\": %llu, \"barriers\": %llu, "
          "\"event_parallelism\": %.2f, \"wall_vs_k1\": %s, "
          "\"cores_limited\": %s}%s\n",
          m.name.c_str(), m.wall_ms,
          static_cast<unsigned long long>(m.elapsed_cycles),
          static_cast<unsigned long long>(m.stats.events_total),
          secs > 0 ? static_cast<double>(m.stats.events_total) / secs : 0.0,
          static_cast<unsigned long long>(m.stats.epochs),
          static_cast<unsigned long long>(m.stats.barriers),
          event_parallelism(m), speedup, cores_limited ? "true" : "false",
          i + 1 < p.modes.size() ? "," : "");
    }
    std::printf("      }\n    }%s\n", pi + 1 < points.size() ? "," : "");
  }
  std::printf("  }\n}\n");
}

void print_table(const Point& p) {
  std::printf("\n%s  (lookahead uniform %.0f ns, matrix %.0f..%.0f ns)\n",
              p.name.c_str(), p.lookahead.uniform_ns, p.lookahead.matrix_min_ns,
              p.lookahead.matrix_max_ns);
  std::printf("%-6s %12s %16s %14s %10s %10s %18s\n", "mode", "wall_ms",
              "elapsed_cycles", "events/sec", "epochs", "barriers",
              "event_parallelism");
  for (const ModeResult& m : p.modes) {
    const double secs = m.wall_ms / 1e3;
    std::printf("%-6s %12.2f %16llu %14.0f %10llu %10llu %18.2f\n",
                m.name.c_str(), m.wall_ms,
                static_cast<unsigned long long>(m.elapsed_cycles),
                secs > 0 ? static_cast<double>(m.stats.events_total) / secs : 0.0,
                static_cast<unsigned long long>(m.stats.epochs),
                static_cast<unsigned long long>(m.stats.barriers),
                event_parallelism(m));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool fast = std::getenv("CNI_BENCH_FAST") != nullptr;
  std::uint32_t nodes_arg = 0;
  std::uint32_t rounds_arg = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
    if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      nodes_arg = static_cast<std::uint32_t>(std::atoi(argv[i] + 8));
    }
    if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds_arg = static_cast<std::uint32_t>(std::atoi(argv[i] + 9));
    }
  }

  std::vector<std::uint32_t> node_counts;
  if (nodes_arg != 0) {
    node_counts = {nodes_arg};
  } else if (fast) {
    node_counts = {64};
  } else {
    node_counts = {256, 1024, 4096};
  }
  const std::uint32_t rounds = rounds_arg != 0 ? rounds_arg : (fast ? 3 : 6);

  constexpr TopologyKind kKinds[] = {TopologyKind::kBanyan, TopologyKind::kClos,
                                     TopologyKind::kTorus};

  std::vector<Point> points;
  for (const TopologyKind kind : kKinds) {
    for (const std::uint32_t nodes : node_counts) {
      for (const Scenario& sc : kScenarios) {
        Point p;
        p.topology = cni::atm::topology_name(kind);
        p.scenario = sc.name;
        p.nodes = nodes;
        p.name = std::string(p.topology) + "/" + sc.name + "/" + std::to_string(nodes);
        p.modes.push_back(run_mode(kind, sc, nodes, 1, rounds, nullptr));
        p.modes.push_back(run_mode(kind, sc, nodes, 4, rounds, &p.lookahead));
        CNI_CHECK_MSG(p.modes[0].elapsed_cycles == p.modes[1].elapsed_cycles,
                      "topology point diverged across K");
        if (!json) print_table(p);
        points.push_back(std::move(p));
      }
    }
  }
  if (json) print_json(points);
  return 0;
}
