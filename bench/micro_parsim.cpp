// Parallel-in-run simulation benchmark (DESIGN.md §12).
//
// Two 256-processor points, each run under the legacy single-engine mode and
// the sharded mode at K = 1, 2, 4:
//
//   * pingpong — every node exchanges request/reply frames with a neighbour
//     (handler-serviced, no DSM), with a small deterministic per-round
//     compute jitter so event times decorrelate. All nodes are active the
//     whole run: this is the event-dense regime shard parallelism exists
//     for, and the headline point BENCH_parsim.json pins.
//   * jacobi — a fig04-class DSM point (4 rows per node). Its inter-barrier
//     fault storms parallelize, but the per-iteration barrier serializes
//     through node 0, so its event-parallelism stays near 1 — recorded as
//     the honest bound for barrier-dominated applications.
//
// Each mode reports two speedup views:
//
//   * measured wall-clock (host-dependent: on a single-core host K > 1 buys
//     nothing and the epoch rendezvous costs a little);
//   * event-parallelism from the deterministic EpochStats — total events
//     divided by the critical path (the busiest shard's events summed over
//     epochs). This is the speedup an ideal K-core host can approach and is
//     byte-identical on every machine, which is why BENCH_parsim.json pins
//     it alongside the local wall measurement (context block says how many
//     CPUs the wall numbers had to work with).
//
// The binary also cross-checks the headline determinism claim: the simulated
// elapsed cycles must be identical for every K (legacy may differ in the
// last digits; see SimParams::sim_shards).
//
// Usage: micro_parsim [--json] [--fast] [--procs=N] [--n=N] [--iters=N]
//        [--rounds=N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/jacobi.hpp"
#include "apps/runner.hpp"
#include "cluster/cluster.hpp"
#include "nic/wire.hpp"
#include "sim/channel.hpp"
#include "sim/shard_profiler.hpp"
#include "util/check.hpp"

namespace {

/// One benchmark configuration: `k4-nofuse` re-creates the PR-5 epoch
/// schedule (no fusion, single global lookahead) so BENCH_parsim.json holds
/// the machine-independent before/after epoch counts side by side.
struct ModeSpec {
  const char* name;
  std::uint32_t shards;
  bool fuse;
  bool pair;
};

constexpr ModeSpec kModes[] = {
    {"legacy", 0, true, true}, {"k1", 1, true, true},      {"k2", 2, true, true},
    {"k4", 4, true, true},     {"k4-nofuse", 4, false, false},
};

struct ModeResult {
  std::string name;
  std::uint32_t shards = 0;
  double wall_ms = 0;
  std::uint64_t elapsed_cycles = 0;
  cni::sim::EpochStats stats;  // zeros in legacy mode
  std::vector<cni::sim::ShardProfile> profile;  // empty in legacy mode
};

cni::cluster::SimParams mode_params(const ModeSpec& spec, std::uint32_t processors) {
  cni::cluster::SimParams params =
      cni::apps::make_params(cni::cluster::BoardKind::kCni, processors);
  params.fabric.switch_ports = processors;
  params.sim_shards = spec.shards;
  params.sim_fusion = spec.fuse;
  params.sim_pair_lookahead = spec.pair;
  return params;
}

ModeResult run_jacobi_mode(const ModeSpec& spec, std::uint32_t processors,
                           const cni::apps::JacobiConfig& cfg) {
  const cni::cluster::SimParams params = mode_params(spec, processors);
  cni::sim::ShardProfiler prof;
  const auto t0 = std::chrono::steady_clock::now();
  const cni::apps::RunResult r =
      cni::apps::run_jacobi_profiled(params, cfg, spec.shards > 0 ? &prof : nullptr);
  const auto t1 = std::chrono::steady_clock::now();

  ModeResult m;
  m.name = spec.name;
  m.shards = spec.shards;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.elapsed_cycles = r.elapsed_cycles;
  m.stats = r.parsim;
  if (prof.enabled()) m.profile = prof.profiles();
  return m;
}

constexpr cni::nic::MsgType kPing = cni::nic::kTypeHandlerBase + 60;
constexpr cni::nic::MsgType kPong = cni::nic::kTypeAppBase + 60;

ModeResult run_pingpong_mode(const ModeSpec& spec, std::uint32_t processors,
                             std::uint32_t rounds) {
  using namespace cni;
  CNI_CHECK(processors % 2 == 0);
  cluster::Cluster cl(mode_params(spec, processors));
  sim::ShardProfiler prof;
  if (spec.shards > 0) cl.set_shard_profiler(&prof);

  // Request service on every board: bump a header field, reply. On a CNI
  // board this runs on the network processor, so the whole exchange is
  // NIC-to-NIC traffic — exactly the cross-node event stream the fabric's
  // lookahead governs.
  for (std::uint32_t n = 0; n < processors; ++n) {
    cl.node(n).board().install_handler(
        kPing,
        [&cl, n](nic::NicBoard::RxContext& ctx, const atm::Frame& f) {
          ctx.charge(120);
          const nic::MsgHeader in = f.header<nic::MsgHeader>();
          nic::MsgHeader h;
          h.type = kPong;
          h.src_node = n;
          h.seq = cl.node(n).board().next_seq();
          h.aux = in.aux + 1;
          ctx.send(atm::Frame::make(n, in.src_node, 1, h), {});
        },
        /*code_bytes=*/2048);
  }
  std::vector<std::unique_ptr<sim::SimChannel<atm::Frame>>> inboxes(processors);
  for (std::uint32_t n = 0; n < processors; ++n) {
    inboxes[n] = std::make_unique<sim::SimChannel<atm::Frame>>();
    cl.node(n).board().bind_channel(kPong, inboxes[n].get());
  }

  const auto t0 = std::chrono::steady_clock::now();
  cl.run([&](std::size_t i, sim::SimThread& t) {
    const auto self = static_cast<std::uint32_t>(i);
    const std::uint32_t partner = self ^ 1u;
    for (std::uint32_t k = 0; k < rounds; ++k) {
      // Deterministic per-(node, round) jitter: decorrelates the round-trip
      // phases so the fabric sees a steady mixed event stream instead of a
      // lock-step convoy.
      cl.node(i).cpu().compute(500 + (self * 2654435761u + k * 40503u) % 4096);
      cl.node(i).cpu().sync(t);
      nic::MsgHeader h;
      h.type = kPing;
      h.src_node = self;
      h.seq = cl.node(i).board().next_seq();
      h.aux = k;
      cl.node(i).board().send_from_host(t, atm::Frame::make(self, partner, 1, h), {});
      cl.node(i).board().receive_app(t, *inboxes[i]);
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  ModeResult m;
  m.name = spec.name;
  m.shards = spec.shards;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.elapsed_cycles = cl.elapsed_cpu_cycles();
  m.stats = cl.epoch_stats();
  if (prof.enabled()) m.profile = prof.profiles();
  return m;
}

double event_parallelism(const ModeResult& m) {
  return m.stats.critical_path_events == 0
             ? 1.0
             : static_cast<double>(m.stats.events_total) /
                   static_cast<double>(m.stats.critical_path_events);
}

struct Point {
  std::string name;
  std::vector<std::pair<std::string, std::uint64_t>> config;
  std::vector<ModeResult> modes;

  /// Baseline for wall_vs_k1: the k1 mode when present (always, in an
  /// unfiltered run), otherwise whatever ran first.
  [[nodiscard]] const ModeResult& baseline() const {
    for (const ModeResult& m : modes) {
      if (m.name == "k1") return m;
    }
    return modes.front();
  }

  /// Sharded runs must agree exactly — whatever K, and with or without
  /// epoch fusion and the per-pair lookahead matrix.
  void check_determinism() const {
    const ModeResult* first_sharded = nullptr;
    for (const ModeResult& m : modes) {
      if (m.name == "legacy") continue;
      if (first_sharded == nullptr) first_sharded = &m;
      CNI_CHECK_MSG(m.elapsed_cycles == first_sharded->elapsed_cycles,
                    "sharded runs diverged across K");
    }
  }
};

/// Renders a stat that only exists for sharded modes: legacy mode has no
/// epochs, so `0` would read like a measurement — emit JSON null instead.
std::string u64_or_null(std::uint64_t v, bool sharded) {
  return sharded ? std::to_string(v) : "null";
}

std::string parallelism_or_null(const ModeResult& m, bool sharded) {
  if (!sharded) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", event_parallelism(m));
  return buf;
}

/// Per-shard wall-time phase breakdown (ms), or null for legacy mode. Like
/// wall_ms this is host telemetry, not simulation output — BENCH_parsim
/// consumers read the *shape* (who waited on whom), not the magnitudes.
std::string shard_profile_json(const ModeResult& m) {
  if (m.profile.empty()) return "null";
  std::string out = "[";
  for (std::size_t s = 0; s < m.profile.size(); ++s) {
    const cni::sim::ShardProfile& p = m.profile[s];
    if (s != 0) out += ", ";
    char buf[256];
    std::snprintf(buf, sizeof buf, "{\"shard\": %zu", s);
    out += buf;
    for (std::size_t ph = 0; ph < cni::sim::kShardPhaseCount; ++ph) {
      std::snprintf(buf, sizeof buf, ", \"%s_ms\": %.2f",
                    cni::sim::shard_phase_name(static_cast<cni::sim::ShardPhase>(ph)),
                    static_cast<double>(p.ns[ph]) / 1e6);
      out += buf;
    }
    std::snprintf(buf, sizeof buf, ", \"transitions\": %llu}",
                  static_cast<unsigned long long>(p.transitions));
    out += buf;
  }
  out += ']';
  return out;
}

/// wall_vs_k1 is only an honest speedup when the host actually ran the shard
/// threads in parallel. On a core-starved host the ratio measures scheduler
/// thrash, not the engine — emit null so downstream tooling can't quote it.
std::string speedup_or_null(double ratio, bool cores_limited) {
  if (cores_limited) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", ratio);
  return buf;
}

void print_json(const std::vector<Point>& points) {
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("{\n  \"points\": {\n");
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    const Point& p = points[pi];
    std::printf("    \"%s\": {\n", p.name.c_str());
    for (const auto& [key, value] : p.config) {
      std::printf("      \"%s\": %llu,\n", key.c_str(),
                  static_cast<unsigned long long>(value));
    }
    std::printf("      \"num_cpus\": %u,\n", hw);
    std::printf("      \"modes\": {\n");
    const ModeResult& k1 = p.baseline();
    for (std::size_t i = 0; i < p.modes.size(); ++i) {
      const ModeResult& m = p.modes[i];
      const bool sharded = m.shards > 0;
      // cores_limited: the wall number was taken with fewer host cores than
      // shard threads, so it understates what a wide host would measure.
      const bool cores_limited = sharded && hw < m.shards;
      std::printf(
          "        \"%s\": {\"wall_ms\": %.2f, \"elapsed_cycles\": %llu, "
          "\"epochs\": %s, \"events_total\": %s, "
          "\"critical_path_events\": %s, \"fused_epochs\": %s, "
          "\"barriers\": %s, \"event_parallelism\": %s, "
          "\"wall_vs_k1\": %s, \"cores_limited\": %s, "
          "\"shard_profile\": %s}%s\n",
          m.name.c_str(), m.wall_ms,
          static_cast<unsigned long long>(m.elapsed_cycles),
          u64_or_null(m.stats.epochs, sharded).c_str(),
          u64_or_null(m.stats.events_total, sharded).c_str(),
          u64_or_null(m.stats.critical_path_events, sharded).c_str(),
          u64_or_null(m.stats.fused_epochs, sharded).c_str(),
          u64_or_null(m.stats.barriers, sharded).c_str(),
          parallelism_or_null(m, sharded).c_str(),
          speedup_or_null(k1.wall_ms / m.wall_ms, cores_limited).c_str(),
          cores_limited ? "true" : "false", shard_profile_json(m).c_str(),
          i + 1 < p.modes.size() ? "," : "");
    }
    std::printf("      }\n    }%s\n", pi + 1 < points.size() ? "," : "");
  }
  std::printf("  }\n}\n");
}

void print_table(const Point& p) {
  std::printf("\n%s (", p.name.c_str());
  for (std::size_t i = 0; i < p.config.size(); ++i) {
    std::printf("%s%s=%llu", i != 0 ? ", " : "", p.config[i].first.c_str(),
                static_cast<unsigned long long>(p.config[i].second));
  }
  std::printf(")\n%-10s %12s %16s %10s %10s %18s %12s\n", "mode", "wall_ms",
              "elapsed_cycles", "epochs", "barriers", "event_parallelism",
              "wall_vs_k1");
  const ModeResult& k1 = p.baseline();
  const unsigned hw = std::thread::hardware_concurrency();
  bool any_limited = false;
  for (const ModeResult& m : p.modes) {
    const bool cores_limited = m.shards > 0 && hw < m.shards;
    char speedup[32];
    if (cores_limited) {
      std::snprintf(speedup, sizeof speedup, "n/a*");
      any_limited = true;
    } else {
      std::snprintf(speedup, sizeof speedup, "%.2f", k1.wall_ms / m.wall_ms);
    }
    std::printf("%-10s %12.2f %16llu %10llu %10llu %18.2f %12s\n",
                m.name.c_str(), m.wall_ms,
                static_cast<unsigned long long>(m.elapsed_cycles),
                static_cast<unsigned long long>(m.stats.epochs),
                static_cast<unsigned long long>(m.stats.barriers),
                event_parallelism(m), speedup);
  }
  if (any_limited) {
    std::printf("  * cores_limited: host has %u core(s), fewer than the shard "
                "count — wall clock measures thread thrash, not speedup\n",
                hw);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool fast = std::getenv("CNI_BENCH_FAST") != nullptr;
  std::uint32_t procs_arg = 0;
  std::uint32_t n_arg = 0;
  std::uint32_t iters_arg = 0;
  std::uint32_t rounds_arg = 0;
  const char* point_filter = nullptr;
  const char* mode_filter = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
    if (std::strncmp(argv[i], "--point=", 8) == 0) point_filter = argv[i] + 8;
    if (std::strncmp(argv[i], "--modes=", 8) == 0) mode_filter = argv[i] + 8;
    if (std::strncmp(argv[i], "--procs=", 8) == 0) {
      procs_arg = static_cast<std::uint32_t>(std::atoi(argv[i] + 8));
    }
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n_arg = static_cast<std::uint32_t>(std::atoi(argv[i] + 4));
    }
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters_arg = static_cast<std::uint32_t>(std::atoi(argv[i] + 8));
    }
    if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds_arg = static_cast<std::uint32_t>(std::atoi(argv[i] + 9));
    }
  }

  // Full-size defaults: pingpong runs long enough (~1s+ per mode) that wall
  // numbers average over scheduler noise; jacobi needs few iterations — its
  // event-parallelism is iteration-invariant and its walls are dominated by
  // per-epoch rendezvous, so more iterations only repeat the same message.
  const std::uint32_t processors = procs_arg != 0 ? procs_arg : (fast ? 64 : 256);
  const std::uint32_t rounds = rounds_arg != 0 ? rounds_arg : (fast ? 5 : 200);
  cni::apps::JacobiConfig cfg;
  // Several rows per node: the inter-barrier phases (stencil compute plus
  // the boundary-page fault storm) carry concurrently active nodes; the
  // per-iteration barrier is inherently serial at node 0.
  cfg.n = n_arg != 0 ? n_arg : 4 * processors;
  cfg.iterations = iters_arg != 0 ? iters_arg : (fast ? 3 : 5);

  std::vector<Point> points;

  // --point=/--modes= narrow a run for profiling or A/B timing; the pinned
  // BENCH_parsim.json snapshot always comes from an unfiltered run.
  const auto point_wanted = [&](const char* name) {
    return point_filter == nullptr || std::strcmp(point_filter, name) == 0;
  };
  const auto mode_wanted = [&](const ModeSpec& spec) {
    if (mode_filter == nullptr) return true;
    const char* hit = std::strstr(mode_filter, spec.name);
    if (hit == nullptr) return false;
    const char end = hit[std::strlen(spec.name)];
    return (hit == mode_filter || hit[-1] == ',') && (end == '\0' || end == ',');
  };

  // All modes of a point share one process, and the first run pays every
  // first-touch page fault while later runs reuse warm allocator arenas —
  // tens of seconds of pure memory-system bias at the full jacobi size. One
  // untimed warm-up run per point pays that cost before anything is timed.
  constexpr ModeSpec kWarmup{"warmup", 1, true, true};

  if (point_wanted("pingpong")) {
    Point ping;
    ping.name = "pingpong";
    ping.config = {{"processors", processors}, {"rounds", rounds}};
    run_pingpong_mode(kWarmup, processors, rounds);
    for (const ModeSpec& spec : kModes) {
      if (mode_wanted(spec)) ping.modes.push_back(run_pingpong_mode(spec, processors, rounds));
    }
    ping.check_determinism();
    if (!ping.modes.empty()) points.push_back(std::move(ping));
  }

  if (point_wanted("jacobi")) {
    Point jac;
    jac.name = "jacobi";
    jac.config = {{"processors", processors}, {"n", cfg.n}, {"iterations", cfg.iterations}};
    run_jacobi_mode(kWarmup, processors, cfg);
    for (const ModeSpec& spec : kModes) {
      if (mode_wanted(spec)) jac.modes.push_back(run_jacobi_mode(spec, processors, cfg));
    }
    jac.check_determinism();
    if (!jac.modes.empty()) points.push_back(std::move(jac));
  }

  if (json) {
    print_json(points);
  } else {
    std::printf("micro_parsim: legacy vs sharded event engines, %u processors\n",
                processors);
    for (const Point& p : points) print_table(p);
    std::printf(
        "\nevent_parallelism = events_total / critical_path_events: the\n"
        "machine-independent speedup bound an ideal K-core host approaches.\n");
  }
  return 0;
}
