// Parallel-in-run simulation benchmark (DESIGN.md §12).
//
// Two 256-processor points, each run under the legacy single-engine mode and
// the sharded mode at K = 1, 2, 4:
//
//   * pingpong — every node exchanges request/reply frames with a neighbour
//     (handler-serviced, no DSM), with a small deterministic per-round
//     compute jitter so event times decorrelate. All nodes are active the
//     whole run: this is the event-dense regime shard parallelism exists
//     for, and the headline point BENCH_parsim.json pins.
//   * jacobi — a fig04-class DSM point (4 rows per node). Its inter-barrier
//     fault storms parallelize, but the per-iteration barrier serializes
//     through node 0, so its event-parallelism stays near 1 — recorded as
//     the honest bound for barrier-dominated applications.
//
// Each mode reports two speedup views:
//
//   * measured wall-clock (host-dependent: on a single-core host K > 1 buys
//     nothing and the epoch rendezvous costs a little);
//   * event-parallelism from the deterministic EpochStats — total events
//     divided by the critical path (the busiest shard's events summed over
//     epochs). This is the speedup an ideal K-core host can approach and is
//     byte-identical on every machine, which is why BENCH_parsim.json pins
//     it alongside the local wall measurement (context block says how many
//     CPUs the wall numbers had to work with).
//
// The binary also cross-checks the headline determinism claim: the simulated
// elapsed cycles must be identical for every K (legacy may differ in the
// last digits; see SimParams::sim_shards).
//
// Usage: micro_parsim [--json] [--fast] [--procs=N] [--n=N] [--iters=N]
//        [--rounds=N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/jacobi.hpp"
#include "apps/runner.hpp"
#include "cluster/cluster.hpp"
#include "nic/wire.hpp"
#include "sim/channel.hpp"
#include "util/check.hpp"

namespace {

struct ModeResult {
  std::string name;
  double wall_ms = 0;
  std::uint64_t elapsed_cycles = 0;
  cni::sim::EpochStats stats;  // zeros in legacy mode
};

cni::cluster::SimParams mode_params(std::uint32_t shards, std::uint32_t processors) {
  cni::cluster::SimParams params =
      cni::apps::make_params(cni::cluster::BoardKind::kCni, processors);
  params.fabric.switch_ports = processors;
  params.sim_shards = shards;
  return params;
}

ModeResult run_jacobi_mode(const std::string& name, std::uint32_t shards,
                           std::uint32_t processors,
                           const cni::apps::JacobiConfig& cfg) {
  const cni::cluster::SimParams params = mode_params(shards, processors);
  const auto t0 = std::chrono::steady_clock::now();
  const cni::apps::RunResult r = cni::apps::run_jacobi(params, cfg);
  const auto t1 = std::chrono::steady_clock::now();

  ModeResult m;
  m.name = name;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.elapsed_cycles = r.elapsed_cycles;
  m.stats = r.parsim;
  return m;
}

constexpr cni::nic::MsgType kPing = cni::nic::kTypeHandlerBase + 60;
constexpr cni::nic::MsgType kPong = cni::nic::kTypeAppBase + 60;

ModeResult run_pingpong_mode(const std::string& name, std::uint32_t shards,
                             std::uint32_t processors, std::uint32_t rounds) {
  using namespace cni;
  CNI_CHECK(processors % 2 == 0);
  cluster::Cluster cl(mode_params(shards, processors));

  // Request service on every board: bump a header field, reply. On a CNI
  // board this runs on the network processor, so the whole exchange is
  // NIC-to-NIC traffic — exactly the cross-node event stream the fabric's
  // lookahead governs.
  for (std::uint32_t n = 0; n < processors; ++n) {
    cl.node(n).board().install_handler(
        kPing,
        [&cl, n](nic::NicBoard::RxContext& ctx, const atm::Frame& f) {
          ctx.charge(120);
          const nic::MsgHeader in = f.header<nic::MsgHeader>();
          nic::MsgHeader h;
          h.type = kPong;
          h.src_node = n;
          h.seq = cl.node(n).board().next_seq();
          h.aux = in.aux + 1;
          ctx.send(atm::Frame::make(n, in.src_node, 1, h), {});
        },
        /*code_bytes=*/2048);
  }
  std::vector<std::unique_ptr<sim::SimChannel<atm::Frame>>> inboxes(processors);
  for (std::uint32_t n = 0; n < processors; ++n) {
    inboxes[n] = std::make_unique<sim::SimChannel<atm::Frame>>();
    cl.node(n).board().bind_channel(kPong, inboxes[n].get());
  }

  const auto t0 = std::chrono::steady_clock::now();
  cl.run([&](std::size_t i, sim::SimThread& t) {
    const auto self = static_cast<std::uint32_t>(i);
    const std::uint32_t partner = self ^ 1u;
    for (std::uint32_t k = 0; k < rounds; ++k) {
      // Deterministic per-(node, round) jitter: decorrelates the round-trip
      // phases so the fabric sees a steady mixed event stream instead of a
      // lock-step convoy.
      cl.node(i).cpu().compute(500 + (self * 2654435761u + k * 40503u) % 4096);
      cl.node(i).cpu().sync(t);
      nic::MsgHeader h;
      h.type = kPing;
      h.src_node = self;
      h.seq = cl.node(i).board().next_seq();
      h.aux = k;
      cl.node(i).board().send_from_host(t, atm::Frame::make(self, partner, 1, h), {});
      cl.node(i).board().receive_app(t, *inboxes[i]);
    }
  });
  const auto t1 = std::chrono::steady_clock::now();

  ModeResult m;
  m.name = name;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.elapsed_cycles = cl.elapsed_cpu_cycles();
  m.stats = cl.epoch_stats();
  return m;
}

double event_parallelism(const ModeResult& m) {
  return m.stats.critical_path_events == 0
             ? 1.0
             : static_cast<double>(m.stats.events_total) /
                   static_cast<double>(m.stats.critical_path_events);
}

struct Point {
  std::string name;
  std::vector<std::pair<std::string, std::uint64_t>> config;
  std::vector<ModeResult> modes;

  /// Sharded runs must agree exactly, whatever K.
  void check_determinism() const {
    for (const ModeResult& m : modes) {
      if (m.name != "legacy") {
        CNI_CHECK_MSG(m.elapsed_cycles == modes[1].elapsed_cycles,
                      "sharded runs diverged across K");
      }
    }
  }
};

void print_json(const std::vector<Point>& points) {
  std::printf("{\n  \"points\": {\n");
  for (std::size_t pi = 0; pi < points.size(); ++pi) {
    const Point& p = points[pi];
    std::printf("    \"%s\": {\n", p.name.c_str());
    for (const auto& [key, value] : p.config) {
      std::printf("      \"%s\": %llu,\n", key.c_str(),
                  static_cast<unsigned long long>(value));
    }
    std::printf("      \"modes\": {\n");
    const ModeResult& k1 = p.modes[1];
    for (std::size_t i = 0; i < p.modes.size(); ++i) {
      const ModeResult& m = p.modes[i];
      std::printf(
          "        \"%s\": {\"wall_ms\": %.2f, \"elapsed_cycles\": %llu, "
          "\"epochs\": %llu, \"events_total\": %llu, "
          "\"critical_path_events\": %llu, \"event_parallelism\": %.2f, "
          "\"wall_speedup_vs_k1\": %.2f}%s\n",
          m.name.c_str(), m.wall_ms,
          static_cast<unsigned long long>(m.elapsed_cycles),
          static_cast<unsigned long long>(m.stats.epochs),
          static_cast<unsigned long long>(m.stats.events_total),
          static_cast<unsigned long long>(m.stats.critical_path_events),
          event_parallelism(m), k1.wall_ms / m.wall_ms,
          i + 1 < p.modes.size() ? "," : "");
    }
    std::printf("      }\n    }%s\n", pi + 1 < points.size() ? "," : "");
  }
  std::printf("  }\n}\n");
}

void print_table(const Point& p) {
  std::printf("\n%s (", p.name.c_str());
  for (std::size_t i = 0; i < p.config.size(); ++i) {
    std::printf("%s%s=%llu", i != 0 ? ", " : "", p.config[i].first.c_str(),
                static_cast<unsigned long long>(p.config[i].second));
  }
  std::printf(")\n%-8s %12s %16s %10s %18s %16s\n", "mode", "wall_ms",
              "elapsed_cycles", "epochs", "event_parallelism", "wall_vs_k1");
  const ModeResult& k1 = p.modes[1];
  for (const ModeResult& m : p.modes) {
    std::printf("%-8s %12.2f %16llu %10llu %18.2f %16.2f\n", m.name.c_str(),
                m.wall_ms, static_cast<unsigned long long>(m.elapsed_cycles),
                static_cast<unsigned long long>(m.stats.epochs),
                event_parallelism(m), k1.wall_ms / m.wall_ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool fast = std::getenv("CNI_BENCH_FAST") != nullptr;
  std::uint32_t procs_arg = 0;
  std::uint32_t n_arg = 0;
  std::uint32_t iters_arg = 0;
  std::uint32_t rounds_arg = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
    if (std::strncmp(argv[i], "--procs=", 8) == 0) {
      procs_arg = static_cast<std::uint32_t>(std::atoi(argv[i] + 8));
    }
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n_arg = static_cast<std::uint32_t>(std::atoi(argv[i] + 4));
    }
    if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters_arg = static_cast<std::uint32_t>(std::atoi(argv[i] + 8));
    }
    if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds_arg = static_cast<std::uint32_t>(std::atoi(argv[i] + 9));
    }
  }

  // Full-size defaults: pingpong runs long enough (~1s+ per mode) that wall
  // numbers average over scheduler noise; jacobi needs few iterations — its
  // event-parallelism is iteration-invariant and its walls are dominated by
  // per-epoch rendezvous, so more iterations only repeat the same message.
  const std::uint32_t processors = procs_arg != 0 ? procs_arg : (fast ? 64 : 256);
  const std::uint32_t rounds = rounds_arg != 0 ? rounds_arg : (fast ? 5 : 200);
  cni::apps::JacobiConfig cfg;
  // Several rows per node: the inter-barrier phases (stencil compute plus
  // the boundary-page fault storm) carry concurrently active nodes; the
  // per-iteration barrier is inherently serial at node 0.
  cfg.n = n_arg != 0 ? n_arg : 4 * processors;
  cfg.iterations = iters_arg != 0 ? iters_arg : (fast ? 3 : 5);

  std::vector<Point> points;

  // All modes of a point share one process, and the first run pays every
  // first-touch page fault while later runs reuse warm allocator arenas —
  // tens of seconds of pure memory-system bias at the full jacobi size. One
  // untimed warm-up run per point pays that cost before anything is timed.
  Point ping;
  ping.name = "pingpong";
  ping.config = {{"processors", processors}, {"rounds", rounds}};
  run_pingpong_mode("warmup", 1, processors, rounds);
  for (const auto& [name, shards] :
       {std::pair<const char*, std::uint32_t>{"legacy", 0}, {"k1", 1}, {"k2", 2}, {"k4", 4}}) {
    ping.modes.push_back(run_pingpong_mode(name, shards, processors, rounds));
  }
  ping.check_determinism();
  points.push_back(std::move(ping));

  Point jac;
  jac.name = "jacobi";
  jac.config = {{"processors", processors}, {"n", cfg.n}, {"iterations", cfg.iterations}};
  run_jacobi_mode("warmup", 1, processors, cfg);
  for (const auto& [name, shards] :
       {std::pair<const char*, std::uint32_t>{"legacy", 0}, {"k1", 1}, {"k2", 2}, {"k4", 4}}) {
    jac.modes.push_back(run_jacobi_mode(name, shards, processors, cfg));
  }
  jac.check_determinism();
  points.push_back(std::move(jac));

  if (json) {
    print_json(points);
  } else {
    std::printf("micro_parsim: legacy vs sharded event engines, %u processors\n",
                processors);
    for (const Point& p : points) print_table(p);
    std::printf(
        "\nevent_parallelism = events_total / critical_path_events: the\n"
        "machine-independent speedup bound an ideal K-core host approaches.\n");
  }
  return 0;
}
