// Table 4: overhead breakdown for 8-processor Cholesky, matrix bcsstk14.
//
// Paper: CNI 3.39/61.8/21.5 vs standard 3.35/65.1/21.5 (10^9 cycles) —
// delay dominates (fine-grained synchronization), CNI reduces it.
#include "apps/cholesky.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "tab04_cholesky_overhead");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("table", "tab04");
  reporter.add_config("app", "cholesky");
  apps::CholeskyConfig cfg = apps::CholeskyConfig::bcsstk14();
  if (cni::bench::fast_mode()) cfg = apps::CholeskyConfig{256, 16, 2, 3, 1024, 2000};
  const auto cni =
      apps::run_cholesky(apps::make_params(cluster::BoardKind::kCni, 8), cfg, nullptr);
  const auto std_ = apps::run_cholesky(
      apps::make_params(cluster::BoardKind::kStandard, 8), cfg, nullptr);
  bench::print_overhead_table("Table 4: overhead, 8-processor Cholesky bcsstk14",
                              cni, std_);
  bench::report_overhead_table(reporter, cni, std_);
  return reporter.finish() ? 0 : 1;
}
