// Figure 8: Water speedup and network cache hit ratio, 343 molecules.
#include "apps/water.hpp"
#include "bench_common.hpp"

int main() {
  using namespace cni;
  apps::WaterConfig cfg{343, 2};
  const auto pts = bench::speedup_sweep(apps::run_water, cfg);
  bench::print_speedup_series("Figure 8: Water 343 molecules speedup / hit ratio", pts);
  return 0;
}
