// Figure 8: Water speedup and network cache hit ratio, 343 molecules.
#include "apps/water.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cni;
  obs::Reporter reporter(argc, argv, "fig08_water_speedup_343");
  cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("figure", "fig08");
  reporter.add_config("app", "water");
  apps::WaterConfig cfg{343, 2};
  const auto pts = bench::speedup_sweep(apps::run_water, cfg);
  bench::print_speedup_series("Figure 8: Water 343 molecules speedup / hit ratio", pts);
  bench::report_speedup_series(reporter, pts);
  return reporter.finish() ? 0 : 1;
}
