// Figure 14: best-possible node-to-node latency, CNI vs standard NIC.
//
// Paper §3.3: "we estimate the best possible node-to-node latency of the CNI
// (assuming a 100% network cache hit ratio) as compared to that in the
// standard network architecture... for a 4KB page size transfer, the
// communication latency is lower for the CNI architecture by as much as
// 33%." We replay the experiment: two nodes, one-way app-level transfers of
// 0..4096 bytes, the CNI's source buffer pre-warmed into the Message Cache.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "nic/wire.hpp"
#include "sim/channel.hpp"
#include "util/table.hpp"

namespace {

using namespace cni;

constexpr nic::MsgType kPingType = nic::kTypeAppBase + 1;

/// One-way latency for a message of `bytes`, measured at the receiver.
/// Reports one point per run when `rep` is active (this binary has no
/// RunResult, so the point is assembled from the cluster directly).
sim::SimDuration measure(cluster::BoardKind board, std::uint64_t bytes,
                         obs::Reporter* rep) {
  cluster::SimParams params = apps::make_params(board, 2);
  cluster::Cluster cl(params);

  sim::SimChannel<atm::Frame> rx;
  cl.node(1).board().bind_channel(kPingType, &rx);

  const mem::VAddr send_buf = mem::kSharedBase;            // sender's source page(s)
  const mem::VAddr recv_buf = mem::kSharedBase + (1ull << 20);  // receiver's posted buffer

  sim::SimTime send_start = 0;
  sim::SimTime arrival = 0;

  auto make_ping = [&](std::uint32_t seq_tag) {
    nic::MsgHeader h;
    h.type = kPingType;
    h.flags = nic::kFlagCacheable;
    h.src_node = 0;
    h.seq = cl.node(0).board().next_seq();
    h.aux = seq_tag;
    h.buffer_va = bytes != 0 ? recv_buf : 0;
    std::vector<std::byte> body(bytes);
    return atm::Frame::make(0, 1, 1, h, body);
  };

  cl.run([&](std::size_t i, sim::SimThread& t) {
    nic::NicBoard::SendOptions opts;
    opts.source_va = bytes != 0 ? send_buf : 0;
    opts.cacheable = true;
    if (i == 0) {
      // Warm-up transfer binds the buffer into the Message Cache (the
      // figure assumes a 100% hit); the second transfer is the measured one.
      cl.node(0).board().send_from_host(t, make_ping(1), opts);
      t.delay(2 * sim::kMillisecond);  // let the warm-up fully drain
      cl.node(0).cpu().sync(t);
      send_start = t.engine().now();
      cl.node(0).board().send_from_host(t, make_ping(2), opts);
    } else {
      (void)cl.node(1).board().receive_app(t, rx);  // warm-up
      (void)cl.node(1).board().receive_app(t, rx);  // measured
      arrival = t.engine().now();
    }
  });
  const sim::SimDuration latency = arrival - send_start;
  if (rep != nullptr && rep->active()) {
    const char* system = board == cluster::BoardKind::kCni ? "cni" : "standard";
    obs::ReportPoint pt;
    pt.label = std::string("bytes=") + std::to_string(bytes) + " system=" + system;
    pt.config = {{"bytes", std::to_string(bytes)}, {"system", system}};
    pt.values = {{"latency_us", sim::to_micros(latency)}};
    bench::fill_legacy(pt, cl.stats().total());
    pt.snapshot = cl.snapshot();
    rep->add_point(std::move(pt));
  }
  return latency;
}

}  // namespace

int main(int argc, char** argv) {
  cni::obs::Reporter reporter(argc, argv, "fig14_latency_micro");
  cni::cluster::apply_fabric_cli(argc, argv, &reporter);
  reporter.add_config("figure", "fig14");
  cni::util::Table t("Figure 14: node-to-node latency vs message size");
  t.set_header({"bytes", "CNI (us)", "Standard (us)", "reduction (%)"});
  double reduction_4k = 0;
  for (std::uint64_t bytes : {0ull, 512ull, 1024ull, 1536ull, 2048ull, 2560ull,
                              3072ull, 3584ull, 4096ull}) {
    const double cni = cni::sim::to_micros(
        measure(cni::cluster::BoardKind::kCni, bytes, &reporter));
    const double std_ = cni::sim::to_micros(
        measure(cni::cluster::BoardKind::kStandard, bytes, &reporter));
    const double red = 100.0 * (std_ - cni) / std_;
    if (bytes == 4096) reduction_4k = red;
    t.add_row(std::to_string(bytes), {cni, std_, red}, 2);
  }
  t.print();
  std::printf("\npaper: ~33%% lower latency for a 4 KB page transfer; measured: %.1f%%\n",
              reduction_4k);
  return reporter.finish() ? 0 : 1;
}
