// Observability overhead: what do the emit macros cost on a hot-path
// operation, per switch position?
//
//   ProbeCompiledOut  CNI_OBS_DISABLED twin TU — the uninstrumented
//                     reference (macros gone at preprocessing).
//   ProbeRuntimeOff   macros compiled in, null handles: the shipped default
//                     (one pointer test per site).
//   ProbeMetricsOn    histogram + gauge handles live, tracing off.
//   ProbeCausalOn     trace ring live, metrics handles null — isolates the
//                     trace-record sites (span + instant + causal).
//   ProbeTracingOn    full tracing into a ring (the --trace-out path).
//
// Plus an end-to-end pair: a small Jacobi run with the runtime trace switch
// off vs on — the whole-simulation view of the same question.
// scripts/bench_engine.py turns these into BENCH_obs.json.
#include <benchmark/benchmark.h>

#include "apps/jacobi.hpp"
#include "apps/runner.hpp"
#include "obs_probe.hpp"

namespace {

using namespace cni;
using bench::ProbeCtx;

void BM_ProbeCompiledOut(benchmark::State& state) {
  ProbeCtx ctx;
  for (auto _ : state) benchmark::DoNotOptimize(bench::probe_step_off(ctx));
}
BENCHMARK(BM_ProbeCompiledOut);

void BM_ProbeRuntimeOff(benchmark::State& state) {
  ProbeCtx ctx;  // handles stay null
  for (auto _ : state) benchmark::DoNotOptimize(bench::probe_step_on(ctx));
}
BENCHMARK(BM_ProbeRuntimeOff);

void BM_ProbeMetricsOn(benchmark::State& state) {
  obs::Metrics metrics;
  ProbeCtx ctx;
  ctx.hist = metrics.histogram("probe.wait_ps");
  ctx.gauge = metrics.gauge("probe.occupancy");
  for (auto _ : state) benchmark::DoNotOptimize(bench::probe_step_on(ctx));
}
BENCHMARK(BM_ProbeMetricsOn);

void BM_ProbeCausalOn(benchmark::State& state) {
  obs::Options opts;
  opts.trace = true;
  opts.trace_capacity = 4096;
  obs::NodeObs node(0, opts);
  ProbeCtx ctx;  // hist/gauge stay null: only the trace emits record
  ctx.node = &node;
  for (auto _ : state) benchmark::DoNotOptimize(bench::probe_step_on(ctx));
  state.counters["trace_recorded"] = static_cast<double>(node.ring().recorded());
}
BENCHMARK(BM_ProbeCausalOn);

void BM_ProbeTracingOn(benchmark::State& state) {
  obs::Options opts;
  opts.trace = true;
  opts.trace_capacity = 4096;
  obs::NodeObs node(0, opts);
  obs::Metrics metrics;
  ProbeCtx ctx;
  ctx.node = &node;
  ctx.hist = metrics.histogram("probe.wait_ps");
  ctx.gauge = metrics.gauge("probe.occupancy");
  for (auto _ : state) benchmark::DoNotOptimize(bench::probe_step_on(ctx));
  state.counters["trace_recorded"] = static_cast<double>(node.ring().recorded());
}
BENCHMARK(BM_ProbeTracingOn);

void run_jacobi_once(bool trace) {
  cluster::SimParams params = apps::make_params(cluster::BoardKind::kCni, 2);
  params.obs.trace = trace;
  params.obs.trace_capacity = 4096;
  const apps::RunResult r =
      apps::run_jacobi(params, apps::JacobiConfig{24, 3, 6}, nullptr);
  benchmark::DoNotOptimize(r.elapsed);
}

void BM_JacobiRuntimeOff(benchmark::State& state) {
  for (auto _ : state) run_jacobi_once(false);
}
BENCHMARK(BM_JacobiRuntimeOff)->Unit(benchmark::kMillisecond);

void BM_JacobiTracingOn(benchmark::State& state) {
  for (auto _ : state) run_jacobi_once(true);
}
BENCHMARK(BM_JacobiTracingOn)->Unit(benchmark::kMillisecond);

}  // namespace
