// Ablation: simulation-engine throughput — event dispatch rate and fiber
// context-switch rate, the two costs that bound how big a cluster run the
// harness can afford.
#include <benchmark/benchmark.h>

#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace {

using namespace cni::sim;

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    Engine e;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      e.schedule_at(static_cast<SimTime>(i), [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(100000);

void BM_SelfSchedulingEvent(benchmark::State& state) {
  // The engine's steady-state pattern: one event reschedules itself, so the
  // heap stays tiny and the cost is pure schedule/fire overhead.
  struct Tick {
    Engine* e;
    int* remaining;
    void operator()() const {
      if (--*remaining > 0) e->schedule_after(1, Tick{e, remaining});
    }
  };
  for (auto _ : state) {
    Engine e;
    int remaining = static_cast<int>(state.range(0));
    e.schedule_at(0, Tick{&e, &remaining});
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelfSchedulingEvent)->Arg(100000);

void BM_ScheduleCancel(benchmark::State& state) {
  // Timer-wheel style usage: schedule a timeout, then cancel it before it
  // fires. Indexed cancellation removes the event immediately, so the heap
  // never accumulates dead entries.
  for (auto _ : state) {
    Engine e;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      const EventId id = e.schedule_at(static_cast<SimTime>(i + 1), [] {});
      e.cancel(id);
    }
    e.run();
    benchmark::DoNotOptimize(e.events_cancelled());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScheduleCancel)->Arg(100000);

void BM_FiberSwitch(benchmark::State& state) {
  // Pins the _setjmp/_longjmp fast path in sim/process.cpp: after a fiber's
  // first ucontext entry, every switch is a user-space jmp_buf transfer with
  // no sigprocmask syscall. Builds defining CNI_FIBER_UCONTEXT_ONLY (the
  // sanitizer configs) fall back to swapcontext and will read ~10x slower
  // here; that gap is the cost this benchmark exists to keep visible.
  for (auto _ : state) {
    Engine e;
    const int n = static_cast<int>(state.range(0));
    SimThread t(e, "t", [n](SimThread& self) {
      for (int i = 0; i < n; ++i) self.delay(1);
    });
    e.run();
  }
  // Each delay is two context switches (out and back in).
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_FiberSwitch)->Arg(100000);

void BM_ThirtyTwoFibersRoundRobin(benchmark::State& state) {
  for (auto _ : state) {
    Engine e;
    std::vector<std::unique_ptr<SimThread>> ts;
    for (int i = 0; i < 32; ++i) {
      ts.push_back(std::make_unique<SimThread>(e, "t", [](SimThread& self) {
        for (int k = 0; k < 1000; ++k) self.delay(10);
      }));
    }
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 32 * 1000);
}
BENCHMARK(BM_ThirtyTwoFibersRoundRobin);

}  // namespace
