// Ablation: the zero-copy data path vs the copying one it replaced.
//
// Three hot loops, each with an in-binary "legacy" twin reproducing the
// pre-pool implementation:
//
//   * page send/receive round-trip — serialize a page-reply payload, carry
//     it through the event engine, parse it at the receiver. Pooled path:
//     headroom ByteWriter -> Frame::adopt -> FrameTask (inline, refcounted).
//     Legacy path: vector payload, header-prepend copy, std::function
//     capture copy, one more copy at delivery.
//   * diff create — word-wise XOR scanner vs the historical byte-wise scan
//     (both produce identical runs; see tests/test_dsm_units.cpp).
//   * diff apply — arena runs vs per-run owned vectors.
//
// The binary also *accounts allocations*: a global operator new/delete
// interposer counts heap calls, and the pooled round-trip reports
// heap_allocs_per_op (steady state: 0) next to the pool hit rate. The
// numbers land in BENCH_datapath.json via scripts/bench_engine.py.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <span>
#include <vector>

#include "atm/packet.hpp"
#include "dsm/diff.hpp"
#include "dsm/msg.hpp"
#include "dsm/wire_format.hpp"
#include "sim/engine.hpp"
#include "util/buf_pool.hpp"
#include "util/rng.hpp"

// ---- global allocation interposer (this binary only) -----------------------

// The replaced operators route through malloc/aligned_alloc + free, which is
// internally consistent; GCC's -Wmismatched-new-delete can't see that once
// the calls inline, so silence it for this benchmark TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) { return ::operator new(n, a); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace cni;

// ---- page round-trip -------------------------------------------------------

nic::MsgHeader page_header(std::uint32_t len) {
  nic::MsgHeader h;
  h.type = nic::kTypeHandlerBase + 7;
  h.flags = nic::kFlagCacheable;
  h.src_node = 1;
  h.aux = len;
  return h;
}

/// Pooled path, shaped like DsmRuntime::fetch_page_data / on_page_reply:
/// serialize into a headroom writer, patch the header in place, adopt the
/// buffer as the frame payload, hop through the engine, parse a backed
/// reader at the receiver. One pool allocation, zero copies after it.
void BM_PageRoundTripPooled(benchmark::State& state) {
  const std::uint32_t page = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::byte> image(page, std::byte{0x5C});
  const nic::MsgHeader hdr = page_header(page);

  std::uint64_t sink = 0;
  sim::Engine e;
  // Warm the pool's size classes and the engine's event storage before
  // counting, so the loop below measures the steady state.
  {
    dsm::ByteWriter w(dsm::kMsgHeadroom);
    w.bytes(image);
    e.schedule_after(1, [] {});
    e.run();
  }
  const std::uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  const auto pool_before = util::BufPool::local().stats();

  for (auto _ : state) {
    dsm::ByteWriter w(dsm::kMsgHeadroom);
    w.reserve(dsm::kMsgHeadroom + 4 + image.size());  // page size known up front
    w.bytes(image);
    util::Buf payload = std::move(w).take();
    std::memcpy(payload.data(), &hdr, sizeof hdr);
    atm::Frame f = atm::Frame::adopt(1, 0, 0, std::move(payload));
    e.schedule_after(1, atm::FrameTask(
                            [&sink](atm::Frame got) {
                              dsm::ByteReader r(got.payload, dsm::kMsgHeadroom);
                              const std::span<const std::byte> data = r.bytes();
                              sink += std::to_integer<std::uint64_t>(data.back());
                            },
                            std::move(f)));
    e.run();
  }
  benchmark::DoNotOptimize(sink);

  const auto pool_after = util::BufPool::local().stats();
  const std::uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["heap_allocs_per_op"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
  state.counters["pool_hits_per_op"] = benchmark::Counter(
      static_cast<double>(pool_after.hits - pool_before.hits) /
      static_cast<double>(state.iterations()));
  state.SetBytesProcessed(state.iterations() * page);
}
BENCHMARK(BM_PageRoundTripPooled)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192);

/// The pre-pool shape: vector payloads copied at every layer boundary and a
/// std::function event capture (heap-allocated, copies the frame again).
struct LegacyFrame {
  std::uint32_t src = 0, dst = 0, vci = 0;
  std::vector<std::byte> payload;
};

void BM_PageRoundTripLegacy(benchmark::State& state) {
  const std::uint32_t page = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::byte> image(page, std::byte{0x5C});
  const nic::MsgHeader hdr = page_header(page);

  std::uint64_t sink = 0;
  sim::Engine e;
  for (auto _ : state) {
    // Body serialization into a fresh vector (alloc + copy)...
    std::vector<std::byte> body(4 + image.size());
    const std::uint32_t n = static_cast<std::uint32_t>(image.size());
    std::memcpy(body.data(), &n, 4);
    std::memcpy(body.data() + 4, image.data(), image.size());
    // ...header-prepend into the frame payload (alloc + copy)...
    LegacyFrame f;
    f.src = 1;
    f.payload.resize(sizeof hdr + body.size());
    std::memcpy(f.payload.data(), &hdr, sizeof hdr);
    std::memcpy(f.payload.data() + sizeof hdr, body.data(), body.size());
    // ...and a type-erased capture (heap) copying the frame once more.
    std::function<void()> deliver = [f, &sink]() {
      sink += std::to_integer<std::uint64_t>(f.payload.back());
    };
    e.schedule_after(1, std::move(deliver));
    e.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(state.iterations() * page);
}
BENCHMARK(BM_PageRoundTripLegacy)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192);

// ---- diff create / apply ---------------------------------------------------

/// Dirty pattern from the paper's column-striped pages: a 16-byte run every
/// 256 bytes, far enough apart that runs never merge.
std::vector<std::byte> dirtied(const std::vector<std::byte>& twin) {
  std::vector<std::byte> cur = twin;
  for (std::size_t off = 32; off + 16 <= cur.size(); off += 256) {
    for (std::size_t i = 0; i < 16; ++i) cur[off + i] ^= std::byte{0xFF};
  }
  return cur;
}

std::vector<std::byte> random_page(std::size_t n, std::uint64_t seed) {
  cni::util::SplitMix64 rng(seed);
  std::vector<std::byte> v(n);
  for (std::byte& b : v) b = static_cast<std::byte>(rng.next());
  return v;
}

void BM_DiffCreateWordWise(benchmark::State& state) {
  const std::size_t page = static_cast<std::size_t>(state.range(0));
  const std::vector<std::byte> twin = random_page(page, 0xD1FF);
  const std::vector<std::byte> cur = dirtied(twin);
  for (auto _ : state) {
    dsm::Diff d = dsm::make_diff(0, dsm::VectorClock(2), twin, cur);
    benchmark::DoNotOptimize(d.runs.data());
  }
  state.SetBytesProcessed(state.iterations() * page);
}
BENCHMARK(BM_DiffCreateWordWise)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192);

/// The historical differ: byte-at-a-time compare, each run owning a
/// std::vector<std::byte> of its bytes.
struct LegacyRun {
  std::uint32_t offset = 0;
  std::vector<std::byte> bytes;
};

std::vector<LegacyRun> legacy_make_diff(std::span<const std::byte> twin,
                                        std::span<const std::byte> cur) {
  std::vector<LegacyRun> runs;
  std::size_t i = 0;
  while (i < cur.size()) {
    if (twin[i] == cur[i]) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    std::size_t last = i;
    ++i;
    while (i < cur.size() && i - last <= 8) {
      if (twin[i] != cur[i]) last = i;
      ++i;
    }
    LegacyRun r;
    r.offset = static_cast<std::uint32_t>(start);
    r.bytes.assign(cur.begin() + static_cast<std::ptrdiff_t>(start),
                   cur.begin() + static_cast<std::ptrdiff_t>(last + 1));
    runs.push_back(std::move(r));
    i = last + 1;
  }
  return runs;
}

void BM_DiffCreateByteWise(benchmark::State& state) {
  const std::size_t page = static_cast<std::size_t>(state.range(0));
  const std::vector<std::byte> twin = random_page(page, 0xD1FF);
  const std::vector<std::byte> cur = dirtied(twin);
  for (auto _ : state) {
    std::vector<LegacyRun> runs = legacy_make_diff(twin, cur);
    benchmark::DoNotOptimize(runs.data());
  }
  state.SetBytesProcessed(state.iterations() * page);
}
BENCHMARK(BM_DiffCreateByteWise)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192);

void BM_DiffApplyPooled(benchmark::State& state) {
  const std::size_t page = static_cast<std::size_t>(state.range(0));
  const std::vector<std::byte> twin = random_page(page, 0xD1FF);
  const std::vector<std::byte> cur = dirtied(twin);
  const dsm::Diff d = dsm::make_diff(0, dsm::VectorClock(2), twin, cur);
  std::vector<std::byte> target = twin;
  for (auto _ : state) {
    dsm::apply_diff(d, target);
    benchmark::DoNotOptimize(target.data());
  }
  state.SetBytesProcessed(state.iterations() * page);
}
BENCHMARK(BM_DiffApplyPooled)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192);

void BM_DiffApplyLegacy(benchmark::State& state) {
  const std::size_t page = static_cast<std::size_t>(state.range(0));
  const std::vector<std::byte> twin = random_page(page, 0xD1FF);
  const std::vector<std::byte> cur = dirtied(twin);
  const std::vector<LegacyRun> runs = legacy_make_diff(twin, cur);
  std::vector<std::byte> target = twin;
  for (auto _ : state) {
    // The old apply also re-materialized each run before the memcpy.
    for (const LegacyRun& r : runs) {
      std::vector<std::byte> staged = r.bytes;
      std::memcpy(target.data() + r.offset, staged.data(), staged.size());
    }
    benchmark::DoNotOptimize(target.data());
  }
  state.SetBytesProcessed(state.iterations() * page);
}
BENCHMARK(BM_DiffApplyLegacy)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192);

}  // namespace
