// Kill-switch probe variant: this translation unit is compiled with
// -DCNI_OBS_DISABLED (see bench/CMakeLists.txt), so every emit macro in the
// shared body expands to nothing. See obs_probe.hpp.
#include "obs_probe.hpp"

#if CNI_OBS_ENABLED
#error "obs_probe_off.cpp must be compiled with CNI_OBS_DISABLED"
#endif

namespace cni::bench {

#define PROBE_STEP_NAME probe_step_off
#include "obs_probe_body.inc"
#undef PROBE_STEP_NAME

}  // namespace cni::bench
