// Application Interrupt Handlers as NIC-resident services (paper §2.3).
//
// "This can be thought of to be an extension of the Active Message Principle
// to the network interface... a barrier can be handled within the network
// adaptor board, eliminating the overhead of the application protocol
// stack."
//
// We install a tiny fetch-and-add counter service as handler code on node
// 0's board. Every other node fires increments at it and waits for the
// replies. On the CNI the service runs entirely on the 33 MHz network
// processor — node 0's host CPU never sees an interrupt; on the standard NIC
// every request interrupts node 0's host. The printed stats show exactly
// that difference.
#include <cstdio>

#include "apps/runner.hpp"
#include "cluster/cluster.hpp"
#include "nic/wire.hpp"
#include "sim/channel.hpp"

using namespace cni;

namespace {

constexpr nic::MsgType kFetchAdd = nic::kTypeHandlerBase + 50;
constexpr nic::MsgType kReply = nic::kTypeAppBase + 50;

struct Outcome {
  sim::SimTime elapsed;
  std::uint64_t server_interrupts;
  std::uint64_t server_stolen_overhead;
};

Outcome run(cluster::BoardKind kind, std::uint32_t nodes, int increments) {
  cluster::Cluster cl(apps::make_params(kind, nodes));

  // The NIC-resident service: parse, bump the counter, reply. ctx.charge
  // runs on the network processor for a CNI board, on the host after an
  // interrupt for a standard board — same code, different silicon.
  std::uint64_t counter = 0;
  cl.node(0).board().install_handler(
      kFetchAdd,
      [&](nic::NicBoard::RxContext& ctx, const atm::Frame& f) {
        ctx.charge(80);  // a few dozen instructions of handler object code
        const nic::MsgHeader in = f.header<nic::MsgHeader>();
        const std::uint64_t old = counter++;
        nic::MsgHeader h;
        h.type = kReply;
        h.src_node = 0;
        h.seq = cl.node(0).board().next_seq();
        h.aux = static_cast<std::uint32_t>(old);
        ctx.send(atm::Frame::make(0, in.src_node, 1, h), {});
      },
      /*code_bytes=*/2048);

  std::vector<std::unique_ptr<sim::SimChannel<atm::Frame>>> inboxes(nodes);
  for (std::uint32_t n = 1; n < nodes; ++n) {
    inboxes[n] = std::make_unique<sim::SimChannel<atm::Frame>>();
    cl.node(n).board().bind_channel(kReply, inboxes[n].get());
  }

  const sim::SimTime elapsed = cl.run([&](std::size_t i, sim::SimThread& t) {
    if (i == 0) {
      // The server's host is busy with its own work the whole time.
      cl.node(0).cpu().compute(3'000'000);
      cl.node(0).cpu().sync(t);
      return;
    }
    for (int k = 0; k < increments; ++k) {
      nic::MsgHeader h;
      h.type = kFetchAdd;
      h.src_node = static_cast<std::uint32_t>(i);
      h.seq = cl.node(i).board().next_seq();
      cl.node(i).board().send_from_host(t, atm::Frame::make(h.src_node, 0, 1, h), {});
      cl.node(i).board().receive_app(t, *inboxes[i]);
    }
  });

  return Outcome{elapsed, cl.stats().node(0).host_interrupts,
                 cl.stats().node(0).synch_overhead_cycles};
}

}  // namespace

int main() {
  const std::uint32_t nodes = 4;
  const int increments = 25;
  std::printf("fetch-and-add service on node 0, %d increments from each of %u clients\n\n",
              increments, nodes - 1);
  const Outcome cni = run(cluster::BoardKind::kCni, nodes, increments);
  const Outcome std_ = run(cluster::BoardKind::kStandard, nodes, increments);
  std::printf("                       CNI        standard\n");
  std::printf("elapsed            %8.1f us  %8.1f us\n", sim::to_micros(cni.elapsed),
              sim::to_micros(std_.elapsed));
  std::printf("server interrupts  %8llu    %8llu\n",
              static_cast<unsigned long long>(cni.server_interrupts),
              static_cast<unsigned long long>(std_.server_interrupts));
  std::printf("server CPU stolen  %8llu    %8llu cycles\n",
              static_cast<unsigned long long>(cni.server_stolen_overhead),
              static_cast<unsigned long long>(std_.server_stolen_overhead));
  std::printf("\nthe AIH keeps the protocol on the board: the CNI server's host CPU\n"
              "is never interrupted, which is the paper's \"barrier handled within\n"
              "the network adaptor board\" argument in miniature.\n");
  return 0;
}
