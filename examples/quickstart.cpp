// Quickstart: build a two-workstation CNI cluster and exchange a message
// through the Application Device Channel path.
//
//   $ ./build/examples/quickstart
//
// Walks the public API end to end: SimParams -> Cluster -> bind an app
// channel -> send/receive from simulated node programs -> read the stats.
#include <cstdio>

#include "apps/runner.hpp"
#include "cluster/cluster.hpp"
#include "nic/wire.hpp"
#include "sim/channel.hpp"

using namespace cni;

namespace {
constexpr nic::MsgType kHello = nic::kTypeAppBase + 1;
}

int main() {
  // 1. Table-1 parameters: 166 MHz hosts, 622 Mb/s ATM, 32 KB Message Cache.
  cluster::SimParams params = apps::make_params(cluster::BoardKind::kCni, 2);
  cluster::Cluster cl(params);

  // 2. Node 1 binds an ADC receive channel for our message type. On the CNI
  //    the PATHFINDER routes matching packets straight to it.
  sim::SimChannel<atm::Frame> inbox;
  cl.node(1).board().bind_channel(kHello, &inbox);

  const mem::VAddr buffer = mem::kSharedBase;  // the sender's 4 KB source buffer

  // 3. Run one program per node, in simulated time.
  const sim::SimTime elapsed = cl.run([&](std::size_t node, sim::SimThread& t) {
    if (node == 0) {
      for (int i = 0; i < 3; ++i) {
        nic::MsgHeader h;
        h.type = kHello;
        h.flags = nic::kFlagCacheable;  // ask the Message Cache to keep the buffer
        h.src_node = 0;
        h.seq = cl.node(0).board().next_seq();
        atm::Frame frame = atm::Frame::make(0, 1, /*vci=*/1, h,
                                            std::vector<std::byte>(4096));
        nic::NicBoard::SendOptions opts;
        opts.source_va = buffer;
        opts.source_len = 4096;
        opts.cacheable = true;
        const sim::SimTime before = t.engine().now();
        cl.node(0).board().send_from_host(t, std::move(frame), opts);
        std::printf("[node 0] send %d enqueued at t=%.2f us (host busy %.2f us)\n", i,
                    sim::to_micros(before), sim::to_micros(t.engine().now() - before));
        t.delay(sim::kMillisecond);
      }
    } else {
      for (int i = 0; i < 3; ++i) {
        atm::Frame f = cl.node(1).board().receive_app(t, inbox);
        std::printf("[node 1] got %zu bytes at t=%.2f us\n", f.payload.size(),
                    sim::to_micros(t.engine().now()));
      }
    }
  });

  // 4. The Message Cache served sends 2 and 3 without re-DMAing the buffer.
  const sim::NodeStats& s = cl.stats().node(0);
  std::printf("\nsimulated time: %.2f us\n", sim::to_micros(elapsed));
  std::printf("transmit lookups: %llu, hits: %llu (ratio %.1f%%)\n",
              static_cast<unsigned long long>(s.mcache_tx_lookups),
              static_cast<unsigned long long>(s.mcache_tx_hits), s.tx_hit_ratio_pct());
  std::printf("DMA transfers on node 0: %llu (first send only)\n",
              static_cast<unsigned long long>(s.dma_transfers));
  return 0;
}
