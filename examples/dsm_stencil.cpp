// Programming the cluster through the DSM API: a small heat-diffusion
// stencil written exactly like the paper's benchmark applications — shared
// arrays, barriers, block ownership — and run on both board types.
#include <cstdio>

#include "apps/runner.hpp"
#include "dsm/context.hpp"
#include "dsm/system.hpp"

using namespace cni;

namespace {

double run_stencil(cluster::BoardKind kind, std::uint32_t nodes, sim::SimTime* elapsed) {
  const std::uint32_t n = 64;
  const int steps = 10;
  cluster::Cluster cl(apps::make_params(kind, nodes));
  dsm::DsmSystem dsmsys(cl);
  const mem::VAddr cur = dsmsys.alloc_blocked(n * 8, "cur");
  const mem::VAddr nxt = dsmsys.alloc_blocked(n * 8, "nxt");
  const mem::VAddr out = dsmsys.alloc_at(8, "out", 0);

  *elapsed = cl.run([&](std::size_t id, sim::SimThread& t) {
    dsm::DsmContext ctx(dsmsys, id, t);
    const std::uint32_t me = ctx.self();
    const std::uint32_t lo = me * n / nodes;
    const std::uint32_t hi = (me + 1) * n / nodes;

    // Each node initializes the cells it owns.
    for (std::uint32_t i = lo; i < hi; ++i) {
      ctx.write<double>(cur + i * 8, i == 0 ? 100.0 : 0.0);
      ctx.write<double>(nxt + i * 8, 0.0);
    }
    ctx.barrier();

    for (int s = 0; s < steps; ++s) {
      for (std::uint32_t i = std::max(lo, 1u); i < std::min(hi, n - 1); ++i) {
        const double v = 0.5 * ctx.read<double>(cur + i * 8) +
                         0.25 * (ctx.read<double>(cur + (i - 1) * 8) +
                                 ctx.read<double>(cur + (i + 1) * 8));
        ctx.write<double>(nxt + i * 8, v);
        ctx.compute(12);
      }
      ctx.barrier();
      for (std::uint32_t i = std::max(lo, 1u); i < std::min(hi, n - 1); ++i) {
        ctx.write<double>(cur + i * 8, ctx.read<double>(nxt + i * 8));
      }
      ctx.barrier();
    }

    if (me == 0) {
      double heat = 0;
      for (std::uint32_t i = 0; i < n; ++i) heat += ctx.read<double>(cur + i * 8);
      ctx.write<double>(out, heat);
    }
    ctx.barrier();
  });

  // Read the published result through node 0's runtime (post-run).
  double heat;
  std::memcpy(&heat, dsmsys.runtime(0).access(out, 8, false), 8);
  return heat;
}

}  // namespace

int main() {
  std::printf("1-D heat stencil on 4 DSM nodes (barrier-synchronized strips)\n\n");
  for (auto [kind, name] : {std::pair{cluster::BoardKind::kCni, "CNI"},
                            std::pair{cluster::BoardKind::kStandard, "standard"}}) {
    sim::SimTime elapsed = 0;
    const double heat = run_stencil(kind, 4, &elapsed);
    std::printf("%-8s  total heat %.6f   simulated time %.1f us\n", name, heat,
                sim::to_micros(elapsed));
  }
  std::printf("\nboth interfaces compute the identical answer; the CNI just gets\n"
              "there sooner — which is the whole paper in one sentence.\n");
  return 0;
}
