// Page migration under distributed shared memory — the paper's Cholesky
// motif: "pages tend to move from the releaser to the acquirer; thus caching
// receive buffers helped performance a great deal."
//
// A token page hops around the ring under a lock; every hop migrates the
// page to the next node. With receive caching the forwarding node's board
// still holds the page it just received, so the migration transmits straight
// from the Message Cache. We run the same program on a CNI cluster and on a
// standard-NIC cluster and compare.
#include <cstdio>

#include "apps/runner.hpp"
#include "dsm/context.hpp"
#include "dsm/system.hpp"

using namespace cni;

namespace {

struct Result {
  sim::SimTime elapsed;
  double hit_ratio;
  std::uint64_t dma;
};

Result run_ring(cluster::BoardKind kind, std::uint32_t nodes, int rounds) {
  cluster::Cluster cl(apps::make_params(kind, nodes));
  dsm::DsmSystem dsmsys(cl);
  const mem::VAddr page = dsmsys.alloc(4096, "token-page");
  const mem::VAddr turn = dsmsys.alloc(8, "turn");

  const sim::SimTime elapsed = cl.run([&](std::size_t i, sim::SimThread& t) {
    dsm::DsmContext ctx(dsmsys, i, t);
    if (ctx.self() == 0) ctx.write<std::uint64_t>(turn, 0);
    ctx.barrier();
    const std::uint64_t total = static_cast<std::uint64_t>(rounds) * nodes;
    for (;;) {
      ctx.acquire(1);
      const std::uint64_t cur = ctx.read<std::uint64_t>(turn);
      if (cur >= total) {
        ctx.release(1);
        break;
      }
      if (cur % nodes == ctx.self()) {
        // Our turn: stamp the whole page and pass the token on.
        for (int w = 0; w < 512; ++w) {
          ctx.write<std::uint64_t>(page + w * 8, cur * 1000 + w);
        }
        ctx.write<std::uint64_t>(turn, cur + 1);
      }
      ctx.release(1);
      ctx.compute(2000);
    }
    ctx.barrier();
  });
  return Result{elapsed, cl.stats().tx_hit_ratio_pct(),
                cl.stats().total().dma_transfers};
}

}  // namespace

int main() {
  const std::uint32_t nodes = 4;
  const int rounds = 8;
  std::printf("token page migrating around %u nodes, %d rounds\n\n", nodes, rounds);
  const Result cni = run_ring(cluster::BoardKind::kCni, nodes, rounds);
  const Result std_ = run_ring(cluster::BoardKind::kStandard, nodes, rounds);
  std::printf("CNI:      %8.1f us, hit ratio %5.1f%%, DMA transfers %llu\n",
              sim::to_micros(cni.elapsed), cni.hit_ratio,
              static_cast<unsigned long long>(cni.dma));
  std::printf("standard: %8.1f us, hit ratio     —, DMA transfers %llu\n",
              sim::to_micros(std_.elapsed),
              static_cast<unsigned long long>(std_.dma));
  std::printf("\nCNI finishes %.1f%% sooner; transmit+receive caching removed %llu DMAs.\n",
              100.0 * (1.0 - static_cast<double>(cni.elapsed) /
                                 static_cast<double>(std_.elapsed)),
              static_cast<unsigned long long>(std_.dma - cni.dma));
  return 0;
}
