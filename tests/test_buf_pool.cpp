// util::BufPool / util::Buf: refcount lifecycle, size-class reuse, stats
// accounting, and cross-thread release (the parallel sweep-runner shape).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/buf_pool.hpp"

namespace cni::util {
namespace {

TEST(BufPool, ClassOfMapsPowersOfTwo) {
  EXPECT_EQ(BufPool::class_of(1), 0u);
  EXPECT_EQ(BufPool::class_of(64), 0u);
  EXPECT_EQ(BufPool::class_of(65), 1u);
  EXPECT_EQ(BufPool::class_of(128), 1u);
  EXPECT_EQ(BufPool::class_of(129), 2u);
  EXPECT_EQ(BufPool::class_of(64 * 1024), BufPool::kClassCount - 1);
  EXPECT_EQ(BufPool::class_of(64 * 1024 + 1), BufPool::kUnpooledClass);
}

TEST(BufPool, RefcountLifecycle) {
  Buf a = BufPool::local().alloc(100);
  EXPECT_TRUE(static_cast<bool>(a));
  EXPECT_EQ(a.size(), 100u);
  EXPECT_GE(a.capacity(), 128u);
  EXPECT_EQ(a.ref_count(), 1u);
  EXPECT_TRUE(a.unique());

  Buf b = a;  // copy shares
  EXPECT_EQ(a.ref_count(), 2u);
  EXPECT_EQ(b.data(), a.data());
  EXPECT_FALSE(a.unique());

  Buf c = std::move(b);  // move steals, no ref change
  EXPECT_EQ(a.ref_count(), 2u);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)

  c.reset();
  EXPECT_EQ(a.ref_count(), 1u);
  EXPECT_TRUE(a.unique());
}

TEST(BufPool, ReleaseAdoptRoundTrip) {
  Buf a = BufPool::local().alloc(32);
  std::memset(a.data(), 0x5A, 32);
  const std::byte* p = a.data();

  BufCtrl* raw = a.release();
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_NE(raw, nullptr);

  Buf back = Buf::adopt(raw);
  EXPECT_EQ(back.data(), p);
  EXPECT_EQ(back.ref_count(), 1u);
  EXPECT_EQ(std::to_integer<int>(back.span()[31]), 0x5A);
}

TEST(BufPool, SetSizeWithinCapacity) {
  Buf a = BufPool::local().alloc(10);
  EXPECT_EQ(a.size(), 10u);
  a.set_size(a.capacity());
  EXPECT_EQ(a.size(), a.capacity());
  a.set_size(0);
  EXPECT_TRUE(a.empty());
}

TEST(BufPool, SameClassAllocReusesFreedBlock) {
  BufPool& pool = BufPool::local();
  Buf a = pool.alloc(100);  // class 1 (128 B)
  const std::byte* p = a.data();
  a.reset();

  const BufPool::Stats before = pool.stats();
  Buf b = pool.alloc(120);  // same class: freelist LIFO hands the block back
  EXPECT_EQ(b.data(), p);
  const BufPool::Stats after = pool.stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(BufPool, AllocZeroedIsZeroFilled) {
  Buf a = BufPool::local().alloc(256);
  std::memset(a.data(), 0xFF, 256);
  a.reset();  // dirty block back onto the freelist
  Buf b = BufPool::local().alloc_zeroed(256);
  for (std::byte v : b.span()) EXPECT_EQ(std::to_integer<int>(v), 0);
}

TEST(BufPool, OversizeBlocksBypassThePool) {
  BufPool& pool = BufPool::local();
  const BufPool::Stats before = pool.stats();
  Buf a = pool.alloc(128 * 1024);  // > kMaxClassBytes
  EXPECT_EQ(a.size(), 128u * 1024);
  const BufPool::Stats mid = pool.stats();
  EXPECT_EQ(mid.misses, before.misses + 1);
  EXPECT_EQ(mid.outstanding, before.outstanding);  // not pool-owned
  a.reset();  // straight back to the heap, not a freelist
  Buf b = pool.alloc(128 * 1024);
  EXPECT_EQ(pool.stats().misses, before.misses + 2);
}

TEST(BufPool, OutstandingTracksLivePooledBlocks) {
  BufPool& pool = BufPool::local();
  const std::uint64_t base = pool.stats().outstanding;
  Buf a = pool.alloc(64);
  Buf b = pool.alloc(64);
  EXPECT_EQ(pool.stats().outstanding, base + 2);
  Buf c = a;  // sharing does not change the live-block count
  EXPECT_EQ(pool.stats().outstanding, base + 2);
  c.reset();
  a.reset();
  b.reset();
  EXPECT_EQ(pool.stats().outstanding, base);
}

TEST(BufPool, SteadyStateLoopIsAllHits) {
  BufPool& pool = BufPool::local();
  { Buf warm = pool.alloc(4096); }  // prime the size class
  const BufPool::Stats before = pool.stats();
  for (int i = 0; i < 1000; ++i) {
    Buf b = pool.alloc(4096);
    b.span()[0] = std::byte{1};
  }
  const BufPool::Stats after = pool.stats();
  EXPECT_EQ(after.hits, before.hits + 1000);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(BufPool, CrossThreadReleaseRefurbishes) {
  BufPool& pool = BufPool::local();
  Buf a = pool.alloc(300);  // class 3 (512 B)
  std::memset(a.data(), 0x42, 300);
  const std::byte* p = a.data();
  const BufPool::Stats before = pool.stats();

  std::thread releaser([buf = std::move(a)]() mutable {
    EXPECT_EQ(std::to_integer<int>(buf.span()[299]), 0x42);
    buf.reset();  // remote free: lands on the owner's Treiber stack
  });
  releaser.join();

  const BufPool::Stats mid = pool.stats();
  EXPECT_EQ(mid.remote_frees, before.remote_frees + 1);
  EXPECT_EQ(mid.outstanding, before.outstanding - 1);

  // The block sits on the remote stack until a local miss refurbishes it.
  Buf b = pool.alloc(300);
  EXPECT_EQ(b.data(), p);
  const BufPool::Stats after = pool.stats();
  EXPECT_GE(after.refurbished, mid.refurbished + 1);
}

TEST(BufPool, BufOutlivesOwningThread) {
  // A sweep job's pool must stay valid for buffers that escape the thread:
  // the last release (here, on the main thread) deletes the pool.
  Buf escaped;
  std::thread worker([&escaped] {
    escaped = BufPool::local().alloc(1000);
    std::memset(escaped.data(), 0x7E, 1000);
  });
  worker.join();  // owning thread gone; pool kept alive by the block
  EXPECT_EQ(escaped.size(), 1000u);
  for (std::byte v : escaped.span()) EXPECT_EQ(std::to_integer<int>(v), 0x7E);
  escaped.reset();  // elects this thread as the pool's deleter
}

TEST(BufPool, FourThreadCrossReleaseStress) {
  // The parallel sweep shape under CNI_BENCH_JOBS=4: four threads allocate
  // from their own pools; every buffer is released by a *different* thread.
  static constexpr int kThreads = 4;
  static constexpr int kPerThread = 256;
  std::mutex mu;
  std::vector<Buf> handoff;

  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([t, &mu, &handoff] {
      for (int i = 0; i < kPerThread; ++i) {
        Buf b = BufPool::local().alloc(64 + static_cast<std::size_t>(i));
        std::memset(b.data(), t + 1, b.size());
        const std::lock_guard<std::mutex> lock(mu);
        handoff.push_back(std::move(b));
      }
    });
  }
  for (std::thread& p : producers) p.join();

  ASSERT_EQ(handoff.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::vector<std::thread> consumers;
  consumers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    consumers.emplace_back([t, &mu, &handoff] {
      for (int i = t; i < kThreads * kPerThread; i += kThreads) {
        Buf b;
        {
          const std::lock_guard<std::mutex> lock(mu);
          b = std::move(handoff[static_cast<std::size_t>(i)]);
        }
        const int tag = std::to_integer<int>(b.span()[0]);
        EXPECT_GE(tag, 1);
        EXPECT_LE(tag, kThreads);
        for (std::byte v : b.span()) EXPECT_EQ(std::to_integer<int>(v), tag);
        // b drops here — almost always a cross-thread release.
      }
    });
  }
  for (std::thread& c : consumers) c.join();
}

}  // namespace
}  // namespace cni::util
