#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"

namespace cni::sim {
namespace {

TEST(SimThread, DelayAdvancesSimulatedTime) {
  Engine e;
  SimTime seen = 0;
  SimThread t(e, "t", [&](SimThread& self) {
    self.delay(100);
    seen = e.now();
    self.delay(50);
  });
  e.run();
  EXPECT_TRUE(t.finished());
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(e.now(), 150u);
}

TEST(SimThread, InterleavesWithEvents) {
  Engine e;
  std::vector<int> order;
  SimThread t(e, "t", [&](SimThread& self) {
    order.push_back(1);
    self.delay(100);
    order.push_back(3);
  });
  e.schedule_at(50, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimThread, BlockAndWake) {
  Engine e;
  SimTime woke_at = 0;
  SimThread t(e, "t", [&](SimThread& self) {
    self.block();
    woke_at = e.now();
  });
  e.schedule_at(500, [&] { t.wake(); });
  e.run();
  EXPECT_TRUE(t.finished());
  EXPECT_EQ(woke_at, 500u);
}

TEST(SimThread, DoubleWakeSameInstantIsIdempotent) {
  Engine e;
  int resumes = 0;
  SimThread t(e, "t", [&](SimThread& self) {
    self.block();
    ++resumes;
    self.delay(10);  // would explode if a second resume were pending
  });
  e.schedule_at(5, [&] {
    t.wake();
    t.wake();
  });
  e.run();
  EXPECT_EQ(resumes, 1);
}

TEST(SimThread, BodyExceptionPropagatesToRun) {
  Engine e;
  SimThread t(e, "t", [&](SimThread&) { throw std::runtime_error("boom"); });
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(SimThread, ManyThreadsDeterministicInterleaving) {
  std::vector<SimTime> first_run;
  for (int rep = 0; rep < 2; ++rep) {
    Engine e;
    std::vector<SimTime> log;
    std::vector<std::unique_ptr<SimThread>> ts;
    for (int i = 0; i < 16; ++i) {
      ts.push_back(std::make_unique<SimThread>(e, "t", [&log, i](SimThread& self) {
        for (int k = 0; k < 5; ++k) {
          self.delay(static_cast<SimDuration>(10 + i));
          log.push_back(self.engine().now());
        }
      }));
    }
    e.run();
    if (rep == 0) {
      first_run = log;
    } else {
      EXPECT_EQ(log, first_run);
    }
  }
}

TEST(LocalClock, AccumulatesAndSyncs) {
  Engine e;
  LocalClock lc(Clock{1'000'000'000});  // 1 GHz: 1 cycle = 1 ns
  SimThread t(e, "t", [&](SimThread& self) {
    lc.charge_cycles(100);
    lc.charge_cycles(50);
    EXPECT_EQ(lc.pending_cycles(), 150u);
    lc.sync(self);
    EXPECT_EQ(lc.pending_cycles(), 0u);
  });
  e.run();
  EXPECT_EQ(e.now(), 150u * kNanosecond);
}

TEST(WaitQueue, PredicateLoop) {
  Engine e;
  bool flag = false;
  WaitQueue wq;
  SimTime resumed = 0;
  SimThread t(e, "t", [&](SimThread& self) {
    wq.wait(self, [&] { return flag; });
    resumed = e.now();
  });
  // A notify without the predicate being true re-parks the waiter.
  e.schedule_at(10, [&] { wq.notify_all(); });
  e.schedule_at(20, [&] {
    flag = true;
    wq.notify_all();
  });
  e.run();
  EXPECT_EQ(resumed, 20u);
}

TEST(SimChannel, BlockingReceive) {
  Engine e;
  SimChannel<int> ch;
  int got = 0;
  SimTime when = 0;
  SimThread t(e, "rx", [&](SimThread& self) {
    got = ch.receive(self);
    when = e.now();
  });
  e.schedule_at(77, [&] { ch.send(42); });
  e.run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(when, 77u);
}

TEST(SimChannel, FifoOrder) {
  Engine e;
  SimChannel<int> ch;
  std::vector<int> got;
  SimThread t(e, "rx", [&](SimThread& self) {
    for (int i = 0; i < 3; ++i) got.push_back(ch.receive(self));
  });
  e.schedule_at(1, [&] {
    ch.send(1);
    ch.send(2);
    ch.send(3);
  });
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(SimSemaphore, LimitsConcurrency) {
  Engine e;
  SimSemaphore sem(1);
  int inside = 0;
  int max_inside = 0;
  std::vector<std::unique_ptr<SimThread>> ts;
  for (int i = 0; i < 4; ++i) {
    ts.push_back(std::make_unique<SimThread>(e, "t", [&](SimThread& self) {
      sem.acquire(self);
      ++inside;
      max_inside = std::max(max_inside, inside);
      self.delay(100);
      --inside;
      sem.release();
    }));
  }
  e.run();
  EXPECT_EQ(max_inside, 1);
  EXPECT_EQ(e.now(), 400u);  // fully serialized
}

}  // namespace
}  // namespace cni::sim
