#include <gtest/gtest.h>

#include "mem/bus.hpp"
#include "mem/tlb.hpp"
#include "sim/engine.hpp"

namespace cni::mem {
namespace {

TEST(MemoryBus, TransactionTimeMatchesTable1) {
  sim::Engine e;
  MemoryBus bus(e, BusParams{});
  // 4 KB = 512 words: (4 + 2*512) bus cycles at 40 ns = 41.12 us.
  const sim::SimDuration d = bus.transaction_time(4096);
  EXPECT_EQ(d, (4 + 2 * 512) * 40000ull);
  // One word still pays acquisition.
  EXPECT_EQ(bus.transaction_time(8), (4 + 2) * 40000ull);
}

TEST(MemoryBus, DmaSerializes) {
  sim::Engine e;
  MemoryBus bus(e, BusParams{});
  const sim::SimTime t1 = bus.dma_read(0, 4096);
  const sim::SimTime t2 = bus.dma_read(0, 4096);
  EXPECT_EQ(t2, 2 * t1);  // second transfer queues behind the first
  EXPECT_EQ(bus.dma_transfers(), 2u);
  EXPECT_EQ(bus.dma_bytes(), 8192u);
}

TEST(MemoryBus, WritesAreSnooped) {
  sim::Engine e;
  MemoryBus bus(e, BusParams{});
  std::vector<std::pair<PAddr, std::uint64_t>> snooped;
  bus.add_snooper([&](PAddr a, std::uint64_t n) { snooped.emplace_back(a, n); });
  bus.cpu_write(0x100, 32);
  bus.dma_write(0, 0x2000, 4096);
  bus.dma_read(0, 4096);  // reads are NOT snooped
  ASSERT_EQ(snooped.size(), 2u);
  EXPECT_EQ(snooped[0], (std::pair<PAddr, std::uint64_t>{0x100, 32}));
  EXPECT_EQ(snooped[1], (std::pair<PAddr, std::uint64_t>{0x2000, 4096}));
}

TEST(PageTable, TranslateIsStableAndReversible) {
  PageTable pt{PageGeometry(4096)};
  const PAddr pa1 = pt.translate(0x7000'0123);
  const PAddr pa2 = pt.translate(0x7000'0456);
  EXPECT_EQ(pa1 & ~0xFFFull, pa2 & ~0xFFFull);  // same page, same frame
  EXPECT_EQ(pa1 & 0xFFFu, 0x123u);              // offset preserved
  EXPECT_EQ(pt.reverse(pa1), std::optional<VAddr>(0x7000'0123));
  EXPECT_EQ(pt.mapped_pages(), 1u);
}

TEST(PageTable, DistinctPagesDistinctFrames) {
  PageTable pt{PageGeometry(4096)};
  const PAddr a = pt.translate(0x1000);
  const PAddr b = pt.translate(0x2000);
  EXPECT_NE(a & ~0xFFFull, b & ~0xFFFull);
}

TEST(PageTable, ReverseOfUnmappedIsEmpty) {
  PageTable pt{PageGeometry(4096)};
  EXPECT_FALSE(pt.reverse(0xdead000).has_value());
}

TEST(Tlb, HitAfterMiss) {
  PageTable pt{PageGeometry(4096)};
  Tlb tlb(16, 20);
  auto resolve = [&](PageNum vpn) { return std::optional<PageNum>(pt.frame_of(vpn)); };
  std::uint64_t cycles = 0;
  auto r1 = tlb.lookup(5, resolve, &cycles);
  EXPECT_TRUE(r1.has_value());
  EXPECT_EQ(cycles, 20u);  // miss penalty charged
  cycles = 0;
  auto r2 = tlb.lookup(5, resolve, &cycles);
  EXPECT_EQ(r2, r1);
  EXPECT_EQ(cycles, 0u);  // hit: free
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.lookups(), 2u);
}

TEST(Tlb, InvalidateForcesMiss) {
  PageTable pt{PageGeometry(4096)};
  Tlb tlb(16, 20);
  auto resolve = [&](PageNum vpn) { return std::optional<PageNum>(pt.frame_of(vpn)); };
  std::uint64_t cycles = 0;
  tlb.lookup(5, resolve, &cycles);
  tlb.invalidate(5);
  cycles = 0;
  tlb.lookup(5, resolve, &cycles);
  EXPECT_EQ(cycles, 20u);
}

TEST(Tlb, ConflictingKeysEvict) {
  PageTable pt{PageGeometry(4096)};
  Tlb tlb(16, 20);  // direct-mapped: keys 5 and 21 share a slot
  auto resolve = [&](PageNum vpn) { return std::optional<PageNum>(pt.frame_of(vpn)); };
  std::uint64_t cycles = 0;
  tlb.lookup(5, resolve, &cycles);
  tlb.lookup(21, resolve, &cycles);
  cycles = 0;
  tlb.lookup(5, resolve, &cycles);
  EXPECT_EQ(cycles, 20u);  // was evicted by 21
}

TEST(Tlb, UnmappedResolvesEmpty) {
  Tlb tlb(16, 20);
  std::uint64_t cycles = 0;
  auto r = tlb.lookup(7, [](PageNum) { return std::optional<PageNum>{}; }, &cycles);
  EXPECT_FALSE(r.has_value());
}

}  // namespace
}  // namespace cni::mem
