// End-to-end application correctness: the DSM programs must compute the same
// answers as their serial references on both board types, for a spread of
// processor counts — this exercises every layer of the stack at once.
#include <gtest/gtest.h>

#include "apps/cholesky.hpp"
#include "apps/jacobi.hpp"
#include "apps/runner.hpp"
#include "apps/water.hpp"

namespace cni::apps {
namespace {

using cluster::BoardKind;

TEST(JacobiIntegration, SerialMatchesReference) {
  JacobiConfig cfg{16, 4, 6};
  double sum = 0;
  run_jacobi(make_params(BoardKind::kCni, 1), cfg, &sum);
  EXPECT_DOUBLE_EQ(sum, jacobi_reference_checksum(cfg));
}

TEST(JacobiIntegration, CniMatchesReferenceAcrossProcs) {
  JacobiConfig cfg{24, 3, 6};
  const double ref = jacobi_reference_checksum(cfg);
  for (std::uint32_t p : {2u, 3u, 4u}) {
    double sum = 0;
    run_jacobi(make_params(BoardKind::kCni, p), cfg, &sum);
    EXPECT_NEAR(sum, ref, std::abs(ref) * 1e-12) << "p=" << p;
  }
}

TEST(JacobiIntegration, StandardBoardComputesSameAnswer) {
  JacobiConfig cfg{24, 3, 6};
  double cni_sum = 0;
  double std_sum = 0;
  run_jacobi(make_params(BoardKind::kCni, 4), cfg, &cni_sum);
  run_jacobi(make_params(BoardKind::kStandard, 4), cfg, &std_sum);
  EXPECT_DOUBLE_EQ(cni_sum, std_sum);
}

TEST(JacobiIntegration, CniIsFasterThanStandard) {
  JacobiConfig cfg{32, 4, 6};
  const RunResult cni = run_jacobi(make_params(BoardKind::kCni, 4), cfg, nullptr);
  const RunResult std_ = run_jacobi(make_params(BoardKind::kStandard, 4), cfg, nullptr);
  EXPECT_LT(cni.elapsed, std_.elapsed);
}

TEST(WaterIntegration, MatchesReference) {
  WaterConfig cfg{27, 2};
  const double ref = water_reference_checksum(cfg);
  for (std::uint32_t p : {1u, 2u, 4u}) {
    double sum = 0;
    run_water(make_params(BoardKind::kCni, p), cfg, &sum);
    EXPECT_NEAR(sum, ref, std::abs(ref) * 1e-6) << "p=" << p;
  }
}

TEST(WaterIntegration, StandardBoardMatchesReference) {
  WaterConfig cfg{27, 2};
  const double ref = water_reference_checksum(cfg);
  double sum = 0;
  run_water(make_params(BoardKind::kStandard, 3), cfg, &sum);
  EXPECT_NEAR(sum, ref, std::abs(ref) * 1e-6);
}

TEST(CholeskyIntegration, MatchesReference) {
  CholeskyConfig cfg{64, 8, 2, 3};
  const double ref = cholesky_reference_checksum(cfg);
  for (std::uint32_t p : {1u, 2u, 4u}) {
    double sum = 0;
    run_cholesky(make_params(BoardKind::kCni, p), cfg, &sum);
    EXPECT_NEAR(sum, ref, std::abs(ref) * 1e-6) << "p=" << p;
  }
}

TEST(CholeskyIntegration, StandardBoardMatchesReference) {
  CholeskyConfig cfg{64, 8, 2, 3};
  const double ref = cholesky_reference_checksum(cfg);
  double sum = 0;
  run_cholesky(make_params(BoardKind::kStandard, 2), cfg, &sum);
  EXPECT_NEAR(sum, ref, std::abs(ref) * 1e-6);
}

TEST(Determinism, SameSeedSameResult) {
  JacobiConfig cfg{24, 3, 6};
  const RunResult a = run_jacobi(make_params(BoardKind::kCni, 4), cfg, nullptr);
  const RunResult b = run_jacobi(make_params(BoardKind::kCni, 4), cfg, nullptr);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.totals.messages_sent, b.totals.messages_sent);
  EXPECT_EQ(a.totals.mcache_tx_hits, b.totals.mcache_tx_hits);
}

}  // namespace
}  // namespace cni::apps
