// DSM building blocks: vector clocks, wire format, intervals, diffs.
#include <gtest/gtest.h>

#include "dsm/diff.hpp"
#include "dsm/interval.hpp"
#include "dsm/vector_clock.hpp"
#include "dsm/wire_format.hpp"

namespace cni::dsm {
namespace {

TEST(VectorClock, DominationAndConcurrency) {
  VectorClock a(3);
  VectorClock b(3);
  EXPECT_TRUE(a.dominated_by(b));  // equal clocks dominate each other
  b.advance(1);
  EXPECT_TRUE(a.dominated_by(b));
  EXPECT_FALSE(b.dominated_by(a));
  a.advance(0);
  EXPECT_TRUE(a.concurrent_with(b));
}

TEST(VectorClock, MergeIsPointwiseMax) {
  VectorClock a(3);
  a.set(0, 5);
  a.set(2, 1);
  VectorClock b(3);
  b.set(1, 7);
  b.set(2, 3);
  a.merge(b);
  EXPECT_EQ(a[0], 5u);
  EXPECT_EQ(a[1], 7u);
  EXPECT_EQ(a[2], 3u);
}

TEST(WireFormat, RoundTrip) {
  ByteWriter w;
  w.u32(42);
  w.u64(0xdeadbeefcafeULL);
  w.bytes(std::vector<std::byte>{std::byte{1}, std::byte{2}});
  VectorClock vc(2);
  vc.set(1, 9);
  w.clock(vc);
  ByteReader r(w.data());
  EXPECT_EQ(r.u32(), 42u);
  EXPECT_EQ(r.u64(), 0xdeadbeefcafeULL);
  EXPECT_EQ(r.bytes(), (std::vector<std::byte>{std::byte{1}, std::byte{2}}));
  EXPECT_EQ(r.clock(), vc);
  EXPECT_TRUE(r.done());
}

TEST(WireFormat, TruncatedPayloadAborts) {
  ByteWriter w;
  w.u32(1);
  ByteReader r(w.data());
  r.u32();
  EXPECT_DEATH(r.u64(), "truncated");
}

TEST(Interval, SerializeRoundTrip) {
  Interval iv;
  iv.writer = 3;
  iv.index = 17;
  iv.vc = VectorClock(4);
  iv.vc.set(3, 17);
  iv.pages = {5, 9, 100};
  ByteWriter w;
  iv.serialize(w);
  ByteReader r(w.data());
  const Interval out = Interval::deserialize(r);
  EXPECT_EQ(out.writer, 3u);
  EXPECT_EQ(out.index, 17u);
  EXPECT_EQ(out.vc, iv.vc);
  EXPECT_EQ(out.pages, iv.pages);
}

Interval make_interval(std::uint32_t w, std::uint32_t i) {
  Interval iv;
  iv.writer = w;
  iv.index = i;
  iv.vc = VectorClock(4);
  iv.vc.set(w, i);
  iv.pages = {static_cast<PageId>(i)};
  return iv;
}

TEST(IntervalStore, InsertDedupsAndCounts) {
  IntervalStore s;
  EXPECT_TRUE(s.insert(make_interval(0, 1)));
  EXPECT_FALSE(s.insert(make_interval(0, 1)));
  EXPECT_TRUE(s.insert(make_interval(0, 2)));
  EXPECT_TRUE(s.insert(make_interval(1, 1)));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(0, 2));
  EXPECT_FALSE(s.contains(0, 3));
}

TEST(IntervalStore, GapAborts) {
  IntervalStore s;
  s.insert(make_interval(0, 1));
  EXPECT_DEATH(s.insert(make_interval(0, 3)), "gap");
}

TEST(IntervalStore, UnseenByReturnsSuffixes) {
  IntervalStore s;
  for (std::uint32_t i = 1; i <= 5; ++i) s.insert(make_interval(0, i));
  for (std::uint32_t i = 1; i <= 2; ++i) s.insert(make_interval(1, i));
  VectorClock seen(4);
  seen.set(0, 3);
  const auto unseen = s.unseen_by(seen);
  ASSERT_EQ(unseen.size(), 4u);  // writer 0: 4,5; writer 1: 1,2
  EXPECT_EQ(unseen[0]->index, 4u);
  EXPECT_EQ(unseen[1]->index, 5u);
  EXPECT_EQ(unseen[2]->writer, 1u);
}

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

TEST(Diff, CapturesChangedRuns) {
  const auto twin = bytes_of("aaaaaaaaaaaaaaaaaaaaaaaa");
  auto cur = twin;
  cur[2] = std::byte{'X'};
  cur[3] = std::byte{'Y'};
  cur[20] = std::byte{'Z'};
  const Diff d = make_diff(1, VectorClock(2), twin, cur);
  ASSERT_EQ(d.runs.size(), 2u);
  EXPECT_EQ(d.runs[0].offset, 2u);
  EXPECT_EQ(d.runs[0].bytes.size(), 2u);
  EXPECT_EQ(d.runs[1].offset, 20u);
}

TEST(Diff, NearbyRunsCoalesce) {
  const auto twin = bytes_of("aaaaaaaaaaaaaaaaaaaaaaaa");
  auto cur = twin;
  cur[2] = std::byte{'X'};
  cur[6] = std::byte{'Y'};  // 3 equal bytes apart: joined into one run
  const Diff d = make_diff(1, VectorClock(2), twin, cur);
  ASSERT_EQ(d.runs.size(), 1u);
  EXPECT_EQ(d.runs[0].offset, 2u);
  EXPECT_EQ(d.runs[0].bytes.size(), 5u);
}

TEST(Diff, ApplyReconstructsCurrent) {
  const auto twin = bytes_of("the quick brown fox jumps over the lazy dog");
  auto cur = twin;
  cur[4] = std::byte{'Q'};
  cur[10] = std::byte{'B'};
  cur[42] = std::byte{'G'};  // last byte: runs at the buffer edge must apply
  const Diff d = make_diff(0, VectorClock(2), twin, cur);
  auto replay = twin;
  apply_diff(d, replay);
  EXPECT_EQ(replay, cur);
}

TEST(Diff, EmptyWhenIdentical) {
  const auto twin = bytes_of("same");
  EXPECT_TRUE(make_diff(0, VectorClock(1), twin, twin).empty());
}

TEST(Diff, SerializeRoundTrip) {
  const auto twin = bytes_of("0123456789abcdef");
  auto cur = twin;
  cur[0] = std::byte{'Z'};
  cur[15] = std::byte{'Q'};
  Diff d = make_diff(2, VectorClock(3), twin, cur);
  ByteWriter w;
  d.serialize(w);
  ByteReader r(w.data());
  const Diff out = Diff::deserialize(r);
  EXPECT_EQ(out.writer, 2u);
  ASSERT_EQ(out.runs.size(), d.runs.size());
  auto replay = twin;
  apply_diff(out, replay);
  EXPECT_EQ(replay, cur);
}

TEST(Diff, WholePageChange) {
  std::vector<std::byte> twin(4096, std::byte{0});
  std::vector<std::byte> cur(4096, std::byte{1});
  const Diff d = make_diff(0, VectorClock(1), twin, cur);
  ASSERT_EQ(d.runs.size(), 1u);
  EXPECT_EQ(d.runs[0].bytes.size(), 4096u);
  EXPECT_GT(d.payload_bytes(), 4096u);
}

}  // namespace
}  // namespace cni::dsm
