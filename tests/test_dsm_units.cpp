// DSM building blocks: vector clocks, wire format, intervals, diffs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>

#include "dsm/diff.hpp"
#include "dsm/interval.hpp"
#include "dsm/vector_clock.hpp"
#include "dsm/wire_format.hpp"
#include "util/buf_pool.hpp"
#include "util/rng.hpp"

namespace cni::dsm {
namespace {

TEST(VectorClock, DominationAndConcurrency) {
  VectorClock a(3);
  VectorClock b(3);
  EXPECT_TRUE(a.dominated_by(b));  // equal clocks dominate each other
  b.advance(1);
  EXPECT_TRUE(a.dominated_by(b));
  EXPECT_FALSE(b.dominated_by(a));
  a.advance(0);
  EXPECT_TRUE(a.concurrent_with(b));
}

TEST(VectorClock, MergeIsPointwiseMax) {
  VectorClock a(3);
  a.set(0, 5);
  a.set(2, 1);
  VectorClock b(3);
  b.set(1, 7);
  b.set(2, 3);
  a.merge(b);
  EXPECT_EQ(a[0], 5u);
  EXPECT_EQ(a[1], 7u);
  EXPECT_EQ(a[2], 3u);
}

TEST(WireFormat, RoundTrip) {
  ByteWriter w;
  w.u32(42);
  w.u64(0xdeadbeefcafeULL);
  w.bytes(std::vector<std::byte>{std::byte{1}, std::byte{2}});
  VectorClock vc(2);
  vc.set(1, 9);
  w.clock(vc);
  ByteReader r(w.data());
  EXPECT_EQ(r.u32(), 42u);
  EXPECT_EQ(r.u64(), 0xdeadbeefcafeULL);
  const std::span<const std::byte> got = r.bytes();
  const std::vector<std::byte> want{std::byte{1}, std::byte{2}};
  EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
  EXPECT_EQ(r.clock(), vc);
  EXPECT_TRUE(r.done());
}

TEST(WireFormat, TruncatedPayloadThrows) {
  ByteWriter w;
  w.u32(1);
  ByteReader r(w.data());
  r.u32();
  EXPECT_THROW(r.u64(), WireError);
}

TEST(WireFormat, OversizedClockCountThrowsBeforeAllocating) {
  ByteWriter w;
  w.u32(0xFFFFFFFFu);  // clock entry count far beyond the payload
  ByteReader r(w.data());
  EXPECT_THROW(r.clock(), WireError);
}

TEST(WireFormat, OversizedRunCountThrowsBeforeAllocating) {
  ByteWriter w;
  w.u32(7);            // writer
  w.clock(VectorClock(2));
  w.u32(0x40000000u);  // run count the payload cannot hold
  ByteReader r(w.data());
  EXPECT_THROW(Diff::deserialize(r), WireError);
}

TEST(Interval, SerializeRoundTrip) {
  Interval iv;
  iv.writer = 3;
  iv.index = 17;
  iv.vc = VectorClock(4);
  iv.vc.set(3, 17);
  iv.pages = {5, 9, 100};
  ByteWriter w;
  iv.serialize(w);
  ByteReader r(w.data());
  const Interval out = Interval::deserialize(r);
  EXPECT_EQ(out.writer, 3u);
  EXPECT_EQ(out.index, 17u);
  EXPECT_EQ(out.vc, iv.vc);
  EXPECT_EQ(out.pages, iv.pages);
}

Interval make_interval(std::uint32_t w, std::uint32_t i) {
  Interval iv;
  iv.writer = w;
  iv.index = i;
  iv.vc = VectorClock(4);
  iv.vc.set(w, i);
  iv.pages = {static_cast<PageId>(i)};
  return iv;
}

TEST(IntervalStore, InsertDedupsAndCounts) {
  IntervalStore s;
  EXPECT_TRUE(s.insert(make_interval(0, 1)));
  EXPECT_FALSE(s.insert(make_interval(0, 1)));
  EXPECT_TRUE(s.insert(make_interval(0, 2)));
  EXPECT_TRUE(s.insert(make_interval(1, 1)));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(0, 2));
  EXPECT_FALSE(s.contains(0, 3));
}

TEST(IntervalStore, GapAborts) {
  IntervalStore s;
  s.insert(make_interval(0, 1));
  EXPECT_DEATH(s.insert(make_interval(0, 3)), "gap");
}

TEST(IntervalStore, UnseenByReturnsSuffixes) {
  IntervalStore s;
  for (std::uint32_t i = 1; i <= 5; ++i) s.insert(make_interval(0, i));
  for (std::uint32_t i = 1; i <= 2; ++i) s.insert(make_interval(1, i));
  VectorClock seen(4);
  seen.set(0, 3);
  const auto unseen = s.unseen_by(seen);
  ASSERT_EQ(unseen.size(), 4u);  // writer 0: 4,5; writer 1: 1,2
  EXPECT_EQ(unseen[0]->index, 4u);
  EXPECT_EQ(unseen[1]->index, 5u);
  EXPECT_EQ(unseen[2]->writer, 1u);
}

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

TEST(Diff, CapturesChangedRuns) {
  const auto twin = bytes_of("aaaaaaaaaaaaaaaaaaaaaaaa");
  auto cur = twin;
  cur[2] = std::byte{'X'};
  cur[3] = std::byte{'Y'};
  cur[20] = std::byte{'Z'};
  const Diff d = make_diff(1, VectorClock(2), twin, cur);
  ASSERT_EQ(d.runs.size(), 2u);
  EXPECT_EQ(d.runs[0].offset, 2u);
  EXPECT_EQ(d.runs[0].len, 2u);
  EXPECT_EQ(d.runs[1].offset, 20u);
}

TEST(Diff, NearbyRunsCoalesce) {
  const auto twin = bytes_of("aaaaaaaaaaaaaaaaaaaaaaaa");
  auto cur = twin;
  cur[2] = std::byte{'X'};
  cur[6] = std::byte{'Y'};  // 3 equal bytes apart: joined into one run
  const Diff d = make_diff(1, VectorClock(2), twin, cur);
  ASSERT_EQ(d.runs.size(), 1u);
  EXPECT_EQ(d.runs[0].offset, 2u);
  EXPECT_EQ(d.runs[0].len, 5u);
}

TEST(Diff, ApplyReconstructsCurrent) {
  const auto twin = bytes_of("the quick brown fox jumps over the lazy dog");
  auto cur = twin;
  cur[4] = std::byte{'Q'};
  cur[10] = std::byte{'B'};
  cur[42] = std::byte{'G'};  // last byte: runs at the buffer edge must apply
  const Diff d = make_diff(0, VectorClock(2), twin, cur);
  auto replay = twin;
  apply_diff(d, replay);
  EXPECT_EQ(replay, cur);
}

TEST(Diff, EmptyWhenIdentical) {
  const auto twin = bytes_of("same");
  EXPECT_TRUE(make_diff(0, VectorClock(1), twin, twin).empty());
}

TEST(Diff, SerializeRoundTrip) {
  const auto twin = bytes_of("0123456789abcdef");
  auto cur = twin;
  cur[0] = std::byte{'Z'};
  cur[15] = std::byte{'Q'};
  Diff d = make_diff(2, VectorClock(3), twin, cur);
  ByteWriter w;
  d.serialize(w);
  ByteReader r(w.data());
  const Diff out = Diff::deserialize(r);
  EXPECT_EQ(out.writer, 2u);
  ASSERT_EQ(out.runs.size(), d.runs.size());
  auto replay = twin;
  apply_diff(out, replay);
  EXPECT_EQ(replay, cur);
}

TEST(Diff, WholePageChange) {
  std::vector<std::byte> twin(4096, std::byte{0});
  std::vector<std::byte> cur(4096, std::byte{1});
  const Diff d = make_diff(0, VectorClock(1), twin, cur);
  ASSERT_EQ(d.runs.size(), 1u);
  EXPECT_EQ(d.runs[0].len, 4096u);
  EXPECT_GT(d.payload_bytes(), 4096u);
}

TEST(Diff, JoinGapBoundary) {
  // Two dirty bytes kJoinGap apart coalesce; one byte further and they split.
  std::vector<std::byte> twin(64, std::byte{0});
  {
    auto cur = twin;
    cur[10] = std::byte{1};
    cur[10 + kJoinGap] = std::byte{1};
    const Diff d = make_diff(0, VectorClock(1), twin, cur);
    ASSERT_EQ(d.runs.size(), 1u);
    EXPECT_EQ(d.runs[0].offset, 10u);
    EXPECT_EQ(d.runs[0].len, kJoinGap + 1);
  }
  {
    auto cur = twin;
    cur[10] = std::byte{1};
    cur[10 + kJoinGap + 1] = std::byte{1};
    const Diff d = make_diff(0, VectorClock(1), twin, cur);
    ASSERT_EQ(d.runs.size(), 2u);
    EXPECT_EQ(d.runs[0].len, 1u);
    EXPECT_EQ(d.runs[1].offset, 10u + kJoinGap + 1);
  }
}

TEST(Diff, WordBoundaryStraddlingRuns) {
  // Changes crossing 8-byte word boundaries and in the non-word tail must
  // come out identical to a byte-wise scan.
  std::vector<std::byte> twin(67, std::byte{0x33});
  auto cur = twin;
  cur[7] = std::byte{0xA0};   // last byte of word 0
  cur[8] = std::byte{0xA1};   // first byte of word 1
  cur[63] = std::byte{0xA2};  // last full-word byte
  cur[66] = std::byte{0xA3};  // inside the 3-byte tail
  const Diff d = make_diff(0, VectorClock(1), twin, cur);
  ASSERT_EQ(d.runs.size(), 2u);
  EXPECT_EQ(d.runs[0].offset, 7u);
  EXPECT_EQ(d.runs[0].len, 2u);
  EXPECT_EQ(d.runs[1].offset, 63u);
  EXPECT_EQ(d.runs[1].len, 4u);
  auto replay = twin;
  apply_diff(d, replay);
  EXPECT_EQ(replay, cur);
}

/// Reference byte-wise differ: positions p < q land in one run iff
/// q - p <= kJoinGap. Used to cross-check the word-wise scanner.
std::vector<std::pair<std::uint32_t, std::uint32_t>> naive_runs(
    std::span<const std::byte> twin, std::span<const std::byte> cur) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;  // {offset, len}
  bool open = false;
  std::uint32_t first = 0;
  std::uint32_t last = 0;
  for (std::uint32_t i = 0; i < cur.size(); ++i) {
    if (twin[i] == cur[i]) continue;
    if (open && i - last <= kJoinGap) {
      last = i;
    } else {
      if (open) runs.emplace_back(first, last - first + 1);
      open = true;
      first = last = i;
    }
  }
  if (open) runs.emplace_back(first, last - first + 1);
  return runs;
}

TEST(Diff, RandomizedMatchesByteWiseReference) {
  util::SplitMix64 rng(0xD1FFBEEF2026ULL);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t len = 1 + rng.next_below(4096);
    std::vector<std::byte> twin(len);
    for (std::byte& b : twin) b = static_cast<std::byte>(rng.next());
    auto cur = twin;
    const std::uint64_t flips = rng.next_below(64);
    for (std::uint64_t i = 0; i < flips; ++i) {
      cur[rng.next_below(len)] ^= static_cast<std::byte>(1 + rng.next_below(255));
    }
    const Diff d = make_diff(1, VectorClock(2), twin, cur);
    const auto want = naive_runs(twin, cur);
    ASSERT_EQ(d.runs.size(), want.size()) << "trial " << trial;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(d.runs[i].offset, want[i].first) << "trial " << trial;
      EXPECT_EQ(d.runs[i].len, want[i].second) << "trial " << trial;
    }
    auto replay = twin;
    apply_diff(d, replay);
    EXPECT_EQ(replay, cur) << "trial " << trial;
  }
}

TEST(Diff, RandomizedSerializeRoundTripAndPayloadBytes) {
  util::SplitMix64 rng(0xC0FFEE2026ULL);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t len = 64 + rng.next_below(2048);
    std::vector<std::byte> twin(len, std::byte{0});
    auto cur = twin;
    const std::uint64_t flips = 1 + rng.next_below(40);
    for (std::uint64_t i = 0; i < flips; ++i) {
      cur[rng.next_below(len)] = static_cast<std::byte>(1 + rng.next_below(255));
    }
    VectorClock vc(4);
    vc.set(trial % 4, static_cast<std::uint32_t>(trial) + 1);
    const Diff d = make_diff(static_cast<std::uint32_t>(trial % 4), vc, twin, cur);

    ByteWriter w;
    d.serialize(w);
    // payload_bytes() must replay the exact serialization code path.
    EXPECT_EQ(d.payload_bytes(), w.data().size()) << "trial " << trial;

    ByteReader r(w.data());
    const Diff out = Diff::deserialize(r);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(out.writer, d.writer);
    EXPECT_EQ(out.vc, vc);
    auto replay = twin;
    apply_diff(out, replay);
    EXPECT_EQ(replay, cur) << "trial " << trial;
  }
}

TEST(Diff, ExtremeImagesRoundTrip) {
  // All-equal and all-different pages, word-multiple and ragged lengths.
  for (const std::size_t len : {8u * 512u, 4093u}) {
    std::vector<std::byte> twin(len, std::byte{0xAB});
    const Diff same = make_diff(0, VectorClock(1), twin, twin);
    EXPECT_TRUE(same.empty());
    EXPECT_EQ(same.payload_bytes(), [&] {
      ByteWriter w;
      same.serialize(w);
      return w.data().size();
    }());

    std::vector<std::byte> cur(len, std::byte{0xCD});
    const Diff all = make_diff(0, VectorClock(1), twin, cur);
    ASSERT_EQ(all.runs.size(), 1u);
    EXPECT_EQ(all.runs[0].len, len);
    auto replay = twin;
    apply_diff(all, replay);
    EXPECT_EQ(replay, cur);
  }
}

TEST(Diff, BackedDeserializeAliasesTheFramePayload) {
  // A reader over a pooled payload must hand out runs that alias that
  // buffer (zero-copy receive) and keep it alive through the arena ref.
  const auto twin = bytes_of("aaaaaaaaaaaaaaaabbbbbbbbbbbbbbbb");
  auto cur = twin;
  cur[3] = std::byte{'X'};
  cur[30] = std::byte{'Y'};
  Diff d = make_diff(1, VectorClock(2), twin, cur);

  ByteWriter w;
  d.serialize(w);
  util::Buf payload = std::move(w).take();
  const std::byte* lo = payload.data();
  const std::byte* hi = lo + payload.size();

  Diff out;
  {
    ByteReader r(payload, 0);
    out = Diff::deserialize(r);
  }
  ASSERT_EQ(out.runs.size(), 2u);
  for (const Diff::Run& run : out.runs) {
    const std::span<const std::byte> bytes = out.run_bytes(run);
    EXPECT_GE(bytes.data(), lo);
    EXPECT_LT(bytes.data(), hi);
  }
  EXPECT_EQ(payload.ref_count(), 2u);  // the diff arena shares the payload

  payload.reset();  // diff's reference alone keeps the bytes valid
  auto replay = twin;
  apply_diff(out, replay);
  EXPECT_EQ(replay, cur);
}

}  // namespace
}  // namespace cni::dsm
