// Fixture: the compliant shape — every atomic operation names its
// memory_order and carries an adjacent rationale comment. This file must
// analyze clean.
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct Handshake {
  std::atomic<std::uint64_t> flag{0};

  void publish(std::uint64_t v) {
    // release: pairs with the acquire in consume() — everything written
    // before this store is visible to the reader that observes v.
    flag.store(v, std::memory_order_release);
  }

  std::uint64_t consume() const {
    return flag.load(std::memory_order_acquire);  // pairs with publish()
  }
};

}  // namespace fixture
