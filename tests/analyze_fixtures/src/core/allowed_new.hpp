// Fixture: a justified suppression silences the AST rule — this file must
// analyze clean even though it allocates in a hot-path directory. The
// suppression syntax is shared with lint_cni.py.
#pragma once

namespace fixture {

inline int* sanctioned_alloc_site() {
  // cni-lint: allow(hot-path-alloc): fixture for the suppression syntax;
  // models a setup-time allocation that never runs per event.
  return new int(7);
}

}  // namespace fixture
