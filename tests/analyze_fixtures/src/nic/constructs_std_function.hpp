// Fixture: constructing a std::function from a callable can heap-allocate
// the target, and the AST rule flags the construction even through a type
// alias (the regex linter could only ban the tokens "std::function"). Both
// the conversion from a lambda and the copy must be flagged.
// analyze-expect: hot-path-alloc
// analyze-expect: hot-path-alloc
#pragma once

#include <functional>

namespace fixture {

using Handler = std::function<void(int)>;

inline void install(int seed) {
  Handler h = [seed](int x) { (void)(seed + x); };  // conversion: allocates
  Handler copy = h;                                 // copy: allocates
  (void)copy;
}

}  // namespace fixture
