// Fixture: hot-path-growth. Growing a local vector inside a loop without a
// reserve() anywhere in the function reallocates on the hot path and must
// be flagged; the sibling that reserves first is clean.
// analyze-expect: hot-path-growth
#pragma once

#include <cstddef>
#include <vector>

namespace fixture {

inline std::vector<int> bad_unreserved(std::size_t n) {
  std::vector<int> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int>(i));
  }
  return out;
}

inline std::vector<int> good_reserved(std::size_t n) {
  std::vector<int> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace fixture
