// Fixture: hot-path-growth in a collective combine fold. A NIC combine
// handler that appends every child interval to a local vector without
// reserving first reallocates once per fold on the per-frame hot path and
// must be flagged; the sibling that reserves the child count up front is
// clean (dsm/runtime.cpp's fold reserves before merging).
// analyze-expect: hot-path-growth
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

struct Interval {
  std::uint32_t writer = 0;
  std::uint32_t index = 0;
};

inline std::vector<Interval> bad_fold(const std::vector<Interval>& child) {
  std::vector<Interval> merged;
  for (std::size_t i = 0; i < child.size(); ++i) {
    merged.push_back(child[i]);
  }
  return merged;
}

inline std::vector<Interval> good_fold(const std::vector<Interval>& child) {
  std::vector<Interval> merged;
  merged.reserve(child.size());
  for (std::size_t i = 0; i < child.size(); ++i) {
    merged.push_back(child[i]);
  }
  return merged;
}

}  // namespace fixture
