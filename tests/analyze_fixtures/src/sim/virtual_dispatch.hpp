// Fixture: a virtual method declared in the event-dispatch core must be
// flagged — per-event virtual dispatch defeats inlining on the hottest
// paths (src/sim, src/core). The non-virtual method is clean, and the same
// declaration in src/nic (see ../nic) would be out of scope for this rule.
// analyze-expect: virtual-hot
#pragma once

namespace fixture {

struct BadDispatcher {
  virtual void on_event(int token) = 0;
  virtual ~BadDispatcher() = default;

  void fine_concrete(int token) { (void)token; }
};

}  // namespace fixture
