// Fixture: the allocation-free std::function operations must NOT be
// flagged — default construction makes an empty target and move
// construction steals the existing one. This file analyzes clean.
#pragma once

#include <functional>
#include <utility>

namespace fixture {

using Body = std::function<void()>;

inline Body relocate(Body src) {
  Body empty;  // default: no target, no allocation
  (void)empty;
  return Body(std::move(src));  // move: steals, never allocates
}

}  // namespace fixture
