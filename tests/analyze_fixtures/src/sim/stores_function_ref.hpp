// Fixture: util::FunctionRef is a borrowed view of a callable — storing one
// in a field outlives the borrow unless the lifetime is argued. An
// unannotated FunctionRef field must be flagged; the allow()ed one, whose
// comment states the contract, is clean.
// analyze-expect: functionref-escape
#pragma once

#include "util/function_ref.hpp"

namespace fixture {

struct BadEscape {
  cni::util::FunctionRef<void()> hook;
};

struct SanctionedBorrow {
  // cni-lint: allow(functionref-escape): borrowed for exactly one call to
  // run() on this stack frame; the referent outlives this struct.
  cni::util::FunctionRef<void()> hook;
};

}  // namespace fixture
