// Fixture: a new-expression in a hot-path directory must be flagged — the
// AST rule sees the actual CXXNewExpr, not the token (a comment saying
// "new" or a variable named renew_ must not trip it).
// analyze-expect: hot-path-alloc
#pragma once

namespace fixture {

inline int* bad_alloc_site() {
  int renewal = 0;  // "new" as a substring: not a finding
  (void)renewal;
  return new int(7);
}

}  // namespace fixture
