// Fixture: shard-ownership. `cursor_` is CNI_GUARDED_BY the shard role;
// writing it from a method that neither declares a capability attribute nor
// asserts the role in its body must be flagged. The two compliant methods —
// one with CNI_REQUIRES, one asserting the role by protocol — are clean.
// analyze-expect: shard-ownership
#pragma once

#include <cstdint>

#include "util/thread_annotations.hpp"

namespace fixture {

class ShardState {
 public:
  cni::util::Capability role;

  void bad_rogue_write(std::uint64_t v) {
    cursor_ = v;
  }

  void good_declared_write(std::uint64_t v) CNI_REQUIRES(role) {
    cursor_ = v;
  }

  void good_asserted_write(std::uint64_t v) {
    // Held by protocol: only the owning shard calls this mid-epoch.
    role.assert_held();
    cursor_ = v;
  }

 private:
  std::uint64_t cursor_ CNI_GUARDED_BY(role) = 0;
};

}  // namespace fixture
