// Fixture: atomics that silently default to seq_cst. Both forms must be
// flagged — a named operation with the memory_order argument left to its
// default, and the operator forms (=, ++, implicit conversion), which are
// seq_cst by definition. Explicitly named orders in this file carry
// rationale comments so only the ordering rule fires.
// analyze-expect: atomic-implicit-order
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct ImplicitCounter {
  std::atomic<std::uint64_t> hits{0};

  std::uint64_t bad_defaulted_load() const {
    // A comment is present, but the order is still the silent default.
    return hits.load();
  }

  void bad_operator_increment() {
    // Operator form: seq_cst by definition, no way to spell the order.
    ++hits;
  }

  void good_explicit_store(std::uint64_t v) {
    // relaxed: a monotonic tally read only at quiescence.
    hits.store(v, std::memory_order_relaxed);
  }
};

}  // namespace fixture
