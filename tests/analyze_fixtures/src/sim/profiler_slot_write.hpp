// Fixture: shard execution profiler counters. Each padded slot belongs to
// one shard thread; its phase accumulators are CNI_GUARDED_BY the shard
// role, so a write from a method that neither declares the capability nor
// asserts it must be flagged. The compliant transition (declared) and the
// coordinator's post-join harvest (asserted by protocol) are clean — the
// exact shape src/sim/shard_profiler.hpp relies on.
// analyze-expect: shard-ownership
#pragma once

#include <cstdint>

#include "util/thread_annotations.hpp"

namespace fixture {

class ProfilerSlot {
 public:
  cni::util::Capability owner;

  void bad_unowned_transition(std::uint64_t now, std::uint32_t next) {
    phase_ns_[phase_] += now - last_ns_;
    last_ns_ = now;
    phase_ = next;
  }

  void good_transition(std::uint64_t now, std::uint32_t next) CNI_REQUIRES(owner) {
    phase_ns_[phase_] += now - last_ns_;
    last_ns_ = now;
    phase_ = next;
  }

  void good_harvest_reset() {
    // Held by protocol: the coordinator harvests after joining the shard
    // threads, so the join's happens-before stands in for a lock.
    owner.assert_held();
    for (std::uint64_t& ns : phase_ns_) ns = 0;
  }

 private:
  std::uint64_t last_ns_ CNI_GUARDED_BY(owner) = 0;
  std::uint32_t phase_ CNI_GUARDED_BY(owner) = 0;
  std::uint64_t phase_ns_[5] CNI_GUARDED_BY(owner) = {};
};

}  // namespace fixture
