// Fixture: an explicitly ordered atomic operation still needs its pairing
// rationale next to the code (same line or the four lines above). The
// store below names memory_order_release but gives no reason.
// analyze-expect: atomic-rationale
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

struct Publisher {
  std::atomic<std::uint64_t> word{0};

  void bad_uncommented_release(std::uint64_t v) {
    int spacer1 = 0;
    (void)spacer1;
    int spacer2 = 0;
    (void)spacer2;

    word.store(v, std::memory_order_release);
  }
};

}  // namespace fixture
