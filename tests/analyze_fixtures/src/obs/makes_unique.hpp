// Fixture: std::make_unique is an allocation no matter how it is spelled —
// the AST rule resolves the callee through the cast, so namespace
// qualification or argument formatting cannot hide it.
// analyze-expect: hot-path-alloc
#pragma once

#include <memory>

namespace fixture {

struct Probe {
  int value = 0;
};

inline std::unique_ptr<Probe> bad_make_site() {
  return std::make_unique<Probe>();
}

}  // namespace fixture
