// Randomized DSM stress with an oracle.
//
// Properly synchronized programs must read exactly the values release
// consistency promises. This test drives random lock-protected counter
// traffic and barrier-phased array rewrites across many pages and
// configurations, checking every read against a model that any coherent
// memory would produce. The lost-update and stale-base protocol bugs found
// during development would all trip these checks within a few rounds.
#include <gtest/gtest.h>

#include <vector>

#include "apps/runner.hpp"
#include "dsm/context.hpp"
#include "dsm/system.hpp"
#include "util/rng.hpp"

namespace cni::dsm {
namespace {

using apps::make_params;
using cluster::BoardKind;

struct StressParam {
  std::uint32_t procs;
  bool cni;
  std::uint64_t mcache_kb;
  std::uint64_t seed;
};

class DsmStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(DsmStress, LockProtectedCountersNeverLoseUpdates) {
  const StressParam sp = GetParam();
  cluster::Cluster cl(make_params(sp.cni ? BoardKind::kCni : BoardKind::kStandard,
                                  sp.procs, 4096, sp.mcache_kb * 1024));
  DsmSystem sys(cl);
  constexpr std::uint32_t kCounters = 24;  // spread over several pages
  const mem::VAddr base = sys.alloc(kCounters * 512, "counters");  // 3 pages
  auto addr = [base](std::uint32_t c) { return base + c * 512; };

  std::vector<std::uint64_t> increments(kCounters, 0);  // oracle

  cl.run([&](std::size_t i, sim::SimThread& t) {
    DsmContext ctx(sys, i, t);
    if (ctx.self() == 0) {
      for (std::uint32_t c = 0; c < kCounters; ++c) ctx.write<std::uint64_t>(addr(c), 0);
    }
    ctx.barrier();
    util::SplitMix64 rng(sp.seed * 1000 + ctx.self());
    for (int op = 0; op < 60; ++op) {
      const auto c = static_cast<std::uint32_t>(rng.next_below(kCounters));
      ctx.acquire(100 + c);
      const std::uint64_t v = ctx.read<std::uint64_t>(addr(c));
      ctx.write<std::uint64_t>(addr(c), v + 1);
      // The oracle may be updated inside the critical section: the lock
      // serializes both the simulated and the native increments.
      ++increments[c];
      ctx.release(100 + c);
      ctx.compute(rng.next_below(20'000));
    }
    ctx.barrier();
    // Every node must observe the full totals after the barrier.
    for (std::uint32_t c = 0; c < kCounters; ++c) {
      EXPECT_EQ(ctx.read<std::uint64_t>(addr(c)), increments[c])
          << "counter " << c << " at node " << ctx.self();
    }
  });
  std::uint64_t total = 0;
  for (std::uint64_t v : increments) total += v;
  EXPECT_EQ(total, static_cast<std::uint64_t>(sp.procs) * 60);
}

TEST_P(DsmStress, BarrierPhasedRewritesAlwaysCoherent) {
  const StressParam sp = GetParam();
  cluster::Cluster cl(make_params(sp.cni ? BoardKind::kCni : BoardKind::kStandard,
                                  sp.procs, 4096, sp.mcache_kb * 1024));
  DsmSystem sys(cl);
  constexpr std::uint32_t kWords = 1024;  // 2 pages, rotating ownership
  const mem::VAddr base = sys.alloc(kWords * 8, "arr");

  cl.run([&](std::size_t i, sim::SimThread& t) {
    DsmContext ctx(sys, i, t);
    const std::uint32_t me = ctx.self();
    util::SplitMix64 rng(sp.seed * 77 + me);
    for (std::uint32_t round = 1; round <= 5; ++round) {
      // Strided ownership rotates; stride pattern varies with the seed.
      const std::uint32_t rot = (me + round) % sp.procs;
      for (std::uint32_t w = rot; w < kWords; w += sp.procs) {
        ctx.write<std::uint64_t>(base + w * 8,
                                 (static_cast<std::uint64_t>(round) << 32) | w);
      }
      ctx.barrier();
      // Sample random words: every one must carry this round's stamp.
      for (int k = 0; k < 40; ++k) {
        const auto w = static_cast<std::uint32_t>(rng.next_below(kWords));
        EXPECT_EQ(ctx.read<std::uint64_t>(base + w * 8),
                  (static_cast<std::uint64_t>(round) << 32) | w)
            << "round " << round << " node " << me;
      }
      ctx.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DsmStress,
    ::testing::Values(StressParam{2, true, 32, 1}, StressParam{3, true, 8, 2},
                      StressParam{4, true, 32, 3}, StressParam{4, true, 8, 4},
                      StressParam{6, true, 64, 5}, StressParam{8, true, 32, 6},
                      StressParam{3, false, 32, 7}, StressParam{5, false, 32, 8}),
    [](const ::testing::TestParamInfo<StressParam>& tpi) {
      return (tpi.param.cni ? "cni" : "std") + std::to_string(tpi.param.procs) +
             "p_" + std::to_string(tpi.param.mcache_kb) + "kb";
    });

}  // namespace
}  // namespace cni::dsm
