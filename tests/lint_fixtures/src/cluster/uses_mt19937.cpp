// Fixture: std <random> engines are banned — all streams derive from the
// explicitly seeded SplitMix64 in util/rng.hpp.
// lint-expect: determinism
#include <random>

unsigned fixture_draw() {
  std::mt19937 gen(42);
  return static_cast<unsigned>(gen());
}
