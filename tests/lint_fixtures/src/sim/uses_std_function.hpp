// Fixture: type-erased heap callables are banned on the event hot path.
// lint-expect: hot-path-alloc
#pragma once

#include <functional>

namespace fixture {
using BadCallback = std::function<void()>;
}
