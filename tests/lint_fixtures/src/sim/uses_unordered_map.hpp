// Fixture: node-based containers are banned on the event hot path.
// lint-expect: hot-path-alloc
#pragma once

#include <cstdint>
#include <unordered_map>

namespace fixture {
using BadTable = std::unordered_map<std::uint64_t, int>;
}
