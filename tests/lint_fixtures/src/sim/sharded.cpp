// Fixture: the epoch crew must never read or wait on host time. A timed
// backoff in the barrier would hide lost wakeups and couple the epoch
// schedule to host jitter. A direct wall-clock read fires the generic
// determinism rule too — both are expected.
// lint-expect: sharded-wall-clock
// lint-expect: determinism
#include <chrono>
#include <thread>

void fixture_timed_backoff() {
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

long fixture_spin_deadline() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

void fixture_allowed_pause() {
  // cni-lint: allow(sharded-wall-clock): fixture's sanctioned example of a
  // justified suppression hook
  std::this_thread::sleep_for(std::chrono::microseconds(1));
}
