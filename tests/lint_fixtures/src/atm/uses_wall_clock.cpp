// Fixture: wall-clock time in simulation code breaks bit-reproducibility.
// lint-expect: determinism
#include <ctime>

long fixture_stamp() {
  return static_cast<long>(std::time(nullptr));
}
