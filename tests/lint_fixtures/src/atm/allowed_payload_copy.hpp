// Fixture: a justified suppression silences payload-copy — this file must
// lint clean even though it declares a byte vector in a data-path directory.
#pragma once

#include <cstddef>
#include <vector>

namespace fixture {
struct ModelMemory {
  // cni-lint: allow(payload-copy): fixture for the suppression syntax;
  // models host memory contents, not a wire payload.
  std::vector<std::byte> contents;
};
}  // namespace fixture
