// Fixture: a well-formed header — includes everything it uses, no banned
// constructs — must produce no findings.
#pragma once

#include <cstdint>
#include <vector>

namespace fixture {
inline std::vector<std::uint32_t> fixture_ok_ids() {
  return {1, 2, 3};
}
}  // namespace fixture
