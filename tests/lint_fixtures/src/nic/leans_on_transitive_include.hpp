// Fixture: this header uses std::vector without including <vector>, so the
// generated standalone TU fails to compile.
// lint-expect: include-hygiene
#pragma once

#include <cstdint>

namespace fixture {
inline std::vector<std::uint32_t> fixture_ids() {
  return {1, 2, 3};
}
}  // namespace fixture
