// Fixture: src/nic is now a hot-path directory — std::function there must
// trip hot-path-alloc just as it does in src/sim and src/core.
// lint-expect: hot-path-alloc
#pragma once

#include <functional>

namespace fixture {
struct BadDispatch {
  std::function<void(int)> handler;
};
}  // namespace fixture
