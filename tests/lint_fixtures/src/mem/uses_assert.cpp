// Fixture: bare assert() must be flagged anywhere in src/.
// lint-expect: bare-assert
#include <cassert>

int fixture_checked(int v) {
  assert(v > 0);
  return v;
}
