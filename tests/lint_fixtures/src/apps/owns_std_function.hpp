// Fixture: storing a std::function is the legitimate use of the type — the
// functionref-param rule must stay quiet for owning members and aliases
// (and src/apps is outside the hot-path dirs, so hot-path-alloc is quiet
// too). This file must lint clean.
#pragma once

#include <functional>

namespace fixture {
struct DeferredJob {
  std::function<void()> body;  // owned: outlives the registration call
};
}  // namespace fixture
