// Fixture: a const std::function& parameter makes every caller materialize
// an owning heap callable the callee never keeps — borrowed callables take
// util::FunctionRef instead.
// lint-expect: functionref-param
#pragma once

#include <functional>

namespace fixture {
inline void for_each_node(int n, const std::function<void(int)>& fn) {
  for (int i = 0; i < n; ++i) fn(i);
}
}  // namespace fixture
