// Fixture: span emission is on the event hot path — a causal-record emit
// that builds a node-based map per token (e.g. to dedupe parents) would
// allocate per event. The obs directory is inside the hot-path-alloc
// rule's scope; util::U64FlatMap is the sanctioned replacement.
// lint-expect: hot-path-alloc
#pragma once

#include <cstdint>
#include <unordered_map>

namespace fixture {

struct BadSpanEmitter {
  std::unordered_map<std::uint64_t, std::uint64_t> parent_of;

  void emit(std::uint64_t token, std::uint64_t parent) {
    parent_of[token] = parent;
  }
};

}  // namespace fixture
