// Fixture: src/obs sits on the per-event emit path (trace records, metric
// updates), so type-erased heap callables are banned there like in src/sim.
// lint-expect: hot-path-alloc
#pragma once

#include <functional>

namespace fixture {
inline std::function<void()> fixture_obs_callback;
}  // namespace fixture
