// Fixture: the compliant twin of span_emit_allocates.hpp — parent links in
// a preallocated open-addressing table (the shape of util::U64FlatMap; the
// fixture tree compiles standalone, so the real header is mimicked, not
// included). No expectations: this file must lint clean.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fixture {

struct GoodSpanEmitter {
  static constexpr std::size_t kSlots = 64;  // power of two
  std::uint64_t keys[kSlots] = {};
  std::uint64_t vals[kSlots] = {};

  void emit(std::uint64_t token, std::uint64_t parent) {
    std::size_t i = static_cast<std::size_t>(token) & (kSlots - 1);
    while (keys[i] != 0 && keys[i] != token) i = (i + 1) & (kSlots - 1);
    keys[i] = token;
    vals[i] = parent;
  }
};

}  // namespace fixture
