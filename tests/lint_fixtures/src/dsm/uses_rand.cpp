// Fixture: libc rand() outside util/rng.hpp must trip the determinism rule.
// lint-expect: determinism
#include <cstdlib>

int fixture_noise() {
  return rand() % 7;
}
