// Fixture: a std::vector<std::byte> payload in a data-path directory must
// trip the payload-copy rule — buffers travel as pooled util::Buf handles.
// lint-expect: payload-copy
#pragma once

#include <cstddef>
#include <vector>

namespace fixture {
struct BadMessage {
  std::vector<std::byte> payload;
};
}  // namespace fixture
