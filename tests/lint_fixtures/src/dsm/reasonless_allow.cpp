// Fixture: an allow() without a reason is itself a finding — suppressions
// must be justified.
// lint-expect: lint-usage
// lint-expect: bare-assert
#include <cassert>

int fixture_unjustified(int v) {
  // cni-lint: allow(bare-assert)
  assert(v > 0);
  return v;
}
