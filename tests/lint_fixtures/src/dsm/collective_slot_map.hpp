// Fixture: a NIC collective combine handler that keys per-child arrival
// slots with std::unordered_map runs a rehash-prone node container on the
// per-frame hot path — hot-path-alloc must fire. The real combine state
// (dsm/runtime.cpp) indexes children by position in the flat tree arrays.
// lint-expect: hot-path-alloc
#pragma once

#include <cstdint>
#include <unordered_map>

namespace fixture {

struct BadCombineState {
  // One pending contribution per child of this tree node.
  std::unordered_map<std::uint32_t, std::uint64_t> pending;

  void on_child_arrival(std::uint32_t child, std::uint64_t clock) {
    pending[child] = clock;
  }
};

}  // namespace fixture
