// Fixture: src/util/rng.hpp is the sanctioned home for raw generator code;
// the determinism rule is exempt here, so this must lint clean. (Mirrors
// the real header's exemption — mentions of rand() live in real code too.)
#pragma once

#include <cstdlib>

namespace fixture {
inline int sanctioned_entropy() {
  return rand();
}
}  // namespace fixture
