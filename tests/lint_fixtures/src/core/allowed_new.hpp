// Fixture: a justified suppression silences the rule — this file must lint
// clean even though it allocates in a hot-path directory.
#pragma once

namespace fixture {
inline int* sanctioned_alloc_site() {
  // cni-lint: allow(hot-path-alloc): fixture for the suppression syntax;
  // models a setup-time allocation that never runs per event.
  return new int(7);
}
}  // namespace fixture
