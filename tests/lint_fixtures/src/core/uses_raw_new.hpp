// Fixture: raw new in a hot-path directory must be flagged.
// lint-expect: hot-path-alloc
#pragma once

namespace fixture {
inline int* bad_alloc_site() {
  return new int(7);
}
}  // namespace fixture
