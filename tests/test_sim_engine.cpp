#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace cni::sim {
namespace {

TEST(Clock, PeriodsFromTable1) {
  EXPECT_EQ(Clock(166'000'000).period(), 6024u);   // 166 MHz CPU
  EXPECT_EQ(Clock(25'000'000).period(), 40000u);   // 25 MHz bus
  EXPECT_EQ(Clock(33'000'000).period(), 30303u);   // 33 MHz NIC
}

TEST(Clock, CycleConversionsRoundTrip) {
  const Clock c(166'000'000);
  EXPECT_EQ(c.cycles(1000), 6'024'000u);
  EXPECT_EQ(c.to_cycles(c.cycles(1000)), 1000u);
  EXPECT_EQ(c.to_cycles_ceil(c.cycles(1000) + 1), 1001u);
}

TEST(Time, TransmissionTime) {
  // One 53-byte ATM cell at 622.08 Mb/s is ~681.6 ns.
  const SimDuration d = transmission_time(53 * 8, util::kSts12BitsPerSec);
  EXPECT_NEAR(static_cast<double>(d), 681.6 * kNanosecond, 1.0 * kNanosecond);
  EXPECT_EQ(transmission_time(0, util::kSts12BitsPerSec), 0u);
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
  EXPECT_EQ(e.events_executed(), 3u);
}

TEST(Engine, SameInstantIsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, EventsMayScheduleEvents) {
  Engine e;
  int fired = 0;
  e.schedule_at(1, [&] {
    ++fired;
    e.schedule_after(1, [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 2u);
}

TEST(Engine, CancelSuppressesEvent) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(10, [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancellingLastPendingEventEmptiesQueue) {
  // Regression: with tombstone-based cancellation, empty() stayed false and
  // run() had to pop the dead entry. Indexed cancellation removes it at once.
  Engine e;
  const EventId id = e.schedule_at(10, [] {});
  EXPECT_FALSE(e.empty());
  EXPECT_TRUE(e.cancel(id));
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.pending(), 0u);
  e.run();  // returns immediately: nothing is pending
  EXPECT_EQ(e.events_executed(), 0u);
  EXPECT_EQ(e.now(), 0u);  // time never advanced
  EXPECT_EQ(e.events_cancelled(), 1u);
}

TEST(Engine, CancelReportsWhetherAnEventWasRemoved) {
  Engine e;
  const EventId id = e.schedule_at(10, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // double cancel: harmless no-op
  bool fired = false;
  const EventId fired_id = e.schedule_at(20, [&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(e.cancel(fired_id));  // already fired
  EXPECT_FALSE(e.cancel(0xdeadbeefdeadbeefULL));  // never existed
}

TEST(Engine, StaleIdDoesNotCancelASlotReusingEvent) {
  // The slot of a fired event is recycled for the next schedule; the stale
  // id must not reach the new occupant (generations keep them distinct).
  Engine e;
  const EventId old_id = e.schedule_at(1, [] {});
  e.run();
  bool fired = false;
  e.schedule_at(2, [&] { fired = true; });  // reuses the freed slot
  EXPECT_FALSE(e.cancel(old_id));
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, CancelInTheMiddlePreservesFiringOrder) {
  Engine e;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(e.schedule_at(static_cast<SimTime>(i), [&order, i] { order.push_back(i); }));
  }
  for (int i = 1; i < 16; i += 2) e.cancel(ids[static_cast<std::size_t>(i)]);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8, 10, 12, 14}));
  EXPECT_EQ(e.events_cancelled(), 8u);
  EXPECT_EQ(e.events_executed(), 8u);
}

TEST(InlineFn, RunsHeapFallbackCallablesAndDestroysThem) {
  // A capture that is not trivially copyable takes the heap path; the
  // callable must still run and its captured state must be destroyed.
  auto counter = std::make_shared<int>(0);
  {
    Engine e;
    std::shared_ptr<int> keep = counter;
    e.schedule_at(1, [keep] { ++*keep; });
    EXPECT_EQ(counter.use_count(), 3);  // counter + keep + the engine's copy
    e.run();
    EXPECT_EQ(*counter, 1);
    EXPECT_EQ(counter.use_count(), 2);  // fired callbacks are destroyed
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFn, DestroysHeapCallableOnCancelToo) {
  auto counter = std::make_shared<int>(0);
  Engine e;
  std::shared_ptr<int> keep = counter;
  const EventId id = e.schedule_at(1, [keep] { ++*keep; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_EQ(counter.use_count(), 2);  // `keep` + our handle; engine's copy gone
  e.run();
  EXPECT_EQ(*counter, 0);
}

TEST(Engine, RunUntilLeavesLaterEvents) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(30, [&] { ++fired; });
  e.run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 20u);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, SchedulingInPastAborts) {
  Engine e;
  e.schedule_at(10, [&] {
    EXPECT_DEATH(e.schedule_at(5, [] {}), "past");
  });
  e.run();
}

TEST(ServiceQueue, BackToBackJobsQueue) {
  ServiceQueue q;
  EXPECT_EQ(q.occupy(100, 50), 150u);
  // Requested while busy: starts when the queue drains.
  EXPECT_EQ(q.occupy(120, 50), 200u);
  // Requested after idle: starts immediately.
  EXPECT_EQ(q.occupy(300, 10), 310u);
  EXPECT_EQ(q.jobs(), 3u);
  EXPECT_EQ(q.total_busy(), 110u);
}

TEST(ServiceQueue, NoDoubleCountingOfWait) {
  // Regression: a queued job must not extend the busy horizon by its wait
  // time (that bug made closed-loop traffic diverge quadratically).
  ServiceQueue q;
  q.occupy(0, 100);
  for (int i = 1; i <= 10; ++i) {
    const SimTime done = q.occupy(0, 100);
    EXPECT_EQ(done, static_cast<SimTime>(100 * (i + 1)));
  }
}

TEST(ServiceQueue, IdleGapsDoNotAccrueBusyTime) {
  ServiceQueue q;
  q.occupy(0, 10);
  q.occupy(1000, 10);  // 980 ticks of idle between the jobs
  q.occupy(5000, 10);
  EXPECT_EQ(q.total_busy(), 30u);  // only service time, never idle time
  EXPECT_EQ(q.busy_until(), 5010u);
}

TEST(ServiceQueue, TotalBusyIsTheSumOfDurationsUnderRandomLoad) {
  // Invariants under an arbitrary arrival pattern: total_busy is exactly the
  // sum of requested durations, completion times never go backwards, and a
  // job never finishes before now + its own duration.
  util::SplitMix64 rng(7);
  ServiceQueue q;
  SimDuration sum = 0;
  SimTime now = 0;
  SimTime prev_done = 0;
  for (int i = 0; i < 1000; ++i) {
    now += rng.next_below(200);  // sometimes 0: back-to-back arrivals
    const SimDuration d = 1 + rng.next_below(50);
    const SimTime done = q.occupy(now, d);
    sum += d;
    EXPECT_GE(done, now + d);
    EXPECT_GE(done, prev_done);
    EXPECT_EQ(done, q.busy_until());
    prev_done = done;
  }
  EXPECT_EQ(q.total_busy(), sum);
  EXPECT_EQ(q.jobs(), 1000u);
}

}  // namespace
}  // namespace cni::sim
