#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/units.hpp"

namespace cni::sim {
namespace {

TEST(Clock, PeriodsFromTable1) {
  EXPECT_EQ(Clock(166'000'000).period(), 6024u);   // 166 MHz CPU
  EXPECT_EQ(Clock(25'000'000).period(), 40000u);   // 25 MHz bus
  EXPECT_EQ(Clock(33'000'000).period(), 30303u);   // 33 MHz NIC
}

TEST(Clock, CycleConversionsRoundTrip) {
  const Clock c(166'000'000);
  EXPECT_EQ(c.cycles(1000), 6'024'000u);
  EXPECT_EQ(c.to_cycles(c.cycles(1000)), 1000u);
  EXPECT_EQ(c.to_cycles_ceil(c.cycles(1000) + 1), 1001u);
}

TEST(Time, TransmissionTime) {
  // One 53-byte ATM cell at 622.08 Mb/s is ~681.6 ns.
  const SimDuration d = transmission_time(53 * 8, util::kSts12BitsPerSec);
  EXPECT_NEAR(static_cast<double>(d), 681.6 * kNanosecond, 1.0 * kNanosecond);
  EXPECT_EQ(transmission_time(0, util::kSts12BitsPerSec), 0u);
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
  EXPECT_EQ(e.events_executed(), 3u);
}

TEST(Engine, SameInstantIsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, EventsMayScheduleEvents) {
  Engine e;
  int fired = 0;
  e.schedule_at(1, [&] {
    ++fired;
    e.schedule_after(1, [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 2u);
}

TEST(Engine, CancelSuppressesEvent) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(10, [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, RunUntilLeavesLaterEvents) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(30, [&] { ++fired; });
  e.run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 20u);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, SchedulingInPastAborts) {
  Engine e;
  e.schedule_at(10, [&] {
    EXPECT_DEATH(e.schedule_at(5, [] {}), "past");
  });
  e.run();
}

TEST(ServiceQueue, BackToBackJobsQueue) {
  ServiceQueue q;
  EXPECT_EQ(q.occupy(100, 50), 150u);
  // Requested while busy: starts when the queue drains.
  EXPECT_EQ(q.occupy(120, 50), 200u);
  // Requested after idle: starts immediately.
  EXPECT_EQ(q.occupy(300, 10), 310u);
  EXPECT_EQ(q.jobs(), 3u);
  EXPECT_EQ(q.total_busy(), 110u);
}

TEST(ServiceQueue, NoDoubleCountingOfWait) {
  // Regression: a queued job must not extend the busy horizon by its wait
  // time (that bug made closed-loop traffic diverge quadratically).
  ServiceQueue q;
  q.occupy(0, 100);
  for (int i = 1; i <= 10; ++i) {
    const SimTime done = q.occupy(0, 100);
    EXPECT_EQ(done, static_cast<SimTime>(100 * (i + 1)));
  }
}

}  // namespace
}  // namespace cni::sim
