// Fuzz harness for the DSM wire formats and the diff engine — the two spots
// where the simulator decodes bytes it did not produce in the same call
// chain (frames cross the simulated wire as real serialized payloads).
//
// Two targets, selected by the input's first byte:
//
//   wire decode   Interval::deserialize / Diff::deserialize / raw ByteReader
//                 primitives over arbitrary bytes. Malformed input must
//                 throw WireError (recoverable, bounds checked *before* any
//                 count-driven allocation) — never crash, abort via
//                 CNI_CHECK, or allocate unboundedly. Accepted input must
//                 round-trip: re-serializing the decoded value and decoding
//                 it again yields the same wire image.
//
//   diff property make_diff/apply_diff as an algebraic pair: for arbitrary
//                 (twin, current) page images, applying the diff onto a copy
//                 of the twin must reconstruct current exactly, and the diff
//                 must survive a serialize/deserialize round trip unchanged.
//
// Built two ways (tests/CMakeLists.txt):
//   - CNI_FUZZ=ON + Clang: a libFuzzer binary (fuzz_wire) for open-ended
//     runs; CI gives it a five-minute smoke budget.
//   - always: a corpus-replay binary (fuzz_wire_replay) with a plain main()
//     that runs every file in tests/fuzz/corpus through the same entry
//     point, so the checked-in findings regress under any compiler, in
//     tier-1 ctest, with no fuzzer runtime.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "dsm/diff.hpp"
#include "dsm/interval.hpp"
#include "dsm/vector_clock.hpp"
#include "dsm/wire_format.hpp"
#include "util/check.hpp"

namespace {

using cni::dsm::ByteReader;
using cni::dsm::ByteWriter;
using cni::dsm::Diff;
using cni::dsm::Interval;
using cni::dsm::VectorClock;
using cni::dsm::WireError;

std::span<const std::byte> as_bytes(const std::uint8_t* data, std::size_t size) {
  return {reinterpret_cast<const std::byte*>(data), size};
}

bool same_bytes(std::span<const std::byte> a, std::span<const std::byte> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

/// Decoders must treat arbitrary bytes as either a value or a WireError —
/// nothing else. On success, the value must re-serialize to a wire image
/// that decodes to the same image again (round-trip stability).
void fuzz_wire_decode(std::span<const std::byte> in) {
  try {
    ByteReader r(in);
    const Interval iv = Interval::deserialize(r);
    ByteWriter w;
    iv.serialize(w);
    ByteReader r2(w.data());
    const Interval iv2 = Interval::deserialize(r2);
    ByteWriter w2;
    iv2.serialize(w2);
    CNI_CHECK_MSG(same_bytes(w.data(), w2.data()),
                  "interval wire image not round-trip stable");
  } catch (const WireError&) {
    // malformed input: the one acceptable outcome
  }
  try {
    ByteReader r(in);
    const Diff d = Diff::deserialize(r);
    ByteWriter w;
    d.serialize(w);
    ByteReader r2(w.data());
    const Diff d2 = Diff::deserialize(r2);
    ByteWriter w2;
    d2.serialize(w2);
    CNI_CHECK_MSG(same_bytes(w.data(), w2.data()),
                  "diff wire image not round-trip stable");
  } catch (const WireError&) {
  }
  try {
    ByteReader r(in);
    while (!r.done()) {
      (void)r.bytes();
      (void)r.clock();
    }
  } catch (const WireError&) {
  }
}

/// make_diff/apply_diff as an algebra: diff(twin -> current) applied to the
/// twin reconstructs current, byte for byte, for any pair of images; and the
/// diff survives the wire unchanged.
void fuzz_diff_property(std::span<const std::byte> in) {
  // Split the input into two equal-length page images (odd byte dropped).
  const std::size_t page = in.size() / 2;
  const std::span<const std::byte> twin = in.first(page);
  const std::span<const std::byte> current = in.subspan(page, page);

  const Diff d = cni::dsm::make_diff(3, VectorClock(4), twin, current);
  std::vector<std::byte> image(twin.begin(), twin.end());
  cni::dsm::apply_diff(d, image);
  CNI_CHECK_MSG(same_bytes(image, current), "apply(make_diff) != current");

  ByteWriter w;
  d.serialize(w);
  ByteReader r(w.data());
  const Diff back = Diff::deserialize(r);
  std::vector<std::byte> image2(twin.begin(), twin.end());
  cni::dsm::apply_diff(back, image2);
  CNI_CHECK_MSG(same_bytes(image2, current),
                "diff does not survive the wire");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const std::span<const std::byte> payload = as_bytes(data + 1, size - 1);
  if ((data[0] & 1) == 0) {
    fuzz_wire_decode(payload);
  } else {
    fuzz_diff_property(payload);
  }
  return 0;
}

#ifdef CNI_FUZZ_REPLAY_MAIN
// Corpus replay: no fuzzer runtime needed, so the checked-in corpus is a
// tier-1 regression suite under any compiler (ctest fuzz_wire_corpus).
#include <cstdio>
#include <fstream>

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file>...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream f(argv[i], std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 2;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(f)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
  }
  std::printf("fuzz_wire_replay: %d input(s) OK\n", argc - 1);
  return 0;
}
#endif
