#include <gtest/gtest.h>

#include <unordered_map>

#include "util/cli.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace cni::util {
namespace {

TEST(Units, CeilDiv) {
  EXPECT_EQ(ceil_div(0u, 48u), 0u);
  EXPECT_EQ(ceil_div(1u, 48u), 1u);
  EXPECT_EQ(ceil_div(48u, 48u), 1u);
  EXPECT_EQ(ceil_div(49u, 48u), 2u);
  EXPECT_EQ(ceil_div(4096u, 48u), 86u);  // the paper's 4 KB page in ATM cells
}

TEST(Units, AlignAndPow2) {
  EXPECT_EQ(align_up(1, 4096), 4096u);
  EXPECT_EQ(align_up(4096, 4096), 4096u);
  EXPECT_EQ(align_down(4097, 4096), 4096u);
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(Units, Literals) {
  EXPECT_EQ(32_KiB, 32768u);
  EXPECT_EQ(1_MiB, 1048576u);
}

TEST(Rng, DeterministicStream) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DoubleInRange) {
  SplitMix64 r(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double(-1.0, 1.0);
    EXPECT_GE(d, -1.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BelowBound) {
  SplitMix64 r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Table, FormatsAligned) {
  Table t("Demo");
  t.set_header({"name", "x"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // Numeric column right-aligned: " 1" and "22" line up.
  EXPECT_NE(s.find(" 1\n"), std::string::npos);
  EXPECT_NE(s.find("22\n"), std::string::npos);
}

TEST(Table, DoubleRows) {
  Table t("D");
  t.add_row("row", {1.5, 100.0}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("100"), std::string::npos);
}

TEST(Table, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5000, 4), "1.5");
  EXPECT_EQ(format_double(100.0, 2), "100");
  EXPECT_EQ(format_double(0.054, 4), "0.054");
  EXPECT_EQ(format_double(13.31, 2), "13.31");
}

TEST(Cli, ParsesTypes) {
  Cli cli("test");
  cli.add_flag("verbose", "v", false);
  cli.add_int("n", "count", 10);
  cli.add_double("ratio", "r", 0.5);
  cli.add_string("name", "s", "x");
  const char* argv[] = {"prog", "--verbose", "--n=42", "--ratio", "1.25", "--name=abc"};
  cli.parse(6, const_cast<char**>(argv));
  EXPECT_TRUE(cli.flag("verbose"));
  EXPECT_EQ(cli.get_int("n"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 1.25);
  EXPECT_EQ(cli.get_string("name"), "abc");
}

TEST(Cli, DefaultsHold) {
  Cli cli("test");
  cli.add_int("n", "count", 10);
  const char* argv[] = {"prog"};
  cli.parse(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n"), 10);
}

TEST(U64FlatMap, InsertFindEraseBasics) {
  U64FlatMap<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), nullptr);
  m.insert(7, 70);
  m.insert(9, 90);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 70);
  m.insert(7, 71);  // overwrite, not duplicate
  EXPECT_EQ(*m.find(7), 71);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_EQ(*m.find(9), 90);
}

TEST(U64FlatMap, MatchesReferenceMapUnderRandomChurn) {
  // The backward-shift erase is the delicate part: hammer it with a random
  // insert/erase mix (clustered keys force long probe chains) and compare
  // against std::unordered_map after every growth-triggering batch.
  SplitMix64 rng(11);
  U64FlatMap<std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = rng.next_below(512);  // small space: collisions
    if (rng.next_below(3) != 0) {
      const std::uint64_t val = rng.next();
      m.insert(key, val);
      ref[key] = val;
    } else {
      EXPECT_EQ(m.erase(key), ref.erase(key) == 1);
    }
  }
  EXPECT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ(*m.find(k), v);
  }
  std::size_t walked = 0;
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    ++walked;
    EXPECT_EQ(ref.at(k), v);
  });
  EXPECT_EQ(walked, ref.size());
}

TEST(U64FlatMap, ClearResetsAndStaysUsable) {
  U64FlatMap<int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.insert(k, static_cast<int>(k));
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), nullptr);
  m.insert(5, 55);
  EXPECT_EQ(*m.find(5), 55);
}

}  // namespace
}  // namespace cni::util
