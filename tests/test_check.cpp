// Death tests for the CNI_CHECK family: the always-on checks must abort with
// a diagnosable message, the comparison forms must print both operand
// values, and CNI_DCHECK must compile out exactly when NDEBUG is defined —
// the contract the hot paths rely on.
#include "util/check.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace cni::util {
namespace {

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, CheckPassesSilently) {
  CNI_CHECK(1 + 1 == 2);
  CNI_CHECK_MSG(true, "never printed");
}

TEST(CheckDeathTest, CheckAbortsWithExpression) {
  EXPECT_DEATH(CNI_CHECK(2 + 2 == 5), "CNI_CHECK failed: 2 \\+ 2 == 5");
}

TEST(CheckDeathTest, CheckMsgAbortsWithMessage) {
  EXPECT_DEATH(CNI_CHECK_MSG(false, "buffer map corrupt"), "buffer map corrupt");
}

TEST(CheckDeathTest, ComparisonFormsPassSilently) {
  CNI_CHECK_EQ(3, 3);
  CNI_CHECK_NE(3, 4);
  CNI_CHECK_LT(3, 4);
  CNI_CHECK_LE(4, 4);
  CNI_CHECK_GT(5, 4);
  CNI_CHECK_GE(5, 5);
}

TEST(CheckDeathTest, CheckEqPrintsBothOperands) {
  const std::uint64_t got = 7;
  const std::uint64_t want = 9;
  EXPECT_DEATH(CNI_CHECK_EQ(got, want), "values: 7 vs 9");
}

TEST(CheckDeathTest, CheckLtPrintsBothOperands) {
  const int a = 12;
  EXPECT_DEATH(CNI_CHECK_LT(a, 12), "values: 12 vs 12");
}

TEST(CheckDeathTest, CheckLePrintsExpressionText) {
  const int cursor = 33;
  EXPECT_DEATH(CNI_CHECK_LE(cursor, 32), "cursor <= 32");
}

TEST(CheckDeathTest, CheckNeAndGeAbort) {
  EXPECT_DEATH(CNI_CHECK_NE(5, 5), "values: 5 vs 5");
  EXPECT_DEATH(CNI_CHECK_GE(4, 5), "values: 4 vs 5");
}

TEST(CheckDeathTest, StringOperandsArePrinted) {
  const std::string got = "cni";
  const std::string want = "osiris";
  EXPECT_DEATH(CNI_CHECK_EQ(got, want), "values: cni vs osiris");
}

TEST(CheckDeathTest, UnprintableOperandsDegradeGracefully) {
  struct Opaque {
    int v;
    bool operator==(const Opaque&) const = default;
  };
  EXPECT_DEATH(CNI_CHECK_EQ(Opaque{1}, Opaque{2}), "<unprintable> vs <unprintable>");
}

// Comparison operands must be evaluated exactly once, pass or fail, so a
// check can wrap an expression with side effects (e.g. a consuming read).
TEST(CheckDeathTest, OperandsEvaluateExactlyOnce) {
  int evals = 0;
  auto bump = [&evals] { return ++evals; };
  CNI_CHECK_EQ(bump(), 1);
  EXPECT_EQ(evals, 1);
}

TEST(CheckDeathTest, DcheckCompileOutMatchesBuildType) {
  int evals = 0;
  auto count_true = [&evals] {
    ++evals;
    return true;
  };
  (void)count_true;  // unreferenced when CNI_DCHECK compiles out
#ifdef NDEBUG
  // Release: CNI_DCHECK vanishes — the expression must not even evaluate.
  CNI_DCHECK(count_true());
  CNI_DCHECK_EQ(evals, 999);  // would abort if live
  EXPECT_EQ(evals, 0);
#else
  // Debug: CNI_DCHECK is exactly CNI_CHECK.
  CNI_DCHECK(count_true());
  EXPECT_EQ(evals, 1);
  EXPECT_DEATH(CNI_DCHECK_EQ(1, 2), "values: 1 vs 2");
#endif
}

}  // namespace
}  // namespace cni::util
