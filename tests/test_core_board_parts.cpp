// Dual-ported memory, Application Device Channels, AIH segments and the
// hybrid polling governor.
#include <gtest/gtest.h>

#include "core/adc.hpp"
#include "core/aih.hpp"
#include "core/dual_port.hpp"
#include "core/poll_governor.hpp"

namespace cni::core {
namespace {

TEST(DualPortMemory, AllocFreeCoalesce) {
  DualPortMemory mem(1024);
  auto a = mem.alloc(256, "a");
  auto b = mem.alloc(256, "b");
  auto c = mem.alloc(512, "c");
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(mem.used(), 1024u);
  EXPECT_FALSE(mem.alloc(1, "overflow").has_value());
  mem.free(*a);
  mem.free(*b);
  // Freed neighbours coalesce into one 512-byte hole.
  EXPECT_TRUE(mem.alloc(512, "d").has_value());
}

TEST(DualPortMemory, FirstFitReusesEarliestHole) {
  DualPortMemory mem(1024);
  auto a = mem.alloc(128, "a");
  mem.alloc(128, "b");
  mem.free(*a);
  auto c = mem.alloc(64, "c");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, *a);  // reused the first hole
}

TEST(DualPortMemory, AllocationCount) {
  DualPortMemory mem(1024);
  auto a = mem.alloc(100, "a");
  mem.alloc(100, "b");
  EXPECT_EQ(mem.allocation_count(), 2u);
  mem.free(*a);
  EXPECT_EQ(mem.allocation_count(), 1u);
}

TEST(DescriptorRing, PushPopWrapAround) {
  DescriptorRing ring(4);
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(ring.push(AdcDescriptor{0x1000 + i, 64, 0, 0}));
    }
    EXPECT_TRUE(ring.full());
    EXPECT_FALSE(ring.push(AdcDescriptor{}));
    for (std::uint32_t i = 0; i < 4; ++i) {
      auto d = ring.pop();
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(d->buffer_va, 0x1000 + i);
    }
    EXPECT_FALSE(ring.pop().has_value());
  }
}

TEST(AdcChannel, ProtectionVerifiedAtEnqueueOnly) {
  DualPortMemory mem(1 << 20);
  auto ch = AdcChannel::open(mem, 1, 0x10000, 0x1000, 16);
  ASSERT_TRUE(ch.has_value());
  // In-region buffer accepted.
  EXPECT_TRUE(ch->enqueue_tx(AdcDescriptor{0x10000, 0x100, 0, 0}));
  // Out-of-region buffer rejected — the protection check of paper §2.1.
  EXPECT_FALSE(ch->enqueue_tx(AdcDescriptor{0x20000, 0x100, 0, 0}));
  // Straddling the region end rejected.
  EXPECT_FALSE(ch->enqueue_tx(AdcDescriptor{0x10F80, 0x100, 0, 0}));
  EXPECT_EQ(ch->protection_rejects(), 2u);
}

TEST(AdcChannel, TripletQueuesAreIndependent) {
  DualPortMemory mem(1 << 20);
  auto ch = AdcChannel::open(mem, 1, 0, ~0ull, 8);
  ASSERT_TRUE(ch.has_value());
  EXPECT_TRUE(ch->post_receive_buffer(AdcDescriptor{0x1000, 4096, 0, 0}));
  EXPECT_TRUE(ch->enqueue_tx(AdcDescriptor{0x2000, 64, 0, 0}));
  auto rx_buf = ch->claim_receive_buffer();
  ASSERT_TRUE(rx_buf.has_value());
  EXPECT_EQ(rx_buf->buffer_va, 0x1000u);
  EXPECT_TRUE(ch->complete_receive(*rx_buf));
  auto done = ch->poll_receive();
  ASSERT_TRUE(done.has_value());
  auto tx = ch->dequeue_tx();
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->buffer_va, 0x2000u);
}

TEST(AdcChannel, OpenFailsWhenBoardMemoryExhausted) {
  DualPortMemory mem(64);  // far too small for three rings
  EXPECT_FALSE(AdcChannel::open(mem, 1, 0, ~0ull, 16).has_value());
}

TEST(AihRegion, InstallRemoveAccounting) {
  DualPortMemory mem(64 * 1024);
  AihRegion aih(mem);
  auto seg = aih.install(7, 16 * 1024);
  ASSERT_TRUE(seg.has_value());
  EXPECT_TRUE(aih.resident(7));
  EXPECT_EQ(aih.resident_bytes(), 16u * 1024);
  EXPECT_EQ(mem.used(), 16u * 1024);
  aih.remove(7);
  EXPECT_FALSE(aih.resident(7));
  EXPECT_EQ(mem.used(), 0u);
}

TEST(AihRegion, NoVirtualMemoryMeansWholeHandlerMustFit) {
  // Paper §2.3: no paging on the board — an oversized handler fails loudly.
  DualPortMemory mem(8 * 1024);
  AihRegion aih(mem);
  EXPECT_FALSE(aih.install(1, 16 * 1024).has_value());
}

// Regression for the segment table's move to util::U64FlatMap: drive it
// through growth and interleaved erases so the open-addressed probe and
// backward-shift paths run, and verify the accounting never drifts.
TEST(AihRegion, ManyHandlersSurviveChurn) {
  DualPortMemory mem(1024 * 1024);
  AihRegion aih(mem);
  constexpr std::uint32_t kHandlers = 64;
  constexpr std::uint64_t kBytes = 1024;
  for (std::uint32_t id = 0; id < kHandlers; ++id) {
    ASSERT_TRUE(aih.install(id, kBytes).has_value());
  }
  EXPECT_EQ(aih.segment_count(), kHandlers);
  EXPECT_EQ(aih.resident_bytes(), kHandlers * kBytes);
  for (std::uint32_t id = 0; id < kHandlers; id += 2) aih.remove(id);
  for (std::uint32_t id = 0; id < kHandlers; ++id) {
    EXPECT_EQ(aih.resident(id), id % 2 == 1) << id;
  }
  EXPECT_EQ(aih.resident_bytes(), kHandlers / 2 * kBytes);
  // Reinstall into the holes; ids must not collide with survivors.
  for (std::uint32_t id = 0; id < kHandlers; id += 2) {
    ASSERT_TRUE(aih.install(id, kBytes).has_value());
  }
  EXPECT_EQ(aih.segment_count(), kHandlers);
  EXPECT_EQ(aih.resident_bytes(), kHandlers * kBytes);
}

TEST(AihRegion, ExhaustionLeavesAccountingUntouched) {
  // A refused install must not leak a segment or skew the residency numbers
  // the board's diagnostic prints — the caller may evict and retry.
  DualPortMemory mem(32 * 1024);
  AihRegion aih(mem);
  ASSERT_TRUE(aih.install(1, 24 * 1024).has_value());
  EXPECT_FALSE(aih.install(2, 16 * 1024).has_value());
  EXPECT_FALSE(aih.resident(2));
  EXPECT_EQ(aih.segment_count(), 1u);
  EXPECT_EQ(aih.resident_bytes(), 24u * 1024);
  EXPECT_EQ(aih.board_memory().free_bytes(), 8u * 1024);
  EXPECT_EQ(aih.board_memory().capacity(), 32u * 1024);
}

TEST(AihRegion, RemoveFreesSpaceForReinstall) {
  // Swap-out then swap-in reuses the freed board memory, exactly filling a
  // region that could not hold both handler generations at once.
  DualPortMemory mem(32 * 1024);
  AihRegion aih(mem);
  ASSERT_TRUE(aih.install(1, 24 * 1024).has_value());
  EXPECT_FALSE(aih.install(2, 16 * 1024).has_value());
  aih.remove(1);
  EXPECT_EQ(aih.resident_bytes(), 0u);
  ASSERT_TRUE(aih.install(2, 16 * 1024).has_value());
  ASSERT_TRUE(aih.install(3, 16 * 1024).has_value());
  EXPECT_EQ(aih.segment_count(), 2u);
  EXPECT_EQ(aih.resident_bytes(), 32u * 1024);
  EXPECT_EQ(aih.board_memory().free_bytes(), 0u);
}

TEST(PollGovernor, FirstArrivalInterrupts) {
  PollGovernor g(1 * sim::kMillisecond);
  EXPECT_TRUE(g.on_arrival(0));
}

TEST(PollGovernor, HighRateUsesPolling) {
  PollGovernor g(1 * sim::kMillisecond);
  g.on_arrival(0);
  std::uint64_t interrupts = 0;
  for (int i = 1; i <= 100; ++i) {
    if (g.on_arrival(static_cast<sim::SimTime>(i) * 10 * sim::kMicrosecond)) ++interrupts;
  }
  EXPECT_EQ(interrupts, 0u);  // 10 us gaps: the poll loop keeps up
  EXPECT_EQ(g.polled(), 100u);
}

TEST(PollGovernor, LongIdleGapRaisesInterrupt) {
  PollGovernor g(1 * sim::kMillisecond);
  g.on_arrival(0);
  for (int i = 1; i <= 10; ++i) {
    g.on_arrival(static_cast<sim::SimTime>(i) * 10 * sim::kMicrosecond);
  }
  // After 50 ms of silence the host has stopped polling.
  EXPECT_TRUE(g.on_arrival(50 * sim::kMillisecond));
}

}  // namespace
}  // namespace cni::core
