// Properties of the event engine's determinism contract, checked against a
// brute-force reference model: events fire in (time, insertion-sequence)
// order, cancellation removes exactly the targeted event, and the firing
// order is a pure function of the schedule/cancel history — never of heap
// layout, slot reuse, or sift order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace cni::sim {
namespace {

// ---- Property: fire order matches a stable-sorted reference model ----
//
// Drives the engine with a random mix of schedules and cancellations, then
// compares the observed fire order with the obvious specification: keep every
// uncancelled (time, insertion-index) pair and stable-sort by time.

class RandomHistorySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomHistorySweep, FireOrderMatchesReferenceModel) {
  util::SplitMix64 rng(GetParam());
  Engine e;
  struct Planned {
    SimTime t;
    int tag;
    bool cancelled;
  };
  std::vector<Planned> plan;
  std::vector<EventId> ids;
  std::vector<int> fired;
  for (int tag = 0; tag < 500; ++tag) {
    const SimTime t = rng.next_below(64);  // dense: many same-instant ties
    ids.push_back(e.schedule_at(t, [&fired, tag] { fired.push_back(tag); }));
    plan.push_back({t, tag, false});
    if (rng.next_below(4) == 0) {
      // Cancel a random earlier (possibly already-cancelled) event; the
      // engine must report exactly whether it removed something.
      const auto victim = static_cast<std::size_t>(rng.next_below(ids.size()));
      const bool removed = e.cancel(ids[victim]);
      EXPECT_EQ(removed, !plan[victim].cancelled);
      plan[victim].cancelled = true;
    }
  }
  const std::size_t live =
      static_cast<std::size_t>(std::count_if(plan.begin(), plan.end(),
                                             [](const Planned& p) { return !p.cancelled; }));
  EXPECT_EQ(e.pending(), live);
  e.run();
  EXPECT_TRUE(e.empty());

  std::vector<Planned> expect;
  for (const Planned& p : plan) {
    if (!p.cancelled) expect.push_back(p);
  }
  std::stable_sort(expect.begin(), expect.end(),
                   [](const Planned& a, const Planned& b) { return a.t < b.t; });
  ASSERT_EQ(fired.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) EXPECT_EQ(fired[i], expect[i].tag);
}

TEST_P(RandomHistorySweep, TwoRunsAreBitIdentical) {
  // The whole simulator's reproducibility reduces to this: the same history
  // yields the same trace, run to run, including under heavy cancellation.
  const auto trace = [](std::uint64_t seed) {
    util::SplitMix64 rng(seed);
    Engine e;
    std::vector<EventId> ids;
    std::vector<std::pair<SimTime, int>> out;
    for (int tag = 0; tag < 300; ++tag) {
      ids.push_back(e.schedule_at(rng.next_below(32), [&e, &out, tag] {
        out.emplace_back(e.now(), tag);
      }));
      if (rng.next_below(3) == 0) e.cancel(ids[rng.next_below(ids.size())]);
    }
    e.run();
    return out;
  };
  EXPECT_EQ(trace(GetParam()), trace(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHistorySweep,
                         ::testing::Values(1u, 2u, 3u, 0x9e3779b9u, 0xfeedfaceu));

// ---- Property: same-instant FIFO holds at scale, interleaved with pops ----

TEST(EngineProperties, SameInstantFifoSurvivesInterleavedExecution) {
  // Events firing at t==10 schedule more events for t==10; every batch must
  // still drain in insertion order (the sequence number orders them, and it
  // keeps counting across fires).
  Engine e;
  std::vector<int> order;
  int next = 0;
  struct Spawn {
    Engine* e;
    std::vector<int>* order;
    int* next;
    int tag;
    void operator()() const {
      order->push_back(tag);
      if (*next < 64) e->schedule_at(10, Spawn{e, order, next, (*next)++});
    }
  };
  for (int i = 0; i < 8; ++i) {
    e.schedule_at(10, Spawn{&e, &order, &next, next});
    ++next;
  }
  e.run();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace cni::sim
