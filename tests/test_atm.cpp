#include <gtest/gtest.h>

#include "atm/banyan.hpp"
#include "atm/cell.hpp"
#include "atm/fabric.hpp"
#include "atm/packet.hpp"
#include "sim/engine.hpp"

namespace cni::atm {
namespace {

TEST(CellGeometry, StandardAtm) {
  CellGeometry g;
  EXPECT_EQ(g.cells_for(0), 1u);
  EXPECT_EQ(g.cells_for(48), 1u);
  EXPECT_EQ(g.cells_for(49), 2u);
  EXPECT_EQ(g.cells_for(4096), 86u);
  EXPECT_EQ(g.wire_bytes(4096), 86u * 53);
}

TEST(CellGeometry, UnrestrictedRemovesTheTax) {
  CellGeometry g(CellMode::kUnrestricted);
  EXPECT_EQ(g.cells_for(4096), 1u);
  EXPECT_EQ(g.wire_bytes(4096), 4096u + kCellHeaderBytes);
  // The mythical network of Table 5 always beats standard ATM on the wire.
  CellGeometry std_g;
  for (std::uint64_t len : {1ull, 48ull, 100ull, 4096ull, 100000ull}) {
    EXPECT_LE(g.wire_bytes(len), std_g.wire_bytes(len)) << len;
  }
}

TEST(Frame, HeaderRoundTrip) {
  struct Hdr {
    std::uint32_t a;
    std::uint16_t b;
  };
  std::vector<std::byte> body{std::byte{9}, std::byte{8}};
  Frame f = Frame::make(1, 2, 7, Hdr{42, 3}, body);
  EXPECT_EQ(f.size(), sizeof(Hdr) + 2);
  const Hdr h = f.header<Hdr>();
  EXPECT_EQ(h.a, 42u);
  EXPECT_EQ(h.b, 3u);
  EXPECT_EQ(f.bytes().back(), std::byte{8});
}

TEST(Banyan, StagesAndPorts) {
  BanyanSwitch sw(32, 500 * sim::kNanosecond);
  EXPECT_EQ(sw.stages(), 5u);  // the paper's 32-port banyan
  EXPECT_EQ(sw.ports(), 32u);
}

TEST(Banyan, UncontendedLatencyIsTheFabricLatency) {
  BanyanSwitch sw(32, 500 * sim::kNanosecond);
  const sim::SimTime out = sw.route(0, 3, 17, 1000);
  EXPECT_EQ(out, 500u * sim::kNanosecond);
  EXPECT_EQ(sw.contention_time(), 0u);
}

TEST(Banyan, SameOutputContends) {
  BanyanSwitch sw(32, 500 * sim::kNanosecond);
  const sim::SimDuration burst = 10 * sim::kMicrosecond;
  const sim::SimTime a = sw.route(0, 5, 9, burst);
  const sim::SimTime b = sw.route(0, 6, 9, burst);  // same destination port
  EXPECT_GT(b, a);
  EXPECT_GT(sw.contention_time(), 0u);
}

TEST(Banyan, DisjointPathsDoNotContend) {
  BanyanSwitch sw(32, 500 * sim::kNanosecond);
  const sim::SimDuration burst = 10 * sim::kMicrosecond;
  const sim::SimTime a = sw.route(0, 0, 0, burst);
  const sim::SimTime b = sw.route(0, 31, 31, burst);
  EXPECT_EQ(a, b);
  EXPECT_EQ(sw.contention_time(), 0u);
}

// Property: a path's resources must be consistent — the final stage resource
// is determined by the destination alone, and two flows to different
// destinations never share it.
class BanyanPathProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BanyanPathProperty, FinalStageKeyedByDestination) {
  BanyanSwitch sw(GetParam(), 500 * sim::kNanosecond);
  const std::uint32_t ports = sw.ports();
  const std::uint32_t last = sw.stages() - 1;
  for (std::uint32_t s1 = 0; s1 < ports; s1 += 3) {
    for (std::uint32_t s2 = 0; s2 < ports; s2 += 5) {
      for (std::uint32_t d = 0; d < ports; d += 3) {
        EXPECT_EQ(sw.path_resource(s1, d, last), sw.path_resource(s2, d, last));
      }
    }
  }
  for (std::uint32_t d1 = 0; d1 < ports; ++d1) {
    for (std::uint32_t d2 = d1 + 1; d2 < ports; ++d2) {
      EXPECT_NE(sw.path_resource(0, d1, last), sw.path_resource(0, d2, last));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PortCounts, BanyanPathProperty, ::testing::Values(4, 8, 16, 32));

FabricParams test_params() { return FabricParams{}; }

TEST(Fabric, DeliversWithSerializationAndLatency) {
  sim::Engine e;
  Fabric fab(e, test_params());
  bool delivered = false;
  fab.attach(0, [](Frame) {});
  fab.attach(1, [&](Frame f) {
    delivered = true;
    EXPECT_EQ(f.size(), 24u);
  });
  Frame f = Frame::blank(0, 1, 0, 24);
  const DeliveryTiming t = fab.send(0, std::move(f));
  EXPECT_EQ(t.cells, 1u);
  // One cell: ~681.6 ns serialization + 500 ns switch + 2x150 ns propagation.
  EXPECT_NEAR(static_cast<double>(t.arrival) / sim::kNanosecond, 681.6 + 500 + 300, 5.0);
  e.run();
  EXPECT_TRUE(delivered);
}

TEST(Fabric, PerPairFifoOrder) {
  sim::Engine e;
  Fabric fab(e, test_params());
  std::vector<int> order;
  fab.attach(0, [](Frame) {});
  fab.attach(1, [&](Frame f) { order.push_back(static_cast<int>(f.vci)); });
  for (int i = 0; i < 5; ++i) {
    Frame f = Frame::blank(0, 1, static_cast<std::uint32_t>(i), 4096);
    fab.send(0, std::move(f));
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Fabric, BiggerFramesArriveLater) {
  sim::SimTime small_arrival = 0;
  sim::SimTime big_arrival = 0;
  for (int round = 0; round < 2; ++round) {
    sim::Engine e;
    Fabric fab(e, test_params());
    fab.attach(0, [](Frame) {});
    fab.attach(1, [](Frame) {});
    Frame f = Frame::blank(0, 1, 0, round == 0 ? 64 : 4096);
    const DeliveryTiming t = fab.send(0, std::move(f));
    (round == 0 ? small_arrival : big_arrival) = t.arrival;
  }
  EXPECT_LT(small_arrival, big_arrival);
}

TEST(Fabric, UplinkSerializesSuccessiveSends) {
  sim::Engine e;
  Fabric fab(e, test_params());
  fab.attach(0, [](Frame) {});
  fab.attach(1, [](Frame) {});
  fab.attach(2, [](Frame) {});
  Frame a = Frame::blank(0, 1, 0, 4096);
  // different destination, same uplink
  Frame b = Frame::blank(0, 2, 0, 4096);
  const DeliveryTiming ta = fab.send(0, std::move(a));
  const DeliveryTiming tb = fab.send(0, std::move(b));
  EXPECT_GE(tb.first_bit_out, ta.first_bit_out);
  EXPECT_GT(tb.arrival, ta.arrival);
  EXPECT_EQ(fab.frames_sent(), 2u);
  EXPECT_EQ(fab.cells_sent(), 2u * 86);
}

TEST(Fabric, DeliveryIsZeroCopyAndStatsAreExact) {
  // Regression pin for the pooled delivery path: the frame handed to the
  // destination hook must be the *same* buffer the sender built (refcount
  // handoff through the scheduled FrameTask, no payload copy), and the
  // frames/cells counters must match a hand-computed cell count.
  sim::Engine e;
  Fabric fab(e, test_params());
  const std::byte* delivered_data = nullptr;
  std::uint64_t delivered_size = 0;
  fab.attach(0, [](Frame) {});
  fab.attach(1, [&](Frame f) {
    delivered_data = f.payload.data();
    delivered_size = f.size();
    EXPECT_TRUE(f.payload.unique());  // sole owner at delivery: no stray copies
  });

  Frame f = Frame::blank(0, 1, 7, 1000);
  f.mutable_bytes()[999] = std::byte{0x6E};
  const std::byte* sent_data = f.payload.data();
  fab.send(0, std::move(f));
  e.run();

  EXPECT_EQ(delivered_data, sent_data);
  EXPECT_EQ(delivered_size, 1000u);
  EXPECT_EQ(fab.frames_sent(), 1u);
  // ceil(1000 / 48 payload bytes per cell) = 21 cells.
  EXPECT_EQ(fab.cells_sent(), 21u);
}

}  // namespace
}  // namespace cni::atm
