// NIC-resident collectives (DESIGN.md §16): combining-tree shapes, the
// topology-derived fan-in, the tree barrier/reduce protocol in both
// collective modes, and the byte-identity of sharded runs under
// --collective=nic.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/jacobi.hpp"
#include "apps/runner.hpp"
#include "atm/coll_tree.hpp"
#include "atm/topology.hpp"
#include "cluster/cluster.hpp"
#include "dsm/context.hpp"
#include "dsm/system.hpp"
#include "nic/board.hpp"
#include "obs/report.hpp"

namespace cni {
namespace {

using cluster::BoardKind;
using cluster::CollectiveMode;

// ---------------------------------------------------------------------------
// Tree shapes (pure functions of (topology, N, costs))

/// Walks every structural invariant a combining tree must hold: a single
/// root, parent/child agreement, ascending child order, the fan-in cap, and
/// the advertised depth.
void check_tree(const atm::CollectiveTree& t) {
  ASSERT_EQ(t.parent.size(), t.nodes);
  ASSERT_EQ(t.children.size(), t.nodes);
  std::uint32_t roots = 0;
  std::size_t edges = 0;
  for (std::uint32_t v = 0; v < t.nodes; ++v) {
    if (t.parent[v] == v) ++roots;
    ASSERT_LE(t.children[v].size(), t.fanin) << "node " << v;
    std::uint32_t prev = 0;
    for (const std::uint32_t c : t.children[v]) {
      ASSERT_NE(c, v);
      ASSERT_EQ(t.parent[c], v);
      ASSERT_TRUE(t.children[v].front() == c || c > prev) << "children must ascend";
      prev = c;
      ++edges;
    }
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(edges, t.nodes - 1u);  // a tree: every non-root has one parent
  // depth == the longest parent-walk, and every walk terminates at the root.
  std::uint32_t longest = 0;
  for (std::uint32_t v = 0; v < t.nodes; ++v) {
    std::uint32_t hops = 0;
    std::uint32_t at = v;
    while (t.parent[at] != at) {
      at = t.parent[at];
      ASSERT_LE(++hops, t.nodes);
    }
    longest = std::max(longest, hops);
  }
  EXPECT_EQ(t.depth, longest);
}

TEST(CollectiveTree, KAryStructureInvariants) {
  for (const std::uint32_t nodes : {1u, 2u, 3u, 7u, 8u, 17u, 64u, 100u, 256u}) {
    for (const std::uint32_t fanin : {1u, 2u, 3u, 4u, 8u, 16u}) {
      const atm::CollectiveTree t = atm::make_kary_tree(nodes, fanin);
      ASSERT_NO_FATAL_FAILURE(check_tree(t)) << nodes << "-ary-" << fanin;
      EXPECT_EQ(t.parent[0], 0u) << "k-ary trees root at node 0";
      // Contiguous-range splitting: a child's id exceeds its parent's, so a
      // reverse id sweep is a valid bottom-up evaluation order.
      for (std::uint32_t v = 1; v < nodes; ++v) EXPECT_LT(t.parent[v], v);
    }
  }
}

TEST(CollectiveTree, StarIsTheHostModeShape) {
  const atm::CollectiveTree t = atm::make_star_tree(6, 0);
  ASSERT_NO_FATAL_FAILURE(check_tree(t));
  EXPECT_EQ(t.depth, 1u);
  EXPECT_EQ(t.children[0].size(), 5u);
  // A star rooted off node 0 (the generalized form) holds the invariants too.
  const atm::CollectiveTree off = atm::make_star_tree(5, 3);
  ASSERT_NO_FATAL_FAILURE(check_tree(off));
  EXPECT_EQ(off.parent[3], 3u);
  EXPECT_EQ(off.children[3].size(), 4u);
}

/// The exact cost constants DsmSystem derives for the NIC tree (see
/// dsm/system.cpp): an edge is the full store-and-forward pipeline, a child
/// slot is one more frame's serialized downlink occupancy.
struct NicTreeCosts {
  sim::SimDuration per_hop;
  sim::SimDuration per_child;
  NicTreeCosts() {
    const nic::NicParams nic;
    const dsm::DsmParams dp;
    const sim::Clock clk(nic.nic_freq_hz);
    per_hop = clk.cycles(nic.per_frame_tx_cycles + nic.per_frame_rx_cycles +
                         nic.aih_dispatch_cycles + dp.handler_base_cycles);
    per_child = clk.cycles(nic.per_frame_rx_cycles);
  }
};

atm::CollectiveTree tree_for(atm::TopologyKind kind, std::uint32_t nodes) {
  atm::FabricParams fp;
  fp.topology = kind;
  std::uint32_t ports = 32;
  while (ports < nodes) ports *= 2;
  fp.switch_ports = ports;
  const std::unique_ptr<atm::Topology> topo = atm::make_topology(fp);
  const NicTreeCosts c;
  return atm::make_collective_tree(*topo, nodes, c.per_hop, c.per_child);
}

TEST(CollectiveTree, FaninFollowsTopologyDistances) {
  // At the paper's Figure 4 scale the flat banyan (uniform 500 ns) keeps the
  // tree narrow, while the Clos cross-block and torus multi-hop distances
  // up-weight depth and buy wider fan-in — the tentpole's topology-awareness.
  const atm::CollectiveTree banyan = tree_for(atm::TopologyKind::kBanyan, 1024);
  const atm::CollectiveTree clos = tree_for(atm::TopologyKind::kClos, 1024);
  const atm::CollectiveTree torus = tree_for(atm::TopologyKind::kTorus, 1024);
  ASSERT_NO_FATAL_FAILURE(check_tree(banyan));
  ASSERT_NO_FATAL_FAILURE(check_tree(clos));
  ASSERT_NO_FATAL_FAILURE(check_tree(torus));
  EXPECT_EQ(banyan.fanin, 4u);
  EXPECT_GT(clos.fanin, banyan.fanin);
  EXPECT_GT(torus.fanin, banyan.fanin);
  // Every choice is logarithmic: the O(log N) shape the scaling bench plots.
  for (const atm::CollectiveTree* t : {&banyan, &clos, &torus}) {
    EXPECT_LE(t->depth, 10u);  // <= log2(1024)
    EXPECT_GE(t->depth, 2u);
  }
}

TEST(CollectiveTree, ChosenFaninMinimizesTheCostModel) {
  const NicTreeCosts c;
  for (const atm::TopologyKind kind :
       {atm::TopologyKind::kBanyan, atm::TopologyKind::kClos, atm::TopologyKind::kTorus}) {
    atm::FabricParams fp;
    fp.topology = kind;
    fp.switch_ports = 256;
    const std::unique_ptr<atm::Topology> topo = atm::make_topology(fp);
    const atm::CollectiveTree best =
        atm::make_collective_tree(*topo, 256, c.per_hop, c.per_child);
    const sim::SimDuration best_cost = best.up_sweep_cost(*topo, c.per_hop, c.per_child);
    for (const std::uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
      const atm::CollectiveTree cand = atm::make_kary_tree(256, k);
      EXPECT_LE(best_cost, cand.up_sweep_cost(*topo, c.per_hop, c.per_child))
          << atm::topology_name(kind) << " k=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Protocol behaviour (full stack, hand-written node programs)

struct Fixture {
  explicit Fixture(std::uint32_t procs, dsm::DsmParams dp = {},
                   BoardKind board = BoardKind::kCni)
      : cl(apps::make_params(board, procs)), sys(cl, dp) {}
  cluster::Cluster cl;
  dsm::DsmSystem sys;

  void run(const std::function<void(dsm::DsmContext&)>& body) {
    cl.run([&](std::size_t i, sim::SimThread& t) {
      dsm::DsmContext ctx(sys, i, t);
      body(ctx);
    });
  }
};

dsm::DsmParams nic_params() {
  dsm::DsmParams dp;
  dp.collective = CollectiveMode::kNic;
  return dp;
}

TEST(NicCollective, BarrierPropagatesWritesAcrossEpisodes) {
  // Three barrier episodes with a rotating writer: every down-sweep must
  // carry exactly the intervals the receiving subtree has not seen, and the
  // epoch lockstep must hold across episodes.
  constexpr std::uint32_t kProcs = 5;  // uneven tree: exercises chunk splits
  Fixture f(kProcs, nic_params());
  EXPECT_EQ(f.sys.collective(), CollectiveMode::kNic);
  const mem::VAddr x = f.sys.alloc(8 * kProcs, "x");
  std::vector<std::uint64_t> seen(kProcs, 0);
  f.run([&](dsm::DsmContext& ctx) {
    for (std::uint32_t round = 0; round < 3; ++round) {
      const std::uint32_t writer = round % kProcs;
      if (ctx.self() == writer) {
        ctx.write<std::uint64_t>(x + 8 * writer, 100 * round + writer);
      }
      ctx.barrier();
      const auto got = ctx.read<std::uint64_t>(x + 8 * writer);
      if (got != 100 * round + writer) seen[ctx.self()] = ~0ull;
      ctx.barrier();
    }
    seen[ctx.self()] = seen[ctx.self()] == ~0ull ? ~0ull : 1;
  });
  for (std::uint32_t i = 0; i < kProcs; ++i) {
    EXPECT_EQ(seen[i], 1u) << "node " << i << " read a stale value";
  }
}

TEST(NicCollective, MatchesHostBarrierSemantics) {
  // The same program under both modes must compute the same values — only
  // the synchronization cost may differ.
  auto program = [](CollectiveMode mode) {
    dsm::DsmParams dp;
    dp.collective = mode;
    Fixture f(4, dp);
    const mem::VAddr acc = f.sys.alloc(8, "acc");
    std::uint64_t final = 0;
    f.run([&](dsm::DsmContext& ctx) {
      for (std::uint32_t round = 0; round < 4; ++round) {
        if (ctx.self() == round % 4) {
          const auto v = ctx.read<std::uint64_t>(acc);
          ctx.write<std::uint64_t>(acc, v * 3 + ctx.self() + 1);
        }
        ctx.barrier();
      }
      if (ctx.self() == 3) final = ctx.read<std::uint64_t>(acc);
    });
    return final;
  };
  const std::uint64_t host = program(CollectiveMode::kHost);
  const std::uint64_t nic = program(CollectiveMode::kNic);
  EXPECT_EQ(host, nic);
  EXPECT_EQ(host, ((1u * 3 + 2) * 3 + 3) * 3 + 4);  // chained writer updates
}

TEST(NicCollective, ReduceAndBroadcastBothModes) {
  for (const CollectiveMode mode : {CollectiveMode::kHost, CollectiveMode::kNic}) {
    dsm::DsmParams dp;
    dp.collective = mode;
    constexpr std::uint32_t kProcs = 6;
    Fixture f(kProcs, dp);
    std::vector<std::uint64_t> sums(kProcs), mins(kProcs), maxs(kProcs), roots(kProcs);
    f.run([&](dsm::DsmContext& ctx) {
      const std::uint64_t mine = 10 + ctx.self();
      sums[ctx.self()] = ctx.reduce_u64(dsm::ReduceOp::kSum, mine);
      mins[ctx.self()] = ctx.reduce_u64(dsm::ReduceOp::kMin, mine);
      maxs[ctx.self()] = ctx.reduce_u64(dsm::ReduceOp::kMax, mine);
      roots[ctx.self()] = ctx.broadcast_u64(777 + ctx.self());
    });
    for (std::uint32_t i = 0; i < kProcs; ++i) {
      EXPECT_EQ(sums[i], (10u + 15u) * kProcs / 2) << "mode " << collective_name(mode);
      EXPECT_EQ(mins[i], 10u);
      EXPECT_EQ(maxs[i], 10u + kProcs - 1);
      EXPECT_EQ(roots[i], 777u) << "broadcast carries the tree root's value";
    }
  }
}

TEST(NicCollective, BarrierManagerIsLazyAndManagerOnly) {
  // Host mode: only the manager node ever materializes the centralized
  // state, and only once a barrier actually runs. NIC mode: nobody does.
  Fixture host(4);  // default DsmParams: kHost
  host.run([](dsm::DsmContext& ctx) {
    ctx.barrier();
    ctx.barrier();
  });
  EXPECT_TRUE(host.sys.runtime(0).barrier_manager_allocated());
  for (std::uint32_t i = 1; i < 4; ++i) {
    EXPECT_FALSE(host.sys.runtime(i).barrier_manager_allocated()) << "node " << i;
  }

  Fixture idle(4);  // no barrier ever runs: not even the manager allocates
  idle.run([](dsm::DsmContext&) {});
  EXPECT_FALSE(idle.sys.runtime(0).barrier_manager_allocated());

  Fixture nic(4, nic_params());
  nic.run([](dsm::DsmContext& ctx) { ctx.barrier(); });
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(nic.sys.runtime(i).barrier_manager_allocated()) << "node " << i;
  }
}

TEST(NicCollective, HostModeTreeIsAStarAndNicModeIsNot) {
  Fixture host(8);
  EXPECT_EQ(host.sys.collective_tree().depth, 1u);
  EXPECT_EQ(host.sys.collective_tree().children[0].size(), 7u);
  Fixture nic(8, nic_params());
  EXPECT_GE(nic.sys.collective_tree().depth, 2u);
  EXPECT_LE(nic.sys.collective_tree().fanin, 4u);
}

TEST(NicCollective, FaninOverrideShapesTheTree) {
  dsm::DsmParams dp = nic_params();
  dp.collective_fanin = 1;  // degenerate chain
  Fixture chain(5, dp);
  EXPECT_EQ(chain.sys.collective_tree().depth, 4u);
  std::uint64_t sum = 0;
  chain.run([&](dsm::DsmContext& ctx) {
    const std::uint64_t r = ctx.reduce_u64(dsm::ReduceOp::kSum, 1);
    if (ctx.self() == 4) sum = r;  // the deepest leaf
    ctx.barrier();                 // and the chain barrier still releases
  });
  EXPECT_EQ(sum, 5u);
}

// ---------------------------------------------------------------------------
// Determinism: --collective=nic artifacts are byte-identical across the
// shard-count x fusion grid on every topology (the parsim headline property,
// extended to the new handlers).

/// Process-wide collective default, restored on scope exit (run_jacobi
/// builds its DsmParams internally, so it reads the default).
struct CollectiveGuard {
  explicit CollectiveGuard(CollectiveMode m) { cluster::set_default_collective(m); }
  ~CollectiveGuard() { cluster::set_default_collective(CollectiveMode::kHost); }
};

std::string run_fingerprint(const cluster::SimParams& params,
                            const apps::JacobiConfig& config) {
  double checksum = 0;
  const apps::RunResult r = apps::run_jacobi(params, config, &checksum);
  obs::ReportPoint point;
  point.label = "collective-determinism";
  point.values.emplace_back("elapsed_cycles", static_cast<double>(r.elapsed_cycles));
  for (const sim::NodeStats::Field& f : sim::NodeStats::fields()) {
    point.legacy.emplace_back(f.name, r.totals.*(f.member));
  }
  point.snapshot = r.snapshot;
  std::ostringstream out;
  out.precision(17);
  out << r.elapsed << '|' << r.elapsed_cycles << '|' << checksum << '|'
      << r.hit_ratio_pct << '|' << r.compute_e9 << '|' << r.overhead_e9 << '|'
      << r.delay_e9 << '\n';
  const std::vector<obs::ReportPoint> points = {point};
  out << obs::run_report_json("test_collective", {{"app", "jacobi"}}, points);
  out << obs::chrome_trace_json(points);
  return std::move(out).str();
}

TEST(NicCollectiveDeterminism, ByteIdenticalAcrossShardsFusionAndTopology) {
  const CollectiveGuard guard(CollectiveMode::kNic);
  apps::JacobiConfig config;
  config.n = 16;
  config.iterations = 3;
  for (const atm::TopologyKind kind :
       {atm::TopologyKind::kBanyan, atm::TopologyKind::kClos, atm::TopologyKind::kTorus}) {
    cluster::SimParams params = apps::make_params(BoardKind::kCni, 8);
    params.fabric.topology = kind;
    params.obs.trace = true;  // trace-export identity too
    params.sim_shards = 1;
    const std::string base = run_fingerprint(params, config);
    for (const bool fuse : {false, true}) {
      for (const std::uint32_t k : {1u, 4u}) {
        params.sim_shards = k;
        params.sim_fusion = fuse;
        EXPECT_EQ(base, run_fingerprint(params, config))
            << atm::topology_name(kind) << " diverged at K=" << k
            << " fusion=" << fuse;
      }
    }
  }
}

TEST(NicCollectiveDeterminism, NicAndHostAgreeOnTheComputation) {
  // The collective mode must never change what the app computes — only how
  // long synchronization takes (nic strictly reshapes barrier traffic).
  apps::JacobiConfig config;
  config.n = 16;
  config.iterations = 3;
  const cluster::SimParams params = apps::make_params(BoardKind::kCni, 8);
  double host_sum = 0;
  double nic_sum = 0;
  {
    const CollectiveGuard guard(CollectiveMode::kHost);
    apps::run_jacobi(params, config, &host_sum);
  }
  {
    const CollectiveGuard guard(CollectiveMode::kNic);
    apps::run_jacobi(params, config, &nic_sum);
  }
  EXPECT_EQ(host_sum, nic_sum);
}

// ---------------------------------------------------------------------------
// CLI knob

TEST(CollectiveCli, ParseAndName) {
  CollectiveMode m = CollectiveMode::kHost;
  EXPECT_TRUE(cluster::parse_collective("nic", m));
  EXPECT_EQ(m, CollectiveMode::kNic);
  EXPECT_TRUE(cluster::parse_collective("host", m));
  EXPECT_EQ(m, CollectiveMode::kHost);
  EXPECT_FALSE(cluster::parse_collective("tree", m));
  EXPECT_STREQ(cluster::collective_name(CollectiveMode::kNic), "nic");
  EXPECT_STREQ(cluster::collective_name(CollectiveMode::kHost), "host");
}

}  // namespace
}  // namespace cni
