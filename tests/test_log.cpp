// util::Logger: sim-time prefix hook, structured JSON mode, level gating.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/log.hpp"

namespace cni::util {
namespace {

/// Runs `body` with the logger redirected to a tmpfile and returns what it
/// wrote. Restores the default stream/level/mode afterwards.
template <typename Fn>
std::string capture_log(Fn&& body) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  Logger::set_stream(f);
  body();
  Logger::set_stream(nullptr);
  Logger::set_level(LogLevel::kWarn);
  Logger::set_json(false);
  Logger::set_time_hook(nullptr, nullptr);

  std::fflush(f);
  std::rewind(f);
  std::string out;
  char buf[256];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::uint64_t fixed_time(void* ctx) { return *static_cast<std::uint64_t*>(ctx); }

TEST(Logger, PlainLineWithoutHookHasNoTimestamp) {
  const std::string out = capture_log([] { CNI_LOG_ERROR("boom %d", 7); });
  EXPECT_EQ(out, "[cni:E] boom 7\n");
}

TEST(Logger, TimeHookStampsSimulatedPicoseconds) {
  std::uint64_t now = 12345;
  const std::string out = capture_log([&] {
    const ScopedLogTime scoped(&fixed_time, &now);
    CNI_LOG_WARN("hello");
    now = 67890;  // the hook is consulted per line
    CNI_LOG_ERROR("again");
  });
  EXPECT_EQ(out, "[cni:W t=12345] hello\n[cni:E t=67890] again\n");
}

TEST(Logger, ScopedHookUninstallsOnExit) {
  std::uint64_t now = 42;
  const std::string out = capture_log([&] {
    { const ScopedLogTime scoped(&fixed_time, &now); }
    CNI_LOG_ERROR("late");
  });
  EXPECT_EQ(out, "[cni:E] late\n");
}

TEST(Logger, JsonModeEmitsOneObjectPerLine) {
  std::uint64_t now = 99;
  const std::string out = capture_log([&] {
    Logger::set_json(true);
    const ScopedLogTime scoped(&fixed_time, &now);
    CNI_LOG_WARN("said \"hi\"\tto %s", "node\n0");
  });
  EXPECT_EQ(out, "{\"lvl\":\"W\",\"t\":99,\"msg\":\"said \\\"hi\\\"\\tto node\\n0\"}\n");
}

TEST(Logger, JsonModeOmitsTimeWithoutHook) {
  const std::string out = capture_log([] {
    Logger::set_json(true);
    CNI_LOG_ERROR("plain");
  });
  EXPECT_EQ(out, "{\"lvl\":\"E\",\"msg\":\"plain\"}\n");
}

TEST(Logger, LevelGatesLines) {
  const std::string out = capture_log([] {
    Logger::set_level(LogLevel::kError);
    CNI_LOG_WARN("dropped");
    CNI_LOG_ERROR("kept");
  });
  EXPECT_EQ(out, "[cni:E] kept\n");
  EXPECT_TRUE(Logger::enabled(LogLevel::kError));
  EXPECT_TRUE(Logger::enabled(LogLevel::kWarn));  // default level restored
  EXPECT_FALSE(Logger::enabled(LogLevel::kDebug));
}

}  // namespace
}  // namespace cni::util
