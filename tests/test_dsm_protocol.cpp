// Lazy-release-consistency protocol behaviour across nodes.
//
// These scenarios drive the full stack (DSM handlers on the boards, ATM
// fabric, caches) with hand-written node programs, checking both the
// memory-model semantics and the protocol bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/runner.hpp"
#include "dsm/context.hpp"
#include "dsm/system.hpp"

namespace cni::dsm {
namespace {

using apps::make_params;
using cluster::BoardKind;

struct Fixture {
  explicit Fixture(std::uint32_t procs, BoardKind board = BoardKind::kCni)
      : cl(make_params(board, procs)), sys(cl) {}
  cluster::Cluster cl;
  DsmSystem sys;

  void run(const std::function<void(DsmContext&)>& body) {
    cl.run([&](std::size_t i, sim::SimThread& t) {
      DsmContext ctx(sys, i, t);
      body(ctx);
    });
  }
};

TEST(DsmProtocol, BarrierPropagatesWrites) {
  Fixture f(2);
  const mem::VAddr x = f.sys.alloc(8, "x");
  double seen = 0;
  f.run([&](DsmContext& ctx) {
    if (ctx.self() == 0) ctx.write<double>(x, 3.25);
    ctx.barrier();
    if (ctx.self() == 1) seen = ctx.read<double>(x);
  });
  EXPECT_DOUBLE_EQ(seen, 3.25);
  EXPECT_GE(f.cl.stats().total().write_notices_received, 1u);
  EXPECT_GE(f.cl.stats().node(1).read_faults, 1u);
}

TEST(DsmProtocol, LazinessReadsStayStaleWithoutAcquire) {
  // Release consistency: a write is only guaranteed visible after the reader
  // acquires; with no synchronisation the reader keeps its old (zero) copy.
  Fixture f(2);
  const mem::VAddr x = f.sys.alloc(8, "x");
  double seen = -1;
  f.run([&](DsmContext& ctx) {
    if (ctx.self() == 0) {
      (void)ctx.read<double>(x);  // validate a local copy first (home is node 0)
      ctx.thread().delay(5 * sim::kMillisecond);
      // no release/barrier in sight of node 1's read
    } else {
      seen = ctx.read<double>(x);  // cold fetch from home: zeros
      ctx.thread().delay(1 * sim::kMillisecond);
      EXPECT_DOUBLE_EQ(ctx.read<double>(x), seen);  // still the stale copy
    }
  });
  EXPECT_DOUBLE_EQ(seen, 0.0);
}

TEST(DsmProtocol, LockChainTransfersLatestValue) {
  // The regression behind the bag-of-tasks bug: strictly alternating
  // lock-protected increments must never lose an update.
  Fixture f(2);
  const mem::VAddr x = f.sys.alloc(8, "x");
  f.run([&](DsmContext& ctx) {
    if (ctx.self() == 0) ctx.write<std::uint64_t>(x, 0);
    ctx.barrier();
    for (int i = 0; i < 25; ++i) {
      ctx.acquire(5);
      ctx.write<std::uint64_t>(x, ctx.read<std::uint64_t>(x) + 1);
      ctx.release(5);
      ctx.compute(1000);
    }
    ctx.barrier();
    EXPECT_EQ(ctx.read<std::uint64_t>(x), 50u);
  });
}

TEST(DsmProtocol, ConcurrentWriteSharingMergesDiffs) {
  // Four nodes write disjoint quarters of ONE page between barriers; the
  // diff merge must reassemble the page on every node.
  Fixture f(4);
  const mem::VAddr base = f.sys.alloc(4096, "page");
  f.run([&](DsmContext& ctx) {
    const std::uint32_t me = ctx.self();
    for (std::uint32_t round = 1; round <= 3; ++round) {
      for (std::uint32_t k = 0; k < 16; ++k) {
        ctx.write<std::uint64_t>(base + (me * 16 + k) * 8, me * 1000 + round * 100 + k);
      }
      ctx.barrier();
      for (std::uint32_t w = 0; w < 4; ++w) {
        for (std::uint32_t k = 0; k < 16; ++k) {
          EXPECT_EQ(ctx.read<std::uint64_t>(base + (w * 16 + k) * 8),
                    w * 1000 + round * 100 + k)
              << "node " << me << " round " << round;
        }
      }
      ctx.barrier();
    }
  });
  EXPECT_GT(f.cl.stats().total().diffs_applied, 0u);
}

TEST(DsmProtocol, TransitiveCausalityThroughLockChains) {
  // n0 writes x, releases L0; n1 acquires L0 (sees x), writes y, releases
  // L1; n2 acquires L1 and must see BOTH x and y (interval forwarding).
  Fixture f(3);
  const mem::VAddr x = f.sys.alloc(8, "x");
  const mem::VAddr y = f.sys.alloc(8, "y");
  f.run([&](DsmContext& ctx) {
    switch (ctx.self()) {
      case 0:
        ctx.acquire(10);
        ctx.write<std::uint64_t>(x, 111);
        ctx.release(10);
        break;
      case 1:
        ctx.thread().delay(2 * sim::kMillisecond);
        ctx.acquire(10);
        EXPECT_EQ(ctx.read<std::uint64_t>(x), 111u);
        ctx.release(10);
        ctx.acquire(11);
        ctx.write<std::uint64_t>(y, 222);
        ctx.release(11);
        break;
      case 2:
        ctx.thread().delay(6 * sim::kMillisecond);
        ctx.acquire(11);
        EXPECT_EQ(ctx.read<std::uint64_t>(x), 111u);  // transitive
        EXPECT_EQ(ctx.read<std::uint64_t>(y), 222u);
        ctx.release(11);
        break;
      default: break;
    }
  });
}

TEST(DsmProtocol, LocksAreMutuallyExclusive) {
  Fixture f(4);
  const mem::VAddr x = f.sys.alloc(8, "x");
  bool inside = false;  // native flag: overlap would be seen instantly
  int entries = 0;
  f.run([&](DsmContext& ctx) {
    (void)x;
    for (int i = 0; i < 10; ++i) {
      ctx.acquire(3);
      EXPECT_FALSE(inside);
      inside = true;
      ++entries;
      ctx.compute(5000);
      ctx.thread().delay(10 * sim::kMicrosecond);
      inside = false;
      ctx.release(3);
      ctx.compute(2000);
    }
  });
  EXPECT_EQ(entries, 40);
}

TEST(DsmProtocol, BarrierHoldsEveryoneBack) {
  Fixture f(3);
  // Per-node slots, reduced after the run: node bodies may execute on
  // different shard threads (CNI_SIM_SHARDS), so they must not fold into a
  // shared accumulator mid-run.
  std::vector<sim::SimTime> arrivals(3);
  std::vector<sim::SimTime> departures(3);
  f.run([&](DsmContext& ctx) {
    ctx.compute(ctx.self() * 1'000'000);  // staggered arrivals
    ctx.thread().delay(1);                // flush local clock
    arrivals[ctx.self()] = ctx.thread().engine().now();
    ctx.barrier();
    departures[ctx.self()] = ctx.thread().engine().now();
  });
  const sim::SimTime slowest_arrival = *std::max_element(arrivals.begin(), arrivals.end());
  for (const sim::SimTime d : departures) EXPECT_GE(d, slowest_arrival);
}

TEST(DsmProtocol, InvalidationAndModeTransitions) {
  Fixture f(2);
  const mem::VAddr x = f.sys.alloc(8, "x");
  const PageId page = f.sys.page_of_va(x);
  f.run([&](DsmContext& ctx) {
    if (ctx.self() == 0) {
      ctx.write<std::uint64_t>(x, 1);
      EXPECT_EQ(ctx.runtime().page_mode(page), PageMode::kReadWrite);
      ctx.barrier();
      // Our interval closed at the barrier: back to read-only.
      EXPECT_EQ(ctx.runtime().page_mode(page), PageMode::kReadOnly);
      ctx.barrier();
    } else {
      ctx.barrier();
      (void)ctx.read<std::uint64_t>(x);
      EXPECT_EQ(ctx.runtime().page_mode(page), PageMode::kReadOnly);
      ctx.barrier();
    }
  });
}

TEST(DsmProtocol, RemoteNoticeInvalidatesReaderCopy) {
  Fixture f(2);
  const mem::VAddr x = f.sys.alloc(8, "x");
  const PageId page = f.sys.page_of_va(x);
  f.run([&](DsmContext& ctx) {
    if (ctx.self() == 0) {
      ctx.write<std::uint64_t>(x, 1);
      ctx.barrier();
      ctx.barrier();
      ctx.write<std::uint64_t>(x, 2);
      ctx.barrier();
    } else {
      ctx.barrier();
      EXPECT_EQ(ctx.read<std::uint64_t>(x), 1u);
      ctx.barrier();
      ctx.barrier();
      // The second barrier carried a notice: our copy must be invalid now.
      EXPECT_EQ(ctx.runtime().page_mode(page), PageMode::kInvalid);
      EXPECT_GE(ctx.runtime().pending_notices(page), 1u);
      EXPECT_EQ(ctx.read<std::uint64_t>(x), 2u);
    }
  });
}

TEST(DsmProtocol, WorksOnStandardBoardToo) {
  Fixture f(3, BoardKind::kStandard);
  const mem::VAddr x = f.sys.alloc(256, "x");
  f.run([&](DsmContext& ctx) {
    ctx.write<std::uint64_t>(x + ctx.self() * 8, ctx.self() + 7);
    ctx.barrier();
    for (std::uint32_t w = 0; w < 3; ++w) {
      EXPECT_EQ(ctx.read<std::uint64_t>(x + w * 8), w + 7);
    }
  });
  // The standard board pays an interrupt per protocol message.
  EXPECT_GT(f.cl.stats().total().host_interrupts, 0u);
}

TEST(DsmProtocol, StatsAreAccountedOnCni) {
  Fixture f(2);
  const mem::VAddr x = f.sys.alloc(4096, "x");
  f.run([&](DsmContext& ctx) {
    if (ctx.self() == 0) {
      for (int i = 0; i < 64; ++i) ctx.write<std::uint64_t>(x + i * 8, i);
    }
    ctx.barrier();
    if (ctx.self() == 1) {
      for (int i = 0; i < 64; ++i) (void)ctx.read<std::uint64_t>(x + i * 8);
    }
    ctx.acquire(1);
    ctx.release(1);
    ctx.barrier();
  });
  const sim::NodeStats t = f.cl.stats().total();
  EXPECT_EQ(t.lock_acquires, 2u);
  EXPECT_EQ(t.barriers, 4u);
  EXPECT_GE(t.write_faults, 1u);
  EXPECT_GE(t.read_faults, 1u);
  EXPECT_GT(t.messages_sent, 0u);
  EXPECT_GT(t.compute_cycles, 0u);
  EXPECT_GT(t.synch_overhead_cycles, 0u);
  // CNI: protocol runs on the NIC — no per-message host interrupts beyond
  // (at most) the hybrid governor's idle-gap ones.
  EXPECT_LT(t.host_interrupts, t.messages_sent / 2);
}

TEST(DsmProtocol, ManyPagesStressWithRandomSharing) {
  Fixture f(4);
  const std::uint32_t kWords = 2048;  // 4 pages
  const mem::VAddr base = f.sys.alloc(kWords * 8, "arr");
  f.run([&](DsmContext& ctx) {
    const std::uint32_t me = ctx.self();
    for (std::uint32_t round = 0; round < 4; ++round) {
      // Strided ownership rotates each round.
      for (std::uint32_t w = (me + round) % 4; w < kWords; w += 4) {
        ctx.write<std::uint64_t>(base + w * 8, (round << 16) | w);
      }
      ctx.barrier();
      for (std::uint32_t w = 0; w < kWords; w += 17) {
        EXPECT_EQ(ctx.read<std::uint64_t>(base + w * 8),
                  (static_cast<std::uint64_t>(round) << 16) | w);
      }
      ctx.barrier();
    }
  });
}


TEST(DsmProtocol, ChainedWritesThroughDisjointLockChains) {
  // Regression for the base-staleness bug: a page written by two nodes
  // through unrelated lock chains, then cold-read by a third. The base copy
  // comes from one writer and must be patched with the other's diffs even
  // when vector clocks make the chains look ordered.
  Fixture f(3);
  const mem::VAddr arr = f.sys.alloc(4096, "arr");
  f.run([&](DsmContext& ctx) {
    switch (ctx.self()) {
      case 0:
        ctx.acquire(21);
        ctx.write<std::uint64_t>(arr, 111);  // word 0
        ctx.release(21);
        break;
      case 1:
        // Chain through an unrelated lock so node 1's clock dominates node
        // 0's without node 1 ever fetching node 0's data for this page.
        ctx.thread().delay(2 * sim::kMillisecond);
        ctx.acquire(21);
        ctx.release(21);
        ctx.acquire(22);
        ctx.write<std::uint64_t>(arr + 512, 222);  // word 64: same page
        ctx.release(22);
        break;
      case 2:
        ctx.thread().delay(8 * sim::kMillisecond);
        ctx.acquire(21);
        ctx.acquire(22);
        EXPECT_EQ(ctx.read<std::uint64_t>(arr), 111u);
        EXPECT_EQ(ctx.read<std::uint64_t>(arr + 512), 222u);
        ctx.release(22);
        ctx.release(21);
        break;
      default: break;
    }
  });
}

TEST(DsmProtocol, RepeatedOverwriteNeverResurrectsOldValues) {
  // Regression for the retained-diff coalescing bug: a page rewritten many
  // times by one node, then written by another, then read cold by a third —
  // the first writer's shipped history must not replay stale images over
  // the second writer's bytes.
  Fixture f(3);
  const mem::VAddr arr = f.sys.alloc(4096, "arr");
  f.run([&](DsmContext& ctx) {
    if (ctx.self() == 0) {
      for (std::uint64_t round = 1; round <= 5; ++round) {
        for (int w = 0; w < 512; ++w) ctx.write<std::uint64_t>(arr + w * 8, round);
        ctx.acquire(31);  // close an interval per round
        ctx.release(31);
      }
    }
    ctx.barrier();
    if (ctx.self() == 1) {
      ctx.write<std::uint64_t>(arr + 8, 777);  // overwrite one word
    }
    ctx.barrier();
    if (ctx.self() == 2) {
      EXPECT_EQ(ctx.read<std::uint64_t>(arr + 8), 777u);
      EXPECT_EQ(ctx.read<std::uint64_t>(arr), 5u);
      EXPECT_EQ(ctx.read<std::uint64_t>(arr + 4088), 5u);
    }
    ctx.barrier();
  });
}

}  // namespace
}  // namespace cni::dsm
