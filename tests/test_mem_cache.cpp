#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace cni::mem {
namespace {

CacheParams small_params() {
  CacheParams p;
  p.l1_size = 256;
  p.l2_size = 1024;
  p.line_size = 32;
  return p;
}

TEST(CacheModel, ColdMissThenHit) {
  CacheModel c(small_params());
  const CacheAccess miss = c.access(0x1000, false);
  EXPECT_FALSE(miss.l1_hit);
  EXPECT_FALSE(miss.l2_hit);
  EXPECT_EQ(miss.cpu_cycles, 10u + 20u);  // L2 probe + memory
  const CacheAccess hit = c.access(0x1000, false);
  EXPECT_TRUE(hit.l1_hit);
  EXPECT_EQ(hit.cpu_cycles, 1u);
}

TEST(CacheModel, SameLineSharesEntry) {
  CacheModel c(small_params());
  c.access(0x1000, false);
  EXPECT_TRUE(c.access(0x101F, false).l1_hit);   // same 32-byte line
  EXPECT_FALSE(c.access(0x1020, false).l1_hit);  // next line
}

TEST(CacheModel, L2CatchesL1Conflicts) {
  CacheModel c(small_params());
  // 0x0 and 0x100 conflict in a 256-byte direct-mapped L1 but not in L2.
  c.access(0x000, false);
  c.access(0x100, false);
  const CacheAccess a = c.access(0x000, false);
  EXPECT_FALSE(a.l1_hit);
  EXPECT_TRUE(a.l2_hit);
  EXPECT_EQ(a.cpu_cycles, 10u);
}

TEST(CacheModel, DirtyEvictionReachesTheBus) {
  CacheModel c(small_params());
  c.access(0x0000, true);  // dirty line at L1/L2 index 0
  // Conflict in both levels (l2_size = 1024): line 0x0000 evicted dirty.
  const CacheAccess a = c.access(0x0400, false);
  EXPECT_TRUE(a.wrote_back);
  EXPECT_EQ(a.writeback_line, 0x0000u);
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(CacheModel, CleanEvictionSilent) {
  CacheModel c(small_params());
  c.access(0x0000, false);  // clean
  const CacheAccess a = c.access(0x0400, false);
  EXPECT_FALSE(a.wrote_back);
}

TEST(CacheModel, WriteThroughAnnouncesEveryStore) {
  CacheParams p = small_params();
  p.write_back = false;
  CacheModel c(p);
  const CacheAccess w1 = c.access(0x40, true);
  EXPECT_TRUE(w1.bus_write);
  const CacheAccess w2 = c.access(0x40, true);
  EXPECT_TRUE(w2.l1_hit);
  EXPECT_TRUE(w2.bus_write);  // write-through: the bus sees every store
}

TEST(CacheModel, FlushRangeWritesBackDirtyLines) {
  CacheModel c(small_params());
  c.access(0x1000, true);
  c.access(0x1020, true);
  c.access(0x1040, false);  // clean
  std::uint64_t cycles = 0;
  const auto lines = c.flush_range(0x1000, 0x60, &cycles);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], 0x1000u);
  EXPECT_EQ(lines[1], 0x1020u);
  EXPECT_GT(cycles, 0u);
  // After the flush the lines are clean: flushing again writes nothing.
  std::uint64_t cycles2 = 0;
  EXPECT_TRUE(c.flush_range(0x1000, 0x60, &cycles2).empty());
  // ... but they are still cached (flush != invalidate).
  EXPECT_TRUE(c.access(0x1000, false).l1_hit);
}

TEST(CacheModel, InvalidateRangeDropsLines) {
  CacheModel c(small_params());
  c.access(0x1000, false);
  c.invalidate_range(0x1000, 32);
  EXPECT_FALSE(c.access(0x1000, false).l1_hit);
}

TEST(CacheModel, FlushEmptyRangeIsNoop) {
  CacheModel c(small_params());
  std::uint64_t cycles = 0;
  EXPECT_TRUE(c.flush_range(0x1000, 0, &cycles).empty());
  EXPECT_EQ(cycles, 0u);
}

// Property sweep: for any line size, repeated access to the same addresses
// never misses, and the hit counters add up.
class CacheLineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheLineSweep, SteadyStateHits) {
  CacheParams p;
  p.l1_size = 4096;
  p.l2_size = 16384;
  p.line_size = GetParam();
  CacheModel c(p);
  for (int round = 0; round < 3; ++round) {
    for (PAddr a = 0; a < 2048; a += 8) c.access(a, round == 0);
  }
  // Rounds 2 and 3 hit entirely in L1 (working set 2 KB < 4 KB L1).
  const std::uint64_t accesses_per_round = 2048 / 8;
  EXPECT_EQ(c.l1_hits(), 2 * accesses_per_round + (accesses_per_round -
                                                   2048 / p.line_size));
  EXPECT_EQ(c.accesses(), 3 * accesses_per_round);
}

INSTANTIATE_TEST_SUITE_P(LineSizes, CacheLineSweep, ::testing::Values(16, 32, 64, 128));

}  // namespace
}  // namespace cni::mem
