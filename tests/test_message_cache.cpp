#include <gtest/gtest.h>

#include "core/message_cache.hpp"

namespace cni::core {
namespace {

constexpr std::uint64_t kPage = 4096;

MessageCache make_cache(std::uint64_t buffers) {
  return MessageCache(mem::PageGeometry(kPage), buffers * kPage);
}

TEST(MessageCache, BufferCountFromCapacity) {
  // Table 1: 32 KB cache = 8 buffers of one 4 KB page each.
  MessageCache mc(mem::PageGeometry(kPage), 32 * 1024);
  EXPECT_EQ(mc.buffer_count(), 8u);
}

TEST(MessageCache, MissThenInsertThenHit) {
  MessageCache mc = make_cache(4);
  EXPECT_FALSE(mc.lookup_tx(0x10000, kPage));
  mc.insert(0x10000, kPage);
  EXPECT_TRUE(mc.lookup_tx(0x10000, kPage));
  EXPECT_EQ(mc.tx_lookups(), 2u);
  EXPECT_EQ(mc.tx_hits(), 1u);
}

TEST(MessageCache, MultiPageRangeNeedsAllPages) {
  MessageCache mc = make_cache(4);
  mc.insert(0x10000, kPage);  // only the first page of a 2-page message
  EXPECT_FALSE(mc.lookup_tx(0x10000, 2 * kPage));
  mc.insert(0x10000 + kPage, kPage);
  EXPECT_TRUE(mc.lookup_tx(0x10000, 2 * kPage));
}

TEST(MessageCache, ClockSecondChancePreservesTouchedBuffer) {
  // Clock (second-chance) replacement: after the first full sweep clears
  // the reference bits, a buffer touched since survives the next eviction.
  MessageCache mc = make_cache(3);
  mc.insert(0x1000, 1);  // A
  mc.insert(0x2000, 1);  // B
  mc.insert(0x3000, 1);  // C
  mc.insert(0x4000, 1);  // D: sweep clears A,B,C then evicts A
  EXPECT_EQ(mc.evictions(), 1u);
  EXPECT_FALSE(mc.contains(0x1000, 1));
  EXPECT_TRUE(mc.lookup_tx(0x2000, 1));  // touch B: reference bit set again
  mc.insert(0x5000, 1);                  // E: B gets its second chance; C is the victim
  EXPECT_TRUE(mc.contains(0x2000, 1));
  EXPECT_FALSE(mc.contains(0x3000, 1));
  EXPECT_TRUE(mc.contains(0x4000, 1));
  EXPECT_TRUE(mc.contains(0x5000, 1));
}

TEST(MessageCache, SequentialFillEvictsInOrder) {
  MessageCache mc = make_cache(4);
  for (int i = 0; i < 8; ++i) mc.insert(0x10000 + static_cast<std::uint64_t>(i) * kPage, 1);
  EXPECT_EQ(mc.bound_count(), 4u);
  EXPECT_EQ(mc.evictions(), 4u);
  // The most recent four survive.
  for (int i = 4; i < 8; ++i) {
    EXPECT_TRUE(mc.contains(0x10000 + static_cast<std::uint64_t>(i) * kPage, 1)) << i;
  }
}

TEST(MessageCache, SnoopUpdatesBoundBuffer) {
  MessageCache mc = make_cache(4);
  mc.insert(0x10000, kPage);
  EXPECT_TRUE(mc.snoop_write(0x10020, 32));   // a flushed cache line within it
  EXPECT_FALSE(mc.snoop_write(0x90000, 32));  // unbound page: snoop aborted
  EXPECT_EQ(mc.snoop_updates(), 1u);
  // Snooping keeps the buffer valid (consistent), never invalidates it.
  EXPECT_TRUE(mc.lookup_tx(0x10000, kPage));
}

TEST(MessageCache, SnoopRefreshesReferenceBit) {
  MessageCache mc = make_cache(3);
  mc.insert(0x1000, 1);       // A
  mc.insert(0x2000, 1);       // B
  mc.insert(0x3000, 1);       // C
  mc.insert(0x4000, 1);       // evicts A, clears the other reference bits
  mc.snoop_write(0x2000, 8);  // the CPU keeps writing B: bit set by the snoop
  mc.insert(0x5000, 1);
  EXPECT_TRUE(mc.contains(0x2000, 1));   // survived: referenced by the snoop
  EXPECT_FALSE(mc.contains(0x3000, 1));  // the unreferenced one went
}

TEST(MessageCache, InvalidatePage) {
  MessageCache mc = make_cache(4);
  mc.insert(0x10000, kPage);
  mc.invalidate_page(0x10000);
  EXPECT_FALSE(mc.contains(0x10000, 1));
  EXPECT_EQ(mc.bound_count(), 0u);
  // Idempotent on missing pages.
  mc.invalidate_page(0x10000);
}

TEST(MessageCache, InvalidateAll) {
  MessageCache mc = make_cache(4);
  for (int i = 0; i < 4; ++i) mc.insert(0x10000 + static_cast<std::uint64_t>(i) * kPage, 1);
  mc.invalidate_all();
  EXPECT_EQ(mc.bound_count(), 0u);
}

TEST(MessageCache, ReinsertExistingIsRefresh) {
  MessageCache mc = make_cache(2);
  mc.insert(0x1000, 1);
  mc.insert(0x1000, 1);
  EXPECT_EQ(mc.bound_count(), 1u);
  EXPECT_EQ(mc.evictions(), 0u);
}

TEST(MessageCache, ZeroLengthActsOnOnePage) {
  MessageCache mc = make_cache(2);
  mc.insert(0x1000, 0);
  EXPECT_TRUE(mc.contains(0x1000, 0));
  EXPECT_TRUE(mc.lookup_tx(0x1000, 0));
}

// Property: under any interleaving of inserts, bound_count never exceeds
// capacity and hits only ever follow inserts of the same page.
class McCapacitySweep : public ::testing::TestWithParam<int> {};

TEST_P(McCapacitySweep, NeverExceedsCapacity) {
  const int buffers = GetParam();
  MessageCache mc = make_cache(static_cast<std::uint64_t>(buffers));
  for (std::uint64_t i = 0; i < 100; ++i) {
    mc.insert(0x10000 + (i * 2654435761u % 37) * kPage, 1);
    EXPECT_LE(mc.bound_count(), static_cast<std::size_t>(buffers));
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, McCapacitySweep, ::testing::Values(1, 2, 8, 128));

}  // namespace
}  // namespace cni::core
