// Cross-cutting performance properties the paper's evaluation rests on,
// checked as parameterized sweeps rather than absolute numbers.
#include <gtest/gtest.h>

#include "apps/cholesky.hpp"
#include "apps/jacobi.hpp"
#include "apps/runner.hpp"
#include "apps/water.hpp"

namespace cni::apps {
namespace {

using cluster::BoardKind;

// ---- Property: the CNI never loses to the standard NIC ----

class CniWinsSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CniWinsSweep, JacobiAcrossProcessorCounts) {
  const std::uint32_t p = GetParam();
  JacobiConfig cfg{48, 4, 16};
  const RunResult cni = run_jacobi(make_params(BoardKind::kCni, p), cfg, nullptr);
  const RunResult std_ = run_jacobi(make_params(BoardKind::kStandard, p), cfg, nullptr);
  EXPECT_LE(cni.elapsed, std_.elapsed);
}

TEST_P(CniWinsSweep, WaterAcrossProcessorCounts) {
  const std::uint32_t p = GetParam();
  WaterConfig cfg{27, 1};
  const RunResult cni = run_water(make_params(BoardKind::kCni, p), cfg, nullptr);
  const RunResult std_ = run_water(make_params(BoardKind::kStandard, p), cfg, nullptr);
  EXPECT_LE(cni.elapsed, std_.elapsed);
}

TEST_P(CniWinsSweep, CholeskyAcrossProcessorCounts) {
  const std::uint32_t p = GetParam();
  CholeskyConfig cfg{96, 12, 2, 3, 512, 2000};
  const RunResult cni = run_cholesky(make_params(BoardKind::kCni, p), cfg, nullptr);
  const RunResult std_ = run_cholesky(make_params(BoardKind::kStandard, p), cfg, nullptr);
  EXPECT_LE(cni.elapsed, std_.elapsed);
}

INSTANTIATE_TEST_SUITE_P(Procs, CniWinsSweep, ::testing::Values(2, 3, 4, 8));

// ---- Property: unrestricted cell size never hurts (Table 5's premise) ----

class CellModeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CellModeSweep, UnrestrictedCellsHelp) {
  JacobiConfig cfg{48, 4, 16};
  auto params = make_params(BoardKind::kCni, GetParam());
  const RunResult atm = run_jacobi(params, cfg, nullptr);
  params.fabric.cell_mode = atm::CellMode::kUnrestricted;
  const RunResult unr = run_jacobi(params, cfg, nullptr);
  EXPECT_LE(unr.elapsed, atm.elapsed);
  EXPECT_LT(unr.totals.cells_sent, atm.totals.cells_sent);
}

INSTANTIATE_TEST_SUITE_P(Procs, CellModeSweep, ::testing::Values(2, 4));

// ---- Property: a larger Message Cache never lowers the hit ratio ----

TEST(McacheSizeProperty, HitRatioMonotoneInCacheSize) {
  CholeskyConfig cfg{192, 24, 2, 3, 1024, 2000};
  double prev = -1;
  for (std::uint64_t kb : {8ull, 32ull, 128ull, 512ull}) {
    const RunResult r =
        run_cholesky(make_params(BoardKind::kCni, 4, 4096, kb * 1024), cfg, nullptr);
    EXPECT_GE(r.hit_ratio_pct + 1.0, prev) << kb;  // monotone up to 1% noise
    prev = r.hit_ratio_pct;
  }
}

// ---- Property: bigger pages, fewer-but-bigger transfers ----

TEST(PageSizeProperty, LargerPagesMoveMoreBytesInFewerMessages) {
  // A 128x128 grid has 1 KB rows: at 512-byte pages a boundary row spans two
  // pages (two fetch transactions); at 8 KB one page covers it, so the
  // message count drops. (Byte volume stays roughly flat: steady-state
  // traffic is diffs, whose size tracks the data modified, not the page.)
  JacobiConfig cfg{128, 4, 16};
  const RunResult small =
      run_jacobi(make_params(BoardKind::kCni, 4, 512), cfg, nullptr);
  const RunResult large =
      run_jacobi(make_params(BoardKind::kCni, 4, 8192), cfg, nullptr);
  EXPECT_GT(small.totals.messages_sent, large.totals.messages_sent);
}

// ---- Property: CNI keeps host interrupts off the critical path ----

TEST(InterruptProperty, CniInterruptsFarBelowStandard) {
  WaterConfig cfg{27, 1};
  const RunResult cni = run_water(make_params(BoardKind::kCni, 4), cfg, nullptr);
  const RunResult std_ = run_water(make_params(BoardKind::kStandard, 4), cfg, nullptr);
  EXPECT_LT(cni.totals.host_interrupts * 10, std_.totals.host_interrupts);
}

// ---- Property: write-back vs write-through hosts both work (paper §2.2) ----

TEST(CachePolicyProperty, WriteThroughHostStillCorrectAndSnoops) {
  JacobiConfig cfg{32, 3, 16};
  auto params = make_params(BoardKind::kCni, 4);
  params.cache.write_back = false;
  double sum = 0;
  const RunResult r = run_jacobi(params, cfg, &sum);
  EXPECT_DOUBLE_EQ(sum, jacobi_reference_checksum(cfg));
  // Write-through: every store reaches the bus, so the snooper sees plenty.
  EXPECT_GT(r.totals.mcache_snoop_updates, 0u);
}

// ---- Property: overhead accounting identity (Tables 2-4 are well-formed) ----

class AccountingSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AccountingSweep, CategoriesSumToElapsed) {
  JacobiConfig cfg{48, 3, 16};
  const RunResult r =
      run_jacobi(make_params(BoardKind::kCni, GetParam()), cfg, nullptr);
  const double total_cycles = r.total_sum_e9() * 1e9 * GetParam();
  const double elapsed_total =
      static_cast<double>(r.elapsed_cycles) * GetParam();
  // Per-node compute+overhead+delay sums to that node's finish time; summed
  // and averaged it cannot exceed the global elapsed time.
  EXPECT_LE(total_cycles, elapsed_total * 1.001);
  EXPECT_GT(total_cycles, elapsed_total * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Procs, AccountingSweep, ::testing::Values(1, 2, 4, 6));

// ---- Determinism across the whole matrix of configurations ----

class DeterminismSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, bool>> {};

TEST_P(DeterminismSweep, IdenticalRunsIdenticalResults) {
  const auto [procs, is_cni] = GetParam();
  const BoardKind kind = is_cni ? BoardKind::kCni : BoardKind::kStandard;
  WaterConfig cfg{27, 1};
  const RunResult a = run_water(make_params(kind, procs), cfg, nullptr);
  const RunResult b = run_water(make_params(kind, procs), cfg, nullptr);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.totals.messages_sent, b.totals.messages_sent);
  EXPECT_EQ(a.totals.bytes_sent, b.totals.bytes_sent);
  EXPECT_EQ(a.totals.read_faults, b.totals.read_faults);
  EXPECT_EQ(a.totals.mcache_tx_hits, b.totals.mcache_tx_hits);
}

INSTANTIATE_TEST_SUITE_P(Configs, DeterminismSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 5u),
                                            ::testing::Bool()));

}  // namespace
}  // namespace cni::apps
