// Parallel-in-run simulation (DESIGN.md §12): shard-plan and epoch math,
// canonical cross-shard drain ordering, and the headline property — the same
// seed produces byte-identical results at every shard count, sequentially
// and under a concurrent sweep pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/jacobi.hpp"
#include "apps/runner.hpp"
#include "atm/fabric.hpp"
#include "cluster/cluster.hpp"
#include "obs/report.hpp"
#include "sim/sharded.hpp"

namespace cni {
namespace {

// ---------------------------------------------------------------------------
// ShardPlan

TEST(ShardPlan, BalancedClampsIntoNodeRange) {
  EXPECT_EQ(sim::ShardPlan::balanced(8, 0).shards, 1u);
  EXPECT_EQ(sim::ShardPlan::balanced(8, 3).shards, 3u);
  EXPECT_EQ(sim::ShardPlan::balanced(4, 64).shards, 4u);  // never > nodes
  EXPECT_EQ(sim::ShardPlan::balanced(1, 4).shards, 1u);
}

TEST(ShardPlan, BlocksAreContiguousBalancedAndExhaustive) {
  for (std::uint32_t nodes : {1u, 2u, 5u, 8u, 17u, 32u, 256u}) {
    for (std::uint32_t shards : {1u, 2u, 3u, 4u, 7u, 16u}) {
      const sim::ShardPlan plan = sim::ShardPlan::balanced(nodes, shards);
      std::uint32_t total = 0;
      std::uint32_t prev = 0;
      for (std::uint32_t n = 0; n < nodes; ++n) {
        const std::uint32_t s = plan.shard_of(n);
        ASSERT_LT(s, plan.shards);
        ASSERT_GE(s, prev) << "blocks must be contiguous and ordered";
        prev = s;
      }
      std::uint32_t max_count = 0;
      std::uint32_t min_count = nodes;
      for (std::uint32_t s = 0; s < plan.shards; ++s) {
        const std::uint32_t c = plan.count(s);
        total += c;
        max_count = std::max(max_count, c);
        min_count = std::min(min_count, c);
        // count() must agree with shard_of().
        std::uint32_t seen = 0;
        for (std::uint32_t n = 0; n < nodes; ++n) {
          if (plan.shard_of(n) == s) ++seen;
        }
        ASSERT_EQ(seen, c);
      }
      EXPECT_EQ(total, nodes);
      EXPECT_LE(max_count - min_count, 1u) << "block sizes differ by at most one";
    }
  }
}

// ---------------------------------------------------------------------------
// Epoch math

TEST(EpochMath, SatAddSaturatesAtNever) {
  EXPECT_EQ(sim::sat_add(10, 5), 15u);
  EXPECT_EQ(sim::sat_add(sim::kNever, 1), sim::kNever);
  EXPECT_EQ(sim::sat_add(sim::kNever - 3, 10), sim::kNever);
  EXPECT_EQ(sim::sat_add(sim::kNever - 3, 3), sim::kNever);
}

TEST(EpochMath, NextEpochEndTakesTheTighterBound) {
  sim::EpochParams p;
  p.lookahead = 800;
  p.drain_horizon = 150;
  p.pending_bound = 650;
  // No pending transfers: the window is t_min + L.
  EXPECT_EQ(sim::next_epoch_end(1000, sim::kNever, p), 1800u);
  // A pending head close below t_min tightens the window: its delivery at
  // head + pending_bound must stay outside the epoch.
  EXPECT_EQ(sim::next_epoch_end(1000, 900, p), 1550u);
  // A pending head far in the future is not the binding constraint.
  EXPECT_EQ(sim::next_epoch_end(1000, 5000, p), 1800u);
  // All-idle engines with a pending transfer still make progress.
  EXPECT_EQ(sim::next_epoch_end(sim::kNever, 900, p), 1550u);
}

/// Uniform all-pairs matrix with `l` everywhere off the diagonal — the shape
/// atm::Fabric exports for the single-stage banyan.
sim::LookaheadMatrix uniform_matrix(std::uint32_t shards, sim::SimDuration l) {
  sim::LookaheadMatrix m;
  m.shards = shards;
  m.entries.assign(static_cast<std::size_t>(shards) * shards, l);
  for (std::uint32_t r = 0; r < shards; ++r) {
    m.entries[static_cast<std::size_t>(r) * shards + r] =
        sim::LookaheadMatrix::kUnbounded;
  }
  return m;
}

sim::EpochParams fabric_epoch_params() {
  sim::EpochParams p;
  p.lookahead = 800;
  p.drain_horizon = 150;
  p.pending_bound = 650;
  return p;
}

TEST(EpochMath, MatrixBoundMatchesGlobalForUniformMatrix) {
  const sim::EpochParams p = fabric_epoch_params();
  const sim::LookaheadMatrix m = uniform_matrix(3, p.lookahead);
  const sim::SimTime t_next[] = {1200, 1000, 4000};
  EXPECT_EQ(sim::next_epoch_end(t_next, m, sim::kNever, p),
            sim::next_epoch_end(1000, sim::kNever, p));
  EXPECT_EQ(sim::next_epoch_end(t_next, m, 900, p),
            sim::next_epoch_end(1000, 900, p));
}

TEST(EpochMath, MatrixBoundSkipsIdleShardsAndSaturatesAtNever) {
  const sim::EpochParams p = fabric_epoch_params();
  const sim::LookaheadMatrix m = uniform_matrix(2, p.lookahead);
  // All shards idle, one buffered transfer: only the pending bound binds.
  const sim::SimTime idle[] = {sim::kNever, sim::kNever};
  EXPECT_EQ(sim::next_epoch_end(idle, m, 900, p), 1550u);
  // Nothing anywhere: the epoch loop is about to terminate.
  EXPECT_EQ(sim::next_epoch_end(idle, m, sim::kNever, p), sim::kNever);
  // An idle shard stays out of the minimum entirely.
  const sim::SimTime one_busy[] = {1000, sim::kNever};
  EXPECT_EQ(sim::next_epoch_end(one_busy, m, sim::kNever, p), 1800u);
  // Event times near kNever saturate instead of wrapping.
  const sim::SimTime huge[] = {sim::kNever - 3, sim::kNever};
  EXPECT_EQ(sim::next_epoch_end(huge, m, sim::kNever, p), sim::kNever);
}

TEST(EpochMath, MatrixBoundUsesPerShardOutgoingLookahead) {
  const sim::EpochParams p = fabric_epoch_params();
  // Shard 1 is "far": whatever it emits takes 5000 to land anywhere, so its
  // imminent event must not shrink the window below shard 0's own bound.
  sim::LookaheadMatrix m = uniform_matrix(2, p.lookahead);
  m.entries[1 * 2 + 0] = 5000;
  const sim::SimTime t_next[] = {2000, 1000};
  EXPECT_EQ(m.out_bound(0), 800u);
  EXPECT_EQ(m.out_bound(1), 5000u);
  EXPECT_EQ(sim::next_epoch_end(t_next, m, sim::kNever, p), 2800u);
}

TEST(FusionLedger, StopWindowIsOnePastEarliestRecordedSend) {
  sim::FusionLedger led;
  led.reset(1000, 800);
  EXPECT_EQ(led.stop_window(), sim::FusionLedger::kNoStop);
  EXPECT_EQ(led.window_of(999), 0u);  // at or before base
  EXPECT_EQ(led.window_of(1000), 0u);
  EXPECT_EQ(led.window_of(1800), 1u);
  led.note_send(2700);  // window 2
  EXPECT_EQ(led.stop_window(), 3u);
  led.note_send(1100);  // window 0: atomic-min tightens the stop
  EXPECT_EQ(led.stop_window(), 1u);
  led.note_send(5000);  // a later send can never loosen it again
  EXPECT_EQ(led.stop_window(), 1u);
  led.reset(2000, 800);  // re-arming clears the record
  EXPECT_EQ(led.stop_window(), sim::FusionLedger::kNoStop);
}

TEST(FusionLedger, StopWindowIsInvariantUnderEverySendInterleaving) {
  // During a fused epoch every shard calls note_send concurrently, so the
  // order the ledger observes is an arbitrary interleaving decided by the
  // schedule. The stop decision must be a pure function of the *set* of
  // sends: exhaust all N! arrival orders of a fixed send set (with ties,
  // at-base and far-future times included) and require one answer.
  const std::vector<sim::SimTime> sends = {900, 1000, 1150, 1800, 1800, 42'000};
  std::vector<std::size_t> order(sends.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  auto stop_for = [&sends](const std::vector<std::size_t>& perm) {
    sim::FusionLedger led;
    led.reset(1000, 800);
    for (const std::size_t i : perm) led.note_send(sends[i]);
    return led.stop_window();
  };

  const std::uint64_t expected = stop_for(order);
  EXPECT_EQ(expected, 1u);  // sends at/before base land in window 0
  std::uint64_t perms = 0;
  do {
    ASSERT_EQ(stop_for(order), expected)
        << "interleaving #" << perms << " changed the fusion stop decision";
    ++perms;
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(perms, 720u);  // 6! index orders (ties run twice; still cheap)
}

TEST(LookaheadMatrix, FabricExportIsSymmetricBoundedWithUnboundedDiagonal) {
  sim::Engine eng;
  atm::FabricParams fp;
  atm::Fabric fabric(eng, fp);
  for (const std::uint32_t shards : {1u, 2u, 3u, 4u, 8u}) {
    const sim::ShardPlan plan = sim::ShardPlan::balanced(16, shards);
    const sim::LookaheadMatrix m = fabric.lookahead_matrix(plan);
    ASSERT_EQ(m.shards, plan.shards);
    ASSERT_EQ(m.entries.size(),
              static_cast<std::size_t>(plan.shards) * plan.shards);
    for (std::uint32_t r = 0; r < m.shards; ++r) {
      for (std::uint32_t c = 0; c < m.shards; ++c) {
        if (r == c) {
          EXPECT_EQ(m.at(r, c), sim::LookaheadMatrix::kUnbounded)
              << "intra-shard causality never bounds the epoch";
        } else {
          EXPECT_GT(m.at(r, c), 0u);
          EXPECT_LE(m.at(r, c), fabric.min_lookahead())
              << "no pair may claim more slack than the global bound";
          EXPECT_EQ(m.at(r, c), m.at(c, r)) << "pair lookahead is symmetric";
        }
      }
      if (m.shards > 1) {
        EXPECT_LE(m.out_bound(r), fabric.min_lookahead());
      } else {
        EXPECT_EQ(m.out_bound(r), sim::LookaheadMatrix::kUnbounded);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Canonical drain order

/// Builds a 4-node fabric in sharded mode over two engines (nodes 0,1 ->
/// shard 0; nodes 2,3 -> shard 1) and records delivery order at each node.
struct ShardedFabricFixture {
  sim::Engine legacy;  // unused in sharded mode, but Fabric wants a ref
  sim::Engine e0, e1;
  atm::FabricParams params;
  atm::Fabric fabric{legacy, params};
  std::vector<std::pair<atm::NodeId, atm::NodeId>> deliveries;  // (dst, src)

  ShardedFabricFixture() {
    for (atm::NodeId n = 0; n < 4; ++n) {
      fabric.attach(n, [this, n](atm::Frame f) { deliveries.emplace_back(n, f.src); });
    }
    std::vector<sim::Engine*> eng = {&e0, &e0, &e1, &e1};
    // Unattached ports keep null entries; mapping vectors span all ports.
    eng.resize(params.switch_ports, nullptr);
    std::vector<std::uint32_t> shard = {0, 0, 1, 1};
    shard.resize(params.switch_ports, 0);
    fabric.enable_sharding(std::move(eng), std::move(shard),
                           sim::ShardPlan::balanced(4, 2), nullptr);
  }

  atm::Frame frame(atm::NodeId src, atm::NodeId dst) const {
    atm::Frame f;
    f.src = src;
    f.dst = dst;
    return f;
  }

  void run_all() {
    e0.run();
    e1.run();
  }
};

TEST(ShardedFabric, SendsBufferUntilDrain) {
  ShardedFabricFixture fx;
  const atm::DeliveryTiming t = fx.fabric.send(0, fx.frame(0, 2));
  EXPECT_EQ(t.arrival, 0u) << "sharded sends cannot know the arrival time";
  fx.run_all();
  EXPECT_TRUE(fx.deliveries.empty()) << "nothing may deliver before the barrier";
  EXPECT_EQ(fx.fabric.drain(sim::kNever), sim::kNever);
  fx.run_all();
  ASSERT_EQ(fx.deliveries.size(), 1u);
  EXPECT_EQ(fx.deliveries[0], (std::pair<atm::NodeId, atm::NodeId>{2, 0}));
}

TEST(ShardedFabric, DrainRespectsLimitAndReturnsEarliestRemainingHead) {
  ShardedFabricFixture fx;
  fx.fabric.send(0, fx.frame(0, 2));                       // head = propagation
  fx.fabric.send(sim::kMillisecond, fx.frame(1, 3));       // head = 1ms + propagation
  const sim::SimTime early_head = fx.params.propagation;
  const sim::SimTime late_head = sim::kMillisecond + fx.params.propagation;
  // A limit between the two heads routes only the first transfer.
  EXPECT_EQ(fx.fabric.drain(early_head + 1), late_head);
  fx.run_all();
  ASSERT_EQ(fx.deliveries.size(), 1u);
  EXPECT_EQ(fx.deliveries[0].second, 0u);
  // The next barrier finishes the job.
  EXPECT_EQ(fx.fabric.drain(sim::kNever), sim::kNever);
  fx.run_all();
  ASSERT_EQ(fx.deliveries.size(), 2u);
}

TEST(ShardedFabric, EqualHeadsBreakTiesBySourceNodeNotCallOrder) {
  ShardedFabricFixture fx;
  // Same ready instant on distinct uplinks -> identical head-at-switch
  // times. Send from the *higher* node first: canonical order must still
  // deliver node 1's frame first.
  fx.fabric.send(0, fx.frame(2, 0));
  fx.fabric.send(0, fx.frame(1, 0));
  fx.fabric.drain(sim::kNever);
  fx.run_all();
  ASSERT_EQ(fx.deliveries.size(), 2u);
  EXPECT_EQ(fx.deliveries[0].second, 1u);
  EXPECT_EQ(fx.deliveries[1].second, 2u);
}

TEST(ShardedFabric, SameSourceKeepsSendSequenceOrder) {
  ShardedFabricFixture fx;
  // Two frames from one node, queued back-to-back on its uplink. The second
  // has a later head; and even at equal heads the per-source sequence is the
  // final tie-break, so FIFO per source always holds.
  atm::Frame a = fx.frame(0, 2);
  atm::Frame b = fx.frame(0, 3);
  fx.fabric.send(0, std::move(a));
  fx.fabric.send(0, std::move(b));
  fx.fabric.drain(sim::kNever);
  fx.run_all();
  ASSERT_EQ(fx.deliveries.size(), 2u);
  EXPECT_EQ(fx.deliveries[0].first, 2u);
  EXPECT_EQ(fx.deliveries[1].first, 3u);
}

TEST(ShardedFabric, DeliveryOrderIsInvariantUnderEverySendInterleaving) {
  // The epoch schedule decides the order in which shards hand their sends to
  // the fabric — per epoch, per fusion decision, per K. The canonical
  // (head, src, seq) drain must erase all of it: replay the same send set
  // under every permutation of the cross-source order, split across an
  // arbitrary drain boundary, and require the same delivery sequence.
  // Same-source sends keep their program order (the uplink serializes them),
  // so permutations run over one send per source, with head-time ties.
  struct Send {
    sim::SimTime ready;
    atm::NodeId src, dst;
  };
  const std::vector<Send> sends = {
      {0, 0, 2}, {0, 1, 3}, {0, 2, 1}, {sim::kMillisecond, 3, 0}};
  std::vector<std::size_t> order(sends.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  auto deliveries_for = [&sends](const std::vector<std::size_t>& perm,
                                 bool two_phase) {
    ShardedFabricFixture fx;
    for (const std::size_t i : perm) {
      const Send& s = sends[i];
      fx.fabric.send(s.ready, fx.frame(s.src, s.dst));
    }
    if (two_phase) {
      // An epoch boundary between the early group and the millisecond
      // straggler: like a shorter epoch, the first drain routes only heads
      // below the limit. Must not change the final sequence.
      fx.fabric.drain(sim::kMillisecond);
    }
    fx.fabric.drain(sim::kNever);
    fx.run_all();
    return fx.deliveries;
  };

  const auto expected = deliveries_for(order, false);
  ASSERT_EQ(expected.size(), sends.size());
  std::uint64_t cases = 0;
  do {
    for (const bool two_phase : {false, true}) {
      ASSERT_EQ(deliveries_for(order, two_phase), expected)
          << "interleaving #" << cases << " two_phase=" << two_phase
          << " changed the delivery sequence";
      ++cases;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(cases, 48u);  // 4! send orders x {single, split} epoch drains
}

// ---------------------------------------------------------------------------
// Whole-cluster determinism

/// Everything a run can observably produce, flattened to bytes.
std::string run_fingerprint(const cluster::SimParams& params,
                            const apps::JacobiConfig& config) {
  double checksum = 0;
  const apps::RunResult r = apps::run_jacobi(params, config, &checksum);
  obs::ReportPoint point;
  point.label = "determinism";
  point.values.emplace_back("elapsed_cycles", static_cast<double>(r.elapsed_cycles));
  for (const sim::NodeStats::Field& f : sim::NodeStats::fields()) {
    point.legacy.emplace_back(f.name, r.totals.*(f.member));
  }
  point.snapshot = r.snapshot;
  std::ostringstream out;
  out.precision(17);
  out << r.elapsed << '|' << r.elapsed_cycles << '|' << checksum << '|'
      << r.hit_ratio_pct << '|' << r.compute_e9 << '|' << r.overhead_e9 << '|'
      << r.delay_e9 << '\n';
  const std::vector<obs::ReportPoint> points = {point};
  out << obs::run_report_json("test_parsim", {{"app", "jacobi"}}, points);
  out << obs::chrome_trace_json(points);
  return std::move(out).str();
}

TEST(ParsimDeterminism, RandomizedRunsAreByteIdenticalAcrossShardCounts) {
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 3; ++trial) {
    apps::JacobiConfig config;
    config.n = static_cast<std::uint32_t>(16 + (rng() % 3) * 8);
    config.iterations = static_cast<std::uint32_t>(2 + rng() % 3);
    const std::uint32_t procs = 1u << (1 + rng() % 3);  // 2, 4 or 8
    cluster::SimParams params =
        apps::make_params(cluster::BoardKind::kCni, procs);
    params.obs.trace = true;  // exercise trace-export identity too
    params.sim_shards = 1;
    const std::string base = run_fingerprint(params, config);
    // The knob matrix: epoch fusion and the per-pair lookahead bound change
    // the epoch schedule, never the bytes — every combination at every K
    // must reproduce the K=1 fingerprint exactly.
    for (const bool fuse : {false, true}) {
      for (const bool pair : {false, true}) {
        for (const std::uint32_t k : {1u, 2u, 4u}) {
          params.sim_shards = k;
          params.sim_fusion = fuse;
          params.sim_pair_lookahead = pair;
          EXPECT_EQ(base, run_fingerprint(params, config))
              << "trial " << trial << " diverged at K=" << k
              << " fusion=" << fuse << " pair_lookahead=" << pair;
        }
      }
    }
  }
}

TEST(ParsimDeterminism, ExhaustiveKnobGridIsByteIdenticalOnBoundedCluster) {
  // Exhaustive (not sampled) schedule coverage on a bounded cluster: every
  // legal shard count 1..nodes — including K=3, which splits 4 nodes into
  // unequal shards — crossed with both fusion and pair-lookahead settings.
  // Each knob combination produces a different epoch schedule, i.e. a
  // different interleaving of shard execution, fusion decisions and barrier
  // drains; all of them must reproduce the K=1 fingerprint byte for byte.
  apps::JacobiConfig config;
  config.n = 16;
  config.iterations = 2;
  cluster::SimParams params = apps::make_params(cluster::BoardKind::kCni, 4);
  params.obs.trace = true;  // trace export identity too
  params.sim_shards = 1;
  const std::string base = run_fingerprint(params, config);
  for (std::uint32_t k = 1; k <= 4; ++k) {
    for (const bool fuse : {false, true}) {
      for (const bool pair : {false, true}) {
        params.sim_shards = k;
        params.sim_fusion = fuse;
        params.sim_pair_lookahead = pair;
        EXPECT_EQ(base, run_fingerprint(params, config))
            << "diverged at K=" << k << " fusion=" << fuse
            << " pair_lookahead=" << pair;
      }
    }
  }
}

TEST(ParsimDeterminism, ShardCountsBeyondNodeCountClampAndStayIdentical) {
  apps::JacobiConfig config;
  config.n = 16;
  config.iterations = 2;
  cluster::SimParams params = apps::make_params(cluster::BoardKind::kCni, 4);
  params.sim_shards = 1;
  const std::string base = run_fingerprint(params, config);
  params.sim_shards = 64;  // clamps to 4 shards
  EXPECT_EQ(base, run_fingerprint(params, config));
}

TEST(ParsimDeterminism, ConcurrentSweepPoolDoesNotPerturbResults) {
  // Four sharded runs on a 4-worker pool must reproduce the sequential
  // fingerprints exactly (each point builds its own cluster; the pool only
  // adds host-thread interleaving, which determinism must shrug off).
  apps::JacobiConfig config;
  config.n = 16;
  config.iterations = 2;
  cluster::SimParams params = apps::make_params(cluster::BoardKind::kCni, 4);
  params.sim_shards = 2;
  const std::string expected = run_fingerprint(params, config);

  ASSERT_EQ(setenv("CNI_BENCH_JOBS", "4", 1), 0);
  std::vector<std::string> got(4);
  apps::parallel_indexed(got.size(), [&](std::size_t i) {
    got[i] = run_fingerprint(params, config);
  });
  ASSERT_EQ(unsetenv("CNI_BENCH_JOBS"), 0);
  for (const std::string& g : got) EXPECT_EQ(expected, g);
}

TEST(ParsimCluster, EpochStatsAreConsistent) {
  apps::JacobiConfig config;
  config.n = 16;
  config.iterations = 2;
  cluster::SimParams params = apps::make_params(cluster::BoardKind::kCni, 4);
  params.sim_shards = 4;
  const apps::RunResult r = apps::run_jacobi(params, config);
  EXPECT_GT(r.parsim.epochs, 0u);
  EXPECT_GT(r.parsim.events_total, 0u);
  EXPECT_GE(r.parsim.events_total, r.parsim.critical_path_events);
  EXPECT_GE(r.parsim.critical_path_events, r.parsim.epochs)
      << "every epoch's busiest shard ran at least one event";
  EXPECT_LE(r.parsim.fused_epochs, r.parsim.epochs);
  EXPECT_LE(r.parsim.barriers, r.parsim.epochs)
      << "an epoch pays at most one full rendezvous";

  // K = 1 runs inline: same epoch algorithm, no rendezvous ever.
  params.sim_shards = 1;
  EXPECT_EQ(apps::run_jacobi(params, config).parsim.barriers, 0u);

  // Legacy mode reports zeros.
  params.sim_shards = 0;
  EXPECT_EQ(apps::run_jacobi(params, config).parsim.epochs, 0u);
}

TEST(ParsimCluster, FusionShrinksTheEpochScheduleWithoutChangingResults) {
  apps::JacobiConfig config;
  config.n = 16;
  config.iterations = 2;
  cluster::SimParams params = apps::make_params(cluster::BoardKind::kCni, 4);
  params.sim_shards = 4;
  params.sim_fusion = false;
  params.sim_pair_lookahead = false;  // the PR-5 epoch schedule
  const apps::RunResult off = apps::run_jacobi(params, config);
  EXPECT_EQ(off.parsim.fused_epochs, 0u) << "fusion off must never fuse";

  params.sim_fusion = true;
  params.sim_pair_lookahead = true;
  const apps::RunResult on = apps::run_jacobi(params, config);
  EXPECT_EQ(on.elapsed_cycles, off.elapsed_cycles)
      << "the epoch schedule must be invisible in simulated results";
  EXPECT_EQ(on.parsim.events_total, off.parsim.events_total);
  EXPECT_GT(on.parsim.fused_epochs, 0u)
      << "the opening epoch has nothing buffered and must fuse";
  EXPECT_LT(on.parsim.epochs, off.parsim.epochs)
      << "fusion must reduce the epoch count on a run with compute phases";
  EXPECT_LE(on.parsim.barriers, on.parsim.epochs);
}

TEST(ParsimCluster, DeadlockIsDiagnosedInShardedMode) {
  cluster::SimParams params = apps::make_params(cluster::BoardKind::kCni, 4);
  params.sim_shards = 2;
  cluster::Cluster cl(params);
  EXPECT_THROW(cl.run([&](std::size_t i, sim::SimThread& t) {
    if (i == 1) t.block();  // nobody will ever wake node 1
  }),
               std::runtime_error);
}

}  // namespace
}  // namespace cni
