// Topology layer tests (DESIGN.md §14): banyan self-routing collision
// theory, Clos block mapping, torus dimension-order distances, the
// distance-aware lookahead matrix, and cross-K identity for the multi-stage
// topologies.
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "apps/jacobi.hpp"
#include "apps/runner.hpp"
#include "atm/banyan.hpp"
#include "atm/fabric.hpp"
#include "atm/topology.hpp"
#include "cluster/params.hpp"
#include "sim/engine.hpp"
#include "sim/sharded.hpp"
#include "sim/time.hpp"

namespace {

using namespace cni;

constexpr sim::SimDuration kSwitchLatency = 500 * sim::kNanosecond;
constexpr sim::SimDuration kPropagation = 150 * sim::kNanosecond;
constexpr sim::SimDuration kHop = 200 * sim::kNanosecond;

// ---------------------------------------------------------------------------
// Banyan self-routing collision theory

/// Two butterfly paths share the element output after stage s iff the
/// destinations agree on the top s+1 address bits (the route has committed
/// to them) and the sources agree on the remaining low bits (still carrying
/// the input's position). Checked exhaustively against path_resource for
/// every pair of (src, dst) paths at every stage of a 16-port switch.
TEST(BanyanTheory, PathResourceCollisionsMatchSelfRoutingExhaustively) {
  constexpr std::uint32_t kPorts = 16;
  constexpr std::uint32_t kStages = 4;
  atm::BanyanSwitch sw(kPorts, kSwitchLatency);
  ASSERT_EQ(sw.stages(), kStages);
  for (std::uint32_t stage = 0; stage < kStages; ++stage) {
    const std::uint32_t top = stage + 1;
    const std::uint32_t high_mask = ((1u << top) - 1u) << (kStages - top);
    const std::uint32_t low_mask = (1u << (kStages - top)) - 1u;
    for (std::uint32_t s1 = 0; s1 < kPorts; ++s1) {
      for (std::uint32_t d1 = 0; d1 < kPorts; ++d1) {
        for (std::uint32_t s2 = 0; s2 < kPorts; ++s2) {
          for (std::uint32_t d2 = 0; d2 < kPorts; ++d2) {
            const bool collide = ((d1 ^ d2) & high_mask) == 0 &&
                                 ((s1 ^ s2) & low_mask) == 0;
            ASSERT_EQ(sw.path_resource(s1, d1, stage) ==
                          sw.path_resource(s2, d2, stage),
                      collide)
                << "stage " << stage << ": (" << s1 << "->" << d1 << ") vs ("
                << s2 << "->" << d2 << ")";
          }
        }
      }
    }
  }
}

/// Distinct paths may never collide at every stage unless they share the
/// destination (the final stage's wire is the output port itself).
TEST(BanyanTheory, FinalStageResourceIsTheOutputPort) {
  constexpr std::uint32_t kPorts = 16;
  atm::BanyanSwitch sw(kPorts, kSwitchLatency);
  const std::uint32_t last = sw.stages() - 1;
  for (std::uint32_t s = 0; s < kPorts; ++s) {
    for (std::uint32_t d = 0; d < kPorts; ++d) {
      EXPECT_EQ(sw.path_resource(s, d, last),
                static_cast<std::size_t>(last) * kPorts + d);
    }
  }
}

// ---------------------------------------------------------------------------
// Clos block mapping

atm::ClosTopology make_clos(std::uint32_t ports, std::uint32_t radix) {
  return atm::ClosTopology(ports, radix, /*credits=*/4, kSwitchLatency, kPropagation);
}

TEST(ClosMapping, FullTreeShape) {
  // 64 hosts, radix-8 blocks: d = 4, three tiers of 16 switches each.
  const atm::ClosTopology clos = make_clos(64, 8);
  EXPECT_EQ(clos.down_arity(), 4u);
  EXPECT_EQ(clos.tiers(), 3u);
  for (std::uint32_t t = 0; t < 3; ++t) EXPECT_EQ(clos.tier_switches(t), 16u);
  EXPECT_EQ(clos.leaf_of(0), 0u);
  EXPECT_EQ(clos.leaf_of(3), 0u);
  EXPECT_EQ(clos.leaf_of(4), 1u);
  EXPECT_EQ(clos.leaf_of(63), 15u);
}

TEST(ClosMapping, AncestorTierIsTheFirstSharedPrefixHeight) {
  const atm::ClosTopology clos = make_clos(64, 8);
  EXPECT_EQ(clos.ancestor_tier(0, 1), 0u);   // same leaf
  EXPECT_EQ(clos.ancestor_tier(0, 4), 1u);   // neighbor leaves, same group
  EXPECT_EQ(clos.ancestor_tier(0, 15), 1u);
  EXPECT_EQ(clos.ancestor_tier(0, 16), 2u);  // different top-level group
  EXPECT_EQ(clos.ancestor_tier(0, 63), 2u);
  EXPECT_EQ(clos.ancestor_tier(63, 0), 2u);  // symmetric
}

TEST(ClosMapping, TurnaroundSwitchAgreesBetweenAscentAndDescent) {
  // The ascent path (keyed by src's group and dst's low digits) must arrive
  // at exactly the switch the descent walk (keyed by dst alone) starts from,
  // at the nearest-common-ancestor tier — otherwise route() would traverse
  // links that don't exist.
  const atm::ClosTopology clos = make_clos(64, 8);
  for (atm::NodeId a = 0; a < 64; ++a) {
    for (atm::NodeId b = 0; b < 64; ++b) {
      if (a == b) continue;
      const std::uint32_t h = clos.ancestor_tier(a, b);
      ASSERT_EQ(clos.route_switch(h, a, b), clos.route_switch(h, b, b))
          << a << " -> " << b << " at tier " << h;
      for (std::uint32_t t = 0; t <= h; ++t) {
        ASSERT_LT(clos.route_switch(t, a, b), clos.tier_switches(t));
      }
    }
  }
}

TEST(ClosMapping, MinLatencyFollowsAncestorHeight) {
  const atm::ClosTopology clos = make_clos(64, 8);
  // Same leaf: one block traversal. Height h: 2h+1 blocks, 2h links.
  EXPECT_EQ(clos.min_latency(0, 1), kSwitchLatency);
  EXPECT_EQ(clos.min_latency(0, 4), 3 * kSwitchLatency + 2 * kPropagation);
  EXPECT_EQ(clos.min_latency(0, 63), 5 * kSwitchLatency + 4 * kPropagation);
  EXPECT_EQ(clos.min_cross_latency(), kSwitchLatency);
}

TEST(ClosMapping, PrunedTopTierStillRoutesEveryPair) {
  // 128 hosts with d = 16 need two tiers (16^2 = 256 > 128): the top tier is
  // pruned. Every pair must still route, with latency matching its height.
  atm::ClosTopology clos = make_clos(128, 32);
  EXPECT_EQ(clos.tiers(), 2u);
  EXPECT_EQ(clos.tier_switches(0), 8u);
  std::uint64_t routed = 0;
  // Spaced, increasing heads: every queue and credit ring has drained long
  // before the next burst arrives, so each route sees a zero-load fabric.
  sim::SimTime head = 0;
  for (atm::NodeId a = 0; a < 128; a += 17) {
    for (atm::NodeId b = 0; b < 128; b += 13) {
      if (a == b) continue;
      head += sim::kMicrosecond;
      const sim::SimTime out = clos.route(head, a, b, /*burst=*/0, /*lane=*/0);
      EXPECT_EQ(out - head, clos.min_latency(a, b)) << a << " -> " << b;
      ++routed;
    }
  }
  EXPECT_EQ(clos.bursts_routed(), routed);
}

// ---------------------------------------------------------------------------
// Torus distances

atm::TorusTopology make_torus(std::uint32_t ports) {
  return atm::TorusTopology(ports, /*credits=*/4, kHop, kPropagation);
}

TEST(TorusMapping, BalancedDimsAndCoordRoundTrip) {
  const atm::TorusTopology t64 = make_torus(64);
  EXPECT_EQ(t64.dims().x, 4u);
  EXPECT_EQ(t64.dims().y, 4u);
  EXPECT_EQ(t64.dims().z, 4u);
  const atm::TorusTopology t4096 = make_torus(4096);
  EXPECT_EQ(t4096.dims().x, 16u);
  EXPECT_EQ(t4096.dims().y, 16u);
  EXPECT_EQ(t4096.dims().z, 16u);
  const atm::TorusTopology t256 = make_torus(256);
  EXPECT_EQ(t256.dims().x * t256.dims().y * t256.dims().z, 256u);
  EXPECT_GE(t256.dims().x, t256.dims().y);
  EXPECT_GE(t256.dims().y, t256.dims().z);
  for (atm::NodeId n = 0; n < 256; ++n) {
    const atm::TorusTopology::Dims c = t256.coords(n);
    EXPECT_EQ((c.z * t256.dims().y + c.y) * t256.dims().x + c.x, n);
  }
}

TEST(TorusMapping, HopCountsIncludeWraparound) {
  const atm::TorusTopology t = make_torus(64);  // 4 x 4 x 4
  auto id = [&t](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (z * t.dims().y + y) * t.dims().x + x;
  };
  EXPECT_EQ(t.hops(id(0, 0, 0), id(0, 0, 0)), 0u);
  EXPECT_EQ(t.hops(id(0, 0, 0), id(1, 0, 0)), 1u);
  // The wrap edge: x = 0 to x = X-1 is one hop backwards, not X-1 forwards.
  EXPECT_EQ(t.hops(id(0, 0, 0), id(3, 0, 0)), 1u);
  EXPECT_EQ(t.hops(id(0, 0, 0), id(2, 0, 0)), 2u);  // antipode in x
  EXPECT_EQ(t.hops(id(0, 0, 0), id(3, 3, 3)), 3u);  // wrap in all three
  EXPECT_EQ(t.hops(id(0, 0, 0), id(2, 2, 2)), 6u);  // full antipode
  // Symmetry over a sample of pairs.
  for (atm::NodeId a = 0; a < 64; a += 7) {
    for (atm::NodeId b = 0; b < 64; b += 5) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
    }
  }
}

TEST(TorusMapping, ZeroLoadRouteCostIsHopsTimesHopCost) {
  atm::TorusTopology t = make_torus(64);
  const sim::SimDuration hop_cost = kHop + kPropagation;
  // Spaced, increasing heads: see PrunedTopTierStillRoutesEveryPair.
  sim::SimTime head = 0;
  for (atm::NodeId a = 0; a < 64; a += 3) {
    for (atm::NodeId b = 0; b < 64; b += 11) {
      if (a == b) continue;
      head += sim::kMicrosecond;
      const sim::SimTime out = t.route(head, a, b, /*burst=*/0, /*lane=*/0);
      EXPECT_EQ(out - head, t.hops(a, b) * hop_cost) << a << " -> " << b;
      EXPECT_EQ(t.min_latency(a, b), t.hops(a, b) * hop_cost);
    }
  }
  EXPECT_EQ(t.contention_time(), 0u);
}

// ---------------------------------------------------------------------------
// Distance-aware lookahead (the acceptance assertion)

TEST(DistanceLookahead, TorusNonNeighborPairsExceedTheBanyanBound) {
  // 256-node torus (8 x 8 x 4), 4 shards = one z-plane each. Neighbor planes
  // sit one hop apart; planes 0<->2 and 1<->3 are two hops apart, so their
  // exported lookahead must strictly exceed the single-stage banyan's
  // uniform 800 ns bound — the slack the tentpole exists to unlock.
  sim::Engine eng;
  atm::FabricParams fp;
  fp.switch_ports = 256;
  fp.topology = atm::TopologyKind::kTorus;
  const atm::Fabric fabric(eng, fp);
  const sim::ShardPlan plan = sim::ShardPlan::balanced(256, 4);
  const sim::LookaheadMatrix m = fabric.lookahead_matrix(plan);

  const sim::SimDuration banyan_bound = 500 * sim::kNanosecond + 2 * kPropagation;
  const sim::SimDuration hop_cost = kHop + kPropagation;  // 350 ns
  EXPECT_EQ(fabric.min_lookahead(), hop_cost + 2 * kPropagation);  // 650 ns

  // Neighbor planes: exactly the uniform torus floor.
  EXPECT_EQ(m.at(0, 1), hop_cost + 2 * kPropagation);
  EXPECT_EQ(m.at(0, 3), hop_cost + 2 * kPropagation);  // wrap neighbor
  // Opposite planes: two hops, strictly beyond the banyan bound.
  EXPECT_EQ(m.at(0, 2), 2 * hop_cost + 2 * kPropagation);  // 1000 ns
  EXPECT_EQ(m.at(1, 3), 2 * hop_cost + 2 * kPropagation);
  EXPECT_GT(m.at(0, 2), banyan_bound);
  EXPECT_GT(m.at(1, 3), banyan_bound);
}

TEST(DistanceLookahead, ClosMatrixReflectsAncestorHeightPerPair) {
  // 64-node Clos of radix-8 blocks, 16 shards = one leaf each: adjacent
  // leaves in one group are 3 switches + 2 links apart, leaves of different
  // groups 5 + 4 — and every entry clears the banyan bound.
  sim::Engine eng;
  atm::FabricParams fp;
  fp.switch_ports = 64;
  fp.topology = atm::TopologyKind::kClos;
  fp.clos_radix = 8;
  const atm::Fabric fabric(eng, fp);
  const sim::LookaheadMatrix m =
      fabric.lookahead_matrix(sim::ShardPlan::balanced(64, 16));

  const sim::SimDuration two_prop = 2 * kPropagation;
  EXPECT_EQ(m.at(0, 1), 3 * kSwitchLatency + 2 * kPropagation + two_prop);
  EXPECT_EQ(m.at(0, 4), 5 * kSwitchLatency + 4 * kPropagation + two_prop);
  EXPECT_EQ(m.at(3, 12), 5 * kSwitchLatency + 4 * kPropagation + two_prop);
  const sim::SimDuration banyan_bound = 500 * sim::kNanosecond + two_prop;
  for (std::uint32_t r = 0; r < m.shards; ++r) {
    for (std::uint32_t c = 0; c < m.shards; ++c) {
      if (r != c) {
        EXPECT_GT(m.at(r, c), banyan_bound);
      }
    }
  }
}

TEST(DistanceLookahead, MatrixNeverUndercutsTheBruteForcePairMinimum) {
  // The closed-form fill_block_latency overrides must agree with the
  // brute-force pair minimum the base class computes from min_latency().
  for (const atm::TopologyKind kind :
       {atm::TopologyKind::kClos, atm::TopologyKind::kTorus}) {
    atm::FabricParams fp;
    fp.switch_ports = 64;
    fp.topology = kind;
    fp.clos_radix = 8;
    const std::unique_ptr<atm::Topology> topo = atm::make_topology(fp);
    for (const std::uint32_t shards : {2u, 4u, 8u}) {
      const sim::ShardPlan plan = sim::ShardPlan::balanced(64, shards);
      sim::LookaheadMatrix m;
      m.shards = plan.shards;
      m.entries.assign(static_cast<std::size_t>(plan.shards) * plan.shards, 0);
      topo->fill_block_latency(plan, m);
      std::vector<atm::NodeId> start(plan.shards + 1, 0);
      for (std::uint32_t s = 0; s < plan.shards; ++s) {
        start[s + 1] = start[s] + plan.count(s);
      }
      for (std::uint32_t r = 0; r < plan.shards; ++r) {
        for (std::uint32_t c = 0; c < plan.shards; ++c) {
          if (r == c) continue;
          sim::SimDuration best = sim::LookaheadMatrix::kUnbounded;
          for (atm::NodeId a = start[r]; a < start[r + 1]; ++a) {
            for (atm::NodeId b = start[c]; b < start[c + 1]; ++b) {
              best = std::min(best, topo->min_latency(a, b));
            }
          }
          ASSERT_EQ(m.at(r, c), best)
              << topo->name() << " K=" << shards << " (" << r << "," << c << ")";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CLI parsing

TEST(TopologyCli, ParseAcceptsExactlyTheThreeNames) {
  atm::TopologyKind k = atm::TopologyKind::kBanyan;
  EXPECT_TRUE(atm::parse_topology("torus", k));
  EXPECT_EQ(k, atm::TopologyKind::kTorus);
  EXPECT_TRUE(atm::parse_topology("clos", k));
  EXPECT_EQ(k, atm::TopologyKind::kClos);
  EXPECT_TRUE(atm::parse_topology("banyan", k));
  EXPECT_EQ(k, atm::TopologyKind::kBanyan);
  EXPECT_FALSE(atm::parse_topology("mesh", k));
  EXPECT_FALSE(atm::parse_topology("Torus", k));
  EXPECT_FALSE(atm::parse_topology("", k));
}

// ---------------------------------------------------------------------------
// Cross-K identity on the multi-stage topologies

TEST(TopologyIdentity, ClosAndTorusClustersAreIdenticalAcrossK) {
  apps::JacobiConfig config;
  config.n = 16;
  config.iterations = 2;
  for (const atm::TopologyKind kind :
       {atm::TopologyKind::kClos, atm::TopologyKind::kTorus}) {
    cluster::SimParams params = apps::make_params(cluster::BoardKind::kCni, 8);
    params.fabric.topology = kind;
    std::string base;
    for (const std::uint32_t k : {1u, 2u, 4u}) {
      params.sim_shards = k;
      double checksum = 0;
      const apps::RunResult r = apps::run_jacobi(params, config, &checksum);
      std::ostringstream out;
      out.precision(17);
      out << r.elapsed_cycles << '|' << checksum << '|' << r.hit_ratio_pct
          << '|' << r.compute_e9 << '|' << r.overhead_e9 << '|' << r.delay_e9;
      if (base.empty()) {
        base = out.str();
      } else {
        EXPECT_EQ(base, out.str())
            << atm::topology_name(kind) << " diverged at K=" << k;
      }
    }
  }
}

}  // namespace
