// Observability primitives: histogram math, metrics registry, emit macros,
// and the bound-counter bridge to the legacy NodeStats accounts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/stats.hpp"

namespace cni::obs {
namespace {

TEST(Hist, BucketOfIsBitWidth) {
  EXPECT_EQ(Hist::bucket_of(0), 0u);
  EXPECT_EQ(Hist::bucket_of(1), 1u);
  EXPECT_EQ(Hist::bucket_of(2), 2u);
  EXPECT_EQ(Hist::bucket_of(3), 2u);
  EXPECT_EQ(Hist::bucket_of(4), 3u);
  EXPECT_EQ(Hist::bucket_of(1023), 10u);
  EXPECT_EQ(Hist::bucket_of(1024), 11u);
  EXPECT_EQ(Hist::bucket_of(~0ULL), 64u);
}

TEST(Hist, BucketBoundIsInclusiveUpperEdge) {
  EXPECT_EQ(Hist::bucket_bound(0), 0u);
  EXPECT_EQ(Hist::bucket_bound(1), 1u);
  EXPECT_EQ(Hist::bucket_bound(2), 3u);
  EXPECT_EQ(Hist::bucket_bound(10), 1023u);
  EXPECT_EQ(Hist::bucket_bound(64), ~0ULL);
}

TEST(Hist, AggregatesAndEmptyBehaviour) {
  Hist h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  h.record(7);
  h.record(3);
  h.record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 100u);
}

TEST(Hist, PercentilesUseNearestRankClampedToMax) {
  Hist h;
  for (int i = 0; i < 50; ++i) h.record(1);
  for (int i = 0; i < 50; ++i) h.record(1000);
  // rank(50) = 50 -> still in the value-1 bucket.
  EXPECT_EQ(h.percentile(50), 1u);
  // rank(95) = 95 -> the value-1000 bucket ([512, 1023]); reported value is
  // the bucket bound clamped to the observed max.
  EXPECT_EQ(h.percentile(95), 1000u);
  EXPECT_EQ(h.percentile(0), 1u);      // <= 0 reports the min
  EXPECT_EQ(h.percentile(100), 1000u); // >= 100 reports the true max
}

TEST(Gauge, TracksValueAndHighWater) {
  Gauge g;
  g.set(5);
  g.add(3);
  g.add(-6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 8);
}

TEST(Metrics, OwnedCounterResolvesToStableHandle) {
  Metrics m;
  std::uint64_t* a = m.counter("x");
  std::uint64_t* b = m.counter("y");
  EXPECT_EQ(m.counter("x"), a);  // same name, same handle
  *a += 2;
  *b += 5;
  std::vector<std::pair<std::string, std::uint64_t>> seen;
  m.for_each_counter([&](const std::string& n, std::uint64_t v) { seen.emplace_back(n, v); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::string, std::uint64_t>{"x", 2}));
  EXPECT_EQ(seen[1], (std::pair<std::string, std::uint64_t>{"y", 5}));
}

TEST(Metrics, BoundCounterIsALiveView) {
  Metrics m;
  std::uint64_t external = 0;
  m.bind_counter("ext", &external);
  external = 41;
  std::uint64_t read = 0;
  m.for_each_counter([&](const std::string&, std::uint64_t v) { read = v; });
  EXPECT_EQ(read, 41u);  // no copy was taken at bind time
}

TEST(Metrics, HistogramAndGaugeHandlesAreStable) {
  Metrics m;
  Hist* h = m.histogram("lat");
  Gauge* g = m.gauge("occ");
  // Creating more entries must not invalidate earlier handles (deque-backed).
  for (int i = 0; i < 100; ++i) {
    (void)m.histogram("lat" + std::to_string(i));
    (void)m.gauge("occ" + std::to_string(i));
  }
  EXPECT_EQ(m.histogram("lat"), h);
  EXPECT_EQ(m.gauge("occ"), g);
}

TEST(NodeObs, RecordsAllThreeKinds) {
  Options opts;
  opts.trace = true;
  opts.trace_capacity = 16;
  NodeObs obs(3, opts);
  obs.instant(100, Component::kMCache, Event::kMCacheLookupHit, 1, 2);
  obs.span(200, 250, Component::kAdc, Event::kAdcTxWait, 3, 4);
  obs.span(300, 290, Component::kAdc, Event::kAdcTxWait, 0, 0);  // clamps, never underflows
  obs.counter(400, Component::kAdc, Event::kAdcEnqueueTx, 9);

  std::vector<TraceRecord> rs;
  obs.ring().for_each([&](const TraceRecord& r) { rs.push_back(r); });
  ASSERT_EQ(rs.size(), 4u);
  EXPECT_EQ(rs[0].kind, Kind::kInstant);
  EXPECT_EQ(rs[0].node, 3u);
  EXPECT_EQ(rs[0].arg1, 2u);
  EXPECT_EQ(rs[1].kind, Kind::kSpan);
  EXPECT_EQ(rs[1].dur, 50u);
  EXPECT_EQ(rs[2].dur, 0u);
  EXPECT_EQ(rs[3].kind, Kind::kCounter);
  EXPECT_EQ(rs[3].arg0, 9u);
}

TEST(ObsMacros, NullHandlesAndDisabledTracingAreSafeNoOps) {
  // Passes in both switch positions: with obs compiled in, the null/quiet
  // handles gate every emit; under CNI_OBS_DISABLED the macros expand to
  // nothing and the ring is trivially empty.
  NodeObs* none = nullptr;
  CNI_TRACE_INSTANT(none, 1, Component::kDsm, Event::kDsmFault, 0, 0);
  CNI_OBS_HIST(static_cast<Hist*>(nullptr), 5);
  CNI_OBS_GAUGE_SET(static_cast<Gauge*>(nullptr), 5);

  Options off;  // trace defaults to false
  NodeObs quiet(0, off);
  NodeObs* q = &quiet;
  CNI_TRACE_INSTANT(q, 1, Component::kDsm, Event::kDsmFault, 0, 0);
  CNI_TRACE_SPAN(q, 1, 2, Component::kDsm, Event::kDsmFault, 0, 0);
  CNI_TRACE_COUNTER(q, 1, Component::kDsm, Event::kDsmFault, 0);
  EXPECT_EQ(quiet.ring().recorded(), 0u);
}

TEST(RunObs, BindNodeStatsMirrorsTheLegacyAccountsExactly) {
  Options opts;
  RunObs run(2, opts);
  sim::NodeStats st;
  run.bind_node_stats(0, st);

  st.messages_sent = 3;
  st.mcache_tx_hits = 7;
  st.dma_bytes = 4096;

  // Every NodeStats field appears, and reads the live legacy value.
  std::size_t entries = 0;
  std::uint64_t messages = 0, hits = 0, dma = 0;
  run.node(0).metrics().for_each_counter([&](const std::string& n, std::uint64_t v) {
    ++entries;
    if (n == "nic.messages_sent") messages = v;
    if (n == "mcache.tx_hits") hits = v;
    if (n == "nic.dma_bytes") dma = v;
  });
  EXPECT_EQ(entries, sim::NodeStats::fields().size());
  EXPECT_EQ(messages, 3u);
  EXPECT_EQ(hits, 7u);
  EXPECT_EQ(dma, 4096u);
}

TEST(Taxonomy, NamesAreStableIdentifiers) {
  EXPECT_STREQ(component_name(Component::kMCache), "mcache");
  EXPECT_STREQ(component_name(Component::kDsm), "dsm");
  EXPECT_STREQ(event_name(Event::kMCacheLookupHit), "mcache.lookup_hit");
  EXPECT_STREQ(event_name(Event::kDsmPageArrival), "dsm.page_arrival");
}

}  // namespace
}  // namespace cni::obs
