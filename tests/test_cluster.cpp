// Cluster assembly, host CPU accounting and run mechanics.
#include <gtest/gtest.h>

#include "apps/runner.hpp"
#include "cluster/cluster.hpp"

namespace cni::cluster {
namespace {

using apps::make_params;

TEST(SimParams, Table1Dump) {
  const std::string t = SimParams{}.to_table().to_string();
  EXPECT_NE(t.find("166 MHz"), std::string::npos);
  EXPECT_NE(t.find("32K unified"), std::string::npos);
  EXPECT_NE(t.find("Write-back"), std::string::npos);
  EXPECT_NE(t.find("25 MHz"), std::string::npos);
  EXPECT_NE(t.find("33 MHz"), std::string::npos);
  EXPECT_NE(t.find("500 ns"), std::string::npos);
  EXPECT_NE(t.find("32 KB"), std::string::npos);
}

TEST(Cluster, BuildsRequestedBoardKind) {
  Cluster cni(make_params(BoardKind::kCni, 2));
  [[maybe_unused]] auto& board = cni.node(0).cni();  // no check-fail: it is a CNI
  Cluster std_(make_params(BoardKind::kStandard, 2));
  EXPECT_DEATH({ [[maybe_unused]] auto& b = std_.node(0).cni(); }, "standard NIC");
}

TEST(Cluster, RejectsMoreNodesThanSwitchPorts) {
  SimParams p = make_params(BoardKind::kCni, 8);
  p.processors = 33;
  EXPECT_DEATH(Cluster{p}, "switch ports");
}

TEST(Cluster, RunReturnsMaxFinishTime) {
  Cluster cl(make_params(BoardKind::kCni, 3));
  const sim::SimTime elapsed = cl.run([&](std::size_t i, sim::SimThread& t) {
    t.delay((i + 1) * sim::kMillisecond);
  });
  EXPECT_EQ(elapsed, 3 * sim::kMillisecond);
  EXPECT_EQ(cl.elapsed_cpu_cycles(), sim::Clock(166'000'000).to_cycles(elapsed));
}

TEST(Cluster, DeadlockIsDiagnosed) {
  Cluster cl(make_params(BoardKind::kCni, 2));
  EXPECT_THROW(cl.run([&](std::size_t i, sim::SimThread& t) {
    if (i == 1) t.block();  // nobody will ever wake node 1
  }),
               std::runtime_error);
}

TEST(HostCpu, AccountingIdentity) {
  // compute + overhead + delay must equal each node's elapsed time.
  Cluster cl(make_params(BoardKind::kCni, 2));
  cl.run([&](std::size_t i, sim::SimThread& t) {
    auto& cpu = cl.node(i).cpu();
    cpu.compute(100'000);
    cpu.charge_overhead(t, 5'000);
    if (i == 0) t.delay(10 * sim::kMillisecond);  // pure stall
  });
  for (std::size_t i = 0; i < 2; ++i) {
    const sim::NodeStats& st = cl.stats().node(i);
    EXPECT_EQ(st.compute_cycles, 100'000u);
    EXPECT_EQ(st.synch_overhead_cycles, 5'000u);
  }
  // Node 0 stalled ~10 ms = ~1.66M cycles of delay.
  EXPECT_NEAR(static_cast<double>(cl.stats().node(0).synch_delay_cycles), 1.66e6, 2e4);
  EXPECT_EQ(cl.stats().node(1).synch_delay_cycles, 0u);
}

TEST(HostCpu, StolenCyclesSurfaceAtNextSync) {
  Cluster cl(make_params(BoardKind::kCni, 1));
  cl.run([&](std::size_t, sim::SimThread& t) {
    auto& cpu = cl.node(0).cpu();
    cpu.steal_cycles(50'000);  // e.g. an interrupt during computation
    EXPECT_EQ(cpu.stolen_pending(), 50'000u);
    const sim::SimTime before = t.engine().now();
    cpu.sync(t);
    const sim::SimTime after = t.engine().now();
    EXPECT_EQ(cpu.stolen_pending(), 0u);
    EXPECT_EQ(after - before, sim::Clock(166'000'000).cycles(50'000));
  });
  EXPECT_EQ(cl.stats().node(0).synch_overhead_cycles, 50'000u);
}

TEST(HostCpu, FlushBufferPutsDirtyLinesOnTheBus) {
  Cluster cl(make_params(BoardKind::kCni, 1));
  cl.run([&](std::size_t, sim::SimThread& t) {
    auto& cpu = cl.node(0).cpu();
    std::uint64_t writes_before = cpu.bus().cpu_writes();
    for (int w = 0; w < 64; ++w) cpu.mem_access(mem::kSharedBase + w * 8, true);
    cpu.sync(t);
    const std::uint64_t cycles = cpu.flush_buffer(mem::kSharedBase, 512);
    EXPECT_GT(cycles, 0u);
    EXPECT_GT(cpu.bus().cpu_writes(), writes_before);
    // Second flush: nothing dirty left.
    EXPECT_LT(cpu.flush_buffer(mem::kSharedBase, 512), cycles);
  });
}

TEST(Cluster, StatsNodeCountMatches) {
  Cluster cl(make_params(BoardKind::kStandard, 5));
  EXPECT_EQ(cl.stats().node_count(), 5u);
  EXPECT_EQ(cl.size(), 5u);
}

TEST(NodeStats, HitRatioDefinition) {
  sim::NodeStats st;
  // No lookups: no ratio to report. Callers that care distinguish "no cache
  // activity" from "0% hit rate" via has_lookups().
  EXPECT_FALSE(st.has_lookups());
  EXPECT_DOUBLE_EQ(st.tx_hit_ratio_pct(), 0.0);
  st.mcache_tx_lookups = 8;
  st.mcache_tx_hits = 6;
  EXPECT_TRUE(st.has_lookups());
  EXPECT_DOUBLE_EQ(st.tx_hit_ratio_pct(), 75.0);
}

TEST(NodeStats, AddAggregates) {
  sim::NodeStats a;
  a.compute_cycles = 5;
  a.messages_sent = 2;
  sim::NodeStats b;
  b.compute_cycles = 7;
  b.messages_sent = 1;
  a.add(b);
  EXPECT_EQ(a.compute_cycles, 12u);
  EXPECT_EQ(a.messages_sent, 3u);
}

}  // namespace
}  // namespace cni::cluster
