// Trace ring semantics and end-to-end determinism of the exports: identical
// runs must produce byte-identical trace/report JSON, sequentially and under
// the parallel sweep runner, and tracing must never perturb the simulation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/jacobi.hpp"
#include "apps/runner.hpp"
#include "atm/topology.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "sim/stats.hpp"

namespace cni {
namespace {

using apps::make_params;
using cluster::BoardKind;

TEST(TraceRing, WrapAroundKeepsNewestAndCountsDrops) {
  obs::TraceRing ring(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    obs::TraceRecord r;
    r.time = i;
    ring.record(r);
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.size(), 4u);

  std::vector<std::uint64_t> times;
  ring.for_each([&](const obs::TraceRecord& r) { times.push_back(r.time); });
  EXPECT_EQ(times, (std::vector<std::uint64_t>{2, 3, 4, 5}));  // oldest-first
}

TEST(TraceRing, ZeroCapacityIsClampedAndClearResets) {
  obs::TraceRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  obs::TraceRecord r;
  ring.record(r);
  ring.record(r);
  EXPECT_EQ(ring.dropped(), 1u);
  ring.clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.size(), 0u);
}

/// One small traced Jacobi run.
apps::RunResult traced_run(std::uint32_t procs) {
  cluster::SimParams params = make_params(BoardKind::kCni, procs);
  params.obs.trace = true;
  params.obs.trace_capacity = 1024;
  return apps::run_jacobi(params, apps::JacobiConfig{24, 3, 6}, nullptr);
}

/// Serializes a run the way the bench binaries do — minus the bufpool
/// section, which is advisory process-wide allocator state (accumulating
/// across runs on a thread) and explicitly outside the determinism contract.
obs::ReportPoint to_point(const apps::RunResult& r) {
  obs::ReportPoint pt;
  pt.label = "test";
  pt.config = {{"app", "jacobi"}};
  pt.values = {{"elapsed_ps", static_cast<double>(r.elapsed)}};
  for (const sim::NodeStats::Field& f : sim::NodeStats::fields()) {
    pt.legacy.emplace_back(f.name, r.totals.*f.member);
  }
  pt.snapshot = r.snapshot;
  pt.snapshot.bufpool = obs::BufPoolSnapshot{};
  return pt;
}

TEST(ObsDeterminism, IdenticalRunsExportByteIdenticalJson) {
  const apps::RunResult a = traced_run(2);
  const apps::RunResult b = traced_run(2);

  ASSERT_TRUE(a.snapshot.traced);
  ASSERT_EQ(a.snapshot.nodes.size(), 2u);
#if CNI_OBS_ENABLED
  EXPECT_GT(a.snapshot.nodes[0].trace_recorded, 0u);
#endif

  const std::vector<obs::ReportPoint> pa{to_point(a)};
  const std::vector<obs::ReportPoint> pb{to_point(b)};
  EXPECT_EQ(obs::chrome_trace_json(pa), obs::chrome_trace_json(pb));
  EXPECT_EQ(obs::run_report_json("test_obs_trace", {}, pa),
            obs::run_report_json("test_obs_trace", {}, pb));
}

TEST(ObsDeterminism, ParallelSweepMatchesSequentialByteForByte) {
  // Reference export from a sequential run on this thread.
  const std::string ref = obs::chrome_trace_json({to_point(traced_run(2))});

  // Same simulation on 4 worker threads; every copy must match the reference.
  char* old_jobs = std::getenv("CNI_BENCH_JOBS");
  const std::string saved = old_jobs != nullptr ? old_jobs : "";
  ::setenv("CNI_BENCH_JOBS", "4", 1);
  std::vector<std::string> exports(4);
  apps::parallel_indexed(exports.size(), [&](std::size_t i) {
    exports[i] = obs::chrome_trace_json({to_point(traced_run(2))});
  });
  if (old_jobs != nullptr) {
    ::setenv("CNI_BENCH_JOBS", saved.c_str(), 1);
  } else {
    ::unsetenv("CNI_BENCH_JOBS");
  }
  for (const std::string& e : exports) EXPECT_EQ(e, ref);
}

TEST(ObsDeterminism, TracingDoesNotPerturbTheSimulation) {
  cluster::SimParams off = make_params(BoardKind::kCni, 2);
  cluster::SimParams on = off;
  on.obs.trace = true;
  on.obs.trace_capacity = 256;  // small ring: wrap-around must not matter either

  const apps::JacobiConfig cfg{24, 3, 6};
  const apps::RunResult r_off = apps::run_jacobi(off, cfg, nullptr);
  const apps::RunResult r_on = apps::run_jacobi(on, cfg, nullptr);

  EXPECT_EQ(r_off.elapsed, r_on.elapsed);  // bit-identical figure numbers
  for (const sim::NodeStats::Field& f : sim::NodeStats::fields()) {
    EXPECT_EQ(r_off.totals.*f.member, r_on.totals.*f.member) << f.name;
  }
  EXPECT_FALSE(r_off.snapshot.traced);
  EXPECT_TRUE(r_on.snapshot.traced);
}

TEST(ObsReport, ChromeTraceShapeAndMetricsTotalsMatchLegacy) {
  const apps::RunResult r = traced_run(2);
  const std::vector<obs::ReportPoint> pts{to_point(r)};

  const std::string trace = obs::chrome_trace_json(pts);
  EXPECT_EQ(trace.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);  // metadata events
#if CNI_OBS_ENABLED
  // Real events only exist when the probes are compiled in; under the
  // CNI_OBS_DISABLED kill-switch build the rings stay empty and this test
  // still verifies the (empty) export shape.
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(trace.find("dsm.fault"), std::string::npos);
#endif

  // The snapshot's bound counters must agree with the legacy accounts the
  // figures are computed from — same fields, same values.
  for (const sim::NodeStats::Field& f : sim::NodeStats::fields()) {
    EXPECT_EQ(r.snapshot.total_counter(f.name), r.totals.*f.member) << f.name;
  }

  const std::string report = obs::run_report_json("t", {{"k", "v"}}, pts);
  EXPECT_NE(report.find("\"schema\":\"cni-run-report\""), std::string::npos);
  EXPECT_NE(report.find("\"version\":2"), std::string::npos);
  EXPECT_NE(report.find("\"legacy\""), std::string::npos);
  EXPECT_NE(report.find("\"trace_truncated\":false"), std::string::npos);
  EXPECT_NE(report.find("\"critpath\":"), std::string::npos);
}

/// One traced Jacobi run on `topo` with a fixed shard count. Four nodes so a
/// K=4 run puts every node in its own shard — the maximal cross-shard case.
apps::RunResult traced_topo_run(atm::TopologyKind topo, std::uint32_t shards) {
  cluster::SimParams params = make_params(BoardKind::kCni, 4);
  params.fabric.topology = topo;
  params.sim_shards = shards;
  params.obs.trace = true;
  params.obs.trace_capacity = 8192;
  return apps::run_jacobi(params, apps::JacobiConfig{24, 3, 6}, nullptr);
}

/// Trace export under every fabric topology (test_obs_trace was banyan-only
/// before the causal-tracing PR): the causal spans ride the same frames the
/// topology routes, so per-hop Clos/torus paths must neither perturb the
/// simulation nor make the exports shard-count-dependent.
class ObsTraceTopology : public ::testing::TestWithParam<atm::TopologyKind> {};

TEST_P(ObsTraceTopology, ExportsByteIdenticalAcrossK1AndK4) {
  const apps::RunResult k1 = traced_topo_run(GetParam(), 1);
  const apps::RunResult k4 = traced_topo_run(GetParam(), 4);

  EXPECT_EQ(k1.elapsed, k4.elapsed);  // simulated result first
  for (const sim::NodeStats::Field& f : sim::NodeStats::fields()) {
    EXPECT_EQ(k1.totals.*f.member, k4.totals.*f.member) << f.name;
  }

  const std::vector<obs::ReportPoint> p1{to_point(k1)};
  const std::vector<obs::ReportPoint> p4{to_point(k4)};
  EXPECT_EQ(obs::chrome_trace_json(p1), obs::chrome_trace_json(p4));
  EXPECT_EQ(obs::run_report_json("test_obs_trace", {}, p1),
            obs::run_report_json("test_obs_trace", {}, p4));
}

TEST_P(ObsTraceTopology, CausalSpansSurviveTheTopology) {
  const std::string trace = obs::chrome_trace_json({to_point(traced_topo_run(GetParam(), 4))});
#if CNI_OBS_ENABLED
  // The remote-fault chain's anchor stages must appear regardless of how
  // many switch stages or dimension hops sit between the endpoints.
  EXPECT_NE(trace.find("causal.tx"), std::string::npos);
  EXPECT_NE(trace.find("causal.fab_wire"), std::string::npos);
  EXPECT_NE(trace.find("causal.deliver"), std::string::npos);
#else
  EXPECT_EQ(trace.find("causal."), std::string::npos);
#endif
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, ObsTraceTopology,
                         ::testing::Values(atm::TopologyKind::kBanyan,
                                           atm::TopologyKind::kClos,
                                           atm::TopologyKind::kTorus),
                         [](const ::testing::TestParamInfo<atm::TopologyKind>& pi) {
                           return std::string(atm::topology_name(pi.param));
                         });

}  // namespace
}  // namespace cni
