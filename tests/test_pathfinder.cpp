#include <gtest/gtest.h>

#include <cstring>

#include "core/pathfinder.hpp"

namespace cni::core {
namespace {

std::vector<std::byte> header_bytes(std::uint16_t type, std::uint32_t extra = 0) {
  std::vector<std::byte> h(24, std::byte{0});
  std::memcpy(h.data(), &type, 2);
  std::memcpy(h.data() + 8, &extra, 4);
  return h;
}

Pattern type_pattern(std::uint16_t type, std::uint32_t target) {
  Pattern p;
  p.comparisons.push_back(Comparison{0, 0xFFFF, type});
  p.target = target;
  return p;
}

TEST(Pathfinder, MatchesByHeaderBytes) {
  Pathfinder pf;
  pf.add_pattern(type_pattern(0x0201, 1));
  pf.add_pattern(type_pattern(0x0202, 2));
  const auto h = header_bytes(0x0202);
  const auto r = pf.classify(h, FlowKey{0, 1, 1}, 1);
  EXPECT_TRUE(r.matched);
  EXPECT_EQ(r.target, 2u);
  EXPECT_FALSE(r.via_dynamic);
}

TEST(Pathfinder, CostCountsComparisonsExamined) {
  Pathfinder pf;
  pf.add_pattern(type_pattern(0x0201, 1));
  pf.add_pattern(type_pattern(0x0202, 2));
  pf.add_pattern(type_pattern(0x0203, 3));
  // Matching the third pattern examines all three comparisons.
  const auto r = pf.classify(header_bytes(0x0203), FlowKey{0, 1, 1}, 1);
  EXPECT_EQ(r.comparisons, 3u);
  // Matching the first examines one.
  const auto r1 = pf.classify(header_bytes(0x0201), FlowKey{0, 1, 2}, 1);
  EXPECT_EQ(r1.comparisons, 1u);
}

TEST(Pathfinder, PriorityIsInstallationOrder) {
  Pathfinder pf;
  // Two overlapping patterns: the earlier installation wins.
  Pattern loose;
  loose.comparisons.push_back(Comparison{0, 0x00FF, 0x01});
  loose.target = 7;
  pf.add_pattern(loose);
  pf.add_pattern(type_pattern(0x0201, 9));
  const auto r = pf.classify(header_bytes(0x0201), FlowKey{0, 1, 1}, 1);
  EXPECT_EQ(r.target, 7u);
}

TEST(Pathfinder, MultiComparisonPattern) {
  Pattern p;
  p.comparisons.push_back(Comparison{0, 0xFFFF, 0x0300});
  p.comparisons.push_back(Comparison{8, 0xFFFFFFFF, 0xabcd});
  p.target = 5;
  Pathfinder pf;
  pf.add_pattern(p);
  EXPECT_TRUE(pf.classify(header_bytes(0x0300, 0xabcd), FlowKey{0, 1, 1}, 1).matched);
  EXPECT_FALSE(pf.classify(header_bytes(0x0300, 0x1111), FlowKey{0, 1, 2}, 1).matched);
}

TEST(Pathfinder, FragmentsResolveThroughDynamicPattern) {
  Pathfinder pf;
  pf.add_pattern(type_pattern(0x0201, 1));
  pf.add_pattern(type_pattern(0x0202, 2));
  // An 86-cell page transfer: full match once + 85 one-comparison fragments.
  const auto r = pf.classify(header_bytes(0x0202), FlowKey{3, 1, 42}, 86);
  EXPECT_TRUE(r.matched);
  EXPECT_EQ(r.comparisons, 2u + 85u);
  EXPECT_EQ(pf.dynamic_hits(), 85u);
}

TEST(Pathfinder, PreinstalledDynamicBindingShortCircuits) {
  Pathfinder pf;
  pf.add_pattern(type_pattern(0x0201, 1));
  const FlowKey flow{1, 1, 99};
  pf.install_dynamic(flow, 1);
  const auto r = pf.classify(header_bytes(0x0201), flow, 4);
  EXPECT_TRUE(r.via_dynamic);
  EXPECT_EQ(r.comparisons, 4u);  // one per fragment
  // The binding is consumed with the packet.
  const auto r2 = pf.classify(header_bytes(0x0201), flow, 1);
  EXPECT_FALSE(r2.via_dynamic);
}

TEST(Pathfinder, RemovePattern) {
  Pathfinder pf;
  const auto id = pf.add_pattern(type_pattern(0x0201, 1));
  EXPECT_EQ(pf.pattern_count(), 1u);
  pf.remove_pattern(id);
  EXPECT_EQ(pf.pattern_count(), 0u);
  EXPECT_FALSE(pf.classify(header_bytes(0x0201), FlowKey{0, 1, 1}, 1).matched);
}

TEST(Pathfinder, NoMatchExaminesEverything) {
  Pathfinder pf;
  pf.add_pattern(type_pattern(0x0201, 1));
  pf.add_pattern(type_pattern(0x0202, 2));
  const auto r = pf.classify(header_bytes(0x0777), FlowKey{0, 1, 1}, 1);
  EXPECT_FALSE(r.matched);
  EXPECT_EQ(r.comparisons, 2u);
}

TEST(Pathfinder, ShortHeadersReadAsZeroPadded) {
  Pattern p;
  p.comparisons.push_back(Comparison{100, ~0ull, 0});  // beyond the header
  p.target = 1;
  Pathfinder pf;
  pf.add_pattern(p);
  EXPECT_TRUE(pf.classify(header_bytes(0x1), FlowKey{0, 1, 1}, 1).matched);
}

TEST(Pathfinder, MatchesHelper) {
  const Pattern p = type_pattern(0x0201, 1);
  EXPECT_TRUE(Pathfinder::matches(p, header_bytes(0x0201)));
  EXPECT_FALSE(Pathfinder::matches(p, header_bytes(0x0202)));
}

// Regression for the dynamic table's move to util::U64FlatMap keyed on
// FlowKey::packed(): flows differing in any single field must never alias,
// and consuming one flow's binding must leave the others intact.
TEST(Pathfinder, PackedFlowKeysNeverAlias) {
  const FlowKey base{3, 7, 1000};
  const FlowKey other_src{4, 7, 1000};
  const FlowKey other_vci{3, 8, 1000};
  const FlowKey other_seq{3, 7, 1001};
  EXPECT_NE(base.packed(), other_src.packed());
  EXPECT_NE(base.packed(), other_vci.packed());
  EXPECT_NE(base.packed(), other_seq.packed());
  // Field values that could collide under a naive shift/xor mix: (src=1,
  // vci=0) vs (src=0, vci=1<<16) is impossible since vci is checked to 16
  // bits, but (src,seq) and (vci,seq) swaps must stay distinct.
  EXPECT_NE((FlowKey{1, 2, 3}).packed(), (FlowKey{2, 1, 3}).packed());
  EXPECT_NE((FlowKey{0, 5, 6}).packed(), (FlowKey{5, 0, 6}).packed());

  Pathfinder pf;
  pf.add_pattern(type_pattern(0x0201, 1));
  pf.install_dynamic(base, 10);
  pf.install_dynamic(other_src, 20);
  pf.install_dynamic(other_seq, 30);

  const auto r = pf.classify(header_bytes(0x0201), base, 2);
  EXPECT_TRUE(r.via_dynamic);
  EXPECT_EQ(r.target, 10u);
  // base's binding is consumed; the neighbours must still resolve dynamic.
  EXPECT_FALSE(pf.classify(header_bytes(0x0201), base, 1).via_dynamic);
  const auto r2 = pf.classify(header_bytes(0x0201), other_src, 1);
  EXPECT_TRUE(r2.via_dynamic);
  EXPECT_EQ(r2.target, 20u);
  const auto r3 = pf.classify(header_bytes(0x0201), other_seq, 1);
  EXPECT_TRUE(r3.via_dynamic);
  EXPECT_EQ(r3.target, 30u);
}

}  // namespace
}  // namespace cni::core
