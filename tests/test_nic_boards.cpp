// Board-level behaviour: transmit/receive caching, snooping, AIH dispatch,
// kernel/interrupt paths on the standard NIC.
#include <gtest/gtest.h>

#include <cstring>

#include "apps/runner.hpp"
#include "cluster/cluster.hpp"
#include "core/cni_board.hpp"
#include "nic/wire.hpp"
#include "sim/channel.hpp"

namespace cni {
namespace {

using apps::make_params;
using cluster::BoardKind;

constexpr nic::MsgType kPing = nic::kTypeAppBase + 1;
constexpr nic::MsgType kProto = nic::kTypeHandlerBase + 99;

atm::Frame make_msg(cluster::Cluster& cl, std::uint32_t src, std::uint32_t dst,
                    nic::MsgType type, std::uint64_t body_bytes, mem::VAddr buffer_va,
                    bool cacheable) {
  nic::MsgHeader h;
  h.type = type;
  h.flags = cacheable ? nic::kFlagCacheable : 0;
  h.src_node = src;
  h.seq = cl.node(src).board().next_seq();
  h.buffer_va = buffer_va;
  atm::Frame f = atm::Frame::blank(src, dst, 1, sizeof(h) + body_bytes);
  std::memcpy(f.mutable_bytes().data(), &h, sizeof(h));
  return f;
}

TEST(CniBoard, TransmitCachingSkipsSecondDma) {
  cluster::Cluster cl(make_params(BoardKind::kCni, 2));
  sim::SimChannel<atm::Frame> rx;
  cl.node(1).board().bind_channel(kPing, &rx);
  const mem::VAddr buf = mem::kSharedBase;

  cl.run([&](std::size_t i, sim::SimThread& t) {
    if (i != 0) {
      cl.node(1).board().receive_app(t, rx);
      cl.node(1).board().receive_app(t, rx);
      return;
    }
    nic::NicBoard::SendOptions opts{buf, 4096, true};
    cl.node(0).board().send_from_host(t, make_msg(cl, 0, 1, kPing, 4096, 0, true), opts);
    t.delay(sim::kMillisecond);
    const std::uint64_t dma_before = cl.stats().node(0).dma_transfers;
    cl.node(0).board().send_from_host(t, make_msg(cl, 0, 1, kPing, 4096, 0, true), opts);
    t.delay(sim::kMillisecond);
    EXPECT_EQ(cl.stats().node(0).dma_transfers, dma_before);  // no second DMA
  });
  EXPECT_EQ(cl.stats().node(0).mcache_tx_lookups, 2u);
  EXPECT_EQ(cl.stats().node(0).mcache_tx_hits, 1u);
}

TEST(CniBoard, SnoopedWritesKeepCachedBufferConsistent) {
  cluster::Cluster cl(make_params(BoardKind::kCni, 2));
  sim::SimChannel<atm::Frame> rx;
  cl.node(1).board().bind_channel(kPing, &rx);
  const mem::VAddr buf = mem::kSharedBase;

  cl.run([&](std::size_t i, sim::SimThread& t) {
    if (i != 0) {
      cl.node(1).board().receive_app(t, rx);
      cl.node(1).board().receive_app(t, rx);
      return;
    }
    auto& cpu = cl.node(0).cpu();
    nic::NicBoard::SendOptions opts{buf, 4096, true};
    cl.node(0).board().send_from_host(t, make_msg(cl, 0, 1, kPing, 4096, 0, true), opts);
    t.delay(sim::kMillisecond);
    // The CPU rewrites the buffer. The flush before the next send puts the
    // dirty lines on the bus, where the snooper folds them into the bound
    // buffer — which therefore STAYS valid and still hits.
    for (int w = 0; w < 512; ++w) cpu.mem_access(buf + w * 8, true);
    cpu.sync(t);
    cl.node(0).board().send_from_host(t, make_msg(cl, 0, 1, kPing, 4096, 0, true), opts);
    t.delay(sim::kMillisecond);
  });
  EXPECT_EQ(cl.stats().node(0).mcache_tx_hits, 1u);
  EXPECT_GT(cl.stats().node(0).mcache_snoop_updates, 0u);
}

TEST(CniBoard, ReceiveCachingEnablesMigrationFastPath) {
  // Node 0 pushes a page to node 1 (receive-cached there); node 1 then
  // forwards the same buffer to node 0 — and transmits without any DMA.
  cluster::Cluster cl(make_params(BoardKind::kCni, 2));
  sim::SimChannel<atm::Frame> rx0;
  sim::SimChannel<atm::Frame> rx1;
  cl.node(0).board().bind_channel(kPing, &rx0);
  cl.node(1).board().bind_channel(kPing, &rx1);
  const mem::VAddr page = mem::kSharedBase;

  cl.run([&](std::size_t i, sim::SimThread& t) {
    if (i == 0) {
      nic::NicBoard::SendOptions opts{page, 4096, true};
      cl.node(0).board().send_from_host(t, make_msg(cl, 0, 1, kPing, 4096, page, true),
                                        opts);
      cl.node(0).board().receive_app(t, rx0);
    } else {
      cl.node(1).board().receive_app(t, rx1);
      EXPECT_TRUE(cl.node(1).cni().message_cache().contains(page, 4096));
      nic::NicBoard::SendOptions opts{page, 4096, true};
      cl.node(1).board().send_from_host(t, make_msg(cl, 1, 0, kPing, 4096, page, true),
                                        opts);
    }
  });
  EXPECT_EQ(cl.stats().node(1).mcache_rx_inserts, 1u);
  EXPECT_EQ(cl.stats().node(1).mcache_tx_hits, 1u);  // migration needed no DMA
}

TEST(StandardNic, AlwaysDmasAndInterrupts) {
  cluster::Cluster cl(make_params(BoardKind::kStandard, 2));
  sim::SimChannel<atm::Frame> rx;
  cl.node(1).board().bind_channel(kPing, &rx);
  const mem::VAddr buf = mem::kSharedBase;

  cl.run([&](std::size_t i, sim::SimThread& t) {
    if (i != 0) {
      cl.node(1).board().receive_app(t, rx);
      cl.node(1).board().receive_app(t, rx);
      return;
    }
    nic::NicBoard::SendOptions opts{buf, 4096, true};
    for (int k = 0; k < 2; ++k) {
      cl.node(0).board().send_from_host(t, make_msg(cl, 0, 1, kPing, 4096, 0, true), opts);
      t.delay(sim::kMillisecond);
    }
  });
  EXPECT_EQ(cl.stats().node(0).mcache_tx_lookups, 0u);  // no Message Cache
  EXPECT_GE(cl.stats().node(0).dma_transfers, 2u);      // every send DMAs
  EXPECT_EQ(cl.stats().node(1).host_interrupts, 2u);    // every receive interrupts
  EXPECT_GT(cl.stats().node(1).synch_overhead_cycles, 0u);
}

TEST(Boards, HandlerRunsOnNicForCniAndOnHostForStandard) {
  for (BoardKind kind : {BoardKind::kCni, BoardKind::kStandard}) {
    cluster::Cluster cl(make_params(kind, 2));
    bool handled = false;
    bool on_nic = false;
    cl.node(1).board().install_handler(
        kProto,
        [&](nic::NicBoard::RxContext& ctx, const atm::Frame&) {
          handled = true;
          on_nic = ctx.on_nic();
          ctx.charge(500);
        },
        8192);
    cl.run([&](std::size_t i, sim::SimThread& t) {
      if (i == 0) {
        cl.node(0).board().send_from_host(t, make_msg(cl, 0, 1, kProto, 64, 0, false),
                                          {});
        t.delay(2 * sim::kMillisecond);
      } else {
        t.delay(2 * sim::kMillisecond);
      }
    });
    EXPECT_TRUE(handled);
    EXPECT_EQ(on_nic, kind == BoardKind::kCni);
    if (kind == BoardKind::kStandard) {
      EXPECT_EQ(cl.stats().node(1).host_interrupts, 1u);
    } else {
      EXPECT_EQ(cl.stats().node(1).host_interrupts, 0u);
    }
  }
}

TEST(Boards, HandlerReplyRoundTrip) {
  cluster::Cluster cl(make_params(BoardKind::kCni, 2));
  sim::SimChannel<atm::Frame> rx;
  cl.node(0).board().bind_channel(kPing, &rx);
  cl.node(1).board().install_handler(
      kProto,
      [&](nic::NicBoard::RxContext& ctx, const atm::Frame& f) {
        ctx.charge(200);
        ctx.send(make_msg(cl, 1, f.header<nic::MsgHeader>().src_node, kPing, 16, 0, false),
                 {});
      },
      8192);
  bool got_reply = false;
  cl.run([&](std::size_t i, sim::SimThread& t) {
    if (i == 0) {
      cl.node(0).board().send_from_host(t, make_msg(cl, 0, 1, kProto, 64, 0, false), {});
      cl.node(0).board().receive_app(t, rx);
      got_reply = true;
    }
  });
  EXPECT_TRUE(got_reply);
}

TEST(Boards, CniOneWayLatencyBeatsStandard) {
  sim::SimTime latency[2] = {0, 0};
  int idx = 0;
  for (BoardKind kind : {BoardKind::kCni, BoardKind::kStandard}) {
    cluster::Cluster cl(make_params(kind, 2));
    sim::SimChannel<atm::Frame> rx;
    cl.node(1).board().bind_channel(kPing, &rx);
    sim::SimTime t0 = 0;
    sim::SimTime t1 = 0;
    cl.run([&](std::size_t i, sim::SimThread& t) {
      if (i == 0) {
        t0 = t.engine().now();
        cl.node(0).board().send_from_host(t, make_msg(cl, 0, 1, kPing, 1024, 0, false),
                                          {});
      } else {
        cl.node(1).board().receive_app(t, rx);
        t1 = t.engine().now();
      }
    });
    latency[idx++] = t1 - t0;
  }
  EXPECT_LT(latency[0], latency[1]);
}

TEST(CniBoard, EvictionCausesRelookupMiss) {
  cluster::SimParams params = make_params(BoardKind::kCni, 2, 4096, /*mcache=*/2 * 4096);
  cluster::Cluster cl(params);
  sim::SimChannel<atm::Frame> rx;
  cl.node(1).board().bind_channel(kPing, &rx);

  cl.run([&](std::size_t i, sim::SimThread& t) {
    if (i != 0) {
      for (int k = 0; k < 4; ++k) cl.node(1).board().receive_app(t, rx);
      return;
    }
    // Three distinct pages through a 2-buffer cache, then resend the first.
    for (mem::VAddr va : {mem::kSharedBase, mem::kSharedBase + 4096,
                          mem::kSharedBase + 8192, mem::kSharedBase}) {
      nic::NicBoard::SendOptions opts{va, 4096, true};
      cl.node(0).board().send_from_host(t, make_msg(cl, 0, 1, kPing, 4096, 0, true), opts);
      t.delay(sim::kMillisecond);
    }
  });
  EXPECT_EQ(cl.stats().node(0).mcache_tx_hits, 0u);  // first page was evicted
  EXPECT_GT(cl.stats().node(0).mcache_evictions, 0u);
}


TEST(Ablation, MechanismsDisableIndependently) {
  // Message Cache off: every transmit DMAs, no lookups counted as hits.
  cluster::SimParams no_mc = make_params(BoardKind::kCni, 2);
  no_mc.cni.enable_message_cache = false;
  {
    cluster::Cluster cl(no_mc);
    sim::SimChannel<atm::Frame> rx;
    cl.node(1).board().bind_channel(kPing, &rx);
    cl.run([&](std::size_t i, sim::SimThread& t) {
      if (i != 0) {
        cl.node(1).board().receive_app(t, rx);
        cl.node(1).board().receive_app(t, rx);
        return;
      }
      nic::NicBoard::SendOptions opts{mem::kSharedBase, 4096, true};
      for (int k = 0; k < 2; ++k) {
        cl.node(0).board().send_from_host(t, make_msg(cl, 0, 1, kPing, 4096, 0, true),
                                          opts);
        t.delay(sim::kMillisecond);
      }
    });
    EXPECT_EQ(cl.stats().node(0).mcache_tx_hits, 0u);
    EXPECT_GE(cl.stats().node(0).dma_transfers, 2u);
  }

  // AIH off: protocol handlers interrupt the host, like the standard board.
  cluster::SimParams no_aih = make_params(BoardKind::kCni, 2);
  no_aih.cni.enable_aih = false;
  {
    cluster::Cluster cl(no_aih);
    bool on_nic = true;
    cl.node(1).board().install_handler(
        kProto,
        [&](nic::NicBoard::RxContext& ctx, const atm::Frame&) {
          on_nic = ctx.on_nic();
          ctx.charge(100);
        },
        4096);
    cl.run([&](std::size_t i, sim::SimThread& t) {
      if (i == 0) {
        cl.node(0).board().send_from_host(t, make_msg(cl, 0, 1, kProto, 64, 0, false),
                                          {});
      }
      t.delay(2 * sim::kMillisecond);
    });
    EXPECT_FALSE(on_nic);
    EXPECT_EQ(cl.stats().node(1).host_interrupts, 1u);
  }
}

}  // namespace
}  // namespace cni
