file(REMOVE_RECURSE
  "CMakeFiles/micro_mcache.dir/micro_mcache.cpp.o"
  "CMakeFiles/micro_mcache.dir/micro_mcache.cpp.o.d"
  "micro_mcache"
  "micro_mcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
