# Empty dependencies file for micro_mcache.
# This may be replaced when dependencies are built.
