file(REMOVE_RECURSE
  "CMakeFiles/tab01_params.dir/tab01_params.cpp.o"
  "CMakeFiles/tab01_params.dir/tab01_params.cpp.o.d"
  "tab01_params"
  "tab01_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
