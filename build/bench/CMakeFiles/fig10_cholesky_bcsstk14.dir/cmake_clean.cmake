file(REMOVE_RECURSE
  "CMakeFiles/fig10_cholesky_bcsstk14.dir/fig10_cholesky_bcsstk14.cpp.o"
  "CMakeFiles/fig10_cholesky_bcsstk14.dir/fig10_cholesky_bcsstk14.cpp.o.d"
  "fig10_cholesky_bcsstk14"
  "fig10_cholesky_bcsstk14.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cholesky_bcsstk14.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
