# Empty dependencies file for fig10_cholesky_bcsstk14.
# This may be replaced when dependencies are built.
