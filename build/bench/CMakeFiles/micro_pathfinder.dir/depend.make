# Empty dependencies file for micro_pathfinder.
# This may be replaced when dependencies are built.
