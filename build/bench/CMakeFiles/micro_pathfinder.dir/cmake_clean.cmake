file(REMOVE_RECURSE
  "CMakeFiles/micro_pathfinder.dir/micro_pathfinder.cpp.o"
  "CMakeFiles/micro_pathfinder.dir/micro_pathfinder.cpp.o.d"
  "micro_pathfinder"
  "micro_pathfinder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pathfinder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
