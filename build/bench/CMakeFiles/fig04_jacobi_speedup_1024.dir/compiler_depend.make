# Empty compiler generated dependencies file for fig04_jacobi_speedup_1024.
# This may be replaced when dependencies are built.
