file(REMOVE_RECURSE
  "CMakeFiles/fig04_jacobi_speedup_1024.dir/fig04_jacobi_speedup_1024.cpp.o"
  "CMakeFiles/fig04_jacobi_speedup_1024.dir/fig04_jacobi_speedup_1024.cpp.o.d"
  "fig04_jacobi_speedup_1024"
  "fig04_jacobi_speedup_1024.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_jacobi_speedup_1024.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
