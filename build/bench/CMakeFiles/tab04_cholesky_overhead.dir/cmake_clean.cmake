file(REMOVE_RECURSE
  "CMakeFiles/tab04_cholesky_overhead.dir/tab04_cholesky_overhead.cpp.o"
  "CMakeFiles/tab04_cholesky_overhead.dir/tab04_cholesky_overhead.cpp.o.d"
  "tab04_cholesky_overhead"
  "tab04_cholesky_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_cholesky_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
