file(REMOVE_RECURSE
  "CMakeFiles/fig06_water_speedup_64.dir/fig06_water_speedup_64.cpp.o"
  "CMakeFiles/fig06_water_speedup_64.dir/fig06_water_speedup_64.cpp.o.d"
  "fig06_water_speedup_64"
  "fig06_water_speedup_64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_water_speedup_64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
