# Empty dependencies file for fig06_water_speedup_64.
# This may be replaced when dependencies are built.
