file(REMOVE_RECURSE
  "CMakeFiles/fig08_water_speedup_343.dir/fig08_water_speedup_343.cpp.o"
  "CMakeFiles/fig08_water_speedup_343.dir/fig08_water_speedup_343.cpp.o.d"
  "fig08_water_speedup_343"
  "fig08_water_speedup_343.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_water_speedup_343.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
