# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig08_water_speedup_343.
