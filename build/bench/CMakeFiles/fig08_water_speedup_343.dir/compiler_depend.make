# Empty compiler generated dependencies file for fig08_water_speedup_343.
# This may be replaced when dependencies are built.
