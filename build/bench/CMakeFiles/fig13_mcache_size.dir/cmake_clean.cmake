file(REMOVE_RECURSE
  "CMakeFiles/fig13_mcache_size.dir/fig13_mcache_size.cpp.o"
  "CMakeFiles/fig13_mcache_size.dir/fig13_mcache_size.cpp.o.d"
  "fig13_mcache_size"
  "fig13_mcache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_mcache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
