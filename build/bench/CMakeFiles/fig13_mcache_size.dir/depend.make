# Empty dependencies file for fig13_mcache_size.
# This may be replaced when dependencies are built.
