# Empty dependencies file for tab02_jacobi_overhead.
# This may be replaced when dependencies are built.
