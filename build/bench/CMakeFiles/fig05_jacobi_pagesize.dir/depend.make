# Empty dependencies file for fig05_jacobi_pagesize.
# This may be replaced when dependencies are built.
