file(REMOVE_RECURSE
  "CMakeFiles/fig05_jacobi_pagesize.dir/fig05_jacobi_pagesize.cpp.o"
  "CMakeFiles/fig05_jacobi_pagesize.dir/fig05_jacobi_pagesize.cpp.o.d"
  "fig05_jacobi_pagesize"
  "fig05_jacobi_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_jacobi_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
