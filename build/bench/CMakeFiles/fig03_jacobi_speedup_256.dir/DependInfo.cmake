
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig03_jacobi_speedup_256.cpp" "bench/CMakeFiles/fig03_jacobi_speedup_256.dir/fig03_jacobi_speedup_256.cpp.o" "gcc" "bench/CMakeFiles/fig03_jacobi_speedup_256.dir/fig03_jacobi_speedup_256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/cni_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/cni_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/cni_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cni_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/cni_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/cni_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cni_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cni_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cni_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
