# Empty dependencies file for fig03_jacobi_speedup_256.
# This may be replaced when dependencies are built.
