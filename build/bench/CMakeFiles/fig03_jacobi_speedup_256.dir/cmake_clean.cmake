file(REMOVE_RECURSE
  "CMakeFiles/fig03_jacobi_speedup_256.dir/fig03_jacobi_speedup_256.cpp.o"
  "CMakeFiles/fig03_jacobi_speedup_256.dir/fig03_jacobi_speedup_256.cpp.o.d"
  "fig03_jacobi_speedup_256"
  "fig03_jacobi_speedup_256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_jacobi_speedup_256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
