# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig03_jacobi_speedup_256.
