# Empty compiler generated dependencies file for fig09_water_pagesize.
# This may be replaced when dependencies are built.
