file(REMOVE_RECURSE
  "CMakeFiles/fig09_water_pagesize.dir/fig09_water_pagesize.cpp.o"
  "CMakeFiles/fig09_water_pagesize.dir/fig09_water_pagesize.cpp.o.d"
  "fig09_water_pagesize"
  "fig09_water_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_water_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
