file(REMOVE_RECURSE
  "CMakeFiles/fig07_water_speedup_216.dir/fig07_water_speedup_216.cpp.o"
  "CMakeFiles/fig07_water_speedup_216.dir/fig07_water_speedup_216.cpp.o.d"
  "fig07_water_speedup_216"
  "fig07_water_speedup_216.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_water_speedup_216.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
