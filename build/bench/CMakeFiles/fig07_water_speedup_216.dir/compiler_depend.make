# Empty compiler generated dependencies file for fig07_water_speedup_216.
# This may be replaced when dependencies are built.
