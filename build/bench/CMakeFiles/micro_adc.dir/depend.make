# Empty dependencies file for micro_adc.
# This may be replaced when dependencies are built.
