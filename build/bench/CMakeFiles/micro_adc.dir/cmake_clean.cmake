file(REMOVE_RECURSE
  "CMakeFiles/micro_adc.dir/micro_adc.cpp.o"
  "CMakeFiles/micro_adc.dir/micro_adc.cpp.o.d"
  "micro_adc"
  "micro_adc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_adc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
