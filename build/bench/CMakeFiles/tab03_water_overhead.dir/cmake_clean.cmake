file(REMOVE_RECURSE
  "CMakeFiles/tab03_water_overhead.dir/tab03_water_overhead.cpp.o"
  "CMakeFiles/tab03_water_overhead.dir/tab03_water_overhead.cpp.o.d"
  "tab03_water_overhead"
  "tab03_water_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_water_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
