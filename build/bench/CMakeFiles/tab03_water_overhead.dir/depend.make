# Empty dependencies file for tab03_water_overhead.
# This may be replaced when dependencies are built.
