# Empty dependencies file for fig02_jacobi_speedup_128.
# This may be replaced when dependencies are built.
