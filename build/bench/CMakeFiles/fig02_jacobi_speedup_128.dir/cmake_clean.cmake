file(REMOVE_RECURSE
  "CMakeFiles/fig02_jacobi_speedup_128.dir/fig02_jacobi_speedup_128.cpp.o"
  "CMakeFiles/fig02_jacobi_speedup_128.dir/fig02_jacobi_speedup_128.cpp.o.d"
  "fig02_jacobi_speedup_128"
  "fig02_jacobi_speedup_128.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_jacobi_speedup_128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
