file(REMOVE_RECURSE
  "CMakeFiles/fig12_cholesky_pagesize.dir/fig12_cholesky_pagesize.cpp.o"
  "CMakeFiles/fig12_cholesky_pagesize.dir/fig12_cholesky_pagesize.cpp.o.d"
  "fig12_cholesky_pagesize"
  "fig12_cholesky_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cholesky_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
