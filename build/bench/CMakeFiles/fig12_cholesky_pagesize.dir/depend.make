# Empty dependencies file for fig12_cholesky_pagesize.
# This may be replaced when dependencies are built.
