# Empty dependencies file for fig14_latency_micro.
# This may be replaced when dependencies are built.
