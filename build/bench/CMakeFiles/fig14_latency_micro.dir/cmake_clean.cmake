file(REMOVE_RECURSE
  "CMakeFiles/fig14_latency_micro.dir/fig14_latency_micro.cpp.o"
  "CMakeFiles/fig14_latency_micro.dir/fig14_latency_micro.cpp.o.d"
  "fig14_latency_micro"
  "fig14_latency_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_latency_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
