# Empty dependencies file for fig11_cholesky_bcsstk15.
# This may be replaced when dependencies are built.
