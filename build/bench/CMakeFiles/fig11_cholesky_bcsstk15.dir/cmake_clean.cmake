file(REMOVE_RECURSE
  "CMakeFiles/fig11_cholesky_bcsstk15.dir/fig11_cholesky_bcsstk15.cpp.o"
  "CMakeFiles/fig11_cholesky_bcsstk15.dir/fig11_cholesky_bcsstk15.cpp.o.d"
  "fig11_cholesky_bcsstk15"
  "fig11_cholesky_bcsstk15.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cholesky_bcsstk15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
