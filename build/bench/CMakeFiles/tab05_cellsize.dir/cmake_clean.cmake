file(REMOVE_RECURSE
  "CMakeFiles/tab05_cellsize.dir/tab05_cellsize.cpp.o"
  "CMakeFiles/tab05_cellsize.dir/tab05_cellsize.cpp.o.d"
  "tab05_cellsize"
  "tab05_cellsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_cellsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
