# Empty compiler generated dependencies file for tab05_cellsize.
# This may be replaced when dependencies are built.
