# Empty dependencies file for page_migration.
# This may be replaced when dependencies are built.
