file(REMOVE_RECURSE
  "CMakeFiles/page_migration.dir/page_migration.cpp.o"
  "CMakeFiles/page_migration.dir/page_migration.cpp.o.d"
  "page_migration"
  "page_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
