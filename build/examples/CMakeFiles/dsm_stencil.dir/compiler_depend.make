# Empty compiler generated dependencies file for dsm_stencil.
# This may be replaced when dependencies are built.
