file(REMOVE_RECURSE
  "CMakeFiles/dsm_stencil.dir/dsm_stencil.cpp.o"
  "CMakeFiles/dsm_stencil.dir/dsm_stencil.cpp.o.d"
  "dsm_stencil"
  "dsm_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
