# Empty compiler generated dependencies file for cni_sim.
# This may be replaced when dependencies are built.
