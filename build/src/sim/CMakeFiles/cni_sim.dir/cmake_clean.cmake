file(REMOVE_RECURSE
  "CMakeFiles/cni_sim.dir/engine.cpp.o"
  "CMakeFiles/cni_sim.dir/engine.cpp.o.d"
  "CMakeFiles/cni_sim.dir/process.cpp.o"
  "CMakeFiles/cni_sim.dir/process.cpp.o.d"
  "CMakeFiles/cni_sim.dir/stats.cpp.o"
  "CMakeFiles/cni_sim.dir/stats.cpp.o.d"
  "libcni_sim.a"
  "libcni_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cni_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
