file(REMOVE_RECURSE
  "libcni_sim.a"
)
