file(REMOVE_RECURSE
  "libcni_nic.a"
)
