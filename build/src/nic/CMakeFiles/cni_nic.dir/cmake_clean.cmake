file(REMOVE_RECURSE
  "CMakeFiles/cni_nic.dir/osiris.cpp.o"
  "CMakeFiles/cni_nic.dir/osiris.cpp.o.d"
  "CMakeFiles/cni_nic.dir/standard_nic.cpp.o"
  "CMakeFiles/cni_nic.dir/standard_nic.cpp.o.d"
  "libcni_nic.a"
  "libcni_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cni_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
