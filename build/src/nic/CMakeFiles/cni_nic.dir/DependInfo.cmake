
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/osiris.cpp" "src/nic/CMakeFiles/cni_nic.dir/osiris.cpp.o" "gcc" "src/nic/CMakeFiles/cni_nic.dir/osiris.cpp.o.d"
  "/root/repo/src/nic/standard_nic.cpp" "src/nic/CMakeFiles/cni_nic.dir/standard_nic.cpp.o" "gcc" "src/nic/CMakeFiles/cni_nic.dir/standard_nic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cni_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cni_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/cni_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cni_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
