# Empty dependencies file for cni_nic.
# This may be replaced when dependencies are built.
