file(REMOVE_RECURSE
  "libcni_mem.a"
)
