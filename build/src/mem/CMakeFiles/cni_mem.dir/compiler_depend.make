# Empty compiler generated dependencies file for cni_mem.
# This may be replaced when dependencies are built.
