file(REMOVE_RECURSE
  "CMakeFiles/cni_mem.dir/cache.cpp.o"
  "CMakeFiles/cni_mem.dir/cache.cpp.o.d"
  "CMakeFiles/cni_mem.dir/tlb.cpp.o"
  "CMakeFiles/cni_mem.dir/tlb.cpp.o.d"
  "libcni_mem.a"
  "libcni_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cni_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
