file(REMOVE_RECURSE
  "CMakeFiles/cni_atm.dir/banyan.cpp.o"
  "CMakeFiles/cni_atm.dir/banyan.cpp.o.d"
  "CMakeFiles/cni_atm.dir/fabric.cpp.o"
  "CMakeFiles/cni_atm.dir/fabric.cpp.o.d"
  "libcni_atm.a"
  "libcni_atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cni_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
