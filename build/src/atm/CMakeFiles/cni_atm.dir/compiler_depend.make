# Empty compiler generated dependencies file for cni_atm.
# This may be replaced when dependencies are built.
