file(REMOVE_RECURSE
  "libcni_atm.a"
)
