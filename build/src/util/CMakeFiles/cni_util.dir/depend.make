# Empty dependencies file for cni_util.
# This may be replaced when dependencies are built.
