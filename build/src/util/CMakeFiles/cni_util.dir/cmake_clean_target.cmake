file(REMOVE_RECURSE
  "libcni_util.a"
)
