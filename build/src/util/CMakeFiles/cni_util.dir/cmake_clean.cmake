file(REMOVE_RECURSE
  "CMakeFiles/cni_util.dir/cli.cpp.o"
  "CMakeFiles/cni_util.dir/cli.cpp.o.d"
  "CMakeFiles/cni_util.dir/log.cpp.o"
  "CMakeFiles/cni_util.dir/log.cpp.o.d"
  "CMakeFiles/cni_util.dir/table.cpp.o"
  "CMakeFiles/cni_util.dir/table.cpp.o.d"
  "libcni_util.a"
  "libcni_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cni_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
