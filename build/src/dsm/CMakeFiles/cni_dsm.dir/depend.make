# Empty dependencies file for cni_dsm.
# This may be replaced when dependencies are built.
