file(REMOVE_RECURSE
  "CMakeFiles/cni_dsm.dir/diff.cpp.o"
  "CMakeFiles/cni_dsm.dir/diff.cpp.o.d"
  "CMakeFiles/cni_dsm.dir/runtime.cpp.o"
  "CMakeFiles/cni_dsm.dir/runtime.cpp.o.d"
  "CMakeFiles/cni_dsm.dir/system.cpp.o"
  "CMakeFiles/cni_dsm.dir/system.cpp.o.d"
  "libcni_dsm.a"
  "libcni_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cni_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
