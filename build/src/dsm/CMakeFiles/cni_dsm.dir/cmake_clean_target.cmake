file(REMOVE_RECURSE
  "libcni_dsm.a"
)
