# Empty compiler generated dependencies file for cni_cluster.
# This may be replaced when dependencies are built.
