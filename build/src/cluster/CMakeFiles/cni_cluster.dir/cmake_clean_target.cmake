file(REMOVE_RECURSE
  "libcni_cluster.a"
)
