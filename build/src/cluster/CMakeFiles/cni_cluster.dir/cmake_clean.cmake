file(REMOVE_RECURSE
  "CMakeFiles/cni_cluster.dir/cluster.cpp.o"
  "CMakeFiles/cni_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/cni_cluster.dir/host.cpp.o"
  "CMakeFiles/cni_cluster.dir/host.cpp.o.d"
  "CMakeFiles/cni_cluster.dir/params.cpp.o"
  "CMakeFiles/cni_cluster.dir/params.cpp.o.d"
  "libcni_cluster.a"
  "libcni_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cni_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
