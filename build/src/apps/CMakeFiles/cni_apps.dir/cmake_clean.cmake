file(REMOVE_RECURSE
  "CMakeFiles/cni_apps.dir/cholesky.cpp.o"
  "CMakeFiles/cni_apps.dir/cholesky.cpp.o.d"
  "CMakeFiles/cni_apps.dir/jacobi.cpp.o"
  "CMakeFiles/cni_apps.dir/jacobi.cpp.o.d"
  "CMakeFiles/cni_apps.dir/water.cpp.o"
  "CMakeFiles/cni_apps.dir/water.cpp.o.d"
  "libcni_apps.a"
  "libcni_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cni_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
