file(REMOVE_RECURSE
  "libcni_apps.a"
)
