# Empty dependencies file for cni_apps.
# This may be replaced when dependencies are built.
