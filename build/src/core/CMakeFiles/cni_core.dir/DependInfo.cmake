
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adc.cpp" "src/core/CMakeFiles/cni_core.dir/adc.cpp.o" "gcc" "src/core/CMakeFiles/cni_core.dir/adc.cpp.o.d"
  "/root/repo/src/core/cni_board.cpp" "src/core/CMakeFiles/cni_core.dir/cni_board.cpp.o" "gcc" "src/core/CMakeFiles/cni_core.dir/cni_board.cpp.o.d"
  "/root/repo/src/core/dual_port.cpp" "src/core/CMakeFiles/cni_core.dir/dual_port.cpp.o" "gcc" "src/core/CMakeFiles/cni_core.dir/dual_port.cpp.o.d"
  "/root/repo/src/core/message_cache.cpp" "src/core/CMakeFiles/cni_core.dir/message_cache.cpp.o" "gcc" "src/core/CMakeFiles/cni_core.dir/message_cache.cpp.o.d"
  "/root/repo/src/core/pathfinder.cpp" "src/core/CMakeFiles/cni_core.dir/pathfinder.cpp.o" "gcc" "src/core/CMakeFiles/cni_core.dir/pathfinder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nic/CMakeFiles/cni_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cni_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cni_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/cni_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cni_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
