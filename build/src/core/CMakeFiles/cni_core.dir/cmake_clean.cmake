file(REMOVE_RECURSE
  "CMakeFiles/cni_core.dir/adc.cpp.o"
  "CMakeFiles/cni_core.dir/adc.cpp.o.d"
  "CMakeFiles/cni_core.dir/cni_board.cpp.o"
  "CMakeFiles/cni_core.dir/cni_board.cpp.o.d"
  "CMakeFiles/cni_core.dir/dual_port.cpp.o"
  "CMakeFiles/cni_core.dir/dual_port.cpp.o.d"
  "CMakeFiles/cni_core.dir/message_cache.cpp.o"
  "CMakeFiles/cni_core.dir/message_cache.cpp.o.d"
  "CMakeFiles/cni_core.dir/pathfinder.cpp.o"
  "CMakeFiles/cni_core.dir/pathfinder.cpp.o.d"
  "libcni_core.a"
  "libcni_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cni_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
