file(REMOVE_RECURSE
  "libcni_core.a"
)
