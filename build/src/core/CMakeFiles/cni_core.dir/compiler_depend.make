# Empty compiler generated dependencies file for cni_core.
# This may be replaced when dependencies are built.
