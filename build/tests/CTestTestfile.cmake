# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build/tests/test_sim_process[1]_include.cmake")
include("/root/repo/build/tests/test_mem_cache[1]_include.cmake")
include("/root/repo/build/tests/test_mem_bus_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_atm[1]_include.cmake")
include("/root/repo/build/tests/test_pathfinder[1]_include.cmake")
include("/root/repo/build/tests/test_message_cache[1]_include.cmake")
include("/root/repo/build/tests/test_core_board_parts[1]_include.cmake")
include("/root/repo/build/tests/test_nic_boards[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_dsm_units[1]_include.cmake")
include("/root/repo/build/tests/test_dsm_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_apps_integration[1]_include.cmake")
include("/root/repo/build/tests/test_perf_properties[1]_include.cmake")
include("/root/repo/build/tests/test_dsm_stress[1]_include.cmake")
