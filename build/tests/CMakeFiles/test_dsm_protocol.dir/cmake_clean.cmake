file(REMOVE_RECURSE
  "CMakeFiles/test_dsm_protocol.dir/test_dsm_protocol.cpp.o"
  "CMakeFiles/test_dsm_protocol.dir/test_dsm_protocol.cpp.o.d"
  "test_dsm_protocol"
  "test_dsm_protocol.pdb"
  "test_dsm_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsm_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
