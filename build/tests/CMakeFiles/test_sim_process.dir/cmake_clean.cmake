file(REMOVE_RECURSE
  "CMakeFiles/test_sim_process.dir/test_sim_process.cpp.o"
  "CMakeFiles/test_sim_process.dir/test_sim_process.cpp.o.d"
  "test_sim_process"
  "test_sim_process.pdb"
  "test_sim_process[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
