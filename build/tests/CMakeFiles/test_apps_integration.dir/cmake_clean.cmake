file(REMOVE_RECURSE
  "CMakeFiles/test_apps_integration.dir/test_apps_integration.cpp.o"
  "CMakeFiles/test_apps_integration.dir/test_apps_integration.cpp.o.d"
  "test_apps_integration"
  "test_apps_integration.pdb"
  "test_apps_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
