# Empty dependencies file for test_dsm_stress.
# This may be replaced when dependencies are built.
