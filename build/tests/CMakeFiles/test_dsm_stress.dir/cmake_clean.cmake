file(REMOVE_RECURSE
  "CMakeFiles/test_dsm_stress.dir/test_dsm_stress.cpp.o"
  "CMakeFiles/test_dsm_stress.dir/test_dsm_stress.cpp.o.d"
  "test_dsm_stress"
  "test_dsm_stress.pdb"
  "test_dsm_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsm_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
