file(REMOVE_RECURSE
  "CMakeFiles/test_message_cache.dir/test_message_cache.cpp.o"
  "CMakeFiles/test_message_cache.dir/test_message_cache.cpp.o.d"
  "test_message_cache"
  "test_message_cache.pdb"
  "test_message_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
