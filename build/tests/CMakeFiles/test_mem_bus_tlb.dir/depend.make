# Empty dependencies file for test_mem_bus_tlb.
# This may be replaced when dependencies are built.
