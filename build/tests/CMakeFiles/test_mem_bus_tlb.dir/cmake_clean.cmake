file(REMOVE_RECURSE
  "CMakeFiles/test_mem_bus_tlb.dir/test_mem_bus_tlb.cpp.o"
  "CMakeFiles/test_mem_bus_tlb.dir/test_mem_bus_tlb.cpp.o.d"
  "test_mem_bus_tlb"
  "test_mem_bus_tlb.pdb"
  "test_mem_bus_tlb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_bus_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
