# Empty compiler generated dependencies file for test_pathfinder.
# This may be replaced when dependencies are built.
