file(REMOVE_RECURSE
  "CMakeFiles/test_pathfinder.dir/test_pathfinder.cpp.o"
  "CMakeFiles/test_pathfinder.dir/test_pathfinder.cpp.o.d"
  "test_pathfinder"
  "test_pathfinder.pdb"
  "test_pathfinder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pathfinder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
