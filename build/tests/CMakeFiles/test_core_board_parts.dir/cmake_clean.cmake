file(REMOVE_RECURSE
  "CMakeFiles/test_core_board_parts.dir/test_core_board_parts.cpp.o"
  "CMakeFiles/test_core_board_parts.dir/test_core_board_parts.cpp.o.d"
  "test_core_board_parts"
  "test_core_board_parts.pdb"
  "test_core_board_parts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_board_parts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
