# Empty dependencies file for test_core_board_parts.
# This may be replaced when dependencies are built.
