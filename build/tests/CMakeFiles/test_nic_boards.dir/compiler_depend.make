# Empty compiler generated dependencies file for test_nic_boards.
# This may be replaced when dependencies are built.
