file(REMOVE_RECURSE
  "CMakeFiles/test_nic_boards.dir/test_nic_boards.cpp.o"
  "CMakeFiles/test_nic_boards.dir/test_nic_boards.cpp.o.d"
  "test_nic_boards"
  "test_nic_boards.pdb"
  "test_nic_boards[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nic_boards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
