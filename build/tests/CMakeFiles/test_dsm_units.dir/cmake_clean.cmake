file(REMOVE_RECURSE
  "CMakeFiles/test_dsm_units.dir/test_dsm_units.cpp.o"
  "CMakeFiles/test_dsm_units.dir/test_dsm_units.cpp.o.d"
  "test_dsm_units"
  "test_dsm_units.pdb"
  "test_dsm_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsm_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
