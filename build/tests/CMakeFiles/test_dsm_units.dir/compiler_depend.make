# Empty compiler generated dependencies file for test_dsm_units.
# This may be replaced when dependencies are built.
