// Page table, TLB and reverse TLB.
//
// The CNI board keeps "a TLB and a RTLB which keeps mappings between host
// virtual and physical memory addresses and permits virtually addressed DMA
// operations" (§2.2). The host page table is the authority; the board-side
// TLB caches VA->PA for DMA and the RTLB caches PA->VA so the snooper can
// turn a snooped physical write target back into the virtual buffer it may
// have cached.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/page.hpp"
#include "util/flat_map.hpp"

namespace cni::mem {

/// Host page table for one node: allocates physical frames on first touch.
class PageTable {
 public:
  explicit PageTable(PageGeometry geometry) : geo_(geometry) {}

  [[nodiscard]] const PageGeometry& geometry() const { return geo_; }

  /// Returns the physical frame for `vpn`, allocating one if needed.
  PageNum frame_of(PageNum vpn);

  /// Translates a full virtual address (allocating on first touch).
  PAddr translate(VAddr va);

  /// Reverse lookup: the vpn mapped to `ppn`, if any.
  [[nodiscard]] std::optional<PageNum> vpn_of(PageNum ppn) const;

  /// Reverse-translates a physical address to its virtual address, if mapped.
  [[nodiscard]] std::optional<VAddr> reverse(PAddr pa) const;

  [[nodiscard]] std::size_t mapped_pages() const { return va_to_pa_.size(); }

 private:
  PageGeometry geo_;
  // Flat open-addressed tables: TLB/RTLB miss resolution consults these on
  // the bus-snoop path, so probes should stay within one cache line.
  util::U64FlatMap<PageNum> va_to_pa_;
  util::U64FlatMap<PageNum> pa_to_va_;
  PageNum next_frame_ = 0x100;  // leave low frames for "OS"; arbitrary
};

/// A direct-mapped translation cache (used for both the board TLB and RTLB).
/// Data-less: it consults the page table on miss and records the cost.
class Tlb {
 public:
  Tlb(std::size_t entries, std::uint32_t miss_penalty_cycles);

  /// Looks up `key` (a vpn for the TLB, a ppn for the RTLB). Returns the
  /// translation via the page-table functor and adds the miss penalty to
  /// *cycles on a miss.
  template <typename Resolve>
  std::optional<PageNum> lookup(PageNum key, Resolve&& resolve, std::uint64_t* cycles) {
    ++lookups_;
    Entry& e = entries_[key % entries_.size()];
    if (e.valid && e.key == key) {
      ++hits_;
      return e.value;
    }
    if (cycles != nullptr) *cycles += miss_penalty_;
    std::optional<PageNum> v = resolve(key);
    if (v.has_value()) {
      e.valid = true;
      e.key = key;
      e.value = *v;
    }
    return v;
  }

  void invalidate(PageNum key) {
    Entry& e = entries_[key % entries_.size()];
    if (e.valid && e.key == key) e.valid = false;
  }

  void invalidate_all();

  [[nodiscard]] std::uint64_t lookups() const { return lookups_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint32_t miss_penalty() const { return miss_penalty_; }

 private:
  struct Entry {
    PageNum key = 0;
    PageNum value = 0;
    bool valid = false;
  };
  std::vector<Entry> entries_;
  std::uint32_t miss_penalty_;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace cni::mem
