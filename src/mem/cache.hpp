// Two-level direct-mapped CPU cache model (tags only).
//
// Models the Table 1 hierarchy: 32 KB unified L1 (1 cycle), 1 MB unified L2
// (10 cycles), direct-mapped, write-back, 20-cycle memory latency. The model
// is data-less: the one true copy of every byte lives in host memory arrays,
// and the cache contributes timing, write-back bus traffic (which the CNI
// snooper consumes) and flush costs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/page.hpp"

namespace cni::mem {

struct CacheParams {
  std::uint64_t l1_size = 32 * 1024;
  std::uint64_t l2_size = 1024 * 1024;
  std::uint64_t line_size = 32;
  std::uint32_t l1_latency_cycles = 1;
  std::uint32_t l2_latency_cycles = 10;
  std::uint32_t memory_latency_cycles = 20;
  bool write_back = true;  ///< false = write-through (every write hits the bus)
};

/// Result of one modelled access.
struct CacheAccess {
  std::uint32_t cpu_cycles = 0;       ///< total CPU-cycle cost of the access
  bool l1_hit = false;
  bool l2_hit = false;                ///< meaningful only when !l1_hit
  bool wrote_back = false;            ///< a dirty L2 victim went to memory
  PAddr writeback_line = 0;           ///< line address of that victim
  bool bus_write = false;             ///< a write reached the memory bus
  PAddr bus_write_line = 0;
};

class CacheModel {
 public:
  explicit CacheModel(const CacheParams& p);

  /// Models a load (is_write=false) or store of up to one line at `addr`.
  /// Accesses never straddle lines in our callers (they are <= 8 bytes).
  CacheAccess access(PAddr addr, bool is_write);

  /// Writes back (and keeps valid/clean) every dirty line intersecting
  /// [addr, addr+len). Returns the dirty line addresses, in address order,
  /// and adds the CPU cost to *cycles. This is the "flush before an
  /// impending message transfer" of paper §2.2.
  std::vector<PAddr> flush_range(PAddr addr, std::uint64_t len, std::uint64_t* cycles);

  /// Drops every line intersecting the range without writing back (used when
  /// a DMA overwrites host memory underneath the cache).
  void invalidate_range(PAddr addr, std::uint64_t len);

  [[nodiscard]] const CacheParams& params() const { return params_; }

  // Counters for tests and ablation benches.
  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t l1_hits() const { return l1_hits_; }
  [[nodiscard]] std::uint64_t l2_hits() const { return l2_hits_; }
  [[nodiscard]] std::uint64_t writebacks() const { return writebacks_; }

 private:
  struct Line {
    PAddr tag = 0;
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] PAddr line_addr(PAddr a) const { return a & ~(params_.line_size - 1); }
  [[nodiscard]] std::size_t l1_index(PAddr line) const;
  [[nodiscard]] std::size_t l2_index(PAddr line) const;

  CacheParams params_;
  std::vector<Line> l1_;
  std::vector<Line> l2_;
  std::uint64_t accesses_ = 0;
  std::uint64_t l1_hits_ = 0;
  std::uint64_t l2_hits_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace cni::mem
