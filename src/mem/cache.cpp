#include "mem/cache.hpp"

#include "util/units.hpp"

namespace cni::mem {

CacheModel::CacheModel(const CacheParams& p) : params_(p) {
  CNI_CHECK(util::is_pow2(p.line_size));
  CNI_CHECK(util::is_pow2(p.l1_size) && p.l1_size % p.line_size == 0);
  CNI_CHECK(util::is_pow2(p.l2_size) && p.l2_size % p.line_size == 0);
  l1_.resize(p.l1_size / p.line_size);
  l2_.resize(p.l2_size / p.line_size);
}

std::size_t CacheModel::l1_index(PAddr line) const {
  return (line / params_.line_size) % l1_.size();
}

std::size_t CacheModel::l2_index(PAddr line) const {
  return (line / params_.line_size) % l2_.size();
}

CacheAccess CacheModel::access(PAddr addr, bool is_write) {
  ++accesses_;
  CacheAccess r;
  const PAddr line = line_addr(addr);
  Line& e1 = l1_[l1_index(line)];
  const bool write_through = !params_.write_back;

  if (e1.valid && e1.tag == line) {
    ++l1_hits_;
    r.l1_hit = true;
    r.cpu_cycles = params_.l1_latency_cycles;
    if (is_write) {
      if (write_through) {
        r.bus_write = true;
        r.bus_write_line = line;
      } else {
        e1.dirty = true;
        // Keep the inclusive L2 copy's dirtiness in sync lazily: the line is
        // marked dirty in L1 only; L2 inherits it when L1 evicts.
      }
    }
    return r;
  }

  // L1 miss. Look in L2.
  Line& e2 = l2_[l2_index(line)];
  const bool l2_hit = e2.valid && e2.tag == line;
  if (l2_hit) {
    ++l2_hits_;
    r.l2_hit = true;
    r.cpu_cycles = params_.l2_latency_cycles;
  } else {
    // Memory fill. A dirty L2 victim is written back to memory first.
    r.cpu_cycles = params_.l2_latency_cycles + params_.memory_latency_cycles;
    if (e2.valid && e2.dirty) {
      ++writebacks_;
      r.wrote_back = true;
      r.writeback_line = e2.tag;
    }
    e2.valid = true;
    e2.dirty = false;
    e2.tag = line;
  }

  // Fill L1; a dirty L1 victim folds into L2 (inclusive hierarchy), possibly
  // displacing and writing back *that* L2 victim. To keep the model simple we
  // only surface one write-back per access: the L1 victim lands in L2 and the
  // L2 victim (if dirty) goes to memory — which is the one the bus sees.
  if (e1.valid && e1.dirty) {
    Line& v2 = l2_[l2_index(e1.tag)];
    if (v2.valid && v2.tag == e1.tag) {
      v2.dirty = true;
    } else {
      // L1 victim no longer in L2: its write-back goes straight to memory.
      ++writebacks_;
      if (!r.wrote_back) {
        r.wrote_back = true;
        r.writeback_line = e1.tag;
      }
    }
  }
  e1.valid = true;
  e1.dirty = false;
  e1.tag = line;

  if (is_write) {
    if (write_through) {
      r.bus_write = true;
      r.bus_write_line = line;
    } else {
      e1.dirty = true;
    }
  }
  return r;
}

std::vector<PAddr> CacheModel::flush_range(PAddr addr, std::uint64_t len,
                                           std::uint64_t* cycles) {
  std::vector<PAddr> flushed;
  if (len == 0) return flushed;
  const PAddr first = line_addr(addr);
  const PAddr last = line_addr(addr + len - 1);
  std::uint64_t cost = 0;
  for (PAddr line = first; line <= last; line += params_.line_size) {
    // Probing a line costs one L1 lookup; flushing a dirty one costs the L2
    // latency (the write drains through the hierarchy to the bus).
    cost += params_.l1_latency_cycles;
    bool dirty = false;
    Line& e1 = l1_[l1_index(line)];
    if (e1.valid && e1.tag == line && e1.dirty) {
      e1.dirty = false;
      dirty = true;
    }
    Line& e2 = l2_[l2_index(line)];
    if (e2.valid && e2.tag == line && e2.dirty) {
      e2.dirty = false;
      dirty = true;
    }
    if (dirty) {
      ++writebacks_;
      cost += params_.l2_latency_cycles;
      flushed.push_back(line);
    }
  }
  if (cycles != nullptr) *cycles += cost;
  return flushed;
}

void CacheModel::invalidate_range(PAddr addr, std::uint64_t len) {
  if (len == 0) return;
  const PAddr first = line_addr(addr);
  const PAddr last = line_addr(addr + len - 1);
  for (PAddr line = first; line <= last; line += params_.line_size) {
    Line& e1 = l1_[l1_index(line)];
    if (e1.valid && e1.tag == line) e1.valid = false;
    Line& e2 = l2_[l2_index(line)];
    if (e2.valid && e2.tag == line) e2.valid = false;
  }
}

}  // namespace cni::mem
