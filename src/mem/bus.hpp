// Memory-bus model with snooping.
//
// Table 1: 25 MHz bus, 4-cycle acquisition, 2 cycles per (64-bit) word.
// Two kinds of client share the per-node bus:
//   * the CPU cache (misses, write-backs, flushes) — charged analytically to
//     the CPU's local clock; write transactions are announced to snoopers;
//   * the NIC DMA engine — occupies the bus for real (busy-until), since DMA
//     bursts are long enough for contention to matter.
// The CNI Message Cache registers a snooper here: it observes every write
// transaction's physical target, exactly like the board's snoopy interface.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/page.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace cni::mem {

struct BusParams {
  std::uint64_t freq_hz = 25'000'000;
  std::uint32_t acquisition_cycles = 4;
  std::uint32_t cycles_per_word = 2;
  std::uint32_t word_bytes = 8;
};

class MemoryBus {
 public:
  /// Called for every write transaction on the bus: (physical address, len).
  using SnoopHook = std::function<void(PAddr, std::uint64_t)>;

  MemoryBus(sim::Engine& engine, const BusParams& p)
      : engine_(engine), params_(p), clock_(p.freq_hz) {}

  [[nodiscard]] const BusParams& params() const { return params_; }
  [[nodiscard]] const sim::Clock& clock() const { return clock_; }

  /// Registers a write snooper (the CNI board's snoopy interface).
  void add_snooper(SnoopHook hook) { snoopers_.push_back(std::move(hook)); }

  /// Duration of one bus transaction moving `bytes` (acquisition + words).
  [[nodiscard]] sim::SimDuration transaction_time(std::uint64_t bytes) const {
    const std::uint64_t words = util::ceil_div<std::uint64_t>(bytes, params_.word_bytes);
    return clock_.cycles(params_.acquisition_cycles + params_.cycles_per_word * words);
  }

  /// DMA from host memory to the device (a bus *read* — not snooped).
  /// Occupies the bus starting at `now`; returns the completion time.
  sim::SimTime dma_read(sim::SimTime now, std::uint64_t bytes) {
    ++dma_transfers_;
    dma_bytes_ += bytes;
    return queue_.occupy(now, transaction_time(bytes));
  }

  /// DMA from the device into host memory (a bus *write* — snooped).
  sim::SimTime dma_write(sim::SimTime now, PAddr addr, std::uint64_t bytes) {
    ++dma_transfers_;
    dma_bytes_ += bytes;
    const sim::SimTime done = queue_.occupy(now, transaction_time(bytes));
    announce_write(addr, bytes);
    return done;
  }

  /// A CPU-originated write transaction (write-back of a dirty line, a
  /// write-through store, or a flush). Returns its duration so the caller
  /// can charge the CPU's local clock; snoopers are notified immediately.
  sim::SimDuration cpu_write(PAddr addr, std::uint64_t bytes) {
    ++cpu_writes_;
    announce_write(addr, bytes);
    return transaction_time(bytes);
  }

  /// A CPU-originated read transaction (line fill). Timing only.
  [[nodiscard]] sim::SimDuration cpu_read(std::uint64_t bytes) const {
    return transaction_time(bytes);
  }

  [[nodiscard]] sim::SimTime busy_until() const { return queue_.busy_until(); }
  [[nodiscard]] std::uint64_t dma_transfers() const { return dma_transfers_; }
  [[nodiscard]] std::uint64_t dma_bytes() const { return dma_bytes_; }
  [[nodiscard]] std::uint64_t cpu_writes() const { return cpu_writes_; }

 private:
  void announce_write(PAddr addr, std::uint64_t bytes) {
    for (const auto& s : snoopers_) s(addr, bytes);
  }

  sim::Engine& engine_;
  BusParams params_;
  sim::Clock clock_;
  sim::ServiceQueue queue_;
  std::vector<SnoopHook> snoopers_;
  std::uint64_t dma_transfers_ = 0;
  std::uint64_t dma_bytes_ = 0;
  std::uint64_t cpu_writes_ = 0;
};

}  // namespace cni::mem
