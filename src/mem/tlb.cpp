#include "mem/tlb.hpp"

#include "util/check.hpp"

namespace cni::mem {

PageNum PageTable::frame_of(PageNum vpn) {
  if (const PageNum* ppn = va_to_pa_.find(vpn); ppn != nullptr) return *ppn;
  const PageNum ppn = next_frame_++;
  va_to_pa_.insert(vpn, ppn);
  pa_to_va_.insert(ppn, vpn);
  return ppn;
}

PAddr PageTable::translate(VAddr va) {
  const PageNum ppn = frame_of(geo_.page_of(va));
  return geo_.base_of(ppn) | geo_.offset_of(va);
}

std::optional<PageNum> PageTable::vpn_of(PageNum ppn) const {
  const PageNum* vpn = pa_to_va_.find(ppn);
  if (vpn == nullptr) return std::nullopt;
  return *vpn;
}

std::optional<VAddr> PageTable::reverse(PAddr pa) const {
  auto vpn = vpn_of(geo_.page_of(pa));
  if (!vpn.has_value()) return std::nullopt;
  return geo_.base_of(*vpn) | geo_.offset_of(pa);
}

Tlb::Tlb(std::size_t entries, std::uint32_t miss_penalty_cycles)
    : entries_(entries), miss_penalty_(miss_penalty_cycles) {
  CNI_CHECK(entries > 0);
}

void Tlb::invalidate_all() {
  for (auto& e : entries_) e.valid = false;
}

}  // namespace cni::mem
