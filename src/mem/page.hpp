// Address types and page geometry.
//
// Each simulated node has its own virtual and physical address spaces. The
// DSM shared region lives at a fixed virtual base on every node; the page
// size is a run parameter (the paper sweeps it in Figures 5, 9 and 12).
#pragma once

#include <cstdint>

#include "util/check.hpp"
#include "util/units.hpp"

namespace cni::mem {

using VAddr = std::uint64_t;  ///< node-local virtual address
using PAddr = std::uint64_t;  ///< node-local physical address
using PageNum = std::uint64_t;

/// Virtual base of the DSM shared region on every node (arbitrary, high
/// enough to never collide with the private heap model).
inline constexpr VAddr kSharedBase = 0x4000'0000'0000ULL;

/// Page geometry for one run. Page size must be a power of two; the Message
/// Cache buffer size equals the host page size (paper §2.2).
class PageGeometry {
 public:
  explicit PageGeometry(std::uint64_t page_size) : size_(page_size) {
    CNI_CHECK_MSG(util::is_pow2(page_size), "page size must be a power of two");
    CNI_CHECK_MSG(page_size >= 256, "page size unrealistically small");
    std::uint64_t s = page_size;
    shift_ = 0;
    while (s > 1) {
      s >>= 1;
      ++shift_;
    }
  }

  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] unsigned shift() const { return shift_; }
  [[nodiscard]] PageNum page_of(VAddr a) const { return a >> shift_; }
  [[nodiscard]] VAddr base_of(PageNum p) const { return p << shift_; }
  [[nodiscard]] std::uint64_t offset_of(VAddr a) const { return a & (size_ - 1); }

 private:
  std::uint64_t size_;
  unsigned shift_;
};

}  // namespace cni::mem
