#include "nic/osiris.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace cni::nic {

OsirisBoard::OsirisBoard(sim::Engine& engine, atm::Fabric& fabric, HostSystem& host,
                         const NicParams& params, atm::NodeId node)
    : engine_(engine),
      fabric_(fabric),
      host_(host),
      params_(params),
      node_(node),
      nic_clock_(params.nic_freq_hz),
      obs_(host.obs()) {
  // cni-lint: allow(hot-path-alloc): the delivery hook is installed once
  // when the board is wired to the fabric, not per frame (and this capture
  // fits std::function's SBO anyway).
  fabric_.attach(node, [this](atm::Frame f) { on_frame(std::move(f)); });
}

void OsirisBoard::install_handler(MsgType type, Handler handler, std::uint64_t code_bytes) {
  (void)code_bytes;  // the CNI override accounts handler memory; the base keeps the map
  CNI_CHECK_MSG(handlers_.find(type) == nullptr, "handler type already installed");
  handlers_.insert(type, std::move(handler));
}

void OsirisBoard::bind_channel(MsgType type, sim::SimChannel<atm::Frame>* channel) {
  CNI_CHECK(channel != nullptr);
  CNI_CHECK_MSG(channels_.find(type) == nullptr, "channel type already bound");
  channels_.insert(type, channel);
}

sim::SimDuration OsirisBoard::sar_time(std::uint64_t bytes) const {
  const std::uint64_t cells = fabric_.cells().cells_for(bytes);
  return nic_clock_.cycles(cells * params_.per_cell_sar_cycles);
}

NicBoard::Handler* OsirisBoard::find_handler(MsgType type) {
  return handlers_.find(type);
}

sim::SimChannel<atm::Frame>* OsirisBoard::find_channel(MsgType type) {
  sim::SimChannel<atm::Frame>** slot = channels_.find(type);
  return slot == nullptr ? nullptr : *slot;
}

std::uint64_t OsirisBoard::trace_fabric_arrival(sim::SimTime arrival, std::uint32_t origin,
                                                std::uint32_t seq, std::uint64_t fab) {
#if CNI_OBS_ENABLED
  if (obs_ == nullptr || !obs_->tracing()) return 0;
  const atm::FabBreakdown b = atm::FabBreakdown::unpack(fab);
  const sim::SimDuration wire = b.wire_ns * sim::kNanosecond;
  const sim::SimDuration contend = b.contend_ns * sim::kNanosecond;
  const sim::SimDuration credit = b.credit_ns * sim::kNanosecond;
  // Lay the categories out back to back ending at the arrival instant, in a
  // fixed order (wire, contention, credit), so the records are a pure
  // function of the packed breakdown — independent of drain interleaving.
  // The sum cannot exceed the arrival time (each category is a slice of the
  // route's actual delay), but clamp anyway: a wrapped start would poison
  // every downstream critical-path attribution.
  const sim::SimDuration span = wire + contend + credit;
  sim::SimTime t = arrival >= span ? arrival - span : 0;
  std::uint64_t prev = obs::causal_token(origin, seq, obs::Stage::kTx);
  const std::uint64_t wire_tok = obs::causal_token(origin, seq, obs::Stage::kFabWire);
  obs_->causal(t, t + wire, obs::Stage::kFabWire, wire_tok, prev);
  t += wire;
  prev = wire_tok;
  if (contend != 0) {
    const std::uint64_t tok = obs::causal_token(origin, seq, obs::Stage::kFabHop);
    obs_->causal(t, t + contend, obs::Stage::kFabHop, tok, prev);
    t += contend;
    prev = tok;
  }
  if (credit != 0) {
    const std::uint64_t tok = obs::causal_token(origin, seq, obs::Stage::kFabCredit);
    obs_->causal(t, t + credit, obs::Stage::kFabCredit, tok, prev);
    prev = tok;
  }
  return prev;
#else
  (void)arrival;
  (void)origin;
  (void)seq;
  (void)fab;
  return 0;
#endif
}

void OsirisBoard::run_handler(const Handler& h, atm::Frame frame, bool on_nic) {
  const sim::SimTime dispatch = engine_.now();
  RxContext ctx(*this, dispatch, on_nic);
  if (frame.trace != 0) {
    const MsgHeader hdr = frame.header<MsgHeader>();
    ctx.set_trace(obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kHandler));
    h(ctx, frame);
    CNI_TRACE_CAUSAL(obs_, dispatch, ctx.cursor(), obs::Stage::kHandler, ctx.trace(),
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kRx));
    return;
  }
  h(ctx, frame);
}

void OsirisBoard::deliver_to_channel(sim::SimTime t, atm::Frame frame) {
  const MsgHeader hdr = frame.header<MsgHeader>();
  sim::SimChannel<atm::Frame>* ch = find_channel(hdr.type);
  CNI_CHECK_MSG(ch != nullptr, "frame arrived for an unbound app message type");
  engine_.schedule_at(
      t, atm::FrameTask([ch](atm::Frame f) { ch->send(std::move(f)); }, std::move(frame)));
}

}  // namespace cni::nic
