#include "nic/osiris.hpp"

#include "util/check.hpp"

namespace cni::nic {

OsirisBoard::OsirisBoard(sim::Engine& engine, atm::Fabric& fabric, HostSystem& host,
                         const NicParams& params, atm::NodeId node)
    : engine_(engine),
      fabric_(fabric),
      host_(host),
      params_(params),
      node_(node),
      nic_clock_(params.nic_freq_hz),
      obs_(host.obs()) {
  // cni-lint: allow(hot-path-alloc): the delivery hook is installed once
  // when the board is wired to the fabric, not per frame (and this capture
  // fits std::function's SBO anyway).
  fabric_.attach(node, [this](atm::Frame f) { on_frame(std::move(f)); });
}

void OsirisBoard::install_handler(MsgType type, Handler handler, std::uint64_t code_bytes) {
  (void)code_bytes;  // the CNI override accounts handler memory; the base keeps the map
  CNI_CHECK_MSG(handlers_.find(type) == nullptr, "handler type already installed");
  handlers_.insert(type, std::move(handler));
}

void OsirisBoard::bind_channel(MsgType type, sim::SimChannel<atm::Frame>* channel) {
  CNI_CHECK(channel != nullptr);
  CNI_CHECK_MSG(channels_.find(type) == nullptr, "channel type already bound");
  channels_.insert(type, channel);
}

sim::SimDuration OsirisBoard::sar_time(std::uint64_t bytes) const {
  const std::uint64_t cells = fabric_.cells().cells_for(bytes);
  return nic_clock_.cycles(cells * params_.per_cell_sar_cycles);
}

NicBoard::Handler* OsirisBoard::find_handler(MsgType type) {
  return handlers_.find(type);
}

sim::SimChannel<atm::Frame>* OsirisBoard::find_channel(MsgType type) {
  sim::SimChannel<atm::Frame>** slot = channels_.find(type);
  return slot == nullptr ? nullptr : *slot;
}

void OsirisBoard::deliver_to_channel(sim::SimTime t, atm::Frame frame) {
  const MsgHeader hdr = frame.header<MsgHeader>();
  sim::SimChannel<atm::Frame>* ch = find_channel(hdr.type);
  CNI_CHECK_MSG(ch != nullptr, "frame arrived for an unbound app message type");
  engine_.schedule_at(
      t, atm::FrameTask([ch](atm::Frame f) { ch->send(std::move(f)); }, std::move(frame)));
}

}  // namespace cni::nic
