// Abstract network-interface board.
//
// Both boards — the CNI (src/core) and the standard workstation NIC
// (src/nic/standard_nic) — present this interface to the DSM runtime and to
// applications. The *functional* behaviour (what data moves where) is
// identical; what differs is the timing and which processor pays:
//
//                         CNI                      standard NIC
//   send path      user-level ADC enqueue      kernel syscall + driver
//   transmit data  Message Cache hit: none     always DMA host -> board
//   demux          PATHFINDER (hardware)       kernel dispatch after interrupt
//   protocol code  AIH on the NIC processor    host CPU after interrupt
//   receive notify hybrid polling + interrupt  host interrupt per frame
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "atm/packet.hpp"
#include "mem/bus.hpp"
#include "mem/tlb.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/process.hpp"
#include "sim/stats.hpp"
#include "nic/wire.hpp"

namespace cni::obs {
class NodeObs;  // forward: boards take an optional observability context
}

namespace cni::nic {

/// Timing/cost parameters for a board (Table 1 plus derived software costs;
/// see DESIGN.md §5 for the ambiguity notes on interrupt latency).
struct NicParams {
  std::uint64_t nic_freq_hz = 33'000'000;      ///< network processor frequency
  std::uint64_t dual_port_mem_bytes = 1 << 20; ///< on-board memory (OSIRIS: 1 MB)
  std::uint32_t per_cell_sar_cycles = 6;       ///< NIC cycles to SAR one cell
  std::uint32_t per_frame_tx_cycles = 40;      ///< descriptor fetch, header build
  std::uint32_t per_frame_rx_cycles = 40;      ///< reassembly completion, bookkeeping
  sim::SimDuration interrupt_latency = 10 * sim::kMicrosecond;  ///< host cost per interrupt (see note below)
  std::uint32_t host_poll_cycles = 40;         ///< host cycles per ADC poll
  std::uint32_t kernel_send_cycles = 2500;     ///< standard NIC: syscall + driver send
  std::uint32_t kernel_recv_cycles = 1200;     ///< standard NIC: kernel receive dispatch
  // Table 1 prints "Interrupt Latency 40" with a mangled unit. 40 ns would
  // make interrupts free, contradicting §2.1's premise; 40 us overshoots the
  // paper's headline 33 % latency reduction (Figure 14). 10 us lands the
  // microbenchmark on the paper's number under this cost model — see
  // DESIGN.md §2 and bench/fig14_latency_micro.
  std::uint32_t adc_enqueue_cycles = 25;       ///< CNI: descriptor write + protection check
  std::uint32_t pathfinder_cycles_per_comparison = 1;  ///< hardware classifier step
  std::uint32_t aih_dispatch_cycles = 20;      ///< control transfer into handler code
  std::uint32_t host_copy_cycles_per_word = 2; ///< kernel memcpy cost (load+store)
  std::uint32_t mcache_lookup_cycles = 4;      ///< buffer-map probe on the NIC
};

/// Host-side services a board needs: cycle charging, cache flush/invalidate,
/// bus access and address translation. Implemented by cluster::HostCpu.
class HostSystem {
 public:
  virtual ~HostSystem() = default;

  [[nodiscard]] virtual sim::Clock cpu_clock() const = 0;

  /// Charges `cpu_cycles` of messaging/protocol work to the calling app
  /// thread (advances simulated time; accounted as synch overhead).
  virtual void charge_overhead(sim::SimThread& self, std::uint64_t cpu_cycles) = 0;

  /// Charges CPU cycles consumed asynchronously (interrupt handling, kernel
  /// protocol processing). The app thread absorbs them at its next sync.
  virtual void steal_cycles(std::uint64_t cpu_cycles) = 0;

  /// Writes back dirty cache lines covering [va, va+len). Returns the CPU
  /// cycle cost; the write-backs appear on the bus (and are snooped).
  virtual std::uint64_t flush_buffer(mem::VAddr va, std::uint64_t len) = 0;

  /// Invalidates cached lines covering a range a DMA just overwrote.
  virtual void cache_invalidate(mem::VAddr va, std::uint64_t len) = 0;

  virtual mem::MemoryBus& bus() = 0;
  virtual mem::PageTable& page_table() = 0;
  virtual sim::NodeStats& stats() = 0;

  /// The node's observability context, or nullptr when none is attached
  /// (standalone boards in unit tests). Boards resolve histogram handles
  /// through this once, in their constructors — never on the data path.
  [[nodiscard]] virtual obs::NodeObs* obs() { return nullptr; }
};

class NicBoard {
 public:
  struct SendOptions {
    mem::VAddr source_va = 0;   ///< host buffer the payload came from (0 = none)
    std::uint64_t source_len = 0;  ///< span of that buffer (0 = the frame size)
    bool cacheable = false;     ///< request Message Cache residence (header bit)
  };

  /// Context passed to a protocol handler while it processes one frame.
  /// Tracks a time cursor that advances with every charge/transfer, so reply
  /// sends leave at the correct instant.
  class RxContext {
   public:
    RxContext(NicBoard& board, sim::SimTime start, bool on_nic)
        : board_(board), cursor_(start), on_nic_(on_nic) {}

    /// Charges handler processing: NIC cycles when running on the board
    /// (CNI), host cycles (stolen) when running after an interrupt.
    void charge(std::uint64_t cycles) { cursor_ = board_.rx_charge(*this, cycles); }

    /// Accounts moving `bytes` of payload into host memory at `va`
    /// (DMA on the CNI, kernel copy on the standard board). Advances the
    /// cursor to the completion time and returns it.
    sim::SimTime transfer_to_host(mem::VAddr va, std::uint64_t bytes) {
      cursor_ = board_.rx_transfer_to_host(*this, va, bytes);
      return cursor_;
    }

    /// Sends a reply frame from protocol context, departing at the cursor.
    /// When this context is traced (the triggering frame was), the reply
    /// inherits this handler's causal token as its cross-frame parent.
    void send(atm::Frame frame, const SendOptions& opts) {
      if (frame.trace == 0) frame.trace = trace_;
      board_.send_from_protocol(cursor_, std::move(frame), opts);
    }

    [[nodiscard]] sim::SimTime cursor() const { return cursor_; }
    void set_cursor(sim::SimTime t) { cursor_ = t; }
    [[nodiscard]] bool on_nic() const { return on_nic_; }
    [[nodiscard]] NicBoard& board() { return board_; }

    /// Causal token of the handler span this context executes under (0 when
    /// the triggering frame was untraced). Set by the board at dispatch.
    [[nodiscard]] std::uint64_t trace() const { return trace_; }
    void set_trace(std::uint64_t token) { trace_ = token; }

   private:
    friend class NicBoard;
    NicBoard& board_;
    sim::SimTime cursor_;
    bool on_nic_;
    std::uint64_t trace_ = 0;
  };

  /// A protocol handler (the DSM runtime installs these). On the CNI this is
  /// the Application Interrupt Handler object code; on the standard board the
  /// same logic runs on the host after an interrupt.
  // cni-lint: allow(hot-path-alloc): handlers are installed once at setup;
  // per-frame dispatch captures only the stable Handler* (atm::FrameTask).
  using Handler = std::function<void(RxContext&, const atm::Frame&)>;

  virtual ~NicBoard() = default;

  /// Sends a frame from an application thread. Blocks the caller for the
  /// host-visible send overhead only; transmission continues asynchronously.
  virtual void send_from_host(sim::SimThread& self, atm::Frame frame,
                              const SendOptions& opts) = 0;

  /// Sends a frame from protocol/event context, departing no earlier than
  /// `ready`.
  virtual void send_from_protocol(sim::SimTime ready, atm::Frame frame,
                                  const SendOptions& opts) = 0;

  /// Installs protocol code for a message type. `code_bytes` models the AIH
  /// object-code size (it must fit the board's handler memory on the CNI).
  virtual void install_handler(MsgType type, Handler handler,
                               std::uint64_t code_bytes = 4096) = 0;

  /// Routes app-level frames of `type` to `channel` (an ADC receive queue on
  /// the CNI; a kernel socket queue on the standard board).
  virtual void bind_channel(MsgType type, sim::SimChannel<atm::Frame>* channel) = 0;

  /// Blocking app-level receive with the board's notification cost applied
  /// (poll on the CNI, already-paid interrupt on the standard board).
  virtual atm::Frame receive_app(sim::SimThread& self,
                                 sim::SimChannel<atm::Frame>& channel) = 0;

  /// Host cycles an app thread pays when a blocking protocol wait completes
  /// (ADC poll cost on the CNI; zero on the standard board, whose interrupt
  /// cost was stolen at delivery time).
  [[nodiscard]] virtual std::uint64_t wakeup_cost_cycles() const = 0;

  [[nodiscard]] virtual const NicParams& params() const = 0;

  /// Next per-sender sequence number (stamped into MsgHeader::seq; the
  /// PATHFINDER's dynamic patterns key on it).
  virtual std::uint32_t next_seq() = 0;

 protected:
  // RxContext plumbing, implemented per board.
  virtual sim::SimTime rx_charge(RxContext& ctx, std::uint64_t cycles) = 0;
  virtual sim::SimTime rx_transfer_to_host(RxContext& ctx, mem::VAddr va,
                                           std::uint64_t bytes) = 0;
};

}  // namespace cni::nic
