// The baseline: a standard workstation network interface.
//
// Per paper §3, the comparison cluster uses a NIC "which does not have
// Application Device Channels, Message Caches and support for Application
// Interrupt Handlers": every send crosses the kernel, every transmit DMAs
// its data from host memory, every receive DMAs to a kernel ring and raises
// a host interrupt, and all protocol code runs on the host CPU.
#pragma once

#include "nic/osiris.hpp"

namespace cni::nic {

class StandardNic final : public OsirisBoard {
 public:
  StandardNic(sim::Engine& engine, atm::Fabric& fabric, HostSystem& host,
              const NicParams& params, atm::NodeId node);

  void send_from_host(sim::SimThread& self, atm::Frame frame,
                      const SendOptions& opts) override;
  void send_from_protocol(sim::SimTime ready, atm::Frame frame,
                          const SendOptions& opts) override;
  atm::Frame receive_app(sim::SimThread& self,
                         sim::SimChannel<atm::Frame>& channel) override;
  [[nodiscard]] std::uint64_t wakeup_cost_cycles() const override { return 0; }

 protected:
  void on_frame(atm::Frame frame) override;
  sim::SimTime rx_charge(RxContext& ctx, std::uint64_t cycles) override;
  sim::SimTime rx_transfer_to_host(RxContext& ctx, mem::VAddr va,
                                   std::uint64_t bytes) override;

 private:
  /// Shared transmit tail: descriptor handling, host->board DMA, SAR, wire.
  void start_tx(sim::SimTime t, atm::Frame frame);
};

}  // namespace cni::nic
