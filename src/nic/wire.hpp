// Message wire format.
//
// Every frame starts with a MsgHeader. The leading bytes (vci is carried in
// the Frame itself, mirroring the ATM cell header) are what the PATHFINDER
// patterns match on: `type` selects the protocol action / Application
// Interrupt Handler, `flags` carries the "cache me" bit the Message Cache
// checks (paper §2.2), and `buffer_va` tags the host buffer a DSM page
// belongs to so receive caching can bind NIC buffer -> host buffer.
#pragma once

#include <cstdint>

namespace cni::nic {

using MsgType = std::uint16_t;

/// Flag bits in MsgHeader::flags.
enum MsgFlags : std::uint16_t {
  kFlagCacheable = 1u << 0,  ///< message buffer should enter the Message Cache
  kFlagFragment = 1u << 1,   ///< continuation fragment of a larger transfer
};

struct MsgHeader {
  MsgType type = 0;          ///< demultiplexing key (PATHFINDER pattern target)
  std::uint16_t flags = 0;
  std::uint32_t src_node = 0;
  std::uint32_t seq = 0;          ///< per-sender sequence number
  std::uint32_t aux = 0;          ///< protocol-specific small field
  std::uint64_t buffer_va = 0;    ///< host virtual address this payload maps to
};
static_assert(sizeof(MsgHeader) == 24);

/// Message-type ranges. DSM protocol types live in the handler range so the
/// PATHFINDER can route them to Application Interrupt Handlers; app types are
/// delivered to Application Device Channel receive queues.
inline constexpr MsgType kTypeAppBase = 0x0100;      ///< app-level messages (ADC delivery)
inline constexpr MsgType kTypeHandlerBase = 0x0200;  ///< protocol messages (AIH delivery)

}  // namespace cni::nic
