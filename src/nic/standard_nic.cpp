#include "nic/standard_nic.hpp"

#include "obs/obs.hpp"
#include "util/units.hpp"

namespace cni::nic {

StandardNic::StandardNic(sim::Engine& engine, atm::Fabric& fabric, HostSystem& host,
                         const NicParams& params, atm::NodeId node)
    : OsirisBoard(engine, fabric, host, params, node) {}

void StandardNic::send_from_host(sim::SimThread& self, atm::Frame frame,
                                 const SendOptions& opts) {
  // Kernel entry, protection checks, driver descriptor setup — and, on a
  // write-back host, flushing the buffer so the DMA reads current data.
  std::uint64_t cycles = params_.kernel_send_cycles;
  if (opts.source_va != 0) {
    const std::uint64_t span = opts.source_len != 0 ? opts.source_len : frame.size();
    cycles += host_.flush_buffer(opts.source_va, span);
  }
  host_.charge_overhead(self, cycles);
  CNI_TRACE_INSTANT(obs_, engine_.now(), obs::Component::kHost,
                    obs::Event::kKernelSend, frame.size(), cycles);
  start_tx(engine_.now(), std::move(frame));
}

void StandardNic::send_from_protocol(sim::SimTime ready, atm::Frame frame,
                                     const SendOptions& opts) {
  // Protocol code runs on the host here, so a reply send consumes host CPU
  // (stolen from the application) before the board can start.
  std::uint64_t cycles = params_.kernel_send_cycles;
  if (opts.source_va != 0) {
    const std::uint64_t span = opts.source_len != 0 ? opts.source_len : frame.size();
    cycles += host_.flush_buffer(opts.source_va, span);
  }
  host_.steal_cycles(cycles);
  CNI_TRACE_INSTANT(obs_, ready, obs::Component::kHost, obs::Event::kKernelSend,
                    frame.size(), cycles);
  start_tx(ready + host_.cpu_clock().cycles(cycles), std::move(frame));
}

void StandardNic::start_tx(sim::SimTime t, atm::Frame frame) {
  const std::uint64_t bytes = frame.size();
  CNI_TRACE_MINT(obs_, frame);
  [[maybe_unused]] const bool traced = frame.trace != 0;
  // Descriptor fetch on the transmit processor.
  const sim::SimTime desc_done =
      tx_proc_.occupy(t, nic_clock_.cycles(params_.per_frame_tx_cycles));
  // The standard board always pulls the data across the memory bus.
  const sim::SimTime dma_done = host_.bus().dma_read(desc_done, bytes);
  // Segmentation, then the wire.
  const sim::SimTime sar_done = tx_proc_.occupy(dma_done, sar_time(bytes));

  auto& st = host_.stats();
  ++st.messages_sent;
  st.bytes_sent += bytes;
  ++st.dma_transfers;
  st.dma_bytes += bytes;
  CNI_TRACE_INSTANT(obs_, dma_done, obs::Component::kDma, obs::Event::kDmaTransfer,
                    bytes, 0);
  CNI_TRACE_SPAN(obs_, t, sar_done, obs::Component::kNic, obs::Event::kTxFrame, bytes,
                 frame.header<MsgHeader>().type);
  if (traced) {
    const MsgHeader hdr = frame.header<MsgHeader>();
    CNI_TRACE_CAUSAL(obs_, t, sar_done, obs::Stage::kTx,
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kTx),
                     (frame.trace & 0xffu) != 0 ? frame.trace : 0);
  }

  const atm::DeliveryTiming timing = fabric_.send(sar_done, std::move(frame));
  st.cells_sent += timing.cells;
}

void StandardNic::on_frame(atm::Frame frame) {
  const sim::SimTime arrival = engine_.now();
  // Reassembly on the receive processor.
  const sim::SimTime rx_done = rx_proc_.occupy(
      arrival, nic_clock_.cycles(params_.per_frame_rx_cycles) + sar_time(frame.size()));
  // DMA the frame into the kernel receive ring.
  const sim::SimTime dma_done = host_.bus().dma_write(rx_done, 0, frame.size());

  // Host interrupt + kernel dispatch. The CPU cost is stolen from the app.
  auto& st = host_.stats();
  ++st.host_interrupts;
  const sim::Clock cpu = host_.cpu_clock();
  const std::uint64_t intr_cycles =
      cpu.to_cycles_ceil(params_.interrupt_latency) + params_.kernel_recv_cycles;
  host_.steal_cycles(intr_cycles);
  const sim::SimTime dispatch = dma_done + cpu.cycles(intr_cycles);
  CNI_TRACE_SPAN(obs_, arrival, rx_done, obs::Component::kNic, obs::Event::kRxFrame,
                 frame.size(), frame.header<MsgHeader>().type);
  CNI_TRACE_INSTANT(obs_, dma_done, obs::Component::kDma, obs::Event::kDmaTransfer,
                    frame.size(), 1);
  CNI_TRACE_INSTANT(obs_, dispatch, obs::Component::kHost, obs::Event::kHostInterrupt,
                    frame.size(), 0);
  CNI_TRACE_INSTANT(obs_, dispatch, obs::Component::kHost, obs::Event::kKernelRecv,
                    frame.size(), intr_cycles);

  const MsgHeader hdr = frame.header<MsgHeader>();
  if (frame.trace != 0) {
    [[maybe_unused]] const std::uint64_t rx_parent =
        trace_fabric_arrival(arrival, hdr.src_node, hdr.seq, frame.fab);
    // The receive stage runs to dispatch: reassembly, ring DMA, interrupt
    // and kernel dispatch — all before any protocol code sees the frame.
    CNI_TRACE_CAUSAL(obs_, arrival, dispatch, obs::Stage::kRx,
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kRx),
                     rx_parent);
  }
  if (Handler* h = find_handler(hdr.type); h != nullptr) {
    // Capturing `dispatch` would overflow InlineFn's inline budget now that
    // Parts carries the causal fields; the event fires at `dispatch`, so the
    // callback recovers it from engine_.now().
    engine_.schedule_at(dispatch, atm::FrameTask(
                                      [this, h](atm::Frame f) {
                                        run_handler(*h, std::move(f), /*on_nic=*/false);
                                      },
                                      std::move(frame)));
    return;
  }
  if (frame.trace != 0) {
    CNI_TRACE_CAUSAL(obs_, dispatch, dispatch, obs::Stage::kDeliver,
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kDeliver),
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kRx));
  }
  deliver_to_channel(dispatch, std::move(frame));
}

sim::SimTime StandardNic::rx_charge(RxContext& ctx, std::uint64_t cycles) {
  host_.steal_cycles(cycles);
  return ctx.cursor() + host_.cpu_clock().cycles(cycles);
}

sim::SimTime StandardNic::rx_transfer_to_host(RxContext& ctx, mem::VAddr va,
                                              std::uint64_t bytes) {
  // The kernel copies from the receive ring into the destination buffer.
  const std::uint64_t words = util::ceil_div<std::uint64_t>(bytes, 8);
  const std::uint64_t cycles = words * params_.host_copy_cycles_per_word;
  host_.steal_cycles(cycles);
  host_.cache_invalidate(va, bytes);
  return ctx.cursor() + host_.cpu_clock().cycles(cycles);
}

atm::Frame StandardNic::receive_app(sim::SimThread& self,
                                    sim::SimChannel<atm::Frame>& channel) {
  // The interrupt + kernel dispatch cost was stolen when the frame arrived;
  // the wakeup itself adds nothing.
  return channel.receive(self);
}

}  // namespace cni::nic
