// OSIRIS board substrate.
//
// Both boards in the study are built on the OSIRIS ATM adaptor (Druschel,
// Peterson & Davie 1994): on-board dual-ported memory, a DMA engine on the
// host memory bus, and transmit/receive processors that perform AAL5-style
// segmentation and reassembly at 33 MHz. This base class models that shared
// datapath; CniBoard and StandardNic specialize the send/receive control
// paths on top of it.
#pragma once

#include <cstdint>

#include "atm/fabric.hpp"
#include "nic/board.hpp"
#include "util/flat_map.hpp"

namespace cni::nic {

class OsirisBoard : public NicBoard {
 public:
  OsirisBoard(sim::Engine& engine, atm::Fabric& fabric, HostSystem& host,
              const NicParams& params, atm::NodeId node);

  void install_handler(MsgType type, Handler handler, std::uint64_t code_bytes) override;
  void bind_channel(MsgType type, sim::SimChannel<atm::Frame>* channel) override;
  [[nodiscard]] const NicParams& params() const override { return params_; }

  [[nodiscard]] atm::NodeId node() const { return node_; }
  [[nodiscard]] const sim::Clock& nic_clock() const { return nic_clock_; }

  std::uint32_t next_seq() override { return seq_++; }

 protected:
  /// Frame arrival from the fabric (last bit on board at engine.now()).
  virtual void on_frame(atm::Frame frame) = 0;

  /// SAR time for a payload of `bytes` on a 33 MHz NIC processor.
  [[nodiscard]] sim::SimDuration sar_time(std::uint64_t bytes) const;

  [[nodiscard]] Handler* find_handler(MsgType type);
  [[nodiscard]] sim::SimChannel<atm::Frame>* find_channel(MsgType type);

  /// Schedules delivery of an app frame into its bound channel at time `t`.
  void deliver_to_channel(sim::SimTime t, atm::Frame frame);

  /// Emits the causal records for a traced frame's fabric traversal (the
  /// packed breakdown the fabric left in Frame::fab) at the deterministic
  /// delivery instant, and returns the token of the last fabric stage — the
  /// parent for the board's receive span. Returns 0 when not tracing.
  std::uint64_t trace_fabric_arrival(sim::SimTime arrival, std::uint32_t origin,
                                     std::uint32_t seq, std::uint64_t fab);

  /// Runs a protocol handler at the current engine instant (the dispatch
  /// event's fire time): builds the RxContext, hands a traced frame's
  /// handler token to it (replies inherit it as their causal parent), and
  /// emits the handler's causal span once it returns.
  void run_handler(const Handler& h, atm::Frame frame, bool on_nic);

  sim::Engine& engine_;
  atm::Fabric& fabric_;
  HostSystem& host_;
  NicParams params_;
  atm::NodeId node_;
  sim::Clock nic_clock_;
  sim::ServiceQueue tx_proc_;  ///< transmit processor occupancy
  sim::ServiceQueue rx_proc_;  ///< receive processor occupancy
  /// Node observability context (nullptr for standalone boards in tests),
  /// resolved once here so both boards emit through the same handle.
  obs::NodeObs* obs_ = nullptr;

 private:
  // Flat maps: demultiplexing runs once per received frame, and the maps
  // only grow at setup (install/bind), so find_handler's returned pointers
  // stay stable for the whole simulation.
  util::U64FlatMap<Handler> handlers_;
  util::U64FlatMap<sim::SimChannel<atm::Frame>*> channels_;
  std::uint32_t seq_ = 1;
};

}  // namespace cni::nic
