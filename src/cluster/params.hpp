// Whole-machine simulation parameters (paper Table 1).
#pragma once

#include <cstdint>

#include "atm/fabric.hpp"
#include "core/cni_board.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "nic/board.hpp"
#include "obs/options.hpp"
#include "util/table.hpp"

namespace cni::obs {
class Reporter;
}  // namespace cni::obs

namespace cni::cluster {

enum class BoardKind {
  kCni,       ///< the paper's contribution
  kStandard,  ///< baseline: no ADC, no Message Cache, no AIH
};

/// SimParams::sim_shards value meaning "pick K for me": the cluster resolves
/// it from the host core count and the node count (see Cluster's auto-tune).
/// Safe to use anywhere a fixed K is: sharded artifacts are byte-identical
/// for every K, so the resolved value changes only wall-clock behaviour.
inline constexpr std::uint32_t kAutoShards = 0xffffffffu;

/// Process-default shard count for parallel-in-run simulation: CNI_SIM_SHARDS
/// if set and >= 0 (the literal `auto` yields kAutoShards), else 0 (legacy
/// single-engine mode). Read once per call so every cluster in a sweep sees
/// one consistent setting.
[[nodiscard]] std::uint32_t default_sim_shards();

/// Process-default for SimParams::sim_fusion: CNI_SIM_FUSION, default on;
/// `0`/`off` disable. Fusion changes only the epoch schedule, never the
/// artifacts, so the switch exists for A/B benchmarking and identity tests.
[[nodiscard]] bool default_sim_fusion();

/// Process-default for SimParams::sim_pair_lookahead: CNI_SIM_PAIR_LOOKAHEAD,
/// default on; `0`/`off` fall back to the single global lookahead bound.
[[nodiscard]] bool default_sim_pair_lookahead();

/// Where DSM collective operations (barrier, reduce, broadcast) execute.
enum class CollectiveMode : std::uint8_t {
  kHost,  ///< centralized host manager on node 0 (the seed protocol)
  kNic,   ///< NIC-resident combining tree: AIH handlers combine and forward
};

/// Process-default collective mode: CNI_COLLECTIVE (`nic` or `host`), else
/// whatever set_default_collective installed, else kHost. Host stays the
/// default so existing figure artifacts are untouched.
[[nodiscard]] CollectiveMode default_collective();
void set_default_collective(CollectiveMode mode);
[[nodiscard]] const char* collective_name(CollectiveMode mode);
/// Parses `nic` / `host`; returns false (out unchanged) on anything else.
[[nodiscard]] bool parse_collective(const char* text, CollectiveMode& out);

/// Applies `--topology=banyan|clos|torus`, `--ports=N` and
/// `--collective=nic|host` from argv to the process-wide defaults
/// (atm::set_default_fabric_shape / set_default_collective), so every
/// SimParams / DsmParams built afterwards picks them up. Validates eagerly —
/// unknown topology names, non-power-of-two port counts and unknown
/// collective modes exit(2) with a message naming the accepted values — and
/// ignores unrelated argv entries (obs::Reporter's flags and the benchmark's
/// own). When `report` is given, the effective shape and collective mode are
/// recorded in the run report's config block, flags or not, so every
/// artifact says which fabric and barrier path produced it. Call once at
/// startup, before any sweep worker builds a SimParams.
void apply_fabric_cli(int argc, char** argv, obs::Reporter* report = nullptr);

struct SimParams {
  std::uint64_t cpu_freq_hz = 166'000'000;  ///< Table 1: 166 MHz Alpha
  std::uint64_t page_size = 4096;           ///< host + DSM + Message Cache buffer page
  std::uint32_t processors = 8;
  BoardKind board = BoardKind::kCni;
  /// Parallel-in-run simulation (DESIGN.md §12): 0 = legacy single-engine
  /// mode, K >= 1 = conservative sharded mode with K engine shards (clamped
  /// to the processor count), kAutoShards = tune K from the host core count.
  /// Results in sharded mode are bit-identical for every K and epoch
  /// schedule; they may differ from legacy mode in the last digits, because
  /// the sharded fabric resolves switch contention in head-arrival order
  /// rather than send-call order. Defaults from CNI_SIM_SHARDS.
  std::uint32_t sim_shards = default_sim_shards();
  /// Epoch fusion (sharded mode only): extend barrier-free epochs through
  /// sub-windows while no transfer needs the global merge. Artifacts are
  /// identical either way. Defaults from CNI_SIM_FUSION (on).
  bool sim_fusion = default_sim_fusion();
  /// Per-shard-pair lookahead matrix for the epoch bound (sharded mode
  /// only); off = single global window. Artifacts are identical either way.
  /// Defaults from CNI_SIM_PAIR_LOOKAHEAD (on).
  bool sim_pair_lookahead = default_sim_pair_lookahead();
  /// Fiber stack bytes per simulated node (0 = sim::SimThread's default).
  /// Purely a host-memory knob — wide barrier-only sweeps (4096 nodes) can
  /// run tiny stacks; simulated results never depend on it.
  std::uint64_t thread_stack_bytes = 0;

  mem::CacheParams cache;     ///< 32 KB L1 / 1 MB L2, direct-mapped write-back
  mem::BusParams bus;         ///< 25 MHz, 4-cycle acquisition, 2 cycles/word
  nic::NicParams nic;         ///< 33 MHz NIC, SAR/interrupt/kernel costs
  atm::FabricParams fabric;   ///< 622 Mb/s links, 500 ns banyan switch
  core::CniConfig cni;        ///< 32 KB Message Cache etc.
  /// Observability switches. Defaults come from the process-wide options
  /// (CNI_TRACE env / Reporter flags), captured when the SimParams is built
  /// so every cluster in a sweep sees one consistent setting.
  obs::Options obs = obs::default_options();

  /// Renders the Table 1 parameter dump.
  [[nodiscard]] util::Table to_table() const;
};

}  // namespace cni::cluster
