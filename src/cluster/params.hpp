// Whole-machine simulation parameters (paper Table 1).
#pragma once

#include <cstdint>

#include "atm/fabric.hpp"
#include "core/cni_board.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "nic/board.hpp"
#include "obs/options.hpp"
#include "util/table.hpp"

namespace cni::cluster {

enum class BoardKind {
  kCni,       ///< the paper's contribution
  kStandard,  ///< baseline: no ADC, no Message Cache, no AIH
};

struct SimParams {
  std::uint64_t cpu_freq_hz = 166'000'000;  ///< Table 1: 166 MHz Alpha
  std::uint64_t page_size = 4096;           ///< host + DSM + Message Cache buffer page
  std::uint32_t processors = 8;
  BoardKind board = BoardKind::kCni;

  mem::CacheParams cache;     ///< 32 KB L1 / 1 MB L2, direct-mapped write-back
  mem::BusParams bus;         ///< 25 MHz, 4-cycle acquisition, 2 cycles/word
  nic::NicParams nic;         ///< 33 MHz NIC, SAR/interrupt/kernel costs
  atm::FabricParams fabric;   ///< 622 Mb/s links, 500 ns banyan switch
  core::CniConfig cni;        ///< 32 KB Message Cache etc.
  /// Observability switches. Defaults come from the process-wide options
  /// (CNI_TRACE env / Reporter flags), captured when the SimParams is built
  /// so every cluster in a sweep sees one consistent setting.
  obs::Options obs = obs::default_options();

  /// Renders the Table 1 parameter dump.
  [[nodiscard]] util::Table to_table() const;
};

}  // namespace cni::cluster
