#include "cluster/params.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "obs/report.hpp"
#include "sim/time.hpp"

namespace cni::cluster {

namespace {

/// `0` and `off` disable; unset or anything else keeps the default.
bool env_switch_on(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) return true;
  return std::string_view(env) != "0" && std::string_view(env) != "off";
}

}  // namespace

std::uint32_t default_sim_shards() {
  if (const char* env = std::getenv("CNI_SIM_SHARDS"); env != nullptr) {
    if (std::string_view(env) == "auto") return kAutoShards;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0) return static_cast<std::uint32_t>(v);
  }
  return 0;
}

bool default_sim_fusion() { return env_switch_on("CNI_SIM_FUSION"); }

bool default_sim_pair_lookahead() { return env_switch_on("CNI_SIM_PAIR_LOOKAHEAD"); }

namespace {
CollectiveMode g_default_collective = CollectiveMode::kHost;
}  // namespace

CollectiveMode default_collective() {
  if (const char* env = std::getenv("CNI_COLLECTIVE"); env != nullptr) {
    CollectiveMode mode = g_default_collective;
    if (parse_collective(env, mode)) return mode;
  }
  return g_default_collective;
}

void set_default_collective(CollectiveMode mode) { g_default_collective = mode; }

const char* collective_name(CollectiveMode mode) {
  return mode == CollectiveMode::kNic ? "nic" : "host";
}

bool parse_collective(const char* text, CollectiveMode& out) {
  const std::string_view v(text);
  if (v == "nic") {
    out = CollectiveMode::kNic;
    return true;
  }
  if (v == "host") {
    out = CollectiveMode::kHost;
    return true;
  }
  return false;
}

void apply_fabric_cli(int argc, char** argv, obs::Reporter* report) {
  atm::TopologyKind kind = atm::default_topology();
  std::uint32_t ports = atm::default_switch_ports();
  CollectiveMode collective = default_collective();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--topology=", 11) == 0) {
      if (!atm::parse_topology(arg + 11, kind)) {
        std::fprintf(stderr,
                     "error: unknown topology '%s' (--topology takes banyan, clos or "
                     "torus)\n",
                     arg + 11);
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--ports=", 8) == 0) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(arg + 8, &end, 10);
      if (end == arg + 8 || *end != '\0' || v < 2 || v > 65536 ||
          !util::is_pow2(static_cast<std::uint64_t>(v))) {
        std::fprintf(stderr,
                     "error: invalid --ports=%s (the fabric port count must be a power "
                     "of two between 2 and 65536, e.g. --ports=4096)\n",
                     arg + 8);
        std::exit(2);
      }
      ports = static_cast<std::uint32_t>(v);
    } else if (std::strncmp(arg, "--collective=", 13) == 0) {
      CollectiveMode mode = collective;
      if (!parse_collective(arg + 13, mode)) {
        std::fprintf(stderr,
                     "error: unknown collective mode '%s' (--collective takes nic or "
                     "host)\n",
                     arg + 13);
        std::exit(2);
      }
      collective = mode;
    }
  }
  atm::set_default_fabric_shape(kind, ports);
  set_default_collective(collective);
  if (report != nullptr) {
    report->add_config("topology", atm::topology_name(kind));
    report->add_config("fabric_ports", std::to_string(ports));
    report->add_config("collective", collective_name(collective));
  }
}

util::Table SimParams::to_table() const {
  util::Table t("Table 1: Simulation Parameters");
  auto mhz = [](std::uint64_t hz) {
    return util::format_double(static_cast<double>(hz) / 1e6, 0) + " MHz";
  };
  t.add_row({"CPU Frequency", mhz(cpu_freq_hz)});
  t.add_row({"Primary Cache Access Time", std::to_string(cache.l1_latency_cycles) + " cycle"});
  t.add_row({"Primary Cache Size", std::to_string(cache.l1_size / 1024) + "K unified"});
  t.add_row({"Secondary Cache Access Time", std::to_string(cache.l2_latency_cycles) + " cycles"});
  t.add_row({"Secondary Cache Size", std::to_string(cache.l2_size / (1024 * 1024)) + " MB unified"});
  t.add_row({"Cache Organization", "Direct-mapped"});
  t.add_row({"Cache Policy", cache.write_back ? "Write-back" : "Write-through"});
  t.add_row({"Memory Latency", std::to_string(cache.memory_latency_cycles) + " cycles"});
  t.add_row({"Bus Acquisition Time", std::to_string(bus.acquisition_cycles) + " cycles"});
  t.add_row({"Bus Transfer Rate", std::to_string(bus.cycles_per_word) + " cycles per word"});
  t.add_row({"Bus Frequency", mhz(bus.freq_hz)});
  t.add_row({"Switch Latency",
             util::format_double(static_cast<double>(fabric.switch_latency) / sim::kNanosecond, 0) + " ns"});
  t.add_row({"Network Processor Frequency", mhz(nic.nic_freq_hz)});
  t.add_row({"Network Latency",
             util::format_double(static_cast<double>(fabric.propagation) / sim::kNanosecond, 0) + " ns"});
  t.add_row({"Interrupt Latency",
             util::format_double(static_cast<double>(nic.interrupt_latency) / sim::kMicrosecond, 0) + " us"});
  t.add_row({"Message Cache Size", std::to_string(cni.message_cache_bytes / 1024) + " KB"});
  t.add_row({"Page Size", std::to_string(page_size) + " bytes"});
  t.add_row({"Link Rate", "622 Mbps (STS-12)"});
  return t;
}

}  // namespace cni::cluster
