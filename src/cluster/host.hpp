// The host workstation CPU model.
//
// Owns one node's cache model, local clock (Proteus-style) and statistics
// account, and implements the HostSystem services the NIC boards need
// (overhead charging, interrupt-cycle stealing, cache flush/invalidate).
//
// Accounting discipline (what makes Tables 2-4 reproducible):
//   compute_cycles        — app work charged through compute()/mem_access()
//   synch_overhead_cycles — messaging/protocol CPU work: charge_overhead()
//                           from app context and steal_cycles() from
//                           interrupt context (absorbed at the next sync)
//   synch_delay_cycles    — the residual: elapsed - compute - overhead,
//                           assigned by the Cluster when the run ends.
#pragma once

#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/tlb.hpp"
#include "nic/board.hpp"
#include "sim/process.hpp"
#include "sim/stats.hpp"

namespace cni::cluster {

class HostCpu final : public nic::HostSystem {
 public:
  HostCpu(std::uint64_t cpu_freq_hz, const mem::CacheParams& cache_params,
          mem::MemoryBus& bus, mem::PageTable& page_table, sim::NodeStats& stats);

  // ---- Application-side interface ----

  /// Charges pure ALU/control work (accumulates locally; no yield).
  void compute(std::uint64_t cycles) {
    stats_.compute_cycles += cycles;
    clock_.charge_cycles(cycles);
  }

  /// Models one load/store at host virtual address `va` through the cache
  /// hierarchy. Write-backs it triggers appear on the bus (and are snooped).
  void mem_access(mem::VAddr va, bool is_write) { mem_access_phys(pt_.translate(va), is_write); }

  /// As mem_access, with the translation already done — the DSM fast path
  /// caches physical page bases to keep a simulated access down to a few
  /// nanoseconds of wall time.
  void mem_access_phys(mem::PAddr pa, bool is_write);

  /// Converts all locally accumulated charge — including cycles stolen by
  /// interrupts — into simulated delay. Call at every synchronisation point.
  void sync(sim::SimThread& self);

  [[nodiscard]] sim::LocalClock& local_clock() { return clock_; }
  [[nodiscard]] mem::CacheModel& cache() { return cache_; }

  // ---- HostSystem interface (used by the boards) ----
  [[nodiscard]] sim::Clock cpu_clock() const override { return sim::Clock(freq_hz_); }
  void charge_overhead(sim::SimThread& self, std::uint64_t cpu_cycles) override;
  void steal_cycles(std::uint64_t cpu_cycles) override;
  std::uint64_t flush_buffer(mem::VAddr va, std::uint64_t len) override;
  void cache_invalidate(mem::VAddr va, std::uint64_t len) override;
  mem::MemoryBus& bus() override { return bus_; }
  mem::PageTable& page_table() override { return pt_; }
  sim::NodeStats& stats() override { return stats_; }
  [[nodiscard]] obs::NodeObs* obs() override { return obs_; }

  /// Attaches the node's observability context. Must run before the board is
  /// constructed: boards resolve their histogram handles through obs() once,
  /// at construction.
  void set_obs(obs::NodeObs* obs) { obs_ = obs; }

  [[nodiscard]] std::uint64_t stolen_pending() const { return stolen_cycles_; }

 private:
  std::uint64_t freq_hz_;
  sim::LocalClock clock_;
  mem::CacheModel cache_;
  mem::MemoryBus& bus_;
  mem::PageTable& pt_;
  sim::NodeStats& stats_;
  obs::NodeObs* obs_ = nullptr;
  std::uint64_t stolen_cycles_ = 0;
};

}  // namespace cni::cluster
