#include "cluster/host.hpp"

#include "util/units.hpp"

namespace cni::cluster {

HostCpu::HostCpu(std::uint64_t cpu_freq_hz, const mem::CacheParams& cache_params,
                 mem::MemoryBus& bus, mem::PageTable& page_table,
                 sim::NodeStats& stats)
    : freq_hz_(cpu_freq_hz),
      clock_(sim::Clock(cpu_freq_hz)),
      cache_(cache_params),
      bus_(bus),
      pt_(page_table),
      stats_(stats) {}

void HostCpu::mem_access_phys(mem::PAddr pa, bool is_write) {
  const mem::CacheAccess r = cache_.access(pa, is_write);
  // Table 1's 20-cycle memory latency is the *total* fill cost seen by the
  // CPU (probe + transfer); charging the bus transfer again would double the
  // memory wall and distort the computation/communication balance.
  const std::uint64_t cycles = r.cpu_cycles;
  if (r.wrote_back) {
    // Dirty victim drains through the write buffer: announced on the bus so
    // the CNI snooper sees it, but it does not stall the CPU.
    bus_.cpu_write(r.writeback_line, cache_.params().line_size);
  }
  if (r.bus_write) {
    // Write-through mode: the store itself is a bus write.
    bus_.cpu_write(r.bus_write_line, cache_.params().line_size);
  }
  stats_.compute_cycles += cycles;
  clock_.charge_cycles(cycles);
}

void HostCpu::sync(sim::SimThread& self) {
  if (stolen_cycles_ != 0) {
    clock_.charge_cycles(stolen_cycles_);
    stolen_cycles_ = 0;
  }
  clock_.sync(self);
}

void HostCpu::charge_overhead(sim::SimThread& self, std::uint64_t cpu_cycles) {
  stats_.synch_overhead_cycles += cpu_cycles;
  clock_.charge_cycles(cpu_cycles);
  sync(self);
}

void HostCpu::steal_cycles(std::uint64_t cpu_cycles) {
  stats_.synch_overhead_cycles += cpu_cycles;
  stolen_cycles_ += cpu_cycles;
}

std::uint64_t HostCpu::flush_buffer(mem::VAddr va, std::uint64_t len) {
  if (len == 0) return 0;
  std::uint64_t cycles = 0;
  // Walk the range page by page: the cache is physically indexed and pages
  // are not virtually contiguous in physical memory.
  const auto& geo = pt_.geometry();
  mem::VAddr cur = va;
  const mem::VAddr end = va + len;
  while (cur < end) {
    const mem::VAddr page_end = geo.base_of(geo.page_of(cur) + 1);
    const std::uint64_t chunk = (end < page_end ? end : page_end) - cur;
    const mem::PAddr pa = pt_.translate(cur);
    const auto dirty_lines = cache_.flush_range(pa, chunk, &cycles);
    for (const mem::PAddr line : dirty_lines) {
      // Each flushed line is a write transaction: the CNI snooper folds it
      // into any bound Message Cache buffer, keeping it consistent.
      const sim::SimDuration d = bus_.cpu_write(line, cache_.params().line_size);
      cycles += cpu_clock().to_cycles_ceil(d);
    }
    cur += chunk;
  }
  return cycles;
}

void HostCpu::cache_invalidate(mem::VAddr va, std::uint64_t len) {
  if (len == 0) return;
  const auto& geo = pt_.geometry();
  mem::VAddr cur = va;
  const mem::VAddr end = va + len;
  while (cur < end) {
    const mem::VAddr page_end = geo.base_of(geo.page_of(cur) + 1);
    const std::uint64_t chunk = (end < page_end ? end : page_end) - cur;
    cache_.invalidate_range(pt_.translate(cur), chunk);
    cur += chunk;
  }
}

}  // namespace cni::cluster
