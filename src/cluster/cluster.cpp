#include "cluster/cluster.hpp"

#include <stdexcept>
#include <string>
#include <thread>

#include "util/buf_pool.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace cni::cluster {
namespace {

/// Logger time hook: stamps log lines with the engine's simulated clock.
std::uint64_t engine_now(void* ctx) { return static_cast<sim::Engine*>(ctx)->now(); }

/// CNI_SIM_SHARDS=auto: the largest power-of-two K the host can actually run
/// concurrently that still leaves every shard at least two nodes. Small
/// shards would be pointless even on a wide machine: the PR-5 EpochStats
/// show event-parallelism grows with nodes per shard (intra-block DSM
/// traffic dominates, and with epoch fusion it costs no barrier at all), so
/// once blocks shrink to one node the extra threads only buy rendezvous
/// overhead. Safe to resolve per host because sharded artifacts are
/// byte-identical for every K — auto-tune changes wall clock, nothing else.
std::uint32_t auto_sim_shards(std::uint32_t processors) {
  const unsigned hw = std::thread::hardware_concurrency();  // 0 when unknown
  std::uint32_t k = 1;
  while (2 * k <= hw && 4 * k <= processors) k *= 2;
  return k;
}

}  // namespace

Node::Node(sim::Engine& engine, atm::Fabric& fabric, const SimParams& params,
           atm::NodeId id, sim::NodeStats& stats, obs::NodeObs* obs)
    : engine_(engine),
      id_(id),
      bus_(engine, params.bus),
      page_table_(mem::PageGeometry(params.page_size)),
      cpu_(params.cpu_freq_hz, params.cache, bus_, page_table_, stats),
      is_cni_(params.board == BoardKind::kCni) {
  // Before the board: boards resolve their obs handles at construction.
  cpu_.set_obs(obs);
  if (is_cni_) {
    board_ = std::make_unique<core::CniBoard>(engine, fabric, cpu_, params.nic, id,
                                              params.cni,
                                              mem::PageGeometry(params.page_size));
  } else {
    board_ = std::make_unique<nic::StandardNic>(engine, fabric, cpu_, params.nic, id);
  }
}

core::CniBoard& Node::cni() {
  CNI_CHECK_MSG(is_cni_, "this node carries a standard NIC, not a CNI");
  return static_cast<core::CniBoard&>(*board_);
}

Cluster::Cluster(const SimParams& params)
    : params_(params),
      engine_(),
      fabric_(engine_, params.fabric),
      stats_(params.processors),
      obs_(params.processors, params.obs) {
  CNI_CHECK_MSG(params.processors >= 1, "a cluster needs at least one node");
  CNI_CHECK_MSG(params.processors <= params.fabric.switch_ports,
                "more nodes than switch ports");
  if (params.sim_shards > 0) {
    // Parallel-in-run mode (DESIGN.md §12): contiguous node blocks per shard,
    // one private engine each. The fabric learns the mapping so deliveries
    // land on the destination node's shard and sends buffer per source shard.
    const std::uint32_t requested = params.sim_shards == kAutoShards
                                        ? auto_sim_shards(params.processors)
                                        : params.sim_shards;
    plan_ = sim::ShardPlan::balanced(params.processors, requested);
    shard_engines_.reserve(plan_.shards);
    for (std::uint32_t s = 0; s < plan_.shards; ++s) {
      shard_engines_.push_back(std::make_unique<sim::Engine>());
    }
    std::vector<sim::Engine*> engine_of_node(params.fabric.switch_ports, nullptr);
    std::vector<std::uint32_t> shard_of_node(params.fabric.switch_ports, 0);
    for (std::uint32_t i = 0; i < params.processors; ++i) {
      shard_of_node[i] = plan_.shard_of(i);
      engine_of_node[i] = shard_engines_[shard_of_node[i]].get();
    }
    fabric_.enable_sharding(std::move(engine_of_node), std::move(shard_of_node), plan_,
                            params.sim_fusion ? &fusion_ledger_ : nullptr);
  }
  for (std::uint32_t i = 0; i < params.processors; ++i) {
    obs_.bind_node_stats(i, stats_.node(i));
    sim::Engine& node_engine =
        sharded() ? *shard_engines_[plan_.shard_of(i)] : engine_;
    nodes_.push_back(std::make_unique<Node>(node_engine, fabric_, params_, i,
                                            stats_.node(i), &obs_.node(i)));
  }
}

sim::SimTime Cluster::run(util::FunctionRef<void(std::size_t, sim::SimThread&)> body) {
  // Every log line emitted while the engine runs carries its simulated time.
  // Thread-local install: parallel sweep jobs each stamp with their own
  // engine's clock; in sharded mode the coordinator runs shard 0 inline and
  // each worker thread installs its own shard's hook.
  const util::ScopedLogTime log_time(
      &engine_now, sharded() ? static_cast<void*>(shard_engines_.front().get())
                             : static_cast<void*>(&engine_));
  std::vector<std::unique_ptr<sim::SimThread>> threads;
  std::vector<sim::SimTime> finish(nodes_.size(), 0);
  threads.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    threads.push_back(std::make_unique<sim::SimThread>(
        node(i).engine(), "node" + std::to_string(i),
        [this, body, &finish, i](sim::SimThread& t) {
          body(i, t);
          node(i).cpu().sync(t);  // settle any trailing local charge
          finish[i] = node(i).engine().now();
        },
        /*start=*/0, params_.thread_stack_bytes));
  }
  if (sharded()) {
    epoch_stats_ = sim::EpochStats{};
    std::vector<sim::Engine*> engines;
    engines.reserve(shard_engines_.size());
    for (const std::unique_ptr<sim::Engine>& e : shard_engines_) {
      engines.push_back(e.get());
    }
    sim::EpochParams ep;
    ep.lookahead = fabric_.min_lookahead();
    ep.drain_horizon = fabric_.drain_horizon();
    ep.pending_bound = fabric_.pending_bound();
    sim::LookaheadMatrix matrix;
    const sim::LookaheadMatrix* mp = nullptr;
    if (params_.sim_pair_lookahead) {
      matrix = fabric_.lookahead_matrix(plan_);
      mp = &matrix;
    }
    // Named lambdas: FusedHooks borrows them for the whole run_epochs call.
    auto local_drain = [this](std::uint32_t s, sim::SimTime limit) {
      return fabric_.local_drain(s, limit);
    };
    auto local_min = [this](std::uint32_t s) { return fabric_.local_pending_min(s); };
    const sim::FusedHooks hooks{local_drain, local_min,
                                params_.sim_fusion ? &fusion_ledger_ : nullptr};
    if (shard_prof_ != nullptr) shard_prof_->enable(plan_.shards);
    sim::run_epochs(engines, ep, mp, hooks,
                    [this](sim::SimTime limit) { return fabric_.drain(limit); },
                    &epoch_stats_, shard_prof_);
    if (shard_prof_ != nullptr) shard_prof_->finish();
  } else {
    engine_.run();
  }

  for (std::size_t i = 0; i < threads.size(); ++i) {
    if (!threads[i]->finished()) {
      throw std::runtime_error("cluster deadlock: node " + std::to_string(i) +
                               " never finished (blocked waiting on an event "
                               "that will not arrive)");
    }
  }

  elapsed_ = 0;
  for (const sim::SimTime f : finish) elapsed_ = f > elapsed_ ? f : elapsed_;

  // Settle the delay accounts: whatever part of a node's elapsed time was
  // neither computation nor charged overhead was spent stalled on remote
  // events — the paper's "synch delay".
  const sim::Clock cpu(params_.cpu_freq_hz);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    sim::NodeStats& st = stats_.node(i);
    const std::uint64_t total = cpu.to_cycles(finish[i]);
    const std::uint64_t busy = st.compute_cycles + st.synch_overhead_cycles;
    st.synch_delay_cycles = total > busy ? total - busy : 0;
  }
  return elapsed_;
}

std::uint64_t Cluster::elapsed_cpu_cycles() const {
  return sim::Clock(params_.cpu_freq_hz).to_cycles(elapsed_);
}

obs::Snapshot Cluster::snapshot() const {
  obs::Snapshot snap;
  snap.traced = params_.obs.trace;
  snap.nodes.reserve(nodes_.size());
  for (std::uint32_t i = 0; i < obs_.node_count(); ++i) {
    const obs::NodeObs& src = obs_.node(i);
    obs::NodeSnapshot node;
    node.node = i;
    src.metrics().for_each_counter([&node](const std::string& name, std::uint64_t v) {
      node.counters.push_back(obs::CounterSnapshot{name, v});
    });
    src.metrics().for_each_histogram([&node](const std::string& name, const obs::Hist& h) {
      obs::HistSnapshot hs;
      hs.name = name;
      hs.count = h.count();
      hs.sum = h.sum();
      hs.min = h.min();
      hs.max = h.max();
      hs.p50 = h.percentile(50.0);
      hs.p95 = h.percentile(95.0);
      hs.p99 = h.percentile(99.0);
      node.hists.push_back(std::move(hs));
    });
    src.metrics().for_each_gauge([&node](const std::string& name, const obs::Gauge& g) {
      node.gauges.push_back(obs::GaugeSnapshot{name, g.value(), g.max()});
    });
    node.trace_recorded = src.ring().recorded();
    node.trace_dropped = src.ring().dropped();
    if (snap.traced) {
      node.trace.reserve(src.ring().size());
      src.ring().for_each([&node](const obs::TraceRecord& r) { node.trace.push_back(r); });
    }
    snap.nodes.push_back(std::move(node));
  }
  if (!sharded()) {
    // Advisory allocator telemetry. In sharded mode the pool's thread-local
    // caches are spread over the worker threads, so the coordinator's local()
    // view depends on the shard count and worker scheduling; omit it to keep
    // run reports byte-identical for every K.
    const util::BufPool::Stats bp = util::BufPool::local().stats();
    snap.bufpool.sampled = true;
    snap.bufpool.hits = bp.hits;
    snap.bufpool.misses = bp.misses;
    snap.bufpool.refurbished = bp.refurbished;
    snap.bufpool.remote_frees = bp.remote_frees;
    snap.bufpool.outstanding = bp.outstanding;
  }
  return snap;
}

}  // namespace cni::cluster
