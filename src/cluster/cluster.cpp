#include "cluster/cluster.hpp"

#include <stdexcept>
#include <string>

#include "util/check.hpp"

namespace cni::cluster {

Node::Node(sim::Engine& engine, atm::Fabric& fabric, const SimParams& params,
           atm::NodeId id, sim::NodeStats& stats)
    : id_(id),
      bus_(engine, params.bus),
      page_table_(mem::PageGeometry(params.page_size)),
      cpu_(params.cpu_freq_hz, params.cache, bus_, page_table_, stats),
      is_cni_(params.board == BoardKind::kCni) {
  if (is_cni_) {
    board_ = std::make_unique<core::CniBoard>(engine, fabric, cpu_, params.nic, id,
                                              params.cni,
                                              mem::PageGeometry(params.page_size));
  } else {
    board_ = std::make_unique<nic::StandardNic>(engine, fabric, cpu_, params.nic, id);
  }
}

core::CniBoard& Node::cni() {
  CNI_CHECK_MSG(is_cni_, "this node carries a standard NIC, not a CNI");
  return static_cast<core::CniBoard&>(*board_);
}

Cluster::Cluster(const SimParams& params)
    : params_(params),
      engine_(),
      fabric_(engine_, params.fabric),
      stats_(params.processors) {
  CNI_CHECK_MSG(params.processors >= 1, "a cluster needs at least one node");
  CNI_CHECK_MSG(params.processors <= params.fabric.switch_ports,
                "more nodes than switch ports");
  for (std::uint32_t i = 0; i < params.processors; ++i) {
    nodes_.push_back(
        std::make_unique<Node>(engine_, fabric_, params_, i, stats_.node(i)));
  }
}

sim::SimTime Cluster::run(
    const std::function<void(std::size_t, sim::SimThread&)>& body) {
  std::vector<std::unique_ptr<sim::SimThread>> threads;
  std::vector<sim::SimTime> finish(nodes_.size(), 0);
  threads.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    threads.push_back(std::make_unique<sim::SimThread>(
        engine_, "node" + std::to_string(i), [this, &body, &finish, i](sim::SimThread& t) {
          body(i, t);
          node(i).cpu().sync(t);  // settle any trailing local charge
          finish[i] = engine_.now();
        }));
  }
  engine_.run();

  for (std::size_t i = 0; i < threads.size(); ++i) {
    if (!threads[i]->finished()) {
      throw std::runtime_error("cluster deadlock: node " + std::to_string(i) +
                               " never finished (blocked waiting on an event "
                               "that will not arrive)");
    }
  }

  elapsed_ = 0;
  for (const sim::SimTime f : finish) elapsed_ = f > elapsed_ ? f : elapsed_;

  // Settle the delay accounts: whatever part of a node's elapsed time was
  // neither computation nor charged overhead was spent stalled on remote
  // events — the paper's "synch delay".
  const sim::Clock cpu(params_.cpu_freq_hz);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    sim::NodeStats& st = stats_.node(i);
    const std::uint64_t total = cpu.to_cycles(finish[i]);
    const std::uint64_t busy = st.compute_cycles + st.synch_overhead_cycles;
    st.synch_delay_cycles = total > busy ? total - busy : 0;
  }
  return elapsed_;
}

std::uint64_t Cluster::elapsed_cpu_cycles() const {
  return sim::Clock(params_.cpu_freq_hz).to_cycles(elapsed_);
}

}  // namespace cni::cluster
