// Cluster assembly: N workstations on one ATM switch.
//
// Builds, per node: memory bus + page table + host CPU + a network board
// (CNI or standard, per SimParams::board), all attached to a shared banyan
// fabric; then runs one simulated thread per node and settles the
// computation/overhead/delay accounts.
#pragma once

#include <memory>
#include <vector>

#include "atm/fabric.hpp"
#include "cluster/host.hpp"
#include "cluster/params.hpp"
#include "core/cni_board.hpp"
#include "nic/standard_nic.hpp"
#include "obs/obs.hpp"
#include "obs/snapshot.hpp"
#include "sim/engine.hpp"
#include "sim/shard_profiler.hpp"
#include "sim/sharded.hpp"
#include "sim/stats.hpp"
#include "util/function_ref.hpp"

namespace cni::cluster {

/// One workstation: bus, page table, CPU and network board.
class Node {
 public:
  Node(sim::Engine& engine, atm::Fabric& fabric, const SimParams& params,
       atm::NodeId id, sim::NodeStats& stats, obs::NodeObs* obs);

  [[nodiscard]] atm::NodeId id() const { return id_; }
  [[nodiscard]] HostCpu& cpu() { return cpu_; }
  [[nodiscard]] nic::NicBoard& board() { return *board_; }

  /// The engine this node's events run on: the cluster engine in legacy
  /// mode, the owning shard's engine in sharded mode. Node-local scheduling
  /// (board dispatch, DSM handlers) must go through this, never through a
  /// cluster-global engine.
  [[nodiscard]] sim::Engine& engine() { return engine_; }

  /// The board as a CniBoard; check-fails on a standard-NIC cluster.
  [[nodiscard]] core::CniBoard& cni();

 private:
  sim::Engine& engine_;
  atm::NodeId id_;
  mem::MemoryBus bus_;
  mem::PageTable page_table_;
  HostCpu cpu_;
  std::unique_ptr<nic::NicBoard> board_;
  bool is_cni_;
};

class Cluster {
 public:
  explicit Cluster(const SimParams& params);

  [[nodiscard]] const SimParams& params() const { return params_; }
  /// The legacy single-engine heap. Valid only when !sharded(); sharded
  /// callers must go through Node::engine() (per-shard heaps).
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] atm::Fabric& fabric() { return fabric_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] sim::StatsRegistry& stats() { return stats_; }
  [[nodiscard]] obs::RunObs& obs() { return obs_; }

  /// Parallel-in-run mode (SimParams::sim_shards >= 1)?
  [[nodiscard]] bool sharded() const { return !shard_engines_.empty(); }
  /// Effective shard count: 1 in legacy mode.
  [[nodiscard]] std::uint32_t shards() const {
    return sharded() ? plan_.shards : 1;
  }
  /// Epoch/event counts of the last sharded run (zeros in legacy mode).
  [[nodiscard]] const sim::EpochStats& epoch_stats() const { return epoch_stats_; }

  /// Opt-in wall-time attribution for sharded runs: run() enables `prof`
  /// with the shard count and closes it after the epoch loop returns.
  /// Telemetry only — simulated results are byte-identical with or without
  /// it. Ignored in legacy (non-sharded) mode. Pass null to detach.
  void set_shard_profiler(sim::ShardProfiler* prof) { shard_prof_ = prof; }

  /// Materializes every bound counter, histogram, gauge and (when tracing)
  /// the trace rings into a Snapshot that outlives the cluster.
  [[nodiscard]] obs::Snapshot snapshot() const;

  /// Runs `body(node_index, thread)` on every node concurrently (in
  /// simulated time) and returns the simulated duration of the whole run.
  /// Afterwards each node's synch_delay account holds the residual
  /// elapsed - compute - overhead. Throws on deadlock.
  sim::SimTime run(util::FunctionRef<void(std::size_t, sim::SimThread&)> body);

  /// Elapsed time of the last run, in host CPU cycles.
  [[nodiscard]] std::uint64_t elapsed_cpu_cycles() const;

 private:
  SimParams params_;
  sim::Engine engine_;
  atm::Fabric fabric_;
  sim::StatsRegistry stats_;
  obs::RunObs obs_;  // before nodes_: boards grab their NodeObs at construction
  // Sharded mode: shard s's nodes schedule on shard_engines_[s]; engine_
  // stays idle. Constructed before nodes_ so Node can bind its engine ref.
  sim::ShardPlan plan_;
  std::vector<std::unique_ptr<sim::Engine>> shard_engines_;
  // The fabric records barrier-requiring sends here (when sim_fusion is on);
  // run() passes it to the epoch runner, which re-arms it per fused epoch.
  sim::FusionLedger fusion_ledger_;
  sim::EpochStats epoch_stats_;
  sim::ShardProfiler* shard_prof_ = nullptr;  ///< borrowed; see set_shard_profiler
  std::vector<std::unique_ptr<Node>> nodes_;
  sim::SimTime elapsed_ = 0;
};

}  // namespace cni::cluster
