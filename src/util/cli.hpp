// Tiny command-line flag parser for the bench and example binaries.
//
// Supports --flag=value, --flag value, and bare --flag booleans. Unknown
// flags are an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cni::util {

class Cli {
 public:
  /// Parses argv. On error prints the problem plus registered flags and
  /// exits(2). Call add_* before parse.
  Cli(std::string program_description);

  void add_flag(const std::string& name, const std::string& help, bool default_value);
  void add_int(const std::string& name, const std::string& help, std::int64_t default_value);
  void add_double(const std::string& name, const std::string& help, double default_value);
  void add_string(const std::string& name, const std::string& help, std::string default_value);

  void parse(int argc, char** argv);

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // textual form; parsed on access
  };

  [[noreturn]] void usage_and_exit(const std::string& error) const;
  const Option& lookup(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Option> options_;
};

}  // namespace cni::util
