// Pooled, intrusively ref-counted payload buffers — the zero-copy data path.
//
// Every simulated frame, DSM payload and diff arena is a `Buf`: a handle to
// a block whose control word (refcount, size class, owner) lives immediately
// before the data. Copying a Buf bumps the refcount, so one buffer is shared
// across transmit, Message Cache binding and delivery instead of being
// memcpy'd at every layer boundary. Blocks come from per-thread size-classed
// freelists, so the steady-state frame send/receive loop performs no heap
// allocation at all.
//
// Threading model (matches apps::parallel_indexed): each sweep job runs one
// self-contained simulation on its own thread, so allocation and release
// almost always happen on the owning thread and hit the lock-free local
// freelists. A block released from a *different* thread is pushed onto its
// owner pool's remote-free stack (a Treiber stack, the only cross-thread
// structure); the owner reclaims the whole stack — "refurbishing" — the next
// time a local freelist misses.
//
// Pool lifetime: the pool holds one self-reference in its live-block
// counter. Thread exit drops that reference; whichever thread drops the
// counter to zero (the exiting owner, or the last remote releaser) purges
// the freelists and deletes the pool. This makes cross-thread release safe
// even after the owning thread is gone.
//
// Determinism: pooling changes *where* payload bytes live, never their
// values or any simulated timing, so figure outputs are bit-identical to the
// copying data path.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <span>
#include <utility>

#include "util/check.hpp"
#include "util/thread_annotations.hpp"

namespace cni::util {

class BufPool;

/// Control block preceding a buffer's data bytes. `sizeof(BufCtrl)` is a
/// multiple of max_align_t alignment so the data area keeps full alignment.
struct alignas(std::max_align_t) BufCtrl {
  std::atomic<std::uint32_t> refs;
  std::uint32_t size_class;  ///< kUnpooledClass: exact heap block, never pooled
  std::uint64_t capacity;    ///< data bytes available
  std::uint64_t size;        ///< logical payload length
  BufPool* owner;            ///< pool the block came from (nullptr: unpooled)
  BufCtrl* next;             ///< freelist / remote-stack link

  [[nodiscard]] std::byte* data() noexcept {
    return reinterpret_cast<std::byte*>(this + 1);
  }
  [[nodiscard]] const std::byte* data() const noexcept {
    return reinterpret_cast<const std::byte*>(this + 1);
  }
};

/// Ref-counted handle to pooled storage. Copy shares (refcount bump), move
/// steals. `release()`/`adopt()` convert to and from a raw BufCtrl* so a
/// trivially-relocatable event callback can carry a buffer through the
/// engine without the heap fallback (see sim/inline_fn.hpp).
class Buf {
 public:
  Buf() noexcept = default;
  Buf(const Buf& o) noexcept : c_(o.c_) { retain(c_); }
  Buf(Buf&& o) noexcept : c_(std::exchange(o.c_, nullptr)) {}
  Buf& operator=(const Buf& o) noexcept {
    if (this != &o) {
      retain(o.c_);
      drop(std::exchange(c_, o.c_));
    }
    return *this;
  }
  Buf& operator=(Buf&& o) noexcept {
    if (this != &o) drop(std::exchange(c_, std::exchange(o.c_, nullptr)));
    return *this;
  }
  ~Buf() { drop(c_); }

  [[nodiscard]] bool empty() const noexcept { return c_ == nullptr || c_->size == 0; }
  [[nodiscard]] explicit operator bool() const noexcept { return c_ != nullptr; }

  [[nodiscard]] std::size_t size() const noexcept { return c_ == nullptr ? 0 : c_->size; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return c_ == nullptr ? 0 : c_->capacity;
  }

  [[nodiscard]] std::byte* data() noexcept { return c_ == nullptr ? nullptr : c_->data(); }
  [[nodiscard]] const std::byte* data() const noexcept {
    return c_ == nullptr ? nullptr : c_->data();
  }

  [[nodiscard]] std::span<std::byte> span() noexcept { return {data(), size()}; }
  [[nodiscard]] std::span<const std::byte> span() const noexcept { return {data(), size()}; }
  // NOLINTNEXTLINE(google-explicit-constructor): a Buf *is* a byte view
  operator std::span<const std::byte>() const noexcept { return span(); }

  /// Shrinks or grows the logical length within the block's capacity.
  void set_size(std::size_t n) {
    CNI_CHECK(c_ != nullptr && n <= c_->capacity);
    c_->size = n;
  }

  /// True iff this handle is the only owner (safe to mutate a shared block).
  [[nodiscard]] bool unique() const noexcept {
    // acquire: pairs with drop's acq_rel decrement, so observing refs == 1
    // also observes every other (former) owner's writes to the block.
    return c_ != nullptr && c_->refs.load(std::memory_order_acquire) == 1;
  }

  [[nodiscard]] std::uint32_t ref_count() const noexcept {
    // acquire: mirror unique() so callers comparing counts see settled state.
    return c_ == nullptr ? 0 : c_->refs.load(std::memory_order_acquire);
  }

  void reset() noexcept { drop(std::exchange(c_, nullptr)); }

  /// Transfers this handle's reference out as a raw pointer (no ref change).
  [[nodiscard]] BufCtrl* release() noexcept { return std::exchange(c_, nullptr); }

  /// Re-wraps a pointer from release(), taking over its reference.
  [[nodiscard]] static Buf adopt(BufCtrl* c) noexcept { return Buf(c); }

 private:
  friend class BufPool;
  explicit Buf(BufCtrl* c) noexcept : c_(c) {}

  static void retain(BufCtrl* c) noexcept {
    // relaxed: taking a new reference needs no ordering — the caller already
    // holds one, and only the final drop synchronizes (acq_rel there).
    if (c != nullptr) c->refs.fetch_add(1, std::memory_order_relaxed);
  }
  static void drop(BufCtrl* c) noexcept;

  BufCtrl* c_ = nullptr;
};

/// Size-classed per-thread buffer pool. See the file comment for the
/// threading and lifetime model.
class BufPool {
 public:
  /// Size classes: powers of two, 64 B .. 64 KiB. Larger requests fall back
  /// to exact heap blocks that bypass the freelists.
  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr std::size_t kMaxClassBytes = 64 * 1024;
  static constexpr std::uint32_t kClassCount = 11;  // log2(64K/64) + 1
  static constexpr std::uint32_t kUnpooledClass = 0xFFFFFFFF;

  struct Stats {
    std::uint64_t hits = 0;          ///< allocations served from a local freelist
    std::uint64_t misses = 0;        ///< allocations that went to the heap
    std::uint64_t refurbished = 0;   ///< blocks reclaimed from the remote stack
    std::uint64_t remote_frees = 0;  ///< releases that arrived from another thread
    std::uint64_t outstanding = 0;   ///< live pooled blocks owned by this pool
  };

  BufPool() = default;
  BufPool(const BufPool&) = delete;
  BufPool& operator=(const BufPool&) = delete;

  /// The calling thread's pool.
  static BufPool& local() noexcept;

  /// Allocates a buffer of logical size `n` (contents uninitialized).
  [[nodiscard]] Buf alloc(std::size_t n) {
    // Held by thread identity: allocation only happens through local(), so
    // the calling thread is this pool's owner.
    owner_role_.assert_held();
    const std::uint32_t sc = class_of(n);
    if (sc == kUnpooledClass) {
      ++hits_misses_[1];
      return Buf(heap_block(n, n, sc, nullptr));
    }
    BufCtrl*& head = free_[sc];
    if (head == nullptr) refurbish();
    if (head != nullptr) {
      BufCtrl* c = head;
      head = c->next;
      c->next = nullptr;
      // relaxed: the block leaves the freelist unshared; it becomes visible
      // to other threads only through later synchronizing handoffs.
      c->refs.store(1, std::memory_order_relaxed);
      c->size = n;
      ++hits_misses_[0];
      // relaxed: live_ is a counter; lifetime edges order via unref_pool.
      live_.fetch_add(1, std::memory_order_relaxed);
      return Buf(c);
    }
    ++hits_misses_[1];
    // relaxed: live_ is a counter; lifetime edges order via unref_pool.
    live_.fetch_add(1, std::memory_order_relaxed);
    return Buf(heap_block(n, kMinClassBytes << sc, sc, this));
  }

  /// Allocates a zero-filled buffer.
  [[nodiscard]] Buf alloc_zeroed(std::size_t n) {
    Buf b = alloc(n);
    std::memset(b.data(), 0, n);
    return b;
  }

  [[nodiscard]] Stats stats() const noexcept {
    // Held by thread identity: stats are read on the owning thread (apps
    // snapshot their own pool after a run).
    owner_role_.assert_shared();
    Stats s;
    s.hits = hits_misses_[0];
    s.misses = hits_misses_[1];
    s.refurbished = refurbished_;
    // relaxed: advisory snapshot for reports; no synchronization implied.
    s.remote_frees = remote_frees_.load(std::memory_order_relaxed);
    const std::int64_t live = live_.load(std::memory_order_relaxed) - 1;
    s.outstanding = live > 0 ? static_cast<std::uint64_t>(live) : 0;
    return s;
  }

  /// Maps a byte count to its size class (kUnpooledClass when too large).
  [[nodiscard]] static std::uint32_t class_of(std::size_t n) noexcept {
    if (n > kMaxClassBytes) return kUnpooledClass;
    const std::size_t want = n < kMinClassBytes ? kMinClassBytes : n;
    return static_cast<std::uint32_t>(
        std::bit_width(want - 1) - (std::bit_width(kMinClassBytes) - 1));
  }

 private:
  friend class Buf;
  friend struct BufPoolTls;

  /// Returns a dead block to its owning pool (or the heap). Runs on whatever
  /// thread dropped the last reference.
  static void release(BufCtrl* c) noexcept;

  /// Drops the pool's self-reference (thread exit) or a block's reference,
  /// deleting the pool when the count hits zero. Exactly one caller observes
  /// zero, so there is exactly one deleter.
  static void unref_pool(BufPool* p) noexcept {
    // acq_rel: the elected deleter must observe every releaser's writes to
    // the blocks it is about to purge, and publish its own decrements.
    if (p->live_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      p->purge_freelists();
      delete p;  // cni-lint note: cold path, runs once per pool lifetime
    }
  }

  /// Drains the remote-free stack into the local freelists.
  void refurbish() noexcept CNI_REQUIRES(owner_role_) {
    // acquire: pairs with the pushers' release CAS in release(); the popped
    // chain (every c->next link) is ours exclusively after this.
    BufCtrl* c = remote_free_.exchange(nullptr, std::memory_order_acquire);
    while (c != nullptr) {
      BufCtrl* next = c->next;
      c->next = free_[c->size_class];
      free_[c->size_class] = c;
      ++refurbished_;
      c = next;
    }
  }

  [[nodiscard]] static BufCtrl* heap_block(std::size_t n, std::size_t cap,
                                           std::uint32_t sc, BufPool* owner) {
    auto* c = static_cast<BufCtrl*>(::operator new(sizeof(BufCtrl) + cap));
    // relaxed: the fresh block is thread-private until handed out.
    c->refs.store(1, std::memory_order_relaxed);
    c->size_class = sc;
    c->capacity = cap;
    c->size = n;
    c->owner = owner;
    c->next = nullptr;
    return c;
  }

  static void free_block(BufCtrl* c) noexcept { ::operator delete(c); }

  /// Frees every freelisted block. Only called with exclusive access: by the
  /// single deleter elected in unref_pool.
  void purge_freelists() noexcept {
    // Held by election: unref_pool's acq_rel decrement reached zero on this
    // thread, so no other reference to the pool exists.
    owner_role_.assert_held();
    refurbish();
    for (BufCtrl*& head : free_) {
      while (head != nullptr) free_block(std::exchange(head, head->next));
    }
  }

  /// Owning-thread role: granted by thread identity (this pool is the
  /// caller's thread-local pool) or, in purge_freelists, by being the single
  /// deleter elected through unref_pool. Guards the non-atomic freelists and
  /// tallies that only the owner may touch.
  Capability owner_role_;

  BufCtrl* free_[kClassCount] CNI_GUARDED_BY(owner_role_) = {};
  std::uint64_t hits_misses_[2] CNI_GUARDED_BY(owner_role_) = {0, 0};
  std::uint64_t refurbished_ CNI_GUARDED_BY(owner_role_) = 0;

  std::atomic<BufCtrl*> remote_free_{nullptr};
  std::atomic<std::uint64_t> remote_frees_{0};
  /// Live pooled blocks + 1 self-reference held until the thread exits.
  std::atomic<std::int64_t> live_{1};
};

namespace detail {
/// Raw TLS pointer (not a function-local static) so release() can test
/// "is the owner the current thread?" without re-initializing TLS during
/// thread teardown.
inline thread_local BufPool* tls_buf_pool = nullptr;
}  // namespace detail

/// Thread-exit hook: drops the pool's self-reference. Blocks still alive
/// keep the pool object valid until their last release.
struct BufPoolTls {
  BufPool* pool = nullptr;
  BufPoolTls() = default;
  BufPoolTls(const BufPoolTls&) = delete;
  BufPoolTls& operator=(const BufPoolTls&) = delete;
  ~BufPoolTls() {
    if (pool != nullptr) {
      detail::tls_buf_pool = nullptr;
      BufPool::unref_pool(pool);
    }
  }
};

inline BufPool& BufPool::local() noexcept {
  thread_local BufPoolTls tls;
  if (detail::tls_buf_pool == nullptr) {
    // cni-lint note: one pool per thread lifetime, deleted by unref_pool.
    tls.pool = new BufPool();
    detail::tls_buf_pool = tls.pool;
  }
  return *detail::tls_buf_pool;
}

inline void BufPool::release(BufCtrl* c) noexcept {
  BufPool* owner = c->owner;
  if (owner == nullptr) {  // unpooled oversize block
    free_block(c);
    return;
  }
  if (owner == detail::tls_buf_pool) {
    // Same-thread release (proved by the TLS identity test above, which is
    // also what confers the owner role here): straight onto the freelist.
    owner->owner_role_.assert_held();
    c->next = owner->free_[c->size_class];
    owner->free_[c->size_class] = c;
    // relaxed: same-thread bookkeeping; deletion edges go via unref_pool.
    owner->live_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  // Cross-thread release: push onto the owner's remote stack, then drop the
  // block's pool reference. The push strictly precedes the unref, so the
  // pool cannot be deleted under a pusher.
  // relaxed: tally only; the push below carries the ordering.
  owner->remote_frees_.fetch_add(1, std::memory_order_relaxed);
  // relaxed load/failure: retry-only values. release on success: publishes
  // the c->next link (and the dead block's bytes) to refurbish's acquire.
  BufCtrl* head = owner->remote_free_.load(std::memory_order_relaxed);
  do {
    c->next = head;
  } while (!owner->remote_free_.compare_exchange_weak(
      head, c, std::memory_order_release, std::memory_order_relaxed));
  unref_pool(owner);
}

inline void Buf::drop(BufCtrl* c) noexcept {
  // acq_rel: the final drop must acquire every other owner's writes to the
  // block before recycling it, and release its own for the next allocator.
  if (c != nullptr && c->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    BufPool::release(c);
  }
}

}  // namespace cni::util
