#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace cni::util {

void Table::set_header(std::vector<std::string> header) {
  CNI_CHECK_MSG(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    CNI_CHECK_MSG(row.size() == header_.size(), "row width must match header");
  }
  rows_.push_back(std::move(row));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&out, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << "  ";
      // First column left-aligned (labels), the rest right-aligned (numbers).
      if (i == 0) {
        out << row[i] << std::string(widths[i] - row[i].size(), ' ');
      } else {
        out << std::string(widths[i] - row[i].size(), ' ') << row[i];
      }
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const {
  std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace cni::util
