// Size and rate literals used throughout the simulator.
#pragma once

#include <cstdint>

namespace cni::util {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;

/// Bits per second for an STS-12 / OC-12 ATM link.
inline constexpr std::uint64_t kSts12BitsPerSec = 622'080'000;

constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }

/// Integer ceiling division; used for cell counts, page counts, line counts.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

/// Rounds `v` down to a multiple of `align` (align must be a power of two).
constexpr std::uint64_t align_down(std::uint64_t v, std::uint64_t align) {
  return v & ~(align - 1);
}

constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace cni::util
