// Open-addressed hash map for 64-bit integer keys (page numbers, frames).
//
// The buffer map and the page-table lookups behind the board TLB/RTLB sit on
// the bus-snoop path, which runs on *every* write transaction the simulated
// memory bus carries — node-count × run-length times per experiment.
// std::unordered_map pays a pointer chase per probe there; this table keeps
// entries in one flat power-of-two array with linear probing, so the common
// hit is a single cache line. Erase uses backward-shift deletion, so there
// are no tombstones and probe sequences never degrade over time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace cni::util {

template <typename V>
class U64FlatMap {
 public:
  U64FlatMap() { rehash(kMinCapacity); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Pointer to the value for `key`, or nullptr if absent.
  [[nodiscard]] V* find(std::uint64_t key) {
    std::size_t i = home(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) return &slots_[i].val;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  [[nodiscard]] const V* find(std::uint64_t key) const {
    return const_cast<U64FlatMap*>(this)->find(key);
  }
  [[nodiscard]] bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  /// Inserts `val` under `key`; overwrites an existing entry. Returns a
  /// reference to the stored value.
  V& insert(std::uint64_t key, V val) {
    if ((size_ + 1) * 4 >= slots_.size() * 3) rehash(slots_.size() * 2);
    std::size_t i = home(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        slots_[i].val = std::move(val);
        return slots_[i].val;
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = Slot{key, std::move(val), true};
    ++size_;
    return slots_[i].val;
  }

  /// Removes `key` if present (backward-shift: no tombstones). Returns true
  /// iff an entry was removed.
  bool erase(std::uint64_t key) {
    std::size_t i = home(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        shift_backward(i);
        --size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  void clear() {
    for (Slot& s : slots_) s.used = false;
    size_ = 0;
  }

  /// Calls fn(key, value) for every entry, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) fn(s.key, s.val);
    }
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  struct Slot {
    std::uint64_t key = 0;
    V val{};
    bool used = false;
  };

  /// Fibonacci hashing: one multiply, and the golden-ratio stride spreads
  /// the sequential page numbers these tables hold evenly, so probe
  /// sequences stay short without an avalanche finalizer.
  [[nodiscard]] std::size_t home(std::uint64_t key) const {
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> shift_);
  }

  void rehash(std::size_t capacity) {
    CNI_DCHECK((capacity & (capacity - 1)) == 0);
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(capacity);
    mask_ = capacity - 1;
    shift_ = 64;
    while (capacity > 1) {
      --shift_;
      capacity >>= 1;
    }
    size_ = 0;
    for (Slot& s : old) {
      if (s.used) insert(s.key, std::move(s.val));
    }
  }

  /// Closes the hole at `i` by walking the cluster and moving back every
  /// entry whose probe sequence passes through the hole.
  void shift_backward(std::size_t i) {
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!slots_[j].used) break;
      const std::size_t h = home(slots_[j].key);
      // Move j into the hole iff its home position precedes the hole in the
      // (cyclic) probe order — i.e. the hole lies on j's probe path.
      if (((j - h) & mask_) >= ((j - i) & mask_)) {
        slots_[i] = std::move(slots_[j]);
        i = j;
      }
    }
    slots_[i].used = false;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::size_t size_ = 0;
};

}  // namespace cni::util
