// ASCII table / data-series formatting for benchmark output.
//
// Every bench binary prints the rows or series of the paper table/figure it
// regenerates; this module keeps that output consistent and parseable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cni::util {

/// A right-aligned column table with a title, printed in a fixed-width layout:
///
///   == Table 2: Overhead for 8-processor Jacobi ==
///   Category        Time-CNI  Time-standard
///   Synch overhead     0.054          0.063
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats every cell with %g-style precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 4);

  /// Renders the table to a string (trailing newline included).
  [[nodiscard]] std::string to_string() const;

  /// Renders to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` significant decimal places, trimming
/// trailing zeros ("0.054", "13.31", "100").
[[nodiscard]] std::string format_double(double v, int precision = 4);

}  // namespace cni::util
