#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace cni::util {

Cli::Cli(std::string program_description) : description_(std::move(program_description)) {}

void Cli::add_flag(const std::string& name, const std::string& help, bool default_value) {
  options_[name] = Option{Kind::kFlag, help, default_value ? "1" : "0"};
}

void Cli::add_int(const std::string& name, const std::string& help, std::int64_t default_value) {
  options_[name] = Option{Kind::kInt, help, std::to_string(default_value)};
}

void Cli::add_double(const std::string& name, const std::string& help, double default_value) {
  options_[name] = Option{Kind::kDouble, help, std::to_string(default_value)};
}

void Cli::add_string(const std::string& name, const std::string& help, std::string default_value) {
  options_[name] = Option{Kind::kString, help, std::move(default_value)};
}

void Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage_and_exit("");
    if (arg.rfind("--", 0) != 0) usage_and_exit("unexpected positional argument: " + arg);
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) usage_and_exit("unknown flag: --" + name);
    if (!has_value) {
      if (it->second.kind == Kind::kFlag) {
        // Move-assign rather than assigning the literal: GCC 12's
        // -Wrestrict false-positives on char_traits::copy inlined through
        // basic_string::assign(const char*) here (GCC PR105329).
        value = std::string("1");
      } else {
        if (i + 1 >= argc) usage_and_exit("flag --" + name + " needs a value");
        value = argv[++i];
      }
    }
    it->second.value = value;
  }
}

bool Cli::flag(const std::string& name) const {
  const std::string& v = lookup(name, Kind::kFlag).value;
  return v != "0" && v != "false";
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::strtoll(lookup(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name) const {
  return std::strtod(lookup(name, Kind::kDouble).value.c_str(), nullptr);
}

const std::string& Cli::get_string(const std::string& name) const {
  return lookup(name, Kind::kString).value;
}

const Cli::Option& Cli::lookup(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  CNI_CHECK_MSG(it != options_.end(), "flag was never registered");
  CNI_CHECK_MSG(it->second.kind == kind, "flag accessed with the wrong type");
  return it->second;
}

void Cli::usage_and_exit(const std::string& error) const {
  if (!error.empty()) std::fprintf(stderr, "error: %s\n\n", error.c_str());
  std::fprintf(stderr, "%s\n\nflags:\n", description_.c_str());
  for (const auto& [name, opt] : options_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(), opt.help.c_str(),
                 opt.value.c_str());
  }
  std::exit(error.empty() ? 0 : 2);
}

}  // namespace cni::util
