// Clang Thread Safety Analysis annotations for the lock-free concurrency
// surface (DESIGN.md §13).
//
// The sharded engine keeps its invariants with atomics and protocol roles,
// not mutexes: "only the owning shard touches this lane during an epoch",
// "only the coordinator touches that vector between barriers". Those
// ownership rules are exactly what Clang's capability analysis can check at
// compile time — provided the roles are reified as *capability* objects and
// the guarded state is annotated. Under Clang with -Wthread-safety the
// annotations below become attributes and violations fail the build (the CI
// thread-safety job passes -Werror=thread-safety); under GCC and other
// compilers every macro expands to nothing, so the annotations are free.
//
// Vocabulary (mirrors the standard mutex.h reference macro set, CNI_-scoped
// so nothing collides with vendored headers):
//
//   CNI_CAPABILITY(name)      a type whose instances are capabilities
//   CNI_GUARDED_BY(cap)       member readable holding `cap` shared,
//                             writable holding it exclusively
//   CNI_PT_GUARDED_BY(cap)    same, for the pointee of a pointer member
//   CNI_REQUIRES(...)         function needs the capabilities exclusively
//   CNI_REQUIRES_SHARED(...)  function needs them at least shared
//   CNI_ACQUIRE/RELEASE(...)  function takes / returns the capabilities
//   CNI_NO_THREAD_SAFETY_ANALYSIS  opt a function out (justify in a comment)
//
// util::Capability is the phantom role object: a zero-state class whose
// acquire/release/assert methods compile to nothing but carry the
// attributes. Roles in this codebase are never blocking locks — they are
// granted by protocol edges (a barrier generation bump, thread identity, a
// quiescent crew) — so acquire() marks the *protocol point* where the role
// is conferred, and assert_held() marks code that holds the role by
// construction (e.g. "this function only runs on the pool's owning thread").
#pragma once

// Clang implements the analysis; the attribute spellings below are accepted
// from clang 3.6 on. Guard on the capability attribute itself so exotic
// clang-derived compilers without TSA degrade to no-ops instead of erroring.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CNI_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CNI_THREAD_ANNOTATION
#define CNI_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

#define CNI_CAPABILITY(name) CNI_THREAD_ANNOTATION(capability(name))
#define CNI_SCOPED_CAPABILITY CNI_THREAD_ANNOTATION(scoped_lockable)
#define CNI_GUARDED_BY(x) CNI_THREAD_ANNOTATION(guarded_by(x))
#define CNI_PT_GUARDED_BY(x) CNI_THREAD_ANNOTATION(pt_guarded_by(x))
#define CNI_ACQUIRED_BEFORE(...) CNI_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CNI_ACQUIRED_AFTER(...) CNI_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define CNI_REQUIRES(...) CNI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CNI_REQUIRES_SHARED(...) \
  CNI_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define CNI_ACQUIRE(...) CNI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CNI_ACQUIRE_SHARED(...) \
  CNI_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define CNI_RELEASE(...) CNI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CNI_RELEASE_SHARED(...) \
  CNI_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define CNI_EXCLUDES(...) CNI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CNI_ASSERT_CAPABILITY(x) CNI_THREAD_ANNOTATION(assert_capability(x))
#define CNI_ASSERT_SHARED_CAPABILITY(x) \
  CNI_THREAD_ANNOTATION(assert_shared_capability(x))
#define CNI_RETURN_CAPABILITY(x) CNI_THREAD_ANNOTATION(lock_returned(x))
#define CNI_NO_THREAD_SAFETY_ANALYSIS \
  CNI_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cni::util {

/// A protocol role, reified so Clang can track it. Zero state, zero cost:
/// every method is an empty inline function whose only payload is its
/// attribute. `acquire()` marks the protocol edge that confers the role
/// (thread spawn, barrier generation observed, crew quiescent);
/// `assert_held()` marks code that owns the role by construction and is the
/// right tool inside lambdas and callbacks that inherit the caller's role.
class CNI_CAPABILITY("role") Capability {
 public:
  void acquire() const CNI_ACQUIRE() {}
  void release() const CNI_RELEASE() {}
  void acquire_shared() const CNI_ACQUIRE_SHARED() {}
  void release_shared() const CNI_RELEASE_SHARED() {}
  /// Declares (does not check) that the calling context holds the role
  /// exclusively — by thread identity or a protocol edge the analysis
  /// cannot see. Keep a comment at every call site saying which one.
  void assert_held() const CNI_ASSERT_CAPABILITY(this) {}
  /// Shared-ownership form of assert_held().
  void assert_shared() const CNI_ASSERT_SHARED_CAPABILITY(this) {}
};

}  // namespace cni::util
