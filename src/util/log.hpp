// Minimal leveled logger.
//
// Simulation components log through here so that verbose traces can be turned
// on per-run (CNI_LOG_LEVEL env var or Logger::set_level) without recompiling.
//
// Two per-run extensions:
//   * sim-time prefix — Cluster::run installs a thread-local hook returning
//     the engine's current simulated time, so every line a component logs is
//     stamped `t=<ps>` with the *simulated* instant it happened (wall clocks
//     are banned in src/ by the determinism lint). Thread-local because each
//     parallel sweep job runs its own engine on its own thread.
//   * structured mode — CNI_LOG_JSON=1 (or set_json) switches lines to one
//     JSON object each ({"lvl","t","msg"}) for machine consumption.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace cni::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

class Logger {
 public:
  /// Returns the current simulated time in picoseconds. Plain function
  /// pointer + context (not std::function): util sits below sim and the hook
  /// may be consulted from hot-path logging.
  using TimeFn = std::uint64_t (*)(void* ctx);

  /// Global log level; reads CNI_LOG_LEVEL (0..4) from the environment once.
  static LogLevel level();
  static void set_level(LogLevel lvl);

  static bool enabled(LogLevel lvl) { return static_cast<int>(lvl) <= static_cast<int>(level()); }

  /// Installs/clears this thread's sim-time source. Pass fn=nullptr to clear.
  static void set_time_hook(TimeFn fn, void* ctx);

  /// Structured one-object-per-line JSON output; reads CNI_LOG_JSON once.
  static bool json();
  static void set_json(bool on);

  /// Redirects output (tests); nullptr restores stderr.
  static void set_stream(std::FILE* stream);

  /// printf-style log line with a level prefix; thread-safe via stdio locking.
  static void log(LogLevel lvl, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
};

/// RAII installer for the thread's sim-time hook.
class ScopedLogTime {
 public:
  ScopedLogTime(Logger::TimeFn fn, void* ctx) { Logger::set_time_hook(fn, ctx); }
  ScopedLogTime(const ScopedLogTime&) = delete;
  ScopedLogTime& operator=(const ScopedLogTime&) = delete;
  ~ScopedLogTime() { Logger::set_time_hook(nullptr, nullptr); }
};

}  // namespace cni::util

#define CNI_LOG_ERROR(...) ::cni::util::Logger::log(::cni::util::LogLevel::kError, __VA_ARGS__)
#define CNI_LOG_WARN(...) ::cni::util::Logger::log(::cni::util::LogLevel::kWarn, __VA_ARGS__)
#define CNI_LOG_INFO(...) ::cni::util::Logger::log(::cni::util::LogLevel::kInfo, __VA_ARGS__)
#define CNI_LOG_DEBUG(...) ::cni::util::Logger::log(::cni::util::LogLevel::kDebug, __VA_ARGS__)
#define CNI_LOG_TRACE(...) ::cni::util::Logger::log(::cni::util::LogLevel::kTrace, __VA_ARGS__)
