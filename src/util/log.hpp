// Minimal leveled logger.
//
// Simulation components log through here so that verbose traces can be turned
// on per-run (CNI_LOG_LEVEL env var or Logger::set_level) without recompiling.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace cni::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

class Logger {
 public:
  /// Global log level; reads CNI_LOG_LEVEL (0..4) from the environment once.
  static LogLevel level();
  static void set_level(LogLevel lvl);

  static bool enabled(LogLevel lvl) { return static_cast<int>(lvl) <= static_cast<int>(level()); }

  /// printf-style log line with a level prefix; thread-safe via stdio locking.
  static void log(LogLevel lvl, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
};

}  // namespace cni::util

#define CNI_LOG_ERROR(...) ::cni::util::Logger::log(::cni::util::LogLevel::kError, __VA_ARGS__)
#define CNI_LOG_WARN(...) ::cni::util::Logger::log(::cni::util::LogLevel::kWarn, __VA_ARGS__)
#define CNI_LOG_INFO(...) ::cni::util::Logger::log(::cni::util::LogLevel::kInfo, __VA_ARGS__)
#define CNI_LOG_DEBUG(...) ::cni::util::Logger::log(::cni::util::LogLevel::kDebug, __VA_ARGS__)
#define CNI_LOG_TRACE(...) ::cni::util::Logger::log(::cni::util::LogLevel::kTrace, __VA_ARGS__)
