#include "util/log.hpp"

#include <atomic>
#include <cstdlib>

namespace cni::util {
namespace {

std::atomic<int> g_level{-1};  // -1 = not yet initialized

int read_env_level() {
  const char* env = std::getenv("CNI_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  int v = std::atoi(env);
  if (v < 0) v = 0;
  if (v > 4) v = 4;
  return v;
}

const char* prefix(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
  }
  return "?";
}

}  // namespace

LogLevel Logger::level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = read_env_level();
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void Logger::set_level(LogLevel lvl) {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

void Logger::log(LogLevel lvl, const char* fmt, ...) {
  if (!enabled(lvl)) return;
  std::va_list args;
  va_start(args, fmt);
  flockfile(stderr);
  std::fprintf(stderr, "[cni:%s] ", prefix(lvl));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  funlockfile(stderr);
  va_end(args);
}

}  // namespace cni::util
