#include "util/log.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdlib>
#include <cstring>

namespace cni::util {
namespace {

std::atomic<int> g_level{-1};      // -1 = not yet initialized
std::atomic<int> g_json{-1};       // -1 = not yet initialized
std::atomic<std::FILE*> g_stream{nullptr};  // nullptr = stderr

// The time hook is per-thread: parallel sweep jobs each run their own engine,
// and a line must be stamped with *its* engine's clock.
thread_local Logger::TimeFn t_time_fn = nullptr;
thread_local void* t_time_ctx = nullptr;

int read_env_level() {
  const char* env = std::getenv("CNI_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  int v = std::atoi(env);
  if (v < 0) v = 0;
  if (v > 4) v = 4;
  return v;
}

const char* prefix(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
  }
  return "?";
}

/// Writes `msg` as a JSON string body (no surrounding quotes), escaping the
/// characters JSON requires. Runs under the stream lock.
void put_json_escaped(std::FILE* f, const char* msg) {
  for (const char* p = msg; *p != '\0'; ++p) {
    const auto c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"': std::fputs("\\\"", f); break;
      case '\\': std::fputs("\\\\", f); break;
      case '\n': std::fputs("\\n", f); break;
      case '\r': std::fputs("\\r", f); break;
      case '\t': std::fputs("\\t", f); break;
      default:
        if (c < 0x20) {
          std::fprintf(f, "\\u%04x", static_cast<unsigned>(c));
        } else {
          std::fputc(*p, f);
        }
    }
  }
}

}  // namespace

LogLevel Logger::level() {
  // relaxed: a standalone config word — no other data is published through
  // it, and a racy double-read of the env var is idempotent.
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = read_env_level();
    // relaxed: caching the env lookup; any thread recomputes the same value.
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void Logger::set_level(LogLevel lvl) {
  // relaxed: standalone config word, publishes nothing beyond itself.
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

void Logger::set_time_hook(TimeFn fn, void* ctx) {
  t_time_fn = fn;
  t_time_ctx = ctx;
}

bool Logger::json() {
  // relaxed: standalone config word (see level()).
  int v = g_json.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("CNI_LOG_JSON");
    v = (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
    // relaxed: caching the env lookup; any thread recomputes the same value.
    g_json.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

// relaxed: standalone config word, publishes nothing beyond itself.
void Logger::set_json(bool on) { g_json.store(on ? 1 : 0, std::memory_order_relaxed); }

void Logger::set_stream(std::FILE* stream) {
  // relaxed: the FILE* itself is the whole message — tests install streams
  // before logging threads exist, and flockfile orders the actual writes.
  g_stream.store(stream, std::memory_order_relaxed);
}

void Logger::log(LogLevel lvl, const char* fmt, ...) {
  if (!enabled(lvl)) return;
  // relaxed: pairs with the single-word store in set_stream.
  std::FILE* f = g_stream.load(std::memory_order_relaxed);
  if (f == nullptr) f = stderr;

  const bool have_time = t_time_fn != nullptr;
  const std::uint64_t t = have_time ? t_time_fn(t_time_ctx) : 0;

  std::va_list args;
  va_start(args, fmt);
  flockfile(f);
  if (json()) {
    // One object per line. The message is formatted into a bounded buffer
    // first so it can be escaped; log lines are diagnostics, not bulk data.
    char msg[512];
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    std::fprintf(f, "{\"lvl\":\"%s\"", prefix(lvl));
    if (have_time) std::fprintf(f, ",\"t\":%" PRIu64, t);
    std::fputs(",\"msg\":\"", f);
    put_json_escaped(f, msg);
    std::fputs("\"}\n", f);
  } else {
    if (have_time) {
      std::fprintf(f, "[cni:%s t=%" PRIu64 "] ", prefix(lvl), t);
    } else {
      std::fprintf(f, "[cni:%s] ", prefix(lvl));
    }
    std::vfprintf(f, fmt, args);
    std::fputc('\n', f);
  }
  funlockfile(f);
  va_end(args);
}

}  // namespace cni::util
