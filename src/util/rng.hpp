// Deterministic random number generation.
//
// The simulator must be bit-reproducible across runs, so all randomness is
// derived from explicitly seeded SplitMix64 streams — never from std::random_device.
#pragma once

#include <cstdint>

namespace cni::util {

/// SplitMix64: tiny, fast, and passes BigCrush when used as a stream.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). Bound must be nonzero.
  constexpr std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

 private:
  std::uint64_t state_;
};

}  // namespace cni::util
