// Non-owning callable reference.
//
// A FunctionRef<R(Args...)> is two words: a pointer to the callee and a
// pointer to a stateless thunk that invokes it. Passing one costs nothing —
// no heap allocation, no copy of the capture state — which makes it the
// right parameter type for call-synchronous callbacks: the callee is invoked
// before the call returns, so borrowing the caller's closure is always safe.
// (For *stored* callbacks, which must own their state, use sim::InlineFn or
// std::function instead; a dangling FunctionRef is a use-after-free.)
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace cni::util {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds any callable. Intentionally implicit so call sites keep passing
  /// lambdas exactly as they would to a const std::function&.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_reference_t<F>;
    if constexpr (std::is_function_v<Fn>) {
      // A plain function: object pointers can't hold a function pointer via
      // static_cast, so round-trip through reinterpret_cast (conditionally
      // supported, universal on the platforms we build for).
      obj_ = reinterpret_cast<void*>(std::addressof(f));
      call_ = [](void* obj, Args... args) -> R {
        return static_cast<R>(
            (*reinterpret_cast<Fn*>(obj))(std::forward<Args>(args)...));
      };
    } else {
      obj_ = const_cast<void*>(static_cast<const void*>(std::addressof(f)));
      call_ = [](void* obj, Args... args) -> R {
        return static_cast<R>(
            (*static_cast<Fn*>(obj))(std::forward<Args>(args)...));
      };
    }
  }

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace cni::util
