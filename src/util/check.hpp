// Lightweight invariant checking for the simulator.
//
// CNI_CHECK is always on (simulation correctness beats the last few percent
// of speed); CNI_DCHECK compiles out in release builds for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

#if defined(__linux__)
#include <execinfo.h>
#endif

namespace cni::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "CNI_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
#if defined(__linux__)
  void* frames[32];
  const int n = backtrace(frames, 32);
  backtrace_symbols_fd(frames, n, 2);
#endif
  std::abort();
}

}  // namespace cni::util

#define CNI_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::cni::util::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CNI_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) ::cni::util::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define CNI_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define CNI_DCHECK(expr) CNI_CHECK(expr)
#endif
