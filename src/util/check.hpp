// Lightweight invariant checking for the simulator.
//
// CNI_CHECK is always on (simulation correctness beats the last few percent
// of speed); CNI_DCHECK compiles out in release builds for hot paths. The
// comparison forms (CNI_CHECK_EQ and friends) print both operand values on
// failure, so a tripped invariant in a long sweep is diagnosable from the
// log alone. Bare assert() is banned by scripts/lint_cni.py: it vanishes
// under NDEBUG, which silently converts an invariant into undefined
// behaviour in release sweeps.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

#if defined(__linux__)
#include <execinfo.h>
#endif

namespace cni::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "CNI_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
#if defined(__linux__)
  void* frames[32];
  const int n = backtrace(frames, 32);
  backtrace_symbols_fd(frames, n, 2);
#endif
  std::abort();
}

namespace detail {

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

/// Renders a failed comparison's operand for the failure message. Streams
/// anything with an operator<<; everything else (opaque structs, scoped
/// enums without printers) degrades to a placeholder rather than a compile
/// error at the check site.
template <typename T>
std::string check_operand_str(const T& v) {
  if constexpr (IsStreamable<T>::value) {
    std::ostringstream os;
    // Stream chars and bytes numerically: a failing byte-valued check wants
    // "7 vs 9", not unprintable glyphs.
    if constexpr (std::is_same_v<T, char> || std::is_same_v<T, signed char> ||
                  std::is_same_v<T, unsigned char>) {
      os << static_cast<int>(v);
    } else {
      os << v;
    }
    return os.str();
  } else {
    return "<unprintable>";
  }
}

/// Cold path shared by the comparison macros: formats "lhs vs rhs" and
/// aborts via check_failed so the backtrace logic lives in one place.
template <typename A, typename B>
[[noreturn]] void check_op_failed(const char* expr, const char* file, int line,
                                  const A& lhs, const B& rhs) {
  const std::string msg =
      "values: " + check_operand_str(lhs) + " vs " + check_operand_str(rhs);
  check_failed(expr, file, line, msg.c_str());
}

}  // namespace detail
}  // namespace cni::util

#define CNI_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) ::cni::util::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CNI_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) ::cni::util::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

// Comparison checks: evaluate each operand exactly once and print both
// values on failure. Operands bind to const references, so the macros are
// safe for non-copyable types and for expressions with side effects.
#define CNI_CHECK_OP_(op, a, b)                                               \
  do {                                                                        \
    const auto& cni_check_lhs_ = (a);                                         \
    const auto& cni_check_rhs_ = (b);                                         \
    if (!(cni_check_lhs_ op cni_check_rhs_)) {                                \
      ::cni::util::detail::check_op_failed(#a " " #op " " #b, __FILE__,       \
                                           __LINE__, cni_check_lhs_,          \
                                           cni_check_rhs_);                   \
    }                                                                         \
  } while (0)

#define CNI_CHECK_EQ(a, b) CNI_CHECK_OP_(==, a, b)
#define CNI_CHECK_NE(a, b) CNI_CHECK_OP_(!=, a, b)
#define CNI_CHECK_LT(a, b) CNI_CHECK_OP_(<, a, b)
#define CNI_CHECK_LE(a, b) CNI_CHECK_OP_(<=, a, b)
#define CNI_CHECK_GT(a, b) CNI_CHECK_OP_(>, a, b)
#define CNI_CHECK_GE(a, b) CNI_CHECK_OP_(>=, a, b)

#ifdef NDEBUG
#define CNI_DCHECK(expr) \
  do {                   \
  } while (0)
#define CNI_DCHECK_EQ(a, b) \
  do {                      \
  } while (0)
#define CNI_DCHECK_NE(a, b) \
  do {                      \
  } while (0)
#define CNI_DCHECK_LT(a, b) \
  do {                      \
  } while (0)
#define CNI_DCHECK_LE(a, b) \
  do {                      \
  } while (0)
#define CNI_DCHECK_GT(a, b) \
  do {                      \
  } while (0)
#define CNI_DCHECK_GE(a, b) \
  do {                      \
  } while (0)
#else
#define CNI_DCHECK(expr) CNI_CHECK(expr)
#define CNI_DCHECK_EQ(a, b) CNI_CHECK_EQ(a, b)
#define CNI_DCHECK_NE(a, b) CNI_CHECK_NE(a, b)
#define CNI_DCHECK_LT(a, b) CNI_CHECK_LT(a, b)
#define CNI_DCHECK_LE(a, b) CNI_CHECK_LE(a, b)
#define CNI_DCHECK_GT(a, b) CNI_CHECK_GT(a, b)
#define CNI_DCHECK_GE(a, b) CNI_CHECK_GE(a, b)
#endif
