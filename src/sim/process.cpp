#include "sim/process.hpp"

#include <cstdint>

#include "util/check.hpp"

namespace cni::sim {

SimThread::SimThread(Engine& engine, std::string name, Body body, SimTime start)
    : engine_(engine), name_(std::move(name)), body_(std::move(body)), stack_(kStackBytes) {
  CNI_CHECK(getcontext(&fiber_) == 0);
  fiber_.uc_stack.ss_sp = stack_.data();
  fiber_.uc_stack.ss_size = stack_.size();
  fiber_.uc_link = nullptr;  // the trampoline always swaps back explicitly
  // makecontext only passes ints; smuggle `this` through two halves.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&fiber_, reinterpret_cast<void (*)()>(&SimThread::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
  engine_.schedule_at(start, [this] { resume_from_engine(); });
}

void SimThread::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<SimThread*>((static_cast<std::uintptr_t>(hi) << 32) |
                                            static_cast<std::uintptr_t>(lo));
  try {
    self->body_(*self);
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->yield_to_engine(State::kFinished);
  CNI_CHECK_MSG(false, "resumed a finished fiber");
}

void SimThread::resume_from_engine() {
  CNI_CHECK_MSG(state_ != State::kFinished, "resumed a finished SimThread");
  CNI_CHECK_MSG(state_ != State::kRunning, "resumed a running SimThread");
  wake_pending_ = false;
  state_ = State::kRunning;
  CNI_CHECK(swapcontext(&engine_ctx_, &fiber_) == 0);
  // The fiber yielded back (delay/block/finish).
  if (error_ != nullptr) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void SimThread::yield_to_engine(State s) {
  state_ = s;
  CNI_CHECK(swapcontext(&fiber_, &engine_ctx_) == 0);
}

void SimThread::delay(SimDuration dt) {
  if (dt == 0) return;
  engine_.schedule_after(dt, [this] { resume_from_engine(); });
  yield_to_engine(State::kDelaying);
}

void SimThread::block() { yield_to_engine(State::kBlocked); }

void SimThread::wake() { wake_at(engine_.now()); }

void SimThread::wake_at(SimTime t) {
  // Several same-instant events may try to unblock the same waiter; only the
  // first wake schedules a resume.
  if (wake_pending_) return;
  CNI_CHECK_MSG(state_ == State::kBlocked,
                "wake() requires the target to be parked in block()");
  wake_pending_ = true;
  engine_.schedule_at(t, [this] { resume_from_engine(); });
}

}  // namespace cni::sim
