#include "sim/process.hpp"

#include <cstdint>

#include "util/check.hpp"

// Switch mechanism selection. The first entry into a fiber must go through
// ucontext (only makecontext can start execution on a fresh stack), but every
// later engine<->fiber transfer only needs to save and restore registers —
// which _setjmp/_longjmp do entirely in user space, while glibc's swapcontext
// adds a sigprocmask system call per switch. Sanitizers, however, hook the
// ucontext entry points to track stack switches and would mis-poison frames
// jumped over by a cross-stack longjmp, so they keep the pure ucontext path.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CNI_FIBER_UCONTEXT_ONLY 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#ifndef CNI_FIBER_UCONTEXT_ONLY
#define CNI_FIBER_UCONTEXT_ONLY 1
#endif
#endif
#endif
#ifndef CNI_FIBER_UCONTEXT_ONLY
#define CNI_FIBER_UCONTEXT_ONLY 0
#endif

namespace cni::sim {

namespace {

/// The fiber whose body is executing on this OS thread (engine running:
/// nullptr). Set by resume_from_engine before control transfers, so the
/// trampoline reads it directly instead of reassembling `this` from the two
/// unsigned halves makecontext can pass — one less indirect dance on entry,
/// and SimThread::current() gets a one-load implementation.
thread_local SimThread* t_current = nullptr;

}  // namespace

SimThread* SimThread::current() { return t_current; }

SimThread::SimThread(Engine& engine, std::string name, Body body, SimTime start,
                     std::size_t stack_bytes)
    : engine_(engine),
      name_(std::move(name)),
      body_(std::move(body)),
      stack_(stack_bytes != 0 ? stack_bytes : kStackBytes) {
  CNI_CHECK(getcontext(&fiber_) == 0);
  fiber_.uc_stack.ss_sp = stack_.data();
  fiber_.uc_stack.ss_size = stack_.size();
  fiber_.uc_link = nullptr;  // the trampoline always swaps back explicitly
  makecontext(&fiber_, &SimThread::trampoline, 0);
  engine_.schedule_at(start, [this] { resume_from_engine(); });
}

void SimThread::trampoline() {
  SimThread* const self = t_current;
  CNI_CHECK_MSG(self != nullptr, "fiber entered outside resume_from_engine");
  try {
    self->body_(*self);
  } catch (...) {
    self->error_ = std::current_exception();
  }
  self->yield_to_engine(State::kFinished);
  CNI_CHECK_MSG(false, "resumed a finished fiber");
}

void SimThread::resume_from_engine() {
  CNI_CHECK_MSG(state_ != State::kFinished, "resumed a finished SimThread");
  CNI_CHECK_MSG(state_ != State::kRunning, "resumed a running SimThread");
  wake_pending_ = false;
  state_ = State::kRunning;
  SimThread* const prev = t_current;
  t_current = this;
#if CNI_FIBER_UCONTEXT_ONLY
  if (!started_) started_ = true;
  CNI_CHECK(swapcontext(&engine_ctx_, &fiber_) == 0);
#else
  if (_setjmp(engine_jmp_) == 0) {
    if (started_) {
      _longjmp(fiber_jmp_, 1);
    }
    started_ = true;
    // First entry: only ucontext can start the fresh stack. The context
    // saved into engine_ctx_ is never resumed — the fiber's first yield
    // longjmps straight back to the _setjmp above.
    CNI_CHECK(swapcontext(&engine_ctx_, &fiber_) == 0);
  }
#endif
  // The fiber yielded back (delay/block/finish).
  t_current = prev;
  if (error_ != nullptr) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void SimThread::yield_to_engine(State s) {
  state_ = s;
#if CNI_FIBER_UCONTEXT_ONLY
  CNI_CHECK(swapcontext(&fiber_, &engine_ctx_) == 0);
#else
  if (_setjmp(fiber_jmp_) == 0) _longjmp(engine_jmp_, 1);
#endif
}

void SimThread::delay(SimDuration dt) {
  if (dt == 0) return;
  engine_.schedule_after(dt, [this] { resume_from_engine(); });
  yield_to_engine(State::kDelaying);
}

void SimThread::block() { yield_to_engine(State::kBlocked); }

void SimThread::wake() { wake_at(engine_.now()); }

void SimThread::wake_at(SimTime t) {
  // Several same-instant events may try to unblock the same waiter; only the
  // first wake schedules a resume.
  if (wake_pending_) return;
  CNI_CHECK_MSG(state_ == State::kBlocked,
                "wake() requires the target to be parked in block()");
  wake_pending_ = true;
  engine_.schedule_at(t, [this] { resume_from_engine(); });
}

}  // namespace cni::sim
