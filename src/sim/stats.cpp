#include "sim/stats.hpp"

namespace cni::sim {

void NodeStats::add(const NodeStats& o) {
  compute_cycles += o.compute_cycles;
  synch_overhead_cycles += o.synch_overhead_cycles;
  synch_delay_cycles += o.synch_delay_cycles;
  mcache_tx_lookups += o.mcache_tx_lookups;
  mcache_tx_hits += o.mcache_tx_hits;
  mcache_rx_inserts += o.mcache_rx_inserts;
  mcache_evictions += o.mcache_evictions;
  mcache_snoop_updates += o.mcache_snoop_updates;
  messages_sent += o.messages_sent;
  bytes_sent += o.bytes_sent;
  cells_sent += o.cells_sent;
  dma_transfers += o.dma_transfers;
  dma_bytes += o.dma_bytes;
  host_interrupts += o.host_interrupts;
  host_polls += o.host_polls;
  read_faults += o.read_faults;
  write_faults += o.write_faults;
  pages_fetched += o.pages_fetched;
  diffs_created += o.diffs_created;
  diffs_applied += o.diffs_applied;
  write_notices_received += o.write_notices_received;
  lock_acquires += o.lock_acquires;
  barriers += o.barriers;
}

double NodeStats::tx_hit_ratio_pct() const {
  if (mcache_tx_lookups == 0) return 100.0;
  return 100.0 * static_cast<double>(mcache_tx_hits) /
         static_cast<double>(mcache_tx_lookups);
}

NodeStats StatsRegistry::total() const {
  NodeStats t;
  for (const auto& n : nodes_) t.add(n);
  return t;
}

}  // namespace cni::sim
