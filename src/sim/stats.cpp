#include "sim/stats.hpp"

namespace cni::sim {

const std::vector<NodeStats::Field>& NodeStats::fields() {
  static const std::vector<Field> kFields = {
      {"cpu.compute_cycles", &NodeStats::compute_cycles},
      {"cpu.synch_overhead_cycles", &NodeStats::synch_overhead_cycles},
      {"cpu.synch_delay_cycles", &NodeStats::synch_delay_cycles},
      {"mcache.tx_lookups", &NodeStats::mcache_tx_lookups},
      {"mcache.tx_hits", &NodeStats::mcache_tx_hits},
      {"mcache.rx_inserts", &NodeStats::mcache_rx_inserts},
      {"mcache.evictions", &NodeStats::mcache_evictions},
      {"mcache.snoop_updates", &NodeStats::mcache_snoop_updates},
      {"nic.messages_sent", &NodeStats::messages_sent},
      {"nic.bytes_sent", &NodeStats::bytes_sent},
      {"nic.cells_sent", &NodeStats::cells_sent},
      {"nic.dma_transfers", &NodeStats::dma_transfers},
      {"nic.dma_bytes", &NodeStats::dma_bytes},
      {"nic.host_interrupts", &NodeStats::host_interrupts},
      {"nic.host_polls", &NodeStats::host_polls},
      {"dsm.read_faults", &NodeStats::read_faults},
      {"dsm.write_faults", &NodeStats::write_faults},
      {"dsm.pages_fetched", &NodeStats::pages_fetched},
      {"dsm.diffs_created", &NodeStats::diffs_created},
      {"dsm.diffs_applied", &NodeStats::diffs_applied},
      {"dsm.write_notices_received", &NodeStats::write_notices_received},
      {"dsm.lock_acquires", &NodeStats::lock_acquires},
      {"dsm.barriers", &NodeStats::barriers},
  };
  return kFields;
}

void NodeStats::add(const NodeStats& o) {
  for (const Field& f : fields()) this->*f.member += o.*f.member;
}

double NodeStats::tx_hit_ratio_pct() const {
  if (!has_lookups()) return 0.0;
  return 100.0 * static_cast<double>(mcache_tx_hits) /
         static_cast<double>(mcache_tx_lookups);
}

NodeStats StatsRegistry::total() const {
  NodeStats t;
  for (const auto& n : nodes_) t.add(n);
  return t;
}

}  // namespace cni::sim
