// Synchronisation primitives for simulated threads.
//
// These are *simulation-domain* primitives: they park/resume SimThreads in
// simulated time. Because execution is strictly serialized they need no
// atomics; the invariant they maintain is that wake() is only ever applied
// to a thread parked in block().
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "sim/process.hpp"
#include "util/check.hpp"

namespace cni::sim {

/// A condition-variable-like wait queue. Waiters always re-check their
/// predicate after waking (the condition-loop idiom), so notify_all is always
/// safe and notify_one is an optimisation.
class WaitQueue {
 public:
  /// Parks `self` until `pred()` holds. May consume multiple wakeups.
  template <typename Pred>
  void wait(SimThread& self, Pred&& pred) {
    while (!pred()) {
      waiters_.push_back(&self);
      self.block();
    }
  }

  /// Wakes every waiter at the current instant.
  void notify_all() {
    std::vector<SimThread*> ws;
    ws.swap(waiters_);
    for (SimThread* w : ws) w->wake();
  }

  /// Wakes the longest-waiting waiter, if any.
  void notify_one() {
    if (waiters_.empty()) return;
    SimThread* w = waiters_.front();
    waiters_.erase(waiters_.begin());
    w->wake();
  }

  [[nodiscard]] bool has_waiters() const { return !waiters_.empty(); }
  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

 private:
  std::vector<SimThread*> waiters_;
};

/// An unbounded FIFO channel. send() never blocks (events use it to hand
/// results to threads); receive() parks the calling thread until a value is
/// available.
template <typename T>
class SimChannel {
 public:
  void send(T value) {
    queue_.push_back(std::move(value));
    ready_.notify_one();
  }

  [[nodiscard]] T receive(SimThread& self) {
    ready_.wait(self, [this] { return !queue_.empty(); });
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  /// Non-blocking receive; returns true and fills `out` if a value was ready.
  bool try_receive(T& out) {
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const { return queue_.size(); }

 private:
  std::deque<T> queue_;
  WaitQueue ready_;
};

/// Counting semaphore in simulated time.
class SimSemaphore {
 public:
  explicit SimSemaphore(std::int64_t initial = 0) : count_(initial) {}

  void release(std::int64_t n = 1) {
    count_ += n;
    for (std::int64_t i = 0; i < n; ++i) avail_.notify_one();
  }

  void acquire(SimThread& self) {
    avail_.wait(self, [this] { return count_ > 0; });
    --count_;
  }

  [[nodiscard]] std::int64_t count() const { return count_; }

 private:
  std::int64_t count_;
  WaitQueue avail_;
};

}  // namespace cni::sim
