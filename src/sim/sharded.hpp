// Conservative parallel-in-run simulation: lookahead-sharded event engines.
//
// The cluster's nodes are partitioned into K shards, each owning a private
// sim::Engine, advanced in lock-step *epochs*. The fabric's fixed minimum
// cross-node latency (switch pipeline + two propagation legs) is a guaranteed
// lookahead window L: an event executed at time t cannot make anything happen
// on another shard before t + L, so every shard may run the events of
// [E, E + L) without hearing from its peers — Chandy–Misra conservatism with
// a lookahead window instead of per-link null messages.
//
// Three mechanisms close the gap between event-parallelism and wall-clock
// speedup (DESIGN.md §12):
//
//  * Per-pair lookahead (LookaheadMatrix): the fabric exports how soon an
//    event on shard r can reach shard c, and the epoch bound takes the
//    minimum only over shards that actually hold pending events.
//  * Epoch fusion (FusionLedger): while no transfer needs the global merge,
//    shards free-run through fixed-width sub-windows synchronized by padded
//    per-shard progress words — no barrier at all. Intra-shard traffic is
//    routed by the owning shard (legal for aligned plans, see
//    ShardPlan::aligned); the first barrier-requiring send deterministically
//    ends the epoch one sub-window later.
//  * Cheap barriers: a centralized sense-reversing barrier (generalized to a
//    generation counter) whose arrival words are cache-line padded per
//    shard, so the close of an epoch costs two release/acquire edges and no
//    shared fetch_add cacheline ping-pong.
//
// Cross-shard frame transfers are buffered during an epoch and drained at the
// barrier in one canonical order — (head-at-switch time, source node, per-
// source send sequence), every component derived from source-local state — so
// the merged event order, and therefore every figure number, trace export and
// metrics report, is bit-identical for every K, every thread schedule and
// every epoch schedule (fused or not). The determinism argument is spelled
// out in DESIGN.md §12.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/function_ref.hpp"
#include "util/thread_annotations.hpp"

namespace cni::sim {

class ShardProfiler;  // sim/shard_profiler.hpp — opt-in wall-time attribution

/// Contiguous-block assignment of `nodes` simulated nodes to `shards`
/// engines. Blocks (not round-robin) keep DSM neighbours — which exchange
/// the most frames — inside one shard where their traffic needs no barrier.
struct ShardPlan {
  std::uint32_t shards = 1;
  std::uint32_t nodes = 0;

  /// Clamps the requested shard count into [1, nodes].
  [[nodiscard]] static ShardPlan balanced(std::uint32_t nodes, std::uint32_t shards);

  /// Which shard owns `node`: the first (nodes % shards) shards take one
  /// extra node each, so block sizes differ by at most one.
  [[nodiscard]] std::uint32_t shard_of(std::uint32_t node) const;

  /// Number of nodes in `shard`.
  [[nodiscard]] std::uint32_t count(std::uint32_t shard) const;

  /// True when every shard owns an equal, power-of-two-sized, power-of-two-
  /// aligned block of node ids. Then each block is exactly the set of ports
  /// sharing their upper address bits, and the banyan's butterfly wiring
  /// (atm::BanyanSwitch::path_resource: destination high bits | source low
  /// bits) gives intra-block paths of *different* blocks disjoint element
  /// outputs at every stage — so shards may route their own intra-block
  /// transfers concurrently, race-free and without reordering any shared
  /// resource. Unaligned plans simply treat every send as cross-shard.
  [[nodiscard]] bool aligned() const;
};

/// Epoch geometry, derived from the interconnect timing (atm::Fabric exports
/// these; see Fabric::min_lookahead).
struct EpochParams {
  /// L: minimum latency from a send event to any cross-shard effect. Also
  /// the fused-epoch sub-window width W (any W <= L is sound; W = L maximizes
  /// the work per progress-word handshake).
  SimDuration lookahead = 0;
  /// A transfer buffered with head-at-switch time H is *final* — no later
  /// send can precede it — once every shard passed H - drain_horizon.
  SimDuration drain_horizon = 0;
  /// A buffered head at H cannot deliver before H + pending_bound.
  SimDuration pending_bound = 0;
};

/// Per-shard-pair lookahead bounds: entry (r, c) is how soon an event on
/// shard r can affect shard c. For the single-stage banyan every cross pair
/// costs the same (switch pipeline + two propagation legs) so the matrix is
/// uniform; the per-pair structure is the hook for multi-stage or torus
/// fabrics (ROADMAP item 2), whose distant pairs earn genuinely more slack.
/// Diagonal entries are kUnbounded: intra-shard causality is the engine's own
/// (time, seq) order and never constrains the epoch bound.
struct LookaheadMatrix {
  /// Diagonal sentinel; also what out_bound returns for a 1-shard matrix.
  static constexpr SimDuration kUnbounded = ~0ull;

  std::uint32_t shards = 1;
  std::vector<SimDuration> entries;  ///< shards x shards, row-major

  [[nodiscard]] SimDuration at(std::uint32_t r, std::uint32_t c) const {
    return entries[static_cast<std::size_t>(r) * shards + c];
  }

  /// Min over destinations c != r: how long shard r's next event stays
  /// invisible to every peer.
  [[nodiscard]] SimDuration out_bound(std::uint32_t r) const {
    SimDuration best = kUnbounded;
    for (std::uint32_t c = 0; c < shards; ++c) {
      if (c == r) continue;
      const SimDuration d = at(r, c);
      best = d < best ? d : best;
    }
    return best;
  }
};

/// Deterministic run statistics (no wall clocks: every count is a property
/// of the simulation content and the shard plan, not of the host or of the
/// thread schedule).
struct EpochStats {
  std::uint64_t epochs = 0;
  std::uint64_t events_total = 0;  ///< summed over shards; K-independent
  /// Sum over epochs of the busiest shard's event count: the length of the
  /// critical path an ideal K-way parallel execution cannot beat. The ratio
  /// events_total / critical_path_events is the run's event-parallelism.
  std::uint64_t critical_path_events = 0;
  /// Epochs run under the fused protocol: sub-windows synchronized by
  /// progress words, no global barrier until the epoch ends.
  std::uint64_t fused_epochs = 0;
  /// Full cross-shard rendezvous actually paid. Always <= epochs; zero for
  /// K = 1 and for epochs where only shard 0 had work.
  std::uint64_t barriers = 0;
};

/// a + b, saturating at kNever (so "no pending work" windows stay kNever).
[[nodiscard]] constexpr SimTime sat_add(SimTime a, SimDuration b) {
  return a > kNever - b ? kNever : a + b;
}

/// Pure epoch math: the end of the next window given the earliest pending
/// event across all shards (t_min), the earliest still-buffered transfer head
/// (pending_min, kNever when none) and the fabric-derived margins. Every
/// input is K-independent, so the epoch schedule is too.
[[nodiscard]] constexpr SimTime next_epoch_end(SimTime t_min, SimTime pending_min,
                                               const EpochParams& p) {
  const SimTime by_events = sat_add(t_min, p.lookahead);
  const SimTime by_pending = sat_add(pending_min, p.pending_bound);
  return by_events < by_pending ? by_events : by_pending;
}

/// Matrix-aware epoch bound: the minimum over shards that actually hold
/// pending events of (next event time + that shard's outgoing lookahead),
/// still capped by the buffered-transfer bound. With a uniform matrix this
/// equals the global-lookahead bound exactly; with a distance-dependent one,
/// idle or far-away shards stop shrinking everyone's window.
[[nodiscard]] SimTime next_epoch_end(std::span<const SimTime> t_next,
                                     const LookaheadMatrix& la, SimTime pending_min,
                                     const EpochParams& p);

/// Shared ledger coordinating one *fused* epoch. Shards run fixed-width
/// sub-windows [base + jW, base + (j+1)W), synchronizing only through padded
/// per-shard progress words; every barrier-requiring send (cross-shard — or
/// any send at all under an unaligned plan) is recorded here with the
/// sub-window index of its earliest possible effect. The epoch then ends,
/// identically for every thread schedule, at the first window boundary one
/// past the earliest recorded send: stop_window() = min send window + 1.
/// The recording shard publishes its progress word *after* note_send (release
/// on the progress store), so any peer that entered window j has observed
/// every send recorded in windows < j — that acquire/release pair is the
/// whole synchronization of the stop rule.
class FusionLedger {
 public:
  /// stop_window() while no send is recorded: the epoch never needs a drain.
  static constexpr std::uint64_t kNoStop = ~0ull;

  /// The coordinator role: held exclusively between epochs (when reset()
  /// re-arms the geometry, with every shard quiescent at the barrier) and
  /// shared by every shard thread while a fused epoch runs (geometry reads).
  /// The grant is a protocol edge — the crew barrier — not a lock, so the
  /// methods below assert the role rather than block for it.
  util::Capability coord;

  /// Re-arms the ledger for a fused epoch starting at `base` with sub-window
  /// width `window`. Coordinator-only, never concurrent with shard execution.
  void reset(SimTime base, SimDuration window) {
    // Exclusive by protocol: reset is only called between epochs, when the
    // crew barrier has parked every shard thread.
    coord.assert_held();
    base_ = base;
    window_ = window;
    // relaxed: the re-armed value is published to shard threads by the crew's
    // generation-bump release, not by this store.
    min_send_window_.store(kNoStop, std::memory_order_relaxed);
  }

  /// Records a barrier-requiring send whose earliest effect is at `t`
  /// (callable from any shard thread). Lock-free atomic-min.
  void note_send(SimTime t) {
    const std::uint64_t w = window_of(t);
    // relaxed load / release CAS: the publishing edge peers rely on is the
    // sender's *progress-word* release that follows note_send in program
    // order (see fused_shard_loop); the CAS release only orders the window
    // value itself for stop_window()'s acquire.
    std::uint64_t cur = min_send_window_.load(std::memory_order_relaxed);
    while (w < cur && !min_send_window_.compare_exchange_weak(
                          cur, w, std::memory_order_release, std::memory_order_relaxed)) {
    }
  }

  /// Sub-window index of time `t` (0 for anything at or before base).
  [[nodiscard]] std::uint64_t window_of(SimTime t) const {
    // Shared by protocol: geometry is frozen for the whole epoch; any thread
    // inside the epoch (including note_send callers) may read it.
    coord.assert_shared();
    return t <= base_ ? 0 : (t - base_) / window_;
  }

  /// First sub-window no shard may execute: one past the earliest recorded
  /// send's window, or kNoStop while nothing was recorded.
  [[nodiscard]] std::uint64_t stop_window() const {
    // acquire: pairs with note_send's release so the reader of a stop
    // decision also observes the recorded window value.
    const std::uint64_t m = min_send_window_.load(std::memory_order_acquire);
    return m == kNoStop ? kNoStop : m + 1;
  }

  [[nodiscard]] SimTime base() const {
    coord.assert_shared();  // frozen for the epoch, see window_of
    return base_;
  }
  [[nodiscard]] SimDuration window() const {
    coord.assert_shared();  // frozen for the epoch, see window_of
    return window_;
  }

 private:
  SimTime base_ CNI_GUARDED_BY(coord) = 0;
  SimDuration window_ CNI_GUARDED_BY(coord) = 1;
  std::atomic<std::uint64_t> min_send_window_{kNoStop};
};

/// Callbacks the epoch runner needs from the fabric beyond the barrier drain.
struct FusedHooks {
  /// Routes the shard's own intra-block transfers with head < limit, in
  /// canonical order, scheduling their deliveries; returns the earliest
  /// remaining unrouted local head (kNever when none). Called concurrently
  /// for different shards — sound only for aligned plans (see
  /// ShardPlan::aligned); pass fuse = false or keep local queues empty
  /// otherwise.
  // cni-lint: allow(functionref-escape): borrowed for exactly one run_epochs
  // call; the caller keeps the named lambdas alive for its whole duration.
  util::FunctionRef<SimTime(std::uint32_t shard, SimTime limit)> local_drain;
  /// Earliest unrouted local head of `shard` (kNever when none).
  // cni-lint: allow(functionref-escape): borrowed for exactly one run_epochs
  // call, same lifetime argument as local_drain.
  util::FunctionRef<SimTime(std::uint32_t shard)> local_min;
  /// Where the fabric records barrier-requiring sends. Null disables fusion.
  FusionLedger* ledger = nullptr;
};

/// Runs the shard engines in lookahead epochs until every heap is empty and
/// no transfer remains buffered. `drain` is called at each barrier (on the
/// coordinating thread, never concurrently with shard execution) with the
/// finality limit E + drain_horizon; it must flush every buffered transfer —
/// outboxes and not-yet-routed local queues — and route those whose head lies
/// below the limit into the destination engines, in canonical order, then
/// return the earliest remaining head (kNever when none).
///
/// `matrix` (optional) supplies per-pair lookahead for the epoch bound;
/// null falls back to the global params.lookahead. `hooks.ledger` non-null
/// enables epoch fusion.
///
/// One shard runs inline on the calling thread; shards 1..K-1 run on worker
/// threads that live for the whole call. Exceptions thrown inside a shard
/// (e.g. a failed CNI_CHECK in a fiber) stop the run at the next barrier and
/// the lowest-shard exception is rethrown on the calling thread.
///
/// `prof` (optional, enabled via ShardProfiler::enable) receives wall-time
/// phase transitions at epoch and sub-window boundaries only — never inside
/// the event loop. Null (the default) costs nothing.
void run_epochs(std::span<Engine* const> engines, const EpochParams& params,
                const LookaheadMatrix* matrix, const FusedHooks& hooks,
                util::FunctionRef<SimTime(SimTime)> drain, EpochStats* stats = nullptr,
                ShardProfiler* prof = nullptr);

}  // namespace cni::sim
