// Conservative parallel-in-run simulation: lookahead-sharded event engines.
//
// The cluster's nodes are partitioned into K shards, each owning a private
// sim::Engine, advanced in lock-step *epochs*. The fabric's fixed minimum
// cross-node latency (switch pipeline + two propagation legs) is a guaranteed
// lookahead window L: an event executed at time t cannot make anything happen
// on another shard before t + L, so every shard may run the events of
// [E, E + L) without hearing from its peers — Chandy–Misra conservatism with
// a global window instead of per-link null messages.
//
// Cross-shard frame transfers are buffered during an epoch and drained at the
// barrier in one canonical order — (head-at-switch time, source node, per-
// source send sequence), every component derived from source-local state — so
// the merged event order, and therefore every figure number, trace export and
// metrics report, is bit-identical for every K and thread schedule. The
// determinism argument is spelled out in DESIGN.md §12.
#pragma once

#include <cstdint>
#include <span>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/function_ref.hpp"

namespace cni::sim {

/// Contiguous-block assignment of `nodes` simulated nodes to `shards`
/// engines. Blocks (not round-robin) keep DSM neighbours — which exchange
/// the most frames — inside one shard where their traffic needs no barrier.
struct ShardPlan {
  std::uint32_t shards = 1;
  std::uint32_t nodes = 0;

  /// Clamps the requested shard count into [1, nodes].
  [[nodiscard]] static ShardPlan balanced(std::uint32_t nodes, std::uint32_t shards);

  /// Which shard owns `node`: the first (nodes % shards) shards take one
  /// extra node each, so block sizes differ by at most one.
  [[nodiscard]] std::uint32_t shard_of(std::uint32_t node) const;

  /// Number of nodes in `shard`.
  [[nodiscard]] std::uint32_t count(std::uint32_t shard) const;
};

/// Epoch geometry, derived from the interconnect timing (atm::Fabric exports
/// these; see Fabric::min_lookahead).
struct EpochParams {
  /// L: minimum latency from a send event to any cross-shard effect.
  SimDuration lookahead = 0;
  /// A transfer buffered with head-at-switch time H is *final* — no later
  /// send can precede it — once every shard passed H - drain_horizon.
  SimDuration drain_horizon = 0;
  /// A buffered head at H cannot deliver before H + pending_bound.
  SimDuration pending_bound = 0;
};

/// Deterministic run statistics (no wall clocks: epoch and event counts are
/// properties of the simulation and the shard plan, not of the host).
struct EpochStats {
  std::uint64_t epochs = 0;
  std::uint64_t events_total = 0;  ///< summed over shards; K-independent
  /// Sum over epochs of the busiest shard's event count: the length of the
  /// critical path an ideal K-way parallel execution cannot beat. The ratio
  /// events_total / critical_path_events is the run's event-parallelism.
  std::uint64_t critical_path_events = 0;
};

/// a + b, saturating at kNever (so "no pending work" windows stay kNever).
[[nodiscard]] constexpr SimTime sat_add(SimTime a, SimDuration b) {
  return a > kNever - b ? kNever : a + b;
}

/// Pure epoch math: the end of the next window given the earliest pending
/// event across all shards (t_min), the earliest still-buffered transfer head
/// (pending_min, kNever when none) and the fabric-derived margins. Every
/// input is K-independent, so the epoch schedule is too.
[[nodiscard]] constexpr SimTime next_epoch_end(SimTime t_min, SimTime pending_min,
                                               const EpochParams& p) {
  const SimTime by_events = sat_add(t_min, p.lookahead);
  const SimTime by_pending = sat_add(pending_min, p.pending_bound);
  return by_events < by_pending ? by_events : by_pending;
}

/// Runs the shard engines in lookahead epochs until every heap is empty and
/// no transfer remains buffered. `drain` is called at each barrier (on the
/// coordinating thread, never concurrently with shard execution) with the
/// finality limit E + drain_horizon; it must route every buffered transfer
/// whose head lies below the limit into the destination engines, in canonical
/// order, and return the earliest remaining head (kNever when none).
///
/// One shard runs inline on the calling thread; shards 1..K-1 run on worker
/// threads that live for the whole call. Exceptions thrown inside a shard
/// (e.g. a failed CNI_CHECK in a fiber) stop the run at the next barrier and
/// the lowest-shard exception is rethrown on the calling thread.
void run_epochs(std::span<Engine* const> engines, const EpochParams& params,
                util::FunctionRef<SimTime(SimTime)> drain, EpochStats* stats = nullptr);

}  // namespace cni::sim
