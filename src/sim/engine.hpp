// Deterministic discrete-event engine.
//
// Events fire in (time, insertion-sequence) order, so two events scheduled
// for the same instant fire in the order they were scheduled — this is what
// makes the whole simulation bit-reproducible run to run.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace cni::sim {

using EventId = std::uint64_t;

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must not be in the past).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` at now() + dt.
  EventId schedule_after(SimDuration dt, Callback cb) { return schedule_at(now_ + dt, std::move(cb)); }

  /// Cancels a pending event. Cancelling an already-fired or unknown event is
  /// a harmless no-op (lazy deletion).
  void cancel(EventId id);

  /// Runs events until the queue is empty. Rethrows any exception raised by a
  /// callback (e.g. a failed check inside a simulated thread).
  void run();

  /// Runs events with time <= deadline; events beyond it stay queued.
  void run_until(SimTime deadline);

  /// Executes the single next event. Returns false if the queue was empty.
  bool step();

  [[nodiscard]] bool empty() const { return queue_.size() == cancelled_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t events_scheduled() const { return next_id_; }

 private:
  struct Event {
    SimTime t;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

/// Models a serially-reusable resource (a bus, a link, a NIC processor): jobs
/// queue FIFO and each occupies the resource for its duration.
class ServiceQueue {
 public:
  /// Reserves the resource for `duration` starting no earlier than `now`.
  /// Returns the completion time; the resource is busy until then.
  SimTime occupy(SimTime now, SimDuration duration) {
    const SimTime start = now > busy_until_ ? now : busy_until_;
    busy_until_ = start + duration;
    total_busy_ += duration;
    ++jobs_;
    return busy_until_;
  }

  /// When the resource next becomes free.
  [[nodiscard]] SimTime busy_until() const { return busy_until_; }
  [[nodiscard]] SimDuration total_busy() const { return total_busy_; }
  [[nodiscard]] std::uint64_t jobs() const { return jobs_; }

 private:
  SimTime busy_until_ = 0;
  SimDuration total_busy_ = 0;
  std::uint64_t jobs_ = 0;
};

}  // namespace cni::sim
