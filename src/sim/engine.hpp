// Deterministic discrete-event engine.
//
// Events fire in (time, insertion-sequence) order, so two events scheduled
// for the same instant fire in the order they were scheduled — this is what
// makes the whole simulation bit-reproducible run to run.
//
// The pending set is an index-tracked 8-ary min-heap: a slot table maps every
// live EventId to its heap position, so cancel() removes the event in
// O(log n) instead of leaving a tombstone, empty() is exact, and the wider
// fan-out keeps sift paths short and cache-friendly. Callbacks are InlineFn,
// so the schedule/fire cycle performs no heap allocation for the small
// captures every hot path uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace cni::sim {

namespace detail {

/// Allocator returning 64-byte-aligned storage, so each 8-wide child group
/// of the event heap's time/sequence arrays occupies exactly one cache line.
template <typename T>
struct CacheAlignedAlloc {
  using value_type = T;
  CacheAlignedAlloc() = default;
  template <typename U>
  CacheAlignedAlloc(const CacheAlignedAlloc<U>&) noexcept {}  // NOLINT(google-explicit-constructor)
  T* allocate(std::size_t n) {
    // cni-lint: allow(hot-path-alloc): this IS the allocator; amortized by
    // the heap's geometric growth, not per-event.
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{64}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{64});
  }
  template <typename U>
  bool operator==(const CacheAlignedAlloc<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const CacheAlignedAlloc<U>&) const noexcept {
    return false;
  }
};

}  // namespace detail

/// Identifies one scheduled event: a slot index plus a generation counter,
/// so ids of fired or cancelled events go stale instead of being reused.
using EventId = std::uint64_t;

class Engine {
 public:
  using Callback = InlineFn;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must not be in the past).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` at now() + dt.
  EventId schedule_after(SimDuration dt, Callback cb) { return schedule_at(now_ + dt, std::move(cb)); }

  /// Schedules a network delivery at absolute time `t`. Deliveries draw their
  /// tie-break sequence from a separate biased counter, so a delivery and a
  /// node-local event scheduled for the same instant order by *content*
  /// (local first, then delivery) — never by which epoch schedule happened to
  /// insert the delivery earlier. The sharded fabric inserts deliveries in the
  /// canonical (head, src, seq) order, so among deliveries the biased sequence
  /// is itself schedule-independent; this is what keeps artifacts byte-equal
  /// when epoch fusion changes *when* a drain runs (DESIGN.md §12).
  EventId schedule_delivery(SimTime t, Callback cb);

  /// Cancels a pending event, removing it from the heap immediately.
  /// Cancelling an already-fired, already-cancelled or unknown event is a
  /// harmless no-op. Returns true iff a pending event was removed.
  bool cancel(EventId id);

  /// Runs events until the queue is empty. Rethrows any exception raised by a
  /// callback (e.g. a failed check inside a simulated thread).
  void run();

  /// Runs events with time <= deadline; events beyond it stay queued.
  void run_until(SimTime deadline);

  /// Runs events with time strictly < bound; events at or beyond it stay
  /// queued and now() is left at the last executed event. This is the
  /// sharded-mode epoch primitive: an epoch [E, E') executes exactly the
  /// events below E', and deliveries drained at the E' barrier may still be
  /// scheduled at any t >= E' without tripping the past-scheduling check.
  void run_before(SimTime bound);

  /// Time of the earliest pending event, or kNever when the queue is empty.
  /// The epoch scheduler peeks this to size the next lookahead window.
  [[nodiscard]] SimTime next_time() const {
    return empty() ? kNever : heap_t_[kRoot];
  }

  /// Executes the single next event. Returns false if the queue was empty.
  bool step();

  /// Exact: true iff no live (uncancelled, unfired) event is pending.
  [[nodiscard]] bool empty() const { return heap_t_.size() <= kPad; }
  [[nodiscard]] std::size_t pending() const {
    return heap_t_.empty() ? 0 : heap_t_.size() - kPad;
  }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t events_scheduled() const { return scheduled_; }
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_; }

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;
  // The heap arrays carry a 7-element pad so the root sits at index 7 and
  // every 8-child group starts at a multiple of 8 — with the 64-byte-aligned
  // time array, a whole child group is one cache line.
  static constexpr std::uint32_t kPad = 7;
  static constexpr std::uint32_t kRoot = 7;
  // 8-ary beats binary and 4-ary here: min-of-children scans run over the
  // dense time array below (one cache line per level), so the shallower tree
  // wins on the memory-bound large-heap drain.
  static constexpr std::uint32_t kFanout = 8;

  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;  // bumped on fire/cancel to invalidate old ids
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  /// Frees a slot after its event fired or was cancelled; the generation
  /// bump makes any outstanding EventId for it stale.
  void release_slot(std::uint32_t s);

  EventId schedule_with_seq(SimTime t, std::uint64_t seq, Callback cb);

  /// Removes heap_[i], refilling the hole from the back and re-sifting.
  void remove_at(std::uint32_t i);

  void sift_up(std::uint32_t i);
  bool sift_down(std::uint32_t i);  // returns true if the node moved

  /// Delivery sequences live in the top half of the sequence space: a local
  /// event (seq_ counter, starts at 0) can never collide with or sort after a
  /// delivery scheduled for the same time unless 2^63 locals were scheduled.
  static constexpr std::uint64_t kDeliverySeqBias = 1ull << 63;

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t delivery_seq_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  // The heap, struct-of-arrays: node i is (heap_t_[i], heap_seq_[i],
  // heap_slot_[i]), ordered by (time, insertion sequence). Splitting the
  // arrays keeps the min-of-children scan — the hot loop of every sift —
  // inside one cache line of times per level.
  std::vector<SimTime, detail::CacheAlignedAlloc<SimTime>> heap_t_;
  std::vector<std::uint64_t, detail::CacheAlignedAlloc<std::uint64_t>> heap_seq_;
  std::vector<std::uint32_t> heap_slot_;
  std::vector<Slot> slots_;
  // Heap position per slot (kNpos when not pending), kept out of Slot so the
  // position writes every sift performs stay in one dense array.
  std::vector<std::uint32_t> pos_;
  std::vector<std::uint32_t> free_slots_;
};

/// Models a serially-reusable resource (a bus, a link, a NIC processor): jobs
/// queue FIFO and each occupies the resource for its duration.
class ServiceQueue {
 public:
  /// Reserves the resource for `duration` starting no earlier than `now`.
  /// Returns the completion time; the resource is busy until then.
  SimTime occupy(SimTime now, SimDuration duration) {
    const SimTime start = now > busy_until_ ? now : busy_until_;
    busy_until_ = start + duration;
    total_busy_ += duration;
    ++jobs_;
    return busy_until_;
  }

  /// When the resource next becomes free.
  [[nodiscard]] SimTime busy_until() const { return busy_until_; }
  [[nodiscard]] SimDuration total_busy() const { return total_busy_; }
  [[nodiscard]] std::uint64_t jobs() const { return jobs_; }

 private:
  SimTime busy_until_ = 0;
  SimDuration total_busy_ = 0;
  std::uint64_t jobs_ = 0;
};

}  // namespace cni::sim
