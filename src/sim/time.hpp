// Simulated time.
//
// The base unit is the picosecond, carried in a 64-bit unsigned integer:
// 2^64 ps ≈ 213 days of simulated time, far beyond any run here. Components
// in different clock domains (166 MHz host CPU, 25 MHz memory bus, 33 MHz NIC
// processor) convert cycles to picoseconds through a Clock.
#pragma once

#include <cstdint>

#include "util/check.hpp"

namespace cni::sim {

/// Simulated time in picoseconds since the start of the run.
using SimTime = std::uint64_t;

/// A duration in picoseconds.
using SimDuration = std::uint64_t;

inline constexpr SimTime kNever = ~SimTime{0};

inline constexpr SimDuration kPicosecond = 1;
inline constexpr SimDuration kNanosecond = 1'000;
inline constexpr SimDuration kMicrosecond = 1'000'000;
inline constexpr SimDuration kMillisecond = 1'000'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000'000ULL;

/// A fixed-frequency clock domain. Periods are rounded to integral
/// picoseconds (166 MHz -> 6024 ps, error 0.002 %), keeping all arithmetic
/// exact and the simulation bit-reproducible.
class Clock {
 public:
  constexpr explicit Clock(std::uint64_t freq_hz)
      : freq_hz_(freq_hz), period_ps_(kSecond / freq_hz) {
    CNI_DCHECK(freq_hz > 0);
  }

  [[nodiscard]] constexpr std::uint64_t freq_hz() const { return freq_hz_; }
  [[nodiscard]] constexpr SimDuration period() const { return period_ps_; }

  /// Duration of `n` cycles in this domain.
  [[nodiscard]] constexpr SimDuration cycles(std::uint64_t n) const { return n * period_ps_; }

  /// Number of whole cycles elapsed in duration `d` (floor).
  [[nodiscard]] constexpr std::uint64_t to_cycles(SimDuration d) const { return d / period_ps_; }

  /// Number of cycles needed to cover duration `d` (ceiling).
  [[nodiscard]] constexpr std::uint64_t to_cycles_ceil(SimDuration d) const {
    return (d + period_ps_ - 1) / period_ps_;
  }

 private:
  std::uint64_t freq_hz_;
  SimDuration period_ps_;
};

/// Duration of transmitting `bits` at `bits_per_sec` (ceiling to whole ps).
constexpr SimDuration transmission_time(std::uint64_t bits, std::uint64_t bits_per_sec) {
  // bits * 1e12 / rate, computed without overflow for any realistic input.
  const std::uint64_t whole = bits / bits_per_sec;
  const std::uint64_t rem = bits % bits_per_sec;
  return whole * kSecond + (rem * kSecond + bits_per_sec - 1) / bits_per_sec;
}

constexpr double to_seconds(SimDuration d) { return static_cast<double>(d) / 1e12; }
constexpr double to_micros(SimDuration d) { return static_cast<double>(d) / 1e6; }

}  // namespace cni::sim
