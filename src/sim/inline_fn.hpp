// Small-buffer-optimized move-only callable, the engine's event payload.
//
// Every simulated communication or synchronisation point schedules at least
// one `void()` callback, and nearly all of them are tiny and trivially
// copyable: a `this` pointer plus at most a frame pointer and a timestamp.
// `std::function` heap-allocates most of those (libstdc++'s inline buffer is
// 16 bytes), so the seed engine paid one malloc/free per event. InlineFn
// stores trivially-copyable callables up to kInlineBytes in-place and only
// falls back to the heap for outsized or non-trivial captures, making the
// common schedule/fire cycle allocation-free.
//
// Restricting inline storage to trivially-copyable callables is what makes
// InlineFn itself trivially relocatable: a move is a fixed-size copy of the
// buffer (the heap case keeps only a pointer there), with no indirect call.
// The engine moves every callback at least twice (into its slot, out to
// fire), so relocation cost is squarely on the hot path.
//
// Move-only on purpose: an event fires exactly once, so callbacks are moved
// into the engine and moved out to fire; copyability would only invite
// accidental duplication of captured state.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace cni::sim {

/// Opt-in marker for callables that are safe to relocate with memcpy even
/// though they have a destructor (e.g. functors carrying a util::Buf raw
/// handle). A type declares `static constexpr bool kTriviallyRelocatable =
/// true;` to promise that a byte-copy followed by abandoning the source (its
/// destructor will NOT run) is equivalent to a move. InlineFn stores such
/// callables inline and runs their destructor exactly once.
template <typename Fn, typename = void>
struct IsDeclaredTriviallyRelocatable : std::false_type {};
template <typename Fn>
struct IsDeclaredTriviallyRelocatable<
    Fn, std::enable_if_t<Fn::kTriviallyRelocatable>> : std::true_type {};

class InlineFn {
 public:
  /// Inline capacity: fits a lambda capturing six pointers/words, which
  /// covers every callback the simulator schedules on its hot paths.
  static constexpr std::size_t kInlineBytes = 48;

  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    using Fn = std::decay_t<F>;
    constexpr bool fits =
        sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t);
    if constexpr (std::is_trivially_copyable_v<Fn> && fits) {
      // cni-lint: allow(hot-path-alloc): placement new into the inline
      // buffer — no heap allocation happens on this branch.
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = inline_ops<Fn>();
    } else if constexpr (IsDeclaredTriviallyRelocatable<Fn>::value && fits) {
      // cni-lint: allow(hot-path-alloc): placement new into the inline
      // buffer — no heap allocation happens on this branch either; the
      // callable self-certifies memcpy relocation and gets a destructor call.
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = inline_dtor_ops<Fn>();
    } else {
      // cni-lint: allow(hot-path-alloc): deliberate cold-path fallback for
      // outsized/non-trivial captures; hot-path callbacks stay inline.
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = heap_ops<Fn>();
    }
  }

  // Relocation reads the whole fixed-size buffer, including bytes past the
  // stored callable that were never written; GCC's -Wmaybe-uninitialized
  // flags that read under heavy inlining, but it is by construction benign
  // (the tail bytes are never interpreted).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    // Relocation is a raw copy in both storage modes: inline callables are
    // trivially copyable and the heap mode keeps only a pointer in buf_.
    std::memcpy(buf_, other.buf_, kInlineBytes);
    other.ops_ = nullptr;
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      std::memcpy(buf_, other.buf_, kInlineBytes);
      other.ops_ = nullptr;
    }
    return *this;
  }
#pragma GCC diagnostic pop

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Destroys the held callable, leaving the wrapper empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);  // nullptr: trivially destructible inline callable
  };

  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {
        [](void* b) { (*std::launder(reinterpret_cast<Fn*>(b)))(); },
        nullptr,
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* inline_dtor_ops() {
    static constexpr Ops ops = {
        [](void* b) { (*std::launder(reinterpret_cast<Fn*>(b)))(); },
        [](void* b) { std::launder(reinterpret_cast<Fn*>(b))->~Fn(); },
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops ops = {
        [](void* b) { (**std::launder(reinterpret_cast<Fn**>(b)))(); },
        [](void* b) { delete *std::launder(reinterpret_cast<Fn**>(b)); },
    };
    return &ops;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace cni::sim
