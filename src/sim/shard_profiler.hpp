// Shard execution profiler: wall-time attribution for the epoch crew.
//
// EpochStats answers "how parallel is the event stream?" with deterministic,
// host-independent counts. This module answers the complementary, host-
// *dependent* question — "where did the wall clock of a sharded run go?" —
// by bucketing each shard thread's time into five phases:
//
//   busy          executing its engine's events (run_before)
//   drain         routing buffered transfers (barrier drain, fused local
//                 drains)
//   barrier-wait  the coordinator waiting for worker arrival words
//   fused-window  waiting on peer progress words inside a fused epoch
//   idle          parked between commands (workers), or epoch bookkeeping
//                 (coordinator)
//
// The profiler is OFF by default and entirely outside the event hot path:
// phase transitions happen only at epoch and sub-window boundaries, and a
// disabled profiler is a null-pointer check at each site. Per-shard slots
// are cache-line padded and written exclusively by the owning shard thread;
// the coordinator reads them only after the crew's threads have joined.
//
// Wall-clock readings live in shard_profiler.cpp (not in sharded.cpp: the
// epoch-crew protocol itself must stay untimed, see the sharded-wall-clock
// lint rule) and never feed back into the simulation — deterministic
// artifacts stay byte-identical whether the profiler is on or off.
#pragma once

#include <cstdint>
#include <vector>

namespace cni::sim {

/// What a shard thread is doing right now (see file comment).
enum class ShardPhase : std::uint8_t {
  kIdle = 0,
  kBusy = 1,
  kDrain = 2,
  kBarrierWait = 3,
  kFusedWindow = 4,
};
inline constexpr std::size_t kShardPhaseCount = 5;

/// Stable lowercase phase name ("busy", "barrier_wait", ...) for exports.
[[nodiscard]] const char* shard_phase_name(ShardPhase p);

/// One shard's closed books: nanoseconds per phase plus the transition count
/// (so consumers can judge the profiler's own overhead).
struct ShardProfile {
  std::uint64_t ns[kShardPhaseCount] = {};
  std::uint64_t transitions = 0;

  [[nodiscard]] std::uint64_t total_ns() const {
    std::uint64_t t = 0;
    for (const std::uint64_t v : ns) t += v;
    return t;
  }
};

/// Off until enable(); then each shard thread drives its own slot through
/// transition() and the owner harvests profiles() after the run.
class ShardProfiler {
 public:
  [[nodiscard]] bool enabled() const { return !slots_.empty(); }

  /// Allocates `shards` slots and stamps them (phase = idle, clock = now).
  /// Must run before the crew's threads start touching their slots.
  void enable(std::uint32_t shards);

  /// Charges the time since the slot's last transition to its current phase,
  /// then switches to `next`. Called only by the shard's own thread, only at
  /// epoch/sub-window boundaries — never per event.
  void transition(std::uint32_t shard, ShardPhase next);

  /// Closes every slot's open phase. Call after the crew's worker threads
  /// have joined (run_epochs returned): the join is the happens-before edge
  /// that makes the plain slot fields safe to read here.
  void finish();

  /// The closed books, one entry per shard. Valid after finish().
  [[nodiscard]] std::vector<ShardProfile> profiles() const;

 private:
  /// Padded so two shards' bookkeeping never shares a cache line.
  struct alignas(64) Slot {
    std::uint64_t last_ns = 0;
    ShardPhase phase = ShardPhase::kIdle;
    std::uint64_t ns[kShardPhaseCount] = {};
    std::uint64_t transitions = 0;
  };

  std::vector<Slot> slots_;
};

}  // namespace cni::sim
