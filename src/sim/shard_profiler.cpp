#include "sim/shard_profiler.hpp"

#include <chrono>

namespace cni::sim {
namespace {

/// The one sanctioned host-clock read in src/sim. Profiling telemetry only:
/// the value is never compared against simulated time and never influences
/// the epoch schedule, so determinism of every artifact is untouched.
std::uint64_t wall_ns() {
  // cni-lint: allow(determinism): profiler telemetry; never feeds the model
  const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch).count());
}

}  // namespace

const char* shard_phase_name(ShardPhase p) {
  switch (p) {
    case ShardPhase::kIdle: return "idle";
    case ShardPhase::kBusy: return "busy";
    case ShardPhase::kDrain: return "drain";
    case ShardPhase::kBarrierWait: return "barrier_wait";
    case ShardPhase::kFusedWindow: return "fused_window";
  }
  return "unknown";
}

void ShardProfiler::enable(std::uint32_t shards) {
  slots_.assign(shards, Slot{});
  const std::uint64_t now = wall_ns();
  for (Slot& s : slots_) s.last_ns = now;
}

void ShardProfiler::transition(std::uint32_t shard, ShardPhase next) {
  if (slots_.empty()) return;
  Slot& s = slots_[shard];
  const std::uint64_t now = wall_ns();
  s.ns[static_cast<std::size_t>(s.phase)] += now - s.last_ns;
  s.last_ns = now;
  s.phase = next;
  ++s.transitions;
}

void ShardProfiler::finish() {
  const std::uint64_t now = wall_ns();
  for (Slot& s : slots_) {
    s.ns[static_cast<std::size_t>(s.phase)] += now - s.last_ns;
    s.last_ns = now;
    s.phase = ShardPhase::kIdle;
  }
}

std::vector<ShardProfile> ShardProfiler::profiles() const {
  std::vector<ShardProfile> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    ShardProfile p;
    for (std::size_t i = 0; i < kShardPhaseCount; ++i) p.ns[i] = s.ns[i];
    p.transitions = s.transitions;
    out.push_back(p);
  }
  return out;
}

}  // namespace cni::sim
