#include "sim/engine.hpp"

#include "util/check.hpp"

namespace cni::sim {

EventId Engine::schedule_at(SimTime t, Callback cb) {
  CNI_CHECK_MSG(t >= now_, "cannot schedule an event in the simulated past");
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(cb)});
  return id;
}

void Engine::cancel(EventId id) { cancelled_.insert(id); }

bool Engine::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move out via const_cast, which is safe
    // because we pop immediately and never touch the moved-from element.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    CNI_DCHECK(ev.t >= now_);
    now_ = ev.t;
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    if (queue_.top().t > deadline) break;
    if (!step()) break;
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace cni::sim
