#include "sim/engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cni::sim {

EventId Engine::schedule_at(SimTime t, Callback cb) {
  return schedule_with_seq(t, seq_++, std::move(cb));
}

EventId Engine::schedule_delivery(SimTime t, Callback cb) {
  return schedule_with_seq(t, kDeliverySeqBias + delivery_seq_++, std::move(cb));
}

EventId Engine::schedule_with_seq(SimTime t, std::uint64_t seq, Callback cb) {
  CNI_CHECK_MSG(t >= now_, "cannot schedule an event in the simulated past");
  if (heap_t_.empty()) {
    heap_t_.resize(kPad);
    heap_seq_.resize(kPad);
    heap_slot_.resize(kPad);
  }
  std::uint32_t s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
  } else {
    CNI_CHECK_MSG(slots_.size() < kNpos, "event slot table overflow");
    s = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    pos_.push_back(kNpos);
  }
  Slot& sl = slots_[s];
  sl.cb = std::move(cb);
  heap_t_.push_back(t);
  heap_seq_.push_back(seq);
  heap_slot_.push_back(s);
  ++scheduled_;
  sift_up(static_cast<std::uint32_t>(heap_t_.size() - 1));  // physical index
  return make_id(s, sl.gen);
}

bool Engine::cancel(EventId id) {
  const auto s = static_cast<std::uint32_t>(id >> 32);
  if (s >= slots_.size()) return false;
  Slot& sl = slots_[s];
  if (sl.gen != static_cast<std::uint32_t>(id) || pos_[s] == kNpos) return false;
  const std::uint32_t pos = pos_[s];
  release_slot(s);
  remove_at(pos);
  ++cancelled_;
  return true;
}

void Engine::release_slot(std::uint32_t s) {
  Slot& sl = slots_[s];
  sl.cb.reset();
  pos_[s] = kNpos;
  ++sl.gen;
  free_slots_.push_back(s);
}

void Engine::remove_at(std::uint32_t i) {
  const auto last = static_cast<std::uint32_t>(heap_t_.size() - 1);
  if (i != last) {
    heap_t_[i] = heap_t_[last];
    heap_seq_[i] = heap_seq_[last];
    heap_slot_[i] = heap_slot_[last];
    pos_[heap_slot_[i]] = i;
    heap_t_.pop_back();
    heap_seq_.pop_back();
    heap_slot_.pop_back();
    if (!sift_down(i)) sift_up(i);
  } else {
    heap_t_.pop_back();
    heap_seq_.pop_back();
    heap_slot_.pop_back();
  }
}

void Engine::sift_up(std::uint32_t i) {
  const SimTime t = heap_t_[i];
  const std::uint64_t seq = heap_seq_[i];
  const std::uint32_t slot = heap_slot_[i];
  while (i > kRoot) {
    const std::uint32_t p = i / kFanout + 6;
    if (heap_t_[p] < t || (heap_t_[p] == t && heap_seq_[p] < seq)) break;
    heap_t_[i] = heap_t_[p];
    heap_seq_[i] = heap_seq_[p];
    heap_slot_[i] = heap_slot_[p];
    pos_[heap_slot_[i]] = i;
    i = p;
  }
  heap_t_[i] = t;
  heap_seq_[i] = seq;
  heap_slot_[i] = slot;
  pos_[slot] = i;
}

bool Engine::sift_down(std::uint32_t i) {
  const auto size = static_cast<std::uint32_t>(heap_t_.size());
  const SimTime t = heap_t_[i];
  const std::uint64_t seq = heap_seq_[i];
  const std::uint32_t slot = heap_slot_[i];
  const std::uint32_t start = i;
  for (;;) {
    const std::uint32_t first = kFanout * i - 48;
    if (first >= size) break;
    // Min of the up-to-kFanout children: a scan over the dense time array.
    std::uint32_t best = first;
    const std::uint32_t end = std::min(first + kFanout, size);
    for (std::uint32_t c = first + 1; c < end; ++c) {
      if (heap_t_[c] < heap_t_[best] ||
          (heap_t_[c] == heap_t_[best] && heap_seq_[c] < heap_seq_[best])) {
        best = c;
      }
    }
    if (t < heap_t_[best] || (t == heap_t_[best] && seq < heap_seq_[best])) break;
    heap_t_[i] = heap_t_[best];
    heap_seq_[i] = heap_seq_[best];
    heap_slot_[i] = heap_slot_[best];
    pos_[heap_slot_[i]] = i;
    i = best;
  }
  heap_t_[i] = t;
  heap_seq_[i] = seq;
  heap_slot_[i] = slot;
  pos_[slot] = i;
  return i != start;
}

bool Engine::step() {
  if (empty()) return false;
  const SimTime t = heap_t_[kRoot];
  const std::uint32_t slot = heap_slot_[kRoot];
  CNI_DCHECK(t >= now_);
  now_ = t;
  // Free the slot and restore the heap *before* invoking, so the callback
  // may freely schedule and cancel events.
  Callback cb = std::move(slots_[slot].cb);
  release_slot(slot);
  remove_at(kRoot);
  ++executed_;
  // Pull the next event's slot toward the cache while the callback runs.
  if (!empty()) __builtin_prefetch(&slots_[heap_slot_[kRoot]]);
  cb();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimTime deadline) {
  while (!empty() && heap_t_[kRoot] <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Engine::run_before(SimTime bound) {
  while (!empty() && heap_t_[kRoot] < bound) {
    step();
  }
}

}  // namespace cni::sim
