// Per-node statistics accounts.
//
// The paper's Tables 2–4 break execution time into computation, synch
// overhead (CPU busy in protocol/messaging code) and synch delay (CPU stalled
// waiting on remote events); its figures additionally report the network
// cache hit ratio. Everything needed to regenerate them is accumulated here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cni::sim {

struct NodeStats {
  // ---- Host CPU cycle accounts (166 MHz domain) ----
  std::uint64_t compute_cycles = 0;         ///< application work incl. cache stalls
  std::uint64_t synch_overhead_cycles = 0;  ///< protocol / send / receive / interrupt CPU time
  std::uint64_t synch_delay_cycles = 0;     ///< stalled waiting for remote events

  // ---- Message Cache (the paper's "network cache") ----
  std::uint64_t mcache_tx_lookups = 0;  ///< transmit-side buffer-map probes
  std::uint64_t mcache_tx_hits = 0;     ///< transmissions served from cached buffers
  std::uint64_t mcache_rx_inserts = 0;  ///< receive-caching insertions
  std::uint64_t mcache_evictions = 0;   ///< approximate-LRU evictions
  std::uint64_t mcache_snoop_updates = 0;  ///< bus writes folded into cached buffers

  // ---- NIC / network ----
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t cells_sent = 0;
  std::uint64_t dma_transfers = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t host_interrupts = 0;
  std::uint64_t host_polls = 0;

  // ---- DSM protocol ----
  std::uint64_t read_faults = 0;
  std::uint64_t write_faults = 0;
  std::uint64_t pages_fetched = 0;
  std::uint64_t diffs_created = 0;
  std::uint64_t diffs_applied = 0;
  std::uint64_t write_notices_received = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t barriers = 0;

  void add(const NodeStats& other);

  /// True once at least one transmit-side lookup happened. Hit ratio is
  /// meaningless before then; callers that print ratios should check this
  /// instead of special-casing 0 lookups themselves.
  [[nodiscard]] bool has_lookups() const { return mcache_tx_lookups != 0; }

  /// Transmit hit ratio in percent. 0 when there were no lookups — a node
  /// that never probed the cache has not "hit 100%" of anything, and a NaN
  /// here would poison downstream averages. Gate on has_lookups() to tell
  /// "no traffic" apart from "all misses".
  [[nodiscard]] double tx_hit_ratio_pct() const;

  /// One entry per counter field, in declaration order.
  struct Field {
    const char* name;             ///< dotted metric name, e.g. "mcache.tx_hits"
    std::uint64_t NodeStats::* member;
  };
  /// The full counter schema. add() and every serializer iterate this table,
  /// so adding a field here is the single step that propagates it to the
  /// aggregates, the metrics registry and the machine-readable reports.
  [[nodiscard]] static const std::vector<Field>& fields();
};

/// One account per simulated node plus whole-run metadata.
class StatsRegistry {
 public:
  explicit StatsRegistry(std::size_t nodes) : nodes_(nodes) {}

  [[nodiscard]] NodeStats& node(std::size_t i) { return nodes_.at(i); }
  [[nodiscard]] const NodeStats& node(std::size_t i) const { return nodes_.at(i); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Sum over all nodes.
  [[nodiscard]] NodeStats total() const;

  /// Transmit hit ratio over all nodes, in percent.
  [[nodiscard]] double tx_hit_ratio_pct() const { return total().tx_hit_ratio_pct(); }

 private:
  std::vector<NodeStats> nodes_;
};

}  // namespace cni::sim
