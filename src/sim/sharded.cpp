#include "sim/sharded.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "sim/shard_profiler.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/thread_annotations.hpp"
#include "util/units.hpp"

namespace cni::sim {

ShardPlan ShardPlan::balanced(std::uint32_t nodes, std::uint32_t shards) {
  ShardPlan p;
  p.nodes = nodes;
  const std::uint32_t cap = nodes == 0 ? 1 : nodes;
  p.shards = shards < 1 ? 1 : (shards > cap ? cap : shards);
  return p;
}

std::uint32_t ShardPlan::shard_of(std::uint32_t node) const {
  CNI_DCHECK(node < nodes);
  const std::uint32_t base = nodes / shards;
  const std::uint32_t rem = nodes % shards;
  const std::uint32_t cut = (base + 1) * rem;  // nodes below cut sit in big shards
  if (node < cut) return node / (base + 1);
  return rem + (node - cut) / base;
}

std::uint32_t ShardPlan::count(std::uint32_t shard) const {
  CNI_DCHECK(shard < shards);
  return nodes / shards + (shard < nodes % shards ? 1 : 0);
}

bool ShardPlan::aligned() const {
  // Equal blocks of power-of-two size: block s is [s*B, (s+1)*B) with B a
  // power of two, so each block is exactly one upper-bits address class of
  // the banyan's port space and the butterfly disjointness argument in the
  // header applies. (shards itself need not be a power of two.)
  return nodes > 0 && nodes % shards == 0 && util::is_pow2(nodes / shards);
}

SimTime next_epoch_end(std::span<const SimTime> t_next, const LookaheadMatrix& la,
                       SimTime pending_min, const EpochParams& p) {
  CNI_DCHECK(t_next.size() == la.shards);
  SimTime best = sat_add(pending_min, p.pending_bound);
  for (std::uint32_t r = 0; r < la.shards; ++r) {
    if (t_next[r] == kNever) continue;  // no pending events: cannot emit traffic
    const SimTime bound = sat_add(t_next[r], la.out_bound(r));
    best = bound < best ? bound : best;
  }
  return best;
}

namespace {

/// Logger time hook for worker threads: stamps with the shard's clock.
std::uint64_t shard_now(void* ctx) { return static_cast<Engine*>(ctx)->now(); }

/// Progress word value meaning "this shard executes nothing more this epoch".
constexpr std::uint64_t kIdleWord = ~0ull;

/// First sub-window whose local drain limit (start + drain_horizon) exceeds
/// head `h`: the window at which the owning shard routes that transfer.
std::uint64_t route_window(SimTime base, SimDuration window, SimDuration horizon,
                           SimTime h) {
  if (h < sat_add(base, horizon)) return 0;
  return (h - base - horizon) / window + 1;
}

/// Shared body of one shard's fused epoch (run by workers and, for shard 0,
/// by the coordinator). Sub-window j covers [start(j), start(j) + W). The
/// protocol per window:
///
///   1. publish a truthful skip to the first window holding any of our work
///      (an event to execute, or a local transfer to route);
///   2. wait until every peer's progress word >= j — peers then never again
///      execute events below start(j), so (a) any send they still make is
///      recorded with window >= j and (b) every local head < start(j) +
///      drain_horizon is final;
///   3. stop (without running) if the ledger's stop window <= j: the
///      earliest recorded send's delivery can land at or after start(j),
///      so the epoch must close with a real barrier drain first;
///   4. route our own final local heads, run our events below start(j+1),
///      publish progress j+1.
///
/// Step 2's acquire on each peer word pairs with the release in
/// publish-progress, which in program order follows every note_send of that
/// peer's windows < j: entering a window implies seeing every send that
/// could stop it. Deliveries routed in step 4 land at or after start(j)
/// (head >= start(j-1) + drain_horizon, plus the pending bound, spans one
/// full window), never into an already-executed range.
template <typename WaitPeers, typename Publish>
void fused_shard_loop(Engine& eng, std::uint32_t shard, const FusedHooks& hooks,
                      SimDuration drain_horizon, WaitPeers&& wait_peers,
                      Publish&& publish, ShardProfiler* prof) {
  FusionLedger& led = *hooks.ledger;
  const SimTime base = led.base();
  const SimDuration w = led.window();
  std::uint64_t completed = 0;
  for (;;) {
    const SimTime t_ev = eng.next_time();
    const SimTime h_loc = hooks.local_min(shard);
    if (t_ev == kNever && h_loc == kNever) {
      if (prof != nullptr) prof->transition(shard, ShardPhase::kIdle);
      publish(kIdleWord);
      return;
    }
    std::uint64_t need = kIdleWord;
    if (t_ev != kNever) need = led.window_of(t_ev);
    if (h_loc != kNever) {
      const std::uint64_t r = route_window(base, w, drain_horizon, h_loc);
      need = r < need ? r : need;
    }
    std::uint64_t j = completed;
    if (need > j) {
      publish(completed = need);
      j = need;
    }
    if (prof != nullptr) prof->transition(shard, ShardPhase::kFusedWindow);
    wait_peers(j);
    if (led.stop_window() <= j) {
      if (prof != nullptr) prof->transition(shard, ShardPhase::kIdle);
      publish(kIdleWord);
      return;
    }
    const SimTime start_j = base + j * w;
    if (prof != nullptr) prof->transition(shard, ShardPhase::kDrain);
    hooks.local_drain(shard, start_j + drain_horizon);
    if (prof != nullptr) prof->transition(shard, ShardPhase::kBusy);
    eng.run_before(start_j + w);
    publish(completed = j + 1);
  }
}

/// Coordinator/worker crew for the epoch loop. Commands are published with a
/// single release on a generation word (the sense-reversing barrier's flag,
/// generalized to a counter so it doubles as the epoch id); workers wake on
/// it, run their shard, and each store the generation into a private, cache-
/// line-padded arrival word (release). The coordinator scans the arrival
/// words (acquire): those two edges are the happens-before making every
/// piece of per-epoch state — fabric outboxes and local queues, engine
/// heaps, pooled frame buffers crossing shards — race-free without locks,
/// and no shard ever contends a shared counter cacheline at the barrier.
///
/// Normal epochs in which no shard but 0 has work below the bound skip the
/// rendezvous entirely: the coordinator runs shard 0 inline while the
/// workers stay parked in atomic::wait. Reading a parked shard's engine is
/// safe: its worker is quiescent and the last rendezvous (or thread
/// creation) ordered its writes before ours.
///
/// Fused epochs are one crew round whose body is fused_shard_loop: shards
/// synchronize among themselves through the padded progress words and meet
/// at a single closing barrier, however many sub-windows the epoch spanned.
///
/// Two protocol roles, reified as util::Capability so Clang's thread-safety
/// analysis checks the ownership discipline at compile time (DESIGN.md §13):
///
///   barrier_cap_  the coordinator role. Held exclusively by the
///                 constructing thread for the crew's whole lifetime (the
///                 constructor acquires, the destructor releases); workers
///                 take it *shared* for the span of one command, which is
///                 what licenses their reads of the command payload.
///   shard_cap_    the executing-shard role: whoever is running one shard's
///                 events right now. Workers acquire it per command; the
///                 coordinator acquires it around its inline shard-0 runs.
class EpochCrew {
 public:
  enum class Cmd : std::uint8_t { kNormal, kFused, kStop };

  EpochCrew(std::span<Engine* const> engines, const FusedHooks& hooks,
            const EpochParams& params, EpochStats* stats,
            ShardProfiler* prof) CNI_ACQUIRE(barrier_cap_)
      : engines_(engines),
        hooks_(hooks),
        drain_horizon_(params.drain_horizon),
        prev_events_(engines.size(), 0),
        errors_(engines.size()),
        arrivals_(engines.size()),
        progress_(engines.size()),
        stats_(stats),
        prof_(prof) {
    threads_.reserve(engines.size() - 1);
    for (std::size_t s = 1; s < engines.size(); ++s) {
      threads_.emplace_back([this, s] { worker(s); });
    }
  }

  ~EpochCrew() CNI_RELEASE(barrier_cap_) {
    publish_cmd(Cmd::kStop, 0);
    for (std::thread& t : threads_) t.join();
  }

  /// One normal (single-window) epoch: every shard runs its events below
  /// `bound`, then barriers. Returns false when any shard raised.
  bool run_epoch(SimTime bound) CNI_REQUIRES(barrier_cap_) {
    bool remote_work = false;
    for (std::size_t s = 1; s < engines_.size(); ++s) {
      if (engines_[s]->next_time() < bound) {
        remote_work = true;
        break;
      }
    }
    if (remote_work) {
      const std::uint64_t g = publish_cmd(Cmd::kNormal, bound);
      shard_cap_.acquire();  // the coordinator doubles as shard 0's executor
      if (prof_ != nullptr) prof_->transition(0, ShardPhase::kBusy);
      run_shard(0, bound);
      if (prof_ != nullptr) prof_->transition(0, ShardPhase::kBarrierWait);
      shard_cap_.release();
      await_workers(g);
      if (prof_ != nullptr) prof_->transition(0, ShardPhase::kIdle);
      if (stats_ != nullptr) ++stats_->barriers;
    } else {
      // Workers stay parked: the last rendezvous (or thread creation)
      // ordered their shard state before us, so running shard 0 inline
      // still holds the executor role legitimately.
      shard_cap_.acquire();
      if (prof_ != nullptr) prof_->transition(0, ShardPhase::kBusy);
      run_shard(0, bound);
      if (prof_ != nullptr) prof_->transition(0, ShardPhase::kIdle);
      shard_cap_.release();
    }
    account_epoch(false);
    return !any_error();
  }

  /// One fused epoch (the ledger must be freshly reset). Returns false when
  /// any shard raised; otherwise *stop_out is the deterministic stop window
  /// (kNoStop when the epoch ran everything dry).
  bool run_fused(std::uint64_t* stop_out) CNI_REQUIRES(barrier_cap_) {
    // relaxed: the progress re-arm is published to workers by publish_cmd's
    // generation release, never read before it.
    for (Word& p : progress_) p.v.store(0, std::memory_order_relaxed);
    const std::uint64_t g = publish_cmd(Cmd::kFused, 0);
    shard_cap_.acquire();  // coordinator executes shard 0's fused loop inline
    run_fused_shard(0);
    if (prof_ != nullptr) prof_->transition(0, ShardPhase::kBarrierWait);
    shard_cap_.release();
    await_workers(g);
    if (prof_ != nullptr) prof_->transition(0, ShardPhase::kIdle);
    if (stats_ != nullptr) ++stats_->barriers;
    account_epoch(true);
    *stop_out = hooks_.ledger->stop_window();
    return !any_error();
  }

  /// First error in shard order — deterministic regardless of which worker
  /// hit its exception first on the wall clock.
  [[nodiscard]] std::exception_ptr first_error() const
      CNI_REQUIRES_SHARED(barrier_cap_) {
    for (const std::exception_ptr& e : errors_) {
      if (e != nullptr) return e;
    }
    return nullptr;
  }

 private:
  struct alignas(64) Word {
    std::atomic<std::uint64_t> v{0};
  };

  [[nodiscard]] bool any_error() const CNI_REQUIRES_SHARED(barrier_cap_) {
    return first_error() != nullptr;
  }

  /// Coordinator-side: writes the command payload, then releases it with one
  /// generation bump. Only called while every worker is parked (before the
  /// first epoch, or after await_workers), so the plain payload fields are
  /// ordered by the release/acquire pair on gen_.
  std::uint64_t publish_cmd(Cmd cmd, SimTime bound) CNI_REQUIRES(barrier_cap_) {
    cmd_ = cmd;
    bound_ = bound;
    // release: publishes cmd_/bound_ (and all pre-epoch state) to the
    // workers' matching acquire on gen_.
    const std::uint64_t g = gen_.fetch_add(1, std::memory_order_release) + 1;
    gen_.notify_all();
    return g;
  }

  void await_workers(std::uint64_t g) CNI_REQUIRES(barrier_cap_) {
    for (std::size_t s = 1; s < engines_.size(); ++s) {
      std::atomic<std::uint64_t>& word = arrivals_[s].v;
      for (std::uint32_t spins = 0;; ++spins) {
        // acquire: pairs with the worker's arrival release, making its whole
        // epoch of shard state visible to the coordinator.
        const std::uint64_t got = word.load(std::memory_order_acquire);
        if (got == g) break;
        if (spins > 1024) word.wait(got, std::memory_order_acquire);
      }
    }
  }

  void worker(std::size_t shard) {
    const util::ScopedLogTime log_time(&shard_now, engines_[shard]);
    std::uint64_t seen = 0;
    for (;;) {
      std::uint32_t spins = 0;
      std::uint64_t g;
      // acquire: pairs with publish_cmd's release — observing a new
      // generation is what grants this worker the command payload (shared)
      // and its own shard's state (exclusive) for this round.
      while ((g = gen_.load(std::memory_order_acquire)) == seen) {
        if (++spins > 1024) gen_.wait(seen, std::memory_order_acquire);
      }
      seen = g;
      barrier_cap_.acquire_shared();  // command payload readable this round
      const Cmd cmd = cmd_;
      if (cmd == Cmd::kStop) {
        barrier_cap_.release_shared();
        return;
      }
      shard_cap_.acquire();  // our shard's engine/error slot is ours now
      const auto sh = static_cast<std::uint32_t>(shard);
      if (cmd == Cmd::kNormal) {
        if (prof_ != nullptr) prof_->transition(sh, ShardPhase::kBusy);
        run_shard(shard, bound_);
        if (prof_ != nullptr) prof_->transition(sh, ShardPhase::kIdle);
      } else {
        run_fused_shard(shard);  // the fused loop drives its own transitions
      }
      shard_cap_.release();
      barrier_cap_.release_shared();
      // release: hands everything this shard touched back to the
      // coordinator's await_workers acquire.
      arrivals_[shard].v.store(seen, std::memory_order_release);
      arrivals_[shard].v.notify_all();
    }
  }

  void run_shard(std::size_t shard, SimTime bound) CNI_REQUIRES(shard_cap_) {
    if (errors_[shard] != nullptr) return;  // poisoned: idle until shutdown
    try {
      engines_[shard]->run_before(bound);
    } catch (...) {
      errors_[shard] = std::current_exception();
    }
  }

  void run_fused_shard(std::size_t shard) CNI_REQUIRES(shard_cap_) {
    if (errors_[shard] != nullptr) {
      publish_progress(shard, kIdleWord);
      return;
    }
    const auto sh = static_cast<std::uint32_t>(shard);
    try {
      fused_shard_loop(
          *engines_[shard], sh, hooks_, drain_horizon_,
          [this, shard](std::uint64_t j) {
            // Runs on the owning shard's thread inside run_fused_shard.
            shard_cap_.assert_held();
            wait_peers(shard, j);
          },
          [this, shard](std::uint64_t c) {
            shard_cap_.assert_held();  // same context as the wait hook
            publish_progress(shard, c);
          },
          prof_);
    } catch (...) {
      errors_[shard] = std::current_exception();
      // Abort path: stop peers at the next window they enter and unblock
      // anyone waiting on our progress. Determinism no longer matters — the
      // run rethrows — only prompt, deadlock-free termination does.
      hooks_.ledger->note_send(hooks_.ledger->base());
      publish_progress(shard, kIdleWord);
    }
  }

  void wait_peers(std::size_t self, std::uint64_t j) CNI_REQUIRES(shard_cap_) {
    for (std::size_t p = 0; p < progress_.size(); ++p) {
      if (p == self) continue;
      std::atomic<std::uint64_t>& word = progress_[p].v;
      for (std::uint32_t spins = 0;; ++spins) {
        // acquire: pairs with the peer's progress release; entering window j
        // therefore observes every send its windows < j recorded.
        const std::uint64_t c = word.load(std::memory_order_acquire);
        if (c >= j) break;
        if (spins > 1024) word.wait(c, std::memory_order_acquire);
      }
    }
  }

  void publish_progress(std::size_t shard, std::uint64_t completed)
      CNI_REQUIRES(shard_cap_) {
    std::atomic<std::uint64_t>& word = progress_[shard].v;
    // release: follows this window's note_send calls in program order, so a
    // peer's acquire of this word sees every send that could stop it.
    word.store(completed, std::memory_order_release);
    word.notify_all();
  }

  /// Coordinator-side: every engine is quiescent at the barrier, so the
  /// per-epoch deltas (and the busiest shard) are computed race-free here.
  void account_epoch(bool fused) CNI_REQUIRES(barrier_cap_) {
    if (stats_ == nullptr) return;
    ++stats_->epochs;
    if (fused) ++stats_->fused_epochs;
    std::uint64_t busiest = 0;
    for (std::size_t s = 0; s < engines_.size(); ++s) {
      const std::uint64_t total = engines_[s]->events_executed();
      const std::uint64_t n = total - prev_events_[s];
      prev_events_[s] = total;
      stats_->events_total += n;
      busiest = n > busiest ? n : busiest;
    }
    stats_->critical_path_events += busiest;
  }

  /// Coordinator role (see class comment). Declared first so the guarded
  /// members below may reference it.
  util::Capability barrier_cap_;
  /// Executing-shard role (see class comment).
  util::Capability shard_cap_;

  std::span<Engine* const> engines_;
  FusedHooks hooks_;
  SimDuration drain_horizon_;
  /// Coordinator-only (see account_epoch).
  std::vector<std::uint64_t> prev_events_ CNI_GUARDED_BY(barrier_cap_);
  // Per-shard slots: element s written under shard s's executor role, read
  // by the coordinator at barriers (per-element guarding is beyond the
  // annotation language; the REQUIRES on run_shard/first_error carry it).
  std::vector<std::exception_ptr> errors_;
  std::vector<Word> arrivals_;  // per-shard padded barrier arrival words
  std::vector<Word> progress_;  // per-shard padded fused-window progress
  EpochStats* stats_ CNI_PT_GUARDED_BY(barrier_cap_);
  /// Null when profiling is off. Each shard thread calls transition() only
  /// on its own padded slot, so no guarding capability is needed.
  ShardProfiler* prof_;
  std::atomic<std::uint64_t> gen_{0};
  // Command payload: written by the coordinator only while workers are
  // parked, read by workers after the acquire on gen_ — plain fields.
  Cmd cmd_ CNI_GUARDED_BY(barrier_cap_) = Cmd::kNormal;
  SimTime bound_ CNI_GUARDED_BY(barrier_cap_) = 0;
  std::vector<std::thread> threads_;
};

/// K = 1 degenerates to the same epoch/fusion algorithm with no threads, no
/// atomics and no barrier cost — fused epochs become a plain sub-window loop
/// (drain own locals, run one window) and normal epochs the classic
/// drain/run cycle. This is what keeps single-shard runs within noise of —
/// now measurably ahead of — the legacy sequential engine.
void run_epochs_inline(Engine& engine, const EpochParams& params, const FusedHooks& hooks,
                       util::FunctionRef<SimTime(SimTime)> drain, EpochStats* stats,
                       ShardProfiler* prof) {
  SimTime epoch_end = 0;
  for (;;) {
    if (prof != nullptr) prof->transition(0, ShardPhase::kDrain);
    const SimTime pending_min = drain(sat_add(epoch_end, params.drain_horizon));
    if (prof != nullptr) prof->transition(0, ShardPhase::kIdle);
    const SimTime t_min = engine.next_time();
    if (t_min == kNever && pending_min == kNever) return;
    const std::uint64_t before = engine.events_executed();
    if (hooks.ledger != nullptr && pending_min == kNever) {
      FusionLedger& led = *hooks.ledger;
      led.reset(t_min, params.lookahead);
      fused_shard_loop(engine, 0, hooks, params.drain_horizon,
                       [](std::uint64_t) {}, [](std::uint64_t) {}, prof);
      const std::uint64_t stop = led.stop_window();
      if (stop != FusionLedger::kNoStop) {
        epoch_end = sat_add(led.base(), stop * led.window());
      }
      if (stats != nullptr) {
        const std::uint64_t n = engine.events_executed() - before;
        ++stats->epochs;
        ++stats->fused_epochs;
        stats->events_total += n;
        stats->critical_path_events += n;
      }
    } else {
      const SimTime next = next_epoch_end(t_min, pending_min, params);
      CNI_CHECK_MSG(next > epoch_end, "epoch scheduler failed to advance");
      if (prof != nullptr) prof->transition(0, ShardPhase::kBusy);
      engine.run_before(next);
      if (prof != nullptr) prof->transition(0, ShardPhase::kIdle);
      if (stats != nullptr) {
        const std::uint64_t n = engine.events_executed() - before;
        ++stats->epochs;
        stats->events_total += n;
        stats->critical_path_events += n;
      }
      epoch_end = next;
    }
  }
}

}  // namespace

void run_epochs(std::span<Engine* const> engines, const EpochParams& params,
                const LookaheadMatrix* matrix, const FusedHooks& hooks,
                util::FunctionRef<SimTime(SimTime)> drain, EpochStats* stats,
                ShardProfiler* prof) {
  CNI_CHECK_MSG(!engines.empty(), "run_epochs needs at least one shard");
  CNI_CHECK_MSG(params.lookahead > 0 && params.drain_horizon > 0 && params.pending_bound > 0,
                "epoch margins must be positive for the scheduler to advance");
  if (prof != nullptr && !prof->enabled()) prof = nullptr;
  if (engines.size() == 1) {
    run_epochs_inline(*engines[0], params, hooks, drain, stats, prof);
    return;
  }
  EpochCrew crew(engines, hooks, params, stats, prof);
  std::vector<SimTime> t_next(engines.size(), kNever);
  SimTime epoch_end = 0;
  for (;;) {
    if (prof != nullptr) prof->transition(0, ShardPhase::kDrain);
    const SimTime pending_min = drain(sat_add(epoch_end, params.drain_horizon));
    if (prof != nullptr) prof->transition(0, ShardPhase::kIdle);
    SimTime t_min = kNever;
    for (std::size_t s = 0; s < engines.size(); ++s) {
      t_next[s] = engines[s]->next_time();
      t_min = t_next[s] < t_min ? t_next[s] : t_min;
    }
    if (t_min == kNever && pending_min == kNever) return;
    if (hooks.ledger != nullptr && pending_min == kNever) {
      // Nothing is buffered anywhere (drain just flushed local queues too):
      // fuse. The epoch ends at the deterministic stop window — or runs the
      // whole remaining simulation if no shard ever needs the global merge.
      hooks.ledger->reset(t_min, params.lookahead);
      std::uint64_t stop = FusionLedger::kNoStop;
      if (!crew.run_fused(&stop)) break;
      if (stop != FusionLedger::kNoStop) {
        epoch_end = sat_add(t_min, stop * params.lookahead);
      }
      continue;
    }
    const SimTime next = matrix != nullptr
                             ? next_epoch_end(t_next, *matrix, pending_min, params)
                             : next_epoch_end(t_min, pending_min, params);
    CNI_CHECK_MSG(next > epoch_end, "epoch scheduler failed to advance");
    if (!crew.run_epoch(next)) break;
    epoch_end = next;
  }
  std::exception_ptr err = crew.first_error();
  CNI_DCHECK(err != nullptr);
  std::rethrow_exception(err);
}

}  // namespace cni::sim
