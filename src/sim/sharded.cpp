#include "sim/sharded.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/log.hpp"

namespace cni::sim {

ShardPlan ShardPlan::balanced(std::uint32_t nodes, std::uint32_t shards) {
  ShardPlan p;
  p.nodes = nodes;
  const std::uint32_t cap = nodes == 0 ? 1 : nodes;
  p.shards = shards < 1 ? 1 : (shards > cap ? cap : shards);
  return p;
}

std::uint32_t ShardPlan::shard_of(std::uint32_t node) const {
  CNI_DCHECK(node < nodes);
  const std::uint32_t base = nodes / shards;
  const std::uint32_t rem = nodes % shards;
  const std::uint32_t cut = (base + 1) * rem;  // nodes below cut sit in big shards
  if (node < cut) return node / (base + 1);
  return rem + (node - cut) / base;
}

std::uint32_t ShardPlan::count(std::uint32_t shard) const {
  CNI_DCHECK(shard < shards);
  return nodes / shards + (shard < nodes % shards ? 1 : 0);
}

namespace {

/// Logger time hook for worker threads: stamps with the shard's clock.
std::uint64_t shard_now(void* ctx) { return static_cast<Engine*>(ctx)->now(); }

/// Coordinator/worker rendezvous for the epoch loop. The coordinator
/// publishes the next window bound and bumps the generation (release);
/// workers wake on the generation (acquire), run their shard, and count in
/// (release); the coordinator waits until all counted in (acquire). Those
/// two edges are the happens-before that makes every piece of per-epoch
/// state — fabric outboxes, engine heaps, pooled frame buffers crossing
/// shards — race-free without any per-object locking.
///
/// Epochs in which no shard but 0 has work below the bound skip the
/// rendezvous entirely: the coordinator runs shard 0 inline while the
/// workers stay parked in atomic::wait. Serialized phases of a workload
/// (e.g. a DSM barrier draining through one node) therefore cost the same
/// as the K = 1 inline path instead of K - 1 futex round-trips per window.
/// Reading a parked shard's engine is safe: its worker is quiescent and the
/// last rendezvous (or thread creation) ordered its writes before ours.
class EpochCrew {
 public:
  EpochCrew(std::span<Engine* const> engines, EpochStats* stats)
      : engines_(engines),
        prev_events_(engines.size(), 0),
        errors_(engines.size()),
        stats_(stats) {
    threads_.reserve(engines.size() - 1);
    for (std::size_t s = 1; s < engines.size(); ++s) {
      threads_.emplace_back([this, s] { worker(s); });
    }
  }

  ~EpochCrew() {
    stop_.store(true, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    gen_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Runs one epoch on every shard that has work (shard 0 inline) and
  /// barriers. Returns false when any shard raised; the run must then stop.
  bool run_epoch(SimTime bound) {
    bool remote_work = false;
    for (std::size_t s = 1; s < engines_.size(); ++s) {
      if (engines_[s]->next_time() < bound) {
        remote_work = true;
        break;
      }
    }
    if (remote_work) {
      bound_.store(bound, std::memory_order_relaxed);
      arrived_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_release);
      gen_.notify_all();
      run_shard(0, bound);
      const auto target = static_cast<std::uint32_t>(engines_.size() - 1);
      for (std::uint32_t spins = 0;; ++spins) {
        const std::uint32_t got = arrived_.load(std::memory_order_acquire);
        if (got == target) break;
        if (spins > 1024) arrived_.wait(got, std::memory_order_acquire);
      }
    } else {
      run_shard(0, bound);
    }
    account_epoch();
    for (const std::exception_ptr& e : errors_) {
      if (e != nullptr) return false;
    }
    return true;
  }

  /// First error in shard order — deterministic regardless of which worker
  /// hit its exception first on the wall clock.
  [[nodiscard]] std::exception_ptr first_error() const {
    for (const std::exception_ptr& e : errors_) {
      if (e != nullptr) return e;
    }
    return nullptr;
  }

 private:
  void worker(std::size_t shard) {
    const util::ScopedLogTime log_time(&shard_now, engines_[shard]);
    std::uint64_t seen = 0;
    for (;;) {
      std::uint32_t spins = 0;
      std::uint64_t g;
      while ((g = gen_.load(std::memory_order_acquire)) == seen) {
        if (++spins > 1024) gen_.wait(seen, std::memory_order_acquire);
      }
      seen = g;
      if (stop_.load(std::memory_order_relaxed)) return;
      run_shard(shard, bound_.load(std::memory_order_relaxed));
      arrived_.fetch_add(1, std::memory_order_release);
      arrived_.notify_one();
    }
  }

  void run_shard(std::size_t shard, SimTime bound) {
    if (errors_[shard] != nullptr) return;  // poisoned: idle until shutdown
    try {
      engines_[shard]->run_before(bound);
    } catch (...) {
      errors_[shard] = std::current_exception();
    }
  }

  /// Coordinator-side: every engine is quiescent at the barrier, so the
  /// per-epoch deltas (and the busiest shard) are computed race-free here.
  void account_epoch() {
    if (stats_ == nullptr) return;
    ++stats_->epochs;
    std::uint64_t busiest = 0;
    for (std::size_t s = 0; s < engines_.size(); ++s) {
      const std::uint64_t total = engines_[s]->events_executed();
      const std::uint64_t n = total - prev_events_[s];
      prev_events_[s] = total;
      stats_->events_total += n;
      busiest = n > busiest ? n : busiest;
    }
    stats_->critical_path_events += busiest;
  }

  std::span<Engine* const> engines_;
  std::vector<std::uint64_t> prev_events_;  // coordinator-only, see account_epoch
  std::vector<std::exception_ptr> errors_;
  EpochStats* stats_;
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<SimTime> bound_{0};
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

/// K = 1 degenerates to the same epoch/drain algorithm with no threads, no
/// atomics and no barrier cost — the canonical schedule is identical, only
/// the execution is inline. This is what keeps single-shard runs within
/// noise of the legacy sequential engine.
void run_epochs_inline(Engine& engine, const EpochParams& params,
                       util::FunctionRef<SimTime(SimTime)> drain, EpochStats* stats) {
  SimTime epoch_end = 0;
  for (;;) {
    const SimTime pending_min = drain(sat_add(epoch_end, params.drain_horizon));
    const SimTime t_min = engine.next_time();
    if (t_min == kNever && pending_min == kNever) return;
    const SimTime next = next_epoch_end(t_min, pending_min, params);
    CNI_CHECK_MSG(next > epoch_end, "epoch scheduler failed to advance");
    const std::uint64_t before = engine.events_executed();
    engine.run_before(next);
    if (stats != nullptr) {
      const std::uint64_t n = engine.events_executed() - before;
      ++stats->epochs;
      stats->events_total += n;
      stats->critical_path_events += n;
    }
    epoch_end = next;
  }
}

}  // namespace

void run_epochs(std::span<Engine* const> engines, const EpochParams& params,
                util::FunctionRef<SimTime(SimTime)> drain, EpochStats* stats) {
  CNI_CHECK_MSG(!engines.empty(), "run_epochs needs at least one shard");
  CNI_CHECK_MSG(params.lookahead > 0 && params.drain_horizon > 0 && params.pending_bound > 0,
                "epoch margins must be positive for the scheduler to advance");
  if (engines.size() == 1) {
    run_epochs_inline(*engines[0], params, drain, stats);
    return;
  }
  EpochCrew crew(engines, stats);
  SimTime epoch_end = 0;
  for (;;) {
    const SimTime pending_min = drain(sat_add(epoch_end, params.drain_horizon));
    SimTime t_min = kNever;
    for (Engine* const e : engines) {
      const SimTime t = e->next_time();
      t_min = t < t_min ? t : t_min;
    }
    if (t_min == kNever && pending_min == kNever) return;
    const SimTime next = next_epoch_end(t_min, pending_min, params);
    CNI_CHECK_MSG(next > epoch_end, "epoch scheduler failed to advance");
    if (!crew.run_epoch(next)) break;
    epoch_end = next;
  }
  std::exception_ptr err = crew.first_error();
  CNI_DCHECK(err != nullptr);
  std::rethrow_exception(err);
}

}  // namespace cni::sim
