// Cooperative simulated threads (Proteus-style direct execution).
//
// Each simulated node's program runs as real C++ code on its own fiber
// (ucontext), but exactly one entity — the event engine or a single
// SimThread — executes at any instant. Control passes engine -> thread when
// a resume event fires and thread -> engine when the thread delays, blocks,
// or finishes. This gives execution-driven simulation: computation runs
// natively and is *charged* to the simulated clock via delay()/LocalClock,
// while every communication or synchronisation point yields to the engine.
//
// Fibers rather than OS threads keep a context switch at ~100 ns, which
// matters: a fine-grained DSM run performs millions of simulated blocking
// operations. Because execution is strictly serialized, code running inside
// SimThreads may freely touch shared simulator state without atomics.
#pragma once

#include <ucontext.h>

#include <csetjmp>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace cni::sim {

class SimThread {
 public:
  // cni-lint: allow(hot-path-alloc): a SimThread body is constructed once
  // per simulated thread at setup, never on the per-event path; bodies are
  // large app closures for which InlineFn's 48-byte buffer is no win.
  using Body = std::function<void(SimThread&)>;

  /// Default fiber stack size. Application kernels keep big data on the
  /// heap; half a megabyte leaves ample headroom for library frames.
  static constexpr std::size_t kStackBytes = 512 * 1024;

  /// Creates the thread and schedules its first run at `start`.
  /// `stack_bytes` sizes the fiber stack (0 = kStackBytes) — a host-memory
  /// knob for wide runs (4096 barrier-only nodes at the default half-MB
  /// would need 2 GB of stacks); simulated results never depend on it.
  SimThread(Engine& engine, std::string name, Body body, SimTime start = 0,
            std::size_t stack_bytes = 0);

  /// A finished fiber is simply freed. An unfinished one (abandoned
  /// simulation, e.g. a failing test) is also freed — its stack objects are
  /// not unwound, which is acceptable for an abandoned run.
  ~SimThread() = default;

  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  // ---- Calls made from inside the thread body ----

  /// Advances this thread's simulated time by `dt`, yielding to the engine so
  /// other work scheduled in [now, now+dt] runs first. A delaying thread must
  /// not be woken; it resumes by itself.
  void delay(SimDuration dt);

  /// Blocks until some event calls wake(). Spurious wakeups do not occur;
  /// callers should still use the condition-loop idiom via sync primitives.
  void block();

  // ---- Calls made from engine events or other threads ----

  /// Schedules this thread to resume at the current simulated time. The
  /// thread must be parked in block(). Idempotent within one instant.
  void wake();

  /// As wake(), but resumes at absolute time `t`.
  void wake_at(SimTime t);

  [[nodiscard]] bool finished() const { return state_ == State::kFinished; }
  [[nodiscard]] bool blocked() const { return state_ == State::kBlocked; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Engine& engine() { return engine_; }

  /// The SimThread whose body is executing on the calling OS thread, or
  /// nullptr when the engine (or no simulation) is running. One slot per OS
  /// thread: parallel sweep jobs and shard workers each track their own.
  [[nodiscard]] static SimThread* current();

 private:
  enum class State {
    kIdle,      // created, waiting for the engine to hand over control
    kRunning,   // body executing
    kDelaying,  // parked in delay(); resumes via its own timer
    kBlocked,   // parked in block(); resumes via wake()
    kFinished,  // body returned
  };

  static void trampoline();

  /// Engine-side: gives the CPU to the body and waits until it yields back.
  void resume_from_engine();

  /// Thread-side: yields back to the engine, leaving state_ = s.
  void yield_to_engine(State s);

  Engine& engine_;
  std::string name_;
  Body body_;
  State state_ = State::kIdle;
  bool wake_pending_ = false;  // a wake event is already scheduled
  bool started_ = false;       // first entry must build the stack via ucontext
  std::exception_ptr error_;
  std::vector<char> stack_;
  ucontext_t fiber_{};
  ucontext_t engine_ctx_{};
  // Fast-path switch state: after the ucontext first entry, engine<->fiber
  // transfers go through _setjmp/_longjmp, which — unlike glibc swapcontext —
  // perform no sigprocmask system call. ~2x on the switch microbenchmark.
  std::jmp_buf fiber_jmp_{};   // set at yield; target of the next resume
  std::jmp_buf engine_jmp_{};  // set at resume; target of the next yield
};

/// Accumulates cycle charges locally (Proteus local clock) and converts them
/// into a single delay() at synchronisation points. Keeping charges local
/// means the hot path of a simulated memory access is just an add.
class LocalClock {
 public:
  explicit LocalClock(Clock domain) : domain_(domain) {}

  void charge_cycles(std::uint64_t cycles) { pending_cycles_ += cycles; }
  void charge_time(SimDuration d) { pending_extra_ += d; }

  [[nodiscard]] std::uint64_t pending_cycles() const { return pending_cycles_; }
  [[nodiscard]] SimDuration pending() const {
    return domain_.cycles(pending_cycles_) + pending_extra_;
  }
  [[nodiscard]] const Clock& domain() const { return domain_; }

  /// Converts all pending charge into simulated delay on `thread`.
  void sync(SimThread& thread) {
    const SimDuration d = pending();
    pending_cycles_ = 0;
    pending_extra_ = 0;
    if (d > 0) thread.delay(d);
  }

 private:
  Clock domain_;
  std::uint64_t pending_cycles_ = 0;
  SimDuration pending_extra_ = 0;
};

}  // namespace cni::sim
