// Network frames.
//
// A Frame is what one AAL5-style SAR unit reassembles at the receiver: a
// contiguous byte payload whose first bytes form the demultiplexing header
// the PATHFINDER classifies on. Frames carry real data (DSM pages, diffs,
// application messages); timing is computed by the fabric and NIC models.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace cni::atm {

using NodeId = std::uint32_t;

struct Frame {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t vci = 0;  ///< virtual circuit id (coarse demux, per OSIRIS)
  std::vector<std::byte> payload;

  [[nodiscard]] std::uint64_t size() const { return payload.size(); }

  [[nodiscard]] std::span<const std::byte> bytes() const { return payload; }

  /// Reads a trivially-copyable header of type T from the payload front.
  template <typename T>
  [[nodiscard]] T header() const {
    static_assert(std::is_trivially_copyable_v<T>);
    CNI_CHECK_MSG(payload.size() >= sizeof(T), "frame shorter than its header");
    T t;
    std::memcpy(&t, payload.data(), sizeof(T));
    return t;
  }

  /// Builds a frame from a header plus body bytes.
  template <typename T>
  static Frame make(NodeId src, NodeId dst, std::uint32_t vci, const T& hdr,
                    std::span<const std::byte> body = {}) {
    static_assert(std::is_trivially_copyable_v<T>);
    Frame f;
    f.src = src;
    f.dst = dst;
    f.vci = vci;
    f.payload.resize(sizeof(T) + body.size());
    std::memcpy(f.payload.data(), &hdr, sizeof(T));
    if (!body.empty()) {
      std::memcpy(f.payload.data() + sizeof(T), body.data(), body.size());
    }
    return f;
  }
};

}  // namespace cni::atm
