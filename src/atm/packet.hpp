// Network frames.
//
// A Frame is what one AAL5-style SAR unit reassembles at the receiver: a
// contiguous byte payload whose first bytes form the demultiplexing header
// the PATHFINDER classifies on. Frames carry real data (DSM pages, diffs,
// application messages); timing is computed by the fabric and NIC models.
//
// The payload is a pooled, ref-counted util::Buf: building a frame is one
// pool allocation, and every hop after that (fabric delivery, channel
// queues, handler dispatch) shares the same buffer by refcount instead of
// copying it. `parts()`/`assemble()` flatten a frame into a trivially
// copyable POD so event callbacks can carry one inline through the engine
// (sim::InlineFn) without touching the heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "util/buf_pool.hpp"
#include "util/check.hpp"

namespace cni::atm {

using NodeId = std::uint32_t;

/// Per-frame fabric-attribution breakdown, packed into Frame::fab by the
/// fabric at route time and unpacked at delivery on the destination node —
/// deferring the ring writes to delivery keeps trace order independent of
/// the (K- and fusion-dependent) drain interleaving. Nanosecond fields
/// saturate; `hops` counts switch stages / links traversed.
struct FabBreakdown {
  std::uint32_t wire_ns = 0;      ///< serialization + propagation (20 bits)
  std::uint32_t contend_ns = 0;   ///< switch-port / downlink contention (18 bits)
  std::uint32_t credit_ns = 0;    ///< credit-stall wait (18 bits)
  std::uint32_t hops = 0;         ///< stages + links traversed (8 bits)

  [[nodiscard]] std::uint64_t pack() const {
    const auto sat = [](std::uint64_t v, unsigned bits) {
      const std::uint64_t cap = (1ull << bits) - 1;
      return v < cap ? v : cap;
    };
    return sat(wire_ns, 20) | (sat(contend_ns, 18) << 20) |
           (sat(credit_ns, 18) << 38) | (sat(hops, 8) << 56);
  }
  [[nodiscard]] static FabBreakdown unpack(std::uint64_t p) {
    FabBreakdown b;
    b.wire_ns = static_cast<std::uint32_t>(p & 0xfffffu);
    b.contend_ns = static_cast<std::uint32_t>((p >> 20) & 0x3ffffu);
    b.credit_ns = static_cast<std::uint32_t>((p >> 38) & 0x3ffffu);
    b.hops = static_cast<std::uint32_t>((p >> 56) & 0xffu);
    return b;
  }
};

struct Frame {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t vci = 0;  ///< virtual circuit id (coarse demux, per OSIRIS)
  std::uint64_t trace = 0;  ///< causal parent token (obs/causal.hpp); 0 = untraced
  std::uint64_t fab = 0;    ///< packed FabBreakdown, filled by the fabric route
  util::Buf payload;

  [[nodiscard]] std::uint64_t size() const { return payload.size(); }

  [[nodiscard]] std::span<const std::byte> bytes() const { return payload.span(); }
  [[nodiscard]] std::span<std::byte> mutable_bytes() { return payload.span(); }

  /// Reads a trivially-copyable header of type T from the payload front.
  template <typename T>
  [[nodiscard]] T header() const {
    static_assert(std::is_trivially_copyable_v<T>);
    CNI_CHECK_MSG(payload.size() >= sizeof(T), "frame shorter than its header");
    T t;
    std::memcpy(&t, payload.data(), sizeof(T));
    return t;
  }

  /// Builds a frame from a header plus body bytes, serialized straight into
  /// pooled storage (one allocation, no intermediate vector).
  template <typename T>
  static Frame make(NodeId src, NodeId dst, std::uint32_t vci, const T& hdr,
                    std::span<const std::byte> body = {}) {
    static_assert(std::is_trivially_copyable_v<T>);
    Frame f;
    f.src = src;
    f.dst = dst;
    f.vci = vci;
    f.payload = util::BufPool::local().alloc(sizeof(T) + body.size());
    std::memcpy(f.payload.data(), &hdr, sizeof(T));
    if (!body.empty()) {
      std::memcpy(f.payload.data() + sizeof(T), body.data(), body.size());
    }
    return f;
  }

  /// Wraps an already-serialized payload buffer without copying it.
  static Frame adopt(NodeId src, NodeId dst, std::uint32_t vci, util::Buf payload) {
    Frame f;
    f.src = src;
    f.dst = dst;
    f.vci = vci;
    f.payload = std::move(payload);
    return f;
  }

  /// A zero-filled frame of `bytes` payload (tests and timing-only probes).
  static Frame blank(NodeId src, NodeId dst, std::uint32_t vci, std::size_t bytes) {
    Frame f;
    f.src = src;
    f.dst = dst;
    f.vci = vci;
    f.payload = util::BufPool::local().alloc_zeroed(bytes);
    return f;
  }

  /// Trivially copyable flattened form for inline event captures. Owns one
  /// payload reference; `assemble()` takes it back. A FrameParts that is
  /// dropped without assemble() leaks that reference, so callbacks carrying
  /// one must release it in their destructor (see sim/inline_fn.hpp's
  /// trivially-relocatable callables).
  ///
  /// 32 bytes: the routing ids share one word (src:16 | dst:16 | vci:32 —
  /// the node ceiling is 4096) so the causal token and the packed fabric
  /// breakdown fit while a [this, handler] capture plus a Parts still lands
  /// exactly on sim::InlineFn's 48-byte inline budget.
  struct Parts {
    std::uint64_t ids;
    util::BufCtrl* buf;
    std::uint64_t trace;
    std::uint64_t fab;
  };
  static_assert(sizeof(Parts) == 32);

  /// Flattens into a Parts, transferring the payload reference out.
  [[nodiscard]] Parts to_parts() && {
    const std::uint64_t ids = (static_cast<std::uint64_t>(src & 0xffffu)) |
                              (static_cast<std::uint64_t>(dst & 0xffffu) << 16) |
                              (static_cast<std::uint64_t>(vci) << 32);
    return Parts{ids, payload.release(), trace, fab};
  }

  /// Rebuilds a frame from a Parts, taking over its payload reference.
  [[nodiscard]] static Frame assemble(const Parts& p) {
    Frame f = adopt(static_cast<NodeId>(p.ids & 0xffffu),
                    static_cast<NodeId>((p.ids >> 16) & 0xffffu),
                    static_cast<std::uint32_t>(p.ids >> 32), util::Buf::adopt(p.buf));
    f.trace = p.trace;
    f.fab = p.fab;
    return f;
  }
};

/// Event callback that carries a Frame through the engine inline. The
/// frame's Buf handle is flattened to Parts (a raw control pointer), which
/// makes the functor safe to relocate with memcpy — it self-certifies via
/// sim::InlineFn's kTriviallyRelocatable opt-in and so stays in the event's
/// inline buffer instead of forcing the heap fallback. The destructor drops
/// the payload reference if the event is destroyed without firing (engine
/// teardown), so no frame ever leaks.
template <typename F>
class FrameTask {
 public:
  static constexpr bool kTriviallyRelocatable = true;
  static_assert(std::is_trivially_copyable_v<F>,
                "the wrapped callable must itself be memcpy-relocatable");

  FrameTask(F fn, Frame f) : fn_(fn), parts_(std::move(f).to_parts()) {}

  FrameTask(FrameTask&& o) noexcept : fn_(o.fn_), parts_(o.parts_) {
    o.parts_.buf = nullptr;
  }
  FrameTask(const FrameTask&) = delete;
  FrameTask& operator=(const FrameTask&) = delete;
  FrameTask& operator=(FrameTask&&) = delete;

  ~FrameTask() {
    if (parts_.buf != nullptr) {
      util::Buf dropped = util::Buf::adopt(parts_.buf);  // releases on scope exit
    }
  }

  void operator()() {
    Frame::Parts p = parts_;
    parts_.buf = nullptr;
    fn_(Frame::assemble(p));
  }

 private:
  F fn_;
  Frame::Parts parts_;
};

template <typename F>
FrameTask(F, Frame) -> FrameTask<F>;

}  // namespace cni::atm
