// Topology-aware combining trees for NIC-resident collectives.
//
// A CollectiveTree is the static reduction/broadcast shape the DSM layer
// installs once per run: node v sends its combined contribution to
// parent[v], the root turns around, and releases flow back down children[].
// The shape is a contiguous-range k-ary tree — the root owns [0, N), the
// tail [1, N) is split into k near-even contiguous chunks, each chunk's
// first id becomes a child, and the chunks recurse. Contiguous subtrees
// keep parent/child pairs close under every supported topology (same Clos
// leaf block, adjacent torus coordinates), which is what makes the fan-in
// choice below meaningful.
//
// The fan-in k is picked per topology from the zero-load distances: for
// each candidate k we evaluate the deterministic up-sweep critical path
//
//   T(leaf) = 0
//   T(v)    = max over children c of (T(c) + min_latency(c, v) + per_hop)
//             + child_count(v) * per_child
//
// and keep the k with the smallest T(root), ties to the smaller k. A flat
// banyan (uniform distances) pays per_child for every extra slot and so
// favours narrow trees as N grows; Clos and torus amortize their taller
// hop latency over wide fan-in at small N and diverge from the banyan
// choice. Everything here is a pure function of (topology, N, costs) — no
// simulation state — so the tree is identical across shard counts.
#pragma once

#include <cstdint>
#include <vector>

#include "atm/topology.hpp"
#include "sim/time.hpp"

namespace cni::atm {

struct CollectiveTree {
  std::uint32_t nodes = 0;
  std::uint32_t fanin = 0;  ///< chosen k (cap on children per node)
  std::uint32_t depth = 0;  ///< edges on the longest root-to-leaf path
  /// parent[v] for every node; parent[root] == root (node 0 for k-ary trees).
  std::vector<std::uint32_t> parent;
  /// children[v], ascending node ids (the deterministic down-sweep order).
  std::vector<std::vector<std::uint32_t>> children;

  /// Deterministic up-sweep critical path under the cost model above.
  [[nodiscard]] sim::SimDuration up_sweep_cost(const Topology& topo,
                                               sim::SimDuration per_hop,
                                               sim::SimDuration per_child) const;
};

/// Builds the contiguous-range k-ary tree over `nodes` nodes with the given
/// fan-in. `fanin` is clamped to [1, nodes-1] (single-node trees are just
/// the root).
[[nodiscard]] CollectiveTree make_kary_tree(std::uint32_t nodes, std::uint32_t fanin);

/// Picks the fan-in from the topology's distances (candidates 2, 4, 8, 16,
/// 32, capped below `nodes`) and returns the winning tree. `fanin_override`
/// != 0 skips the search and builds that exact fan-in — the A/B knob the
/// identity tests use.
[[nodiscard]] CollectiveTree make_collective_tree(const Topology& topo,
                                                  std::uint32_t nodes,
                                                  sim::SimDuration per_hop,
                                                  sim::SimDuration per_child,
                                                  std::uint32_t fanin_override = 0);

/// Flat star rooted at `root`: every other node is a direct child. The
/// host-mode reduce/broadcast shape (one centralized manager, like the seed
/// barrier protocol).
[[nodiscard]] CollectiveTree make_star_tree(std::uint32_t nodes, std::uint32_t root);

}  // namespace cni::atm
