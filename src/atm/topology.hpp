// Interconnect topologies: routing + timing behind one interface.
//
// The paper's fabric is a single 32-port banyan; ROADMAP item 2 scales the
// cluster past one switch. Every topology answers the same three questions:
//
//   * route()        — when does a burst's head emerge at the destination
//                      port, given contention with earlier bursts?
//   * min_latency()  — the zero-load lower bound for a src/dst pair, the
//                      ingredient of the per-shard-pair lookahead matrix;
//   * concurrent_local_routing() — may shards route their own intra-block
//                      transfers concurrently under this plan (disjoint
//                      resources), or must everything cross a barrier?
//
// Three implementations: the original single-stage banyan (bit-identical to
// the pre-topology fabric), a folded Clos (k-ary n-tree) of banyan blocks
// with credit-based backpressure on the inter-stage links, and a 3D torus
// with dimension-order routing and per-hop latency in the APEnet+ regime.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "atm/banyan.hpp"
#include "atm/cell.hpp"
#include "atm/packet.hpp"
#include "sim/sharded.hpp"
#include "sim/time.hpp"
#include "util/units.hpp"

namespace cni::atm {

enum class TopologyKind : std::uint8_t {
  kBanyan,  ///< single-stage banyan, the paper's switch
  kClos,    ///< folded Clos (k-ary n-tree) of banyan blocks
  kTorus,   ///< 3D torus, dimension-order routed (APEnet+)
};

/// CLI/report spelling of a kind: "banyan", "clos", "torus".
[[nodiscard]] const char* topology_name(TopologyKind kind);

/// Parses a topology_name() spelling; returns false on anything else.
[[nodiscard]] bool parse_topology(const char* text, TopologyKind& out);

/// Process-wide default fabric shape, consumed by FabricParams' default
/// member initializers. Set once at startup (cluster::apply_fabric_cli,
/// before any sweep worker builds a SimParams) — the same single-writer-
/// then-read-only discipline as obs::default_options().
[[nodiscard]] TopologyKind default_topology();
[[nodiscard]] std::uint32_t default_switch_ports();
void set_default_fabric_shape(TopologyKind kind, std::uint32_t ports);

struct FabricParams {
  std::uint64_t link_bits_per_sec = util::kSts12BitsPerSec;
  sim::SimDuration switch_latency = 500 * sim::kNanosecond;  // Table 1
  sim::SimDuration propagation = 150 * sim::kNanosecond;     // Table 1 ("network latency")
  std::uint32_t switch_ports = default_switch_ports();
  CellMode cell_mode = CellMode::kStandard;
  TopologyKind topology = default_topology();
  /// Clos only: radix of each banyan block (ports per switch element, half
  /// down / half up except the top tier). Power of two >= 4.
  std::uint32_t clos_radix = 32;
  /// Clos/torus: per-link credit window — a burst may not start onto a link
  /// until the buffer slot taken `link_credits` bursts earlier has drained.
  std::uint32_t link_credits = 4;
  /// Torus only: router traversal per hop. APEnet+ reports a few hundred ns
  /// per hop for its 3D-torus router, far below a full multi-stage switch.
  sim::SimDuration torus_hop_latency = 200 * sim::kNanosecond;
};

/// Optional per-route attribution, filled only for traced frames: where a
/// burst's head time went between fabric entry and the destination output.
/// Collecting it never touches link/switch state, so a traced run times
/// identically to an untraced one; the fabric packs the totals into
/// Frame::fab (atm::FabBreakdown) and the destination node emits them as
/// causal records at delivery, where event order is deterministic.
struct RouteTrace {
  sim::SimDuration wire = 0;     ///< pure latency: switch pipelines, link flight
  sim::SimDuration contend = 0;  ///< waits on busy ports / wires
  sim::SimDuration credit = 0;   ///< waits for a credit (backpressure)
  std::uint32_t hops = 0;        ///< switch stages + links traversed
};

/// A bounded inter-switch link: serialization (one burst at a time, in
/// arrival order) plus credit-based backpressure — the sender holds one of
/// `credits` buffer slots per burst in flight, and a new burst may not start
/// until the slot taken `credits` bursts ago has drained at the far end.
/// Deterministic: state advances only in the canonical routing order, like
/// sim::ServiceQueue.
class CreditLink {
 public:
  void configure(std::uint32_t credits, sim::SimDuration latency);

  /// Sends a burst whose head reaches the link at `head`. Returns when the
  /// head emerges at the far end; the wait for the wire and for a credit is
  /// added to `queued`. When `rt` is non-null the wire/contention/credit
  /// split of this traversal is accumulated into it.
  sim::SimTime traverse(sim::SimTime head, sim::SimDuration burst,
                        sim::SimDuration& queued, RouteTrace* rt = nullptr);

  [[nodiscard]] std::uint64_t bursts() const { return sent_; }

 private:
  sim::SimDuration latency_ = 0;
  sim::SimTime busy_until_ = 0;     // wire: one burst serializes at a time
  std::vector<sim::SimTime> ring_;  // slot i: when burst (sent_ - credits + i) drains
  std::uint64_t sent_ = 0;
};

/// Routing + timing interface the Fabric delegates to. Stateful (contention
/// queues): route() must be called in the fabric's canonical transfer order,
/// and concurrently only for intra-block transfers of different shards when
/// concurrent_local_routing() granted it. Virtual dispatch is fine here —
/// route() is called once per frame, not per event.
class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual TopologyKind kind() const = 0;
  [[nodiscard]] std::uint32_t ports() const { return ports_; }
  [[nodiscard]] const char* name() const { return topology_name(kind()); }

  /// Routes a burst entering at `src` at time `head` toward `dst`, occupying
  /// each traversed resource for `burst`. Returns when the head emerges at
  /// the destination output (before the downlink). `lane` selects the
  /// statistics tally, as in BanyanSwitch::route. A non-null `rt` collects
  /// the per-category attribution of this route without perturbing state.
  virtual sim::SimTime route(sim::SimTime head, NodeId src, NodeId dst,
                             sim::SimDuration burst, std::uint32_t lane,
                             RouteTrace* rt = nullptr) = 0;

  /// Zero-load head latency src -> dst (no contention, no downlink). The
  /// soundness floor for every lookahead derived from this pair.
  [[nodiscard]] virtual sim::SimDuration min_latency(NodeId src, NodeId dst) const = 0;

  /// min_latency minimized over all distinct pairs: the global cross-node
  /// traversal floor (Fabric::min_lookahead builds on it).
  [[nodiscard]] virtual sim::SimDuration min_cross_latency() const = 0;

  /// Writes, for every off-diagonal (r, c), the minimum of min_latency(a, b)
  /// over a in shard r's block and b in shard c's block. The base version
  /// brute-forces pairs (early exit at min_cross_latency); topologies with
  /// structure override it with closed forms. Diagonal entries are the
  /// caller's business.
  virtual void fill_block_latency(const sim::ShardPlan& plan,
                                  sim::LookaheadMatrix& matrix) const;

  /// True when, under `plan`, intra-block routes of different blocks touch
  /// disjoint contention resources — the license for per-shard local drains
  /// to call route() concurrently (DESIGN.md §14).
  [[nodiscard]] virtual bool concurrent_local_routing(const sim::ShardPlan& plan) const = 0;

  /// Grows the per-lane statistics tallies (call before concurrent routing).
  virtual void set_lanes(std::uint32_t n) = 0;

  /// Total queueing time (contention + credit waits), summed over lanes.
  /// Call only at quiescence, like BanyanSwitch::contention_time.
  [[nodiscard]] virtual sim::SimDuration contention_time() const = 0;
  [[nodiscard]] virtual std::uint64_t bursts_routed() const = 0;

  /// The underlying switch when this is the single-stage banyan, else null.
  [[nodiscard]] virtual const BanyanSwitch* single_stage() const { return nullptr; }

 protected:
  explicit Topology(std::uint32_t ports) : ports_(ports) {}

  std::uint32_t ports_;
};

/// The paper's fabric: every port one hop through one shared banyan.
class SingleStageTopology final : public Topology {
 public:
  SingleStageTopology(std::uint32_t ports, sim::SimDuration switch_latency);

  [[nodiscard]] TopologyKind kind() const override { return TopologyKind::kBanyan; }
  sim::SimTime route(sim::SimTime head, NodeId src, NodeId dst, sim::SimDuration burst,
                     std::uint32_t lane, RouteTrace* rt = nullptr) override;
  [[nodiscard]] sim::SimDuration min_latency(NodeId src, NodeId dst) const override;
  [[nodiscard]] sim::SimDuration min_cross_latency() const override;
  void fill_block_latency(const sim::ShardPlan& plan,
                          sim::LookaheadMatrix& matrix) const override;
  [[nodiscard]] bool concurrent_local_routing(const sim::ShardPlan& plan) const override;
  void set_lanes(std::uint32_t n) override { switch_.set_lanes(n); }
  [[nodiscard]] sim::SimDuration contention_time() const override {
    return switch_.contention_time();
  }
  [[nodiscard]] std::uint64_t bursts_routed() const override {
    return switch_.bursts_routed();
  }
  [[nodiscard]] const BanyanSwitch* single_stage() const override { return &switch_; }

 private:
  BanyanSwitch switch_;
};

/// Folded Clos / k-ary n-tree: tiers() tiers of radix-m banyan blocks, each
/// with m/2 down-ports and m/2 up-ports. A burst ascends to the nearest
/// common ancestor tier of src and dst (up-port chosen by dst's digits, so
/// the route is deterministic), turns around inside that block, and descends
/// along dst's base-(m/2) digits. Blocks model internal contention with the
/// full BanyanSwitch resource machinery; inter-tier links are CreditLinks.
class ClosTopology final : public Topology {
 public:
  ClosTopology(std::uint32_t ports, std::uint32_t radix, std::uint32_t credits,
               sim::SimDuration switch_latency, sim::SimDuration propagation);

  [[nodiscard]] TopologyKind kind() const override { return TopologyKind::kClos; }
  sim::SimTime route(sim::SimTime head, NodeId src, NodeId dst, sim::SimDuration burst,
                     std::uint32_t lane, RouteTrace* rt = nullptr) override;
  [[nodiscard]] sim::SimDuration min_latency(NodeId src, NodeId dst) const override;
  [[nodiscard]] sim::SimDuration min_cross_latency() const override;
  void fill_block_latency(const sim::ShardPlan& plan,
                          sim::LookaheadMatrix& matrix) const override;
  [[nodiscard]] bool concurrent_local_routing(const sim::ShardPlan& plan) const override;
  void set_lanes(std::uint32_t n) override;
  [[nodiscard]] sim::SimDuration contention_time() const override;
  [[nodiscard]] std::uint64_t bursts_routed() const override;

  // ---- Structure, exposed for tests ----

  /// Down-arity d = radix/2: hosts per leaf, children per inner switch.
  [[nodiscard]] std::uint32_t down_arity() const { return down_; }
  [[nodiscard]] std::uint32_t tiers() const { return tiers_; }
  /// Switch count at `tier` (N/d when ports is a power of the arity; a
  /// pruned top tier keeps one partial group).
  [[nodiscard]] std::uint32_t tier_switches(std::uint32_t tier) const;
  /// The leaf switch hosting `node`.
  [[nodiscard]] std::uint32_t leaf_of(NodeId node) const { return node >> down_bits_; }
  /// Tier of the nearest common ancestor of two distinct hosts: 0 when they
  /// share a leaf, tiers()-1 when they differ in the top base-d digit.
  [[nodiscard]] std::uint32_t ancestor_tier(NodeId a, NodeId b) const;
  /// Index (within its tier) of the switch the a->b route crosses at `tier`
  /// on its way up (equal, at the turnaround tier, to the descent switch).
  [[nodiscard]] std::uint32_t route_switch(std::uint32_t tier, NodeId a, NodeId b) const;

 private:
  [[nodiscard]] std::uint32_t digit(NodeId n, std::uint32_t tier) const {
    return (n >> (tier * down_bits_)) & (down_ - 1);
  }

  std::uint32_t down_;       // d = radix/2
  std::uint32_t down_bits_;  // log2(d)
  std::uint32_t tiers_;      // smallest T with d^T >= ports
  sim::SimDuration switch_latency_;
  sim::SimDuration propagation_;
  std::vector<std::vector<BanyanSwitch>> blocks_;  // [tier][switch]
  std::vector<std::vector<CreditLink>> up_links_;  // [tier][switch*d + up_port]
  std::vector<std::vector<CreditLink>> down_links_;  // [tier][parent*d + down_port]
  struct alignas(64) Tally {
    sim::SimDuration queued = 0;  // credit/wire waits (block queueing is in blocks_)
    std::uint64_t bursts = 0;
  };
  std::vector<Tally> tallies_{1};
};

/// 3D torus, dimension-order (x, then y, then z) routing with shortest-wrap
/// direction per dimension (ties broken toward +). Each directed neighbor
/// link is a CreditLink of latency torus_hop_latency + propagation; a hop's
/// head cost is that latency, contention is serialization + credit waits.
class TorusTopology final : public Topology {
 public:
  struct Dims {
    std::uint32_t x = 1, y = 1, z = 1;
  };

  TorusTopology(std::uint32_t ports, std::uint32_t credits, sim::SimDuration hop_latency,
                sim::SimDuration propagation);

  [[nodiscard]] TopologyKind kind() const override { return TopologyKind::kTorus; }
  sim::SimTime route(sim::SimTime head, NodeId src, NodeId dst, sim::SimDuration burst,
                     std::uint32_t lane, RouteTrace* rt = nullptr) override;
  [[nodiscard]] sim::SimDuration min_latency(NodeId src, NodeId dst) const override;
  [[nodiscard]] sim::SimDuration min_cross_latency() const override;
  [[nodiscard]] bool concurrent_local_routing(const sim::ShardPlan& plan) const override;
  void set_lanes(std::uint32_t n) override;
  [[nodiscard]] sim::SimDuration contention_time() const override;
  [[nodiscard]] std::uint64_t bursts_routed() const override;

  // ---- Structure, exposed for tests ----

  /// Balanced power-of-two factorization of the port count, x >= y >= z.
  [[nodiscard]] Dims dims() const { return dims_; }
  [[nodiscard]] Dims coords(NodeId node) const;
  /// Dimension-order hop count (wrapped L1 distance).
  [[nodiscard]] std::uint32_t hops(NodeId a, NodeId b) const;

 private:
  /// Signed shortest step count along one dimension (ties -> positive).
  [[nodiscard]] static std::int32_t wrap_delta(std::uint32_t from, std::uint32_t to,
                                               std::uint32_t size);

  Dims dims_;
  std::uint32_t x_bits_ = 0, y_bits_ = 0;
  sim::SimDuration hop_cost_;  // torus_hop_latency + propagation
  // Directed link (node, dim, dir): links_[node*6 + dim*2 + (dir < 0)].
  std::vector<CreditLink> links_;
  struct alignas(64) Tally {
    sim::SimDuration queued = 0;
    std::uint64_t bursts = 0;
  };
  std::vector<Tally> tallies_{1};
};

/// Builds the topology `params` asks for (validating shape constraints).
[[nodiscard]] std::unique_ptr<Topology> make_topology(const FabricParams& params);

}  // namespace cni::atm
