#include "atm/topology.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace cni::atm {

namespace {

/// Process-wide fabric-shape defaults (see set_default_fabric_shape): written
/// once at startup before any SimParams is built, read-only afterwards.
TopologyKind g_default_topology = TopologyKind::kBanyan;
std::uint32_t g_default_ports = 32;

std::uint32_t log2_pow2(std::uint32_t v) {
  std::uint32_t bits = 0;
  for (std::uint32_t p = v; p > 1; p >>= 1) ++bits;
  return bits;
}

}  // namespace

const char* topology_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kBanyan: return "banyan";
    case TopologyKind::kClos: return "clos";
    case TopologyKind::kTorus: return "torus";
  }
  return "?";
}

bool parse_topology(const char* text, TopologyKind& out) {
  for (TopologyKind k : {TopologyKind::kBanyan, TopologyKind::kClos, TopologyKind::kTorus}) {
    if (std::strcmp(text, topology_name(k)) == 0) {
      out = k;
      return true;
    }
  }
  return false;
}

TopologyKind default_topology() { return g_default_topology; }
std::uint32_t default_switch_ports() { return g_default_ports; }

void set_default_fabric_shape(TopologyKind kind, std::uint32_t ports) {
  CNI_CHECK_MSG(util::is_pow2(ports), "fabric port count must be a power of two");
  g_default_topology = kind;
  g_default_ports = ports;
}

// ---- CreditLink ----

void CreditLink::configure(std::uint32_t credits, sim::SimDuration latency) {
  CNI_CHECK(credits >= 1);
  latency_ = latency;
  ring_.assign(credits, 0);
}

sim::SimTime CreditLink::traverse(sim::SimTime head, sim::SimDuration burst,
                                  sim::SimDuration& queued, RouteTrace* rt) {
  CNI_DCHECK(!ring_.empty());
  // The burst may start once the wire is idle *and* the buffer slot taken
  // `credits` bursts ago has drained at the far end (its tail arrived).
  const std::size_t slot = sent_ % ring_.size();
  sim::SimTime start = head;
  if (busy_until_ > start) start = busy_until_;
  const sim::SimTime wire_free = start;  // wait so far is the busy wire
  if (ring_[slot] > start) start = ring_[slot];
  queued += start - head;
  if (rt != nullptr) {
    rt->contend += wire_free - head;
    rt->credit += start - wire_free;
    rt->wire += latency_;
    ++rt->hops;
  }
  busy_until_ = start + burst;
  ring_[slot] = start + burst + latency_;
  ++sent_;
  return start + latency_;
}

// ---- Topology (base) ----

void Topology::fill_block_latency(const sim::ShardPlan& plan,
                                  sim::LookaheadMatrix& matrix) const {
  // Blocks are contiguous id ranges (ShardPlan::shard_of). Brute force over
  // pairs, bailing out at the global floor — neighbor blocks hit it almost
  // immediately, so the quadratic worst case only bites for far pairs.
  const sim::SimDuration floor = min_cross_latency();
  std::vector<NodeId> start(plan.shards + 1, 0);
  for (std::uint32_t s = 0; s < plan.shards; ++s) start[s + 1] = start[s] + plan.count(s);
  for (std::uint32_t r = 0; r < plan.shards; ++r) {
    for (std::uint32_t c = r + 1; c < plan.shards; ++c) {
      sim::SimDuration best = sim::LookaheadMatrix::kUnbounded;
      for (NodeId a = start[r]; a < start[r + 1] && best > floor; ++a) {
        for (NodeId b = start[c]; b < start[c + 1]; ++b) {
          const sim::SimDuration d = min_latency(a, b);
          if (d < best) best = d;
          if (best <= floor) break;
        }
      }
      matrix.entries[static_cast<std::size_t>(r) * plan.shards + c] = best;
      matrix.entries[static_cast<std::size_t>(c) * plan.shards + r] = best;
    }
  }
}

// ---- SingleStageTopology ----

SingleStageTopology::SingleStageTopology(std::uint32_t ports,
                                         sim::SimDuration switch_latency)
    : Topology(ports), switch_(ports, switch_latency) {}

sim::SimTime SingleStageTopology::route(sim::SimTime head, NodeId src, NodeId dst,
                                        sim::SimDuration burst, std::uint32_t lane,
                                        RouteTrace* rt) {
  const sim::SimTime out = switch_.route(head, src, dst, burst, lane);
  if (rt != nullptr) {
    // One traversal of the shared pipeline: everything beyond the switch's
    // own latency is contention with earlier bursts. An uncontended route
    // can come in a few picoseconds under the nominal latency (the per-stage
    // cut-through divides it by the stage count), so clamp to the actual
    // delay — the breakdown must sum to it exactly, never past it.
    const sim::SimDuration delay = out - head;
    const sim::SimDuration pipe = std::min(delay, switch_.latency());
    rt->wire += pipe;
    rt->contend += delay - pipe;
    ++rt->hops;
  }
  return out;
}

sim::SimDuration SingleStageTopology::min_latency(NodeId src, NodeId dst) const {
  (void)src;
  (void)dst;
  return min_cross_latency();
}

sim::SimDuration SingleStageTopology::min_cross_latency() const {
  return switch_.latency();
}

void SingleStageTopology::fill_block_latency(const sim::ShardPlan& plan,
                                             sim::LookaheadMatrix& matrix) const {
  // Every port is one traversal of the same shared pipeline: uniform rows.
  for (std::uint32_t r = 0; r < plan.shards; ++r) {
    for (std::uint32_t c = 0; c < plan.shards; ++c) {
      if (r != c) {
        matrix.entries[static_cast<std::size_t>(r) * plan.shards + c] = switch_.latency();
      }
    }
  }
}

bool SingleStageTopology::concurrent_local_routing(const sim::ShardPlan& plan) const {
  // Aligned power-of-two blocks make intra-block butterfly paths of
  // different blocks resource-disjoint at every stage (sim::ShardPlan's
  // aligned() doc carries the argument).
  return plan.aligned();
}

// ---- ClosTopology ----

ClosTopology::ClosTopology(std::uint32_t ports, std::uint32_t radix, std::uint32_t credits,
                           sim::SimDuration switch_latency, sim::SimDuration propagation)
    : Topology(ports), switch_latency_(switch_latency), propagation_(propagation) {
  CNI_CHECK_MSG(util::is_pow2(ports) && ports >= 2,
                "clos port count must be a power of two >= 2");
  CNI_CHECK_MSG(util::is_pow2(radix) && radix >= 4,
                "clos radix must be a power of two >= 4");
  down_ = radix / 2;
  down_bits_ = log2_pow2(down_);
  tiers_ = 1;
  while ((static_cast<std::uint64_t>(down_bits_) * tiers_ < 32) &&
         (1ull << (static_cast<std::uint64_t>(down_bits_) * tiers_)) < ports) {
    ++tiers_;
  }
  blocks_.resize(tiers_);
  for (std::uint32_t t = 0; t < tiers_; ++t) {
    const std::uint32_t n = tier_switches(t);
    blocks_[t].reserve(n);
    for (std::uint32_t s = 0; s < n; ++s) blocks_[t].emplace_back(radix, switch_latency_);
  }
  if (tiers_ > 1) {
    up_links_.resize(tiers_ - 1);
    down_links_.resize(tiers_ - 1);
    for (std::uint32_t t = 0; t + 1 < tiers_; ++t) {
      up_links_[t].resize(static_cast<std::size_t>(tier_switches(t)) * down_);
      down_links_[t].resize(static_cast<std::size_t>(tier_switches(t + 1)) * down_);
      for (CreditLink& l : up_links_[t]) l.configure(credits, propagation_);
      for (CreditLink& l : down_links_[t]) l.configure(credits, propagation_);
    }
  }
}

std::uint32_t ClosTopology::tier_switches(std::uint32_t tier) const {
  // Groups of d^(tier+1) hosts, d^tier switches per group; a pruned top
  // tier (ports not a power of the arity) keeps one partial group.
  const std::uint64_t span = 1ull << (static_cast<std::uint64_t>(down_bits_) * (tier + 1));
  const std::uint64_t groups = (ports_ + span - 1) / span;
  return static_cast<std::uint32_t>(groups << (static_cast<std::uint64_t>(down_bits_) * tier));
}

std::uint32_t ClosTopology::ancestor_tier(NodeId a, NodeId b) const {
  std::uint32_t h = 0;
  while (h + 1 < tiers_ && (a >> ((h + 1) * down_bits_)) != (b >> ((h + 1) * down_bits_))) {
    ++h;
  }
  return h;
}

std::uint32_t ClosTopology::route_switch(std::uint32_t tier, NodeId a, NodeId b) const {
  // Ascent switch at `tier` for the a -> b route: a's group at that height,
  // offset by b's low digits (the up-port choices already taken).
  const std::uint32_t group = a >> ((tier + 1) * down_bits_);
  const std::uint32_t offset = b & ((1u << (tier * down_bits_)) - 1u);
  return (group << (tier * down_bits_)) + offset;
}

sim::SimTime ClosTopology::route(sim::SimTime head, NodeId src, NodeId dst,
                                 sim::SimDuration burst, std::uint32_t lane,
                                 RouteTrace* rt) {
  CNI_CHECK(src < ports_ && dst < ports_);
  CNI_DCHECK(lane < tallies_.size());
  Tally& tally = tallies_[lane];
  ++tally.bursts;
  sim::SimDuration queued = 0;
  const std::uint32_t h = ancestor_tier(src, dst);
  // A block traversal beyond the switch pipeline latency is contention.
  const auto block_route = [&](BanyanSwitch& b, std::uint32_t in, std::uint32_t out) {
    const sim::SimTime t0 = head;
    head = b.route(head, in, out, burst, lane);
    if (rt != nullptr) {
      // Same clamp as SingleStageTopology::route: the block's cut-through
      // stages can undercut the nominal latency by rounding, and contention
      // must never go negative.
      const sim::SimDuration delay = head - t0;
      const sim::SimDuration pipe = std::min(delay, switch_latency_);
      rt->wire += pipe;
      rt->contend += delay - pipe;
      ++rt->hops;
    }
  };
  // Ascend: enter tier t on down-port digit_t(src), leave on the up-port
  // matching dst's digit — deterministic, and it lands the descent on the
  // switch whose low offset is exactly dst's low digits.
  for (std::uint32_t t = 0; t < h; ++t) {
    const std::uint32_t s = route_switch(t, src, dst);
    const std::uint32_t u = digit(dst, t);
    block_route(blocks_[t][s], digit(src, t), down_ + u);
    head = up_links_[t][static_cast<std::size_t>(s) * down_ + u].traverse(head, burst,
                                                                          queued, rt);
  }
  // Turn around in the nearest common ancestor (the whole route when src and
  // dst share a leaf): down-port to down-port.
  block_route(blocks_[h][route_switch(h, src, dst)], digit(src, h), digit(dst, h));
  // Descend along dst's digits: arrive on the up-port and leave on the
  // down-port that both carry digit_t(dst).
  for (std::uint32_t t = h; t >= 1; --t) {
    const std::uint32_t parent = route_switch(t, dst, dst);
    head = down_links_[t - 1][static_cast<std::size_t>(parent) * down_ + digit(dst, t)]
               .traverse(head, burst, queued, rt);
    const std::uint32_t child = route_switch(t - 1, dst, dst);
    block_route(blocks_[t - 1][child], down_ + digit(dst, t - 1), digit(dst, t - 1));
  }
  tally.queued += queued;
  return head;
}

sim::SimDuration ClosTopology::min_latency(NodeId src, NodeId dst) const {
  const std::uint32_t h = ancestor_tier(src, dst);
  return (2 * h + 1) * switch_latency_ + 2 * h * propagation_;
}

sim::SimDuration ClosTopology::min_cross_latency() const {
  // Two distinct hosts always share leaf 0 (down_ >= 2): one block traversal.
  return switch_latency_;
}

void ClosTopology::fill_block_latency(const sim::ShardPlan& plan,
                                      sim::LookaheadMatrix& matrix) const {
  // Blocks are contiguous id ranges, so the minimum ancestor tier between
  // two blocks is an interval-overlap test per height: some a in r and b in
  // c share their tier-(t+1) prefix iff the blocks' prefix ranges intersect.
  std::vector<NodeId> start(plan.shards + 1, 0);
  for (std::uint32_t s = 0; s < plan.shards; ++s) start[s + 1] = start[s] + plan.count(s);
  for (std::uint32_t r = 0; r < plan.shards; ++r) {
    for (std::uint32_t c = r + 1; c < plan.shards; ++c) {
      std::uint32_t h = tiers_ - 1;
      for (std::uint32_t t = 0; t + 1 < tiers_; ++t) {
        const std::uint32_t shift = (t + 1) * down_bits_;
        if ((start[r] >> shift) <= ((start[c + 1] - 1) >> shift) &&
            (start[c] >> shift) <= ((start[r + 1] - 1) >> shift)) {
          h = t;
          break;
        }
      }
      const sim::SimDuration d = (2 * h + 1) * switch_latency_ + 2 * h * propagation_;
      matrix.entries[static_cast<std::size_t>(r) * plan.shards + c] = d;
      matrix.entries[static_cast<std::size_t>(c) * plan.shards + r] = d;
    }
  }
}

bool ClosTopology::concurrent_local_routing(const sim::ShardPlan& plan) const {
  // An aligned power-of-two block no larger than a leaf stays inside one
  // leaf switch, where the single-stage butterfly-disjointness argument
  // applies verbatim; larger blocks would share inner switches and links.
  return plan.aligned() && plan.nodes / plan.shards <= down_;
}

void ClosTopology::set_lanes(std::uint32_t n) {
  CNI_CHECK(n >= 1);
  if (n > tallies_.size()) tallies_.resize(n);
  for (std::vector<BanyanSwitch>& tier : blocks_) {
    for (BanyanSwitch& b : tier) b.set_lanes(n);
  }
}

sim::SimDuration ClosTopology::contention_time() const {
  sim::SimDuration total = 0;
  for (const Tally& t : tallies_) total += t.queued;
  for (const std::vector<BanyanSwitch>& tier : blocks_) {
    for (const BanyanSwitch& b : tier) total += b.contention_time();
  }
  return total;
}

std::uint64_t ClosTopology::bursts_routed() const {
  std::uint64_t total = 0;
  for (const Tally& t : tallies_) total += t.bursts;
  return total;
}

// ---- TorusTopology ----

TorusTopology::TorusTopology(std::uint32_t ports, std::uint32_t credits,
                             sim::SimDuration hop_latency, sim::SimDuration propagation)
    : Topology(ports), hop_cost_(hop_latency + propagation) {
  CNI_CHECK_MSG(util::is_pow2(ports) && ports >= 2,
                "torus port count must be a power of two >= 2");
  // Balanced power-of-two factorization, largest dimension first.
  const std::uint32_t e = log2_pow2(ports);
  x_bits_ = (e + 2) / 3;
  y_bits_ = (e - x_bits_ + 1) / 2;
  const std::uint32_t z_bits = e - x_bits_ - y_bits_;
  dims_ = {1u << x_bits_, 1u << y_bits_, 1u << z_bits};
  links_.resize(static_cast<std::size_t>(ports) * 6);
  for (CreditLink& l : links_) l.configure(credits, hop_cost_);
}

TorusTopology::Dims TorusTopology::coords(NodeId node) const {
  Dims c;
  c.x = node & (dims_.x - 1);
  c.y = (node >> x_bits_) & (dims_.y - 1);
  c.z = node >> (x_bits_ + y_bits_);
  return c;
}

std::int32_t TorusTopology::wrap_delta(std::uint32_t from, std::uint32_t to,
                                       std::uint32_t size) {
  const std::uint32_t fwd = (to + size - from) % size;
  if (fwd == 0) return 0;
  // Ties (fwd == size/2) go the positive way.
  return fwd <= size - fwd ? static_cast<std::int32_t>(fwd)
                           : -static_cast<std::int32_t>(size - fwd);
}

std::uint32_t TorusTopology::hops(NodeId a, NodeId b) const {
  const Dims ca = coords(a);
  const Dims cb = coords(b);
  const std::int32_t dx = wrap_delta(ca.x, cb.x, dims_.x);
  const std::int32_t dy = wrap_delta(ca.y, cb.y, dims_.y);
  const std::int32_t dz = wrap_delta(ca.z, cb.z, dims_.z);
  return static_cast<std::uint32_t>((dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy) +
                                    (dz < 0 ? -dz : dz));
}

sim::SimTime TorusTopology::route(sim::SimTime head, NodeId src, NodeId dst,
                                  sim::SimDuration burst, std::uint32_t lane,
                                  RouteTrace* rt) {
  CNI_CHECK(src < ports_ && dst < ports_);
  CNI_DCHECK(lane < tallies_.size());
  Tally& tally = tallies_[lane];
  ++tally.bursts;
  sim::SimDuration queued = 0;
  Dims cur = coords(src);
  const Dims to = coords(dst);
  const std::uint32_t sizes[3] = {dims_.x, dims_.y, dims_.z};
  std::uint32_t* axis[3] = {&cur.x, &cur.y, &cur.z};
  const std::uint32_t target[3] = {to.x, to.y, to.z};
  for (std::uint32_t dim = 0; dim < 3; ++dim) {
    std::int32_t delta = wrap_delta(*axis[dim], target[dim], sizes[dim]);
    while (delta != 0) {
      const bool neg = delta < 0;
      const NodeId here = (cur.z << (x_bits_ + y_bits_)) | (cur.y << x_bits_) | cur.x;
      head = links_[static_cast<std::size_t>(here) * 6 + dim * 2 + (neg ? 1 : 0)]
                 .traverse(head, burst, queued, rt);
      const std::uint32_t size = sizes[dim];
      *axis[dim] = neg ? (*axis[dim] + size - 1) % size : (*axis[dim] + 1) % size;
      delta += neg ? 1 : -1;
    }
  }
  tally.queued += queued;
  return head;
}

sim::SimDuration TorusTopology::min_latency(NodeId src, NodeId dst) const {
  return hops(src, dst) * hop_cost_;
}

sim::SimDuration TorusTopology::min_cross_latency() const { return hop_cost_; }

bool TorusTopology::concurrent_local_routing(const sim::ShardPlan& plan) const {
  // Whole-z-slab blocks: every dimension-order route between two slab nodes
  // stays inside the slab (x/y legs never leave the plane; the z leg of a
  // contiguous slab of height <= Z/2 never takes the wrap path), so slabs
  // touch disjoint links. Requires the id space to cover the full torus.
  return plan.aligned() && plan.nodes == ports_ &&
         (plan.nodes / plan.shards) % (dims_.x * dims_.y) == 0;
}

void TorusTopology::set_lanes(std::uint32_t n) {
  CNI_CHECK(n >= 1);
  if (n > tallies_.size()) tallies_.resize(n);
}

sim::SimDuration TorusTopology::contention_time() const {
  sim::SimDuration total = 0;
  for (const Tally& t : tallies_) total += t.queued;
  return total;
}

std::uint64_t TorusTopology::bursts_routed() const {
  std::uint64_t total = 0;
  for (const Tally& t : tallies_) total += t.bursts;
  return total;
}

// ---- Factory ----

std::unique_ptr<Topology> make_topology(const FabricParams& params) {
  CNI_CHECK_MSG(util::is_pow2(params.switch_ports),
                "fabric port count must be a power of two");
  switch (params.topology) {
    case TopologyKind::kBanyan:
      return std::make_unique<SingleStageTopology>(params.switch_ports,
                                                   params.switch_latency);
    case TopologyKind::kClos:
      return std::make_unique<ClosTopology>(params.switch_ports, params.clos_radix,
                                            params.link_credits, params.switch_latency,
                                            params.propagation);
    case TopologyKind::kTorus:
      return std::make_unique<TorusTopology>(params.switch_ports, params.link_credits,
                                             params.torus_hop_latency,
                                             params.propagation);
  }
  CNI_CHECK_MSG(false, "unknown topology kind");
  return nullptr;
}

}  // namespace cni::atm
