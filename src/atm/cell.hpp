// ATM cell geometry.
//
// Standard ATM moves 53-byte cells with 48 payload bytes; every large
// message pays segmentation-and-reassembly (SAR) and a 5-byte-per-cell
// header tax. Table 5 of the paper isolates this cost with a "mythical"
// ATM of unrestricted cell size — geometry mode `kUnrestricted` here.
#pragma once

#include <cstdint>

#include "util/check.hpp"
#include "util/units.hpp"

namespace cni::atm {

inline constexpr std::uint64_t kCellPayloadBytes = 48;
inline constexpr std::uint64_t kCellHeaderBytes = 5;
inline constexpr std::uint64_t kCellBytes = kCellPayloadBytes + kCellHeaderBytes;

enum class CellMode {
  kStandard,      ///< 53-byte cells, 48-byte payload
  kUnrestricted,  ///< whole frame in one cell (Table 5's mythical network)
};

class CellGeometry {
 public:
  explicit CellGeometry(CellMode mode = CellMode::kStandard) : mode_(mode) {}

  [[nodiscard]] CellMode mode() const { return mode_; }

  /// Number of cells carrying a `len`-byte frame. A zero-length frame still
  /// takes one cell (the header must travel).
  [[nodiscard]] std::uint64_t cells_for(std::uint64_t len) const {
    if (len == 0) return 1;
    if (mode_ == CellMode::kUnrestricted) return 1;
    return util::ceil_div(len, kCellPayloadBytes);
  }

  /// Bytes actually serialized on the wire for a `len`-byte frame
  /// (payload padded to whole cells, plus per-cell headers).
  [[nodiscard]] std::uint64_t wire_bytes(std::uint64_t len) const {
    if (mode_ == CellMode::kUnrestricted) return len + kCellHeaderBytes;
    return cells_for(len) * kCellBytes;
  }

 private:
  CellMode mode_;
};

}  // namespace cni::atm
