#include "atm/coll_tree.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cni::atm {

namespace {

/// Assigns the contiguous range [first, first + count) under `root`:
/// `root` itself is the first id, the rest splits into <= fanin near-even
/// contiguous chunks whose first ids become root's children.
void build_range(CollectiveTree& tree, std::uint32_t root, std::uint32_t count,
                 std::uint32_t fanin, std::uint32_t depth) {
  tree.depth = std::max(tree.depth, depth);
  std::uint32_t rest = count - 1;  // ids after the root itself
  std::uint32_t next = root + 1;
  std::uint32_t slots = std::min(fanin, rest);
  for (std::uint32_t s = 0; s < slots; ++s) {
    // Near-even split: earlier chunks take the remainder, one extra each.
    const std::uint32_t chunk = rest / (slots - s) + (rest % (slots - s) != 0 ? 1 : 0);
    tree.parent[next] = root;
    tree.children[root].push_back(next);
    build_range(tree, next, chunk, fanin, depth + 1);
    next += chunk;
    rest -= chunk;
  }
  CNI_CHECK(rest == 0);
}

}  // namespace

sim::SimDuration CollectiveTree::up_sweep_cost(const Topology& topo,
                                               sim::SimDuration per_hop,
                                               sim::SimDuration per_child) const {
  // Leaves cost 0; evaluate parents after children. Node ids inside a
  // subtree are contiguous and children have larger ids than their parent,
  // so a reverse id sweep is a valid bottom-up order.
  std::vector<sim::SimDuration> t(nodes, 0);
  for (std::uint32_t v = nodes; v-- > 0;) {
    sim::SimDuration worst = 0;
    for (const std::uint32_t c : children[v]) {
      worst = std::max(worst, t[c] + topo.min_latency(c, v) + per_hop);
    }
    t[v] = worst + static_cast<sim::SimDuration>(children[v].size()) * per_child;
  }
  std::uint32_t root = 0;
  while (parent[root] != root) root = parent[root];
  return t[root];
}

CollectiveTree make_kary_tree(std::uint32_t nodes, std::uint32_t fanin) {
  CNI_CHECK(nodes >= 1);
  CollectiveTree tree;
  tree.nodes = nodes;
  tree.fanin = nodes > 1 ? std::min(std::max(fanin, 1u), nodes - 1) : 1;
  tree.parent.assign(nodes, 0);
  tree.children.assign(nodes, {});
  build_range(tree, 0, nodes, tree.fanin, 0);
  return tree;
}

CollectiveTree make_collective_tree(const Topology& topo, std::uint32_t nodes,
                                    sim::SimDuration per_hop,
                                    sim::SimDuration per_child,
                                    std::uint32_t fanin_override) {
  if (fanin_override != 0 || nodes <= 2) {
    return make_kary_tree(nodes, fanin_override != 0 ? fanin_override : 1);
  }
  static constexpr std::uint32_t kCandidates[] = {2, 4, 8, 16, 32};
  CollectiveTree best;
  sim::SimDuration best_cost = 0;
  for (const std::uint32_t k : kCandidates) {
    if (k >= nodes) break;  // nodes >= 3 here, so k = 2 always runs
    CollectiveTree cand = make_kary_tree(nodes, k);
    const sim::SimDuration cost = cand.up_sweep_cost(topo, per_hop, per_child);
    if (best.nodes == 0 || cost < best_cost) {
      best = std::move(cand);
      best_cost = cost;
    }
  }
  return best;
}

CollectiveTree make_star_tree(std::uint32_t nodes, std::uint32_t root) {
  CNI_CHECK(nodes >= 1 && root < nodes);
  CollectiveTree tree;
  tree.nodes = nodes;
  tree.fanin = nodes > 1 ? nodes - 1 : 1;
  tree.depth = nodes > 1 ? 1 : 0;
  tree.parent.assign(nodes, root);
  tree.children.assign(nodes, {});
  for (std::uint32_t v = 0; v < nodes; ++v) {
    if (v != root) tree.children[root].push_back(v);
  }
  return tree;
}

}  // namespace cni::atm
