// The cluster interconnect: host links + a switching topology.
//
// Every node hangs off one port of the fabric via a 622 Mb/s (STS-12)
// full-duplex link. The fabric computes frame delivery timing — uplink
// serialization (with the per-cell header tax), propagation, topology
// traversal with contention (single-stage banyan by default; Clos and torus
// via FabricParams::topology), downlink occupancy — and schedules the
// delivery callback at the receiving NIC.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "atm/cell.hpp"
#include "atm/packet.hpp"
#include "atm/topology.hpp"
#include "sim/engine.hpp"
#include "sim/sharded.hpp"
#include "sim/time.hpp"
#include "util/thread_annotations.hpp"

namespace cni::atm {

/// Timing of one frame's journey, returned to the sending NIC.
struct DeliveryTiming {
  sim::SimTime first_bit_out = 0;  ///< when serialization onto the uplink began
  /// When the last bit reaches the dst NIC. In sharded mode the switch is
  /// traversed at the next epoch barrier (or the owning shard's next fused
  /// sub-window), so `arrival` is 0 (unknown at send time); senders only
  /// consume the source-side fields, which is what makes buffering the
  /// traversal legal at all.
  sim::SimTime arrival = 0;
  std::uint64_t cells = 0;
  std::uint64_t wire_bytes = 0;
};

/// One buffered send, parked between its uplink serialization (computed at
/// send time, from source-local state only) and its switch traversal
/// (performed at the epoch barrier — or, for intra-shard transfers under an
/// aligned plan, by the owning shard's local drain). The canonical routing
/// order is (head, src, seq) — a total order in which every component is
/// derived from the source node alone, so it cannot depend on the shard
/// count, the epoch schedule, or which worker ran first.
struct WireTransfer {
  sim::SimTime head = 0;       ///< first bit reaches the switch input
  sim::SimDuration burst = 0;  ///< uplink serialization time (resource hold)
  std::uint64_t seq = 0;       ///< per-source-node send sequence
  Frame frame;
};

class Fabric {
 public:
  /// Invoked (at the frame's arrival instant) to hand the frame to node
  /// `frame.dst`'s NIC.
  // cni-lint: allow(hot-path-alloc): the hook is installed once per node at
  // cluster setup; per-event delivery captures only its address (FrameTask).
  using DeliveryHook = std::function<void(Frame)>;

  Fabric(sim::Engine& engine, const FabricParams& params);

  // ---- Protocol roles (Clang thread-safety capabilities, DESIGN.md §13) --
  //
  // The fabric has no locks; its sharded-mode safety argument is ownership:
  // send-side state belongs to the sending node's shard during an epoch, the
  // merged pending set belongs to the coordinator at barriers. The two roles
  // are public so the epoch machinery (cluster.cpp's drain hooks) can assert
  // the role its protocol position confers.

  /// Owning-shard role: held (by protocol) while executing a shard's events
  /// — sends, local drains. The barrier also confers it on the coordinator,
  /// since every shard is parked there.
  util::Capability lane_role;
  /// Coordinator role: held between epochs and at barriers, when exactly one
  /// thread runs. Guards the merged pending set and drain scratch.
  util::Capability barrier_role;

  [[nodiscard]] const FabricParams& params() const { return params_; }
  [[nodiscard]] const CellGeometry& cells() const { return geometry_; }
  [[nodiscard]] std::uint32_t node_limit() const { return params_.switch_ports; }

  /// Registers the receive hook for a node (its NIC's reassembly input).
  void attach(NodeId node, DeliveryHook hook);

  /// Sends `frame`, whose serialization onto the uplink may start at `ready`.
  /// Legacy mode: routes through the topology and schedules delivery at the
  /// destination immediately. Sharded mode: occupies the uplink (source-local
  /// state) and buffers a WireTransfer — into the shard's private local queue
  /// when source and destination share a shard and the topology granted
  /// concurrent local routing for the plan, into the shard's outbox
  /// (recording the send in the fusion ledger) otherwise.
  DeliveryTiming send(sim::SimTime ready, Frame frame);

  // ---- Sharded operation (see sim/sharded.hpp, DESIGN.md §12) ----

  /// Minimum cross-node latency the epoch scheduler may exploit: a send
  /// event at t cannot affect another node before t + min_lookahead(). The
  /// traversal floor comes from the topology (banyan: the switch pipeline;
  /// Clos: one leaf block; torus: one hop), plus the two propagation legs
  /// every path pays (uplink wire before the fabric, downlink wire after).
  [[nodiscard]] sim::SimDuration min_lookahead() const {
    return topology_->min_cross_latency() + 2 * params_.propagation;
  }
  /// A buffered head at H is final once every shard passed H - drain_horizon
  /// (the uplink adds at least one propagation leg before the fabric).
  [[nodiscard]] sim::SimDuration drain_horizon() const { return params_.propagation; }
  /// A buffered head at H cannot deliver before H + pending_bound().
  [[nodiscard]] sim::SimDuration pending_bound() const {
    return topology_->min_cross_latency() + params_.propagation;
  }

  /// Per-shard-pair lookahead for `plan` (sim::next_epoch_end's matrix):
  /// the topology's minimum zero-load traversal between each pair of blocks
  /// plus the two propagation legs. The single-stage banyan yields uniform
  /// rows equal to min_lookahead(); Clos and torus yield genuinely
  /// distance-dependent rows — torus neighbor slabs sit one hop apart while
  /// far slabs earn many hops of extra slack — and the epoch scheduler
  /// exploits them with no further changes.
  [[nodiscard]] sim::LookaheadMatrix lookahead_matrix(const sim::ShardPlan& plan) const;

  /// Switches the fabric into sharded mode: node i's deliveries are
  /// scheduled on engine_of_node[i], and sends from node i buffer into the
  /// outbox (or local queue) of shard_of_node[i]. When `ledger` is non-null
  /// every barrier-requiring send is recorded there, enabling epoch fusion.
  /// Call once, before any traffic.
  void enable_sharding(std::vector<sim::Engine*> engine_of_node,
                       std::vector<std::uint32_t> shard_of_node,
                       const sim::ShardPlan& plan, sim::FusionLedger* ledger);

  /// Epoch-barrier drain. Single-threaded (barriers order it against all
  /// shard execution): flushes every outbox *and* every shard-local queue
  /// into the pending set with one size-reserved sorted merge (no
  /// per-transfer allocation), then routes each transfer with head < limit
  /// through the topology + downlink in canonical (head, src, seq) order,
  /// scheduling delivery on the destination shard's engine. Returns the
  /// earliest still-buffered head, or sim::kNever.
  sim::SimTime drain(sim::SimTime limit);

  /// Fused-epoch fast path: routes `shard`'s own intra-block transfers with
  /// head < limit, in canonical order, and returns the earliest remaining
  /// local head. Callable concurrently for *different* shards: transfers
  /// only enter local queues when Topology::concurrent_local_routing(plan)
  /// held — intra-block paths of different blocks traverse disjoint
  /// contention resources — and the destination downlink/engine belong to
  /// the owning shard.
  sim::SimTime local_drain(std::uint32_t shard, sim::SimTime limit);

  /// Earliest unrouted transfer in `shard`'s local queue (kNever when none).
  /// Owner-shard only, like local_drain.
  [[nodiscard]] sim::SimTime local_pending_min(std::uint32_t shard) const;

  [[nodiscard]] bool sharded() const { return sharded_; }
  [[nodiscard]] std::uint64_t frames_sent() const;
  [[nodiscard]] std::uint64_t cells_sent() const;
  [[nodiscard]] const Topology& topology() const { return *topology_; }
  /// The banyan when the fabric is single-stage; check-fails otherwise.
  [[nodiscard]] const BanyanSwitch& fabric_switch() const;

 private:
  /// Per-shard frame/cell tallies and local transfer queue, cache-line
  /// padded: lane s is touched by shard s during epochs (appends, local
  /// drains) and by the coordinator only at barriers.
  struct alignas(64) Lane {
    std::uint64_t frames = 0;
    std::uint64_t cells = 0;
    // Local (intra-block) queue: `fresh` collects appends in send order;
    // local_drain folds it into `sorted` (canonical order, consumed from
    // `pos`) with a size-reserved merge through `scratch`.
    std::vector<WireTransfer> fresh;
    sim::SimTime fresh_min = sim::kNever;
    std::vector<WireTransfer> sorted;
    std::size_t pos = 0;
    std::vector<WireTransfer> scratch;
  };

  /// The switch-to-NIC leg shared by both modes: topology traversal,
  /// downlink occupancy, delivery event. `lane` charges the statistics
  /// tallies; the coordinator's barrier drains use lane 0, shard s's local
  /// drains lane s (sound: barrier drains never run concurrently with
  /// anything, and local drains of different shards touch disjoint
  /// resources).
  sim::SimTime route_and_schedule(sim::SimTime head, sim::SimDuration burst, Frame frame,
                                  std::uint32_t lane) CNI_REQUIRES(lane_role);

  /// Folds a lane's fresh appends into its sorted queue (canonical order).
  void merge_lane(Lane& lane) CNI_REQUIRES(lane_role);

  sim::Engine& engine_;
  FabricParams params_;
  CellGeometry geometry_;
  std::unique_ptr<Topology> topology_;
  std::vector<sim::ServiceQueue> uplinks_;
  std::vector<sim::ServiceQueue> downlinks_;
  std::vector<DeliveryHook> hooks_;
  // Sharded mode. Each outbox/lane is touched only by its own shard's worker
  // during an epoch and consumed only at barriers (except the lane's local
  // queue, drained by its own shard); the epoch machinery's release/acquire
  // edges are the happens-before between the two sides.
  bool sharded_ = false;
  /// Topology granted concurrent_local_routing(plan): local fast path on.
  bool local_ok_ = false;
  std::uint32_t shards_ = 1;
  sim::FusionLedger* ledger_ = nullptr;
  std::vector<sim::Engine*> engine_of_node_;
  std::vector<std::uint32_t> shard_of_node_;
  // per source node
  std::vector<std::uint64_t> send_seq_ CNI_GUARDED_BY(lane_role);
  // per source shard
  std::vector<std::vector<WireTransfer>> outboxes_ CNI_GUARDED_BY(lane_role);
  // Per shard; lane 0 in legacy mode. Unguarded on purpose: element s is
  // per-shard state like outboxes_, but frames_sent()/cells_sent() read all
  // lanes role-free at quiescence (per-element guarding is beyond the
  // annotation language — merge_lane/local_drain's REQUIRES carry it).
  std::vector<Lane> lanes_;
  std::vector<WireTransfer> pending_ CNI_GUARDED_BY(barrier_role);  // canonical order
  std::size_t pending_pos_ CNI_GUARDED_BY(barrier_role) = 0;  // routed prefix
  std::vector<WireTransfer> batch_ CNI_GUARDED_BY(barrier_role);   // drain scratch
  std::vector<WireTransfer> merged_ CNI_GUARDED_BY(barrier_role);  // drain scratch
};

}  // namespace cni::atm
