// The cluster interconnect: host links + banyan switch.
//
// Every node hangs off one port of a 32-port banyan ATM switch via a
// 622 Mb/s (STS-12) full-duplex link. The fabric computes frame delivery
// timing — uplink serialization (with the per-cell header tax), propagation,
// fabric traversal with contention, downlink occupancy — and schedules the
// delivery callback at the receiving NIC.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "atm/banyan.hpp"
#include "atm/cell.hpp"
#include "atm/packet.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace cni::atm {

struct FabricParams {
  std::uint64_t link_bits_per_sec = util::kSts12BitsPerSec;
  sim::SimDuration switch_latency = 500 * sim::kNanosecond;  // Table 1
  sim::SimDuration propagation = 150 * sim::kNanosecond;     // Table 1 ("network latency")
  std::uint32_t switch_ports = 32;
  CellMode cell_mode = CellMode::kStandard;
};

/// Timing of one frame's journey, returned to the sending NIC.
struct DeliveryTiming {
  sim::SimTime first_bit_out = 0;  ///< when serialization onto the uplink began
  sim::SimTime arrival = 0;        ///< when the last bit reaches the dst NIC
  std::uint64_t cells = 0;
  std::uint64_t wire_bytes = 0;
};

class Fabric {
 public:
  /// Invoked (at the frame's arrival instant) to hand the frame to node
  /// `frame.dst`'s NIC.
  // cni-lint: allow(hot-path-alloc): the hook is installed once per node at
  // cluster setup; per-event delivery captures only its address (FrameTask).
  using DeliveryHook = std::function<void(Frame)>;

  Fabric(sim::Engine& engine, const FabricParams& params);

  [[nodiscard]] const FabricParams& params() const { return params_; }
  [[nodiscard]] const CellGeometry& cells() const { return geometry_; }
  [[nodiscard]] std::uint32_t node_limit() const { return params_.switch_ports; }

  /// Registers the receive hook for a node (its NIC's reassembly input).
  void attach(NodeId node, DeliveryHook hook);

  /// Sends `frame`, whose serialization onto the uplink may start at `ready`.
  /// Schedules delivery at the destination and returns the timing.
  DeliveryTiming send(sim::SimTime ready, Frame frame);

  [[nodiscard]] std::uint64_t frames_sent() const { return frames_; }
  [[nodiscard]] std::uint64_t cells_sent() const { return cells_total_; }
  [[nodiscard]] const BanyanSwitch& fabric_switch() const { return switch_; }

 private:
  sim::Engine& engine_;
  FabricParams params_;
  CellGeometry geometry_;
  BanyanSwitch switch_;
  std::vector<sim::ServiceQueue> uplinks_;
  std::vector<sim::ServiceQueue> downlinks_;
  std::vector<DeliveryHook> hooks_;
  std::uint64_t frames_ = 0;
  std::uint64_t cells_total_ = 0;
};

}  // namespace cni::atm
