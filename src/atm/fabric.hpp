// The cluster interconnect: host links + banyan switch.
//
// Every node hangs off one port of a 32-port banyan ATM switch via a
// 622 Mb/s (STS-12) full-duplex link. The fabric computes frame delivery
// timing — uplink serialization (with the per-cell header tax), propagation,
// fabric traversal with contention, downlink occupancy — and schedules the
// delivery callback at the receiving NIC.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "atm/banyan.hpp"
#include "atm/cell.hpp"
#include "atm/packet.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace cni::atm {

struct FabricParams {
  std::uint64_t link_bits_per_sec = util::kSts12BitsPerSec;
  sim::SimDuration switch_latency = 500 * sim::kNanosecond;  // Table 1
  sim::SimDuration propagation = 150 * sim::kNanosecond;     // Table 1 ("network latency")
  std::uint32_t switch_ports = 32;
  CellMode cell_mode = CellMode::kStandard;
};

/// Timing of one frame's journey, returned to the sending NIC.
struct DeliveryTiming {
  sim::SimTime first_bit_out = 0;  ///< when serialization onto the uplink began
  /// When the last bit reaches the dst NIC. In sharded mode the switch is
  /// traversed at the next epoch barrier, so `arrival` is 0 (unknown at send
  /// time); senders only consume the source-side fields, which is what makes
  /// buffering the traversal legal at all.
  sim::SimTime arrival = 0;
  std::uint64_t cells = 0;
  std::uint64_t wire_bytes = 0;
};

/// One cross-shard send, buffered between its uplink serialization (computed
/// at send time, from source-local state only) and its switch traversal
/// (performed at the epoch barrier). The canonical drain order is
/// (head, src, seq) — a total order in which every component is derived from
/// the source node alone, so it cannot depend on the shard count or on which
/// worker ran first.
struct WireTransfer {
  sim::SimTime head = 0;       ///< first bit reaches the switch input
  sim::SimDuration burst = 0;  ///< uplink serialization time (resource hold)
  std::uint64_t seq = 0;       ///< per-source-node send sequence
  Frame frame;
};

class Fabric {
 public:
  /// Invoked (at the frame's arrival instant) to hand the frame to node
  /// `frame.dst`'s NIC.
  // cni-lint: allow(hot-path-alloc): the hook is installed once per node at
  // cluster setup; per-event delivery captures only its address (FrameTask).
  using DeliveryHook = std::function<void(Frame)>;

  Fabric(sim::Engine& engine, const FabricParams& params);

  [[nodiscard]] const FabricParams& params() const { return params_; }
  [[nodiscard]] const CellGeometry& cells() const { return geometry_; }
  [[nodiscard]] std::uint32_t node_limit() const { return params_.switch_ports; }

  /// Registers the receive hook for a node (its NIC's reassembly input).
  void attach(NodeId node, DeliveryHook hook);

  /// Sends `frame`, whose serialization onto the uplink may start at `ready`.
  /// Legacy mode: routes through the switch and schedules delivery at the
  /// destination immediately. Sharded mode: occupies the uplink (source-local
  /// state) and buffers a WireTransfer into the calling shard's outbox; the
  /// traversal happens at the next epoch barrier via drain().
  DeliveryTiming send(sim::SimTime ready, Frame frame);

  // ---- Sharded operation (see sim/sharded.hpp, DESIGN.md §12) ----

  /// Minimum cross-node latency the epoch scheduler may exploit: a send
  /// event at t cannot affect another node before t + min_lookahead().
  [[nodiscard]] sim::SimDuration min_lookahead() const {
    return params_.switch_latency + 2 * params_.propagation;
  }
  /// A buffered head at H is final once every shard passed H - drain_horizon
  /// (the uplink adds at least one propagation leg before the switch).
  [[nodiscard]] sim::SimDuration drain_horizon() const { return params_.propagation; }
  /// A buffered head at H cannot deliver before H + pending_bound().
  [[nodiscard]] sim::SimDuration pending_bound() const {
    return params_.switch_latency + params_.propagation;
  }

  /// Switches the fabric into sharded mode: node i's deliveries are
  /// scheduled on engine_of_node[i], and sends from node i buffer into the
  /// outbox of shard_of_node[i]. Call once, before any traffic.
  void enable_sharding(std::vector<sim::Engine*> engine_of_node,
                       std::vector<std::uint32_t> shard_of_node, std::uint32_t shards);

  /// Epoch-barrier drain. Single-threaded (barriers order it against all
  /// shard execution): merges every shard's outbox, sorts canonically by
  /// (head, src, seq), and routes each transfer with head < limit through
  /// the banyan + downlink, scheduling delivery on the destination shard's
  /// engine. Returns the earliest still-buffered head, or sim::kNever.
  sim::SimTime drain(sim::SimTime limit);

  [[nodiscard]] bool sharded() const { return sharded_; }
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_; }
  [[nodiscard]] std::uint64_t cells_sent() const { return cells_total_; }
  [[nodiscard]] const BanyanSwitch& fabric_switch() const { return switch_; }

 private:
  /// The switch-to-NIC leg shared by both modes: banyan traversal, downlink
  /// occupancy, delivery event. Mutates global (cross-node) resources, so in
  /// sharded mode only drain() may call it.
  sim::SimTime route_and_schedule(sim::SimTime head, sim::SimDuration burst, Frame frame);

  sim::Engine& engine_;
  FabricParams params_;
  CellGeometry geometry_;
  BanyanSwitch switch_;
  std::vector<sim::ServiceQueue> uplinks_;
  std::vector<sim::ServiceQueue> downlinks_;
  std::vector<DeliveryHook> hooks_;
  std::uint64_t frames_ = 0;
  std::uint64_t cells_total_ = 0;
  // Sharded mode. Each outbox is appended to only by its own shard's worker
  // during an epoch and consumed only by drain() at the barrier; the epoch
  // barrier's acquire/release pair is the happens-before between the two.
  bool sharded_ = false;
  std::uint32_t shards_ = 1;
  std::vector<sim::Engine*> engine_of_node_;
  std::vector<std::uint32_t> shard_of_node_;
  std::vector<std::uint64_t> send_seq_;            // per source node
  std::vector<std::vector<WireTransfer>> outboxes_;  // per source shard
  std::vector<WireTransfer> pending_;              // merged, awaiting finality
};

}  // namespace cni::atm
