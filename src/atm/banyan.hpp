// Banyan switch fabric model.
//
// The paper's switch latencies come from "a 32-port banyan-network based ATM
// switch model": log2(P) stages of 2x2 switching elements, self-routing on
// the destination address bits. We model contention by treating each
// element output as a serially-reusable resource at burst granularity and
// cut-through forwarding with a fixed pipeline latency through the fabric.
#pragma once

#include <cstdint>
#include <vector>

#include "atm/packet.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace cni::atm {

class BanyanSwitch {
 public:
  /// `ports` must be a power of two (the paper's switch has 32).
  /// `fabric_latency` is the total pipeline latency through all stages.
  BanyanSwitch(std::uint32_t ports, sim::SimDuration fabric_latency);

  [[nodiscard]] std::uint32_t ports() const { return ports_; }
  [[nodiscard]] std::uint32_t stages() const { return stages_; }
  [[nodiscard]] sim::SimDuration latency() const { return fabric_latency_; }

  /// Routes a burst entering input `src` at time `t`, destined for output
  /// `dst`, that occupies each traversed resource for `burst` time.
  /// Returns when its first bit emerges at the output port. Contention with
  /// earlier bursts sharing any element output delays it. `lane` selects the
  /// statistics tally to charge: concurrent callers (the sharded fabric's
  /// per-shard local drains) must each use a private lane so the counters
  /// stay race-free without atomics.
  sim::SimTime route(sim::SimTime t, NodeId src, NodeId dst, sim::SimDuration burst,
                     std::uint32_t lane = 0);

  /// Grows the statistics tally array to `n` lanes (default 1). Call before
  /// any concurrent routing; existing counts are preserved in lane 0.
  void set_lanes(std::uint32_t n);

  /// Total time bursts spent queued due to output contention (for stats).
  /// Summed over lanes; call only while no concurrent route() is running
  /// (legacy mode, or at/after an epoch barrier).
  [[nodiscard]] sim::SimDuration contention_time() const;
  [[nodiscard]] std::uint64_t bursts_routed() const;

  /// The element output resource used at `stage` on the path src->dst,
  /// exposed for tests (identifies which flows collide).
  [[nodiscard]] std::size_t path_resource(NodeId src, NodeId dst, std::uint32_t stage) const;

 private:
  /// One cache line per lane so concurrent local drains never false-share.
  struct alignas(64) Tally {
    sim::SimDuration contention = 0;
    std::uint64_t bursts = 0;
  };

  std::uint32_t ports_;
  std::uint32_t stages_;
  sim::SimDuration fabric_latency_;
  // One ServiceQueue per element output per stage: stages_ * ports_ queues.
  std::vector<sim::ServiceQueue> outputs_;
  std::vector<Tally> tallies_{1};
};

}  // namespace cni::atm
