#include "atm/banyan.hpp"

#include "util/check.hpp"
#include "util/units.hpp"

namespace cni::atm {

BanyanSwitch::BanyanSwitch(std::uint32_t ports, sim::SimDuration fabric_latency)
    : ports_(ports), fabric_latency_(fabric_latency) {
  CNI_CHECK_MSG(util::is_pow2(ports), "banyan port count must be a power of two");
  stages_ = 0;
  for (std::uint32_t p = ports; p > 1; p >>= 1) ++stages_;
  outputs_.resize(static_cast<std::size_t>(stages_) * ports_);
}

std::size_t BanyanSwitch::path_resource(NodeId src, NodeId dst, std::uint32_t stage) const {
  CNI_CHECK(stage < stages_);
  // In a butterfly/banyan, after stage s the route has fixed the top (s+1)
  // destination bits; the remaining low bits still carry the source's
  // position. The wire the burst occupies after stage s is therefore
  // identified by taking dst's high bits and src's low bits.
  const std::uint32_t fixed = stage + 1;
  const std::uint32_t high_mask = ((1u << fixed) - 1u) << (stages_ - fixed);
  const std::uint32_t low_mask = (stages_ - fixed == 0)
                                     ? 0u
                                     : ((1u << (stages_ - fixed)) - 1u);
  const std::uint32_t wire = (dst & high_mask) | (src & low_mask);
  return static_cast<std::size_t>(stage) * ports_ + wire;
}

void BanyanSwitch::set_lanes(std::uint32_t n) {
  CNI_CHECK(n >= 1);
  if (n > tallies_.size()) tallies_.resize(n);
}

sim::SimDuration BanyanSwitch::contention_time() const {
  sim::SimDuration total = 0;
  for (const Tally& t : tallies_) total += t.contention;
  return total;
}

std::uint64_t BanyanSwitch::bursts_routed() const {
  std::uint64_t total = 0;
  for (const Tally& t : tallies_) total += t.bursts;
  return total;
}

sim::SimTime BanyanSwitch::route(sim::SimTime t, NodeId src, NodeId dst,
                                 sim::SimDuration burst, std::uint32_t lane) {
  CNI_CHECK(src < ports_ && dst < ports_);
  CNI_DCHECK(lane < tallies_.size());
  Tally& tally = tallies_[lane];
  ++tally.bursts;
  const sim::SimDuration per_stage = fabric_latency_ / stages_;
  sim::SimTime head = t;  // when the burst's first bit reaches the next stage
  for (std::uint32_t s = 0; s < stages_; ++s) {
    sim::ServiceQueue& out = outputs_[path_resource(src, dst, s)];
    const sim::SimTime done = out.occupy(head, burst);
    const sim::SimTime started = done - burst;  // after any queueing delay
    tally.contention += started - head;
    head = started + per_stage;  // cut-through: pipeline latency per stage
  }
  return head;
}

}  // namespace cni::atm
