#include "atm/fabric.hpp"

#include <algorithm>
#include <iterator>

#include "util/check.hpp"

namespace cni::atm {
namespace {

/// The canonical routing order: (head, src, seq). src+seq alone are unique,
/// so this is a total order, and every key component comes from source-local
/// state — the sorted sequence is independent of the shard count, the epoch
/// schedule and worker timing.
bool canonical_less(const WireTransfer& a, const WireTransfer& b) {
  if (a.head != b.head) return a.head < b.head;
  if (a.frame.src != b.frame.src) return a.frame.src < b.frame.src;
  return a.seq < b.seq;
}

}  // namespace

Fabric::Fabric(sim::Engine& engine, const FabricParams& params)
    : engine_(engine),
      params_(params),
      geometry_(params.cell_mode),
      topology_(make_topology(params)),
      uplinks_(params.switch_ports),
      downlinks_(params.switch_ports),
      hooks_(params.switch_ports),
      lanes_(1) {}

const BanyanSwitch& Fabric::fabric_switch() const {
  const BanyanSwitch* sw = topology_->single_stage();
  CNI_CHECK_MSG(sw != nullptr, "fabric_switch() on a non-banyan topology");
  return *sw;
}

void Fabric::attach(NodeId node, DeliveryHook hook) {
  CNI_CHECK(node < hooks_.size());
  CNI_CHECK_MSG(hooks_[node] == nullptr, "node already attached to fabric");
  hooks_[node] = std::move(hook);
}

std::uint64_t Fabric::frames_sent() const {
  std::uint64_t total = 0;
  for (const Lane& l : lanes_) total += l.frames;
  return total;
}

std::uint64_t Fabric::cells_sent() const {
  std::uint64_t total = 0;
  for (const Lane& l : lanes_) total += l.cells;
  return total;
}

sim::LookaheadMatrix Fabric::lookahead_matrix(const sim::ShardPlan& plan) const {
  sim::LookaheadMatrix m;
  m.shards = plan.shards;
  m.entries.assign(static_cast<std::size_t>(plan.shards) * plan.shards, 0);
  // The topology supplies the zero-load traversal floor between each pair of
  // blocks; every path additionally pays the uplink propagation leg before
  // the fabric and the downlink one after, so both legs join the bound.
  topology_->fill_block_latency(plan, m);
  for (std::uint32_t r = 0; r < plan.shards; ++r) {
    for (std::uint32_t c = 0; c < plan.shards; ++c) {
      sim::SimDuration& e = m.entries[static_cast<std::size_t>(r) * plan.shards + c];
      e = r == c ? sim::LookaheadMatrix::kUnbounded : e + 2 * params_.propagation;
    }
  }
  return m;
}

void Fabric::enable_sharding(std::vector<sim::Engine*> engine_of_node,
                             std::vector<std::uint32_t> shard_of_node,
                             const sim::ShardPlan& plan, sim::FusionLedger* ledger) {
  CNI_CHECK_MSG(!sharded_, "fabric sharding enabled twice");
  CNI_CHECK_MSG(frames_sent() == 0, "cannot enable sharding after traffic started");
  CNI_CHECK(engine_of_node.size() == hooks_.size() &&
            shard_of_node.size() == hooks_.size() && plan.shards >= 1);
  // Held by protocol: sharding is enabled once at cluster setup, before any
  // worker thread exists, so the setup thread owns every role.
  barrier_role.assert_held();
  lane_role.assert_held();
  sharded_ = true;
  local_ok_ = topology_->concurrent_local_routing(plan);
  shards_ = plan.shards;
  ledger_ = ledger;
  engine_of_node_ = std::move(engine_of_node);
  shard_of_node_ = std::move(shard_of_node);
  send_seq_.assign(hooks_.size(), 0);
  outboxes_.resize(shards_);
  lanes_.resize(shards_);
  topology_->set_lanes(shards_);
}

sim::SimTime Fabric::route_and_schedule(sim::SimTime head, sim::SimDuration burst,
                                        Frame frame, std::uint32_t lane) {
  const NodeId dst = frame.dst;
  // Cut-through: the burst's head crosses the fabric stage by stage (or hop
  // by hop), delayed by contention with earlier bursts sharing a resource.
  // A traced frame (nonzero causal token) additionally collects the per-
  // category attribution of its route — reads of the same state the route
  // already advances, so traced and untraced runs time identically.
  RouteTrace rt;
  const bool traced = frame.trace != 0;
  if (traced) {
    // send() pre-filled the uplink leg into frame.fab; resume from it so the
    // final breakdown covers the full sar-done -> arrival interval.
    const FabBreakdown pre = FabBreakdown::unpack(frame.fab);
    rt.wire = pre.wire_ns * sim::kNanosecond;
    rt.contend = pre.contend_ns * sim::kNanosecond;
    rt.credit = pre.credit_ns * sim::kNanosecond;
    rt.hops = pre.hops;
  }
  const sim::SimTime head_out =
      topology_->route(head, frame.src, dst, burst, lane, traced ? &rt : nullptr);

  // Downlink occupancy + propagation to the destination NIC. The last bit
  // arrives when the burst finishes serializing down the link.
  const sim::SimTime down_done = downlinks_[dst].occupy(head_out, burst);
  const sim::SimTime arrival = down_done + params_.propagation;
  if (traced) {
    // Downlink waits count as contention; serialization + flight as wire.
    // The breakdown travels inside the frame and becomes causal records on
    // the destination node at delivery, where event order is deterministic.
    rt.contend += (down_done - burst) - head_out;
    rt.wire += burst + params_.propagation;
    ++rt.hops;
    FabBreakdown b;
    b.wire_ns = static_cast<std::uint32_t>(rt.wire / sim::kNanosecond);
    b.contend_ns = static_cast<std::uint32_t>(rt.contend / sim::kNanosecond);
    b.credit_ns = static_cast<std::uint32_t>(rt.credit / sim::kNanosecond);
    b.hops = rt.hops;
    frame.fab = b.pack();
  }

  Lane& tally = lanes_[lane];
  ++tally.frames;
  tally.cells += geometry_.cells_for(frame.size());

  // The delivery event carries only the hook pointer plus the frame's
  // flattened Parts (FrameTask): it fits InlineFn's inline buffer and shares
  // the pooled payload by refcount instead of copying the Frame into a
  // heap-allocated closure. hooks_ is sized once in the constructor, so the
  // element address is stable across the event's lifetime. Sharded mode uses
  // the biased delivery sequence so same-instant ties against node-local
  // events resolve by content, not by epoch schedule (DESIGN.md §12).
  FrameTask task([hook = &hooks_[dst]](Frame f) { (*hook)(std::move(f)); },
                 std::move(frame));
  if (sharded_) {
    engine_of_node_[dst]->schedule_delivery(arrival, std::move(task));
  } else {
    engine_.schedule_at(arrival, std::move(task));
  }
  return arrival;
}

DeliveryTiming Fabric::send(sim::SimTime ready, Frame frame) {
  // Held by protocol: a send executes on the sending node's owning shard
  // (its events live on that shard's engine); legacy mode is one thread.
  lane_role.assert_held();
  const NodeId src = frame.src;
  const NodeId dst = frame.dst;
  CNI_CHECK(src < hooks_.size() && dst < hooks_.size());
  CNI_CHECK_MSG(hooks_[dst] != nullptr, "destination node not attached");

  DeliveryTiming t;
  t.cells = geometry_.cells_for(frame.size());
  t.wire_bytes = geometry_.wire_bytes(frame.size());
  const sim::SimDuration serialization =
      sim::transmission_time(t.wire_bytes * 8, params_.link_bits_per_sec);

  // Uplink: the frame's cells serialize back-to-back once the link frees up
  // (ServiceQueue::occupy starts the job when the link drains). The uplink
  // is source-local state, so this side runs at send time in both modes.
  const sim::SimTime up_done = uplinks_[src].occupy(ready, serialization);
  const sim::SimTime up_start = up_done - serialization;
  t.first_bit_out = up_start;
  const sim::SimTime head = up_start + params_.propagation;

  if (frame.trace != 0) {
    // Traced frame: stash the uplink leg (wait is contention, flight to the
    // switch is wire) in the packed breakdown; route_and_schedule resumes
    // from it when the deferred traversal replays.
    FabBreakdown b;
    b.wire_ns = static_cast<std::uint32_t>(params_.propagation / sim::kNanosecond);
    b.contend_ns = static_cast<std::uint32_t>((up_start - ready) / sim::kNanosecond);
    b.hops = 1;
    frame.fab = b.pack();
  }

  if (sharded_) {
    // The switch and downlink are cross-node resources: defer the traversal
    // and replay it in canonical (head, src, seq) order later. Intra-shard
    // transfers park in the shard's private local queue when the topology
    // granted concurrent local routing (the shard routes them itself
    // mid-epoch: their paths are disjoint from every other shard's);
    // everything else goes to the outbox for the
    // next barrier drain and is recorded in the fusion ledger, whose stop
    // rule ends a fused epoch before the delivery could be missed.
    const std::uint32_t ss = shard_of_node_[src];
    WireTransfer w;
    w.head = head;
    w.burst = serialization;
    w.seq = ++send_seq_[src];
    w.frame = std::move(frame);
    if (local_ok_ && shard_of_node_[dst] == ss) {
      Lane& l = lanes_[ss];
      if (w.head < l.fresh_min) l.fresh_min = w.head;
      l.fresh.push_back(std::move(w));
    } else {
      if (ledger_ != nullptr) ledger_->note_send(up_start);
      outboxes_[ss].push_back(std::move(w));
    }
    return t;
  }

  t.arrival = route_and_schedule(head, serialization, std::move(frame), 0);
  return t;
}

void Fabric::merge_lane(Lane& l) {
  std::sort(l.fresh.begin(), l.fresh.end(), canonical_less);
  l.scratch.clear();
  l.scratch.reserve(l.sorted.size() - l.pos + l.fresh.size());
  std::merge(std::make_move_iterator(l.sorted.begin() + static_cast<std::ptrdiff_t>(l.pos)),
             std::make_move_iterator(l.sorted.end()),
             std::make_move_iterator(l.fresh.begin()),
             std::make_move_iterator(l.fresh.end()), std::back_inserter(l.scratch),
             canonical_less);
  l.sorted.swap(l.scratch);
  l.pos = 0;
  l.fresh.clear();
  l.fresh_min = sim::kNever;
}

sim::SimTime Fabric::local_pending_min(std::uint32_t shard) const {
  // Held by protocol: only `shard`'s own thread asks for its local minimum.
  lane_role.assert_shared();
  const Lane& l = lanes_[shard];
  sim::SimTime m = l.fresh_min;
  if (l.pos < l.sorted.size() && l.sorted[l.pos].head < m) m = l.sorted[l.pos].head;
  return m;
}

sim::SimTime Fabric::local_drain(std::uint32_t shard, sim::SimTime limit) {
  // Held by protocol: the fused loop invokes this hook only on the owning
  // shard's thread, for that shard's lane.
  lane_role.assert_held();
  Lane& l = lanes_[shard];
  if (l.fresh_min < limit) merge_lane(l);
  while (l.pos < l.sorted.size() && l.sorted[l.pos].head < limit) {
    WireTransfer& w = l.sorted[l.pos];
    route_and_schedule(w.head, w.burst, std::move(w.frame), shard);
    ++l.pos;
  }
  if (l.pos == l.sorted.size()) {
    l.sorted.clear();
    l.pos = 0;
  }
  return local_pending_min(shard);
}

sim::SimTime Fabric::drain(sim::SimTime limit) {
  // Held by protocol: drains run between epochs, when every worker is
  // parked at the barrier — which is also what confers every shard's lane
  // on the coordinator.
  barrier_role.assert_held();
  lane_role.assert_held();
  // Flush every outbox and every shard-local queue into one batch, then fold
  // it into the pending set with a single size-reserved merge: per epoch,
  // one sort of the new transfers and one linear merge — no per-transfer
  // allocation and no re-sort of what previous drains already ordered.
  std::size_t add = 0;
  for (const std::vector<WireTransfer>& box : outboxes_) add += box.size();
  for (const Lane& l : lanes_) add += l.fresh.size() + (l.sorted.size() - l.pos);
  if (add != 0) {
    batch_.clear();
    batch_.reserve(add);
    for (std::vector<WireTransfer>& box : outboxes_) {
      for (WireTransfer& w : box) batch_.push_back(std::move(w));
      box.clear();
    }
    for (Lane& l : lanes_) {
      for (std::size_t i = l.pos; i < l.sorted.size(); ++i) {
        batch_.push_back(std::move(l.sorted[i]));
      }
      l.sorted.clear();
      l.pos = 0;
      for (WireTransfer& w : l.fresh) batch_.push_back(std::move(w));
      l.fresh.clear();
      l.fresh_min = sim::kNever;
    }
    std::sort(batch_.begin(), batch_.end(), canonical_less);
    merged_.clear();
    merged_.reserve(pending_.size() - pending_pos_ + batch_.size());
    std::merge(
        std::make_move_iterator(pending_.begin() + static_cast<std::ptrdiff_t>(pending_pos_)),
        std::make_move_iterator(pending_.end()), std::make_move_iterator(batch_.begin()),
        std::make_move_iterator(batch_.end()), std::back_inserter(merged_),
        canonical_less);
    pending_.swap(merged_);
    pending_pos_ = 0;
    batch_.clear();
  }
  while (pending_pos_ < pending_.size() && pending_[pending_pos_].head < limit) {
    WireTransfer& w = pending_[pending_pos_];
    route_and_schedule(w.head, w.burst, std::move(w.frame), 0);
    ++pending_pos_;
  }
  if (pending_pos_ == pending_.size()) {
    pending_.clear();
    pending_pos_ = 0;
    return sim::kNever;
  }
  return pending_[pending_pos_].head;
}

}  // namespace cni::atm
