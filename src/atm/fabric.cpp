#include "atm/fabric.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cni::atm {

Fabric::Fabric(sim::Engine& engine, const FabricParams& params)
    : engine_(engine),
      params_(params),
      geometry_(params.cell_mode),
      switch_(params.switch_ports, params.switch_latency),
      uplinks_(params.switch_ports),
      downlinks_(params.switch_ports),
      hooks_(params.switch_ports) {}

void Fabric::attach(NodeId node, DeliveryHook hook) {
  CNI_CHECK(node < hooks_.size());
  CNI_CHECK_MSG(hooks_[node] == nullptr, "node already attached to fabric");
  hooks_[node] = std::move(hook);
}

void Fabric::enable_sharding(std::vector<sim::Engine*> engine_of_node,
                             std::vector<std::uint32_t> shard_of_node,
                             std::uint32_t shards) {
  CNI_CHECK_MSG(!sharded_, "fabric sharding enabled twice");
  CNI_CHECK_MSG(frames_ == 0, "cannot enable sharding after traffic started");
  CNI_CHECK(engine_of_node.size() == hooks_.size() &&
            shard_of_node.size() == hooks_.size() && shards >= 1);
  sharded_ = true;
  shards_ = shards;
  engine_of_node_ = std::move(engine_of_node);
  shard_of_node_ = std::move(shard_of_node);
  send_seq_.assign(hooks_.size(), 0);
  outboxes_.resize(shards_);
}

sim::SimTime Fabric::route_and_schedule(sim::SimTime head, sim::SimDuration burst,
                                        Frame frame) {
  const NodeId dst = frame.dst;
  // Cut-through: the burst's head crosses the fabric stage by stage, delayed
  // by contention with earlier bursts sharing an element output.
  const sim::SimTime head_out = switch_.route(head, frame.src, dst, burst);

  // Downlink occupancy + propagation to the destination NIC. The last bit
  // arrives when the burst finishes serializing down the link.
  const sim::SimTime down_done = downlinks_[dst].occupy(head_out, burst);
  const sim::SimTime arrival = down_done + params_.propagation;

  ++frames_;
  cells_total_ += geometry_.cells_for(frame.size());

  // The delivery event carries only the hook pointer plus the frame's
  // flattened Parts (FrameTask): it fits InlineFn's inline buffer and shares
  // the pooled payload by refcount instead of copying the Frame into a
  // heap-allocated closure. hooks_ is sized once in the constructor, so the
  // element address is stable across the event's lifetime.
  sim::Engine& target = sharded_ ? *engine_of_node_[dst] : engine_;
  target.schedule_at(
      arrival, FrameTask([hook = &hooks_[dst]](Frame f) { (*hook)(std::move(f)); },
                         std::move(frame)));
  return arrival;
}

DeliveryTiming Fabric::send(sim::SimTime ready, Frame frame) {
  const NodeId src = frame.src;
  const NodeId dst = frame.dst;
  CNI_CHECK(src < hooks_.size() && dst < hooks_.size());
  CNI_CHECK_MSG(hooks_[dst] != nullptr, "destination node not attached");

  DeliveryTiming t;
  t.cells = geometry_.cells_for(frame.size());
  t.wire_bytes = geometry_.wire_bytes(frame.size());
  const sim::SimDuration serialization =
      sim::transmission_time(t.wire_bytes * 8, params_.link_bits_per_sec);

  // Uplink: the frame's cells serialize back-to-back once the link frees up
  // (ServiceQueue::occupy starts the job when the link drains). The uplink
  // is source-local state, so this side runs at send time in both modes.
  const sim::SimTime up_done = uplinks_[src].occupy(ready, serialization);
  const sim::SimTime up_start = up_done - serialization;
  t.first_bit_out = up_start;
  const sim::SimTime head = up_start + params_.propagation;

  if (sharded_) {
    // The switch and downlink are global resources: defer their traversal to
    // the epoch barrier, where drain() replays all shards' transfers in the
    // canonical (head, src, seq) order. Appending here touches only this
    // shard's outbox, so concurrent sends from different shards never race.
    WireTransfer w;
    w.head = head;
    w.burst = serialization;
    w.seq = ++send_seq_[src];
    w.frame = std::move(frame);
    outboxes_[shard_of_node_[src]].push_back(std::move(w));
    return t;
  }

  t.arrival = route_and_schedule(head, serialization, std::move(frame));
  return t;
}

sim::SimTime Fabric::drain(sim::SimTime limit) {
  for (std::vector<WireTransfer>& box : outboxes_) {
    for (WireTransfer& w : box) pending_.push_back(std::move(w));
    box.clear();
  }
  if (pending_.empty()) return sim::kNever;
  // (head, src, seq) is a total order over transfers — src+seq alone are
  // unique — and every key component comes from source-local state, so the
  // sorted sequence is independent of the shard count and worker timing.
  std::sort(pending_.begin(), pending_.end(),
            [](const WireTransfer& a, const WireTransfer& b) {
              if (a.head != b.head) return a.head < b.head;
              if (a.frame.src != b.frame.src) return a.frame.src < b.frame.src;
              return a.seq < b.seq;
            });
  std::size_t done = 0;
  while (done < pending_.size() && pending_[done].head < limit) {
    WireTransfer& w = pending_[done];
    route_and_schedule(w.head, w.burst, std::move(w.frame));
    ++done;
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(done));
  return pending_.empty() ? sim::kNever : pending_.front().head;
}

}  // namespace cni::atm
