#include "atm/fabric.hpp"

#include "util/check.hpp"

namespace cni::atm {

Fabric::Fabric(sim::Engine& engine, const FabricParams& params)
    : engine_(engine),
      params_(params),
      geometry_(params.cell_mode),
      switch_(params.switch_ports, params.switch_latency),
      uplinks_(params.switch_ports),
      downlinks_(params.switch_ports),
      hooks_(params.switch_ports) {}

void Fabric::attach(NodeId node, DeliveryHook hook) {
  CNI_CHECK(node < hooks_.size());
  CNI_CHECK_MSG(hooks_[node] == nullptr, "node already attached to fabric");
  hooks_[node] = std::move(hook);
}

DeliveryTiming Fabric::send(sim::SimTime ready, Frame frame) {
  const NodeId src = frame.src;
  const NodeId dst = frame.dst;
  CNI_CHECK(src < hooks_.size() && dst < hooks_.size());
  CNI_CHECK_MSG(hooks_[dst] != nullptr, "destination node not attached");

  DeliveryTiming t;
  t.cells = geometry_.cells_for(frame.size());
  t.wire_bytes = geometry_.wire_bytes(frame.size());
  const sim::SimDuration serialization =
      sim::transmission_time(t.wire_bytes * 8, params_.link_bits_per_sec);

  // Uplink: the frame's cells serialize back-to-back once the link frees up
  // (ServiceQueue::occupy starts the job when the link drains).
  const sim::SimTime up_done = uplinks_[src].occupy(ready, serialization);
  const sim::SimTime up_start = up_done - serialization;
  t.first_bit_out = up_start;

  // Cut-through: the head of the burst enters the fabric after propagating
  // to the switch; the tail follows `serialization` later.
  const sim::SimTime head_at_switch = up_start + params_.propagation;
  const sim::SimTime head_out = switch_.route(head_at_switch, src, dst, serialization);

  // Downlink occupancy + propagation to the destination NIC. The last bit
  // arrives when the burst finishes serializing down the link.
  const sim::SimTime down_done = downlinks_[dst].occupy(head_out, serialization);
  t.arrival = down_done + params_.propagation;

  ++frames_;
  cells_total_ += t.cells;

  // The delivery event carries only the hook pointer plus the frame's
  // flattened Parts (FrameTask): it fits InlineFn's inline buffer and shares
  // the pooled payload by refcount instead of copying the Frame into a
  // heap-allocated closure. hooks_ is sized once in the constructor, so the
  // element address is stable across the event's lifetime.
  engine_.schedule_at(
      t.arrival, FrameTask([hook = &hooks_[dst]](Frame f) { (*hook)(std::move(f)); },
                           std::move(frame)));
  return t;
}

}  // namespace cni::atm
