// Hybrid polling/interrupt receive notification (paper §2.1).
//
// "The host polls the network adaptor board at a rate which is dependent on
// the rate of arrival. If the packet arrival rate is high, the host depends
// on polling... if the arrival rate is low, the host depends on interrupts."
//
// The governor tracks an exponentially weighted moving average of frame
// inter-arrival gaps. An arrival following a gap larger than the interrupt
// threshold (the host has surely stopped polling by then) is signalled by
// interrupt; arrivals in a busy stream are picked up by polls.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace cni::core {

class PollGovernor {
 public:
  /// `interrupt_threshold`: a gap at least this long means the poll loop has
  /// wound down and an interrupt is needed to get the host's attention.
  explicit PollGovernor(sim::SimDuration interrupt_threshold)
      : threshold_(interrupt_threshold) {}

  /// Records an arrival; returns true if this one needs a host interrupt.
  bool on_arrival(sim::SimTime now) {
    bool interrupt;
    if (!seen_any_) {
      interrupt = true;  // first frame ever: nobody is polling yet
      seen_any_ = true;
    } else {
      const sim::SimDuration gap = now - last_arrival_;
      // EWMA with alpha = 1/4, in integer arithmetic.
      avg_gap_ = avg_gap_ - avg_gap_ / 4 + gap / 4;
      interrupt = gap >= threshold_ && avg_gap_ >= threshold_ / 2;
    }
    last_arrival_ = now;
    if (interrupt) {
      ++interrupts_;
    } else {
      ++polled_;
    }
    return interrupt;
  }

  [[nodiscard]] sim::SimDuration average_gap() const { return avg_gap_; }
  [[nodiscard]] std::uint64_t interrupts() const { return interrupts_; }
  [[nodiscard]] std::uint64_t polled() const { return polled_; }

 private:
  sim::SimDuration threshold_;
  sim::SimTime last_arrival_ = 0;
  sim::SimDuration avg_gap_ = 0;
  bool seen_any_ = false;
  std::uint64_t interrupts_ = 0;
  std::uint64_t polled_ = 0;
};

}  // namespace cni::core
