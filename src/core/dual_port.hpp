// Dual-ported on-board memory allocator.
//
// The OSIRIS board carries 1 MB of dual-ported memory shared by the host
// (mapped queues) and the NIC processors. On the CNI it is partitioned among
// the Message Cache's cached buffers, the Application Device Channel queue
// triplets, and the Application Interrupt Handler code segments — the paper
// notes the 1 MB "may be sufficient" (§3.2). This first-fit allocator keeps
// the budget honest: over-subscribing board memory fails loudly.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>

namespace cni::core {

class DualPortMemory {
 public:
  explicit DualPortMemory(std::uint64_t capacity_bytes);

  /// First-fit allocation; returns the byte offset of the block, or nullopt
  /// when no hole is large enough. `what` labels the allocation for debug.
  std::optional<std::uint64_t> alloc(std::uint64_t bytes, const std::string& what);

  /// Frees a block previously returned by alloc (exact offset required).
  void free(std::uint64_t offset);

  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t free_bytes() const { return capacity_ - used_; }
  [[nodiscard]] std::size_t allocation_count() const;

 private:
  struct Block {
    std::uint64_t offset;
    std::uint64_t bytes;
    bool allocated;
    std::string what;
  };

  void coalesce();

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::list<Block> blocks_;
};

}  // namespace cni::core
