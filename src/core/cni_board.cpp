#include "core/cni_board.hpp"

#include <cstdio>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/units.hpp"

namespace cni::core {

CniBoard::CniBoard(sim::Engine& engine, atm::Fabric& fabric, nic::HostSystem& host,
                   const nic::NicParams& params, atm::NodeId node,
                   const CniConfig& config, mem::PageGeometry geometry)
    : OsirisBoard(engine, fabric, host, params, node),
      config_(config),
      geometry_(geometry),
      board_mem_(params.dual_port_mem_bytes),
      mcache_(geometry, config.message_cache_bytes),
      aih_(board_mem_),
      tlb_(config.tlb_entries, config.tlb_miss_penalty_nic_cycles),
      rtlb_(config.tlb_entries, config.tlb_miss_penalty_nic_cycles),
      governor_(config.poll_interrupt_threshold) {
  // Resolve observability handles once; obs_ (from the Osiris substrate) is
  // nullptr when the host carries no obs context (standalone test boards).
  if (obs_ != nullptr) {
    tx_wait_hist_ = obs_->metrics().histogram("adc.tx_wait_ps");
    tx_ring_gauge_ = obs_->metrics().gauge("adc.tx_occupancy");
  }

  // The Message Cache's cached buffers live in dual-ported memory.
  auto mc_region = board_mem_.alloc(config.message_cache_bytes, "message-cache");
  CNI_CHECK_MSG(mc_region.has_value(), "Message Cache does not fit board memory");

  // The snoopy interface watches every write transaction on the host bus.
  host_.bus().add_snooper(
      [this](mem::PAddr pa, std::uint64_t len) { on_snoop(pa, len); });

  // The system device channel carries DSM/system traffic; it may reference
  // any host buffer (the kernel opened it at boot with a full-space region).
  system_channel_ = open_channel(0, ~std::uint64_t{0});
  CNI_CHECK(system_channel_ != nullptr);
}

AdcChannel* CniBoard::open_channel(mem::VAddr region_base, std::uint64_t region_len) {
  auto ch = AdcChannel::open(board_mem_, static_cast<std::uint32_t>(channels_.size()),
                             region_base, region_len, config_.adc_slots);
  if (!ch.has_value()) return nullptr;
  // cni-lint: allow(hot-path-alloc): channels open at application setup
  // (one per exported region), not per message.
  channels_.push_back(std::make_unique<AdcChannel>(std::move(*ch)));
  return channels_.back().get();
}

void CniBoard::add_type_pattern(nic::MsgType type) {
  // Match the MsgHeader::type field (bytes 0..1 of the payload). The VCI is
  // deliberately not enough (paper §2.1): one application multiplexes many
  // protocol actions over one circuit, so the pattern inspects header bytes.
  Pattern p;
  p.comparisons.push_back(Comparison{0, 0xFFFF, type});
  p.target = type;
  pathfinder_.add_pattern(std::move(p));
}

void CniBoard::install_handler(nic::MsgType type, Handler handler,
                               std::uint64_t code_bytes) {
  // Swap the relocatable object code into a free AIH segment and program the
  // PATHFINDER to activate it on a header match.
  auto seg = aih_.install(type, code_bytes);
  if (!seg.has_value()) {
    // Name the numbers before dying: which handler, how much it wanted, and
    // what the board already holds — "does not fit" alone is undebuggable.
    const core::DualPortMemory& mem = aih_.board_memory();
    std::fprintf(stderr,
                 "cni: AIH install failed: handler type %u needs %llu bytes, but the "
                 "board holds %zu segments / %llu handler bytes and has %llu of %llu "
                 "board-memory bytes free\n",
                 static_cast<unsigned>(type),
                 static_cast<unsigned long long>(code_bytes), aih_.segment_count(),
                 static_cast<unsigned long long>(aih_.resident_bytes()),
                 static_cast<unsigned long long>(mem.free_bytes()),
                 static_cast<unsigned long long>(mem.capacity()));
  }
  CNI_CHECK_MSG(seg.has_value(), "AIH segment does not fit board memory");
  host_.bus().dma_read(engine_.now(), code_bytes);  // one-time swap-in transfer
  add_type_pattern(type);
  OsirisBoard::install_handler(type, std::move(handler), code_bytes);
}

void CniBoard::bind_channel(nic::MsgType type, sim::SimChannel<atm::Frame>* channel) {
  add_type_pattern(type);
  OsirisBoard::bind_channel(type, channel);
}

void CniBoard::send_from_host(sim::SimThread& self, atm::Frame frame,
                              const SendOptions& opts) {
  // Host-side cost: write the descriptor into the mapped transmit queue
  // (protection is verified here, at enqueue — never again on this path) and,
  // on a write-back host, flush the buffer so memory (and therefore the
  // snooped Message Cache copy) is current before the board touches it.
  std::uint64_t cycles = params_.adc_enqueue_cycles;
  if (opts.source_va != 0) {
    const std::uint64_t span = opts.source_len != 0 ? opts.source_len : frame.size();
    cycles += host_.flush_buffer(opts.source_va, span);
  }

  const nic::MsgHeader hdr = frame.header<nic::MsgHeader>();
  const AdcDescriptor desc{opts.source_va, static_cast<std::uint32_t>(frame.size()),
                           hdr.type, hdr.flags};
  CNI_CHECK_MSG(system_channel_->enqueue_tx(desc),
                "system ADC transmit ring rejected a descriptor");
  CNI_TRACE_INSTANT(obs_, engine_.now(), obs::Component::kAdc,
                    obs::Event::kAdcEnqueueTx, frame.size(),
                    system_channel_->tx_ring().count());
  CNI_OBS_GAUGE_SET(tx_ring_gauge_, system_channel_->tx_ring().count());
  host_.charge_overhead(self, cycles);

  // The transmit processor consumes the descriptor asynchronously.
  const auto taken = system_channel_->dequeue_tx();
  CNI_CHECK(taken.has_value());
  CNI_OBS_GAUGE_SET(tx_ring_gauge_, system_channel_->tx_ring().count());
  start_tx(engine_.now(), std::move(frame), opts);
}

void CniBoard::send_from_protocol(sim::SimTime ready, atm::Frame frame,
                                  const SendOptions& opts) {
  // Protocol code already runs on the board: no host CPU is involved at all.
  start_tx(ready, std::move(frame), opts);
}

void CniBoard::start_tx(sim::SimTime t, atm::Frame frame, const SendOptions& opts) {
  const nic::MsgHeader hdr = frame.header<nic::MsgHeader>();
  CNI_LOG_DEBUG("board%u start_tx type=%x dst=%u seq=%u", node_, hdr.type, frame.dst,
                hdr.seq);
  CNI_TRACE_MINT(obs_, frame);
  const bool traced = frame.trace != 0;
  const std::uint64_t bytes = frame.size();
  // Queueing delay behind earlier descriptors: the gap between the enqueue
  // instant and the transmit processor picking this frame up.
  [[maybe_unused]] const sim::SimDuration tx_wait =
      tx_proc_.busy_until() > t ? tx_proc_.busy_until() - t : 0;
  CNI_OBS_HIST(tx_wait_hist_, tx_wait);
  CNI_TRACE_SPAN(obs_, t, t + tx_wait, obs::Component::kAdc, obs::Event::kAdcTxWait,
                 bytes, hdr.type);
  sim::SimTime cursor = tx_proc_.occupy(t, nic_clock_.cycles(params_.per_frame_tx_cycles));

  auto& st = host_.stats();
  if (opts.source_va != 0 && !config_.enable_message_cache) {
    // Ablation: no Message Cache — every transmit pulls its data across the
    // bus, like the standard board (ADC and PATHFINDER still apply).
    cursor = host_.bus().dma_read(cursor, bytes);
    ++st.dma_transfers;
    st.dma_bytes += bytes;
    CNI_TRACE_INSTANT(obs_, cursor, obs::Component::kDma, obs::Event::kDmaTransfer,
                      bytes, 0);
  } else if (opts.source_va != 0) {
    // Transmit caching: probe the buffer map, one lookup per resident page.
    // The probed span is the *host buffer* the payload derives from — for a
    // DSM diff that is the whole page the protocol code reads, so a bound
    // page lets the NIC build the reply without touching the host at all.
    const std::uint64_t span = opts.source_len != 0 ? opts.source_len : bytes;
    const std::uint64_t pages = util::ceil_div(span, geometry_.size());
    cursor = tx_proc_.occupy(cursor,
                             nic_clock_.cycles(params_.mcache_lookup_cycles * pages));
    ++st.mcache_tx_lookups;
    // A non-binding send (a diff reply) probes the whole source span but on
    // a miss moves only the frame's bytes; a binding send pulls and binds
    // the whole buffer, per paper 2.2.
    const bool hit = mcache_.lookup_tx(opts.source_va, span);
    if (hit) {
      // Transmit straight from the cached buffers — no DMA.
      ++st.mcache_tx_hits;
      CNI_TRACE_INSTANT(obs_, cursor, obs::Component::kMCache,
                        obs::Event::kMCacheLookupHit, opts.source_va, span);
    } else {
      CNI_TRACE_INSTANT(obs_, cursor, obs::Component::kMCache,
                        obs::Event::kMCacheLookupMiss, opts.source_va, span);
      [[maybe_unused]] const sim::SimTime miss_start = cursor;
      // Pull the buffer across the bus (virtually addressed DMA via the
      // board TLB), then bind it if the header asked for caching.
      std::uint64_t tlb_cycles = 0;
      tlb_.lookup(geometry_.page_of(opts.source_va),
                  [this](mem::PageNum vpn) {
                    return std::optional<mem::PageNum>(host_.page_table().frame_of(vpn));
                  },
                  &tlb_cycles);
      cursor += nic_clock_.cycles(tlb_cycles);
      cursor = host_.bus().dma_read(cursor, opts.cacheable ? span : bytes);
      ++st.dma_transfers;
      st.dma_bytes += bytes;
      CNI_TRACE_INSTANT(obs_, cursor, obs::Component::kDma, obs::Event::kDmaTransfer,
                        opts.cacheable ? span : bytes, 0);
      if (opts.cacheable) {
        const std::uint64_t before = mcache_.evictions();
        mcache_.insert(opts.source_va, span);
        const std::uint64_t evicted = mcache_.evictions() - before;
        st.mcache_evictions += evicted;
        CNI_TRACE_INSTANT(obs_, cursor, obs::Component::kMCache,
                          obs::Event::kMCacheInsert, opts.source_va, span);
        if (evicted != 0) {
          CNI_TRACE_INSTANT(obs_, cursor, obs::Component::kMCache,
                            obs::Event::kMCacheEvict, evicted, span);
        }
      }
      if (traced) {
        // Attribute the miss's pull time as a sub-span of the transmit
        // stage: the critical-path tool carves it out of the tx bucket.
        CNI_TRACE_CAUSAL(obs_, miss_start, cursor, obs::Stage::kMCache,
                         obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kMCache),
                         obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kTx));
      }
    }
  }

  const sim::SimTime sar_done = tx_proc_.occupy(cursor, sar_time(bytes));
  ++st.messages_sent;
  st.bytes_sent += bytes;
  CNI_TRACE_SPAN(obs_, t, sar_done, obs::Component::kNic, obs::Event::kTxFrame, bytes,
                 hdr.type);
  if (traced) {
    // The transmit stage spans enqueue pickup to sar completion; its parent
    // is the cross-frame token a protocol layer stamped (0 for a chain root).
    CNI_TRACE_CAUSAL(obs_, t, sar_done, obs::Stage::kTx,
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kTx),
                     (frame.trace & 0xffu) != 0 ? frame.trace : 0);
  }
  const atm::DeliveryTiming timing = fabric_.send(sar_done, std::move(frame));
  st.cells_sent += timing.cells;
}

void CniBoard::on_snoop(mem::PAddr pa, std::uint64_t len) {
  // Physical target -> RTLB -> host virtual page -> buffer map. The RTLB
  // makes the reverse translation cheap; its miss penalty is absorbed by the
  // snoop pipeline (it never stalls the CPU), so we track no time here.
  std::uint64_t unused = 0;
  auto vpn = rtlb_.lookup(host_.page_table().geometry().page_of(pa),
                          [this](mem::PageNum ppn) { return host_.page_table().vpn_of(ppn); },
                          &unused);
  if (!vpn.has_value()) return;  // not a mapped page: snoop aborted
  const mem::VAddr va = geometry_.base_of(*vpn) | geometry_.offset_of(pa);
  if (mcache_.snoop_write(va, len)) {
    ++host_.stats().mcache_snoop_updates;
    CNI_TRACE_INSTANT(obs_, engine_.now(), obs::Component::kMCache,
                      obs::Event::kMCacheSnoop, va, len);
  }
}

void CniBoard::on_frame(atm::Frame frame) {
  {
    const nic::MsgHeader h = frame.header<nic::MsgHeader>();
    CNI_LOG_DEBUG("board%u on_frame type=%x src=%u seq=%u", node_, h.type, h.src_node, h.seq);
  }
  const sim::SimTime arrival = engine_.now();
  const std::uint64_t bytes = frame.size();
  sim::SimTime cursor = rx_proc_.occupy(
      arrival, nic_clock_.cycles(params_.per_frame_rx_cycles) + sar_time(bytes));

  // PATHFINDER classification: full pattern walk on the first fragment, the
  // dynamic pattern for the rest (one comparison per cell).
  const nic::MsgHeader hdr = frame.header<nic::MsgHeader>();
  const bool traced = frame.trace != 0;
  [[maybe_unused]] std::uint64_t rx_parent = 0;
  if (traced) {
    rx_parent = trace_fabric_arrival(arrival, hdr.src_node, hdr.seq, frame.fab);
  }
  const FlowKey flow{hdr.src_node, frame.vci, hdr.seq};
  const std::uint64_t fragments = fabric_.cells().cells_for(bytes);
  const Pathfinder::Result cls = pathfinder_.classify(frame.bytes(), flow, fragments);
  CNI_CHECK_MSG(cls.matched, "PATHFINDER found no pattern for an arriving frame");
  cursor = rx_proc_.occupy(
      cursor,
      nic_clock_.cycles(cls.comparisons * params_.pathfinder_cycles_per_comparison));
  CNI_TRACE_INSTANT(obs_, cursor, obs::Component::kPathfinder,
                    obs::Event::kPathfinderClassify, cls.comparisons,
                    cls.via_dynamic ? 1 : 0);
  CNI_TRACE_SPAN(obs_, arrival, cursor, obs::Component::kNic, obs::Event::kRxFrame,
                 bytes, hdr.type);

  // Receive caching (paper §2.2): a message whose header carries the cache
  // bit binds its pages in the buffer map on the way in.
  auto& st = host_.stats();
  if (config_.enable_message_cache && (hdr.flags & nic::kFlagCacheable) != 0 &&
      hdr.buffer_va != 0) {
    const std::uint64_t before = mcache_.evictions();
    mcache_.insert(hdr.buffer_va, bytes);
    const std::uint64_t evicted = mcache_.evictions() - before;
    st.mcache_evictions += evicted;
    ++st.mcache_rx_inserts;
    CNI_TRACE_INSTANT(obs_, cursor, obs::Component::kMCache, obs::Event::kMCacheInsert,
                      hdr.buffer_va, bytes);
    if (evicted != 0) {
      CNI_TRACE_INSTANT(obs_, cursor, obs::Component::kMCache, obs::Event::kMCacheEvict,
                        evicted, bytes);
    }
  }

  if (Handler* h = find_handler(hdr.type); h != nullptr) {
    if (!config_.enable_aih) {
      // Ablation: no Application Interrupt Handlers — the protocol message
      // is DMAed up and handled on the host after an interrupt, exactly the
      // standard board's control path (ADC/Message Cache still apply).
      const sim::SimTime dma_done = host_.bus().dma_write(cursor, 0, bytes);
      ++st.host_interrupts;
      CNI_TRACE_INSTANT(obs_, dma_done, obs::Component::kDma, obs::Event::kDmaTransfer,
                        bytes, 1);
      const sim::Clock cpu = host_.cpu_clock();
      const std::uint64_t intr_cycles =
          cpu.to_cycles_ceil(params_.interrupt_latency) + params_.kernel_recv_cycles;
      host_.steal_cycles(intr_cycles);
      const sim::SimTime dispatch = dma_done + cpu.cycles(intr_cycles);
      CNI_TRACE_INSTANT(obs_, dispatch, obs::Component::kHost, obs::Event::kHostInterrupt,
                        bytes, 0);
      CNI_TRACE_INSTANT(obs_, dispatch, obs::Component::kNic, obs::Event::kAihDispatch,
                        hdr.type, 0);
      if (traced) {
        CNI_TRACE_CAUSAL(obs_, arrival, dispatch, obs::Stage::kRx,
                         obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kRx),
                         rx_parent);
      }
      // The dispatch event fires at `dispatch`, so the callback rebuilds it
      // from engine_.now() — capturing it would push the closure past
      // InlineFn's inline budget now that Parts carries the causal fields.
      engine_.schedule_at(dispatch, atm::FrameTask(
                                        [this, h](atm::Frame f) {
                                          run_handler(*h, std::move(f), /*on_nic=*/false);
                                        },
                                        std::move(frame)));
      return;
    }
    // Control transfers to the Application Interrupt Handler on the board.
    const sim::SimTime dispatch =
        rx_proc_.occupy(cursor, nic_clock_.cycles(params_.aih_dispatch_cycles));
    CNI_TRACE_INSTANT(obs_, dispatch, obs::Component::kNic, obs::Event::kAihDispatch,
                      hdr.type, 1);
    if (traced) {
      CNI_TRACE_CAUSAL(obs_, arrival, dispatch, obs::Stage::kRx,
                       obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kRx),
                       rx_parent);
    }
    engine_.schedule_at(dispatch, atm::FrameTask(
                                      [this, h](atm::Frame f) {
                                        run_handler(*h, std::move(f), /*on_nic=*/true);
                                      },
                                      std::move(frame)));
    return;
  }

  // Application-level message: DMA the payload to the posted host buffer,
  // then notify by poll pickup or (after a long idle gap) by interrupt.
  sim::SimTime done = cursor;
  if (hdr.buffer_va != 0) {
    const mem::PAddr pa = host_.page_table().translate(hdr.buffer_va);
    done = host_.bus().dma_write(cursor, pa, bytes);
    host_.cache_invalidate(hdr.buffer_va, bytes);
    ++st.dma_transfers;
    st.dma_bytes += bytes;
    CNI_TRACE_INSTANT(obs_, done, obs::Component::kDma, obs::Event::kDmaTransfer,
                      bytes, 1);
  }
  const bool interrupt = governor_.on_arrival(arrival);
  if (interrupt != governor_intr_mode_) {
    // Edge between notification modes: the hybrid governor switched between
    // poll pickup (busy stream) and interrupts (idle host).
    governor_intr_mode_ = interrupt;
    CNI_TRACE_INSTANT(obs_, arrival, obs::Component::kGovernor,
                      obs::Event::kGovernorModeSwitch, interrupt ? 1 : 0,
                      governor_.average_gap());
  }
  if (interrupt) {
    ++st.host_interrupts;
    const std::uint64_t intr_cycles =
        host_.cpu_clock().to_cycles_ceil(params_.interrupt_latency);
    host_.steal_cycles(intr_cycles);
    done += host_.cpu_clock().cycles(intr_cycles);
    CNI_TRACE_INSTANT(obs_, done, obs::Component::kGovernor,
                      obs::Event::kGovernorInterrupt, governor_.average_gap(), 0);
  } else {
    CNI_TRACE_INSTANT(obs_, done, obs::Component::kGovernor,
                      obs::Event::kGovernorPoll, governor_.average_gap(), 0);
  }
  if (traced) {
    CNI_TRACE_CAUSAL(obs_, arrival, cursor, obs::Stage::kRx,
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kRx),
                     rx_parent);
    // Delivery covers DMA to the posted buffer plus the notification cost.
    CNI_TRACE_CAUSAL(obs_, cursor, done, obs::Stage::kDeliver,
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kDeliver),
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kRx));
  }
  deliver_to_channel(done, std::move(frame));
}

sim::SimTime CniBoard::rx_charge(RxContext& ctx, std::uint64_t cycles) {
  if (!ctx.on_nic()) {
    // AIH ablation: the handler runs on the host, stealing CPU cycles.
    host_.steal_cycles(cycles);
    return ctx.cursor() + host_.cpu_clock().cycles(cycles);
  }
  // Handler code executes on the 33 MHz network processor.
  return rx_proc_.occupy(ctx.cursor(), nic_clock_.cycles(cycles));
}

sim::SimTime CniBoard::rx_transfer_to_host(RxContext& ctx, mem::VAddr va,
                                           std::uint64_t bytes) {
  std::uint64_t tlb_cycles = 0;
  tlb_.lookup(geometry_.page_of(va),
              [this](mem::PageNum vpn) {
                return std::optional<mem::PageNum>(host_.page_table().frame_of(vpn));
              },
              &tlb_cycles);
  const mem::PAddr pa = host_.page_table().translate(va);
  const sim::SimTime start = ctx.cursor() + nic_clock_.cycles(tlb_cycles);
  const sim::SimTime done = host_.bus().dma_write(start, pa, bytes);
  host_.cache_invalidate(va, bytes);
  auto& st = host_.stats();
  ++st.dma_transfers;
  st.dma_bytes += bytes;
  CNI_TRACE_INSTANT(obs_, done, obs::Component::kDma, obs::Event::kDmaTransfer, bytes, 1);
  return done;
}

atm::Frame CniBoard::receive_app(sim::SimThread& self,
                                 sim::SimChannel<atm::Frame>& channel) {
  atm::Frame f = channel.receive(self);
  // Poll pickup: the application reads the receive queue head from the
  // mapped dual-port memory.
  ++host_.stats().host_polls;
  host_.charge_overhead(self, params_.host_poll_cycles);
  return f;
}

}  // namespace cni::core
