// Application Interrupt Handler memory (paper §2.3).
//
// Protocol code is written in a pointer-safe language, compiled to
// relocatable NIC object code, and swapped whole into a free segment of
// board memory when the application opens its connection — there is
// deliberately *no* virtual memory on the board (a page fault at network
// arrival rates would be ruinous), so the entire handler must fit. The
// PATHFINDER is then programmed to transfer control to the segment when a
// matching packet arrives.
//
// In the simulation a handler's *behaviour* is a C++ callback; this class
// accounts the board-memory residency and the swap-in transfer.
#pragma once

#include <cstdint>
#include <optional>

#include "core/dual_port.hpp"
#include "util/check.hpp"
#include "util/flat_map.hpp"

namespace cni::core {

class AihRegion {
 public:
  struct Segment {
    std::uint64_t board_offset = 0;
    std::uint64_t code_bytes = 0;
  };

  explicit AihRegion(DualPortMemory& board_mem) : mem_(board_mem) {}

  /// Swaps handler object code onto the board. Returns the segment, or
  /// nullopt if board memory is exhausted (the caller decides whether that
  /// is fatal; for the DSM protocol it is).
  std::optional<Segment> install(std::uint32_t handler_id, std::uint64_t code_bytes) {
    CNI_CHECK_MSG(!segments_.contains(handler_id), "handler id already has a segment");
    auto offset = mem_.alloc(code_bytes, "aih-segment");
    // Exhaustion is a clean refusal: no segment is recorded and the
    // residency accounting is untouched, so the caller can diagnose (or
    // evict and retry) against consistent numbers.
    if (!offset.has_value()) return std::nullopt;
    Segment seg{*offset, code_bytes};
    segments_.insert(handler_id, seg);
    resident_bytes_ += code_bytes;
    return seg;
  }

  /// Removes a handler's code from the board.
  void remove(std::uint32_t handler_id) {
    const Segment* seg = segments_.find(handler_id);
    CNI_CHECK_MSG(seg != nullptr, "removing an uninstalled handler");
    mem_.free(seg->board_offset);
    resident_bytes_ -= seg->code_bytes;
    segments_.erase(handler_id);
  }

  [[nodiscard]] bool resident(std::uint32_t handler_id) const {
    return segments_.contains(handler_id);
  }

  [[nodiscard]] std::uint64_t resident_bytes() const { return resident_bytes_; }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  /// The board memory backing the segments (for exhaustion diagnostics).
  [[nodiscard]] const DualPortMemory& board_memory() const { return mem_; }

 private:
  DualPortMemory& mem_;
  util::U64FlatMap<Segment> segments_;
  std::uint64_t resident_bytes_ = 0;
};

}  // namespace cni::core
