// Application Device Channels (paper §2.1).
//
// A device channel is a triplet of transmit, receive and free descriptor
// queues in on-board dual-ported memory, mapped into the application's
// address space when a connection opens. Protection is verified only when a
// buffer is *placed* in a queue — never on the send/receive fast path — and
// queue manipulation is lock-free, relying only on the atomicity of loads
// and stores (single-producer/single-consumer rings), so no gang scheduling
// of network access is ever needed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/page.hpp"
#include "core/dual_port.hpp"

namespace cni::core {

/// One descriptor: a (virtual address, length) buffer reference plus flags.
struct AdcDescriptor {
  mem::VAddr buffer_va = 0;
  std::uint32_t length = 0;
  std::uint16_t msg_type = 0;
  std::uint16_t flags = 0;
};

/// A single-producer/single-consumer descriptor ring. Head and tail are each
/// written by exactly one side, which is what makes plain (atomic-load/store)
/// manipulation safe on real hardware.
class DescriptorRing {
 public:
  explicit DescriptorRing(std::uint32_t slots);

  [[nodiscard]] bool full() const { return count() == slots_; }
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] std::uint32_t count() const { return head_ - tail_; }
  [[nodiscard]] std::uint32_t slots() const { return slots_; }

  /// Producer side. Returns false (ring full) without enqueueing.
  bool push(const AdcDescriptor& d);

  /// Consumer side.
  std::optional<AdcDescriptor> pop();

  /// Bytes of dual-port memory a ring of this size occupies.
  [[nodiscard]] static std::uint64_t footprint_bytes(std::uint32_t slots) {
    return static_cast<std::uint64_t>(slots) * sizeof(AdcDescriptor) + 2 * sizeof(std::uint32_t);
  }

 private:
  std::vector<AdcDescriptor> ring_;
  std::uint32_t slots_;
  std::uint32_t head_ = 0;  // written by producer only
  std::uint32_t tail_ = 0;  // written by consumer only
};

/// The transmit/receive/free queue triplet forming one device channel, with
/// the protection domain it was opened with.
class AdcChannel {
 public:
  /// Opens a channel whose application may only reference buffers inside
  /// [region_base, region_base + region_len). Queue memory is carved from
  /// the board's dual-ported memory; opening fails (returns nullopt from
  /// Open) if the board is out of memory.
  static std::optional<AdcChannel> open(DualPortMemory& board_mem, std::uint32_t channel_id,
                                        mem::VAddr region_base, std::uint64_t region_len,
                                        std::uint32_t slots);

  AdcChannel(AdcChannel&&) = default;
  AdcChannel& operator=(AdcChannel&&) = delete;
  AdcChannel(const AdcChannel&) = delete;

  [[nodiscard]] std::uint32_t id() const { return id_; }

  /// The protection check performed when a buffer is placed in a queue.
  [[nodiscard]] bool verify(mem::VAddr buffer, std::uint64_t len) const {
    return buffer >= region_base_ && buffer + len <= region_base_ + region_len_;
  }

  /// Application -> board: queue a transmit descriptor. Fails the protection
  /// check or a full ring by returning false.
  bool enqueue_tx(const AdcDescriptor& d);

  /// Board side: take the next transmit descriptor.
  std::optional<AdcDescriptor> dequeue_tx() { return tx_.pop(); }

  /// Application -> board: post a receive buffer (goes on the free queue).
  bool post_receive_buffer(const AdcDescriptor& d);

  /// Board side: claim a posted buffer for an arriving message.
  std::optional<AdcDescriptor> claim_receive_buffer() { return free_.pop(); }

  /// Board -> application: completed receive descriptors.
  bool complete_receive(const AdcDescriptor& d) { return rx_.push(d); }
  std::optional<AdcDescriptor> poll_receive() { return rx_.pop(); }

  [[nodiscard]] const DescriptorRing& tx_ring() const { return tx_; }
  [[nodiscard]] const DescriptorRing& rx_ring() const { return rx_; }
  [[nodiscard]] const DescriptorRing& free_ring() const { return free_; }

  [[nodiscard]] std::uint64_t protection_rejects() const { return protection_rejects_; }

 private:
  AdcChannel(std::uint32_t id, mem::VAddr region_base, std::uint64_t region_len,
             std::uint32_t slots, std::uint64_t board_offset);

  std::uint32_t id_;
  mem::VAddr region_base_;
  std::uint64_t region_len_;
  std::uint64_t board_offset_;  ///< where the triplet lives in dual-port memory
  DescriptorRing tx_;
  DescriptorRing rx_;
  DescriptorRing free_;
  std::uint64_t protection_rejects_ = 0;
};

}  // namespace cni::core
