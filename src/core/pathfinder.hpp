// PATHFINDER: a pattern-based packet classifier (Bailey et al., OSDI '94).
//
// The CNI uses this hardware classifier to demultiplex incoming packets to
// the right Application Device Channel or Application Interrupt Handler
// without software dispatch. We model its two published key features:
//
//  * flexible classification programmability — patterns are ordered lists of
//    masked comparisons against the packet's header bytes, installed and
//    removed at run time;
//  * fragment handling — classifying the first fragment of a packet installs
//    a *dynamic pattern* keyed on the flow, so the remaining fragments match
//    in a single comparison instead of re-running the full pattern list.
//
// The cost model (comparisons examined x cycles-per-comparison) is what the
// CNI receive path charges its 33 MHz processor pipeline for classification.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/check.hpp"
#include "util/flat_map.hpp"

namespace cni::core {

/// One masked comparison: up to 8 header bytes at `offset` (little-endian,
/// zero-padded past the end of the header) must equal `value` under `mask`.
struct Comparison {
  std::uint32_t offset = 0;
  std::uint64_t mask = ~0ULL;
  std::uint64_t value = 0;
};

struct Pattern {
  std::vector<Comparison> comparisons;
  std::uint32_t target = 0;  ///< demux target (handler / channel id)
};

/// Identifies a flow for dynamic (per-fragment) patterns: the ATM VCI plus
/// the source and per-sender packet sequence number.
struct FlowKey {
  std::uint32_t src = 0;
  std::uint32_t vci = 0;
  std::uint32_t seq = 0;

  bool operator==(const FlowKey&) const = default;

  /// Lossless 64-bit packing used as the dynamic-pattern table key. Node ids
  /// and VCIs are 16-bit quantities on the wire (the ATM VCI field is 16
  /// bits; clusters are far below 65536 nodes), checked here so a widened
  /// field can never silently alias another flow.
  [[nodiscard]] std::uint64_t packed() const {
    CNI_DCHECK(src < (1u << 16));
    CNI_DCHECK(vci < (1u << 16));
    return (static_cast<std::uint64_t>(src) << 48) |
           (static_cast<std::uint64_t>(vci) << 32) | seq;
  }
};

class Pathfinder {
 public:
  using PatternId = std::uint32_t;

  struct Result {
    bool matched = false;
    std::uint32_t target = 0;
    std::uint64_t comparisons = 0;  ///< classifier work performed
    bool via_dynamic = false;       ///< resolved through a dynamic pattern
  };

  /// Installs a pattern; earlier installations have higher priority.
  PatternId add_pattern(Pattern pattern);

  /// Removes an installed pattern.
  void remove_pattern(PatternId id);

  /// Pre-installs a dynamic (per-flow) binding, as classification of an
  /// earlier fragment of the flow would. The next classify() of this flow
  /// resolves through it in one comparison per fragment and consumes it.
  void install_dynamic(const FlowKey& flow, std::uint32_t target);

  /// Classifies a packet's header bytes. `fragments` is how many wire
  /// fragments (ATM cells) carried the packet: the first runs the full
  /// pattern list, the rest hit the dynamic pattern at one comparison each.
  Result classify(std::span<const std::byte> header, const FlowKey& flow,
                  std::uint64_t fragments);

  [[nodiscard]] std::size_t pattern_count() const;
  [[nodiscard]] std::uint64_t classifications() const { return classifications_; }
  [[nodiscard]] std::uint64_t dynamic_hits() const { return dynamic_hits_; }

  /// Evaluates a single pattern against header bytes (exposed for tests).
  static bool matches(const Pattern& pattern, std::span<const std::byte> header);

 private:
  static std::uint64_t read_le64(std::span<const std::byte> header, std::uint32_t offset);

  struct Installed {
    Pattern pattern;
    PatternId id;
    bool active;
  };
  std::vector<Installed> patterns_;
  util::U64FlatMap<std::uint32_t> dynamic_;
  PatternId next_id_ = 1;
  std::uint64_t classifications_ = 0;
  std::uint64_t dynamic_hits_ = 0;
};

}  // namespace cni::core
