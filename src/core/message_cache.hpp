// The Message Cache (paper §2.2) — the CNI's central mechanism.
//
// The board keeps page-sized *cached buffers* in its dual-ported memory,
// each bound to one host virtual-memory page through the *buffer map*.
// Bound buffers are kept consistent with host memory by snooping every
// write transaction on the memory bus (physical target -> RTLB -> virtual
// page -> buffer map). Three operations use it:
//
//   transmit caching — a transmit whose source pages are all bound skips the
//     host->board DMA entirely;
//   receive caching  — an arriving DSM page with the header's cache bit set
//     is bound on its way to host memory, so a future migration of the same
//     page transmits straight from the board;
//   consistency snooping — CPU writes (write-backs, flushes, write-throughs)
//     and DMA writes that hit a bound page update the buffer in place.
//
// Replacement is approximate LRU: a clock (second-chance) sweep over the
// buffers, which is exactly the kind of "approximate LRU order" hardware
// implements with reference bits.
//
// The model is metadata-only: payload bytes always come from the
// authoritative host memory at the simulated completion instant, which the
// snooping protocol guarantees equals the buffer contents (see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "mem/page.hpp"
#include "util/flat_map.hpp"

namespace cni::core {

class MessageCache {
 public:
  /// `capacity_bytes` is rounded down to whole buffers; each buffer is one
  /// host page (paper: "we have fixed the size of a buffer in the Message
  /// Cache to be the same as that of a page").
  MessageCache(mem::PageGeometry geometry, std::uint64_t capacity_bytes);

  [[nodiscard]] std::size_t buffer_count() const { return buffers_.size(); }
  [[nodiscard]] std::size_t bound_count() const { return map_.size(); }
  [[nodiscard]] const mem::PageGeometry& geometry() const { return geo_; }

  /// Is every page of [va, va+len) bound to a valid buffer?
  [[nodiscard]] bool contains(mem::VAddr va, std::uint64_t len) const;

  /// Transmit-side probe: counts one lookup, touches the pages on a hit.
  /// Returns true (hit) iff the whole range is resident.
  bool lookup_tx(mem::VAddr va, std::uint64_t len);

  /// Binds every page of [va, va+len) to a buffer, evicting approximate-LRU
  /// victims as needed. Used on a cacheable transmit miss (after the DMA
  /// pulls the data on board) and on receive caching.
  void insert(mem::VAddr va, std::uint64_t len);

  /// A snooped write to virtual page address range [va, va+len): updates the
  /// bound buffer if present. Returns true if a buffer absorbed the write.
  bool snoop_write(mem::VAddr va, std::uint64_t len);

  /// Drops the binding for the page containing `va`, if any.
  void invalidate_page(mem::VAddr va);

  /// Drops every binding.
  void invalidate_all();

  // Counters (mirrored into NodeStats by the board).
  [[nodiscard]] std::uint64_t tx_lookups() const { return tx_lookups_; }
  [[nodiscard]] std::uint64_t tx_hits() const { return tx_hits_; }
  [[nodiscard]] std::uint64_t inserts() const { return inserts_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t snoop_updates() const { return snoop_updates_; }

 private:
  struct Buffer {
    mem::PageNum vpn = 0;
    bool valid = false;
    bool referenced = false;  // clock reference bit
  };

  /// Binds one page, running the clock hand to find a victim if needed.
  void bind_page(mem::PageNum vpn);

  mem::PageGeometry geo_;
  std::vector<Buffer> buffers_;
  util::U64FlatMap<std::uint32_t> map_;  // the buffer map: vpn -> buffer index
  std::size_t clock_hand_ = 0;

  std::uint64_t tx_lookups_ = 0;
  std::uint64_t tx_hits_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t snoop_updates_ = 0;
};

}  // namespace cni::core
