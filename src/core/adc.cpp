#include "core/adc.hpp"

#include "util/check.hpp"

namespace cni::core {

DescriptorRing::DescriptorRing(std::uint32_t slots) : ring_(slots), slots_(slots) {
  CNI_CHECK(slots > 0);
}

bool DescriptorRing::push(const AdcDescriptor& d) {
  if (full()) return false;
  ring_[head_ % slots_] = d;
  ++head_;
  return true;
}

std::optional<AdcDescriptor> DescriptorRing::pop() {
  if (empty()) return std::nullopt;
  AdcDescriptor d = ring_[tail_ % slots_];
  ++tail_;
  return d;
}

std::optional<AdcChannel> AdcChannel::open(DualPortMemory& board_mem,
                                           std::uint32_t channel_id,
                                           mem::VAddr region_base, std::uint64_t region_len,
                                           std::uint32_t slots) {
  const std::uint64_t bytes = 3 * DescriptorRing::footprint_bytes(slots);
  auto offset = board_mem.alloc(bytes, "adc-channel");
  if (!offset.has_value()) return std::nullopt;
  return AdcChannel(channel_id, region_base, region_len, slots, *offset);
}

AdcChannel::AdcChannel(std::uint32_t id, mem::VAddr region_base, std::uint64_t region_len,
                       std::uint32_t slots, std::uint64_t board_offset)
    : id_(id),
      region_base_(region_base),
      region_len_(region_len),
      board_offset_(board_offset),
      tx_(slots),
      rx_(slots),
      free_(slots) {}

bool AdcChannel::enqueue_tx(const AdcDescriptor& d) {
  if (!verify(d.buffer_va, d.length)) {
    ++protection_rejects_;
    return false;
  }
  return tx_.push(d);
}

bool AdcChannel::post_receive_buffer(const AdcDescriptor& d) {
  if (!verify(d.buffer_va, d.length)) {
    ++protection_rejects_;
    return false;
  }
  return free_.push(d);
}

}  // namespace cni::core
