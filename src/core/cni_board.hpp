// The CNI board (paper §2) — the paper's primary contribution.
//
// Architecture (paper Figure 1): an OSIRIS-based ATM adaptor on the memory
// bus whose dual-ported memory holds Application Device Channel queue
// triplets, Application Interrupt Handler code segments, and the Message
// Cache's cached buffers + buffer map; a snoopy interface watches bus writes
// and a TLB/RTLB pair translates between host virtual and physical addresses
// for virtually-addressed DMA and reverse snoop lookups; the PATHFINDER
// classifier demultiplexes arriving packets to ADC receive queues or AIH
// protocol code running on the 33 MHz network processor.
#pragma once

#include <memory>
#include <vector>

#include "core/adc.hpp"
#include "core/aih.hpp"
#include "core/dual_port.hpp"
#include "core/message_cache.hpp"
#include "core/pathfinder.hpp"
#include "core/poll_governor.hpp"
#include "nic/osiris.hpp"
#include "obs/obs.hpp"

namespace cni::core {

struct CniConfig {
  std::uint64_t message_cache_bytes = 32 * 1024;  ///< Table 1 default
  std::uint32_t adc_slots = 256;                  ///< descriptors per ring

  // Ablation switches (the paper's three mechanisms, §2). Application
  // Device Channels are the board's substrate and stay on; the other two
  // can be disabled to isolate their contribution (bench/abl_mechanisms).
  bool enable_message_cache = true;  ///< off: every transmit DMAs, no binding
  bool enable_aih = true;            ///< off: protocol code runs on the host
  std::uint32_t tlb_entries = 64;
  std::uint32_t tlb_miss_penalty_nic_cycles = 16;
  /// An arrival gap past this means the host's poll loop has idled out and
  /// the board raises an interrupt instead (hybrid notification, §2.1).
  sim::SimDuration poll_interrupt_threshold = 2 * sim::kMillisecond;
};

class CniBoard final : public nic::OsirisBoard {
 public:
  CniBoard(sim::Engine& engine, atm::Fabric& fabric, nic::HostSystem& host,
           const nic::NicParams& params, atm::NodeId node, const CniConfig& config,
           mem::PageGeometry geometry);

  // ---- NicBoard interface ----
  void send_from_host(sim::SimThread& self, atm::Frame frame,
                      const SendOptions& opts) override;
  void send_from_protocol(sim::SimTime ready, atm::Frame frame,
                          const SendOptions& opts) override;
  void install_handler(nic::MsgType type, Handler handler,
                       std::uint64_t code_bytes) override;
  void bind_channel(nic::MsgType type, sim::SimChannel<atm::Frame>* channel) override;
  atm::Frame receive_app(sim::SimThread& self,
                         sim::SimChannel<atm::Frame>& channel) override;
  [[nodiscard]] std::uint64_t wakeup_cost_cycles() const override {
    return params_.host_poll_cycles;
  }

  // ---- CNI-specific surface ----

  /// Opens an Application Device Channel restricted to the given buffer
  /// region. Returns nullptr if board memory is exhausted.
  AdcChannel* open_channel(mem::VAddr region_base, std::uint64_t region_len);

  [[nodiscard]] MessageCache& message_cache() { return mcache_; }
  [[nodiscard]] const MessageCache& message_cache() const { return mcache_; }
  [[nodiscard]] Pathfinder& pathfinder() { return pathfinder_; }
  [[nodiscard]] DualPortMemory& board_memory() { return board_mem_; }
  [[nodiscard]] AihRegion& aih() { return aih_; }
  [[nodiscard]] const PollGovernor& poll_governor() const { return governor_; }
  [[nodiscard]] AdcChannel& system_channel() { return *system_channel_; }

 protected:
  void on_frame(atm::Frame frame) override;
  sim::SimTime rx_charge(RxContext& ctx, std::uint64_t cycles) override;
  sim::SimTime rx_transfer_to_host(RxContext& ctx, mem::VAddr va,
                                   std::uint64_t bytes) override;

 private:
  /// Transmit tail shared by host and protocol sends: descriptor handling,
  /// Message Cache probe (DMA only on miss), SAR, wire.
  void start_tx(sim::SimTime t, atm::Frame frame, const SendOptions& opts);

  /// Snoopy interface: a write transaction appeared on the memory bus.
  void on_snoop(mem::PAddr pa, std::uint64_t len);

  /// Installs the PATHFINDER pattern that routes `type` to `target`.
  void add_type_pattern(nic::MsgType type);

  CniConfig config_;
  mem::PageGeometry geometry_;
  DualPortMemory board_mem_;
  MessageCache mcache_;
  Pathfinder pathfinder_;
  AihRegion aih_;
  mem::Tlb tlb_;    ///< VA -> PA for virtually addressed DMA
  mem::Tlb rtlb_;   ///< PA -> VA for the snooper
  PollGovernor governor_;
  std::vector<std::unique_ptr<AdcChannel>> channels_;
  AdcChannel* system_channel_ = nullptr;

  // Observability handles, resolved once at construction (cold path); the
  // data path only ever dereferences them through the CNI_TRACE_*/CNI_OBS_*
  // macros, which compile out under CNI_OBS_DISABLED.
  obs::Hist* tx_wait_hist_ = nullptr;     ///< adc.tx_wait_ps
  obs::Gauge* tx_ring_gauge_ = nullptr;   ///< adc.tx_occupancy
  bool governor_intr_mode_ = false;       ///< last notification decision (edge detect)
};

}  // namespace cni::core
