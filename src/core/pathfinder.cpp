#include "core/pathfinder.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace cni::core {

Pathfinder::PatternId Pathfinder::add_pattern(Pattern pattern) {
  CNI_CHECK_MSG(!pattern.comparisons.empty(), "a pattern needs at least one comparison");
  const PatternId id = next_id_++;
  patterns_.push_back(Installed{std::move(pattern), id, true});
  return id;
}

void Pathfinder::remove_pattern(PatternId id) {
  auto it = std::find_if(patterns_.begin(), patterns_.end(),
                         [id](const Installed& p) { return p.id == id && p.active; });
  CNI_CHECK_MSG(it != patterns_.end(), "removing an unknown pattern");
  patterns_.erase(it);
}

std::size_t Pathfinder::pattern_count() const { return patterns_.size(); }

void Pathfinder::install_dynamic(const FlowKey& flow, std::uint32_t target) {
  dynamic_.insert(flow.packed(), target);
}

std::uint64_t Pathfinder::read_le64(std::span<const std::byte> header, std::uint32_t offset) {
  std::uint8_t buf[8] = {0};
  if (offset < header.size()) {
    const std::size_t n = std::min<std::size_t>(8, header.size() - offset);
    std::memcpy(buf, header.data() + offset, n);
  }
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

bool Pathfinder::matches(const Pattern& pattern, std::span<const std::byte> header) {
  for (const Comparison& c : pattern.comparisons) {
    if ((read_le64(header, c.offset) & c.mask) != (c.value & c.mask)) return false;
  }
  return true;
}

Pathfinder::Result Pathfinder::classify(std::span<const std::byte> header,
                                        const FlowKey& flow, std::uint64_t fragments) {
  CNI_CHECK(fragments >= 1);
  ++classifications_;
  Result r;

  // A packet whose earlier fragments already classified would resolve in one
  // comparison; our callers classify whole reassembled packets, so the
  // dynamic map only carries the *intra-packet* state modelled below, but we
  // still honour a pre-installed binding (used by tests and by re-sent flows).
  if (const std::uint32_t* target = dynamic_.find(flow.packed())) {
    ++dynamic_hits_;
    r.matched = true;
    r.via_dynamic = true;
    r.target = *target;
    r.comparisons = fragments;  // one comparison per fragment
    dynamic_.erase(flow.packed());
    return r;
  }

  // Full classification of the first fragment: patterns examined in priority
  // order; the cost is every comparison evaluated until the match completes.
  for (const Installed& p : patterns_) {
    bool failed = false;
    for (const Comparison& c : p.pattern.comparisons) {
      ++r.comparisons;
      if ((read_le64(header, c.offset) & c.mask) != (c.value & c.mask)) {
        failed = true;
        break;
      }
    }
    if (!failed) {
      r.matched = true;
      r.target = p.pattern.target;
      break;
    }
  }

  // Remaining fragments of this packet match the dynamic pattern the first
  // fragment installed: one comparison each.
  if (r.matched && fragments > 1) {
    dynamic_hits_ += fragments - 1;
    r.comparisons += fragments - 1;
  }
  return r;
}

}  // namespace cni::core
