#include "core/message_cache.hpp"

#include "util/check.hpp"

namespace cni::core {

MessageCache::MessageCache(mem::PageGeometry geometry, std::uint64_t capacity_bytes)
    : geo_(geometry) {
  const std::uint64_t n = capacity_bytes / geo_.size();
  CNI_CHECK_MSG(n >= 1, "Message Cache smaller than one page buffer");
  buffers_.resize(n);
}

bool MessageCache::contains(mem::VAddr va, std::uint64_t len) const {
  if (len == 0) len = 1;
  const mem::PageNum first = geo_.page_of(va);
  const mem::PageNum last = geo_.page_of(va + len - 1);
  for (mem::PageNum p = first; p <= last; ++p) {
    if (map_.find(p) == nullptr) return false;
  }
  return true;
}

bool MessageCache::lookup_tx(mem::VAddr va, std::uint64_t len) {
  ++tx_lookups_;
  if (!contains(va, len)) return false;
  ++tx_hits_;
  // Touch every page so the clock sweep sees recent use.
  if (len == 0) len = 1;
  const mem::PageNum first = geo_.page_of(va);
  const mem::PageNum last = geo_.page_of(va + len - 1);
  for (mem::PageNum p = first; p <= last; ++p) {
    buffers_[*map_.find(p)].referenced = true;
  }
  return true;
}

void MessageCache::bind_page(mem::PageNum vpn) {
  if (const std::uint32_t* idx = map_.find(vpn); idx != nullptr) {
    buffers_[*idx].referenced = true;
    return;
  }
  // Clock sweep: first pass clears reference bits; a buffer with its bit
  // already clear (or an unbound buffer) is the victim.
  for (;;) {
    Buffer& b = buffers_[clock_hand_];
    const auto idx = static_cast<std::uint32_t>(clock_hand_);
    clock_hand_ = (clock_hand_ + 1) % buffers_.size();
    if (!b.valid) {
      b.valid = true;
      b.vpn = vpn;
      b.referenced = true;
      map_.insert(vpn, idx);
      return;
    }
    if (b.referenced) {
      b.referenced = false;
      continue;
    }
    // Evict.
    ++evictions_;
    map_.erase(b.vpn);
    b.vpn = vpn;
    b.referenced = true;
    map_.insert(vpn, idx);
    return;
  }
}

void MessageCache::insert(mem::VAddr va, std::uint64_t len) {
  if (len == 0) len = 1;
  ++inserts_;
  const mem::PageNum first = geo_.page_of(va);
  const mem::PageNum last = geo_.page_of(va + len - 1);
  for (mem::PageNum p = first; p <= last; ++p) bind_page(p);
}

bool MessageCache::snoop_write(mem::VAddr va, std::uint64_t len) {
  if (len == 0) len = 1;
  const mem::PageNum first = geo_.page_of(va);
  const mem::PageNum last = geo_.page_of(va + len - 1);
  bool updated = false;
  for (mem::PageNum p = first; p <= last; ++p) {
    if (const std::uint32_t* idx = map_.find(p); idx != nullptr) {
      buffers_[*idx].referenced = true;
      updated = true;
    }
  }
  if (updated) ++snoop_updates_;
  return updated;
}

void MessageCache::invalidate_page(mem::VAddr va) {
  const mem::PageNum p = geo_.page_of(va);
  if (const std::uint32_t* idx = map_.find(p); idx != nullptr) {
    buffers_[*idx].valid = false;
    buffers_[*idx].referenced = false;
    map_.erase(p);
  }
}

void MessageCache::invalidate_all() {
  for (Buffer& b : buffers_) {
    b.valid = false;
    b.referenced = false;
  }
  map_.clear();
}

}  // namespace cni::core
