#include "core/dual_port.hpp"

#include "util/check.hpp"

namespace cni::core {

DualPortMemory::DualPortMemory(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {
  CNI_CHECK(capacity_bytes > 0);
  blocks_.push_back(Block{0, capacity_bytes, false, ""});
}

std::optional<std::uint64_t> DualPortMemory::alloc(std::uint64_t bytes,
                                                   const std::string& what) {
  CNI_CHECK(bytes > 0);
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->allocated || it->bytes < bytes) continue;
    const std::uint64_t offset = it->offset;
    if (it->bytes > bytes) {
      // Split: the tail remains free.
      blocks_.insert(std::next(it), Block{offset + bytes, it->bytes - bytes, false, ""});
      it->bytes = bytes;
    }
    it->allocated = true;
    it->what = what;
    used_ += bytes;
    return offset;
  }
  return std::nullopt;
}

void DualPortMemory::free(std::uint64_t offset) {
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->offset == offset && it->allocated) {
      it->allocated = false;
      it->what.clear();
      used_ -= it->bytes;
      coalesce();
      return;
    }
  }
  CNI_CHECK_MSG(false, "freeing an offset that is not allocated");
}

void DualPortMemory::coalesce() {
  auto it = blocks_.begin();
  while (it != blocks_.end()) {
    auto next = std::next(it);
    if (next == blocks_.end()) break;
    if (!it->allocated && !next->allocated) {
      it->bytes += next->bytes;
      blocks_.erase(next);
    } else {
      it = next;
    }
  }
}

std::size_t DualPortMemory::allocation_count() const {
  std::size_t n = 0;
  for (const Block& b : blocks_) {
    if (b.allocated) ++n;
  }
  return n;
}

}  // namespace cni::core
