// Page diffs for concurrent write sharing.
//
// When several nodes write disjoint parts of one page in concurrent
// intervals (Cholesky's many-columns-per-page case, §3.1), a faulting node
// fetches a full page from one maximal writer and *diffs* from the others,
// merging them locally. A diff is computed against the twin the writer made
// at its first write; make_diff scans the two images as 64-bit words and
// only drops to byte granularity inside words that actually differ.
//
// Runs do not own their bytes: every run is an (offset, arena_off, len)
// triple into one shared `arena` buffer. A freshly computed diff carves its
// runs out of a single pooled allocation; a diff deserialized from a frame
// aliases the frame's payload buffer by refcount (zero-copy receive); and
// shadow subtraction (runtime.cpp) splits runs with pure index arithmetic,
// never copying payload bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsm/vector_clock.hpp"
#include "dsm/wire_format.hpp"
#include "util/buf_pool.hpp"

namespace cni::dsm {

/// Two differing bytes at distance <= kJoinGap land in the same run (i.e. up
/// to kJoinGap-1 interior equal bytes are absorbed). Matches the historical
/// byte-wise scanner, which broke a run after 8 consecutive equal bytes.
inline constexpr std::size_t kJoinGap = 8;

struct Diff {
  std::uint32_t writer = 0;
  VectorClock vc;  ///< writer's clock when the diff was created

  struct Run {
    std::uint32_t offset = 0;     ///< byte position in the page
    std::uint32_t arena_off = 0;  ///< byte position of the run's data in `arena`
    std::uint32_t len = 0;
  };
  std::vector<Run> runs;
  util::Buf arena;  ///< backing bytes all runs point into (shared, refcounted)

  [[nodiscard]] std::span<const std::byte> run_bytes(const Run& r) const {
    return arena.span().subspan(r.arena_off, r.len);
  }

  /// Exact serialized size — computed by replaying serialize_to against a
  /// ByteCounter, so it cannot drift from the writer's framing.
  [[nodiscard]] std::uint64_t payload_bytes() const;
  [[nodiscard]] bool empty() const { return runs.empty(); }

  /// One serializer for both the real writer and the byte counter.
  template <class W>
  void serialize_to(W& w) const {
    w.u32(writer);
    w.clock(vc);
    w.u32(static_cast<std::uint32_t>(runs.size()));
    for (const Run& r : runs) {
      w.u32(r.offset);
      w.bytes(run_bytes(r));
    }
  }

  void serialize(ByteWriter& w) const { serialize_to(w); }

  /// Reads a diff back. When the reader is backed by a util::Buf (a received
  /// frame payload), the runs alias that buffer directly — no copy; a reader
  /// over a bare span copies the run bytes into a fresh pooled arena.
  static Diff deserialize(ByteReader& r);
};

/// Computes the runs where `current` differs from `twin` (same length),
/// merging runs separated by fewer than kJoinGap identical bytes.
Diff make_diff(std::uint32_t writer, const VectorClock& vc,
               std::span<const std::byte> twin, std::span<const std::byte> current);

/// Applies a diff's runs onto `page`.
void apply_diff(const Diff& d, std::span<std::byte> page);

}  // namespace cni::dsm
