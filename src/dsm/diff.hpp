// Page diffs for concurrent write sharing.
//
// When several nodes write disjoint parts of one page in concurrent
// intervals (Cholesky's many-columns-per-page case, §3.1), a faulting node
// fetches a full page from one maximal writer and *diffs* from the others,
// merging them locally. A diff is computed word-by-word against the twin
// the writer made at its first write.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsm/vector_clock.hpp"
#include "dsm/wire_format.hpp"

namespace cni::dsm {

struct Diff {
  std::uint32_t writer = 0;
  VectorClock vc;  ///< writer's clock when the diff was created

  struct Run {
    std::uint32_t offset = 0;
    std::vector<std::byte> bytes;
  };
  std::vector<Run> runs;

  [[nodiscard]] std::uint64_t payload_bytes() const;
  [[nodiscard]] bool empty() const { return runs.empty(); }

  void serialize(ByteWriter& w) const;
  static Diff deserialize(ByteReader& r);
};

/// Computes the runs where `current` differs from `twin` (same length),
/// merging runs separated by fewer than 8 identical bytes.
Diff make_diff(std::uint32_t writer, const VectorClock& vc,
               std::span<const std::byte> twin, std::span<const std::byte> current);

/// Applies a diff's runs onto `page`.
void apply_diff(const Diff& d, std::span<std::byte> page);

}  // namespace cni::dsm
