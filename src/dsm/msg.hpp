// DSM protocol message types.
//
// All of these live in the handler range: on the CNI the PATHFINDER routes
// them to the DSM's Application Interrupt Handlers on the board; on the
// standard NIC they interrupt the host. MsgHeader::aux carries the lock id
// (lock traffic) or the request id (fetch traffic).
#pragma once

#include "cluster/params.hpp"
#include "nic/wire.hpp"

namespace cni::dsm {

/// Headroom every protocol ByteWriter reserves at the payload front so the
/// fixed MsgHeader can be patched in place — body bytes serialize exactly
/// once, straight into the frame's pooled buffer.
inline constexpr std::size_t kMsgHeadroom = sizeof(nic::MsgHeader);

inline constexpr nic::MsgType kDsmLockReq = nic::kTypeHandlerBase + 0;
inline constexpr nic::MsgType kDsmLockFwd = nic::kTypeHandlerBase + 1;    ///< home -> last releaser
inline constexpr nic::MsgType kDsmLockGrant = nic::kTypeHandlerBase + 2;  ///< releaser -> acquirer (+ intervals)
inline constexpr nic::MsgType kDsmLockRel = nic::kTypeHandlerBase + 3;
inline constexpr nic::MsgType kDsmBarArrive = nic::kTypeHandlerBase + 4;  ///< node -> manager (+ new intervals)
inline constexpr nic::MsgType kDsmBarRelease = nic::kTypeHandlerBase + 5; ///< manager -> node (+ unseen intervals)
inline constexpr nic::MsgType kDsmPageReq = nic::kTypeHandlerBase + 6;
inline constexpr nic::MsgType kDsmPageReply = nic::kTypeHandlerBase + 7;  ///< full page (cacheable)
inline constexpr nic::MsgType kDsmDiffReq = nic::kTypeHandlerBase + 8;
inline constexpr nic::MsgType kDsmDiffReply = nic::kTypeHandlerBase + 9;  ///< retained + fresh diffs
// NIC-tree collectives (DESIGN.md §16): combined on the board per the
// DsmSystem's CollectiveTree, no host involvement at interior nodes.
inline constexpr nic::MsgType kDsmColUp = nic::kTypeHandlerBase + 10;    ///< barrier up-sweep (+ subtree intervals)
inline constexpr nic::MsgType kDsmColDown = nic::kTypeHandlerBase + 11;  ///< barrier down-sweep (+ unseen intervals)
inline constexpr nic::MsgType kDsmRedUp = nic::kTypeHandlerBase + 12;    ///< reduce/broadcast up-sweep (u64 payload)
inline constexpr nic::MsgType kDsmRedDown = nic::kTypeHandlerBase + 13;  ///< reduce/broadcast result fan-out

/// Combining operator of the small-payload reduce collective. All four are
/// associative and commutative over u64 (kRoot keeps the tree root's own
/// contribution — the broadcast), so the fold result is independent of
/// arrival order and the artifacts stay byte-identical across shard counts.
enum class ReduceOp : std::uint8_t {
  kSum = 0,
  kMin = 1,
  kMax = 2,
  kRoot = 3,  ///< broadcast: every node receives the tree root's value
};

/// CPU/NIC cycle costs of the protocol software (identical *counts* in both
/// configurations; what differs is which processor runs them and whether an
/// interrupt precedes them).
struct DsmParams {
  std::uint32_t fault_trap_cycles = 600;         ///< page-fault trap + dispatch (host)
  std::uint32_t request_build_cycles = 150;      ///< building one request message (host)
  std::uint32_t release_local_cycles = 80;       ///< closing an interval (host)
  std::uint32_t handler_base_cycles = 120;       ///< fixed per protocol handler activation
  std::uint32_t handler_per_interval_cycles = 25;
  std::uint32_t handler_per_notice_cycles = 8;
  std::uint32_t diff_word_cycles = 1;            ///< make/apply diffs, per 8 bytes
  std::uint32_t twin_word_cycles = 2;            ///< twin copy, per 8 bytes (host)
  std::uint32_t max_retained_diffs = 8;          ///< coalesce beyond this
  std::uint64_t handler_code_bytes = 16 * 1024;  ///< AIH object-code footprint
  /// Where barriers run: kHost = the seed's centralized manager on node 0,
  /// kNic = the NIC-resident combining tree (reduce/broadcast always use the
  /// DsmSystem's tree; host mode just makes that tree a star at node 0).
  cluster::CollectiveMode collective = cluster::default_collective();
  /// Fan-in override for the NIC tree; 0 = derive from the topology's
  /// distances (atm::make_collective_tree).
  std::uint32_t collective_fanin = 0;
};

}  // namespace cni::dsm
