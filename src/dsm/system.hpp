// Cluster-wide DSM system: the shared region and one runtime per node.
//
// The paper: "A fixed portion of the processor address space was allocated
// to distributed shared memory with shared addresses being mapped into this
// allocated memory space." Allocation happens once, before the application
// threads start, and produces the same virtual layout on every node; each
// page has a *home* (its initial owner), chosen by the allocation policy.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "atm/coll_tree.hpp"
#include "cluster/cluster.hpp"
#include "dsm/msg.hpp"
#include "dsm/runtime.hpp"

namespace cni::dsm {

class DsmSystem {
 public:
  explicit DsmSystem(cluster::Cluster& cluster, DsmParams params = {});

  // ---- Allocation (before the run) ----

  /// Pages homed round-robin across nodes.
  mem::VAddr alloc(std::uint64_t bytes, const std::string& name);

  /// Pages homed in contiguous blocks: node i homes the i-th P-th of the
  /// region (matches block-partitioned apps like Jacobi).
  mem::VAddr alloc_blocked(std::uint64_t bytes, const std::string& name);

  /// Every page homed at one node (master-initialized data).
  mem::VAddr alloc_at(std::uint64_t bytes, const std::string& name, std::uint32_t home);

  // ---- Accessors ----
  [[nodiscard]] DsmRuntime& runtime(std::size_t i) { return *runtimes_.at(i); }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }
  [[nodiscard]] const DsmParams& params() const { return params_; }
  [[nodiscard]] std::uint32_t nodes() const { return static_cast<std::uint32_t>(runtimes_.size()); }

  [[nodiscard]] const mem::PageGeometry& geometry() const { return geo_; }
  [[nodiscard]] PageId page_count() const { return homes_.size(); }
  [[nodiscard]] std::uint32_t home_of(PageId p) const { return homes_.at(p); }
  [[nodiscard]] std::uint32_t barrier_manager() const { return 0; }
  [[nodiscard]] std::uint32_t lock_home(std::uint32_t lock) const { return lock % nodes(); }
  /// The combining-tree shape every collective in this system uses: a
  /// topology-derived k-ary tree rooted at node 0 in kNic mode, a star at
  /// the barrier manager in kHost mode. Built once in the constructor from
  /// the fabric's zero-load distances — a pure function of (topology, N,
  /// handler costs), so identical across shard counts.
  [[nodiscard]] const atm::CollectiveTree& collective_tree() const { return coll_tree_; }
  [[nodiscard]] cluster::CollectiveMode collective() const { return params_.collective; }

  /// Page index of a shared virtual address (must be in the shared region).
  [[nodiscard]] PageId page_of_va(mem::VAddr va) const {
    return geo_.page_of(va - mem::kSharedBase);
  }
  [[nodiscard]] mem::VAddr va_of_page(PageId p) const {
    return mem::kSharedBase + geo_.base_of(p);
  }

 private:
  mem::VAddr alloc_with_homes(std::uint64_t bytes, const std::string& name,
                              const std::vector<std::uint32_t>& page_homes);

  cluster::Cluster& cluster_;
  DsmParams params_;
  atm::CollectiveTree coll_tree_;
  mem::PageGeometry geo_;
  std::vector<std::unique_ptr<DsmRuntime>> runtimes_;
  std::vector<std::uint32_t> homes_;  ///< per shared page
  std::uint64_t next_offset_ = 0;     ///< allocation cursor (bytes into region)
};

}  // namespace cni::dsm
