// Per-thread DSM handle: the API the application kernels program against.
#pragma once

#include "cluster/host.hpp"
#include "dsm/runtime.hpp"
#include "dsm/system.hpp"
#include "sim/process.hpp"

namespace cni::dsm {

class DsmContext {
 public:
  DsmContext(DsmSystem& system, std::size_t node, sim::SimThread& thread)
      : rt_(system.runtime(node)), thread_(thread) {
    rt_.bind_thread(thread);
  }

  [[nodiscard]] std::uint32_t self() const { return rt_.self(); }
  [[nodiscard]] DsmRuntime& runtime() { return rt_; }
  [[nodiscard]] sim::SimThread& thread() { return thread_; }

  // ---- Synchronisation ----
  void acquire(std::uint32_t lock) { rt_.acquire(lock); }
  void release(std::uint32_t lock) { rt_.release(lock); }
  void barrier() { rt_.barrier(); }

  // ---- Data collectives (all nodes must call; see DsmRuntime) ----
  std::uint64_t reduce_u64(ReduceOp op, std::uint64_t value) {
    return rt_.reduce(op, value);
  }
  std::uint64_t broadcast_u64(std::uint64_t value) { return rt_.broadcast(value); }

  // ---- Shared access ----
  template <typename T>
  [[nodiscard]] T read(mem::VAddr va) {
    return rt_.read<T>(va);
  }

  template <typename T>
  void write(mem::VAddr va, T value) {
    rt_.write<T>(va, value);
  }

  /// Charges pure computation (ALU work between shared accesses).
  void compute(std::uint64_t cycles) { rt_.node().cpu().compute(cycles); }

  /// Spends `cycles` busy-waiting: advances time without crediting the
  /// computation account, so spin loops land in the synch-delay category
  /// (the paper's accounting for time lost to synchronization).
  void idle(std::uint64_t cycles) {
    rt_.node().cpu().sync(thread_);
    thread_.delay(rt_.node().cpu().cpu_clock().cycles(cycles));
  }

 private:
  DsmRuntime& rt_;
  sim::SimThread& thread_;
};

/// A typed view over a shared allocation; each node's thread makes its own.
template <typename T>
class SharedArray {
 public:
  SharedArray(DsmContext& ctx, mem::VAddr base, std::uint64_t count)
      : ctx_(ctx), base_(base), count_(count) {}

  [[nodiscard]] std::uint64_t size() const { return count_; }
  [[nodiscard]] mem::VAddr addr(std::uint64_t i) const { return base_ + i * sizeof(T); }

  [[nodiscard]] T get(std::uint64_t i) const {
    CNI_DCHECK(i < count_);
    return ctx_.template read<T>(addr(i));
  }

  void set(std::uint64_t i, T v) {
    CNI_DCHECK(i < count_);
    ctx_.template write<T>(addr(i), v);
  }

 private:
  DsmContext& ctx_;
  mem::VAddr base_;
  std::uint64_t count_;
};

}  // namespace cni::dsm
