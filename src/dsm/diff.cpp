#include "dsm/diff.hpp"

#include <bit>
#include <cstring>

#include "util/check.hpp"

namespace cni::dsm {
namespace {

std::uint64_t load_word(const std::byte* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof w);
  return w;
}

/// Streaming run builder: feed ascending differing byte positions, collect
/// (offset, arena_off, len) runs obeying the kJoinGap merge rule.
class RunBuilder {
 public:
  explicit RunBuilder(std::vector<Diff::Run>& runs) : runs_(runs) {}

  void diff_at(std::size_t pos) {
    if (open_ && pos - last_ <= kJoinGap) {
      last_ = pos;
      return;
    }
    flush();
    open_ = true;
    start_ = last_ = pos;
  }

  /// Closes the trailing run; returns total arena bytes across all runs.
  std::uint64_t finish() {
    flush();
    return arena_bytes_;
  }

 private:
  void flush() {
    if (!open_) return;
    const auto len = static_cast<std::uint32_t>(last_ - start_ + 1);
    runs_.push_back(Diff::Run{static_cast<std::uint32_t>(start_),
                              static_cast<std::uint32_t>(arena_bytes_), len});
    arena_bytes_ += len;
    open_ = false;
  }

  std::vector<Diff::Run>& runs_;
  std::uint64_t arena_bytes_ = 0;
  std::size_t start_ = 0;
  std::size_t last_ = 0;
  bool open_ = false;
};

}  // namespace

std::uint64_t Diff::payload_bytes() const {
  ByteCounter c;
  serialize_to(c);
  return c.count();
}

Diff Diff::deserialize(ByteReader& r) {
  Diff d;
  d.writer = r.u32();
  d.vc = r.clock();
  const std::uint32_t n = r.u32();
  // Bounds before allocation: a run costs at least 8 wire bytes (offset +
  // length prefix), so a count the payload cannot hold is malformed and
  // must not size the vector.
  if (std::uint64_t{n} * 8 > r.remaining()) {
    throw WireError("truncated DSM payload: diff run count");
  }
  d.runs.reserve(n);
  if (r.backing()) {
    // Zero-copy: the runs alias the received frame's payload buffer, pinned
    // by the shared arena reference for as long as the diff lives.
    d.arena = r.backing();
    const std::byte* base = d.arena.data();
    for (std::uint32_t i = 0; i < n; ++i) {
      Run run;
      run.offset = r.u32();
      const std::span<const std::byte> b = r.bytes();
      run.arena_off = static_cast<std::uint32_t>(b.data() - base);
      run.len = static_cast<std::uint32_t>(b.size());
      d.runs.push_back(run);
    }
    return d;
  }
  // Bare-span reader (tests, in-memory round-trips): the storage behind the
  // span has no refcount to share, so gather the runs into a fresh arena.
  std::vector<std::span<const std::byte>> pieces;
  pieces.reserve(n);
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    Run run;
    run.offset = r.u32();
    const std::span<const std::byte> b = r.bytes();
    run.arena_off = static_cast<std::uint32_t>(total);
    run.len = static_cast<std::uint32_t>(b.size());
    total += b.size();
    d.runs.push_back(run);
    pieces.push_back(b);
  }
  if (total > 0) {
    d.arena = util::BufPool::local().alloc(total);
    std::byte* out = d.arena.data();
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      std::memcpy(out + d.runs[i].arena_off, pieces[i].data(), pieces[i].size());
    }
  }
  return d;
}

Diff make_diff(std::uint32_t writer, const VectorClock& vc,
               std::span<const std::byte> twin, std::span<const std::byte> current) {
  CNI_CHECK(twin.size() == current.size());
  Diff d;
  d.writer = writer;
  d.vc = vc;

  const std::size_t n = twin.size();
  RunBuilder builder(d.runs);

  // Word-wise scan: XOR 64-bit words and only inspect bytes inside words
  // that differ. countr_zero maps the lowest set XOR bit to its byte lane on
  // little-endian targets; other targets fall back to a byte compare inside
  // the (rare) differing word — same positions either way.
  const std::size_t words = n / 8;
  for (std::size_t wi = 0; wi < words; ++wi) {
    std::uint64_t x = load_word(twin.data() + wi * 8) ^ load_word(current.data() + wi * 8);
    if (x == 0) continue;
    const std::size_t base = wi * 8;
    if constexpr (std::endian::native == std::endian::little) {
      while (x != 0) {
        const unsigned lane = static_cast<unsigned>(std::countr_zero(x)) >> 3;
        builder.diff_at(base + lane);
        x &= ~(std::uint64_t{0xFF} << (lane * 8));
      }
    } else {
      for (unsigned k = 0; k < 8; ++k) {
        if (twin[base + k] != current[base + k]) builder.diff_at(base + k);
      }
    }
  }
  for (std::size_t i = words * 8; i < n; ++i) {
    if (twin[i] != current[i]) builder.diff_at(i);
  }

  const std::uint64_t total = builder.finish();
  if (total > 0) {
    d.arena = util::BufPool::local().alloc(total);
    std::byte* out = d.arena.data();
    for (const Diff::Run& r : d.runs) {
      std::memcpy(out + r.arena_off, current.data() + r.offset, r.len);
    }
  }
  return d;
}

void apply_diff(const Diff& d, std::span<std::byte> page) {
  for (const Diff::Run& r : d.runs) {
    CNI_CHECK_MSG(r.offset + r.len <= page.size(), "diff run outside the page");
    std::memcpy(page.data() + r.offset, d.arena.data() + r.arena_off, r.len);
  }
}

}  // namespace cni::dsm
