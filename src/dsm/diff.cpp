#include "dsm/diff.hpp"

#include <cstring>

#include "util/check.hpp"

namespace cni::dsm {

std::uint64_t Diff::payload_bytes() const {
  std::uint64_t n = 16;  // writer + run count + clock framing
  for (const Run& r : runs) n += 8 + r.bytes.size();
  return n;
}

void Diff::serialize(ByteWriter& w) const {
  w.u32(writer);
  w.clock(vc);
  w.u32(static_cast<std::uint32_t>(runs.size()));
  for (const Run& r : runs) {
    w.u32(r.offset);
    w.bytes(r.bytes);
  }
}

Diff Diff::deserialize(ByteReader& r) {
  Diff d;
  d.writer = r.u32();
  d.vc = r.clock();
  const std::uint32_t n = r.u32();
  d.runs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Run run;
    run.offset = r.u32();
    run.bytes = r.bytes();
    d.runs.push_back(std::move(run));
  }
  return d;
}

Diff make_diff(std::uint32_t writer, const VectorClock& vc,
               std::span<const std::byte> twin, std::span<const std::byte> current) {
  CNI_CHECK(twin.size() == current.size());
  Diff d;
  d.writer = writer;
  d.vc = vc;

  const std::size_t n = twin.size();
  std::size_t i = 0;
  constexpr std::size_t kJoinGap = 8;  // merge runs separated by < 8 equal bytes
  while (i < n) {
    if (twin[i] == current[i]) {
      ++i;
      continue;
    }
    // Start of a run; extend while bytes differ or the equal gap is short.
    std::size_t end = i + 1;
    std::size_t equal_streak = 0;
    std::size_t last_diff = i;
    while (end < n) {
      if (twin[end] != current[end]) {
        last_diff = end;
        equal_streak = 0;
      } else if (++equal_streak >= kJoinGap) {
        break;
      }
      ++end;
    }
    Diff::Run run;
    run.offset = static_cast<std::uint32_t>(i);
    run.bytes.assign(current.begin() + static_cast<std::ptrdiff_t>(i),
                     current.begin() + static_cast<std::ptrdiff_t>(last_diff + 1));
    d.runs.push_back(std::move(run));
    i = end;
  }
  return d;
}

void apply_diff(const Diff& d, std::span<std::byte> page) {
  for (const Diff::Run& r : d.runs) {
    CNI_CHECK_MSG(r.offset + r.bytes.size() <= page.size(), "diff run outside the page");
    std::memcpy(page.data() + r.offset, r.bytes.data(), r.bytes.size());
  }
}

}  // namespace cni::dsm
