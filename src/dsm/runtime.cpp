#include "dsm/runtime.hpp"

#include <algorithm>
#include <cstring>

#include "dsm/system.hpp"
#include "util/check.hpp"
#include "util/units.hpp"
#include "util/log.hpp"

namespace cni::dsm {

namespace {

/// Reader over a frame's body (the bytes after the MsgHeader). Backed by the
/// frame's pooled payload, so bytes()/Diff::deserialize alias it by refcount.
ByteReader body_reader(const atm::Frame& f) {
  CNI_CHECK(f.payload.size() >= kMsgHeadroom);
  return ByteReader(f.payload, kMsgHeadroom);
}

/// Orders diffs so that happened-before diffs apply first: a simple O(n^2)
/// topological selection on the vector-clock partial order. Concurrent diffs
/// touch disjoint bytes in a data-race-free program, so their relative order
/// is immaterial; ties break on (writer, insertion order) for determinism.
void topo_sort_diffs(std::vector<Diff>& diffs) {
  std::vector<Diff> out;
  out.reserve(diffs.size());
  std::vector<bool> taken(diffs.size(), false);
  for (std::size_t round = 0; round < diffs.size(); ++round) {
    std::size_t pick = diffs.size();
    for (std::size_t i = 0; i < diffs.size(); ++i) {
      if (taken[i]) continue;
      bool minimal = true;
      for (std::size_t j = 0; j < diffs.size(); ++j) {
        if (j == i || taken[j]) continue;
        // j strictly happened-before i => i is not minimal.
        if (diffs[j].vc.dominated_by(diffs[i].vc) && !(diffs[j].vc == diffs[i].vc)) {
          minimal = false;
          break;
        }
      }
      if (minimal && (pick == diffs.size() || diffs[i].writer < diffs[pick].writer)) {
        pick = i;
      }
    }
    CNI_CHECK(pick < diffs.size());
    taken[pick] = true;
    out.push_back(std::move(diffs[pick]));
  }
  diffs = std::move(out);
}

std::uint64_t diff_words(const Diff& d) {
  std::uint64_t bytes = 0;
  for (const auto& r : d.runs) bytes += r.len;
  return util::ceil_div<std::uint64_t>(bytes, 8);
}

}  // namespace

DsmRuntime::DsmRuntime(DsmSystem& system, std::uint32_t self)
    : sys_(system),
      node_(system.cluster().node(self)),
      self_(self),
      nprocs_(static_cast<std::uint32_t>(system.cluster().size())),
      vc_(nprocs_),
      last_barrier_vc_(nprocs_) {
  obs_ = node_.cpu().obs();
  if (obs_ != nullptr) {
    fault_hist_ = obs_->metrics().histogram("dsm.fault_latency_ps");
  }
}

void DsmRuntime::install_handlers() {
  auto& board = node_.board();
  const std::uint64_t code = sys_.params().handler_code_bytes;
  // h returns the board's owning Handler type directly, so the one
  // std::function conversion per handler happens here and the call sites
  // below move the finished Handler into the board's table.
  auto h = [this](void (DsmRuntime::*fn)(Ctx&, const atm::Frame&)) {
    // cni-lint: allow(hot-path-alloc): handler registration at setup — ten
    // conversions per node per run, never on the per-message path.
    return nic::NicBoard::Handler(
        [this, fn](Ctx& ctx, const atm::Frame& f) { (this->*fn)(ctx, f); });
  };
  board.install_handler(kDsmLockReq, h(&DsmRuntime::on_lock_req), code);
  board.install_handler(kDsmLockFwd, h(&DsmRuntime::on_lock_fwd), code);
  board.install_handler(kDsmLockGrant, h(&DsmRuntime::on_lock_grant), code);
  board.install_handler(kDsmLockRel, h(&DsmRuntime::on_lock_rel), code);
  board.install_handler(kDsmBarArrive, h(&DsmRuntime::on_bar_arrive), code);
  board.install_handler(kDsmBarRelease, h(&DsmRuntime::on_bar_release), code);
  board.install_handler(kDsmColUp, h(&DsmRuntime::on_col_up), code);
  board.install_handler(kDsmColDown, h(&DsmRuntime::on_col_down), code);
  board.install_handler(kDsmRedUp, h(&DsmRuntime::on_red_up), code);
  board.install_handler(kDsmRedDown, h(&DsmRuntime::on_red_down), code);
  board.install_handler(kDsmPageReq, h(&DsmRuntime::on_page_req), code);
  board.install_handler(kDsmPageReply, h(&DsmRuntime::on_page_reply), code);
  board.install_handler(kDsmDiffReq, h(&DsmRuntime::on_diff_req), code);
  board.install_handler(kDsmDiffReply, h(&DsmRuntime::on_diff_reply), code);
}

// ---------------------------------------------------------------------------
// Basic plumbing
// ---------------------------------------------------------------------------

PageEntry& DsmRuntime::entry(PageId p) {
  CNI_CHECK_MSG(p < sys_.page_count(), "access outside the allocated shared region");
  if (pages_.size() < sys_.page_count()) pages_.resize(sys_.page_count());
  PageEntry& e = pages_[p];
  if (e.data.empty()) e.data.resize(sys_.geometry().size());
  return e;
}

PageMode DsmRuntime::page_mode(PageId p) const {
  if (p >= pages_.size()) return PageMode::kInvalid;
  return pages_[p].mode;
}

std::size_t DsmRuntime::pending_notices(PageId p) const {
  if (p >= pages_.size()) return 0;
  return pages_[p].pending.size();
}

mem::VAddr DsmRuntime::va_of_page(PageId p) const { return sys_.va_of_page(p); }

std::uint64_t DsmRuntime::page_words() const { return sys_.geometry().size() / 8; }

atm::Frame DsmRuntime::make_frame(std::uint32_t dst, nic::MsgType type,
                                  std::uint16_t flags, std::uint32_t aux,
                                  mem::VAddr buffer_va, util::Buf payload) {
  nic::MsgHeader h;
  h.type = type;
  h.flags = flags;
  h.src_node = self_;
  h.seq = node_.board().next_seq();
  h.aux = aux;
  h.buffer_va = buffer_va;
  // The body was serialized past kMsgHeadroom (ByteWriter{kMsgHeadroom});
  // patching the header in front completes the frame with zero copies.
  CNI_CHECK_MSG(payload.size() >= kMsgHeadroom, "payload built without headroom");
  std::memcpy(payload.data(), &h, sizeof h);
  return atm::Frame::adopt(self_, dst, /*vci=*/1, std::move(payload));
}

void DsmRuntime::send_request(std::uint32_t dst, nic::MsgType type, std::uint32_t aux,
                              util::Buf payload, std::uint64_t trace) {
  CNI_CHECK_MSG(thread_ != nullptr, "DSM app call before bind_thread");
  node_.cpu().charge_overhead(*thread_, sys_.params().request_build_cycles);
  atm::Frame frame = make_frame(dst, type, 0, aux, 0, std::move(payload));
  frame.trace = trace;
  node_.board().send_from_host(*thread_, std::move(frame), nic::NicBoard::SendOptions{});
}

bool DsmRuntime::tracing() const {
#if CNI_OBS_ENABLED
  return obs_ != nullptr && obs_->tracing();
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Access fast path and faults
// ---------------------------------------------------------------------------

std::byte* DsmRuntime::access(mem::VAddr va, std::uint32_t len, bool write) {
  const PageId p = sys_.page_of_va(va);
  if (p >= pages_.size()) pages_.resize(sys_.page_count());
  PageEntry& e = pages_[p];
  if (write ? !e.writable() : !e.readable()) fault(p, write);
  const std::uint64_t off = sys_.geometry().offset_of(va);
  CNI_DCHECK(off + len <= sys_.geometry().size());
  (void)len;
  if (!e.pa_cached) {
    e.pa_base = node_.cpu().page_table().translate(va - off);
    e.pa_cached = true;
  }
  node_.cpu().mem_access_phys(e.pa_base + off, write);
  CNI_DCHECK(!e.data.empty());
  return e.data.data() + off;
}

void DsmRuntime::fault(PageId p, bool write) {
  CNI_CHECK_MSG(thread_ != nullptr, "DSM fault before bind_thread");
  auto& cpu = node_.cpu();
  cpu.sync(*thread_);
  // Fault window: trap taken (local charge settled) -> page data usable.
  // Both endpoints are simulated instants, so the latency histogram is as
  // deterministic as the run itself.
  const sim::SimTime trap_at = node_.engine().now();
  auto& st = cpu.stats();
  if (write) {
    ++st.write_faults;
  } else {
    ++st.read_faults;
  }
  cpu.charge_overhead(*thread_, sys_.params().fault_trap_cycles);
  PageEntry& e = entry(p);
  if (!e.readable()) fetch_page_data(e, p);
  if (write && !e.writable()) write_upgrade(e, p);
  [[maybe_unused]] const sim::SimTime usable_at = node_.engine().now();
  CNI_OBS_HIST(fault_hist_, usable_at - trap_at);
  CNI_TRACE_SPAN(obs_, trap_at, usable_at, obs::Component::kDsm, obs::Event::kDsmFault,
                 p, write ? 1 : 0);
}

void DsmRuntime::write_upgrade(PageEntry& e, PageId p) {
  if (e.twin.empty()) {
    // The pre-write image diffs are computed against; pooled, so repeated
    // twin/close cycles recycle the same block instead of reallocating.
    e.twin = util::BufPool::local().alloc(e.data.size());
    std::memcpy(e.twin.data(), e.data.data(), e.data.size());
    node_.cpu().charge_overhead(*thread_,
                                page_words() * sys_.params().twin_word_cycles);
  }
  dirty_.insert(p);
  e.mode = PageMode::kReadWrite;
}

void DsmRuntime::fetch_page_data(PageEntry& e, PageId p) {
  CNI_CHECK_MSG(!fetch_.active, "only one outstanding fetch per node");
  CNI_LOG_DEBUG("n%u fetch page=%llu pending=%zu", self_,
                static_cast<unsigned long long>(p), e.pending.size());
  auto& st = node_.cpu().stats();

  if (e.content_vc.size() == 0) e.content_vc = VectorClock(nprocs_);

  if (e.pending.empty() && (e.ever_valid || sys_.home_of(p) == self_)) {
    // Nothing outstanding: revalidate in place.
    e.ever_valid = true;
    e.mode = PageMode::kReadOnly;
    return;
  }

  // The newest pending notice per writer (retained diffs are per-interval,
  // so the newest notice identifies everything we may need from a writer).
  std::map<std::uint32_t, Notice> latest;
  for (const Notice& n : e.pending) {
    auto it = latest.find(n.writer);
    if (it == latest.end() || n.index > it->second.index) latest[n.writer] = n;
  }

  fetch_ = Fetch{};
  fetch_.active = true;
  fetch_.req_id = next_req_id_++;
  fetch_.page = p;
  fetch_.base_from = nprocs_;  // sentinel: no base

  // Root of this remote fault's causal tree: every request frame the fetch
  // sends carries it as cross-frame parent, so the round trip (request ->
  // server handler -> reply -> page arrival) reconstructs as one tree.
  [[maybe_unused]] const sim::SimTime fetch_start = node_.engine().now();
  const std::uint64_t fault_tok =
      tracing() ? obs::causal_token(self_, fetch_.req_id, obs::Stage::kFault) : 0;

  // Phase 1 — a never-valid page needs a coherent base copy. Its source is
  // a *maximal* pending writer (any would be correct: the reply carries the
  // copy's per-writer content clock, and phase 2 fills whatever it lacks),
  // or the page's home when nobody ever wrote it.
  if (!e.ever_valid) {
    std::uint32_t from = sys_.home_of(p);
    const Notice* base = nullptr;
    for (const auto& [w, n] : latest) {
      bool dominated = false;
      for (const auto& [w2, n2] : latest) {
        if (w2 != w && n.vc.dominated_by(n2.vc)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      if (base == nullptr || n.index > base->index ||
          (n.index == base->index && n.writer < base->writer)) {
        base = &n;
      }
    }
    if (base != nullptr) from = base->writer;
    fetch_.want_base = true;
    fetch_.base_from = from;
    ++st.pages_fetched;
    ByteWriter w(kMsgHeadroom);
    w.u64(p);
    w.u32(self_);
    send_request(from, kDsmPageReq, fetch_.req_id, w.take(), fault_tok);
    wq_.wait(*thread_, [this] { return fetch_.complete; });
    node_.cpu().charge_overhead(*thread_, node_.board().wakeup_cost_cycles());
    fetch_.complete = false;
  }

  // The per-writer floor below which data is already in hand: the base
  // copy's shipped content clock, or our own copy's. Both are causally
  // closed (receiving a notice implies having its causal predecessors'
  // notices, and every fetch satisfies all pending notices), which is what
  // makes "apply base, then only diffs above the floor" reconstruct a
  // consistent page.
  fetch_.floor = fetch_.want_base ? fetch_.base_vc : e.content_vc;
  if (fetch_.floor.size() == 0) fetch_.floor = VectorClock(nprocs_);

  // Phase 2 — per-interval diffs from every pending writer the floor does
  // not cover. The base node's own writes are always in its copy.
  for (const auto& [w, n] : latest) {
    if (w == fetch_.base_from) continue;
    if (n.index <= fetch_.floor[w]) continue;
    ++fetch_.diffs_wanted;
    ByteWriter wr(kMsgHeadroom);
    wr.u64(p);
    wr.u32(self_);
    // Ask for exactly the interval window (floor, target]. Shipping
    // anything newer than the notice we hold would break the content
    // clock's causal closure: a diff from an interval we have no notice
    // for may depend on other writers' intervals we also lack, and a later
    // fetch of those would replay older bytes over it.
    wr.u32(n.index);
    wr.clock(fetch_.floor);
    send_request(w, kDsmDiffReq, fetch_.req_id, wr.take(), fault_tok);
  }
  if (fetch_.diffs_wanted != 0) {
    wq_.wait(*thread_, [this] { return fetch_.complete; });
    node_.cpu().charge_overhead(*thread_, node_.board().wakeup_cost_cycles());
  }

  apply_fetch_results(e);
  if (fault_tok != 0) {
    CNI_TRACE_CAUSAL(obs_, fetch_start, node_.engine().now(), obs::Stage::kFault,
                     fault_tok, 0);
  }
  CNI_LOG_DEBUG("n%u fetch complete", self_);
}

void DsmRuntime::apply_fetch_results(PageEntry& e) {
  auto& st = node_.cpu().stats();

  if (fetch_.base_done) {
    // One copy, from the received frame's buffer straight into the page
    // frame — the payload was never duplicated on the way here.
    CNI_CHECK(fetch_.base.size() == e.data.size());
    std::memcpy(e.data.data(), fetch_.base.data(), e.data.size());
    // The shipped content clock is per-writer precise and causally closed.
    if (fetch_.base_vc.size() != 0) e.content_vc.merge(fetch_.base_vc);
  }

  // Drop shipped diffs already folded in (writers over-ship only when the
  // floor is conservative). Re-applying an old diff would revert bytes a
  // newer chain already wrote.
  std::vector<Diff> diffs;
  diffs.reserve(fetch_.diffs.size());
  for (Diff& d : fetch_.diffs) {
    if (d.vc[d.writer] <= fetch_.floor[d.writer]) continue;
    diffs.push_back(std::move(d));
  }

  // Every diff carries the clock of the single interval it covers, so the
  // topological order is exactly happens-before: chained writes to the same
  // bytes replay oldest-to-newest, concurrent diffs touch disjoint bytes.
  // (A foreign diff never carries a stale image of *our* bytes: diffs hold
  // only the bytes their writer itself wrote.)
  topo_sort_diffs(diffs);
  for (const Diff& d : diffs) {
    apply_diff(d, e.data);
    if (e.content_vc[d.writer] < d.vc[d.writer]) {
      e.content_vc.set(d.writer, d.vc[d.writer]);
    }
  }
  st.diffs_applied += diffs.size();

  // Satisfied notices fold into the content clock (per-writer components):
  // each pending writer's history up to its notice was shipped or already
  // present, even when a diff turned out empty (identical bytes stored).
  for (const Notice& n : e.pending) {
    if (e.content_vc[n.writer] < n.index) e.content_vc.set(n.writer, n.index);
  }
  e.pending.clear();
  e.ever_valid = true;
  e.mode = PageMode::kReadOnly;
  fetch_ = Fetch{};
}

// ---------------------------------------------------------------------------
// Intervals
// ---------------------------------------------------------------------------

void DsmRuntime::snapshot_own_diff(PageEntry& e, const VectorClock& tag) {
  if (e.twin.empty()) return;
  Diff own = make_diff(self_, tag, e.twin, e.data);
  e.twin.reset();  // the block returns to the pool for the next twin
  if (own.runs.empty()) return;
  // Shadow subtraction keeps every byte in exactly one retained diff — the
  // newest that wrote it. Soundness: a requester could only need the *old*
  // image of a byte we later rewrote if its read happened-before our
  // rewrite; but then the synchronisation chain ordering the two (the same
  // lock, or an intervening barrier) means our rewriting interval cannot
  // yet be closed when we serve the request, so the old image is still the
  // byte's newest *closed* value. (Naively *merging* old diffs into new
  // ones is NOT safe: it re-tags old bytes with a new clock and replays
  // them over other writers' concurrent updates.) This also bounds retained
  // storage at one page image per page.
  for (Diff& older : e.retained) subtract_shadowed(older, own);
  std::erase_if(e.retained, [](const Diff& d) { return d.runs.empty(); });
  e.retained.push_back(std::move(own));
}

void DsmRuntime::subtract_shadowed(Diff& older, const Diff& newer) {
  // Runs are views into the diff's shared arena, so splitting one is pure
  // index arithmetic — the remainders keep pointing at the same bytes.
  for (const Diff::Run& n : newer.runs) {
    const std::uint64_t ns = n.offset;
    const std::uint64_t ne = n.offset + n.len;
    std::vector<Diff::Run> kept;
    kept.reserve(older.runs.size());
    for (const Diff::Run& o : older.runs) {
      const std::uint64_t os = o.offset;
      const std::uint64_t oe = o.offset + o.len;
      if (oe <= ns || os >= ne) {
        kept.push_back(o);
        continue;
      }
      if (os < ns) {  // left remainder survives
        kept.push_back(Diff::Run{o.offset, o.arena_off,
                                 static_cast<std::uint32_t>(ns - os)});
      }
      if (oe > ne) {  // right remainder survives
        kept.push_back(Diff::Run{static_cast<std::uint32_t>(ne),
                                 o.arena_off + static_cast<std::uint32_t>(ne - os),
                                 static_cast<std::uint32_t>(oe - ne)});
      }
    }
    older.runs = std::move(kept);
  }
}

void DsmRuntime::close_interval() {
  if (dirty_.empty()) return;
  node_.cpu().charge_overhead(*thread_, sys_.params().release_local_cycles);
  vc_.advance(self_);
  Interval iv;
  iv.writer = self_;
  iv.index = vc_[self_];
  iv.vc = vc_;
  iv.pages.assign(dirty_.begin(), dirty_.end());
  // Snapshot this interval's modifications per page (tagged with exactly
  // this interval's clock — that is what makes remote merge ordering
  // correct), and write-protect the pages again so the next interval's
  // writes fault and generate fresh notices. Diff creation *cost* is
  // charged lazily at request time, like the paper's lazy protocol.
  for (PageId p : dirty_) {
    PageEntry& e = entry(p);
    snapshot_own_diff(e, iv.vc);
    if (e.content_vc.size() == 0) e.content_vc = VectorClock(nprocs_);
    e.content_vc.set(self_, iv.index);  // own data always holds own writes
    if (e.mode == PageMode::kReadWrite) e.mode = PageMode::kReadOnly;
  }
  dirty_.clear();
  store_.insert(std::move(iv));
}

std::size_t DsmRuntime::process_incoming_interval(const Interval& iv) {
  if (iv.writer == self_) return 0;
  Interval copy = iv;
  if (!store_.insert(std::move(copy))) return 0;  // already seen
  if (vc_[iv.writer] < iv.index) vc_.set(iv.writer, iv.index);

  auto& st = node_.cpu().stats();
  st.write_notices_received += iv.pages.size();
  for (PageId p : iv.pages) {
    PageEntry& e = entry(p);
    e.pending.push_back(Notice{iv.writer, iv.index, iv.vc});
    if (e.mode != PageMode::kInvalid) {
      if (!e.twin.empty()) {
        // We are a concurrent writer of this page: preserve our open mods
        // before dropping write access. They belong to our *next* interval
        // (the page stays in dirty_, so the next close announces them);
        // tag the diff with that upcoming interval's clock.
        VectorClock tag = vc_;
        tag.advance(self_);
        snapshot_own_diff(e, tag);
      }
      e.mode = PageMode::kInvalid;
    }
  }
  return iv.pages.size();
}

util::Buf DsmRuntime::build_interval_payload(
    const VectorClock& rvc, std::size_t* interval_count) const {
  const std::vector<const Interval*> unseen = store_.unseen_by(rvc);
  ByteWriter w(kMsgHeadroom);
  w.clock(vc_);
  w.u32(static_cast<std::uint32_t>(unseen.size()));
  for (const Interval* iv : unseen) iv->serialize(w);
  if (interval_count != nullptr) *interval_count = unseen.size();
  return w.take();
}

// ---------------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------------

void DsmRuntime::acquire(std::uint32_t lock) {
  CNI_CHECK_MSG(thread_ != nullptr, "DSM app call before bind_thread");
  CNI_LOG_DEBUG("n%u acquire(%u)", self_, lock);
  node_.cpu().sync(*thread_);
  ++node_.cpu().stats().lock_acquires;
  lock_granted_ = false;
  ByteWriter w(kMsgHeadroom);
  w.u32(lock);
  w.u32(self_);
  w.clock(vc_);
  send_request(sys_.lock_home(lock), kDsmLockReq, lock, w.take());
  wq_.wait(*thread_, [this] { return lock_granted_; });
  node_.cpu().charge_overhead(*thread_, node_.board().wakeup_cost_cycles());
}

void DsmRuntime::release(std::uint32_t lock) {
  CNI_CHECK_MSG(thread_ != nullptr, "DSM app call before bind_thread");
  CNI_LOG_DEBUG("n%u release(%u)", self_, lock);
  node_.cpu().sync(*thread_);
  close_interval();
  ByteWriter w(kMsgHeadroom);
  w.u32(lock);
  w.u32(self_);
  send_request(sys_.lock_home(lock), kDsmLockRel, lock, w.take());
}

void DsmRuntime::on_lock_req(Ctx& ctx, const atm::Frame& f) {
  ctx.charge(sys_.params().handler_base_cycles);
  ByteReader r = body_reader(f);
  const std::uint32_t lock = r.u32();
  const std::uint32_t requester = r.u32();
  VectorClock rvc = r.clock();

  LockHome& L = lock_homes_[lock];
  CNI_LOG_DEBUG("n%u lock_req lock=%u from=%u held=%d", self_, lock, requester,
                static_cast<int>(L.held));
  if (L.held) {
    L.waiters.emplace_back(requester, std::move(rvc));
    return;
  }
  L.held = true;
  L.holder = requester;
  if (!L.has_releaser || L.last_releaser == requester) {
    // First acquire ever, or re-acquire by the very node that released last:
    // nothing new to propagate, grant straight from the home.
    ByteWriter w(kMsgHeadroom);
    w.clock(rvc);
    w.u32(0);
    ctx.send(make_frame(requester, kDsmLockGrant, 0, lock, 0, w.take()),
             nic::NicBoard::SendOptions{});
    return;
  }
  // Forward to the last releaser, which grants directly to the requester
  // with the intervals the requester has not seen.
  ByteWriter w(kMsgHeadroom);
  w.u32(lock);
  w.u32(requester);
  w.clock(rvc);
  ctx.send(make_frame(L.last_releaser, kDsmLockFwd, 0, lock, 0, w.take()),
           nic::NicBoard::SendOptions{});
}

void DsmRuntime::on_lock_fwd(Ctx& ctx, const atm::Frame& f) {
  ByteReader r = body_reader(f);
  const std::uint32_t lock = r.u32();
  const std::uint32_t requester = r.u32();
  const VectorClock rvc = r.clock();
  std::size_t count = 0;
  util::Buf payload = build_interval_payload(rvc, &count);
  ctx.charge(sys_.params().handler_base_cycles +
             count * sys_.params().handler_per_interval_cycles);
  ctx.send(make_frame(requester, kDsmLockGrant, 0, lock, 0, std::move(payload)),
           nic::NicBoard::SendOptions{});
}

void DsmRuntime::on_lock_grant(Ctx& ctx, const atm::Frame& f) {
  ByteReader r = body_reader(f);
  VectorClock releaser_vc = r.clock();
  const std::uint32_t count = r.u32();
  std::vector<Interval> ivs;
  ivs.reserve(count);
  std::size_t notices = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    ivs.push_back(Interval::deserialize(r));
    notices += ivs.back().pages.size();
  }
  ctx.charge(sys_.params().handler_base_cycles +
             count * sys_.params().handler_per_interval_cycles +
             notices * sys_.params().handler_per_notice_cycles);
  CNI_LOG_DEBUG("n%u lock_grant arrives ivs=%u", self_, count);
  node_.engine().schedule_at(
      ctx.cursor(), [this, ivs = std::move(ivs), releaser_vc = std::move(releaser_vc)] {
        for (const Interval& iv : ivs) process_incoming_interval(iv);
        vc_.merge(releaser_vc);
        lock_granted_ = true;
        wq_.notify_all();
      });
}

void DsmRuntime::on_lock_rel(Ctx& ctx, const atm::Frame& f) {
  ctx.charge(sys_.params().handler_base_cycles);
  ByteReader r = body_reader(f);
  const std::uint32_t lock = r.u32();
  const std::uint32_t releaser = r.u32();

  LockHome& L = lock_homes_[lock];
  CNI_LOG_DEBUG("n%u lock_rel lock=%u from=%u waiters=%zu", self_, lock, releaser, L.waiters.size());
  CNI_CHECK_MSG(L.held && L.holder == releaser, "release from a non-holder");
  L.has_releaser = true;
  L.last_releaser = releaser;
  if (L.waiters.empty()) {
    L.held = false;
    return;
  }
  auto [next, nvc] = std::move(L.waiters.front());
  L.waiters.pop_front();
  L.holder = next;
  ByteWriter w(kMsgHeadroom);
  w.u32(lock);
  w.u32(next);
  w.clock(nvc);
  ctx.send(make_frame(releaser, kDsmLockFwd, 0, lock, 0, w.take()),
           nic::NicBoard::SendOptions{});
}

// ---------------------------------------------------------------------------
// Barriers
// ---------------------------------------------------------------------------

void DsmRuntime::barrier() {
  CNI_CHECK_MSG(thread_ != nullptr, "DSM app call before bind_thread");
  node_.cpu().sync(*thread_);
  ++node_.cpu().stats().barriers;
  close_interval();
  barrier_released_ = false;

  const std::vector<const Interval*> unseen = store_.unseen_by(last_barrier_vc_);
  ByteWriter w(kMsgHeadroom);
  if (sys_.collective() == cluster::CollectiveMode::kNic) {
    // Tree up-sweep contribution: this node's clock (the subtree-min seed)
    // plus everything new since the last barrier. It enters the combining
    // tree at our own board — the kDsmColUp handler at self is the leaf's
    // combine step, and on a CNI never touches the host again until release.
    w.clock(vc_);
  } else {
    w.u32(self_);
    w.clock(vc_);
  }
  w.u32(static_cast<std::uint32_t>(unseen.size()));
  for (const Interval* iv : unseen) iv->serialize(w);
  node_.cpu().charge_overhead(
      *thread_, unseen.size() * sys_.params().handler_per_interval_cycles);
  // Root of this barrier episode's causal tree (seq: the node's barrier
  // count); the arrive frame carries it, so manager fan-in/fan-out chains
  // under it, and the span itself measures this node's barrier wait.
  [[maybe_unused]] const sim::SimTime bar_start = node_.engine().now();
  const auto episode = static_cast<std::uint32_t>(node_.cpu().stats().barriers);
  const std::uint64_t bar_tok =
      tracing() ? obs::causal_token(self_, episode, obs::Stage::kBarrier) : 0;
  if (sys_.collective() == cluster::CollectiveMode::kNic) {
    send_request(self_, kDsmColUp, episode, w.take(), bar_tok);
  } else {
    send_request(sys_.barrier_manager(), kDsmBarArrive, 0, w.take(), bar_tok);
  }

  wq_.wait(*thread_, [this] { return barrier_released_; });
  node_.cpu().charge_overhead(*thread_, node_.board().wakeup_cost_cycles());
  if (bar_tok != 0) {
    CNI_TRACE_CAUSAL(obs_, bar_start, node_.engine().now(), obs::Stage::kBarrier,
                     bar_tok, 0);
  }
}

void DsmRuntime::on_bar_arrive(Ctx& ctx, const atm::Frame& f) {
  CNI_CHECK_MSG(self_ == sys_.barrier_manager(), "barrier arrive at a non-manager");
  ByteReader r = body_reader(f);
  const std::uint32_t node = r.u32();
  VectorClock nvc = r.clock();
  const std::uint32_t count = r.u32();
  ctx.charge(sys_.params().handler_base_cycles +
             count * sys_.params().handler_per_interval_cycles);

  if (!barrier_mgr_) {
    // cni-lint: allow(hot-path-alloc): the centralized manager state is
    // allocated once, on the manager node's first arrive — the other N-1
    // runtimes never carry it, and no later message allocates again.
    barrier_mgr_ = std::make_unique<BarrierManager>();
  }
  BarrierManager& M = *barrier_mgr_;
  if (M.node_vcs.empty()) M.node_vcs.assign(nprocs_, VectorClock(nprocs_));
  // The manager's interval pool is separate from the node's own protocol
  // store: inserting here must not suppress the invalidation processing the
  // manager node itself performs when its release message arrives.
  for (std::uint32_t i = 0; i < count; ++i) M.store.insert(Interval::deserialize(r));
  M.node_vcs[node] = std::move(nvc);
  ++M.arrived;
  if (M.arrived < nprocs_) return;

  M.arrived = 0;
  ++M.epoch;
  VectorClock global(nprocs_);
  for (const VectorClock& v : M.node_vcs) global.merge(v);
  for (std::uint32_t n = 0; n < nprocs_; ++n) {
    const std::vector<const Interval*> unseen = M.store.unseen_by(M.node_vcs[n]);
    ByteWriter w(kMsgHeadroom);
    w.clock(global);
    w.u32(static_cast<std::uint32_t>(unseen.size()));
    for (const Interval* iv : unseen) iv->serialize(w);
    ctx.charge(sys_.params().handler_base_cycles / 2 +
               unseen.size() * sys_.params().handler_per_interval_cycles);
    ctx.send(make_frame(n, kDsmBarRelease, 0, M.epoch, 0, w.take()),
             nic::NicBoard::SendOptions{});
  }
}

void DsmRuntime::on_bar_release(Ctx& ctx, const atm::Frame& f) {
  ByteReader r = body_reader(f);
  VectorClock global = r.clock();
  const std::uint32_t count = r.u32();
  std::vector<Interval> ivs;
  ivs.reserve(count);
  std::size_t notices = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    ivs.push_back(Interval::deserialize(r));
    notices += ivs.back().pages.size();
  }
  ctx.charge(sys_.params().handler_base_cycles +
             count * sys_.params().handler_per_interval_cycles +
             notices * sys_.params().handler_per_notice_cycles);
  schedule_barrier_release(ctx.cursor(), std::move(ivs), std::move(global));
}

void DsmRuntime::schedule_barrier_release(sim::SimTime at, std::vector<Interval> ivs,
                                          VectorClock global) {
  node_.engine().schedule_at(
      at, [this, ivs = std::move(ivs), global = std::move(global)] {
        for (const Interval& iv : ivs) process_incoming_interval(iv);
        vc_.merge(global);
        last_barrier_vc_ = global;
        barrier_released_ = true;
        wq_.notify_all();
      });
}

// ---------------------------------------------------------------------------
// NIC-tree collectives (DESIGN.md §16)
//
// Barrier up-sweep: every node's board sends (clock, new intervals) into the
// combining tree; each tree node's kDsmColUp handler folds arrivals (its own
// plus one per child) and forwards one combined frame to its parent. The
// root turns the fold into the global clock and fans the release back down,
// each hop forwarding only what the receiving subtree has not seen (filtered
// by the element-wise-min clock its up-sweep reported). On a CNI all of this
// runs on the 33 MHz network processor; the host sleeps until its own
// release is scheduled. On the standard NIC the same handlers run host-side
// after an interrupt — the A/B the fig_barrier_scaling bench measures.
// ---------------------------------------------------------------------------

namespace {

/// Element-wise minimum: the subtree floor the down-sweep filters against.
void clock_min_in_place(VectorClock& acc, const VectorClock& v) {
  CNI_CHECK(acc.size() == v.size());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    if (v[i] < acc[i]) acc.set(i, v[i]);
  }
}

}  // namespace

void DsmRuntime::sort_unique_intervals(std::vector<Interval>& ivs) {
  std::sort(ivs.begin(), ivs.end(), [](const Interval& a, const Interval& b) {
    return a.writer != b.writer ? a.writer < b.writer : a.index < b.index;
  });
  ivs.erase(std::unique(ivs.begin(), ivs.end(),
                        [](const Interval& a, const Interval& b) {
                          return a.writer == b.writer && a.index == b.index;
                        }),
            ivs.end());
}

void DsmRuntime::on_col_up(Ctx& ctx, const atm::Frame& f) {
  const nic::MsgHeader hdr = f.header<nic::MsgHeader>();
  ByteReader r = body_reader(f);
  VectorClock sub = r.clock();
  const std::uint32_t count = r.u32();
  std::vector<Interval> ivs;
  ivs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) ivs.push_back(Interval::deserialize(r));
  ctx.charge(sys_.params().handler_base_cycles +
             count * sys_.params().handler_per_interval_cycles);
  CNI_CHECK_MSG(hdr.aux == col_.epoch + 1, "collective barrier epoch mismatch");

  const atm::CollectiveTree& tree = sys_.collective_tree();
  if (col_.min.size() == 0) {
    col_.min = sub;
  } else {
    clock_min_in_place(col_.min, sub);
  }
  if (hdr.src_node != self_) col_.child_min.emplace_back(hdr.src_node, std::move(sub));
  for (Interval& iv : ivs) col_.ivs.push_back(std::move(iv));
  ++col_.arrived;
  if (col_.arrived < 1 + tree.children[self_].size()) return;

  // All contributions in: canonicalize the fold. Sorting makes the merged
  // set independent of the (deterministic but schedule-shaped) arrival
  // order, so serialized bytes are identical across K and fusion settings.
  sort_unique_intervals(col_.ivs);
  std::sort(col_.child_min.begin(), col_.child_min.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (f.trace != 0) {
    CNI_TRACE_CAUSAL(obs_, ctx.cursor(), ctx.cursor(), obs::Stage::kColCombine,
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kColCombine),
                     ctx.trace());
  }

  if (tree.parent[self_] != self_) {
    // Interior/leaf: one combined frame continues up; the subtree state
    // stays parked until the matching down-sweep arrives.
    ByteWriter w(kMsgHeadroom);
    w.clock(col_.min);
    w.u32(static_cast<std::uint32_t>(col_.ivs.size()));
    for (const Interval& iv : col_.ivs) iv.serialize(w);
    ctx.charge(sys_.params().handler_base_cycles / 2 +
               col_.ivs.size() * sys_.params().handler_per_interval_cycles);
    ctx.send(make_frame(tree.parent[self_], kDsmColUp, 0, col_.epoch + 1, 0, w.take()),
             nic::NicBoard::SendOptions{});
    return;
  }

  // Root: the fold holds every interval of the episode, so the global clock
  // is the last barrier floor advanced by each writer's newest index —
  // exactly the element-wise max of all node clocks the centralized manager
  // computes.
  VectorClock global = last_barrier_vc_;
  for (const Interval& iv : col_.ivs) {
    if (global[iv.writer] < iv.index) global.set(iv.writer, iv.index);
  }
  col_down_fanout(ctx, global);
  schedule_barrier_release(ctx.cursor(), std::move(col_.ivs), std::move(global));
  col_.arrived = 0;
  col_.min = VectorClock();
  col_.child_min.clear();
  col_.ivs.clear();
  ++col_.epoch;
}

void DsmRuntime::col_down_fanout(Ctx& ctx, const VectorClock& global) {
  // Per child: forward only what that subtree lacks. The child's reported
  // min clock under-approximates each member's knowledge, so the filter
  // over-ships at worst; process_incoming_interval drops duplicates, and
  // density per writer is preserved (the filtered set is dense above the
  // child floor, every member's store is dense up to at least that floor).
  for (const auto& [child, cmin] : col_.child_min) {
    std::vector<const Interval*> out;
    out.reserve(col_.ivs.size());
    for (const Interval& iv : col_.ivs) {
      if (iv.index > cmin[iv.writer]) out.push_back(&iv);
    }
    ByteWriter w(kMsgHeadroom);
    w.clock(global);
    w.u32(static_cast<std::uint32_t>(out.size()));
    for (const Interval* iv : out) iv->serialize(w);
    ctx.charge(sys_.params().handler_base_cycles / 2 +
               out.size() * sys_.params().handler_per_interval_cycles);
    ctx.send(make_frame(child, kDsmColDown, 0, col_.epoch + 1, 0, w.take()),
             nic::NicBoard::SendOptions{});
  }
}

void DsmRuntime::on_col_down(Ctx& ctx, const atm::Frame& f) {
  const nic::MsgHeader hdr = f.header<nic::MsgHeader>();
  ByteReader r = body_reader(f);
  VectorClock global = r.clock();
  const std::uint32_t count = r.u32();
  std::vector<Interval> ivs;
  ivs.reserve(count);
  std::size_t notices = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    ivs.push_back(Interval::deserialize(r));
    notices += ivs.back().pages.size();
  }
  ctx.charge(sys_.params().handler_base_cycles +
             count * sys_.params().handler_per_interval_cycles +
             notices * sys_.params().handler_per_notice_cycles);
  CNI_CHECK_MSG(hdr.aux == col_.epoch + 1, "collective barrier epoch mismatch");
  if (f.trace != 0) {
    CNI_TRACE_CAUSAL(obs_, ctx.cursor(), ctx.cursor(), obs::Stage::kColDown,
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kColDown),
                     ctx.trace());
  }

  // The full episode set visible here = our parked subtree fold plus what
  // the parent forwarded for us; dedup (a parent over-ship may repeat ours)
  // and continue the fan-out, then release ourselves.
  for (Interval& iv : ivs) col_.ivs.push_back(std::move(iv));
  sort_unique_intervals(col_.ivs);
  col_down_fanout(ctx, global);
  schedule_barrier_release(ctx.cursor(), std::move(col_.ivs), std::move(global));
  col_.arrived = 0;
  col_.min = VectorClock();
  col_.child_min.clear();
  col_.ivs.clear();
  ++col_.epoch;
}

std::uint64_t DsmRuntime::reduce(ReduceOp op, std::uint64_t value) {
  CNI_CHECK_MSG(thread_ != nullptr, "DSM app call before bind_thread");
  node_.cpu().sync(*thread_);
  red_released_ = false;
  const std::uint32_t episode = ++red_calls_;
  [[maybe_unused]] const sim::SimTime start = node_.engine().now();
  const std::uint64_t tok =
      tracing() ? obs::causal_token(self_, episode, obs::Stage::kBarrier) : 0;
  ByteWriter w(kMsgHeadroom);
  w.u32(static_cast<std::uint32_t>(op));
  w.u64(value);
  send_request(self_, kDsmRedUp, episode, w.take(), tok);
  wq_.wait(*thread_, [this] { return red_released_; });
  node_.cpu().charge_overhead(*thread_, node_.board().wakeup_cost_cycles());
  if (tok != 0) {
    CNI_TRACE_CAUSAL(obs_, start, node_.engine().now(), obs::Stage::kBarrier, tok, 0);
  }
  return red_result_;
}

std::uint64_t DsmRuntime::broadcast(std::uint64_t value) {
  return reduce(ReduceOp::kRoot, value);
}

void DsmRuntime::on_red_up(Ctx& ctx, const atm::Frame& f) {
  const nic::MsgHeader hdr = f.header<nic::MsgHeader>();
  ByteReader r = body_reader(f);
  const auto op = static_cast<ReduceOp>(r.u32());
  const std::uint64_t v = r.u64();
  ctx.charge(sys_.params().handler_base_cycles);
  CNI_CHECK_MSG(hdr.aux == red_.epoch + 1, "collective reduce epoch mismatch");

  // Fold. kRoot keeps this node's own contribution, so at the tree root the
  // surviving value is the root's — the broadcast source; the other ops are
  // commutative and associative, so arrival order cannot change the fold.
  if (op == ReduceOp::kRoot) {
    if (hdr.src_node == self_) red_.value = v;
    red_.have = red_.have || hdr.src_node == self_;
  } else if (!red_.have) {
    red_.value = v;
    red_.have = true;
  } else if (op == ReduceOp::kSum) {
    red_.value += v;
  } else if (op == ReduceOp::kMin) {
    red_.value = std::min(red_.value, v);
  } else {
    red_.value = std::max(red_.value, v);
  }
  ++red_.arrived;
  const atm::CollectiveTree& tree = sys_.collective_tree();
  if (red_.arrived < 1 + tree.children[self_].size()) return;

  if (f.trace != 0) {
    CNI_TRACE_CAUSAL(obs_, ctx.cursor(), ctx.cursor(), obs::Stage::kColCombine,
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kColCombine),
                     ctx.trace());
  }
  if (tree.parent[self_] != self_) {
    ByteWriter w(kMsgHeadroom);
    w.u32(static_cast<std::uint32_t>(op));
    w.u64(red_.value);
    ctx.charge(sys_.params().handler_base_cycles / 2);
    ctx.send(make_frame(tree.parent[self_], kDsmRedUp, 0, red_.epoch + 1, 0, w.take()),
             nic::NicBoard::SendOptions{});
    return;
  }
  red_down_deliver(ctx, red_.value);
}

void DsmRuntime::on_red_down(Ctx& ctx, const atm::Frame& f) {
  const nic::MsgHeader hdr = f.header<nic::MsgHeader>();
  ByteReader r = body_reader(f);
  const std::uint64_t v = r.u64();
  ctx.charge(sys_.params().handler_base_cycles);
  CNI_CHECK_MSG(hdr.aux == red_.epoch + 1, "collective reduce epoch mismatch");
  if (f.trace != 0) {
    CNI_TRACE_CAUSAL(obs_, ctx.cursor(), ctx.cursor(), obs::Stage::kColDown,
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kColDown),
                     ctx.trace());
  }
  red_down_deliver(ctx, v);
}

void DsmRuntime::red_down_deliver(Ctx& ctx, std::uint64_t value) {
  const atm::CollectiveTree& tree = sys_.collective_tree();
  for (const std::uint32_t child : tree.children[self_]) {
    ByteWriter w(kMsgHeadroom);
    w.u64(value);
    ctx.charge(sys_.params().handler_base_cycles / 2);
    ctx.send(make_frame(child, kDsmRedDown, 0, red_.epoch + 1, 0, w.take()),
             nic::NicBoard::SendOptions{});
  }
  node_.engine().schedule_at(ctx.cursor(), [this, value] {
    red_result_ = value;
    red_released_ = true;
    wq_.notify_all();
  });
  red_.arrived = 0;
  red_.have = false;
  red_.value = 0;
  ++red_.epoch;
}

// ---------------------------------------------------------------------------
// Page and diff traffic
// ---------------------------------------------------------------------------

void DsmRuntime::on_page_req(Ctx& ctx, const atm::Frame& f) {
  const nic::MsgHeader hdr = f.header<nic::MsgHeader>();
  ByteReader r = body_reader(f);
  const PageId page = r.u64();
  const std::uint32_t requester = r.u32();
  ctx.charge(sys_.params().handler_base_cycles);

  PageEntry& e = entry(page);
  if (e.content_vc.size() == 0) e.content_vc = VectorClock(nprocs_);
  ByteWriter w(kMsgHeadroom);
  // Page replies dominate payload volume; size the buffer once up front.
  w.reserve(kMsgHeadroom + 8 + 4 + 4 * (e.content_vc.size() + 1) + 4 + e.data.size());
  w.u64(page);
  w.clock(e.content_vc);  // what this copy is known to contain, per writer
  w.bytes(e.data);
  // The reply carries the cache bit: on a CNI the requester's board binds
  // the page into its Message Cache on the way in (receive caching), and our
  // own board served the payload from its cached buffer if it was bound
  // (transmit caching).
  ctx.send(make_frame(requester, kDsmPageReply, nic::kFlagCacheable, hdr.aux,
                      va_of_page(page), w.take()),
           nic::NicBoard::SendOptions{va_of_page(page), sys_.geometry().size(),
                                      /*cacheable=*/true});
}

void DsmRuntime::on_page_reply(Ctx& ctx, const atm::Frame& f) {
  const nic::MsgHeader hdr = f.header<nic::MsgHeader>();
  ByteReader r = body_reader(f);
  const PageId page = r.u64();
  VectorClock content = r.clock();
  // Zero-copy: `data` views the received frame's payload; `keep` pins that
  // pooled buffer by refcount until apply_fetch_results consumes it.
  const std::span<const std::byte> data = r.bytes();
  CNI_CHECK_MSG(fetch_.active && fetch_.req_id == hdr.aux && fetch_.page == page,
                "page reply does not match the outstanding fetch");
  ctx.charge(sys_.params().handler_base_cycles);
  ctx.transfer_to_host(va_of_page(page), data.size());
  CNI_TRACE_INSTANT(obs_, ctx.cursor(), obs::Component::kDsm,
                    obs::Event::kDsmPageArrival, page, data.size());
  if (f.trace != 0) {
    // Leaf of the remote-fault tree: the page's bytes are in host memory.
    CNI_TRACE_CAUSAL(obs_, ctx.cursor(), ctx.cursor(), obs::Stage::kDeliver,
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kDeliver),
                     ctx.trace());
  }
  node_.engine().schedule_at(
      ctx.cursor(),
      [this, data, keep = r.backing(), content = std::move(content)]() mutable {
        fetch_.base = data;
        fetch_.base_keep = std::move(keep);
        fetch_.base_vc = std::move(content);
        fetch_.base_done = true;
        if (fetch_.diffs_got == fetch_.diffs_wanted) {
          fetch_.complete = true;
          wq_.notify_all();
        }
      });
}

void DsmRuntime::on_diff_req(Ctx& ctx, const atm::Frame& f) {
  const nic::MsgHeader hdr = f.header<nic::MsgHeader>();
  ByteReader r = body_reader(f);
  const PageId page = r.u64();
  const std::uint32_t requester = r.u32();
  const std::uint32_t target = r.u32();
  const VectorClock floor = r.clock();

  // Ship exactly the per-interval diffs in (floor, target]: what the
  // requester's notices cover and its copy lacks. Open (un-noticed)
  // modifications and intervals beyond the target stay local.
  PageEntry& e = entry(page);
  std::vector<Diff> ds;
  ds.reserve(e.retained.size());
  for (const Diff& d : e.retained) {
    // Our retained diffs are all our own; the requester's floor carries a
    // precise component for us (its cross components are conservative).
    if (d.vc[self_] <= floor[self_] || d.vc[self_] > target) continue;
    ds.push_back(d);
  }
  node_.cpu().stats().diffs_created += ds.size();
  std::uint64_t words = 0;
  for (const Diff& d : ds) words += diff_words(d);
  ctx.charge(sys_.params().handler_base_cycles +
             words * sys_.params().diff_word_cycles);

  ByteWriter w(kMsgHeadroom);
  w.u64(page);
  w.u32(static_cast<std::uint32_t>(ds.size()));
  for (const Diff& d : ds) d.serialize(w);
  // The diff's *source* is the page buffer: a CNI builds the reply from the
  // Message Cache copy when the page is bound (no host DMA). On a miss only
  // the needed bytes cross the bus and the page is NOT bound (binding is
  // what page transfers and receive caching do); the header likewise does
  // not carry the cache bit, so the receiver never binds a diff image.
  nic::NicBoard::SendOptions opts;
  opts.source_va = va_of_page(page);
  opts.source_len = sys_.geometry().size();
  opts.cacheable = false;
  ctx.send(make_frame(requester, kDsmDiffReply, 0, hdr.aux, 0, w.take()), opts);
}

void DsmRuntime::on_diff_reply(Ctx& ctx, const atm::Frame& f) {
  const nic::MsgHeader hdr = f.header<nic::MsgHeader>();
  ByteReader r = body_reader(f);
  const PageId page = r.u64();
  const std::uint32_t count = r.u32();
  std::vector<Diff> ds;
  ds.reserve(count);
  std::uint64_t words = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    ds.push_back(Diff::deserialize(r));
    words += diff_words(ds.back());
  }
  CNI_CHECK_MSG(fetch_.active && fetch_.req_id == hdr.aux && fetch_.page == page,
                "diff reply does not match the outstanding fetch");
  ctx.charge(sys_.params().handler_base_cycles +
             words * sys_.params().diff_word_cycles);
  ctx.transfer_to_host(va_of_page(page), std::max<std::uint64_t>(words * 8, 8));
  if (f.trace != 0) {
    CNI_TRACE_CAUSAL(obs_, ctx.cursor(), ctx.cursor(), obs::Stage::kDeliver,
                     obs::causal_token(hdr.src_node, hdr.seq, obs::Stage::kDeliver),
                     ctx.trace());
  }
  node_.engine().schedule_at(ctx.cursor(), [this, ds = std::move(ds)]() mutable {
    for (Diff& d : ds) fetch_.diffs.push_back(std::move(d));
    ++fetch_.diffs_got;
    if (fetch_.base_done == fetch_.want_base && fetch_.diffs_got == fetch_.diffs_wanted) {
      fetch_.complete = true;
      wq_.notify_all();
    }
  });
}

}  // namespace cni::dsm
