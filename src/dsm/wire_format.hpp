// Byte-level serialization for DSM protocol payloads.
//
// Protocol messages (lock grants carrying interval sets, page and diff
// replies) have variable-length bodies; these helpers lay them out after the
// fixed MsgHeader so the frames that cross the simulated wire carry real,
// parseable bytes — their sizes drive the ATM cell counts and DMA costs.
//
// ByteWriter serializes straight into pooled storage (util::Buf): a writer
// opened with `headroom` leaves that many bytes unwritten at the front, so
// the frame header is patched in place and `take()` hands the finished
// payload to atm::Frame::adopt with zero copies. ByteReader is a
// non-owning view; when constructed over a Buf it can hand out sub-views
// that share the backing buffer by refcount (zero-copy deserialization).
// ByteCounter mirrors the writer's framing arithmetic without writing, so
// size accounting (Diff::payload_bytes) is derived from the one true
// serializer and cannot drift.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>

#include "dsm/vector_clock.hpp"
#include "util/buf_pool.hpp"
#include "util/check.hpp"

namespace cni::dsm {

/// Malformed or truncated wire bytes. Thrown (not CNI_CHECK-aborted) by the
/// deserialization paths: a decoder's input arrives from outside the
/// process's own invariants, so a bad payload must be recoverable — it is
/// what the fuzz harness (tests/fuzz) drives with arbitrary bytes. Writer-
/// side size checks stay CNI_CHECK: they guard our own serialization.
struct WireError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class ByteWriter {
 public:
  ByteWriter() : ByteWriter(0) {}

  /// Opens a writer whose first `headroom` bytes are reserved for a header
  /// to be patched in later (they count toward the taken buffer's size).
  explicit ByteWriter(std::size_t headroom) : size_(headroom) {
    buf_ = util::BufPool::local().alloc(size_ < kInitialBytes ? kInitialBytes : size_);
  }

  /// Pre-sizes the backing buffer for `total` bytes (headroom included).
  /// Callers that know the payload size up front (page replies) skip the
  /// grow-and-copy the doubling policy would otherwise pay.
  void reserve(std::size_t total) {
    if (total > buf_.capacity()) grow(total);
  }

  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }

  void bytes(std::span<const std::byte> b) {
    // The length field is 32 bits on the wire; a larger span would silently
    // truncate and desynchronise every later read of the payload.
    CNI_CHECK_LE(b.size(), UINT32_MAX);
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }

  void clock(const VectorClock& vc) {
    CNI_CHECK_LE(vc.size(), UINT32_MAX);
    u32(static_cast<std::uint32_t>(vc.size()));
    for (std::size_t i = 0; i < vc.size(); ++i) u32(vc[i]);
  }

  /// Bytes written so far, including any headroom.
  [[nodiscard]] std::span<const std::byte> data() const {
    return buf_.span().first(size_);
  }

  /// Hands the payload out (headroom + serialized bytes). The writer is
  /// empty afterwards.
  [[nodiscard]] util::Buf take() {
    buf_.set_size(size_);
    size_ = 0;
    return std::move(buf_);
  }

 private:
  static constexpr std::size_t kInitialBytes = 256;

  void raw(const void* p, std::size_t n) {
    if (n == 0) return;  // also keeps memcpy off a never-allocated buffer
    if (size_ + n > buf_.capacity()) grow(size_ + n);
    std::byte* dst = buf_.data();
    CNI_CHECK(dst != nullptr);  // grow() guarantees a backing block
    std::memcpy(dst + size_, p, n);
    size_ += n;
  }

  void grow(std::size_t need) {
    std::size_t cap = buf_.capacity() * 2;
    if (cap < need) cap = need;
    util::Buf bigger = util::BufPool::local().alloc(cap);
    std::memcpy(bigger.data(), buf_.data(), size_);
    buf_ = std::move(bigger);
  }

  util::Buf buf_;
  std::size_t size_ = 0;
};

/// Counts the bytes ByteWriter would emit, via the identical interface.
/// Serializers templated over the writer type get size accounting for free
/// (see Diff::payload_bytes) with no second framing constant to drift.
class ByteCounter {
 public:
  void u32(std::uint32_t) { n_ += 4; }
  void u64(std::uint64_t) { n_ += 8; }
  void bytes(std::span<const std::byte> b) { n_ += 4 + b.size(); }
  void clock(const VectorClock& vc) { n_ += 4 + 4 * vc.size(); }
  [[nodiscard]] std::uint64_t count() const { return n_; }

 private:
  std::uint64_t n_ = 0;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> buf) : buf_(buf) {}

  /// A reader over `backing`'s bytes starting at `offset`. Sub-views handed
  /// out by bytes() share `backing` by refcount via backing().
  ByteReader(const util::Buf& backing, std::size_t offset)
      : buf_(backing.span().subspan(offset)), backing_(backing) {}

  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }

  /// A view of the next length-prefixed byte run. Valid while the underlying
  /// storage lives; hold backing() (when non-empty) to pin it.
  std::span<const std::byte> bytes() {
    const std::uint32_t n = u32();
    if (pos_ + n > buf_.size()) throw WireError("truncated DSM payload");
    std::span<const std::byte> out = buf_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  VectorClock clock() {
    const std::uint32_t n = u32();
    // Bounds before allocation: an attacker-controlled count must not size
    // the clock until the bytes it promises are known to exist.
    if (std::uint64_t{n} * 4 > remaining()) {
      throw WireError("truncated DSM payload: clock count exceeds bytes");
    }
    VectorClock vc(n);
    for (std::uint32_t i = 0; i < n; ++i) vc.set(i, u32());
    return vc;
  }

  /// The refcounted buffer the views point into (empty when the reader was
  /// built over a bare span).
  [[nodiscard]] const util::Buf& backing() const { return backing_; }

  [[nodiscard]] bool done() const { return pos_ == buf_.size(); }
  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void raw(void* p, std::size_t n) {
    if (pos_ + n > buf_.size()) throw WireError("truncated DSM payload");
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  std::span<const std::byte> buf_;
  util::Buf backing_;
  std::size_t pos_ = 0;
};

}  // namespace cni::dsm
