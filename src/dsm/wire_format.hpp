// Byte-level serialization for DSM protocol payloads.
//
// Protocol messages (lock grants carrying interval sets, page and diff
// replies) have variable-length bodies; these helpers lay them out after the
// fixed MsgHeader so the frames that cross the simulated wire carry real,
// parseable bytes — their sizes drive the ATM cell counts and DMA costs.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "dsm/vector_clock.hpp"
#include "util/check.hpp"

namespace cni::dsm {

class ByteWriter {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }

  void bytes(std::span<const std::byte> b) {
    // The length field is 32 bits on the wire; a larger span would silently
    // truncate and desynchronise every later read of the payload.
    CNI_CHECK_LE(b.size(), UINT32_MAX);
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }

  void clock(const VectorClock& vc) {
    CNI_CHECK_LE(vc.size(), UINT32_MAX);
    u32(static_cast<std::uint32_t>(vc.size()));
    for (std::size_t i = 0; i < vc.size(); ++i) u32(vc[i]);
  }

  [[nodiscard]] const std::vector<std::byte>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> buf) : buf_(buf) {}

  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }

  std::vector<std::byte> bytes() {
    const std::uint32_t n = u32();
    CNI_CHECK_MSG(pos_ + n <= buf_.size(), "truncated DSM payload");
    std::vector<std::byte> out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  VectorClock clock() {
    const std::uint32_t n = u32();
    VectorClock vc(n);
    for (std::uint32_t i = 0; i < n; ++i) vc.set(i, u32());
    return vc;
  }

  [[nodiscard]] bool done() const { return pos_ == buf_.size(); }
  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void raw(void* p, std::size_t n) {
    CNI_CHECK_MSG(pos_ + n <= buf_.size(), "truncated DSM payload");
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }
  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace cni::dsm
