// Intervals and write notices (lazy release consistency).
//
// A node's execution is divided into intervals delimited by releases
// (lock releases and barrier arrivals). Each interval records which shared
// pages the node dirtied — its *write notices*. An acquire propagates every
// interval the acquirer has not yet seen; the acquirer invalidates the
// noticed pages, deferring data movement until it actually faults (the
// "lazy invalidate" protocol the paper runs, after Keleher et al.).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "dsm/vector_clock.hpp"
#include "dsm/wire_format.hpp"

namespace cni::dsm {

using PageId = std::uint64_t;  ///< shared-region page index

struct Interval {
  std::uint32_t writer = 0;  ///< node that created the interval
  std::uint32_t index = 0;   ///< per-writer interval sequence number (1-based)
  VectorClock vc;            ///< writer's clock at interval creation
  std::vector<PageId> pages; ///< write notices

  void serialize(ByteWriter& w) const {
    w.u32(writer);
    w.u32(index);
    w.clock(vc);
    w.u32(static_cast<std::uint32_t>(pages.size()));
    for (PageId p : pages) w.u64(p);
  }

  static Interval deserialize(ByteReader& r) {
    Interval iv;
    iv.writer = r.u32();
    iv.index = r.u32();
    iv.vc = r.clock();
    const std::uint32_t n = r.u32();
    // Bounds before allocation: each page id is 8 wire bytes, so a count
    // the remaining payload cannot hold must not size the vector.
    if (std::uint64_t{n} * 8 > r.remaining()) {
      throw WireError("truncated DSM payload: interval page count");
    }
    iv.pages.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) iv.pages.push_back(r.u64());
    return iv;
  }
};

/// Every interval a node knows about — its own and those received in grants
/// and barrier releases. A releaser forwards the subset the acquirer has not
/// seen, which makes causality transitive.
///
/// Intervals of one writer always arrive densely (an interval's clock covers
/// the writer's earlier intervals, and senders forward complete unseen
/// suffixes), so each writer's log is a plain vector indexed by
/// interval-number-1 — making unseen_by() O(answer), not O(store). This
/// matters: fine-grained apps create hundreds of thousands of intervals.
class IntervalStore {
 public:
  /// Inserts if absent. Returns true if the interval was new.
  bool insert(Interval iv) {
    std::vector<Interval>& log = per_writer_[iv.writer];
    if (iv.index <= log.size()) return false;  // already known
    CNI_CHECK_MSG(iv.index == log.size() + 1,
                  "interval gap: causal delivery violated");
    log.push_back(std::move(iv));
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(std::uint32_t writer, std::uint32_t index) const {
    auto it = per_writer_.find(writer);
    return it != per_writer_.end() && index >= 1 && index <= it->second.size();
  }

  /// Intervals with index beyond `seen[writer]`, in deterministic
  /// (writer, index) order.
  [[nodiscard]] std::vector<const Interval*> unseen_by(const VectorClock& seen) const {
    std::vector<const Interval*> out;
    std::size_t n = 0;
    for (const auto& [w, log] : per_writer_) {
      n += log.size() - std::min<std::size_t>(log.size(), seen[w]);
    }
    out.reserve(n);
    for (const auto& [w, log] : per_writer_) {
      for (std::size_t i = seen[w]; i < log.size(); ++i) out.push_back(&log[i]);
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  std::map<std::uint32_t, std::vector<Interval>> per_writer_;
  std::size_t size_ = 0;
};

}  // namespace cni::dsm
