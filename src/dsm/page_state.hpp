// Per-node, per-page DSM state.
#pragma once

#include <cstdint>
#include <vector>

#include "dsm/diff.hpp"
#include "dsm/vector_clock.hpp"
#include "mem/page.hpp"
#include "util/buf_pool.hpp"

namespace cni::dsm {

enum class PageMode : std::uint8_t {
  kInvalid,    ///< reads and writes fault
  kReadOnly,   ///< writes fault (twin creation)
  kReadWrite,  ///< full access; a twin records the pre-write image
};

/// An unapplied write notice: `writer` dirtied this page in its interval
/// `index`, whose clock was `vc`. Kept until the next fault fetches the data.
struct Notice {
  std::uint32_t writer = 0;
  std::uint32_t index = 0;
  VectorClock vc;
};

struct PageEntry {
  PageMode mode = PageMode::kInvalid;
  bool ever_valid = false;  ///< page has held a coherent base copy at least once

  // cni-lint: allow(payload-copy): the page frame models host memory itself,
  // not a wire payload — it is the ground truth payloads are built from.
  std::vector<std::byte> data;   ///< the node's frame (allocated on first touch)
  util::Buf twin;                ///< pooled pre-write image (nonempty while writing)
  std::vector<Diff> retained;    ///< own per-interval diffs (exact vc tags)
  std::vector<Notice> pending;   ///< invalidating notices not yet satisfied

  /// The causal point the current bytes represent: everything at or below
  /// this clock is already folded into `data`. Diff requests carry it as a
  /// floor so writers only ship newer diffs.
  VectorClock content_vc;


  // Cached physical base for the fast access path (avoids a page-table map
  // lookup per simulated load/store).
  mem::PAddr pa_base = 0;
  bool pa_cached = false;

  [[nodiscard]] bool readable() const { return mode != PageMode::kInvalid; }
  [[nodiscard]] bool writable() const { return mode == PageMode::kReadWrite; }
};

}  // namespace cni::dsm
