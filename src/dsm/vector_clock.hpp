// Vector timestamps for the lazy release consistency protocol.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace cni::dsm {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t nodes) : v_(nodes, 0) {}

  [[nodiscard]] std::size_t size() const { return v_.size(); }
  [[nodiscard]] std::uint32_t operator[](std::size_t i) const { return v_.at(i); }
  void set(std::size_t i, std::uint32_t val) { v_.at(i) = val; }

  void advance(std::size_t i) { ++v_.at(i); }

  /// Pointwise maximum (the acquirer's clock after an acquire).
  void merge(const VectorClock& o) {
    CNI_CHECK(o.size() == size());
    for (std::size_t i = 0; i < v_.size(); ++i) v_[i] = std::max(v_[i], o.v_[i]);
  }

  /// True iff this <= o pointwise (this happened-before-or-equals o).
  [[nodiscard]] bool dominated_by(const VectorClock& o) const {
    CNI_CHECK(o.size() == size());
    for (std::size_t i = 0; i < v_.size(); ++i) {
      if (v_[i] > o.v_[i]) return false;
    }
    return true;
  }

  /// Neither dominates: the two clocks are concurrent.
  [[nodiscard]] bool concurrent_with(const VectorClock& o) const {
    return !dominated_by(o) && !o.dominated_by(*this);
  }

  bool operator==(const VectorClock&) const = default;

  [[nodiscard]] const std::vector<std::uint32_t>& raw() const { return v_; }

 private:
  std::vector<std::uint32_t> v_;
};

}  // namespace cni::dsm
